(* Crash-recovery smoke bench: runs the power-loss sweeps over a seeded
   workload and reports cycle counts, wall time, and cycles/sec. Exits
   nonzero on any recovery-invariant violation, so it doubles as a
   standalone durability gate (`dune exec bench/main.exe -- --crash`).

   LSM_CRASH_SWEEP=full widens the workload and seed set, matching the
   nightly CI job. *)

module Harness = Lsm_workload.Crash_harness

let run () =
  let extended =
    match Sys.getenv_opt "LSM_CRASH_SWEEP" with
    | Some ("full" | "extended" | "1") -> true
    | _ -> false
  in
  let count = if extended then 400 else 200 in
  let seeds = if extended then [ 42; 101; 202; 303 ] else [ 42 ] in
  Printf.printf "crash-recovery smoke (%s): %d ops/seed, seeds %s\n%!"
    (if extended then "extended" else "quick")
    count
    (String.concat "," (List.map string_of_int seeds));
  let t0 = Unix.gettimeofday () in
  let total =
    List.fold_left
      (fun acc seed ->
        let ops = Harness.gen_ops ~seed ~count in
        let r =
          List.fold_left Harness.merge_reports
            (Harness.sweep_sync_points ~ops ())
            [
              Harness.sweep_mid_append ~samples:20 ~ops ();
              Harness.sweep_recovery_crashes ~ops ();
              (if extended then Harness.sweep_op_points ~ops ()
               else Harness.sweep_op_points ~stride:9 ~ops ());
            ]
        in
        Printf.printf "  seed %3d: %5d crash points, %5d cycles, %d violations\n%!" seed
          r.Harness.points r.Harness.runs
          (List.length r.Harness.failures);
        Harness.merge_reports acc r)
      { Harness.runs = 0; points = 0; failures = [] }
      seeds
  in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "total: %d crash/recover/check cycles over %d points in %.1fs (%.0f cycles/s)\n"
    total.Harness.runs total.Harness.points dt
    (float_of_int total.Harness.runs /. dt);
  match total.Harness.failures with
  | [] -> print_endline "recovery invariant held at every crash point"
  | fs ->
    Printf.printf "FAILED: %d violations, first 10:\n" (List.length fs);
    List.iteri (fun i f -> if i < 10 then print_endline ("  " ^ f)) fs;
    exit 1
