(* Bechamel microbenchmarks: per-operation latency of the core data
   structures (one Test.make per series). Run with --micro. *)

open Bechamel
open Toolkit
module Memtable = Lsm_memtable.Memtable
module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Rng = Lsm_util.Rng

let cmp = Lsm_util.Comparator.bytewise

let keys = Array.init 10_000 (fun i -> Printf.sprintf "user%010d" (i * 7919 mod 100_000))

let memtable_insert kind =
  Test.make ~name:(Printf.sprintf "memtable-insert:%s" (Memtable.kind_name kind))
    (Staged.stage (fun () ->
         let m = Memtable.create ~kind ~cmp () in
         Array.iteri (fun i k -> Memtable.add m (Entry.put ~key:k ~seqno:i "v")) keys))

let memtable_lookup kind =
  let m = Memtable.create ~kind ~cmp () in
  Array.iteri (fun i k -> Memtable.add m (Entry.put ~key:k ~seqno:i "v")) keys;
  let i = ref 0 in
  Test.make ~name:(Printf.sprintf "memtable-get:%s" (Memtable.kind_name kind))
    (Staged.stage (fun () ->
         incr i;
         ignore (Memtable.find m keys.(!i mod Array.length keys))))

let bloom_query =
  let f = Lsm_filter.Bloom.create ~bits_per_key:10.0 ~expected:10_000 in
  Array.iter (Lsm_filter.Bloom.add f) keys;
  let i = ref 0 in
  Test.make ~name:"bloom-query"
    (Staged.stage (fun () ->
         incr i;
         ignore (Lsm_filter.Bloom.mem f keys.(!i mod Array.length keys))))

let cuckoo_query =
  let f = Lsm_filter.Cuckoo.create ~expected:10_000 () in
  Array.iter (fun k -> ignore (Lsm_filter.Cuckoo.add f k)) keys;
  let i = ref 0 in
  Test.make ~name:"cuckoo-query"
    (Staged.stage (fun () ->
         incr i;
         ignore (Lsm_filter.Cuckoo.mem f keys.(!i mod Array.length keys))))

let block_decode =
  let b = Lsm_sstable.Block.Builder.create () in
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  Array.iteri (fun i k -> if i < 100 then Lsm_sstable.Block.Builder.add b (Entry.put ~key:k ~seqno:i "value")) sorted;
  let encoded = Lsm_sstable.Block.Builder.finish b in
  Test.make ~name:"block-decode+scan(100)"
    (Staged.stage (fun () ->
         let it = Lsm_sstable.Block.iterator cmp (Lsm_sstable.Block.parse_checked encoded) in
         it.Iter.seek_to_first ();
         while it.Iter.valid () do
           it.Iter.next ()
         done))

let merge_step =
  let mk off =
    Iter.of_sorted_array cmp
      (Array.init 1000 (fun i -> Entry.put ~key:(Printf.sprintf "k%08d" ((i * 4) + off)) ~seqno:i "v"))
  in
  Test.make ~name:"merge-4way-drain(4000)"
    (Staged.stage (fun () ->
         let it = Iter.merge cmp [ mk 0; mk 1; mk 2; mk 3 ] in
         it.Iter.seek_to_first ();
         while it.Iter.valid () do
           it.Iter.next ()
         done))

let zipf_next =
  let z = Lsm_util.Zipf.create 1_000_000 in
  let rng = Rng.create 1 in
  Test.make ~name:"zipf-next" (Staged.stage (fun () -> ignore (Lsm_util.Zipf.next_scrambled z rng)))

let tests =
  List.map memtable_insert Memtable.all_kinds
  @ List.map memtable_lookup Memtable.all_kinds
  @ [ bloom_query; cuckoo_query; block_decode; merge_step; zipf_next ]

let run () =
  print_endline "\n==== microbenchmarks (Bechamel, monotonic clock, ns/run) ====\n";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let grouped = Test.make_grouped ~name:"lsm" ~fmt:"%s:%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure per_test ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) per_test [] in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> Printf.printf "%-44s %14.1f\n" name est
          | Some [] | None -> Printf.printf "%-44s   (no estimate)\n" name)
        (List.sort (fun (a, _) (b, _) -> String.compare a b) rows))
    merged;
  flush stdout
