(* Parallel-compaction benchmark: the same write-heavy workload run at
   compaction_parallelism 1 / 2 / 4, each against a fresh in-memory
   device and the same workload seed, reporting throughput, stall
   behaviour, and compaction wall-clock as machine-readable JSON
   (BENCH_parallel_compaction.json).

   The interesting column is compaction_wall_s: with >1 core the
   subcompactions of each merge run on distinct domains and the wall
   clock spent inside merges drops; on a single-core host the domains
   time-slice and the ratio stays ~1 (the JSON records the host's
   domain count so readers can tell which case they are looking at). *)

open Common

let ops = 60_000
let unique = 4_000
let value_size = 64
let seed = 1234

let bench_one ~parallelism =
  let dev = Device.in_memory () in
  let config =
    {
      (bench_config ~buffer:(32 * 1024) ~l1:(128 * 1024) ~file:(32 * 1024) ())
      with
      compaction_parallelism = parallelism;
      block_cache_shards = (if parallelism > 1 then parallelism else 1);
      wal_enabled = false;
    }
  in
  let db = Db.open_db ~config ~dev () in
  let t0 = Unix.gettimeofday () in
  ingest_zipf db ~total:ops ~unique ~value_size ~seed;
  Db.major_compact db;
  let wall = Unix.gettimeofday () -. t0 in
  let stats = Db.stats db in
  let r =
    ( parallelism,
      float_of_int ops /. wall,
      wall,
      stats.Stats.write_stalls,
      Histogram.percentile stats.Stats.stall_burst_bytes 99.0,
      float_of_int stats.Stats.compaction_wall_ns /. 1e9,
      stats.Stats.compactions,
      stats.Stats.subcompactions )
  in
  Db.close db;
  r

let run () =
  banner "PC" "parallel compaction"
    "subcompactions cut merge wall-clock on multi-core hosts without changing output";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "host: %d recommended domain(s)\n\n" cores;
  let results = List.map (fun p -> bench_one ~parallelism:p) [ 1; 2; 4 ] in
  table
    [ "par"; "ops/s"; "wall_s"; "stalls"; "p99_stall_B"; "compact_s"; "compactions"; "subcompactions" ]
    (List.map
       (fun (p, rate, wall, stalls, p99, cwall, c, sc) ->
         [ i0 p; f1 rate; f3 wall; i0 stalls; i0 p99; f3 cwall; i0 c; i0 sc ])
       results);
  let json_row (p, rate, wall, stalls, p99, cwall, c, sc) =
    Printf.sprintf
      "    {\"parallelism\": %d, \"ops_per_sec\": %.1f, \"wall_s\": %.3f, \
       \"write_stalls\": %d, \"p99_stall_burst_bytes\": %d, \
       \"compaction_wall_s\": %.3f, \"compactions\": %d, \"subcompactions\": %d}"
      p rate wall stalls p99 cwall c sc
  in
  let speedup =
    match results with
    | (_, _, _, _, _, base, _, _) :: _ ->
      (match List.rev results with
      | (_, _, _, _, _, last, _, _) :: _ when last > 0.0 -> base /. last
      | _ -> 1.0)
    | [] -> 1.0
  in
  let json =
    Printf.sprintf
      "{\n  \"benchmark\": \"parallel_compaction\",\n  \"ops\": %d,\n  \
       \"unique_keys\": %d,\n  \"value_size\": %d,\n  \"seed\": %d,\n  \
       \"host_domains\": %d,\n  \"compaction_speedup_p4_vs_p1\": %.2f,\n  \
       \"runs\": [\n%s\n  ]\n}\n"
      ops unique value_size seed cores speedup
      (String.concat ",\n" (List.map json_row results))
  in
  let oc = open_out "BENCH_parallel_compaction.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\ncompaction wall-clock speedup (p=4 vs p=1): %.2fx\n" speedup;
  print_endline "wrote BENCH_parallel_compaction.json"
