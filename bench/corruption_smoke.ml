(* Silent-corruption smoke bench: runs the bit-rot sweep over a seeded
   workload and reports cycle counts, flipped bits, wall time. Exits
   nonzero on any corruption-contract violation, so it doubles as a
   standalone integrity gate (`dune exec bench/main.exe -- --corruption`).

   Two arms, selected by LSM_CORRUPTION_ARM (all | base | ecc):
     base  the legacy format — rot is detected, quarantined, repaired
           offline by the doctor to a disclosed point-in-time;
     ecc   the same injections against ECC tables — single-page-per-file
           rot must be healed in place (strict: byte-exact reads, zero
           quarantines, ecc_repairs > 0); the arm also measures the
           parity write-amplification of turning ECC on.
   Results land in BENCH_corruption.json.

   LSM_CORRUPTION_SWEEP=full widens the workload, page counts, and seed
   sets, matching the nightly CI job. *)

module Harness = Lsm_workload.Corruption_harness
module Crash = Lsm_workload.Crash_harness
module Device = Lsm_storage.Device
module Db = Lsm_core.Db
module Config = Lsm_core.Config

(* Total [.sst] bytes the workload leaves behind under [config] — run
   twice (ECC off/on) the delta is exactly the parity+locator overhead. *)
let sst_bytes config ops =
  let dev = Device.in_memory ~page_size:256 () in
  let db = Db.open_db ~config ~dev () in
  Array.iter (Crash.apply_db db) ops;
  Db.close db;
  List.fold_left
    (fun acc n -> if Filename.check_suffix n ".sst" then acc + Device.size dev n else acc)
    0 (Device.list_files dev)

let run () =
  let extended =
    match Sys.getenv_opt "LSM_CORRUPTION_SWEEP" with
    | Some ("full" | "extended" | "1") -> true
    | _ -> false
  in
  let arm =
    match Sys.getenv_opt "LSM_CORRUPTION_ARM" with
    | Some ("base" | "BASE") -> `Base
    | Some ("ecc" | "ECC") -> `Ecc
    | _ -> `All
  in
  let count = if extended then 400 else 200 in
  let workload_seeds = if extended then [ 42; 101; 202 ] else [ 42 ] in
  let pages = if extended then [ 1; 2; 4; 8 ] else [ 1; 2; 4 ] in
  let seeds = if extended then [ 7; 11; 23; 31 ] else [ 11; 23 ] in
  Printf.printf "silent-corruption smoke (%s, arm=%s): %d ops/workload, workloads %s\n%!"
    (if extended then "extended" else "quick")
    (match arm with `All -> "all" | `Base -> "base" | `Ecc -> "ecc")
    count
    (String.concat "," (List.map string_of_int workload_seeds));
  let t0 = Unix.gettimeofday () in
  let zero = { Harness.runs = 0; hits = 0; failures = [] } in
  (* Base arm: legacy tables, detect/quarantine/doctor contract. *)
  let base =
    if arm = `Ecc then zero
    else
      List.fold_left
        (fun acc wseed ->
          let ops = Crash.gen_ops ~seed:wseed ~count in
          let r = Harness.sweep ~pages ~seeds ~ops () in
          Printf.printf "  base workload %3d: %3d cycles, %4d bits flipped, %d violations\n%!"
            wseed r.Harness.runs r.Harness.hits
            (List.length r.Harness.failures);
          Harness.merge_reports acc r)
        zero workload_seeds
  in
  (* ECC arm: same injections, parity on, plus the strict in-place
     repair contract for single-page rot. *)
  let ecc, ecc_repaired =
    if arm = `Base then (zero, 0)
    else
      List.fold_left
        (fun (acc, reps) wseed ->
          let ops = Crash.gen_ops ~seed:wseed ~count in
          let r, repaired = Harness.sweep_ecc ~pages ~seeds ~ops () in
          Printf.printf
            "  ecc  workload %3d: %3d cycles, %4d bits flipped, %d violations, %d pages repaired\n%!"
            wseed r.Harness.runs r.Harness.hits
            (List.length r.Harness.failures)
            repaired;
          (Harness.merge_reports acc r, reps + repaired))
        (zero, 0) workload_seeds
  in
  (* Parity write-amp: the same workload's durable .sst footprint with
     ECC off vs on. *)
  let base_bytes, ecc_bytes =
    if arm = `Base then (0, 0)
    else begin
      let ops = Crash.gen_ops ~seed:(List.hd workload_seeds) ~count in
      let plain = { (Crash.default_config ()) with Config.block_size = 256 } in
      (sst_bytes plain ops, sst_bytes (Harness.ecc_config ()) ops)
    end
  in
  let parity_wa =
    if base_bytes = 0 then 0.0 else float_of_int ecc_bytes /. float_of_int base_bytes
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let quarantined_single_page =
    List.length (List.filter (fun f -> contains f "quarantined") ecc.Harness.failures)
  in
  let dt = Unix.gettimeofday () -. t0 in
  let total = Harness.merge_reports base ecc in
  Printf.printf "total: %d corruption/repair/check cycles, %d bits flipped in %.1fs\n"
    total.Harness.runs total.Harness.hits dt;
  if arm <> `Base then
    Printf.printf "ecc: %d pages repaired in place, parity write-amp %.3fx\n" ecc_repaired
      parity_wa;
  let json =
    Printf.sprintf
      {|{
  "bench": "corruption_smoke",
  "extended": %b,
  "arm": %S,
  "base": { "runs": %d, "hits": %d, "violations": %d },
  "ecc": {
    "runs": %d,
    "hits": %d,
    "violations": %d,
    "pages_repaired": %d,
    "quarantined_single_page": %d,
    "sst_bytes_plain": %d,
    "sst_bytes_ecc": %d,
    "parity_write_amp": %.4f
  },
  "wall_s": %.1f
}
|}
      extended
      (match arm with `All -> "all" | `Base -> "base" | `Ecc -> "ecc")
      base.Harness.runs base.Harness.hits
      (List.length base.Harness.failures)
      ecc.Harness.runs ecc.Harness.hits
      (List.length ecc.Harness.failures)
      ecc_repaired quarantined_single_page base_bytes ecc_bytes parity_wa dt
  in
  let oc = open_out "BENCH_corruption.json" in
  output_string oc json;
  close_out oc;
  print_endline "wrote BENCH_corruption.json";
  match total.Harness.failures with
  | [] -> print_endline "corruption contract held at every injection"
  | fs ->
    Printf.printf "FAILED: %d violations, first 10:\n" (List.length fs);
    List.iteri (fun i f -> if i < 10 then print_endline ("  " ^ f)) fs;
    exit 1
