(* Silent-corruption smoke bench: runs the bit-rot sweep over a seeded
   workload and reports cycle counts, flipped bits, wall time. Exits
   nonzero on any corruption-contract violation, so it doubles as a
   standalone integrity gate (`dune exec bench/main.exe -- --corruption`).

   LSM_CORRUPTION_SWEEP=full widens the workload, page counts, and seed
   sets, matching the nightly CI job. *)

module Harness = Lsm_workload.Corruption_harness
module Crash = Lsm_workload.Crash_harness

let run () =
  let extended =
    match Sys.getenv_opt "LSM_CORRUPTION_SWEEP" with
    | Some ("full" | "extended" | "1") -> true
    | _ -> false
  in
  let count = if extended then 400 else 200 in
  let workload_seeds = if extended then [ 42; 101; 202 ] else [ 42 ] in
  let pages = if extended then [ 1; 2; 4; 8 ] else [ 1; 2; 4 ] in
  let seeds = if extended then [ 7; 11; 23; 31 ] else [ 11; 23 ] in
  Printf.printf "silent-corruption smoke (%s): %d ops/workload, workloads %s\n%!"
    (if extended then "extended" else "quick")
    count
    (String.concat "," (List.map string_of_int workload_seeds));
  let t0 = Unix.gettimeofday () in
  let total =
    List.fold_left
      (fun acc wseed ->
        let ops = Crash.gen_ops ~seed:wseed ~count in
        let r = Harness.sweep ~pages ~seeds ~ops () in
        Printf.printf "  workload %3d: %3d cycles, %4d bits flipped, %d violations\n%!"
          wseed r.Harness.runs r.Harness.hits
          (List.length r.Harness.failures);
        Harness.merge_reports acc r)
      { Harness.runs = 0; hits = 0; failures = [] }
      workload_seeds
  in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "total: %d corruption/repair/check cycles, %d bits flipped in %.1fs\n"
    total.Harness.runs total.Harness.hits dt;
  match total.Harness.failures with
  | [] -> print_endline "corruption contract held at every injection"
  | fs ->
    Printf.printf "FAILED: %d violations, first 10:\n" (List.length fs);
    List.iteri (fun i f -> if i < 10 then print_endline ("  " ^ f)) fs;
    exit 1
