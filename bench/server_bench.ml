(* Serving front-door benchmark: the closed-loop simulator drives an
   in-process sharded server over a Unix socket — 240 connections,
   zipfian tenant and key skew, the mixed point/group workload — and
   reports end-to-end request latency percentiles, throughput, and the
   per-shard backpressure counters as JSON (BENCH_server.json).

   This measures the request path the paper's serving sections care
   about: RESP framing, per-connection pipelining, hash partitioning
   across shard engines, the multi_get/batch fan-out, and the engines'
   own flush/compaction backpressure — not just raw engine puts. The
   simulator's exact acked-write model runs the whole time, so the
   numbers come with a correctness bill attached: the run is only
   reportable with zero model violations and zero torn group reads
   (both recorded in the JSON; the CI gate asserts them). Client and
   server share one domain (the server is a select reactor stepped by
   the driver's pump), so latency includes scheduling interleave — the
   shard engines' background lanes are where the domains are. *)

open Common

let connections = 240
let tenants = 16
let keys_per_client = 64
let value_size = 256
let total_ops = 60_000
let mget_group = 8
let theta = 0.99
let seed = 97
let reconnect_every = 120
let shards = 4
let workers = 2
let fanout = 2

module Server = Lsm_server.Server
module Shard_map = Lsm_server.Shard_map
module Server_harness = Lsm_workload.Server_harness

let run () =
  banner "SRV" "sharded server front door: 240-connection zipfian closed loop"
    "the RESP front door sustains pipelined multi-tenant load across hash-partitioned \
     shard engines with exact acked-write semantics; per-shard backpressure shows up as \
     tail latency, not lost or torn reads";
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lsm-bench-%d.sock" (Unix.getpid ()))
  in
  let config =
    {
      (bench_config ~buffer:(64 * 1024) ~l1:(512 * 1024) ~file:(32 * 1024)
         ~cache:(8 lsl 20) ())
      with
      compaction_backend = Lsm_core.Config.Background;
      compaction_workers = workers;
      compaction_parallelism = workers;
      wal_enabled = false;
    }
  in
  let map = Shard_map.open_shards ~config ~fanout_workers:fanout ~count:shards ~mode:`Memory () in
  (* The whole fleet connects at once; the accept queue must hold it. *)
  let server = Server.create ~backlog:(2 * connections) ~shards:map ~sock_path:sock () in
  let report =
    Server_harness.run
      {
        Server_harness.sock_path = sock;
        connections;
        tenants;
        keys_per_client;
        value_size;
        total_ops;
        mget_group;
        theta;
        seed;
        reconnect_every;
        pump = (fun () -> ignore (Server.step server ~timeout:0.0));
      }
  in
  (* Drain gracefully so the shard engines' counters are final. *)
  Server.request_shutdown server;
  while Server.step server ~timeout:0.01 do
    ()
  done;
  let sstats = Server.stats server in
  let shard_rows =
    List.init shards (fun i ->
        let st = Db.stats (Shard_map.db map i) in
        (i, st.Stats.write_stalls, st.Stats.write_slowdowns, st.Stats.write_stops,
         st.Stats.flushes, st.Stats.compactions))
  in
  Shard_map.close_all map;
  let lat = report.Server_harness.latency in
  let us p = float_of_int (Histogram.percentile lat p) /. 1e3 in
  table
    [ "conns"; "ops"; "ops/s"; "p50_us"; "p99_us"; "p999_us"; "violations"; "torn";
      "errors"; "reconnects"; "verified" ]
    [
      [ i0 connections; i0 report.Server_harness.ops_done;
        f1 report.Server_harness.ops_per_sec; f1 (us 50.0); f1 (us 99.0); f1 (us 99.9);
        i0 report.Server_harness.model_violations; i0 report.Server_harness.torn_mgets;
        i0 report.Server_harness.server_errors; i0 report.Server_harness.reconnects;
        i0 report.Server_harness.verified_keys ];
    ];
  table
    [ "shard"; "stalls"; "slowdowns"; "stops"; "flushes"; "compactions" ]
    (List.map
       (fun (i, stalls, slow, stops, fl, cmp) ->
         [ i0 i; i0 stalls; i0 slow; i0 stops; i0 fl; i0 cmp ])
       shard_rows);
  let shard_json =
    String.concat ",\n"
      (List.map
         (fun (i, stalls, slow, stops, fl, cmp) ->
           Printf.sprintf
             "    {\"shard\": %d, \"write_stalls\": %d, \"write_slowdowns\": %d, \
              \"write_stops\": %d, \"flushes\": %d, \"compactions\": %d}"
             i stalls slow stops fl cmp)
         shard_rows)
  in
  let json =
    Printf.sprintf
      "{\n  \"benchmark\": \"server\",\n  \"connections\": %d,\n  \"tenants\": %d,\n  \
       \"keys_per_client\": %d,\n  \"value_size\": %d,\n  \"total_ops\": %d,\n  \
       \"mget_group\": %d,\n  \"zipf_theta\": %.2f,\n  \"seed\": %d,\n  \
       \"shards\": %d,\n  \"compaction_workers\": %d,\n  \"fanout_workers\": %d,\n  \
       \"ops_done\": %d,\n  \"writes_acked\": %d,\n  \"reads\": %d,\n  \
       \"wall_s\": %.3f,\n  \"ops_per_sec\": %.1f,\n  \
       \"request_latency_us\": {\"p50\": %.1f, \"p99\": %.1f, \"p999\": %.1f, \"max\": %.1f},\n  \
       \"model_violations\": %d,\n  \"torn_mgets\": %d,\n  \"server_errors\": %d,\n  \
       \"quota_denials\": %d,\n  \"reconnects\": %d,\n  \"verified_keys\": %d,\n  \
       \"server_commands\": %d,\n  \"server_bytes_in\": %d,\n  \"server_bytes_out\": %d,\n  \
       \"shards_detail\": [\n%s\n  ]\n}\n"
      connections tenants keys_per_client value_size total_ops mget_group theta seed
      shards workers fanout report.Server_harness.ops_done
      report.Server_harness.writes_acked report.Server_harness.reads
      report.Server_harness.wall_s report.Server_harness.ops_per_sec (us 50.0) (us 99.0)
      (us 99.9)
      (float_of_int (Histogram.max_value lat) /. 1e3)
      report.Server_harness.model_violations report.Server_harness.torn_mgets
      report.Server_harness.server_errors report.Server_harness.quota_denials
      report.Server_harness.reconnects report.Server_harness.verified_keys
      sstats.Server.commands sstats.Server.bytes_in sstats.Server.bytes_out shard_json
  in
  let oc = open_out "BENCH_server.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "\n%d connections, %d ops: %.0f ops/s, p99 %.0fus, p999 %.0fus; \
     %d model violations, %d torn group reads\n"
    connections report.Server_harness.ops_done report.Server_harness.ops_per_sec (us 99.0)
    (us 99.9) report.Server_harness.model_violations report.Server_harness.torn_mgets;
  if report.Server_harness.model_violations > 0 || report.Server_harness.torn_mgets > 0
  then begin
    print_endline "CORRECTNESS FAILURE: acked writes lost or group reads torn";
    exit 1
  end;
  print_endline "wrote BENCH_server.json"
