(* Read-path allocation bench (`bench/main.exe -- --read-path`).

   Measures what the zero-copy block read path actually buys, per point
   get, with GC counters rather than intuition:

   - the BEFORE arm is a verbatim replica of the pre-PR read path,
     copied from this repo's history: the block cache stores the framed
     on-disk string, so every hit re-pays unframe (copy or LZ
     decompress), [decode_check] (CRC over a fresh copy of the body),
     restart-trailer parsing, and an iterator that allocates key, value
     and [Entry.t] for every record it steps over;
   - the AFTER arm is the shipped path: the cache stores the verified
     [Block.parsed] view, and [Block.find] walks it with an arena
     cursor, allocating only the one taken [Entry.t].

   Both arms are exercised over the same block, hot (cached) and cold
   (decode per read), under C_none and C_lz framing; a DB-level section
   reports end-to-end point-get cost and bytes-on-disk for both
   compression knobs. Results go to BENCH_read_path.json.

   This is also the CI allocation-regression gate: the process exits 1
   unless (a) the hot C_lz after-arm spends at most half the minor
   words/op of the before-arm, (b) it is faster, and (c) hot-hit minor
   words/op stay under the committed ceiling below. *)

open Common
module Block = Lsm_sstable.Block
module Sstable = Lsm_sstable.Sstable
module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Codec = Lsm_util.Codec
module Crc32c = Lsm_util.Crc32c
module Comparator = Lsm_util.Comparator
module Lz = Lsm_util.Lz

(* Allocation ceiling for one hot-cache point get on the new path
   (cursor + seek + one materialized entry), in minor words. Measured
   45 words/op on the reference host: 21 for the cursor (record + its
   64-byte key arena), 24 to materialize the taken entry; the seek
   itself allocates nothing. The slack absorbs compiler drift but is
   deliberately tight enough to catch closure creep (a nested [let rec]
   in the record loop costs ~100 words/op) and copying regressions
   (one block-body copy alone is block_size/8 words). *)
let hot_hit_words_ceiling = 100.0

(* ---------------- the before-arm: pre-PR path, replicated ----------- *)

(* Everything in this module is the old implementation kept verbatim
   (modulo module prefixes) so the comparison is against the real
   predecessor, not a strawman. *)
module Legacy = struct
  type parsed = { body : string; data_end : int; restarts : int array }

  let decode_check block =
    let n = String.length block in
    if n < 8 then raise (Codec.Corrupt "block too small");
    let body = String.sub block 0 (n - 4) in
    let stored = Int32.of_int (Codec.get_u32 (Codec.reader ~pos:(n - 4) block)) in
    if Crc32c.mask (Crc32c.string body) <> stored then
      raise (Codec.Corrupt "block checksum mismatch");
    body

  let parse body =
    let n = String.length body in
    if n < 4 then raise (Codec.Corrupt "block body too small");
    let count = Codec.get_u32 (Codec.reader ~pos:(n - 4) body) in
    let data_end = n - 4 - (4 * count) in
    if data_end < 0 then raise (Codec.Corrupt "bad restart count");
    let restarts =
      Array.init count (fun i -> Codec.get_u32 (Codec.reader ~pos:(data_end + (4 * i)) body))
    in
    { body; data_end; restarts }

  let decode_record p ~prev_key ~pos =
    let r = Codec.reader ~pos p.body in
    let shared = Codec.get_varint r in
    let unshared = Codec.get_varint r in
    if shared > String.length prev_key then raise (Codec.Corrupt "bad shared prefix");
    let key = String.sub prev_key 0 shared ^ Codec.get_raw r unshared in
    let seqno = Codec.get_varint r in
    let kind = Entry.kind_of_int (Codec.get_u8 r) in
    let value = Codec.get_lp_string r in
    ({ Entry.key; seqno; kind; value }, r.Codec.pos)

  let iterator (cmp : Comparator.t) body =
    let p = parse body in
    let pos = ref p.data_end in
    let current = ref None in
    let advance () =
      if !pos >= p.data_end then current := None
      else begin
        let prev_key = match !current with Some e -> e.Entry.key | None -> "" in
        let e, next = decode_record p ~prev_key ~pos:!pos in
        current := Some e;
        pos := next
      end
    in
    let reset_to offset =
      pos := offset;
      current := None;
      advance ()
    in
    let restart_key i =
      let e, _ = decode_record p ~prev_key:"" ~pos:p.restarts.(i) in
      e.Entry.key
    in
    let seek target =
      if Array.length p.restarts = 0 then current := None
      else begin
        let lo = ref 0 and hi = ref (Array.length p.restarts - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi + 1) / 2 in
          if cmp.compare (restart_key mid) target < 0 then lo := mid else hi := mid - 1
        done;
        reset_to p.restarts.(!lo);
        let continue = ref true in
        while !continue do
          match !current with
          | Some e when cmp.compare e.Entry.key target < 0 -> advance ()
          | Some _ | None -> continue := false
        done
      end
    in
    {
      Iter.valid = (fun () -> !current <> None);
      entry =
        (fun () ->
          match !current with Some e -> e | None -> invalid_arg "Block.iterator: not valid");
      next = (fun () -> if !current <> None then advance ());
      seek;
      seek_to_first =
        (fun () ->
          if Array.length p.restarts = 0 then current := None else reset_to p.restarts.(0));
    }

  let unframe_block framed =
    let r = Codec.reader framed in
    match Codec.get_u8 r with
    | 0 -> Codec.get_raw r (Codec.remaining r)
    | 1 ->
      let raw_len = Codec.get_varint r in
      Lz.decompress (Codec.get_raw r (Codec.remaining r)) ~expected_len:raw_len
    | n -> raise (Codec.Corrupt (Printf.sprintf "unknown block frame tag %d" n))

  (* Pre-PR [Sstable.get] on a cached block: the cache held the framed
     string, so a hit is unframe + decode_check + iterator + seek. *)
  let point_get cmp framed key =
    let it = iterator cmp (decode_check (unframe_block framed)) in
    it.Iter.seek key;
    if it.Iter.valid () then Some (it.Iter.entry ()) else None
end

(* ---------------- fixture block ------------------------------------ *)

let cmp = Comparator.bytewise
let entries_per_block = 64
let value_size = 64

(* Mildly compressible values (repeated motif + unique tail) so the LZ
   arm behaves like real data rather than all-zero best cases. *)
let fixture_value i =
  let b = Bytes.make value_size 'v' in
  let tag = Printf.sprintf "#%06d" i in
  Bytes.blit_string tag 0 b (value_size - String.length tag) (String.length tag);
  Bytes.to_string b

let fixture_keys = Array.init entries_per_block key

let raw_block =
  let b = Block.Builder.create ~restart_interval:16 () in
  Array.iteri (fun i k -> Block.Builder.add b (Entry.put ~key:k ~seqno:(i + 1) (fixture_value i))) fixture_keys;
  Block.Builder.finish b

let frame_none = "\x00" ^ raw_block

let frame_lz =
  let packed = Lz.compress raw_block in
  let b = Buffer.create (String.length packed + 8) in
  Codec.put_u8 b 1;
  Codec.put_varint b (String.length raw_block);
  Buffer.add_string b packed;
  Buffer.contents b

(* What the new cache stores for each framing: C_none blocks are parsed
   in place behind the tag byte (base 1, no copy at all); C_lz blocks
   are decompressed once and parsed at base 0. *)
let parsed_of_frame framed =
  match framed.[0] with
  | '\x00' -> Block.parse_checked ~base:1 framed
  | _ ->
    let r = Codec.reader ~pos:1 framed in
    let raw_len = Codec.get_varint r in
    Block.parse_checked (Lz.decompress (Codec.get_raw r (Codec.remaining r)) ~expected_len:raw_len)

let new_point_get parsed k =
  let cur = Block.find cmp parsed k in
  if Block.Cursor.valid cur && Block.Cursor.key_compare cur k = 0 then
    Some (Block.Cursor.entry cur)
  else None

(* ---------------- measurement harness ------------------------------ *)

let sink = ref 0

let consume = function
  | Some e -> sink := !sink + String.length e.Entry.value
  | None -> failwith "read_path bench: fixture key not found"

(* ns/op and minor words/op for [f] run [n] times. A warmup pass gets
   closures and the arena to steady state; a full major between warmup
   and measurement keeps promotion noise out of the counters. *)
let measure ~n f =
  for i = 0 to 99 do
    f (i land (entries_per_block - 1))
  done;
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    f (i land (entries_per_block - 1))
  done;
  let t1 = Unix.gettimeofday () in
  let w1 = Gc.minor_words () in
  ((t1 -. t0) *. 1e9 /. float_of_int n, (w1 -. w0) /. float_of_int n)

type row = {
  compression : string;
  arm : string;  (** legacy_hot | new_hot | new_cold *)
  ns_per_op : float;
  words_per_op : float;
}

let block_rows () =
  let n = 200_000 in
  let one compression framed =
    let parsed = parsed_of_frame framed in
    (* legacy hot: the framed string is "cached"; every hit re-decodes.
       (legacy cold is the same work plus the device read, so hot is
       its best case — the fair one to beat.) *)
    let l_ns, l_w = measure ~n (fun i -> consume (Legacy.point_get cmp framed fixture_keys.(i))) in
    (* new hot: cache hit hands back the parsed view, zero decode. *)
    let h_ns, h_w = measure ~n (fun i -> consume (new_point_get parsed fixture_keys.(i))) in
    (* new cold: miss path, decode-once cost paid inline. *)
    let c_ns, c_w =
      measure ~n:(n / 10) (fun i -> consume (new_point_get (parsed_of_frame framed) fixture_keys.(i)))
    in
    [
      { compression; arm = "legacy_hot"; ns_per_op = l_ns; words_per_op = l_w };
      { compression; arm = "new_hot"; ns_per_op = h_ns; words_per_op = h_w };
      { compression; arm = "new_cold"; ns_per_op = c_ns; words_per_op = c_w };
    ]
  in
  one "none" frame_none @ one "lz" frame_lz

(* ---------------- end-to-end section ------------------------------- *)

type db_row = {
  d_compression : string;
  d_mode : string;  (** hot | cold *)
  d_ns_per_op : float;
  d_words_per_op : float;
  d_bytes_on_disk : int;
}

let db_rows () =
  let unique = 4_000 in
  let lookups = 20_000 in
  let one compression name =
    let dev = Device.in_memory () in
    let config =
      { (bench_config ~cache:(8 * 1024 * 1024) ()) with compression; wal_enabled = false }
    in
    let db = Db.open_db ~config ~dev () in
    (* Compressible values (same motif as the block fixture), not
       Common.ingest's random bytes: random values make frame_block's
       "only if it shrinks" check fall back to raw framing and the two
       compression arms would land on identical bytes on disk. *)
    let rng = Rng.create 42 in
    for _ = 1 to 20_000 do
      let i = Rng.int rng unique in
      Db.put db ~key:(key i) (fixture_value i)
    done;
    Db.flush db;
    Db.major_compact db;
    let bytes_on_disk = Device.total_bytes dev in
    let rng = Rng.create 7 in
    let probe = Array.init lookups (fun _ -> key (Rng.int rng unique)) in
    let run () =
      Gc.full_major ();
      let w0 = Gc.minor_words () in
      let t0 = Unix.gettimeofday () in
      for i = 0 to lookups - 1 do
        match Db.get db probe.(i) with
        | Some v -> sink := !sink + String.length v
        | None -> ()
      done;
      let t1 = Unix.gettimeofday () in
      let w1 = Gc.minor_words () in
      ( (t1 -. t0) *. 1e9 /. float_of_int lookups,
        (w1 -. w0) /. float_of_int lookups )
    in
    ignore (run ());
    (* warm the block cache *)
    let hot_ns, hot_w = run () in
    Db.set_block_cache_bytes db 0;
    (* cache off: every get re-reads and re-decodes *)
    let cold_ns, cold_w = run () in
    Db.close db;
    [
      {
        d_compression = name;
        d_mode = "hot";
        d_ns_per_op = hot_ns;
        d_words_per_op = hot_w;
        d_bytes_on_disk = bytes_on_disk;
      };
      {
        d_compression = name;
        d_mode = "cold";
        d_ns_per_op = cold_ns;
        d_words_per_op = cold_w;
        d_bytes_on_disk = bytes_on_disk;
      };
    ]
  in
  one Sstable.C_none "none" @ one Sstable.C_lz "lz"

(* ---------------- gates and report --------------------------------- *)

let find_row rows ~compression ~arm =
  List.find (fun r -> r.compression = compression && r.arm = arm) rows

let run () =
  banner "RP" "zero-copy block read path"
    "decode-once caching + arena cursors cut per-get allocation and latency";
  let rows = block_rows () in
  table
    [ "compression"; "arm"; "ns/op"; "minor words/op" ]
    (List.map (fun r -> [ r.compression; r.arm; f1 r.ns_per_op; f1 r.words_per_op ]) rows);
  print_newline ();
  let db = db_rows () in
  table
    [ "compression"; "cache"; "ns/op"; "minor words/op"; "bytes on disk" ]
    (List.map
       (fun r ->
         [ r.d_compression; r.d_mode; f1 r.d_ns_per_op; f1 r.d_words_per_op; i0 r.d_bytes_on_disk ])
       db);
  let legacy_lz = find_row rows ~compression:"lz" ~arm:"legacy_hot" in
  let new_lz = find_row rows ~compression:"lz" ~arm:"new_hot" in
  let new_none = find_row rows ~compression:"none" ~arm:"new_hot" in
  let words_ratio =
    if new_lz.words_per_op > 0.0 then legacy_lz.words_per_op /. new_lz.words_per_op else infinity
  in
  let hot_words = Float.max new_lz.words_per_op new_none.words_per_op in
  let g_words = words_ratio >= 2.0 in
  let g_ns = new_lz.ns_per_op < legacy_lz.ns_per_op in
  let g_ceiling = hot_words <= hot_hit_words_ceiling in
  Printf.printf
    "\ngates: C_lz hot words/op %.1f -> %.1f (%.1fx, need >= 2x): %s\n\
    \       C_lz hot ns/op    %.1f -> %.1f (need faster):        %s\n\
    \       hot-hit words/op  %.1f (ceiling %.1f):               %s\n"
    legacy_lz.words_per_op new_lz.words_per_op words_ratio
    (if g_words then "PASS" else "FAIL")
    legacy_lz.ns_per_op new_lz.ns_per_op
    (if g_ns then "PASS" else "FAIL")
    hot_words hot_hit_words_ceiling
    (if g_ceiling then "PASS" else "FAIL");
  let pass = g_words && g_ns && g_ceiling in
  let block_json =
    String.concat ",\n"
      (List.map
         (fun r ->
           Printf.sprintf
             "    {\"compression\": \"%s\", \"arm\": \"%s\", \"ns_per_op\": %.1f, \
              \"minor_words_per_op\": %.1f}"
             r.compression r.arm r.ns_per_op r.words_per_op)
         rows)
  in
  let db_json =
    String.concat ",\n"
      (List.map
         (fun r ->
           Printf.sprintf
             "    {\"compression\": \"%s\", \"cache\": \"%s\", \"ns_per_op\": %.1f, \
              \"minor_words_per_op\": %.1f, \"bytes_on_disk\": %d}"
             r.d_compression r.d_mode r.d_ns_per_op r.d_words_per_op r.d_bytes_on_disk)
         db)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"read_path\",\n\
      \  \"entries_per_block\": %d,\n\
      \  \"value_size\": %d,\n\
      \  \"restart_interval\": 16,\n\
      \  \"block_bytes_raw\": %d,\n\
      \  \"block_bytes_lz\": %d,\n\
      \  \"block_point_gets\": [\n%s\n  ],\n\
      \  \"db_point_gets\": [\n%s\n  ],\n\
      \  \"gates\": {\n\
      \    \"hot_hit_words_ceiling\": %.1f,\n\
      \    \"lz_hot_words_improvement\": %.2f,\n\
      \    \"pass\": %b\n\
      \  }\n\
       }\n"
      entries_per_block value_size (String.length raw_block) (String.length frame_lz) block_json
      db_json hot_hit_words_ceiling words_ratio pass
  in
  let oc = open_out "BENCH_read_path.json" in
  output_string oc json;
  close_out oc;
  print_endline "wrote BENCH_read_path.json";
  if not pass then begin
    prerr_endline "read-path allocation gate FAILED";
    exit 1
  end
