(* Benchmark harness entry point.

   dune exec bench/main.exe              - run every experiment (E1..E14)
   dune exec bench/main.exe -- --only E3 - run one experiment
   dune exec bench/main.exe -- --micro   - Bechamel microbenchmarks
   dune exec bench/main.exe -- --parallel - parallel-compaction bench (JSON)
   dune exec bench/main.exe -- --stall   - write-stall bench, inline vs background (JSON)
   dune exec bench/main.exe -- --server  - sharded front-door closed-loop bench (JSON)
   dune exec bench/main.exe -- --read-path - zero-copy read-path allocation bench + gate (JSON)
   dune exec bench/main.exe -- --crash   - crash-recovery fault-injection smoke
   dune exec bench/main.exe -- --corruption - silent-corruption bit-rot smoke
   dune exec bench/main.exe -- --list    - list experiments *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse only micro list_only par stall crash rot srv rp = function
    | [] -> (only, micro, list_only, par, stall, crash, rot, srv, rp)
    | "--micro" :: rest -> parse only true list_only par stall crash rot srv rp rest
    | "--parallel" :: rest -> parse only micro list_only true stall crash rot srv rp rest
    | "--stall" :: rest -> parse only micro list_only par true crash rot srv rp rest
    | "--crash" :: rest -> parse only micro list_only par stall true rot srv rp rest
    | "--corruption" :: rest -> parse only micro list_only par stall crash true srv rp rest
    | "--server" :: rest -> parse only micro list_only par stall crash rot true rp rest
    | "--read-path" :: rest -> parse only micro list_only par stall crash rot srv true rest
    | "--list" :: rest -> parse only micro true par stall crash rot srv rp rest
    | "--only" :: id :: rest -> parse (id :: only) micro list_only par stall crash rot srv rp rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n" arg;
      exit 2
  in
  let only, micro, list_only, par, stall, crash, rot, srv, rp =
    parse [] false false false false false false false false args
  in
  if rp then begin
    Read_path.run ();
    exit 0
  end;
  if crash then begin
    Crash_smoke.run ();
    exit 0
  end;
  if rot then begin
    Corruption_smoke.run ();
    exit 0
  end;
  if par then begin
    Parallel.run ();
    exit 0
  end;
  if stall then begin
    Stall.run ();
    exit 0
  end;
  if srv then begin
    Server_bench.run ();
    exit 0
  end;
  if list_only then begin
    List.iter (fun (id, title, _) -> Printf.printf "%-4s %s\n" id title) Experiments.all;
    exit 0
  end;
  if (not micro) || only <> [] then begin
    print_endline "ocaml-lsm experiment harness - reproducing the LSM design-space tradeoffs";
    print_endline "(see EXPERIMENTS.md for the claim -> experiment mapping)";
    let selected =
      match only with
      | [] -> Experiments.all
      | ids ->
        List.filter
          (fun (id, _, _) ->
            List.exists (fun x -> String.lowercase_ascii x = String.lowercase_ascii id) ids)
          Experiments.all
    in
    let t0 = Sys.time () in
    List.iter (fun (_, _, run) -> run ()) selected;
    Printf.printf "\nall experiments done in %.1f CPU seconds\n" (Sys.time () -. t0)
  end;
  if micro then Micro.run ()
