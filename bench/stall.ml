(* Write-stall benchmark: the same skewed, bursty write workload run
   with the Inline backend and the Background backend at 1, 2, and 4
   compaction workers, against fresh in-memory devices and one workload
   seed, reporting foreground per-write latency percentiles
   (p50/p99/p999 of Stats.write_latency_ns), throughput, compaction
   byte throughput, per-worker lane utilization, and the
   stall/backpressure counters as JSON (BENCH_write_stalls.json).

   Two claims under test. First (SILK, §2.2.3): moving flush+compaction
   off the write path cuts the write-latency tail. The workload arrives
   in bursts with short idle gaps; inline, a rotation-triggering put
   pays for the whole merge cascade it sets off no matter how much
   slack follows (the p99 spikes); in background mode the same work
   runs on the scheduler lane, which drains into the gaps, so writes
   pay at most a bounded backpressure delay. Second: widening the lane
   raises compaction byte throughput — each worker count [w] runs with
   [compaction_workers = w] and [compaction_parallelism = w], so a
   4-wide lane both overlaps flushes with merges and splits each merge
   into parallel subcompaction ranges; with byte-denominated
   backpressure the faster drain also means fewer write stops. The
   device simulates per-page I/O latency ([Device.simulate_latency]) so
   the concurrency is measured against disk-like I/O costs rather than
   the host's core count: overlapped requests overlap their stalls, as
   on a real device's queue. Every engine ends with identical logical
   key/value state — the sequencer replays the same edit order at any
   width — though byte totals may differ a little across parallelism
   levels, because subcompaction output-file boundaries shift and with
   them later pick geometry (the JSON records the totals so readers can
   check).

   Sized so a rotation lands within the p99 window: ~50 entries per
   32 KiB buffer means ~2% of writes trigger one, so the cost a write
   pays at a rotation is exactly what p99 reads. *)

open Common

let ops = 30_000
let unique = 8_000
let value_size = 512
let seed = 4321
let burst = 200 (* puts per burst: ~4 rotations of lane work *)

(* Idle gap between bursts, sized near the burst's own compaction debt
   (~1 MiB of merge work on the simulated device): a one-worker lane
   drains barely too slowly and keeps hitting the byte stop trigger; a
   wider lane clears the same debt inside the gap. *)
let pause_s = 0.1

type run = {
  name : string;
  workers : int; (* 0 = inline (no lane) *)
  rate : float; (* over active (non-idle) time *)
  wall : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
  stalls : int;
  slowdowns : int;
  stops : int;
  compactions : int;
  subcompactions : int;
  compaction_mb : float;
  compaction_mb_s : float; (* bytes moved per second of merge wall time *)
  util : float list; (* per-worker-slot busy fraction of run wall *)
}

(* Bursty zipfian ingestion; returns total time spent idling so the
   throughput number covers active time only. *)
let ingest_bursty db =
  let rng = Rng.create seed in
  let z = Lsm_util.Zipf.create ~theta:0.99 unique in
  let idle = ref 0.0 in
  for i = 1 to ops do
    Db.put db ~key:(key (Lsm_util.Zipf.next_scrambled z rng)) (value value_size rng);
    if i mod burst = 0 then begin
      let t0 = Unix.gettimeofday () in
      Unix.sleepf pause_s;
      idle := !idle +. (Unix.gettimeofday () -. t0)
    end
  done;
  Db.flush db;
  !idle

(* Simulated device speed: 20us per 4 KiB page, read and write — a
   SATA-SSD-ish cost that makes merges I/O-bound, which is the regime
   the multi-worker lane is for. *)
let page_lat_ns = 20_000

let bench_one ~backend ~workers ~name =
  let dev = Device.in_memory () in
  Device.simulate_latency dev ~read_ns_per_page:page_lat_ns
    ~write_ns_per_page:page_lat_ns ();
  let config =
    {
      (bench_config ~buffer:(32 * 1024) ~l1:(256 * 1024) ~file:(16 * 1024)
         ~cache:(8 lsl 20) ())
      with
      compaction_backend = backend;
      compaction_workers = max 1 workers;
      compaction_parallelism = max 1 workers;
      (* Byte-denominated backpressure, set tight enough to engage on
         this device: debt past ~4 buffers slows writes, past ~16 stops
         them — so the sweep shows stops receding as the lane widens. *)
      write_slowdown_trigger = 128 * 1024;
      write_stop_trigger = 512 * 1024;
      wal_enabled = false;
    }
  in
  let db = Db.open_db ~config ~dev () in
  let t0 = Unix.gettimeofday () in
  let idle = ingest_bursty db in
  Db.quiesce db;
  let wall = Unix.gettimeofday () -. t0 in
  let st = Db.stats db in
  let lat = st.Stats.write_latency_ns in
  let us p = float_of_int (Histogram.percentile lat p) /. 1e3 in
  let moved = st.Stats.compaction_bytes_read + st.Stats.compaction_bytes_written in
  let merge_wall_s = float_of_int st.Stats.compaction_wall_ns /. 1e9 in
  let r =
    {
      name;
      workers;
      rate = float_of_int ops /. Float.max (wall -. idle) 1e-9;
      wall;
      p50_us = us 50.0;
      p99_us = us 99.0;
      p999_us = us 99.9;
      max_us = float_of_int (Histogram.max_value lat) /. 1e3;
      stalls = st.Stats.write_stalls;
      slowdowns = st.Stats.write_slowdowns;
      stops = st.Stats.write_stops;
      compactions = st.Stats.compactions;
      subcompactions = st.Stats.subcompactions;
      compaction_mb = float_of_int st.Stats.compaction_bytes_written /. 1048576.0;
      compaction_mb_s =
        (if merge_wall_s > 0.0 then float_of_int moved /. 1048576.0 /. merge_wall_s else 0.0);
      util =
        Array.to_list st.Stats.sched_workers
        |> List.map (fun w ->
               float_of_int w.Stats.w_busy_ns /. Float.max (wall *. 1e9) 1.0);
    }
  in
  Db.close db;
  r

let run () =
  banner "WS" "write stalls: inline vs background compaction, 1/2/4 workers"
    "backgrounding flush+compaction cuts the foreground write-latency tail at equal compaction work; widening the lane raises compaction byte throughput and cuts write stops";
  Printf.printf "host: %d recommended domain(s)\n\n" (Domain.recommended_domain_count ());
  (* Ascending worker counts: the process-wide lane only grows, so each
     run's lane is exactly as wide as its configuration asks. *)
  let inline = bench_one ~backend:Lsm_core.Config.Inline ~workers:0 ~name:"inline" in
  let bg1 = bench_one ~backend:Lsm_core.Config.Background ~workers:1 ~name:"bg-w1" in
  let bg2 = bench_one ~backend:Lsm_core.Config.Background ~workers:2 ~name:"bg-w2" in
  let bg4 = bench_one ~backend:Lsm_core.Config.Background ~workers:4 ~name:"bg-w4" in
  let results = [ inline; bg1; bg2; bg4 ] in
  let util_str r =
    if r.util = [] then "-"
    else String.concat "/" (List.map (fun u -> Printf.sprintf "%.0f%%" (100.0 *. u)) r.util)
  in
  table
    [ "backend"; "ops/s"; "wall_s"; "p50_us"; "p99_us"; "p999_us"; "max_us";
      "stalls"; "slowdn"; "stops"; "cmp"; "subcmp"; "compact_MB"; "cmp_MB/s"; "worker_util" ]
    (List.map
       (fun r ->
         [ r.name; f1 r.rate; f3 r.wall; f1 r.p50_us; f1 r.p99_us; f1 r.p999_us;
           f1 r.max_us; i0 r.stalls; i0 r.slowdowns; i0 r.stops; i0 r.compactions;
           i0 r.subcompactions; f2 r.compaction_mb;
           f1 r.compaction_mb_s; util_str r ])
       results);
  let json_row r =
    Printf.sprintf
      "    {\"backend\": \"%s\", \"workers\": %d, \"ops_per_sec_active\": %.1f, \
       \"wall_s\": %.3f, \
       \"write_latency_us\": {\"p50\": %.1f, \"p99\": %.1f, \"p999\": %.1f, \"max\": %.1f}, \
       \"write_stalls\": %d, \"write_slowdowns\": %d, \"write_stops\": %d, \
       \"compactions\": %d, \"subcompactions\": %d, \"compaction_bytes_written_mb\": %.2f, \
       \"compaction_throughput_mb_s\": %.1f, \
       \"worker_utilization\": [%s]}"
      r.name r.workers r.rate r.wall r.p50_us r.p99_us r.p999_us r.max_us r.stalls
      r.slowdowns r.stops r.compactions r.subcompactions r.compaction_mb r.compaction_mb_s
      (String.concat ", " (List.map (Printf.sprintf "%.3f") r.util))
  in
  let tail_reduction = if bg1.p99_us > 0.0 then inline.p99_us /. bg1.p99_us else 0.0 in
  let throughput_scaling =
    if bg1.compaction_mb_s > 0.0 then bg4.compaction_mb_s /. bg1.compaction_mb_s else 0.0
  in
  let json =
    Printf.sprintf
      "{\n  \"benchmark\": \"write_stalls\",\n  \"ops\": %d,\n  \
       \"unique_keys\": %d,\n  \"value_size\": %d,\n  \"seed\": %d,\n  \
       \"burst_ops\": %d,\n  \"burst_pause_s\": %.3f,\n  \
       \"host_domains\": %d,\n  \"p99_write_latency_inline_over_background\": %.2f,\n  \
       \"compaction_throughput_w4_over_w1\": %.2f,\n  \
       \"runs\": [\n%s\n  ]\n}\n"
      ops unique value_size seed burst pause_s
      (Domain.recommended_domain_count ())
      tail_reduction throughput_scaling
      (String.concat ",\n" (List.map json_row results))
  in
  let oc = open_out "BENCH_write_stalls.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\np99 write latency: inline %.1fus vs background(w1) %.1fus (%.2fx)\n"
    inline.p99_us bg1.p99_us tail_reduction;
  Printf.printf "compaction throughput: w1 %.1f MB/s vs w4 %.1f MB/s (%.2fx)\n"
    bg1.compaction_mb_s bg4.compaction_mb_s throughput_scaling;
  print_endline "wrote BENCH_write_stalls.json"
