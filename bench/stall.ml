(* Write-stall benchmark: the same skewed, bursty write workload run
   with the Inline and Background compaction backends, against fresh
   in-memory devices and one workload seed, reporting foreground
   per-write latency percentiles (p50/p99/p999 of Stats.write_latency_ns),
   throughput, and the stall/backpressure counters as JSON
   (BENCH_write_stalls.json).

   The claim under test: moving flush+compaction off the write path cuts
   the write-latency tail. The workload arrives in bursts with short idle
   gaps — the arrival shape every stall study assumes (SILK, §2.2.3):
   inline, a rotation-triggering put pays for the whole merge cascade it
   sets off no matter how much slack follows (the p99 spikes); in
   background mode the same work runs on the scheduler lane, which
   drains into the gaps, so writes pay at most a bounded backpressure
   delay. Both engines end with identical logical state and the same
   compaction byte counts — the work moved into the slack, it did not
   shrink (the JSON records both so readers can check).

   Sized so a rotation lands within the p99 window: ~50 entries per
   8 KiB buffer means ~2% of writes trigger one, so the cost a write
   pays at a rotation is exactly what p99 reads. *)

open Common

let ops = 60_000
let unique = 4_000
let value_size = 128
let seed = 4321
let burst = 400 (* puts per burst: ~8 rotations of lane work *)
let pause_s = 0.004 (* idle gap between bursts: > the burst's merge work *)

type run = {
  name : string;
  rate : float; (* over active (non-idle) time *)
  wall : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
  stalls : int;
  slowdowns : int;
  stops : int;
  compactions : int;
  compaction_mb : float;
}

(* Bursty zipfian ingestion; returns total time spent idling so the
   throughput number covers active time only. *)
let ingest_bursty db =
  let rng = Rng.create seed in
  let z = Lsm_util.Zipf.create ~theta:0.99 unique in
  let idle = ref 0.0 in
  for i = 1 to ops do
    Db.put db ~key:(key (Lsm_util.Zipf.next_scrambled z rng)) (value value_size rng);
    if i mod burst = 0 then begin
      let t0 = Unix.gettimeofday () in
      Unix.sleepf pause_s;
      idle := !idle +. (Unix.gettimeofday () -. t0)
    end
  done;
  Db.flush db;
  !idle

let bench_one ~backend ~name =
  let dev = Device.in_memory () in
  let config =
    {
      (bench_config ~buffer:(8 * 1024) ~l1:(64 * 1024) ~file:(16 * 1024) ())
      with
      compaction_backend = backend;
      wal_enabled = false;
    }
  in
  let db = Db.open_db ~config ~dev () in
  let t0 = Unix.gettimeofday () in
  let idle = ingest_bursty db in
  Db.quiesce db;
  let wall = Unix.gettimeofday () -. t0 in
  let st = Db.stats db in
  let lat = st.Stats.write_latency_ns in
  let us p = float_of_int (Histogram.percentile lat p) /. 1e3 in
  let r =
    {
      name;
      rate = float_of_int ops /. Float.max (wall -. idle) 1e-9;
      wall;
      p50_us = us 50.0;
      p99_us = us 99.0;
      p999_us = us 99.9;
      max_us = float_of_int (Histogram.max_value lat) /. 1e3;
      stalls = st.Stats.write_stalls;
      slowdowns = st.Stats.write_slowdowns;
      stops = st.Stats.write_stops;
      compactions = st.Stats.compactions;
      compaction_mb = float_of_int st.Stats.compaction_bytes_written /. 1048576.0;
    }
  in
  Db.close db;
  r

let run () =
  banner "WS" "write stalls: inline vs background compaction"
    "backgrounding flush+compaction cuts the foreground write-latency tail at equal compaction work";
  Printf.printf "host: %d recommended domain(s)\n\n" (Domain.recommended_domain_count ());
  let inline = bench_one ~backend:Lsm_core.Config.Inline ~name:"inline" in
  let bg = bench_one ~backend:Lsm_core.Config.Background ~name:"background" in
  let results = [ inline; bg ] in
  table
    [ "backend"; "ops/s"; "wall_s"; "p50_us"; "p99_us"; "p999_us"; "max_us";
      "stalls"; "slowdowns"; "stops"; "compact_MB" ]
    (List.map
       (fun r ->
         [ r.name; f1 r.rate; f3 r.wall; f1 r.p50_us; f1 r.p99_us; f1 r.p999_us;
           f1 r.max_us; i0 r.stalls; i0 r.slowdowns; i0 r.stops; f2 r.compaction_mb ])
       results);
  let json_row r =
    Printf.sprintf
      "    {\"backend\": \"%s\", \"ops_per_sec_active\": %.1f, \"wall_s\": %.3f, \
       \"write_latency_us\": {\"p50\": %.1f, \"p99\": %.1f, \"p999\": %.1f, \"max\": %.1f}, \
       \"write_stalls\": %d, \"write_slowdowns\": %d, \"write_stops\": %d, \
       \"compactions\": %d, \"compaction_bytes_written_mb\": %.2f}"
      r.name r.rate r.wall r.p50_us r.p99_us r.p999_us r.max_us r.stalls r.slowdowns
      r.stops r.compactions r.compaction_mb
  in
  let tail_reduction = if bg.p99_us > 0.0 then inline.p99_us /. bg.p99_us else 0.0 in
  let json =
    Printf.sprintf
      "{\n  \"benchmark\": \"write_stalls\",\n  \"ops\": %d,\n  \
       \"unique_keys\": %d,\n  \"value_size\": %d,\n  \"seed\": %d,\n  \
       \"burst_ops\": %d,\n  \"burst_pause_s\": %.3f,\n  \
       \"host_domains\": %d,\n  \"p99_write_latency_inline_over_background\": %.2f,\n  \
       \"runs\": [\n%s\n  ]\n}\n"
      ops unique value_size seed burst pause_s
      (Domain.recommended_domain_count ())
      tail_reduction
      (String.concat ",\n" (List.map json_row results))
  in
  let oc = open_out "BENCH_write_stalls.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\np99 write latency: inline %.1fus vs background %.1fus (%.2fx)\n"
    inline.p99_us bg.p99_us tail_reduction;
  print_endline "wrote BENCH_write_stalls.json"
