(* lsm-doctor: offline verification and repair of a closed store.

   Modes:
     lsm-doctor verify --dir DIR   scrub a store, report findings, exit 1 if any
     lsm-doctor repair --dir DIR   salvage in place, print the repair report
     lsm-doctor --selftest         end-to-end smoke on the in-memory device
                                   (seeded store, injected bit rot, repair,
                                   reopen, no-wrong-data check); CI runs this

   The on-disk modes open the directory with the real-file backend; the
   store must be closed (no live writers). *)

module Device = Lsm_storage.Device
module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Doctor = Lsm_core.Doctor
module Lsm_error = Lsm_util.Lsm_error

let usage = "lsm-doctor [verify|repair] --dir DIR | lsm-doctor --selftest"

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("lsm-doctor: " ^ s); exit 2) fmt

(* ------------------------------------------------------------------ *)
(* Selftest: the zero-dependency smoke CI runs.                        *)
(* ------------------------------------------------------------------ *)

let selftest () =
  let dev = Device.in_memory () in
  (* A buffer big enough that each table carries dozens of data blocks:
     one rotten page then costs one block, not the whole table. *)
  let config =
    { Config.default with Config.write_buffer_size = 1 lsl 16; wal_sync_every_write = true }
  in
  let key i = Printf.sprintf "key-%04d" i in
  let value i = Printf.sprintf "value-%04d-%s" i (String.make 64 'v') in
  let n = 1500 in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to n - 1 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  Db.close db;
  (* Rot one page per table; the doctor must notice all of it. *)
  let hits =
    Device.plan_corruption dev ~seed:42 ~classes:[ Device.F_sst ] ~pages:1 ()
  in
  if hits = [] then fail "selftest: corruption injection hit nothing";
  let findings = Doctor.verify dev in
  if findings = [] then fail "selftest: verify missed injected bit rot";
  let report = Doctor.repair dev in
  Format.printf "%a@." Doctor.pp_report report;
  (* Reopen and check: every surviving key must carry its exact written
     value (wrong data is the one unforgivable outcome), and keys outside
     the reported lost ranges must all be present. *)
  let db2 = Db.open_db ~config ~dev () in
  let got = Db.scan db2 ~lo:"" ~hi:None () in
  List.iter
    (fun (k, v) ->
      match int_of_string_opt (String.sub k 4 4) with
      | Some i when String.length k = 8 && k = key i ->
        if v <> value i then fail "selftest: wrong value served for %s" k
      | _ -> fail "selftest: unexpected key %S" k)
    got;
  let lost k =
    List.exists
      (fun (tr : Doctor.table_report) ->
        List.exists (fun (lo, hi) -> (lo = "" && hi = "") || (lo <= k && k <= hi)) tr.Doctor.tr_lost_ranges)
      report.Doctor.tables
  in
  let missing = ref 0 in
  for i = 0 to n - 1 do
    if not (List.mem_assoc (key i) got) && not (lost (key i)) then incr missing
  done;
  if !missing > 0 then fail "selftest: %d keys lost outside reported ranges" !missing;
  if got = [] then fail "selftest: salvage recovered nothing";
  Db.close db2;
  Printf.printf "selftest ok: %d hits, %d findings, %d/%d keys survived\n"
    (List.length hits) (List.length findings) (List.length got) n;
  exit 0

(* ------------------------------------------------------------------ *)
(* On-disk modes                                                       *)
(* ------------------------------------------------------------------ *)

let run_verify dir =
  let dev = Device.on_disk ~dir () in
  match Doctor.verify dev with
  | [] ->
    print_endline "store is sound";
    exit 0
  | findings ->
    List.iter (fun c -> print_endline (Lsm_error.to_string c)) findings;
    exit 1

let run_repair dir =
  let dev = Device.on_disk ~dir () in
  let report = Doctor.repair dev in
  Format.printf "%a@." Doctor.pp_report report;
  exit (if report.Doctor.findings = [] then 0 else 1)

let () =
  let dir = ref "" in
  let mode = ref "" in
  let selftest_flag = ref false in
  let spec =
    [
      ("--dir", Arg.Set_string dir, "DIR store directory (on-disk backend)");
      ("--selftest", Arg.Set selftest_flag, " run the in-memory end-to-end smoke");
    ]
  in
  Arg.parse spec
    (fun a -> if !mode = "" then mode := a else fail "unexpected argument %S" a)
    usage;
  if !selftest_flag then selftest ()
  else
    match !mode with
    | "verify" when !dir <> "" -> run_verify !dir
    | "repair" when !dir <> "" -> run_repair !dir
    | "" -> fail "no mode given\n%s" usage
    | m when !dir = "" -> fail "mode %S needs --dir" m
    | m -> fail "unknown mode %S" m
