(* lsm-doctor: offline verification and repair of a closed store.

   Modes:
     lsm-doctor verify --dir DIR   scrub a store, report findings, exit 1 if any
     lsm-doctor repair --dir DIR   salvage in place, print the repair report
     lsm-doctor repair --repair-manifest --dir DIR
                                   manifest-only repair: rebuild a rotted
                                   MANIFEST from the surviving table footers,
                                   touching nothing else
     lsm-doctor --selftest         end-to-end smoke on the in-memory device
                                   (seeded store, injected bit rot, repair,
                                   reopen, no-wrong-data check, plus the
                                   manifest-rebuild and ECC legs); CI runs this

   Exit codes: 0 = store was already sound; 1 = repaired, nothing lost
   (all damage was re-derivable metadata); 3 = repaired with disclosed
   losses (the report lists the lost key/byte ranges); 2 = operational
   error. A plain verify exits 0/1 for sound/defective.

   The on-disk modes open the directory with the real-file backend; the
   store must be closed (no live writers). *)

module Device = Lsm_storage.Device
module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Doctor = Lsm_core.Doctor
module Lsm_error = Lsm_util.Lsm_error

let usage = "lsm-doctor [verify|repair] --dir DIR | lsm-doctor --selftest"

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("lsm-doctor: " ^ s); exit 2) fmt

(* ------------------------------------------------------------------ *)
(* Selftest: the zero-dependency smoke CI runs.                        *)
(* ------------------------------------------------------------------ *)

let selftest_salvage () =
  let dev = Device.in_memory () in
  (* A buffer big enough that each table carries dozens of data blocks:
     one rotten page then costs one block, not the whole table. *)
  let config =
    { Config.default with Config.write_buffer_size = 1 lsl 16; wal_sync_every_write = true }
  in
  let key i = Printf.sprintf "key-%04d" i in
  let value i = Printf.sprintf "value-%04d-%s" i (String.make 64 'v') in
  let n = 1500 in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to n - 1 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  Db.close db;
  (* Rot one page per table; the doctor must notice all of it. *)
  let hits =
    Device.plan_corruption dev ~seed:42 ~classes:[ Device.F_sst ] ~pages:1 ()
  in
  if hits = [] then fail "selftest: corruption injection hit nothing";
  let findings = Doctor.verify dev in
  if findings = [] then fail "selftest: verify missed injected bit rot";
  let report = Doctor.repair dev in
  Format.printf "%a@." Doctor.pp_report report;
  (* Reopen and check: every surviving key must carry its exact written
     value (wrong data is the one unforgivable outcome), and keys outside
     the reported lost ranges must all be present. *)
  let db2 = Db.open_db ~config ~dev () in
  let got = Db.scan db2 ~lo:"" ~hi:None () in
  List.iter
    (fun (k, v) ->
      match int_of_string_opt (String.sub k 4 4) with
      | Some i when String.length k = 8 && k = key i ->
        if v <> value i then fail "selftest: wrong value served for %s" k
      | _ -> fail "selftest: unexpected key %S" k)
    got;
  let lost k =
    List.exists
      (fun (tr : Doctor.table_report) ->
        List.exists (fun (lo, hi) -> (lo = "" && hi = "") || (lo <= k && k <= hi)) tr.Doctor.tr_lost_ranges)
      report.Doctor.tables
  in
  let missing = ref 0 in
  for i = 0 to n - 1 do
    if not (List.mem_assoc (key i) got) && not (lost (key i)) then incr missing
  done;
  if !missing > 0 then fail "selftest: %d keys lost outside reported ranges" !missing;
  if got = [] then fail "selftest: salvage recovered nothing";
  (* Single-page rot inside table data is real loss, and the exit-code
     contract (1 vs 3) hangs on the report saying so. *)
  if not (Doctor.disclosed_losses report) then
    fail "selftest: sst rot repaired but the report disclosed no losses";
  Db.close db2;
  Printf.printf "selftest salvage ok: %d hits, %d findings, %d/%d keys survived\n"
    (List.length hits) (List.length findings) (List.length got) n

(* Manifest-only rot: the tables and WAL are intact, so [repair_manifest]
   must re-derive the version edits from the surviving footers and the
   reopened store must reproduce the exact final state. *)
let selftest_manifest () =
  let dev = Device.in_memory () in
  let config =
    { Config.default with Config.write_buffer_size = 1 lsl 16; wal_sync_every_write = true }
  in
  let key i = Printf.sprintf "key-%04d" i in
  let value i = Printf.sprintf "value-%04d-%s" i (String.make 64 'v') in
  let n = 1200 in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to n - 1 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  Db.close db;
  let hits =
    Device.plan_corruption dev ~seed:7 ~classes:[ Device.F_manifest ] ~pages:1 ()
  in
  if hits = [] then fail "selftest: manifest corruption hit nothing";
  let tables, findings = Doctor.repair_manifest dev in
  if tables = 0 then fail "selftest: manifest rebuild referenced no tables";
  let db2 = Db.open_db ~config ~dev () in
  let got = Db.scan db2 ~lo:"" ~hi:None () in
  if List.length got <> n then
    fail "selftest: manifest rebuild lost keys (%d of %d)" (List.length got) n;
  List.iteri
    (fun i (k, v) ->
      if k <> key i || v <> value i then
        fail "selftest: manifest rebuild served wrong data for %s" k)
    got;
  Db.close db2;
  Printf.printf "selftest manifest ok: %d tables re-referenced, %d findings\n" tables
    (List.length findings)

(* ECC leg: with parity on, single-page rot per table must be healed in
   place during reads — exact values, zero quarantines, a clean
   [Doctor.verify] afterwards proving the device itself was repaired. *)
let selftest_ecc () =
  let dev = Device.in_memory () in
  let config =
    {
      Config.default with
      Config.write_buffer_size = 1 lsl 16;
      wal_sync_every_write = true;
      ecc = Some { Config.ecc_data_pages = 8; ecc_parity_pages = 2 };
    }
  in
  let key i = Printf.sprintf "key-%04d" i in
  let value i = Printf.sprintf "value-%04d-%s" i (String.make 64 'v') in
  let n = 1500 in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to n - 1 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  Db.close db;
  let hits =
    Device.plan_corruption dev ~seed:42 ~classes:[ Device.F_sst ] ~pages:1 ()
  in
  if hits = [] then fail "selftest: ecc corruption injection hit nothing";
  let db2 = Db.open_db ~config ~dev () in
  for i = 0 to n - 1 do
    match Db.get db2 (key i) with
    | Some v when v = value i -> ()
    | Some _ -> fail "selftest: ecc leg served wrong data for %s" (key i)
    | None -> fail "selftest: ecc leg lost %s" (key i)
    | exception e ->
      fail "selftest: ecc read of %s raised %s" (key i) (Printexc.to_string e)
  done;
  if Db.quarantined_tables db2 <> [] then
    fail "selftest: ecc leg quarantined a table instead of repairing it";
  let st = Db.stats db2 in
  if st.Lsm_core.Stats.ecc_repairs = 0 then
    fail "selftest: ecc leg read everything without repairing anything";
  if Db.verify_integrity db2 <> [] then
    fail "selftest: store still corrupt after ecc repairs";
  Db.close db2;
  (* The offline doctor sees the same healed device: nothing to report. *)
  (match Doctor.verify dev with
  | [] -> ()
  | fs -> fail "selftest: doctor still finds %d defects after ecc repair" (List.length fs));
  Printf.printf "selftest ecc ok: %d hits healed in place\n" (List.length hits)

let selftest () =
  selftest_salvage ();
  selftest_manifest ();
  selftest_ecc ();
  exit 0

(* ------------------------------------------------------------------ *)
(* On-disk modes                                                       *)
(* ------------------------------------------------------------------ *)

let run_verify dir =
  let dev = Device.on_disk ~dir () in
  match Doctor.verify dev with
  | [] ->
    print_endline "store is sound";
    exit 0
  | findings ->
    List.iter (fun c -> print_endline (Lsm_error.to_string c)) findings;
    exit 1

let run_repair dir =
  let dev = Device.on_disk ~dir () in
  let report = Doctor.repair dev in
  Format.printf "%a@." Doctor.pp_report report;
  (* 0: nothing was wrong; 1: repaired, every defect was re-derivable
     metadata; 3: repaired but data was disclosed as lost. *)
  exit
    (if report.Doctor.findings = [] then 0
     else if Doctor.disclosed_losses report then 3
     else 1)

let run_repair_manifest dir =
  let dev = Device.on_disk ~dir () in
  let tables, findings = Doctor.repair_manifest dev in
  Printf.printf "manifest rebuilt: %d tables referenced\n" tables;
  List.iter (fun c -> print_endline (Lsm_error.to_string c)) findings;
  (* Unopenable tables are disclosed losses of this narrow mode. *)
  exit (if findings = [] then 1 else 3)

let () =
  let dir = ref "" in
  let mode = ref "" in
  let selftest_flag = ref false in
  let manifest_only = ref false in
  let spec =
    [
      ("--dir", Arg.Set_string dir, "DIR store directory (on-disk backend)");
      ( "--repair-manifest",
        Arg.Set manifest_only,
        " with repair: rebuild only the MANIFEST from surviving table footers" );
      ("--selftest", Arg.Set selftest_flag, " run the in-memory end-to-end smoke");
    ]
  in
  Arg.parse spec
    (fun a -> if !mode = "" then mode := a else fail "unexpected argument %S" a)
    usage;
  if !selftest_flag then selftest ()
  else
    match !mode with
    | "verify" when !dir <> "" -> run_verify !dir
    | "repair" when !dir <> "" ->
      if !manifest_only then run_repair_manifest !dir else run_repair !dir
    | "" when !manifest_only && !dir <> "" -> run_repair_manifest !dir
    | "" -> fail "no mode given\n%s" usage
    | m when !dir = "" -> fail "mode %S needs --dir" m
    | m -> fail "unknown mode %S" m
