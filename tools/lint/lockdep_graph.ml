(* `lsm-lint --lockdep-graph FILE`: offline judgment of the runtime
   lockdep graph recorder's output (Ordered_mutex.Graph).

   The recorder merges each run's observed acquired-before edges into a
   persisted file; a cycle in the *merged* graph means two executions
   acquired the same locks in opposite orders even though each run on
   its own was acyclic — the cross-run deadlock class single-run rank
   enforcement cannot see. Cycles here are failing findings.

   The loaded graph is also cross-checked against the statically
   inferred relation (R9): runtime edges absent from the static graph
   expose holes in the static model (an unknown higher-order invoker,
   an FFI callback); static edges never observed at runtime are
   untested orderings. Both asymmetries are informational — printed,
   not findings — since each side over/under-approximates the other by
   design. *)

module Graph = Lsm_util.Ordered_mutex.Graph

type report = {
  g_edges : Graph.edge list;
  g_findings : Finding.t list;  (* one per cycle *)
  only_runtime : (string * string) list;  (* observed, not derived *)
  only_static : (string * string) list;  (* derived, never observed *)
}

let analyze ~file ~(static_edges : Lock_summary.edge list) : report =
  let g_edges = Graph.load file in
  let cycles = Graph.cycles g_edges in
  let g_findings =
    List.map
      (fun cyc ->
        let stack =
          (* sample stack of the first edge participating in the cycle,
             if any — gives the reader one concrete acquisition path *)
          match cyc with
          | a :: b :: _ -> (
            match List.find_opt (fun (e : Graph.edge) -> e.src = a && e.dst = b) g_edges with
            | Some e -> e.stack
            | None -> [])
          | _ -> []
        in
        Finding.v ~file ~line:1 ~rule:"R11" ~chain:stack
          (Printf.sprintf "cycle in merged runtime lockdep graph: %s" (String.concat " -> " cyc)))
      cycles
  in
  let runtime_set = List.map (fun (e : Graph.edge) -> (e.src, e.dst)) g_edges in
  let static_set =
    List.map (fun (e : Lock_summary.edge) -> (e.Lock_summary.e_src, e.Lock_summary.e_dst)) static_edges
  in
  let diff a b = List.filter (fun p -> not (List.mem p b)) a in
  {
    g_edges;
    g_findings;
    only_runtime = List.sort_uniq compare (diff runtime_set static_set);
    only_static = List.sort_uniq compare (diff static_set runtime_set);
  }

let pp_cross_check ppf r =
  Format.fprintf ppf "lockdep graph: %d observed edge(s), %d cycle(s)@."
    (List.length r.g_edges) (List.length r.g_findings);
  if r.only_runtime <> [] then begin
    Format.fprintf ppf "observed at runtime but not statically derived (static-model holes?):@.";
    List.iter (fun (s, d) -> Format.fprintf ppf "  %s -> %s@." s d) r.only_runtime
  end;
  if r.only_static <> [] then begin
    Format.fprintf ppf "statically derived but never observed (untested orderings):@.";
    List.iter (fun (s, d) -> Format.fprintf ppf "  %s -> %s@." s d) r.only_static
  end
