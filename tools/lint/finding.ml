(* A lint finding, shared by both frontends (Parsetree and Typedtree),
   plus the suppression-comment machinery.

   [chain] is populated by the whole-program passes: for R9 it is the
   inter-module call chain from the lock-holding function to the
   acquisition that violates the order (e.g. [Db.get -> Table_cache.get
   -> Block_cache.find]); empty for per-site rules. *)

type t = { file : string; line : int; rule : string; msg : string; chain : string list }

let v ?(chain = []) ~file ~line ~rule msg = { file; line; rule; msg; chain }

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (match compare a.line b.line with 0 -> String.compare a.rule b.rule | c -> c)
  | c -> c

let pp_text ppf f =
  Format.fprintf ppf "%s:%d %s %s" f.file f.line f.rule f.msg;
  if f.chain <> [] then Format.fprintf ppf " [chain: %s]" (String.concat " -> " f.chain)

(* Hand-rolled JSON: findings are flat records of strings/ints, and the
   toolchain has no JSON dependency to lean on. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf {|{"file":"%s","line":%d,"rule":"%s","message":"%s","chain":[%s]}|}
    (json_escape f.file) f.line (json_escape f.rule) (json_escape f.msg)
    (String.concat "," (List.map (fun c -> "\"" ^ json_escape c ^ "\"") f.chain))

let list_to_json fs = "[" ^ String.concat ",\n " (List.map to_json fs) ^ "]"

(* ---------------- suppression comments ---------------- *)

(* Per-site suppression: an lsm-lint comment [allow Rn — reason] on the
   finding's line or the line before. The reason is mandatory; a
   reasonless or malformed comment is itself a finding (R0). [s_used]
   is flipped when the suppression absorbs a finding, so the driver can
   report suppressions that suppress nothing (also R0): stale allows
   must not rot in the tree. *)
type suppression = {
  s_rules : string list;
  s_first : int;
  s_last : int;
  mutable s_used : bool;
}

(* Scan raw source for comments, tracking comment nesting and string
   literals (normal "..." with escapes and {tag|...|tag} quoted
   strings). Returns (start_line, end_line, text) per comment. *)
let comments_of_source src =
  let n = String.length src in
  let line = ref 1 in
  let comments = ref [] in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  let take () =
    let c = src.[!i] in
    bump c;
    incr i;
    c
  in
  let rec skip_string () =
    if !i < n then
      match take () with
      | '\\' ->
        if !i < n then ignore (take ());
        skip_string ()
      | '"' -> ()
      | _ -> skip_string ()
  in
  let rec skip_quoted tag =
    if !i < n then
      match take () with
      | '|' ->
        let tl = String.length tag in
        if !i + tl < n && String.sub src !i tl = tag && src.[!i + tl] = '}' then begin
          (* the tag and '}' contain no newlines *)
          i := !i + tl + 1
        end
        else skip_quoted tag
      | _ -> skip_quoted tag
  in
  let read_comment start =
    let buf = Buffer.create 64 in
    let depth = ref 1 in
    while !depth > 0 && !i < n do
      if src.[!i] = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        Buffer.add_string buf "(*";
        i := !i + 2;
        incr depth
      end
      else if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        i := !i + 2;
        decr depth;
        if !depth > 0 then Buffer.add_string buf "*)"
      end
      else Buffer.add_char buf (take ())
    done;
    comments := (start, !line, Buffer.contents buf) :: !comments
  in
  while !i < n do
    let c = src.[!i] in
    if c = '"' then begin
      incr i;
      skip_string ()
    end
    else if c = '{' then begin
      let j = ref (!i + 1) in
      while !j < n && (src.[!j] = '_' || (src.[!j] >= 'a' && src.[!j] <= 'z')) do
        incr j
      done;
      if !j < n && src.[!j] = '|' then begin
        let tag = String.sub src (!i + 1) (!j - !i - 1) in
        i := !j + 1;
        skip_quoted tag
      end
      else incr i
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start = !line in
      i := !i + 2;
      read_comment start
    end
    else begin
      bump c;
      incr i
    end
  done;
  List.rev !comments

let rule_token tok =
  let tok =
    if String.length tok > 1 && tok.[String.length tok - 1] = ',' then
      String.sub tok 0 (String.length tok - 1)
    else tok
  in
  if
    String.length tok >= 2
    && tok.[0] = 'R'
    && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub tok 1 (String.length tok - 1))
  then Some tok
  else None

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = if i + nn > nh then None else if String.sub hay i nn = needle then Some i else go (i + 1) in
  go 0

(* Parse suppressions out of one file's comments: valid suppressions
   plus R0 findings for malformed / reasonless ones. *)
let parse_suppressions file comments =
  let sups = ref [] and bad = ref [] in
  let r0 line msg = bad := v ~file ~line ~rule:"R0" msg :: !bad in
  List.iter
    (fun (first, last_line, text) ->
      match find_substring text "lsm-lint" with
      | None -> ()
      | Some at
        when (* Only a colon right after the tool name opens a
                suppression; prose that merely mentions lsm-lint does
                not. *)
             let j = ref (at + String.length "lsm-lint") in
             while !j < String.length text && text.[!j] = ' ' do
               incr j
             done;
             !j < String.length text && text.[!j] = ':' ->
        let rest = String.sub text at (String.length text - at) in
        let rest =
          match String.index_opt rest ':' with
          | Some c -> String.sub rest (c + 1) (String.length rest - c - 1)
          | None -> ""
        in
        let toks =
          String.map (fun c -> if c = '\n' || c = '\t' || c = '\r' then ' ' else c) rest
          |> String.split_on_char ' '
          |> List.filter (fun s -> s <> "")
        in
        (match toks with
        | "allow" :: more ->
          let rec take_rules acc = function
            | tok :: tl -> (
              match rule_token tok with
              | Some r -> take_rules (r :: acc) tl
              | None -> (List.rev acc, tok :: tl))
            | [] -> (List.rev acc, [])
          in
          let rules, reason = take_rules [] more in
          let reason = match reason with ("\xe2\x80\x94" | "-" | "--" | ":") :: tl -> tl | tl -> tl in
          if rules = [] then r0 first "lsm-lint comment names no rule (expected: lsm-lint: allow Rn \xe2\x80\x94 reason)"
          else if reason = [] then
            r0 first
              (Printf.sprintf "suppression of %s has no reason (format: lsm-lint: allow Rn \xe2\x80\x94 reason)"
                 (String.concat "," rules))
          else sups := { s_rules = rules; s_first = first; s_last = last_line + 1; s_used = false } :: !sups
        | _ -> r0 first "malformed lsm-lint comment (expected: lsm-lint: allow Rn \xe2\x80\x94 reason)")
      | Some _ -> ())
    comments;
  (!sups, !bad)

(* Marks the matching suppression used — unused ones are reported. *)
let suppressed sups rule line =
  match
    List.find_opt (fun s -> List.mem rule s.s_rules && line >= s.s_first && line <= s.s_last) sups
  with
  | Some s ->
    s.s_used <- true;
    true
  | None -> false

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_suppressions path =
  match read_file path with
  | src -> parse_suppressions path (comments_of_source src)
  | exception Sys_error _ -> ([], [])
