(* The Parsetree frontend: per-file syntactic rules R1-R8.

   These rules deliberately require no typing — each file is parsed
   with the compiler's own frontend (compiler-libs, parsing only), so
   test fixtures need not compile and the pass runs on any tree state.
   Cross-module, resolution-dependent analyses (R9 static lockdep, R10
   iterator escape) live in the Typedtree frontend (typed_rules.ml).

   Rules:
     R1  raw [Mutex.lock]/[unlock]/[try_lock] call sites — everything
         must go through [Ordered_mutex.with_lock] (exception safety +
         lockdep); only ordered_mutex.ml itself is exempt.
     R2  Device/Wal/Sstable calls syntactically inside a
         [with_lock]/[locked] body in the cache modules: I/O under a
         cache lock serializes every other domain behind the device.
     R3  every module has an .mli sealing its internals.
     R4  [Obj.magic] anywhere; module-level mutable state
         ([ref]/[Hashtbl.create]/[Atomic.make] in a top-level binding)
         outside the allowlist — hidden shared state is a data race
         waiting for a second domain.
     R5  [Atomic.get] and [Atomic.set] of the same location within one
         top-level binding, with no CAS in sight: a lost-update
         read-modify-write split across two atomic ops.
     R6  raw [Domain.spawn] / [Thread.create] outside domain_pool.ml —
         ad-hoc domains escape the pool's bounded-width and
         future-join discipline (and the ~128-domain runtime cap).
     R7  [failwith] / [raise (Failure _)] in library code — untyped
         stringly errors cross the API boundary where callers can only
         catch-all; raise a typed [Lsm_util.Lsm_error] (or a documented
         module exception) instead. Catching [Failure] is fine.
     R8  [Condition.wait] (or [Ordered_mutex.wait]) not syntactically
         inside a [while]-predicate loop body: condition variables have
         spurious wakeups and stolen signals, so a wait guarded by a
         single [if] — or by nothing — proceeds on a predicate that may
         no longer hold. Only ordered_mutex.ml itself is exempt (it
         defines the delegating wrapper).
     R12 allocation-heavy idioms in the block hot modules (files named
         block.ml, the per-record decode path): [String.sub ... ^ ...]
         (two copies per record — blit into a reusable arena),
         [String.concat] (a list plus a fresh string per record), and
         [Bytes.to_string] inside a [while]/[for] loop (a copy per
         iteration — hoist it or compare in place). Scoped by file name
         because these idioms are fine in cold code; on the block
         cursor they are exactly the allocations the zero-copy read
         path exists to avoid. *)

let all_rules = [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7"; "R8"; "R12" ]

(* Files allowed to touch raw mutexes: the blessed combinator itself. *)
let r1_exempt = [ "ordered_mutex.ml" ]

(* Modules whose locks sit on fan-out hot paths; R2 applies here. *)
let r2_cache_modules = [ "block_cache.ml"; "table_cache.ml" ]
let r2_io_modules = [ "Device"; "Wal"; "Sstable" ]
let lock_combinators = [ "with_lock"; "locked" ]

(* Modules allowed module-level mutable state (documented, reviewed:
   the lockdep enforcement flag and graph recorder; the scheduler's
   process-wide background lane singleton). *)
let r4_state_allowlist = [ "ordered_mutex.ml"; "scheduler.ml" ]

(* The one module allowed to create domains/threads: the pool. *)
let r6_exempt = [ "domain_pool.ml" ]

(* Modules allowed [failwith]: the xor filter's peeling loop, whose
   failure is an internal algorithmic invariant (can't happen on any
   input), not an error condition a caller could meaningfully type. *)
let r7_exempt = [ "xor_filter.ml" ]

(* The module defining the blessed wait wrapper: its own
   [Condition.wait] is a one-line delegation, not a wait site. *)
let r8_exempt = [ "ordered_mutex.ml" ]

(* Files on the per-record block decode path; R12 applies here. *)
let r12_hot_modules = [ "block.ml" ]

(* ---------------- AST helpers ---------------- *)

open Parsetree

let flatten_lid lid = try Longident.flatten lid with _ -> []
let line_of (e : expression) = e.pexp_loc.Location.loc_start.Lexing.pos_lnum
let last_comp = function [] -> "" | l -> List.nth l (List.length l - 1)
let head_ident e = match e.pexp_desc with Pexp_ident { txt; _ } -> flatten_lid txt | _ -> []

(* Normalize [f @@ x] and [x |> f] into a direct application so the
   idiomatic [locked t @@ fun () -> ...] is recognized as a lock body. *)
let rec normalize_apply f args =
  match (f.pexp_desc, args) with
  | Pexp_ident { txt = Longident.Lident "@@"; _ }, [ (_, lhs); (_, rhs) ] -> (
    match lhs.pexp_desc with
    | Pexp_apply (f', args') -> normalize_apply f' (args' @ [ (Asttypes.Nolabel, rhs) ])
    | _ -> (lhs, [ (Asttypes.Nolabel, rhs) ]))
  | Pexp_ident { txt = Longident.Lident "|>"; _ }, [ (_, lhs); (_, rhs) ] -> (
    match rhs.pexp_desc with
    | Pexp_apply (f', args') -> normalize_apply f' (args' @ [ (Asttypes.Nolabel, lhs) ])
    | _ -> (rhs, [ (Asttypes.Nolabel, lhs) ]))
  | _ -> (f, args)

(* Canonical string for an atomic location: [Atomic.get t.field] and
   [Atomic.set t.field v] must key identically. *)
let rec path_repr e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> String.concat "." (flatten_lid txt)
  | Pexp_field (b, { txt; _ }) -> path_repr b ^ "." ^ last_comp (flatten_lid txt)
  | _ -> "?"

(* ---------------- per-file rule pass ---------------- *)

type ctx = {
  file : string;
  base : string;
  active : string -> bool;
  mutable out : Finding.t list;
}

let emit ctx rule line msg = ctx.out <- Finding.v ~file:ctx.file ~line ~rule msg :: ctx.out

let check_r1 ctx e =
  if ctx.active "R1" && not (List.mem ctx.base r1_exempt) then begin
    let path = head_ident e in
    let len = List.length path in
    if len >= 2 && List.nth path (len - 2) = "Mutex" then
      match last_comp path with
      | ("lock" | "unlock" | "try_lock") as fn ->
        emit ctx "R1" (line_of e)
          (Printf.sprintf
             "raw Mutex.%s; use Lsm_util.Ordered_mutex.with_lock (exception-safe, lockdep-checked)" fn)
      | _ -> ()
  end

let check_r6 ctx e =
  if ctx.active "R6" && not (List.mem ctx.base r6_exempt) then
    match head_ident e with
    | ([ "Domain"; "spawn" ] | [ "Thread"; "create" ]) as path ->
      emit ctx "R6" (line_of e)
        (Printf.sprintf
           "raw %s; go through Lsm_util.Domain_pool (bounded width, future joins, single shutdown path)"
           (String.concat "." path))
    | _ -> ()

let check_r7 ctx e =
  if ctx.active "R7" && not (List.mem ctx.base r7_exempt) then
    match e.pexp_desc with
    | Pexp_ident _
      when head_ident e = [ "failwith" ] || head_ident e = [ "Stdlib"; "failwith" ] ->
      emit ctx "R7" (line_of e)
        "failwith raises an untyped Failure; raise a typed Lsm_util.Lsm_error (or a documented module exception)"
    | Pexp_apply (f, args) -> (
      let f, args = normalize_apply f args in
      match (head_ident f, args) with
      | [ ("raise" | "raise_notrace") ], (_, arg) :: _ -> (
        match arg.pexp_desc with
        | Pexp_construct ({ txt; _ }, _) when last_comp (flatten_lid txt) = "Failure" ->
          emit ctx "R7" (line_of e)
            "raise (Failure _) is untyped; raise a typed Lsm_util.Lsm_error (or a documented module exception)"
        | _ -> ())
      | _ -> ())
    | _ -> ()

(* R8: a condition wait whose enclosing syntax is not a while-loop body.
   [in_while] counts enclosing [Pexp_while] bodies (maintained by
   [lint_structure]); waits in the loop *condition* do not count —
   `while Condition.wait ... do () done` re-checks nothing. *)
let check_r8 ctx ~in_while e =
  if ctx.active "R8" && not (List.mem ctx.base r8_exempt) && in_while = 0 then begin
    let path = head_ident e in
    let len = List.length path in
    if
      len >= 2
      && last_comp path = "wait"
      && List.mem (List.nth path (len - 2)) [ "Condition"; "Ordered_mutex" ]
    then
      emit ctx "R8" (line_of e)
        (Printf.sprintf
           "%s outside a while-predicate loop: spurious wakeups and stolen signals require re-checking the predicate (while not (pred) do wait done)"
           (String.concat "." path))
  end

(* R12: allocation-heavy per-record idioms, scoped to the block hot
   modules. [in_loop] counts enclosing [while]/[for] bodies (maintained
   by [lint_structure]); the [Bytes.to_string] pattern only fires inside
   one — a single post-loop materialization is the blessed idiom. *)
let check_r12 ctx ~in_loop e =
  if ctx.active "R12" && List.mem ctx.base r12_hot_modules then
    match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      let f, args = normalize_apply f args in
      match head_ident f with
      | [ "^" ] | [ "Stdlib"; "^" ] ->
        let is_string_sub (_, (a : expression)) =
          match a.pexp_desc with
          | Pexp_apply (g, _) -> head_ident g = [ "String"; "sub" ]
          | _ -> false
        in
        if List.exists is_string_sub args then
          emit ctx "R12" (line_of e)
            "String.sub ... ^ ... copies the key twice per record on the block hot path; blit into a reusable Bytes arena"
      | [ "String"; "concat" ] ->
        emit ctx "R12" (line_of e)
          "String.concat allocates a list and a fresh string per record on the block hot path; build into a reusable buffer"
      | [ "Bytes"; "to_string" ] when in_loop > 0 ->
        emit ctx "R12" (line_of e)
          "Bytes.to_string inside a loop copies every iteration on the block hot path; hoist the materialization or compare in place"
      | _ -> ())
    | _ -> ()

let check_r2_ident ctx e =
  let path = head_ident e in
  if path <> [] then begin
    let value = last_comp path in
    let modules = List.filteri (fun i _ -> i < List.length path - 1) path in
    match List.find_opt (fun m -> List.mem m r2_io_modules) modules with
    | Some m ->
      emit ctx "R2" (line_of e)
        (Printf.sprintf
           "I/O call %s.%s inside a lock body; load outside the critical section (it serializes every domain behind the device)"
           m value)
    | None -> ()
  end

let check_r4_magic ctx e =
  if ctx.active "R4" then
    match head_ident e with
    | [ "Obj"; "magic" ] ->
      emit ctx "R4" (line_of e) "Obj.magic defeats the type system and the memory model"
    | _ -> ()

(* R4 state scan: walk a top-level binding's expression but do not
   descend into functions — state allocated per call is private. *)
let rec r4_state_scan ctx name e =
  let flag kind =
    emit ctx "R4" (line_of e)
      (Printf.sprintf
         "module-level mutable state: 'let %s = %s ...' is shared by every domain; move it into a value or allowlist the module"
         name kind)
  in
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ | Pexp_lazy _ -> ()
  | Pexp_apply (f, args) ->
    let f, args = normalize_apply f args in
    (match head_ident f with
    | [ "ref" ] -> flag "ref"
    | [ "Hashtbl"; "create" ] -> flag "Hashtbl.create"
    | [ "Atomic"; "make" ] -> flag "Atomic.make"
    | _ -> ());
    List.iter (fun (_, a) -> r4_state_scan ctx name a) args
  | Pexp_tuple es -> List.iter (r4_state_scan ctx name) es
  | Pexp_array es -> List.iter (r4_state_scan ctx name) es
  | Pexp_record (fields, base) ->
    List.iter (fun (_, v) -> r4_state_scan ctx name v) fields;
    Option.iter (r4_state_scan ctx name) base
  | Pexp_let (_, vbs, body) ->
    List.iter (fun vb -> r4_state_scan ctx name vb.pvb_expr) vbs;
    r4_state_scan ctx name body
  | Pexp_sequence (a, b) ->
    r4_state_scan ctx name a;
    r4_state_scan ctx name b
  | Pexp_constraint (inner, _) -> r4_state_scan ctx name inner
  | Pexp_construct (_, Some inner) -> r4_state_scan ctx name inner
  | _ -> ()

(* ---- R5: Atomic.get/set pairing within one top-level binding ---- *)

type r5_acc = {
  mutable gets : (string * int) list;
  mutable sets : (string * int) list;
  mutable has_cas : bool;
}

let r5_collect acc e0 =
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      let f, args = normalize_apply f args in
      match (head_ident f, args) with
      | [ "Atomic"; "get" ], (_, target) :: _ -> acc.gets <- (path_repr target, line_of e) :: acc.gets
      | [ "Atomic"; "set" ], (_, target) :: _ -> acc.sets <- (path_repr target, line_of e) :: acc.sets
      | [ "Atomic"; ("compare_and_set" | "exchange" | "fetch_and_add" | "incr" | "decr") ], _ ->
        acc.has_cas <- true
      | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e0

let check_r5_binding ctx vb =
  let acc = { gets = []; sets = []; has_cas = false } in
  r5_collect acc vb.pvb_expr;
  if not acc.has_cas then
    List.iter
      (fun (path, line) ->
        if path <> "?" && List.mem_assoc path acc.gets then
          emit ctx "R5" line
            (Printf.sprintf
               "Atomic.get/Atomic.set pair on %s in one binding: a torn read-modify-write; use Atomic.compare_and_set in a documented CAS loop"
               path))
      (List.sort_uniq compare acc.sets)

let lint_structure ctx (str : structure) =
  let in_lock = ref 0 in
  let in_while = ref 0 in
  let in_loop = ref 0 in
  let expr it e =
    check_r1 ctx e;
    check_r4_magic ctx e;
    check_r6 ctx e;
    check_r7 ctx e;
    check_r8 ctx ~in_while:!in_while e;
    check_r12 ctx ~in_loop:!in_loop e;
    if ctx.active "R2" && List.mem ctx.base r2_cache_modules && !in_lock > 0 then
      check_r2_ident ctx e;
    match e.pexp_desc with
    | Pexp_apply (f0, args0) ->
      let f, args = normalize_apply f0 args0 in
      it.Ast_iterator.expr it f;
      if List.mem (last_comp (head_ident f)) lock_combinators then begin
        incr in_lock;
        List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args;
        decr in_lock
      end
      else List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
    | Pexp_while (cond, body) ->
      it.Ast_iterator.expr it cond;
      incr in_while;
      incr in_loop;
      it.Ast_iterator.expr it body;
      decr in_loop;
      decr in_while
    | Pexp_for (_, lo, hi, _, body) ->
      it.Ast_iterator.expr it lo;
      it.Ast_iterator.expr it hi;
      incr in_loop;
      it.Ast_iterator.expr it body;
      decr in_loop
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let structure_item it si =
    (match si.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          if ctx.active "R4" && not (List.mem ctx.base r4_state_allowlist) then begin
            let name = match vb.pvb_pat.ppat_desc with Ppat_var { txt; _ } -> txt | _ -> "_" in
            r4_state_scan ctx name vb.pvb_expr
          end;
          if ctx.active "R5" then check_r5_binding ctx vb)
        vbs
    | _ -> ());
    Ast_iterator.default_iterator.structure_item it si
  in
  let iter = { Ast_iterator.default_iterator with expr; structure_item } in
  iter.structure iter str

(* ---------------- per-file entry point ---------------- *)

let parse_impl path src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  Parse.implementation lexbuf

(* Raw findings for one file; suppression filtering is the driver's
   job (it also owns unused-suppression reporting). *)
let lint_file ~active path =
  let base = Filename.basename path in
  let src = Finding.read_file path in
  let ctx = { file = path; base; active; out = [] } in
  (match parse_impl path src with
  | str -> lint_structure ctx str
  | exception exn -> emit ctx "R0" 1 (Printf.sprintf "parse error: %s" (Printexc.to_string exn)));
  if active "R3" && not (Sys.file_exists (Filename.remove_extension path ^ ".mli")) then
    emit ctx "R3" 1
      (Printf.sprintf "module %s has no .mli: internal mutable state is unsealed"
         (Filename.remove_extension base));
  ctx.out

let rec collect_ml path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> collect_ml (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []
