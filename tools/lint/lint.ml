(* lsm-lint: AST-driven concurrency & invariant checks for lib/.

   The engine's multi-domain correctness rests on structural invariants
   no type checker sees — which mutex combinator is blessed, what may
   run under a cache lock, which modules are sealed. This linter makes
   them machine-checked. It parses each source file with the compiler's
   own frontend (compiler-libs; parsing only, no typing, so test
   fixtures need not compile) and walks the Parsetree.

   Rules:
     R1  raw [Mutex.lock]/[unlock]/[try_lock] call sites — everything
         must go through [Ordered_mutex.with_lock] (exception safety +
         lockdep); only ordered_mutex.ml itself is exempt.
     R2  Device/Wal/Sstable calls syntactically inside a
         [with_lock]/[locked] body in the cache modules: I/O under a
         cache lock serializes every other domain behind the device.
     R3  every module has an .mli sealing its internals.
     R4  [Obj.magic] anywhere; module-level mutable state
         ([ref]/[Hashtbl.create]/[Atomic.make] in a top-level binding)
         outside the allowlist — hidden shared state is a data race
         waiting for a second domain.
     R5  [Atomic.get] and [Atomic.set] of the same location within one
         top-level binding, with no CAS in sight: a lost-update
         read-modify-write split across two atomic ops.
     R6  raw [Domain.spawn] / [Thread.create] outside domain_pool.ml —
         ad-hoc domains escape the pool's bounded-width and
         future-join discipline (and the ~128-domain runtime cap).
     R7  [failwith] / [raise (Failure _)] in library code — untyped
         stringly errors cross the API boundary where callers can only
         catch-all; raise a typed [Lsm_util.Lsm_error] (or a documented
         module exception) instead. Catching [Failure] is fine.
     R8  [Condition.wait] (or [Ordered_mutex.wait]) not syntactically
         inside a [while]-predicate loop body: condition variables have
         spurious wakeups and stolen signals, so a wait guarded by a
         single [if] — or by nothing — proceeds on a predicate that may
         no longer hold. Only ordered_mutex.ml itself is exempt (it
         defines the delegating wrapper).

   Per-site suppression: a comment [(* lsm-lint: allow R2 — reason *)]
   on the line of (or the line before) the finding. The reason is
   mandatory; a reasonless or malformed suppression is itself reported
   (as rule R0) and cannot be suppressed. *)

type finding = { file : string; line : int; rule : string; msg : string }

let all_rules = [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7"; "R8" ]

(* Files allowed to touch raw mutexes: the blessed combinator itself. *)
let r1_exempt = [ "ordered_mutex.ml" ]

(* Modules whose locks sit on fan-out hot paths; R2 applies here. *)
let r2_cache_modules = [ "block_cache.ml"; "table_cache.ml" ]
let r2_io_modules = [ "Device"; "Wal"; "Sstable" ]
let lock_combinators = [ "with_lock"; "locked" ]

(* Modules allowed module-level mutable state (documented, reviewed:
   the lockdep enforcement flag; the scheduler's process-wide
   background lane singleton). *)
let r4_state_allowlist = [ "ordered_mutex.ml"; "scheduler.ml" ]

(* The one module allowed to create domains/threads: the pool. *)
let r6_exempt = [ "domain_pool.ml" ]

(* Modules allowed [failwith]: the xor filter's peeling loop, whose
   failure is an internal algorithmic invariant (can't happen on any
   input), not an error condition a caller could meaningfully type. *)
let r7_exempt = [ "xor_filter.ml" ]

(* The module defining the blessed wait wrapper: its own
   [Condition.wait] is a one-line delegation, not a wait site. *)
let r8_exempt = [ "ordered_mutex.ml" ]

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (match compare a.line b.line with 0 -> String.compare a.rule b.rule | c -> c)
  | c -> c

(* ---------------- suppression comments ---------------- *)

type suppression = { s_rules : string list; s_first : int; s_last : int }

(* Scan raw source for comments, tracking comment nesting and string
   literals (normal "..." with escapes and {tag|...|tag} quoted
   strings). Returns (start_line, end_line, text) per comment. *)
let comments_of_source src =
  let n = String.length src in
  let line = ref 1 in
  let comments = ref [] in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  let take () =
    let c = src.[!i] in
    bump c;
    incr i;
    c
  in
  let rec skip_string () =
    if !i < n then
      match take () with
      | '\\' ->
        if !i < n then ignore (take ());
        skip_string ()
      | '"' -> ()
      | _ -> skip_string ()
  in
  let rec skip_quoted tag =
    if !i < n then
      match take () with
      | '|' ->
        let tl = String.length tag in
        if !i + tl < n && String.sub src !i tl = tag && src.[!i + tl] = '}' then begin
          (* the tag and '}' contain no newlines *)
          i := !i + tl + 1
        end
        else skip_quoted tag
      | _ -> skip_quoted tag
  in
  let read_comment start =
    let buf = Buffer.create 64 in
    let depth = ref 1 in
    while !depth > 0 && !i < n do
      if src.[!i] = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        Buffer.add_string buf "(*";
        i := !i + 2;
        incr depth
      end
      else if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        i := !i + 2;
        decr depth;
        if !depth > 0 then Buffer.add_string buf "*)"
      end
      else Buffer.add_char buf (take ())
    done;
    comments := (start, !line, Buffer.contents buf) :: !comments
  in
  while !i < n do
    let c = src.[!i] in
    if c = '"' then begin
      incr i;
      skip_string ()
    end
    else if c = '{' then begin
      let j = ref (!i + 1) in
      while !j < n && (src.[!j] = '_' || (src.[!j] >= 'a' && src.[!j] <= 'z')) do
        incr j
      done;
      if !j < n && src.[!j] = '|' then begin
        let tag = String.sub src (!i + 1) (!j - !i - 1) in
        i := !j + 1;
        skip_quoted tag
      end
      else incr i
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start = !line in
      i := !i + 2;
      read_comment start
    end
    else begin
      bump c;
      incr i
    end
  done;
  List.rev !comments

let rule_token tok =
  let tok =
    if String.length tok > 1 && tok.[String.length tok - 1] = ',' then
      String.sub tok 0 (String.length tok - 1)
    else tok
  in
  if
    String.length tok >= 2
    && tok.[0] = 'R'
    && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub tok 1 (String.length tok - 1))
  then Some tok
  else None

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = if i + nn > nh then None else if String.sub hay i nn = needle then Some i else go (i + 1) in
  go 0

(* Parse suppressions out of one file's comments: valid suppressions
   plus R0 findings for malformed / reasonless ones. *)
let parse_suppressions file comments =
  let sups = ref [] and bad = ref [] in
  let r0 line msg = bad := { file; line; rule = "R0"; msg } :: !bad in
  List.iter
    (fun (first, last_line, text) ->
      match find_substring text "lsm-lint" with
      | None -> ()
      | Some at ->
        let rest = String.sub text at (String.length text - at) in
        let rest =
          match String.index_opt rest ':' with
          | Some c -> String.sub rest (c + 1) (String.length rest - c - 1)
          | None -> ""
        in
        let toks =
          String.map (fun c -> if c = '\n' || c = '\t' || c = '\r' then ' ' else c) rest
          |> String.split_on_char ' '
          |> List.filter (fun s -> s <> "")
        in
        (match toks with
        | "allow" :: more ->
          let rec take_rules acc = function
            | tok :: tl -> (
              match rule_token tok with
              | Some r -> take_rules (r :: acc) tl
              | None -> (List.rev acc, tok :: tl))
            | [] -> (List.rev acc, [])
          in
          let rules, reason = take_rules [] more in
          let reason = match reason with ("\xe2\x80\x94" | "-" | "--" | ":") :: tl -> tl | tl -> tl in
          if rules = [] then r0 first "lsm-lint comment names no rule (expected: lsm-lint: allow Rn \xe2\x80\x94 reason)"
          else if reason = [] then
            r0 first
              (Printf.sprintf "suppression of %s has no reason (format: lsm-lint: allow Rn \xe2\x80\x94 reason)"
                 (String.concat "," rules))
          else sups := { s_rules = rules; s_first = first; s_last = last_line + 1 } :: !sups
        | _ -> r0 first "malformed lsm-lint comment (expected: lsm-lint: allow Rn \xe2\x80\x94 reason)"))
    comments;
  (!sups, !bad)

let suppressed sups rule line =
  List.exists (fun s -> List.mem rule s.s_rules && line >= s.s_first && line <= s.s_last) sups

(* ---------------- AST helpers ---------------- *)

open Parsetree

let flatten_lid lid = try Longident.flatten lid with _ -> []
let line_of (e : expression) = e.pexp_loc.Location.loc_start.Lexing.pos_lnum
let last_comp = function [] -> "" | l -> List.nth l (List.length l - 1)
let head_ident e = match e.pexp_desc with Pexp_ident { txt; _ } -> flatten_lid txt | _ -> []

(* Normalize [f @@ x] and [x |> f] into a direct application so the
   idiomatic [locked t @@ fun () -> ...] is recognized as a lock body. *)
let rec normalize_apply f args =
  match (f.pexp_desc, args) with
  | Pexp_ident { txt = Longident.Lident "@@"; _ }, [ (_, lhs); (_, rhs) ] -> (
    match lhs.pexp_desc with
    | Pexp_apply (f', args') -> normalize_apply f' (args' @ [ (Asttypes.Nolabel, rhs) ])
    | _ -> (lhs, [ (Asttypes.Nolabel, rhs) ]))
  | Pexp_ident { txt = Longident.Lident "|>"; _ }, [ (_, lhs); (_, rhs) ] -> (
    match rhs.pexp_desc with
    | Pexp_apply (f', args') -> normalize_apply f' (args' @ [ (Asttypes.Nolabel, lhs) ])
    | _ -> (rhs, [ (Asttypes.Nolabel, lhs) ]))
  | _ -> (f, args)

(* Canonical string for an atomic location: [Atomic.get t.field] and
   [Atomic.set t.field v] must key identically. *)
let rec path_repr e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> String.concat "." (flatten_lid txt)
  | Pexp_field (b, { txt; _ }) -> path_repr b ^ "." ^ last_comp (flatten_lid txt)
  | _ -> "?"

(* ---------------- per-file rule pass ---------------- *)

type ctx = {
  file : string;
  base : string;
  active : string -> bool;
  mutable out : finding list;
}

let emit ctx rule line msg = ctx.out <- { file = ctx.file; line; rule; msg } :: ctx.out

let check_r1 ctx e =
  if ctx.active "R1" && not (List.mem ctx.base r1_exempt) then begin
    let path = head_ident e in
    let len = List.length path in
    if len >= 2 && List.nth path (len - 2) = "Mutex" then
      match last_comp path with
      | ("lock" | "unlock" | "try_lock") as fn ->
        emit ctx "R1" (line_of e)
          (Printf.sprintf
             "raw Mutex.%s; use Lsm_util.Ordered_mutex.with_lock (exception-safe, lockdep-checked)" fn)
      | _ -> ()
  end

let check_r6 ctx e =
  if ctx.active "R6" && not (List.mem ctx.base r6_exempt) then
    match head_ident e with
    | ([ "Domain"; "spawn" ] | [ "Thread"; "create" ]) as path ->
      emit ctx "R6" (line_of e)
        (Printf.sprintf
           "raw %s; go through Lsm_util.Domain_pool (bounded width, future joins, single shutdown path)"
           (String.concat "." path))
    | _ -> ()

let check_r7 ctx e =
  if ctx.active "R7" && not (List.mem ctx.base r7_exempt) then
    match e.pexp_desc with
    | Pexp_ident _
      when head_ident e = [ "failwith" ] || head_ident e = [ "Stdlib"; "failwith" ] ->
      emit ctx "R7" (line_of e)
        "failwith raises an untyped Failure; raise a typed Lsm_util.Lsm_error (or a documented module exception)"
    | Pexp_apply (f, args) -> (
      let f, args = normalize_apply f args in
      match (head_ident f, args) with
      | [ ("raise" | "raise_notrace") ], (_, arg) :: _ -> (
        match arg.pexp_desc with
        | Pexp_construct ({ txt; _ }, _) when last_comp (flatten_lid txt) = "Failure" ->
          emit ctx "R7" (line_of e)
            "raise (Failure _) is untyped; raise a typed Lsm_util.Lsm_error (or a documented module exception)"
        | _ -> ())
      | _ -> ())
    | _ -> ()

(* R8: a condition wait whose enclosing syntax is not a while-loop body.
   [in_while] counts enclosing [Pexp_while] bodies (maintained by
   [lint_structure]); waits in the loop *condition* do not count —
   `while Condition.wait ... do () done` re-checks nothing. *)
let check_r8 ctx ~in_while e =
  if ctx.active "R8" && not (List.mem ctx.base r8_exempt) && in_while = 0 then begin
    let path = head_ident e in
    let len = List.length path in
    if
      len >= 2
      && last_comp path = "wait"
      && List.mem (List.nth path (len - 2)) [ "Condition"; "Ordered_mutex" ]
    then
      emit ctx "R8" (line_of e)
        (Printf.sprintf
           "%s outside a while-predicate loop: spurious wakeups and stolen signals require re-checking the predicate (while not (pred) do wait done)"
           (String.concat "." path))
  end

let check_r2_ident ctx e =
  let path = head_ident e in
  if path <> [] then begin
    let value = last_comp path in
    let modules = List.filteri (fun i _ -> i < List.length path - 1) path in
    match List.find_opt (fun m -> List.mem m r2_io_modules) modules with
    | Some m ->
      emit ctx "R2" (line_of e)
        (Printf.sprintf
           "I/O call %s.%s inside a lock body; load outside the critical section (it serializes every domain behind the device)"
           m value)
    | None -> ()
  end

let check_r4_magic ctx e =
  if ctx.active "R4" then
    match head_ident e with
    | [ "Obj"; "magic" ] ->
      emit ctx "R4" (line_of e) "Obj.magic defeats the type system and the memory model"
    | _ -> ()

(* R4 state scan: walk a top-level binding's expression but do not
   descend into functions — state allocated per call is private. *)
let rec r4_state_scan ctx name e =
  let flag kind =
    emit ctx "R4" (line_of e)
      (Printf.sprintf
         "module-level mutable state: 'let %s = %s ...' is shared by every domain; move it into a value or allowlist the module"
         name kind)
  in
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ | Pexp_lazy _ -> ()
  | Pexp_apply (f, args) ->
    let f, args = normalize_apply f args in
    (match head_ident f with
    | [ "ref" ] -> flag "ref"
    | [ "Hashtbl"; "create" ] -> flag "Hashtbl.create"
    | [ "Atomic"; "make" ] -> flag "Atomic.make"
    | _ -> ());
    List.iter (fun (_, a) -> r4_state_scan ctx name a) args
  | Pexp_tuple es -> List.iter (r4_state_scan ctx name) es
  | Pexp_array es -> List.iter (r4_state_scan ctx name) es
  | Pexp_record (fields, base) ->
    List.iter (fun (_, v) -> r4_state_scan ctx name v) fields;
    Option.iter (r4_state_scan ctx name) base
  | Pexp_let (_, vbs, body) ->
    List.iter (fun vb -> r4_state_scan ctx name vb.pvb_expr) vbs;
    r4_state_scan ctx name body
  | Pexp_sequence (a, b) ->
    r4_state_scan ctx name a;
    r4_state_scan ctx name b
  | Pexp_constraint (inner, _) -> r4_state_scan ctx name inner
  | Pexp_construct (_, Some inner) -> r4_state_scan ctx name inner
  | _ -> ()

(* ---- R5: Atomic.get/set pairing within one top-level binding ---- *)

type r5_acc = {
  mutable gets : (string * int) list;
  mutable sets : (string * int) list;
  mutable has_cas : bool;
}

let r5_collect acc e0 =
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      let f, args = normalize_apply f args in
      match (head_ident f, args) with
      | [ "Atomic"; "get" ], (_, target) :: _ -> acc.gets <- (path_repr target, line_of e) :: acc.gets
      | [ "Atomic"; "set" ], (_, target) :: _ -> acc.sets <- (path_repr target, line_of e) :: acc.sets
      | [ "Atomic"; ("compare_and_set" | "exchange" | "fetch_and_add" | "incr" | "decr") ], _ ->
        acc.has_cas <- true
      | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e0

let check_r5_binding ctx vb =
  let acc = { gets = []; sets = []; has_cas = false } in
  r5_collect acc vb.pvb_expr;
  if not acc.has_cas then
    List.iter
      (fun (path, line) ->
        if path <> "?" && List.mem_assoc path acc.gets then
          emit ctx "R5" line
            (Printf.sprintf
               "Atomic.get/Atomic.set pair on %s in one binding: a torn read-modify-write; use Atomic.compare_and_set in a documented CAS loop"
               path))
      (List.sort_uniq compare acc.sets)

let lint_structure ctx (str : structure) =
  let in_lock = ref 0 in
  let in_while = ref 0 in
  let expr it e =
    check_r1 ctx e;
    check_r4_magic ctx e;
    check_r6 ctx e;
    check_r7 ctx e;
    check_r8 ctx ~in_while:!in_while e;
    if ctx.active "R2" && List.mem ctx.base r2_cache_modules && !in_lock > 0 then
      check_r2_ident ctx e;
    match e.pexp_desc with
    | Pexp_apply (f0, args0) ->
      let f, args = normalize_apply f0 args0 in
      it.Ast_iterator.expr it f;
      if List.mem (last_comp (head_ident f)) lock_combinators then begin
        incr in_lock;
        List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args;
        decr in_lock
      end
      else List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
    | Pexp_while (cond, body) ->
      it.Ast_iterator.expr it cond;
      incr in_while;
      it.Ast_iterator.expr it body;
      decr in_while
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let structure_item it si =
    (match si.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          if ctx.active "R4" && not (List.mem ctx.base r4_state_allowlist) then begin
            let name = match vb.pvb_pat.ppat_desc with Ppat_var { txt; _ } -> txt | _ -> "_" in
            r4_state_scan ctx name vb.pvb_expr
          end;
          if ctx.active "R5" then check_r5_binding ctx vb)
        vbs
    | _ -> ());
    Ast_iterator.default_iterator.structure_item it si
  in
  let iter = { Ast_iterator.default_iterator with expr; structure_item } in
  iter.structure iter str

(* ---------------- driver ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_impl path src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  Parse.implementation lexbuf

let lint_file ~active path =
  let base = Filename.basename path in
  let src = read_file path in
  let sups, bad = parse_suppressions path (comments_of_source src) in
  let ctx = { file = path; base; active; out = [] } in
  (match parse_impl path src with
  | str -> lint_structure ctx str
  | exception exn -> emit ctx "R0" 1 (Printf.sprintf "parse error: %s" (Printexc.to_string exn)));
  if active "R3" && not (Sys.file_exists (Filename.remove_extension path ^ ".mli")) then
    emit ctx "R3" 1
      (Printf.sprintf "module %s has no .mli: internal mutable state is unsealed"
         (Filename.remove_extension base));
  let kept = List.filter (fun f -> f.rule = "R0" || not (suppressed sups f.rule f.line)) ctx.out in
  bad @ kept

let rec collect_ml path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> collect_ml (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let lint_paths ?(rules = all_rules) paths =
  let active r = List.mem r rules in
  paths |> List.concat_map collect_ml |> List.concat_map (lint_file ~active)
  |> List.sort compare_finding

let pp_finding ppf (f : finding) = Format.fprintf ppf "%s:%d %s %s" f.file f.line f.rule f.msg

let run ?rules paths =
  let findings = lint_paths ?rules paths in
  List.iter (fun f -> Format.printf "%a@." pp_finding f) findings;
  if findings = [] then 0 else 1
