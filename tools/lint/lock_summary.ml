(* R9: whole-program static lockdep over the Typedtree.

   The runtime checker (Ordered_mutex + LSM_LOCKDEP=1) only sees orders
   that actually interleave in one run; the Parsetree linter cannot see
   that a callee acquires a lower-ranked lock. This pass closes both
   gaps: it reconstructs the engine's lock classes from the
   [Ordered_mutex.create ~rank ~name] sites, summarizes every
   function's acquisitions, propagates summaries through the resolved
   call graph to a fixed point, and derives the global acquired-before
   relation. Any edge that descends or ties in rank — even across
   modules, even on paths no test schedules — is a finding carrying the
   full call chain.

   Three deliberate approximations, all chosen to avoid false
   positives on the clean tree (the gate is zero findings with zero
   suppressions):

   - MAY-analysis: branches union; an acquisition behind a conditional
     counts on every path through its function.
   - Closures handed to deferred executors (Domain_pool.submit,
     Scheduler.submit/enqueue, Domain.spawn, at_exit, ...) run with an
     empty held stack on another domain; they are analyzed as separate
     roots, not inlined into the submitting context. Closures handed to
     *unknown* functions are treated the same way (a Queue.add stores,
     it does not invoke) — strictly weaker than the truth for an
     unknown higher-order invoker, and exactly what the runtime graph
     recorder cross-check (lsm-lint --lockdep-graph) is for.
   - Closures handed to known inline combinators (List/Array/Option/
     Hashtbl/Fun.protect/...) and to project functions are propagated:
     project callees' parameter invocations splice the caller's closure
     events under whatever the callee holds at the invocation point. *)

open Typedtree

(* Where a lock lives: a record field keyed by the record's canonical
   type path (all instances of a field share a class — exactly the
   granularity of the Rank table), or a module-level value. *)
type slot = Field of string * string | Global of string

let slot_repr = function Field (ty, f) -> ty ^ "." ^ f | Global g -> g

type cls = { c_rank : int option; c_name : string }

type site = { s_file : string; s_line : int }

type ev =
  | Acquire of slot option * site * ev list  (* with_lock body *)
  | Bare of slot option * site  (* Ordered_mutex.lock *)
  | Wait of slot option * site  (* Ordered_mutex.wait; self-wait on the innermost held lock is the blessed pattern *)
  | Call of { key : string; c_site : site; fargs : ev list array }
  | ParamI of Ident.t  (* invocation of an enclosing function's parameter *)
  | Spawn of ev list  (* closure that runs later with an empty held stack *)

type summary = { params : Ident.t list; evs : ev list }

type edge = {
  e_src : string;  (* class name, as in Ordered_mutex.create ~name *)
  e_dst : string;
  e_src_rank : int option;
  e_dst_rank : int option;
  e_site : site;
  e_chain : string list;
}

type result = {
  classes : (string * int option) list;  (* class name -> rank, rank-sorted *)
  edges : edge list;
  findings : Finding.t list;
}

(* Functions whose function-arguments are executed later, elsewhere,
   with nothing held. *)
let deferral_keys =
  [
    "Domain_pool.submit";
    "Domain_pool.map_list";
    "Scheduler.submit";
    "Scheduler.enqueue";
    "Scheduler.set_on_commit";
    "Domain.spawn";
    "Thread.create";
    "at_exit";
    "Stdlib.at_exit";
  ]

(* Stdlib modules whose higher-order functions invoke their closure
   arguments inline, in the caller's context. Queue and the containers
   used to *store* closures are deliberately absent. *)
let inline_modules =
  [ "List"; "Array"; "Option"; "Result"; "Either"; "Fun"; "Hashtbl"; "Seq"; "Float" ]

(* ---------------- shared helpers ---------------- *)

let line_of_exp e = e.exp_loc.Location.loc_start.Lexing.pos_lnum

let rec is_arrow ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tlink t | Types.Tsubst (t, _) -> is_arrow t
  | Types.Tpoly (t, _) -> is_arrow t
  | _ -> false

let head_type_path ty =
  match Types.get_desc ty with Types.Tconstr (p, _, _) -> Some p | _ -> None

(* ---------------- analysis state ---------------- *)

type state = {
  rank_table : (string, int) Hashtbl.t;  (* Rank.db_buffers -> 8 *)
  classes : (slot, cls) Hashtbl.t;
  returns_class : (string, cls) Hashtbl.t;  (* fn key -> class it creates *)
  summaries : (string, summary) Hashtbl.t;
  mutable diagnostics : Finding.t list;
}

let create_state () =
  {
    rank_table = Hashtbl.create 16;
    classes = Hashtbl.create 32;
    returns_class = Hashtbl.create 8;
    summaries = Hashtbl.create 256;
    diagnostics = [];
  }

(* ---------------- per-module walk context ---------------- *)

type mctx = {
  st : state;
  file : string;
  modpath : string list;  (* enclosing module path, e.g. ["Version"; "Pins"] *)
  aliases : (string, string list) Hashtbl.t;  (* module alias -> target components *)
  toplevels : (string, unit) Hashtbl.t;  (* module-level value idents seen so far *)
}

let canon_comps_in mctx comps =
  let comps =
    match comps with
    | first :: rest -> (
      match Hashtbl.find_opt mctx.aliases first with
      | Some target -> target @ rest
      | None -> comps)
    | [] -> []
  in
  Cmts.canon_components comps

let canon_path_in mctx p = String.concat "." (canon_comps_in mctx (Cmts.flatten_path p))

let in_module mctx name = String.concat "." (mctx.modpath @ [ name ])

(* Canonical key for an applied identifier: qualified paths as-is,
   bare siblings qualified with the enclosing module path. *)
let key_of_fn_path mctx p =
  match p with
  | Path.Pident id ->
    let n = Ident.name id in
    if Hashtbl.mem mctx.toplevels n then Some (in_module mctx n) else None
  | _ ->
    let c = canon_path_in mctx p in
    if c = "" then None else Some c

(* ---------------- lock-class inference ---------------- *)

(* [Ordered_mutex.create ~rank ~name] recognition; resolves the rank
   argument against the Rank table (or an integer literal, which is
   what compiled fixtures use) and the name against a string literal. *)
let as_create mctx e =
  match e.exp_desc with
  | Texp_apply (fn, args) -> (
    match fn.exp_desc with
    | Texp_ident (p, _, _) when canon_path_in mctx p = "Ordered_mutex.create" ->
      let rank = ref None and name = ref None in
      List.iter
        (fun (lbl, arg) ->
          match (lbl, arg) with
          | Asttypes.Labelled "rank", Some a -> (
            match a.exp_desc with
            | Texp_constant (Asttypes.Const_int n) -> rank := Some n
            | Texp_ident (rp, _, _) -> (
              match List.rev (canon_comps_in mctx (Cmts.flatten_path rp)) with
              | leaf :: "Rank" :: _ -> rank := Hashtbl.find_opt mctx.st.rank_table leaf
              | _ -> ())
            | _ -> ())
          | Asttypes.Labelled "name", Some a -> (
            match a.exp_desc with
            | Texp_constant (Asttypes.Const_string (s, _, _)) -> name := Some s
            | _ -> ())
          | _ -> ())
        args;
      Some (!rank, !name)
    | _ -> None)
  | _ -> None

(* A record-field value that produces a fresh mutex: a direct create, a
   local variable let-bound to one (tracked in [local_creates]), or a
   call to a function inferred to return one (io_stats' mk_mutex). *)
let class_of_field_value mctx local_creates e =
  match as_create mctx e with
  | Some (rank, name) -> Some (rank, name)
  | None -> (
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
      match Hashtbl.find_opt local_creates (Ident.name id) with
      | Some (rank, name) -> Some (rank, name)
      | None -> None)
    | Texp_apply (fn, _) -> (
      match fn.exp_desc with
      | Texp_ident (p, _, _) -> (
        match key_of_fn_path mctx p with
        | Some k -> (
          match Hashtbl.find_opt mctx.st.returns_class k with
          | Some c -> Some (c.c_rank, Some c.c_name)
          | None -> None)
        | None -> None)
      | _ -> None)
    | _ -> None)

let register_class mctx slot (rank, name) =
  let c_name = match name with Some n -> n | None -> slot_repr slot in
  match Hashtbl.find_opt mctx.st.classes slot with
  | Some prev ->
    if prev.c_rank <> rank then
      mctx.st.diagnostics <-
        Finding.v ~file:mctx.file ~line:1 ~rule:"R9"
          (Printf.sprintf "lock slot %s created with conflicting ranks (%s vs %s)" (slot_repr slot)
             (match prev.c_rank with Some r -> string_of_int r | None -> "?")
             (match rank with Some r -> string_of_int r | None -> "?"))
        :: mctx.st.diagnostics
  | None -> Hashtbl.replace mctx.st.classes slot { c_rank = rank; c_name }

(* Identify a field slot by its label's DECLARATION site, not its type
   path: inside the defining module the record type's path is a bare
   [t], from other modules it is [Table_cache.t] — the declaration
   location is the one spelling both agree on, and distinct record
   types' [m] fields stay distinct. *)
let field_slot lbl =
  let loc = lbl.Types.lbl_loc.Location.loc_start in
  Some (Field (Printf.sprintf "%s:%d" loc.Lexing.pos_fname loc.pos_lnum, lbl.Types.lbl_name))

(* Class pass over one module: walks every expression, tracking local
   `let m = create ...` bindings per enclosing structure item, and
   binds record fields / module-level values to lock classes. *)
let class_pass mctx str =
  let local_creates = Hashtbl.create 4 in
  let expr_iter (it : Tast_iterator.iterator) e =
    (match e.exp_desc with
    | Texp_let (_, vbs, _) ->
      List.iter
        (fun vb ->
          match (vb.vb_pat.pat_desc, as_create mctx vb.vb_expr) with
          | Tpat_var (id, _), Some cls -> Hashtbl.replace local_creates (Ident.name id) cls
          | _ -> ())
        vbs
    | Texp_record { fields; _ } ->
      Array.iter
        (fun (lbl, def) ->
          match def with
          | Overridden (_, fe) -> (
            match class_of_field_value mctx local_creates fe with
            | Some cls -> (
              match field_slot lbl with
              | Some slot -> register_class mctx slot cls
              | None -> ())
            | None -> ())
          | Kept _ -> ())
        fields
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let rec items mctx str =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              (* toplevels feeds key_of_fn_path, which the
                 returns-a-mutex field inference relies on *)
              (match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) -> Hashtbl.replace mctx.toplevels (Ident.name id) ()
              | _ -> ());
              (match (vb.vb_pat.pat_desc, as_create mctx vb.vb_expr) with
              | Tpat_var (id, _), Some cls ->
                register_class mctx (Global (in_module mctx (Ident.name id))) cls
              | _ -> ());
              (* Function returning a fresh mutex: its body's tail is a
                 create (chased through let/sequence). *)
              (match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) -> (
                let rec tail e =
                  match e.exp_desc with
                  | Texp_function { cases = [ { c_rhs; _ } ]; _ } -> tail c_rhs
                  | Texp_let (_, _, b) -> tail b
                  | Texp_sequence (_, b) -> tail b
                  | _ -> e
                in
                match as_create mctx (tail vb.vb_expr) with
                | Some (rank, name) ->
                  let c_name =
                    match name with Some n -> n | None -> in_module mctx (Ident.name id)
                  in
                  Hashtbl.replace mctx.st.returns_class
                    (in_module mctx (Ident.name id))
                    { c_rank = rank; c_name }
                | None -> ())
              | _ -> ());
              let it = { Tast_iterator.default_iterator with expr = expr_iter } in
              it.expr it vb.vb_expr)
            vbs
        | Tstr_module mb -> descend_module mctx mb
        | Tstr_recmodule mbs -> List.iter (descend_module mctx) mbs
        | _ -> ())
      str.str_items
  and descend_module mctx mb =
    match mb.mb_id with
    | None -> ()
    | Some id -> (
      let name = Ident.name id in
      match mb.mb_expr.mod_desc with
      | Tmod_ident (p, _) -> Hashtbl.replace mctx.aliases name (Cmts.flatten_path p)
      | Tmod_structure s | Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _) ->
        items { mctx with modpath = mctx.modpath @ [ name ] } s
      | _ -> ())
  in
  items mctx str

(* Rank table extraction from the Ordered_mutex module itself. *)
let rank_pass st (info : Cmts.info) =
  if info.modname = "Ordered_mutex" then
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_module
            {
              mb_id = Some id;
              mb_expr =
                {
                  mod_desc =
                    ( Tmod_structure s
                    | Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _) );
                  _;
                };
              _;
            }
          when Ident.name id = "Rank" ->
          List.iter
            (fun si ->
              match si.str_desc with
              | Tstr_value (_, vbs) ->
                List.iter
                  (fun vb ->
                    match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
                    | Tpat_var (rid, _), Texp_constant (Asttypes.Const_int n) ->
                      Hashtbl.replace st.rank_table (Ident.name rid) n
                    | _ -> ())
                  vbs
              | _ -> ())
            s.str_items
        | _ -> ())
      info.str.str_items

(* ---------------- summary construction ---------------- *)

type wctx = {
  m : mctx;
  params : Ident.t list;  (* enclosing function's parameters *)
  locals : (Ident.t, summary) Hashtbl.t;  (* let-bound local functions *)
}

let site_of w e = { s_file = w.m.file; s_line = line_of_exp e }

(* The mutex operand of a lock primitive. *)
let slot_of_mutex w e =
  match e.exp_desc with
  | Texp_field (_, _, lbl) -> (
    match field_slot lbl with Some s -> Some s | None -> None)
  | Texp_ident (Path.Pident id, _, _) ->
    if Hashtbl.mem w.m.toplevels (Ident.name id) then
      Some (Global (in_module w.m (Ident.name id)))
    else None
  | Texp_ident (p, _, _) ->
    let c = canon_path_in w.m p in
    if c = "" then None else Some (Global c)
  | _ -> None

let assoc_ident id env =
  List.find_map (fun (p, evs) -> if Ident.same p id then Some evs else None) env

let rec zip ps fas =
  match (ps, fas) with p :: ptl, fa :: fatl -> (p, fa) :: zip ptl fatl | _, _ -> []

(* Substitute parameter idents with concrete argument representations
   when splicing a local function at its call site. A [ParamI] that is
   not in [env] belongs to the enclosing function and stays symbolic. *)
let rec subst env evs =
  List.concat_map
    (fun ev ->
      match ev with
      | ParamI id -> ( match assoc_ident id env with Some r -> r | None -> [ ev ])
      | Acquire (s, l, body) -> [ Acquire (s, l, subst env body) ]
      | Spawn body -> [ Spawn (subst env body) ]
      | Call c -> [ Call { c with fargs = Array.map (subst env) c.fargs } ]
      | Bare _ | Wait _ -> [ ev ])
    evs

let rec peel_params e =
  match e.exp_desc with
  | Texp_function { param; cases = [ { c_lhs; c_rhs; _ } ]; _ } ->
    let id = match c_lhs.pat_desc with Tpat_var (pid, _) -> pid | _ -> param in
    let ps, body = peel_params c_rhs in
    (id :: ps, body)
  | _ -> ([], e)

let rec walk w e : ev list =
  match e.exp_desc with
  | Texp_ident _ | Texp_constant _ | Texp_unreachable -> []
  | Texp_apply (fn, args) -> apply w e fn args
  | Texp_function { cases; _ } ->
    (* A lambda in a non-argument position (stored in a record/ref,
       returned, ...): its call context is unknown — analyze it as a
       separate empty-context root. *)
    [ Spawn (List.concat_map (fun c -> walk w c.c_rhs) cases) ]
  | Texp_let (_, vbs, body) ->
    let evs =
      List.concat_map
        (fun vb ->
          match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
          | Tpat_var (id, _), Texp_function _ ->
            let ps, fbody = peel_params vb.vb_expr in
            let inner = walk w fbody in
            Hashtbl.replace w.locals id { params = ps; evs = inner };
            []
          | _ -> walk w vb.vb_expr)
        vbs
    in
    evs @ walk w body
  | Texp_match (scrut, cases, _) ->
    walk w scrut @ List.concat_map (fun c -> walk w c.c_rhs) cases
  | Texp_try (b, cases) -> walk w b @ List.concat_map (fun c -> walk w c.c_rhs) cases
  | Texp_ifthenelse (c, a, b) ->
    walk w c @ walk w a @ (match b with Some b -> walk w b | None -> [])
  | Texp_sequence (a, b) -> walk w a @ walk w b
  | Texp_while (c, b) -> walk w c @ walk w b
  | Texp_for (_, _, lo, hi, _, b) -> walk w lo @ walk w hi @ walk w b
  | Texp_tuple es | Texp_array es -> List.concat_map (walk w) es
  | Texp_construct (_, _, es) -> List.concat_map (walk w) es
  | Texp_variant (_, e) -> ( match e with Some e -> walk w e | None -> [])
  | Texp_record { fields; extended_expression; _ } ->
    let f =
      Array.to_list fields
      |> List.concat_map (fun (_, def) ->
             match def with Overridden (_, fe) -> walk w fe | Kept _ -> [])
    in
    f @ (match extended_expression with Some e -> walk w e | None -> [])
  | Texp_field (b, _, _) -> walk w b
  | Texp_setfield (b, _, _, v) -> walk w b @ walk w v
  | Texp_assert (e, _) -> walk w e
  | Texp_lazy e -> [ Spawn (walk w e) ]
  | Texp_letmodule (_, _, _, me, body) ->
    (match me.mod_desc with Tmod_structure _ -> () | _ -> ());
    walk w body
  | Texp_open (_, body) -> walk w body
  | Texp_letexception (_, body) -> walk w body
  | _ -> []

(* Representation of an argument as a callable value, if it is one. *)
and rep_of_arg w a : ev list option =
  if not (is_arrow a.exp_type) then None
  else
    match a.exp_desc with
    | Texp_function _ ->
      let _, body = peel_params a in
      Some (walk w body)
    | Texp_ident (Path.Pident id, _, _) when List.exists (fun p -> Ident.same p id) w.params ->
      Some [ ParamI id ]
    | Texp_ident (Path.Pident id, _, _) when Hashtbl.mem w.locals id ->
      Some (Hashtbl.find w.locals id).evs
    | Texp_ident (p, _, _) -> (
      match key_of_fn_path w.m p with
      | Some k -> Some [ Call { key = k; c_site = site_of w a; fargs = [||] } ]
      | None -> None)
    | Texp_apply (fn, args) -> (
      (* partial application, e.g. Domain.spawn (worker_loop pool) *)
      match fn.exp_desc with
      | Texp_ident (p, _, _) -> (
        match key_of_fn_path w.m p with
        | Some k ->
          let fargs =
            args
            |> List.filter_map (fun (_, a) -> a)
            |> List.map (fun a -> match rep_of_arg w a with Some r -> r | None -> [])
          in
          Some [ Call { key = k; c_site = site_of w a; fargs = Array.of_list fargs } ]
        | None -> None)
      | _ -> None)
    | _ -> None

and body_evs w a =
  match rep_of_arg w a with Some evs -> evs | None -> walk w a

and apply w e fn args : ev list =
  match fn.exp_desc with
  | Texp_apply (f2, args2) ->
    (* The typechecker rewrites [f x @@ g] into a nested application
       whose function is itself an application — flatten it. *)
    apply w e f2 (args2 @ args)
  | _ -> apply_flat w e fn args

and apply_flat w e fn args : ev list =
  let present = List.filter_map (fun (_, a) -> a) args in
  let fn_key =
    match fn.exp_desc with
    | Texp_ident (p, _, _) -> key_of_fn_path w.m p
    | _ -> None
  in
  let raw_canon =
    match fn.exp_desc with Texp_ident (p, _, _) -> canon_path_in w.m p | _ -> ""
  in
  (* Normalize f @@ x / x |> f into direct application. *)
  match (raw_canon, present) with
  | "@@", [ lhs; rhs ] -> reapply w e lhs rhs
  | "|>", [ lhs; rhs ] -> reapply w e rhs lhs
  | _ -> (
    match raw_canon with
    | "Ordered_mutex.with_lock" -> (
      match present with
      | m :: rest ->
        let body = match rest with b :: _ -> body_evs w b | [] -> [] in
        [ Acquire (slot_of_mutex w m, site_of w e, body) ]
      | [] -> [])
    | "Ordered_mutex.lock" -> (
      match present with m :: _ -> [ Bare (slot_of_mutex w m, site_of w e) ] | [] -> [])
    | "Ordered_mutex.wait" -> (
      match present with
      | [ _cond; m ] -> [ Wait (slot_of_mutex w m, site_of w e) ]
      | _ -> [])
    | "Ordered_mutex.create" -> []
    | _ -> (
      (* Local function applied directly: splice its events with the
         argument representations substituted for its parameters. *)
      match fn.exp_desc with
      | Texp_ident (Path.Pident id, _, _) when Hashtbl.mem w.locals id ->
        let s = Hashtbl.find w.locals id in
        let reps = List.map (fun a -> rep_of_arg w a) present in
        let env =
          zip s.params (List.map (function Some r -> r | None -> []) reps)
        in
        let inline_args =
          List.concat_map
            (fun (r, a) -> if r = None then walk w a else [])
            (List.combine reps present)
        in
        inline_args @ subst env s.evs
      | Texp_ident (Path.Pident id, _, _) when List.exists (fun p -> Ident.same p id) w.params
        ->
        List.concat_map (walk w) present @ [ ParamI id ]
      | _ -> (
        match fn_key with
        | Some key ->
          let fargs =
            List.map (fun a -> match rep_of_arg w a with Some r -> r | None -> []) present
          in
          let inline_args =
            List.concat_map (fun a -> if rep_of_arg w a = None then walk w a else []) present
          in
          inline_args @ [ Call { key; c_site = site_of w e; fargs = Array.of_list fargs } ]
        | None ->
          (* Unresolvable callee (field access, computed closure):
             evaluate arguments; function-valued args become roots. *)
          walk w fn
          @ List.concat_map
              (fun a ->
                match rep_of_arg w a with Some r -> [ Spawn r ] | None -> walk w a)
              present)))

and reapply w e fn_expr arg_expr =
  match fn_expr.exp_desc with
  | Texp_apply (f, args) -> apply w e f (args @ [ (Asttypes.Nolabel, Some arg_expr) ])
  | _ -> apply w e fn_expr [ (Asttypes.Nolabel, Some arg_expr) ]

(* ---------------- per-module summary construction ---------------- *)

let build_summaries mctx str =
  let init_count = ref 0 in
  let rec items mctx str =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          (* Register the whole binding group first so `let rec` bodies
             resolve self/mutual references to module-qualified keys. *)
          List.iter
            (fun vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) -> Hashtbl.replace mctx.toplevels (Ident.name id) ()
              | _ -> ())
            vbs;
          List.iter
            (fun vb ->
              let w = { m = mctx; params = []; locals = Hashtbl.create 4 } in
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) ->
                let params, body = peel_params vb.vb_expr in
                let evs = walk { w with params } body in
                Hashtbl.replace mctx.st.summaries
                  (in_module mctx (Ident.name id))
                  { params; evs }
              | _ ->
                (* `let () = ...` module-initialization effects are
                   roots of their own. *)
                incr init_count;
                let evs = walk w vb.vb_expr in
                if evs <> [] then
                  Hashtbl.replace mctx.st.summaries
                    (in_module mctx (Printf.sprintf "<init#%d>" !init_count))
                    { params = []; evs })
            vbs
        | Tstr_module mb -> descend mctx mb
        | Tstr_recmodule mbs -> List.iter (descend mctx) mbs
        | _ -> ())
      str.str_items
  and descend mctx mb =
    match mb.mb_id with
    | None -> ()
    | Some id -> (
      let name = Ident.name id in
      match mb.mb_expr.mod_desc with
      | Tmod_ident (p, _) -> Hashtbl.replace mctx.aliases name (Cmts.flatten_path p)
      | Tmod_structure s | Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _) ->
        items { mctx with modpath = mctx.modpath @ [ name ] } s
      | _ -> ())
  in
  items mctx str

(* ---------------- may-acquire fixpoint ---------------- *)

module SS = Set.Make (String)

(* may(key) = class names [key] may acquire in its own calling context,
   transitively through project callees. Spawned closures and closure
   arguments are excluded: those run (or may run) outside the caller's
   held stack, and including them would fabricate held-before edges. *)
let compute_may st =
  let cls_name slot =
    match slot with
    | Some s -> (
      match Hashtbl.find_opt st.classes s with Some c -> Some c.c_name | None -> None)
    | None -> None
  in
  let direct = Hashtbl.create 64 and callees = Hashtbl.create 64 in
  Hashtbl.iter
    (fun key (s : summary) ->
      let d = ref SS.empty and cs = ref SS.empty in
      let rec scan evs =
        List.iter
          (fun ev ->
            match ev with
            | Acquire (sl, _, body) ->
              (match cls_name sl with Some n -> d := SS.add n !d | None -> ());
              scan body
            | Bare (sl, _) | Wait (sl, _) -> (
              match cls_name sl with Some n -> d := SS.add n !d | None -> ())
            | Call c -> cs := SS.add c.key !cs
            | Spawn _ | ParamI _ -> ())
          evs
      in
      scan s.evs;
      Hashtbl.replace direct key !d;
      Hashtbl.replace callees key !cs)
    st.summaries;
  let may = Hashtbl.copy direct in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun key cs ->
        let cur = try Hashtbl.find may key with Not_found -> SS.empty in
        let nxt =
          SS.fold
            (fun c acc ->
              match Hashtbl.find_opt may c with Some s -> SS.union acc s | None -> acc)
            cs cur
        in
        if not (SS.equal cur nxt) then begin
          Hashtbl.replace may key nxt;
          changed := true
        end)
      callees
  done;
  fun key -> match Hashtbl.find_opt may key with Some s -> s | None -> SS.empty

(* ---------------- whole-program expansion ---------------- *)

let first_component key =
  match String.index_opt key '.' with Some i -> String.sub key 0 i | None -> key

(* Close over the current parameter environment: after this, every
   [ParamI] bound here is spliced and the events can travel into other
   contexts (callee bodies, spawn roots). *)
let rec resolve_params env evs =
  if env = [] then evs
  else
    List.concat_map
      (fun ev ->
        match ev with
        | ParamI id -> ( match assoc_ident id env with Some r -> r | None -> [ ev ])
        | Acquire (s, l, body) -> [ Acquire (s, l, resolve_params env body) ]
        | Spawn body -> [ Spawn (resolve_params env body) ]
        | Call c -> [ Call { c with fargs = Array.map (resolve_params env) c.fargs } ]
        | Bare _ | Wait _ -> [ ev ])
      evs

let expand st =
  let may = compute_may st in
  let cls_of slot =
    match slot with
    | Some s -> Hashtbl.find_opt st.classes s
    | None -> None
  in
  let rank_of =
    let by_name = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ c -> if not (Hashtbl.mem by_name c.c_name) then Hashtbl.replace by_name c.c_name c.c_rank)
      st.classes;
    fun n -> match Hashtbl.find_opt by_name n with Some r -> r | None -> None
  in
  let edges_tbl : (string * string, edge) Hashtbl.t = Hashtbl.create 64 in
  let emit held dst site chain =
    List.iter
      (fun src ->
        if not (Hashtbl.mem edges_tbl (src, dst)) then
          Hashtbl.replace edges_tbl (src, dst)
            {
              e_src = src;
              e_dst = dst;
              e_src_rank = rank_of src;
              e_dst_rank = rank_of dst;
              e_site = site;
              e_chain = chain;
            })
      held
  in
  let roots : (string list * ev list) Queue.t = Queue.create () in
  let queued_roots = Hashtbl.create 64 in
  let enqueue_root chain evs =
    if evs <> [] && not (Hashtbl.mem queued_roots evs) then begin
      Hashtbl.replace queued_roots evs ();
      Queue.add (chain, evs) roots
    end
  in
  let memo = Hashtbl.create 256 in
  let rec go ~held ~chain ~env ~visiting evs =
    ignore
      (List.fold_left
         (fun held ev ->
           match ev with
           | Acquire (slot, site, body) -> (
             match cls_of slot with
             | Some c ->
               emit held c.c_name site chain;
               go ~held:(held @ [ c.c_name ]) ~chain ~env ~visiting body;
               held
             | None ->
               go ~held ~chain ~env ~visiting body;
               held)
           | Bare (slot, site) -> (
             (* Scope unknown: held for the rest of this function. *)
             match cls_of slot with
             | Some c ->
               emit held c.c_name site chain;
               held @ [ c.c_name ]
             | None -> held)
           | Wait (slot, site) -> (
             match cls_of slot with
             | Some c ->
               let self =
                 match List.rev held with last :: _ -> last = c.c_name | [] -> false
               in
               (* Waiting on the innermost held lock is the blessed
                  condition-variable pattern; anything else is an
                  acquisition for ordering purposes. *)
               if not self then emit held c.c_name site chain;
               held
             | None -> held)
           | ParamI id ->
             (match assoc_ident id env with
             | Some cl -> go ~held ~chain:(chain @ [ "<closure>" ]) ~env:[] ~visiting cl
             | None -> ());
             held
           | Spawn body ->
             enqueue_root (chain @ [ "<deferred>" ]) (resolve_params env body);
             held
           | Call { key; c_site; fargs } ->
             let fargs = Array.map (resolve_params env) fargs in
             (if List.mem key deferral_keys then
                Array.iter (fun fa -> enqueue_root (chain @ [ key; "<deferred>" ]) fa) fargs
              else
                match Hashtbl.find_opt st.summaries key with
                | Some s ->
                  if SS.mem key visiting then begin
                    (* Recursive cycle: approximate the callee by its
                       may-set, and its closure invocations by the
                       current held stack. *)
                    SS.iter (fun c -> emit held c c_site (chain @ [ key ])) (may key);
                    Array.iter
                      (fun fa ->
                        go ~held ~chain:(chain @ [ key; "<closure>" ]) ~env:[] ~visiting fa)
                      fargs
                  end
                  else begin
                    let no_cl = Array.for_all (fun fa -> fa = []) fargs in
                    let mkey = key ^ "|" ^ String.concat "," held in
                    if no_cl && Hashtbl.mem memo mkey then
                      (* Already fully expanded under this held stack;
                         re-emit the summary-level edges only. *)
                      SS.iter (fun c -> emit held c c_site (chain @ [ key ])) (may key)
                    else begin
                      if no_cl then Hashtbl.replace memo mkey ();
                      go ~held ~chain:(chain @ [ key ])
                        ~env:(zip s.params (Array.to_list fargs))
                        ~visiting:(SS.add key visiting) s.evs
                    end
                  end
                | None ->
                  if List.mem (first_component key) inline_modules then
                    (* Known inline combinator: closures run here, under
                       the current held stack. *)
                    Array.iter
                      (fun fa -> go ~held ~chain:(chain @ [ key ]) ~env:[] ~visiting fa)
                      fargs
                  else
                    (* Unknown callee: assume closures are stored and
                       run elsewhere, with nothing held. The runtime
                       graph cross-check covers the case where an
                       unknown higher-order function invokes inline. *)
                    Array.iter
                      (fun fa -> enqueue_root (chain @ [ key; "<deferred>" ]) fa)
                      fargs);
             held)
         held evs)
  in
  Hashtbl.iter (fun key (s : summary) -> enqueue_root [ key ] s.evs) st.summaries;
  while not (Queue.is_empty roots) do
    let chain, evs = Queue.pop roots in
    let visiting =
      match chain with [ k ] -> SS.singleton k | _ -> SS.empty
    in
    go ~held:[] ~chain ~env:[] ~visiting evs
  done;
  edges_tbl

(* ---------------- results ---------------- *)

let findings_of_edges edges_tbl =
  Hashtbl.fold
    (fun _ e acc ->
      match (e.e_src_rank, e.e_dst_rank) with
      | Some sr, Some dr when dr < sr ->
        Finding.v ~chain:e.e_chain ~file:e.e_site.s_file ~line:e.e_site.s_line ~rule:"R9"
          (Printf.sprintf
             "lock-order inversion: acquires '%s' (rank %d) while holding '%s' (rank %d)"
             e.e_dst dr e.e_src sr)
        :: acc
      | Some sr, Some dr when dr = sr ->
        Finding.v ~chain:e.e_chain ~file:e.e_site.s_file ~line:e.e_site.s_line ~rule:"R9"
          (Printf.sprintf
             "same-rank acquisition: acquires '%s' (rank %d) while holding '%s' (rank %d)"
             e.e_dst dr e.e_src sr)
        :: acc
      | _ -> acc)
    edges_tbl []
  |> List.sort Finding.compare_finding

let rec dump_ev ppf ev =
  match ev with
  | Acquire (s, _, body) ->
    Format.fprintf ppf "Acquire(%s)[%a]"
      (match s with Some s -> slot_repr s | None -> "?")
      (Format.pp_print_list dump_ev) body
  | Bare (s, _) -> Format.fprintf ppf "Bare(%s)" (match s with Some s -> slot_repr s | None -> "?")
  | Wait (s, _) -> Format.fprintf ppf "Wait(%s)" (match s with Some s -> slot_repr s | None -> "?")
  | Call c ->
    Format.fprintf ppf "Call(%s){%a}" c.key
      (Format.pp_print_list (fun ppf fa -> Format.fprintf ppf "[%a]" (Format.pp_print_list dump_ev) fa))
      (Array.to_list c.fargs)
  | ParamI id -> Format.fprintf ppf "Param(%s)" (Ident.name id)
  | Spawn body -> Format.fprintf ppf "Spawn[%a]" (Format.pp_print_list dump_ev) body

let debug_dump st =
  match Sys.getenv_opt "LSM_LINT_DEBUG" with
  | Some pat when pat <> "" ->
    Hashtbl.iter
      (fun key (s : summary) ->
        let matches =
          let lp = String.lowercase_ascii pat and lk = String.lowercase_ascii key in
          let ln = String.length lp and lkn = String.length lk in
          let rec go i = i + ln <= lkn && (String.sub lk i ln = lp || go (i + 1)) in
          go 0
        in
        if matches then
          Format.eprintf "SUMMARY %s: %a@." key (Format.pp_print_list dump_ev) s.evs)
      st.summaries
  | _ -> ()

let analyze (infos : Cmts.info list) : result =
  let st = create_state () in
  List.iter (rank_pass st) infos;
  (* Ordered_mutex implements the primitives (raw Mutex under the
     hood); only its Rank table participates in the analysis. *)
  let infos = List.filter (fun (i : Cmts.info) -> i.modname <> "Ordered_mutex") infos in
  let mk (info : Cmts.info) =
    {
      st;
      file = info.source;
      modpath = [ info.modname ];
      aliases = Hashtbl.create 8;
      toplevels = Hashtbl.create 32;
    }
  in
  (* Two class passes: the second lets fields bound via a
     returns-a-mutex helper (io_stats' mk_mutex) resolve regardless of
     the order modules were loaded in. *)
  List.iter (fun i -> class_pass (mk i) i.Cmts.str) infos;
  List.iter (fun i -> class_pass (mk i) i.Cmts.str) infos;
  List.iter (fun i -> build_summaries (mk i) i.Cmts.str) infos;
  debug_dump st;
  let edges_tbl = expand st in
  let edges =
    Hashtbl.fold (fun _ e acc -> e :: acc) edges_tbl []
    |> List.sort (fun a b ->
           match String.compare a.e_src b.e_src with
           | 0 -> String.compare a.e_dst b.e_dst
           | c -> c)
  in
  let classes =
    let seen = Hashtbl.create 16 in
    Hashtbl.fold
      (fun _ c acc ->
        if Hashtbl.mem seen c.c_name then acc
        else begin
          Hashtbl.replace seen c.c_name ();
          (c.c_name, c.c_rank) :: acc
        end)
      st.classes []
    |> List.sort (fun (na, ra) (nb, rb) ->
           match compare ra rb with 0 -> String.compare na nb | c -> c)
  in
  { classes; edges; findings = findings_of_edges edges_tbl @ st.diagnostics }
