(* lsm-lint driver: ties the two frontends together.

   The Parsetree frontend (Parse_rules, R1–R8) parses sources directly,
   so it runs on anything — including fixtures that do not compile. The
   Typedtree frontend (Typed_rules, R9–R10) loads dune's .cmt output,
   so it sees resolved paths and inferred types across modules — the
   price is that its subjects must build first.

   Suppression comments are applied here, across both frontends, so
   that a suppression seen by either counts as used and stale ones can
   be reported (R0): per ISSUE and DESIGN.md §9 the tree carries zero
   suppressions, and the unused check keeps dead allows from
   accumulating the day one is ever added. *)

type format = Text | Json

let all_rules = Parse_rules.all_rules @ [ "R9"; "R10" ]

(* Filter [findings] through per-file suppression comments; report
   malformed suppressions and — for files whose suppressed rules were
   all active this run — suppressions that suppressed nothing. [files]
   lists every file whose comments should be scanned even if it
   produced no findings (a stale allow in a clean file must still
   surface). *)
let apply_suppressions ~active ~files findings =
  let tbl = Hashtbl.create 32 in
  let get file =
    match Hashtbl.find_opt tbl file with
    | Some v -> v
    | None ->
      let v = Finding.load_suppressions file in
      Hashtbl.replace tbl file v;
      v
  in
  List.iter (fun f -> ignore (get f)) files;
  let kept =
    List.filter
      (fun (f : Finding.t) ->
        f.Finding.rule = "R0"
        ||
        let sups, _ = get f.Finding.file in
        not (Finding.suppressed sups f.Finding.rule f.Finding.line))
      findings
  in
  let extra = ref [] in
  Hashtbl.iter
    (fun file (sups, bad) ->
      extra := bad @ !extra;
      List.iter
        (fun (s : Finding.suppression) ->
          if
            (not s.Finding.s_used)
            && List.for_all (fun r -> List.mem r active) s.Finding.s_rules
          then
            extra :=
              Finding.v ~file ~line:s.Finding.s_first ~rule:"R0"
                (Printf.sprintf
                   "unused suppression (%s): nothing here to allow — remove it"
                   (String.concat "," s.Finding.s_rules))
              :: !extra)
        sups)
    tbl;
  List.sort Finding.compare_finding (kept @ !extra)

(* Parse-frontend entry point (tests use this directly). *)
let lint_paths ?(rules = Parse_rules.all_rules) paths =
  let active r = List.mem r rules in
  let files = List.concat_map Parse_rules.collect_ml paths in
  let raw = List.concat_map (Parse_rules.lint_file ~active) files in
  apply_suppressions ~active:rules ~files raw

(* Typed-frontend entry point (tests use this directly). *)
let typed_analysis ?(rules = [ "R9"; "R10" ]) roots =
  Typed_rules.analyze ~active:rules (Typed_rules.load roots)

type opts = {
  rules : string list;
  format : format;
  typed_roots : string list;  (* directories to sweep for .cmt; [] = skip *)
  show_lock_order : bool;
  lockdep_graph : string option;
}

let default_opts =
  {
    rules = all_rules;
    format = Text;
    typed_roots = [];
    show_lock_order = false;
    lockdep_graph = None;
  }

let run ?(opts = default_opts) paths =
  let parse_active r = List.mem r opts.rules && List.mem r Parse_rules.all_rules in
  let files = List.concat_map Parse_rules.collect_ml paths in
  let parse_raw = List.concat_map (Parse_rules.lint_file ~active:parse_active) files in
  let typed =
    if opts.typed_roots = [] then None
    else
      let active = List.filter (fun r -> List.mem r [ "R9"; "R10" ]) opts.rules in
      Some (typed_analysis ~rules:active opts.typed_roots)
  in
  let typed_raw = match typed with Some t -> Typed_rules.findings t | None -> [] in
  let active_eff =
    List.filter
      (fun r -> parse_active r || (typed <> None && (r = "R9" || r = "R10")))
      opts.rules
  in
  let findings = apply_suppressions ~active:active_eff ~files (parse_raw @ typed_raw) in
  let graph_report =
    Option.map
      (fun file ->
        let static_edges =
          match typed with
          | Some t -> t.Typed_rules.lock_order.Lock_summary.edges
          | None -> []
        in
        Lockdep_graph.analyze ~file ~static_edges)
      opts.lockdep_graph
  in
  let graph_findings =
    match graph_report with Some r -> r.Lockdep_graph.g_findings | None -> []
  in
  let findings = findings @ graph_findings in
  (match opts.format with
  | Json -> print_endline (Finding.list_to_json findings)
  | Text ->
    List.iter (fun f -> Format.printf "%a@." Finding.pp_text f) findings;
    (match (typed, opts.show_lock_order) with
    | Some t, true -> Typed_rules.pp_lock_order Format.std_formatter t.Typed_rules.lock_order
    | _ -> ());
    (match (graph_report, typed) with
    | Some r, Some _ -> Lockdep_graph.pp_cross_check Format.std_formatter r
    | Some r, None ->
      Format.printf "lockdep graph: %d observed edge(s), %d cycle(s)@."
        (List.length r.Lockdep_graph.g_edges)
        (List.length r.Lockdep_graph.g_findings)
    | None, _ -> ()));
  if findings = [] then 0 else 1
