(* lsm-lint CLI. Default: check lib/ (relative to the cwd, i.e. the
   project root under `dune exec tools/lint/main.exe`) with the
   Parsetree rules. `--typed DIR` additionally loads .cmt files from
   DIR (normally _build/default/lib after a `dune build`) and runs the
   whole-program Typedtree passes. *)

let usage =
  "lsm-lint [--rules R1,R2,...] [--format text|json] [--typed DIR]\n\
  \         [--lock-order] [--lockdep-graph FILE] [path ...]\n\n\
   Parsetree rules (sources, no build needed):\n\
  \  R1  raw Mutex.lock/unlock outside Ordered_mutex.with_lock\n\
  \  R2  Device/Wal/Sstable I/O inside a lock body in cache modules\n\
  \  R3  module without an .mli\n\
  \  R4  Obj.magic / module-level mutable state\n\
  \  R5  Atomic.get+set pair without a CAS loop\n\
  \  R6  raw Domain.spawn/Thread.create outside Domain_pool\n\
  \  R7  failwith / raise (Failure _) in library code (use typed Lsm_error)\n\
  \  R8  unbounded busy-wait loop without backoff\n\
  \  R12 allocation-heavy idioms (String.sub ^, String.concat, Bytes.to_string\n\
  \      in loops) in the block hot modules (block.ml)\n\n\
   Typedtree rules (need --typed DIR with built .cmt files):\n\
  \  R9  static lockdep: whole-program acquired-before relation vs the Rank table\n\
  \  R10 iterator/read-view escape past its pin combinator\n\n\
   R11 (cycles in the merged runtime lockdep graph) is produced by\n\
   --lockdep-graph FILE; see Ordered_mutex.Graph / LSM_LOCKDEP_GRAPH.\n"

let () =
  let open Lsm_lint in
  let rules = ref Driver.all_rules in
  let format = ref Driver.Text in
  let typed_roots = ref [] in
  let lock_order = ref false in
  let lockdep_graph = ref None in
  let paths = ref [] in
  let spec =
    [
      ( "--rules",
        Arg.String
          (fun s ->
            rules :=
              String.split_on_char ',' s |> List.map String.trim
              |> List.filter (fun r -> r <> "")),
        "R1,R2,... comma-separated subset of rules to run (default: all)" );
      ( "--format",
        Arg.String
          (function
          | "text" -> format := Driver.Text
          | "json" -> format := Driver.Json
          | other -> raise (Arg.Bad ("unknown format: " ^ other))),
        "text|json findings output format (default: text)" );
      ( "--typed",
        Arg.String (fun d -> typed_roots := !typed_roots @ [ d ]),
        "DIR load .cmt files under DIR and run the Typedtree passes (repeatable)" );
      ( "--lock-order",
        Arg.Set lock_order,
        " print the statically derived lock classes and acquired-before edges" );
      ( "--lockdep-graph",
        Arg.String (fun f -> lockdep_graph := Some f),
        "FILE check the persisted runtime lockdep graph for cycles; cross-check vs static"
      );
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  let opts =
    {
      Driver.rules = !rules;
      format = !format;
      typed_roots = !typed_roots;
      show_lock_order = !lock_order;
      lockdep_graph = !lockdep_graph;
    }
  in
  match Driver.run ~opts paths with
  | code -> exit code
  | exception Sys_error e ->
    prerr_endline ("lsm-lint: " ^ e);
    exit 2
