(* lsm-lint driver. Default: check lib/ (relative to the cwd, i.e. the
   project root under `dune exec tools/lint/main.exe`) with every rule.
   Tests point it at fixture directories with a narrowed rule set. *)

let usage = "lsm-lint [--rules R1,R2,...] [path ...]\n\nRules:\n" ^
            "  R1  raw Mutex.lock/unlock outside Ordered_mutex.with_lock\n" ^
            "  R2  Device/Wal/Sstable I/O inside a lock body in cache modules\n" ^
            "  R3  module without an .mli\n" ^
            "  R4  Obj.magic / module-level mutable state\n" ^
            "  R5  Atomic.get+set pair without a CAS loop\n" ^
            "  R6  raw Domain.spawn/Thread.create outside Domain_pool\n" ^
            "  R7  failwith / raise (Failure _) in library code (use typed Lsm_error)\n"

let () =
  let rules = ref Lsm_lint.Lint.all_rules in
  let paths = ref [] in
  let spec =
    [
      ( "--rules",
        Arg.String
          (fun s ->
            rules := String.split_on_char ',' s |> List.map String.trim
                     |> List.filter (fun r -> r <> "")),
        "R1,R2,... comma-separated subset of rules to run (default: all)" );
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  match Lsm_lint.Lint.run ~rules:!rules paths with
  | code -> exit code
  | exception Sys_error e ->
    prerr_endline ("lsm-lint: " ^ e);
    exit 2
