(* R10: iterator / read-view escape analysis over the Typedtree.

   A [Db.read_ctx], a [Version.Pins.pin], and any [Iter.t] built from a
   pinned version are valid only inside the [with_pin]-style combinator
   that took the pin: once the pin is released, compaction may delete
   the tables those values point into. Scope-based lifetimes are not
   expressible in OCaml's types, so this pass flags the three ways such
   a value can outlive its pin:

   1. stored into module-level mutable state (`ref :=`, Hashtbl.add/
      replace, Atomic.set, or a field assignment on a module-level
      value);
   2. captured free by a closure handed to a deferred executor
      (Scheduler.submit/enqueue/set_on_commit, Domain_pool.submit,
      Domain.spawn, Thread.create, at_exit) — the closure runs after
      the submitting scope, pin and all, has unwound. Note
      Domain_pool.map_list is deliberately NOT in this set: it joins
      all chunks before returning, so the caller's pin covers the
      workers (Db.multi_get relies on exactly that);
   3. returned out of the pin combinator itself: the result type of a
      [Db.with_pin]/[Version.Pins.with_pin] application mentions a
      pinned type. *)

open Typedtree

let pinned = [ "Db.read_ctx"; "Version.Pins.pin"; "Iter.t" ]

let deferral_keys =
  [
    "Domain_pool.submit";
    "Scheduler.submit";
    "Scheduler.enqueue";
    "Scheduler.set_on_commit";
    "Domain.spawn";
    "Thread.create";
    "at_exit";
    "Stdlib.at_exit";
  ]

let pin_combinators = [ "Db.with_pin"; "Version.Pins.with_pin" ]

(* Module-level mutable-store primitives: (canonical key, index of the
   container argument, index of the stored-value argument). *)
let store_prims =
  [ (":=", 0, 1); ("Hashtbl.add", 0, 2); ("Hashtbl.replace", 0, 2); ("Atomic.set", 0, 1) ]

let line_of e = e.exp_loc.Location.loc_start.Lexing.pos_lnum

let is_pinned ty = Cmts.type_is_pinned ~pinned ty

(* Canonical key of an applied identifier; bare references to the
   enclosing module's own functions are qualified with the module
   name so `with_pin t f` inside db.ml resolves to "Db.with_pin". *)
let key_of ~modname fn =
  match fn.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some (modname ^ "." ^ Ident.name id)
  | Texp_ident (p, _, _) ->
    let c = Cmts.canon_path p in
    if c = "" then None else Some c
  | _ -> None

(* Free variables of pinned type inside a lambda: idents used at a
   pinned type that no pattern inside the lambda binds. *)
let free_pinned_vars lam =
  let bound : (Ident.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let uses = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun it p ->
          List.iter (fun id -> Hashtbl.replace bound id ()) (pat_bound_idents p);
          Tast_iterator.default_iterator.pat it p);
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _) when is_pinned e.exp_type ->
            uses := (id, line_of e) :: !uses
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it lam;
  List.filter (fun (id, _) -> not (Hashtbl.mem bound id)) (List.rev !uses)

let analyze_module (info : Cmts.info) : Finding.t list =
  let file = info.source in
  let findings = ref [] in
  let add ~line msg = findings := Finding.v ~file ~line ~rule:"R10" msg :: !findings in
  (* Module-level value idents, nested modules included: targets for
     the "stored into module state" check. *)
  let global_ids : (Ident.t, unit) Hashtbl.t = Hashtbl.create 32 in
  let rec note_globals str =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun vb -> List.iter (fun id -> Hashtbl.replace global_ids id ()) (pat_bound_idents vb.vb_pat))
            vbs
        | Tstr_module
            {
              mb_expr =
                {
                  mod_desc =
                    ( Tmod_structure s
                    | Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _) );
                  _;
                };
              _;
            } ->
          note_globals s
        | _ -> ())
      str.str_items
  in
  note_globals info.str;
  let is_global e =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> Hashtbl.mem global_ids id
    | Texp_ident (_, _, _) -> true (* module-qualified value *)
    | _ -> false
  in
  let rec check_apply e fn args =
    match fn.exp_desc with
    | Texp_apply (f2, args2) ->
      (* [f x @@ g] typechecks to a nested application — flatten. *)
      check_apply e f2 (args2 @ args)
    | _ -> check_apply_flat e fn args
  and check_apply_flat e fn args =
    let present = List.filter_map (fun (_, a) -> a) args in
    match key_of ~modname:info.modname fn with
    | None -> ()
    | Some key ->
      (* bare-ident keys also match unqualified prims like `:=` *)
      let short = match String.rindex_opt key '.' with
        | Some i -> String.sub key (i + 1) (String.length key - i - 1)
        | None -> key
      in
      List.iter
        (fun (prim, ci, vi) ->
          if key = prim || (prim = ":=" && short = ":=") then
            match (List.nth_opt present ci, List.nth_opt present vi) with
            | Some container, Some v when is_global container && is_pinned v.exp_type ->
              add ~line:(line_of e)
                (Printf.sprintf
                   "pinned value (%s) stored into module-level state via %s — it outlives its pin"
                   "iterator/read_ctx/pin" prim)
            | _ -> ())
        store_prims;
      if List.mem key deferral_keys then
        List.iter
          (fun a ->
            match a.exp_desc with
            | Texp_function _ ->
              List.iter
                (fun (id, line) ->
                  add ~line
                    (Printf.sprintf
                       "closure deferred via %s captures pinned value '%s' — it runs after the pin is released"
                       key (Ident.name id)))
                (free_pinned_vars a)
            | _ -> ())
          present;
      if List.mem key pin_combinators && is_pinned e.exp_type then
        add ~line:(line_of e)
          (Printf.sprintf
             "pinned value escapes %s as its result — it is only valid while the pin is held" key)
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_apply (fn, args) -> check_apply e fn args
          | Texp_setfield (base, _, _, v) when is_global base && is_pinned v.exp_type ->
            add ~line:(line_of e)
              "pinned value stored into a field of a module-level value — it outlives its pin"
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it info.str;
  List.rev !findings

let analyze (infos : Cmts.info list) : Finding.t list =
  List.concat_map analyze_module infos |> List.sort Finding.compare_finding
