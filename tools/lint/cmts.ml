(* Typedtree frontend plumbing: find and load dune's `.cmt` output and
   canonicalize compiler [Path.t]s into stable, wrapper-free names.

   Dune compiles every library module with [-bin-annot], so a plain
   `dune build` leaves `<Wrapper>__<Module>.cmt` files under each
   library's `.objs/byte/` directory. Loading those gives the analyses
   resolved paths and inferred types — exactly what the Parsetree
   frontend cannot see across module boundaries.

   Canonicalization maps both spellings of a cross-library reference —
   the alias route (`Lsm_util.Ordered_mutex.with_lock`) and the mangled
   unit (`Lsm_util__Ordered_mutex.with_lock`) — to one key,
   `Ordered_mutex.with_lock`, by stripping `Prefix__` manglings and
   dropping known library-wrapper components. The wrapper set is
   inferred from the loaded cmt set itself (every `A__B` modname
   contributes prefix `A`), so the same code canonicalizes the real
   tree and compiled test fixtures alike. *)

type info = {
  modname : string;  (** canonical module name, e.g. ["Db"] *)
  source : string;  (** source path as recorded by the compiler *)
  str : Typedtree.structure;
}

(* Last segment after the final "__": "Lsm_core__Db" -> "Db",
   "Lsm_util__" -> "". *)
let strip_prefix comp =
  let n = String.length comp in
  let rec find i =
    if i + 1 >= n then None
    else if comp.[i] = '_' && comp.[i + 1] = '_' then Some i
    else find (i + 1)
  in
  let rec last acc i = match find i with Some j -> last (Some j) (j + 2) | None -> acc in
  match last None 0 with
  | Some j -> String.sub comp (j + 2) (n - j - 2)
  | None -> comp

(* Library wrapper names discovered from loaded cmts; components that
   match are dropped during canonicalization. The repo's own library
   wrappers are seeded up front so an analysis of a small cmt set
   (compiled test fixtures referencing Lsm_util) canonicalizes the same
   way as an analysis of the whole tree. Note "Lsm_error" is a module
   inside lsm_util, not a wrapper — it must not appear here. *)
let wrappers : (string, unit) Hashtbl.t = Hashtbl.create 16

let () =
  List.iter
    (fun w -> Hashtbl.replace wrappers w ())
    [
      "Lsm_util"; "Lsm_record"; "Lsm_storage"; "Lsm_memtable"; "Lsm_filter";
      "Lsm_sstable"; "Lsm_compaction"; "Lsm_core"; "Lsm_cost"; "Lsm_server";
      "Lsm_workload"; "Lsm_kvsep"; "Lsm_frag"; "Lsm_index";
    ]

(* "Lsm_core__Db" -> wrapper "Lsm_core" (dune also emits a bare
   "Lsm_core" alias unit, caught by the same name). *)
let note_wrapper modname =
  let n = String.length modname in
  let rec first_sep i =
    if i + 1 >= n then None
    else if modname.[i] = '_' && modname.[i + 1] = '_' then Some i
    else first_sep (i + 1)
  in
  match first_sep 0 with
  | Some j when j > 0 -> Hashtbl.replace wrappers (String.sub modname 0 j) ()
  | _ -> ()

let is_wrapper c = Hashtbl.mem wrappers c || c = "Stdlib"

let rec flatten_path (p : Path.t) =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> flatten_path p @ [ s ]
  | Path.Papply _ -> [ "?" ]
  | _ -> [ "?" ]

(* Canonical dotted name for a resolved path: mangled prefixes
   stripped, wrapper components dropped. *)
let canon_components comps =
  comps
  |> List.map strip_prefix
  |> List.filter (fun c -> c <> "" && not (is_wrapper c))

let canon_path p = String.concat "." (canon_components (flatten_path p))

let canon_modname m = match canon_components [ m ] with [ c ] -> c | _ -> m

(* ---------------- type helpers ---------------- *)

(* Head-constructor names occurring anywhere in a type expression, to a
   small depth (enough for iterators inside options/lists/tuples/
   closures; pinned types never hide deeper in this codebase). *)
let rec type_mentions ~pinned depth (ty : Types.type_expr) =
  depth > 0
  &&
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
    List.mem (canon_path p) pinned || List.exists (type_mentions ~pinned (depth - 1)) args
  | Types.Ttuple ts -> List.exists (type_mentions ~pinned (depth - 1)) ts
  | Types.Tarrow (_, a, b, _) ->
    type_mentions ~pinned (depth - 1) a || type_mentions ~pinned (depth - 1) b
  | Types.Tlink t | Types.Tsubst (t, _) -> type_mentions ~pinned depth t
  | _ -> false

let type_is_pinned ~pinned ty = type_mentions ~pinned 5 ty

(* Result type of a function type (chasing all arrows). *)
let rec result_type ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, _, r, _) -> result_type r
  | Types.Tlink t | Types.Tsubst (t, _) -> result_type t
  | _ -> ty

(* ---------------- cmt discovery and loading ---------------- *)

(* Recursive *.cmt sweep; descends into dot-directories (dune's .objs
   live there) but skips executable object dirs (.eobjs) — analyses
   target libraries. *)
let rec collect_cmt path =
  match Sys.is_directory path with
  | true ->
    if Filename.check_suffix path ".eobjs" then []
    else
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.concat_map (fun entry -> collect_cmt (Filename.concat path entry))
  | false -> if Filename.check_suffix path ".cmt" then [ path ] else []
  | exception Sys_error _ -> []

let load_file path =
  match Cmt_format.read_cmt path with
  | { cmt_annots = Cmt_format.Implementation str; cmt_modname; cmt_sourcefile; _ } ->
    note_wrapper cmt_modname;
    let source = match cmt_sourcefile with Some s -> s | None -> path in
    Some { modname = cmt_modname; source; str }
  | _ -> None
  | exception _ -> None

(* Load every implementation cmt under [roots]. Two passes over the
   names so wrapper inference sees the whole set before any path is
   canonicalized. *)
let load roots =
  let files = List.concat_map collect_cmt roots in
  let infos = List.filter_map load_file files in
  List.map (fun i -> { i with modname = canon_modname i.modname }) infos
  |> List.filter (fun i -> i.modname <> "")
  (* Drop dune's generated alias units (module A = Lib__A lists): their
     canonical name collides with the wrapper and they contain no code. *)
  |> List.filter (fun i -> not (Filename.check_suffix i.source ".ml-gen"))
