(* Typedtree frontend orchestration: load the .cmt set once, run the
   whole-program passes that need resolved paths and inferred types —
   R9 (static lockdep, Lock_summary) and R10 (iterator/read-view
   escape, Escape) — and hand back findings plus the derived lock-order
   facts for printing and for the runtime-graph cross-check. *)

type t = {
  infos : Cmts.info list;
  lock_order : Lock_summary.result;
  escape_findings : Finding.t list;
}

let load roots = Cmts.load roots

let analyze ?(active = [ "R9"; "R10" ]) infos =
  let lock_order =
    if List.mem "R9" active then Lock_summary.analyze infos
    else { Lock_summary.classes = []; edges = []; findings = [] }
  in
  let escape_findings = if List.mem "R10" active then Escape.analyze infos else [] in
  { infos; lock_order; escape_findings }

let findings t = t.lock_order.Lock_summary.findings @ t.escape_findings

let pp_rank_opt ppf = function
  | Some r -> Format.fprintf ppf "%d" r
  | None -> Format.fprintf ppf "?"

(* `lsm-lint --lock-order`: the independently derived hierarchy — the
   classes bound at Ordered_mutex.create sites (rank order) and every
   acquired-before edge the expansion produced, with its witness
   chain. On a clean tree this reprints the Rank table of
   lib/util/ordered_mutex.ml from the code alone. *)
let pp_lock_order ppf (r : Lock_summary.result) =
  Format.fprintf ppf "lock classes (derived from create sites, rank order):@.";
  List.iter
    (fun (name, rank) -> Format.fprintf ppf "  %a  %s@." pp_rank_opt rank name)
    r.Lock_summary.classes;
  Format.fprintf ppf "acquired-before edges (static, may-analysis):@.";
  List.iter
    (fun (e : Lock_summary.edge) ->
      Format.fprintf ppf "  %s (%a) -> %s (%a)  via %s@." e.e_src pp_rank_opt e.e_src_rank
        e.e_dst pp_rank_opt e.e_dst_rank
        (String.concat " -> " e.e_chain))
    r.Lock_summary.edges
