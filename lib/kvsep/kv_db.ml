module Db = Lsm_core.Db
module Io_stats = Lsm_storage.Io_stats

type t = {
  tree : Db.t;
  vlog : Value_log.t;
  value_threshold : int;
  dev : Lsm_storage.Device.t;
  mutable logical_bytes : int;
      (* key+value bytes as the user wrote them; the tree's own counter
         only sees pointers, which would overstate the WA win *)
}

(* Stored-value encoding: '\x00' inline-value | '\x01' pointer. *)
let tag_inline = '\x00'
let tag_pointer = '\x01'

let open_db ?(config = Lsm_core.Config.default) ?(value_threshold = 128)
    ?(segment_bytes = 1 lsl 20) ~dev () =
  {
    tree = Db.open_db ~config ~dev ();
    vlog = Value_log.open_log ~segment_bytes dev;
    value_threshold;
    dev;
    logical_bytes = 0;
  }

let put t ~key value =
  t.logical_bytes <- t.logical_bytes + String.length key + String.length value;
  if String.length value >= t.value_threshold then begin
    let p = Value_log.append t.vlog ~key ~value in
    Db.put t.tree ~key (Printf.sprintf "%c%s" tag_pointer (Value_log.encode_pointer p))
  end
  else Db.put t.tree ~key (Printf.sprintf "%c%s" tag_inline value)

let resolve t stored =
  if String.length stored = 0 then ""
  else
    match stored.[0] with
    | c when c = tag_inline -> String.sub stored 1 (String.length stored - 1)
    | c when c = tag_pointer ->
      let p = Value_log.decode_pointer (String.sub stored 1 (String.length stored - 1)) in
      snd (Value_log.read t.vlog ~cls:Io_stats.C_user_read p)
    | _ -> stored

let get t key = Option.map (resolve t) (Db.get t.tree key)
let delete t key = Db.delete t.tree key

let scan t ?limit ~lo ~hi () =
  Db.scan t.tree ?limit ~lo ~hi () |> List.map (fun (k, v) -> (k, resolve t v))

let flush t = Db.flush t.tree
let close t =
  Db.close t.tree;
  Value_log.close t.vlog

type gc_result = { segments_dropped : int; live_moved : int; dead_dropped : int }

let gc t ?(max_segments = 1) () =
  let victims =
    List.filteri (fun i _ -> i < max_segments) (Value_log.segments t.vlog)
  in
  let live_moved = ref 0 and dead_dropped = ref 0 in
  List.iter
    (fun seg ->
      Value_log.fold_segment t.vlog ~cls:Io_stats.C_gc seg ~init:()
        ~f:(fun () p key value ->
          let live =
            match Db.get t.tree key with
            | Some stored
              when String.length stored > 0 && stored.[0] = tag_pointer ->
              Value_log.decode_pointer (String.sub stored 1 (String.length stored - 1)) = p
            | _ -> false
          in
          if live then begin
            (* Re-append at the head and re-point the tree. *)
            let p' = Value_log.append t.vlog ~key ~value in
            Db.put t.tree ~key (Printf.sprintf "%c%s" tag_pointer (Value_log.encode_pointer p'));
            incr live_moved
          end
          else incr dead_dropped);
      Value_log.drop_segment t.vlog seg)
    victims;
  { segments_dropped = List.length victims; live_moved = !live_moved; dead_dropped = !dead_dropped }

let db t = t.tree
let value_log t = t.vlog

let to_kv_store t =
  {
    Lsm_workload.Kv_store.store_name = "wisckey";
    put = (fun ~key value -> put t ~key value);
    get = (fun key -> get t key);
    scan = (fun ~lo ~hi ~limit -> scan t ~limit ~lo ~hi ());
    delete = (fun key -> delete t key);
    rmw =
      (fun ~key operand ->
        let base = Option.value ~default:"" (get t key) in
        put t ~key (base ^ operand));
    flush = (fun () -> flush t);
    quiesce = (fun () -> Db.quiesce t.tree);
    io_stats = (fun () -> Db.io_stats t.tree);
    user_bytes = (fun () -> t.logical_bytes);
    space_bytes = (fun () -> Lsm_storage.Device.total_bytes t.dev);
  }
let logical_bytes t = t.logical_bytes
