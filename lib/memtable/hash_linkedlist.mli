(** Hash-linkedlist memtable — RocksDB's cheapest hash buffer (§2.2.1).

    Buckets hold unsorted singly-linked lists with the newest entry at
    the head. Insert is O(1); a point lookup scans one bucket; sorted
    iteration pays a full collect-and-sort. Best for tiny buffers with
    strong key locality. *)

type t

val implementation_name : string
val default_buckets : int
val default_prefix : int

val create_sized : cmp:Lsm_util.Comparator.t -> buckets:int -> prefix_len:int -> unit -> t
(** Explicit geometry, used by [Memtable] when the engine config
    overrides the defaults. *)

val create : cmp:Lsm_util.Comparator.t -> unit -> t
val add : t -> Lsm_record.Entry.t -> unit
val find : t -> ?max_seqno:int -> string -> Lsm_record.Entry.t option
val count : t -> int
val footprint : t -> int

val iterator : t -> Lsm_record.Iter.t
(** O(n log n): collects every bucket and sorts. *)
