(** Probabilistic skiplist memtable — RocksDB's default buffer.

    Expected O(log n) insert and lookup, O(1) sorted-iterator creation.
    Ordered by [Entry.compare]: user key ascending, seqno descending, so
    the first node matching a key is its newest version.

    Forward pointers are [Atomic.t], RocksDB-InlineSkipList style: the
    single writer initializes a new node's pointers {e before} linking
    it (each link is a release store), so a reader racing the insert
    either misses the node entirely or sees it fully wired — its onward
    pointers never read as a stale [None] that would truncate the walk.
    This is what lets {!Db.get}/{!Db.multi_get} run concurrently with
    the one writer: entries at or below the reader's published-seqno
    ceiling are always reachable, and in-flight entries above it are at
    worst skipped, never corrupting the traversal. Still single-writer:
    [add] is not safe to call from two domains. *)

module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Comparator = Lsm_util.Comparator
module Rng = Lsm_util.Rng

let implementation_name = "skiplist"
let max_level = 16
let branching = 4

type node = {
  nentry : Entry.t option;  (** [None] only for the head sentinel *)
  forward : node option Atomic.t array;
}

type t = {
  cmp : Comparator.t;
  head : node;
  rng : Rng.t;
  mutable level : int;  (** highest level currently in use, >= 1 *)
  mutable count : int;
  mutable footprint : int;
}

let create ~cmp () =
  {
    cmp;
    head = { nentry = None; forward = Array.init max_level (fun _ -> Atomic.make None) };
    rng = Rng.create 0x5eed;
    level = 1;
    count = 0;
    footprint = 0;
  }

let random_level t =
  let rec loop lvl = if lvl < max_level && Rng.int t.rng branching = 0 then loop (lvl + 1) else lvl in
  loop 1

let entry_of n =
  match n.nentry with Some e -> e | None -> assert false

(* Last node (per level) strictly before [e] in Entry.compare order;
   fills [update] with the predecessors when provided. *)
let find_greater_or_equal t cmp_fn ?update () =
  let x = ref t.head in
  for lvl = t.level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      match Atomic.get !x.forward.(lvl) with
      | Some nxt when cmp_fn (entry_of nxt) < 0 -> x := nxt
      | _ -> continue := false
    done;
    match update with Some u -> u.(lvl) <- !x | None -> ()
  done;
  Atomic.get !x.forward.(0)

let add t e =
  let update = Array.make max_level t.head in
  let _ = find_greater_or_equal t (fun n -> Entry.compare t.cmp n e) ~update () in
  let lvl = random_level t in
  if lvl > t.level then begin
    for i = t.level to lvl - 1 do
      update.(i) <- t.head
    done;
    t.level <- lvl
  end;
  let node = { nentry = Some e; forward = Array.init lvl (fun _ -> Atomic.make None) } in
  (* Wire the node fully, then link bottom-up: each link publishes (the
     atomic store is a release) a node whose own pointers are already
     set, so a concurrent reader never walks off a half-built node. *)
  for i = 0 to lvl - 1 do
    Atomic.set node.forward.(i) (Atomic.get update.(i).forward.(i))
  done;
  for i = 0 to lvl - 1 do
    Atomic.set update.(i).forward.(i) (Some node)
  done;
  t.count <- t.count + 1;
  t.footprint <- t.footprint + Entry.footprint e

(* First node with user key >= target (any seqno). Seqno sorts descending,
   so within the target key this is the newest version. *)
let seek_node t target =
  find_greater_or_equal t
    (fun n ->
      let c = t.cmp.compare n.Entry.key target in
      if c <> 0 then c else 1 (* same key: every version is >= "key at +inf seqno" *))
    ()

let find t ?(max_seqno = max_int) key =
  let rec walk node =
    match node with
    | None -> None
    | Some n ->
      let e = entry_of n in
      if t.cmp.compare e.Entry.key key <> 0 then None
      else if e.Entry.seqno <= max_seqno && e.Entry.kind <> Entry.Range_delete then Some e
      else walk (Atomic.get n.forward.(0))
  in
  walk (seek_node t key)

let count t = t.count
let footprint t = t.footprint

let iterator t =
  let cur = ref None in
  {
    Iter.valid = (fun () -> !cur <> None);
    entry = (fun () -> match !cur with Some n -> entry_of n | None -> invalid_arg "skiplist iter");
    next = (fun () -> match !cur with Some n -> cur := Atomic.get n.forward.(0) | None -> ());
    seek = (fun target -> cur := seek_node t target);
    seek_to_first = (fun () -> cur := Atomic.get t.head.forward.(0));
  }
