(** Hash-skiplist memtable — RocksDB's prefix-bucketed buffer (§2.2.1).

    Keys are bucketed by a hash of their fixed-length prefix; each bucket
    is a small skiplist. Point lookups touch one bucket (near O(1) for
    short buckets); a full sorted iteration must merge all buckets, so
    flushes and scans pay an O(n log n) collect-and-sort. *)

type t

val implementation_name : string
val default_buckets : int
val default_prefix : int

val create_sized : cmp:Lsm_util.Comparator.t -> buckets:int -> prefix_len:int -> unit -> t
(** Explicit geometry, used by [Memtable] when the engine config
    overrides the defaults. *)

val create : cmp:Lsm_util.Comparator.t -> unit -> t
val add : t -> Lsm_record.Entry.t -> unit
val find : t -> ?max_seqno:int -> string -> Lsm_record.Entry.t option
val count : t -> int
val footprint : t -> int

val iterator : t -> Lsm_record.Iter.t
(** O(n log n): collects every bucket and sorts. *)
