(** Unsorted append vector memtable — RocksDB's "vector" buffer (§2.2.1).

    O(1) amortized insert: the fastest ingestion path for write-only
    phases (bulk loading), at the price of sorting on the first read or
    at flush. Interleaved reads each pay the (amortized) sort, which is
    why the paper notes its performance "degrades in presence of
    interleaved reads". *)

type t

val implementation_name : string
val create : cmp:Lsm_util.Comparator.t -> unit -> t
val add : t -> Lsm_record.Entry.t -> unit

val find : t -> ?max_seqno:int -> string -> Lsm_record.Entry.t option
(** Sorts the buffer if a write happened since the last sort. *)

val count : t -> int
val footprint : t -> int

val iterator : t -> Lsm_record.Iter.t
(** Sorts the buffer on creation (and again on [seek]/[seek_to_first]
    if writes interleave). *)
