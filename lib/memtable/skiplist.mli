(** Probabilistic skiplist memtable — RocksDB's default buffer.

    Expected O(log n) insert and lookup, O(1) sorted-iterator creation.
    Ordered by [Entry.compare]: user key ascending, seqno descending, so
    the first node matching a key is its newest version. Not
    domain-safe: a memtable belongs to one writer at a time (the engine
    serializes writes above this layer). *)

type t

val implementation_name : string
val create : cmp:Lsm_util.Comparator.t -> unit -> t
val add : t -> Lsm_record.Entry.t -> unit

val find : t -> ?max_seqno:int -> string -> Lsm_record.Entry.t option
(** Newest visible version of the key with [seqno <= max_seqno];
    range-delete entries are never returned. *)

val count : t -> int
val footprint : t -> int

val iterator : t -> Lsm_record.Iter.t
(** O(1) creation; coherent until the next [add]. *)
