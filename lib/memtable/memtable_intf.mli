(** The in-memory write buffer interface (§2.1.1.A, §2.2.1).

    A memtable buffers versioned entries. It never discards versions
    (snapshots may still need them); shadowing is resolved at read and
    flush time. Implementations differ in the insert/lookup/scan cost
    profile — that is exactly the design choice the paper's §2.2.1
    discusses (RocksDB's vector vs skiplist vs hash-* buffers). *)

module type S = sig
  type t

  val implementation_name : string

  val create : cmp:Lsm_util.Comparator.t -> unit -> t

  val add : t -> Lsm_record.Entry.t -> unit
  (** Inserts one versioned entry. Sequence numbers must be unique per
      memtable (the engine guarantees this). *)

  val find : t -> ?max_seqno:int -> string -> Lsm_record.Entry.t option
  (** Newest entry for the user key with [seqno <= max_seqno]
      (default: no bound). Range-delete entries are not returned by [find];
      the engine tracks them separately. *)

  val count : t -> int
  (** Number of buffered entries. *)

  val footprint : t -> int
  (** Approximate bytes of buffered data, for flush triggering. *)

  val iterator : t -> Lsm_record.Iter.t
  (** Iterator in [Entry.compare] order over the entries present when it was
      created; it is only guaranteed coherent until the next [add]. Creation
      cost varies: O(1) for the skiplist, O(n log n) for hash buckets and
      unsorted vectors — the flush-cost asymmetry §2.2.1 alludes to. *)
end
