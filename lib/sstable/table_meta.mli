(** Per-file metadata as tracked by the manifest/version machinery.

    This is the information compaction-picking policies work from
    (§2.2.3): key range and size for overlap computations, tombstone
    counts and age for delete-aware policies (Lethe). *)

type t = {
  file_id : int;
  file_name : string;
  size : int;  (** bytes on device *)
  entries : int;
  point_tombstones : int;
  range_tombstones : int;
  min_key : string;
  max_key : string;
  min_seqno : int;
  max_seqno : int;
  created_at : int;  (** logical tick when the file was written *)
  data_bytes : int;
  ecc : (int * int) option;
      (** [(k, m)] stripe geometry when the file carries a Reed–Solomon
          parity section. Advisory and in-memory only: it is {e not}
          written to the manifest (keeping the MANIFEST byte format
          identical whether or not ECC is on), so metas round-tripped
          through {!decode} carry [None] — the authoritative record is
          the table's own props block and trailing locator. *)
}

val of_props : file_id:int -> file_name:string -> size:int -> Sstable.Props.t -> t

val file_name_of_id : int -> string
(** ["%06d.sst"]. *)

val overlaps : Lsm_util.Comparator.t -> t -> lo:string -> hi:string -> bool
(** Closed-interval key-range intersection test. *)

val overlaps_file : Lsm_util.Comparator.t -> t -> t -> bool

val tombstone_density : t -> float
(** (point + range tombstones) / entries — Lethe's file-picking signal. *)

val encode : Buffer.t -> t -> unit
val decode : Lsm_util.Codec.reader -> t
val pp : Format.formatter -> t -> unit
