(** SSTable: the immutable sorted-run file (§2.1.1.C).

    Layout: a sequence of prefix-compressed data {!Block}s, then a point
    {!Lsm_filter.Point_filter} block, a {!Lsm_filter.Range_filter} block,
    the fence-pointer index (one entry per data block: §2.1.3's fence
    pointers), a properties block, and a fixed-size footer.

    Readers keep the index, the filters, and the properties in memory —
    the "auxiliary in-memory data structures per immutable file" of the
    paper — and fetch data blocks through the shared {!Lsm_storage.Block_cache}. *)

module Props : sig
  type t = {
    entries : int;  (** total entries, all versions *)
    point_tombstones : int;
    range_tombstones : Lsm_record.Entry.t list;  (** the actual entries *)
    min_key : string;
    max_key : string;
    min_seqno : int;
    max_seqno : int;
    created_at : int;  (** logical clock tick of the flush/compaction *)
    data_bytes : int;  (** uncompressed user key+value bytes *)
    ecc : (int * int * int) option;
        (** [(k, m, page)] when the table carries a Reed–Solomon parity
            section: stripes of [k] data pages of [page] bytes protected
            by [m] parity pages. Lets a scrub rebuild a rotted parity
            section deterministically. [None] for legacy tables. *)
  }

  val pp : Format.formatter -> t -> unit
end

(** {1 Building} *)

type compression = C_none | C_lz
(** Block compression: [C_lz] runs each data block through
    {!Lsm_util.Lz}, falling back to raw storage when a block does not
    shrink. Self-describing per block, so mixed files read fine. *)

type build_config = {
  block_size : int;  (** target data-block size in bytes *)
  restart_interval : int;
  filter : Lsm_filter.Point_filter.policy;
  filter_bits_override : float option;
      (** per-table bits-per-key override (Monkey allocation); [None] uses
          the policy's own parameter *)
  range_filter : Lsm_filter.Range_filter.policy;
  compression : compression;
  ecc : (int * int) option;
      (** [(k, m)]: append a Reed–Solomon parity section after the footer
          — stripes of [k] device pages carry [m] parity pages, so up to
          [m] rotted pages per stripe are reconstructible on read
          (DESIGN.md §14). [None] (the default) emits the legacy format
          byte-for-byte. The section lives entirely {e after} the legacy
          image and is found via a self-checksummed trailing locator, so
          pre-ECC readers and ECC readers accept both formats. *)
}

val default_build_config : build_config

val build :
  ?config:build_config ->
  cmp:Lsm_util.Comparator.t ->
  dev:Lsm_storage.Device.t ->
  cls:Lsm_storage.Io_stats.op_class ->
  name:string ->
  created_at:int ->
  Lsm_record.Iter.t ->
  Props.t
(** Drains the iterator (which must yield [Entry.compare]-ordered entries)
    into a new file [name] and returns its properties.
    @raise Invalid_argument if the iterator yields nothing or out of order. *)

(** {1 Reading} *)

type cached_block = Block.parsed
(** What the shared block cache stores for SSTables: blocks that are
    already CRC-verified, decompressed, and restart-parsed — decode-once
    caching, so a hit re-pays neither checksum nor decompression. *)

type reader

type ecc_event =
  | Ecc_repaired of { pages : int; ns : int }
      (** a read or scrub reconstructed [pages] rotted pages in place
          from parity, in [ns] nanoseconds *)
  | Ecc_unrecoverable
      (** rot exceeded the per-stripe parity budget; the original
          corruption propagates and the caller quarantines as before *)

val open_reader :
  cmp:Lsm_util.Comparator.t ->
  dev:Lsm_storage.Device.t ->
  cache:cached_block Lsm_storage.Block_cache.t ->
  ?on_ecc:(ecc_event -> unit) ->
  string ->
  reader
(** Reads footer, index, filters, and properties into memory, verifying
    the footer magic and the shared meta-block CRC (which covers the
    filters, index, props, and the footer's offset table). On a table
    carrying an ECC section, a corrupt meta region or footer is first
    repaired in place from parity and the open retried; [on_ecc]
    observes every repair outcome (here and on later block reads).
    @raise Lsm_util.Lsm_error.Error with [Corruption] on a malformed
    file; retriable [Io_error]s are retried with bounded backoff. *)

val props : reader -> Props.t
val name : reader -> string
val file_size : reader -> int
val index_block_count : reader -> int
val filter_bits : reader -> int

val may_contain_key : reader -> string -> bool
(** Point-filter probe only (no I/O). *)

val may_overlap_range : reader -> lo:string -> hi:string option -> bool
(** Key-range check against (min_key, max_key) and the range filter. *)

val get :
  reader ->
  cls:Lsm_storage.Io_stats.op_class ->
  ?max_seqno:int ->
  string ->
  Lsm_record.Entry.t option
(** Newest visible version of the key in this table (may be a tombstone —
    the caller interprets it). Probes the filter first; on a filter
    negative, performs no I/O. Never returns [Range_delete] entries. *)

val iterator :
  reader ->
  cls:Lsm_storage.Io_stats.op_class ->
  ?use_cache:bool ->
  unit ->
  Lsm_record.Iter.t
(** Full-table iterator (includes tombstones and range-delete entries —
    compaction needs them). [use_cache] defaults to [true]; compactions
    pass [false] so they do not pollute the block cache (§2.1.3 / E13). *)

val prefetch_into_cache : reader -> cls:Lsm_storage.Io_stats.op_class -> int
(** Load every data block into the block cache (Leaper-style refill after
    compaction, E13); returns the number of blocks loaded. Like every
    read path, blocks are checksum-validated {e before} insertion — a
    corrupt block raises and never enters the cache. *)

(** {1 Integrity verification and salvage}

    Hooks for the scrubber ([Db.verify_integrity]) and the offline
    [lsm-doctor] tool. Reads bypass the block cache. *)

type index_entry = { fence : string; off : int; len : int; first_key : string }

val index_entries : reader -> index_entry array
(** The fence-pointer index: one entry per data block, in key order. *)

val block_entries :
  reader ->
  cls:Lsm_storage.Io_stats.op_class ->
  index_entry ->
  Lsm_record.Entry.t list
(** Decode one data block straight from the device (checksum-verified,
    uncached). Salvage walks blocks individually so one rotten block
    doesn't condemn its neighbours.
    @raise Lsm_util.Lsm_error.Error with [Corruption] on a bad block. *)

val verify : reader -> cls:Lsm_storage.Io_stats.op_class -> unit
(** Scrub the whole table: every data block re-read and CRC-checked,
    fence-pointer ordering and index/block agreement verified (the meta
    blocks were already CRC-verified by {!open_reader}).
    @raise Lsm_util.Lsm_error.Error with [Corruption] on the first
    defect found. *)

val scrub_ecc : reader -> cls:Lsm_storage.Io_stats.op_class -> int
(** Proactive ECC maintenance for one table, intended right after a
    clean {!verify}: reconstruct every silently rotted covered or parity
    page in place, rebuild the parity section from the verified content
    if the section itself rotted, and heal a damaged locator copy from
    its twin. Returns pages rewritten (0 for a legacy table or a clean
    ECC table); repairs are also reported through [on_ecc]. *)
