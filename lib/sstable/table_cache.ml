(* LRU list is intrusive and doubly linked, same shape as the block
   cache's, but budgeted by reader count rather than bytes: what matters
   is the per-reader footprint of parsed footer/index/filter blocks. One
   mutex guards the whole structure — opens are rare next to gets, and a
   get is just a hashtable probe plus two pointer swaps. *)

type node = {
  name : string;
  reader : Sstable.reader;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cmp : Lsm_util.Comparator.t;
  dev : Lsm_storage.Device.t;
  cache : Sstable.cached_block Lsm_storage.Block_cache.t;
  on_ecc : Sstable.ecc_event -> unit;
  m : Lsm_util.Ordered_mutex.t;
  mutable cap : int;
  readers : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable opens : int;
  mutable evictions : int;
}

let create ?(capacity = max_int) ?(on_ecc = fun (_ : Sstable.ecc_event) -> ()) ~cmp ~dev
    ~cache () =
  if capacity < 1 then invalid_arg "Table_cache.create: capacity must be >= 1";
  {
    cmp;
    dev;
    cache;
    on_ecc;
    m = Lsm_util.Ordered_mutex.create ~rank:Lsm_util.Ordered_mutex.Rank.table_cache ~name:"table_cache";
    cap = capacity;
    readers = Hashtbl.create 64;
    head = None;
    tail = None;
    opens = 0;
    evictions = 0;
  }

let locked t f = Lsm_util.Ordered_mutex.with_lock t.m f

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let drop_node t n =
  unlink t n;
  Hashtbl.remove t.readers n.name

let evict_until_fits t =
  while Hashtbl.length t.readers > t.cap do
    match t.tail with
    | Some n ->
      (* The reader itself stays valid for anyone still iterating it —
         it holds only immutable parsed metadata; we merely stop caching
         it. Its data blocks stay in the block cache (the file still
         exists). *)
      drop_node t n;
      t.evictions <- t.evictions + 1
    | None -> assert false
  done

let find_and_touch t name =
  match Hashtbl.find_opt t.readers name with
  | Some n ->
    unlink t n;
    push_front t n;
    Some n.reader
  | None -> None

let get t name =
  match locked t (fun () -> find_and_touch t name) with
  | Some r -> r
  | None ->
    (* Open outside the lock: footer/index/filter I/O under the cache
       mutex would serialize every other domain's gets behind the
       device (lint rule R2). Two domains racing the same file may both
       parse it; the loser's reader is discarded below — parsed
       metadata is immutable, so either copy is equally valid. *)
    let r = Sstable.open_reader ~cmp:t.cmp ~dev:t.dev ~cache:t.cache ~on_ecc:t.on_ecc name in
    locked t @@ fun () ->
    (match find_and_touch t name with
    | Some winner -> winner
    | None ->
      let n = { name; reader = r; prev = None; next = None } in
      Hashtbl.replace t.readers name n;
      push_front t n;
      t.opens <- t.opens + 1;
      evict_until_fits t;
      r)

let evict t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.readers name with
      | Some n -> drop_node t n
      | None -> ());
  ignore (Lsm_storage.Block_cache.evict_file t.cache name)

let set_capacity t capacity =
  if capacity < 1 then invalid_arg "Table_cache.set_capacity: capacity must be >= 1";
  locked t @@ fun () ->
  t.cap <- capacity;
  evict_until_fits t

let capacity t = t.cap
let open_count t = locked t (fun () -> Hashtbl.length t.readers)
let total_opens t = t.opens
let evictions t = t.evictions
let block_cache t = t.cache
