module Codec = Lsm_util.Codec
module Comparator = Lsm_util.Comparator
module Crc32c = Lsm_util.Crc32c
module Lsm_error = Lsm_util.Lsm_error
module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats
module Block_cache = Lsm_storage.Block_cache
module Point_filter = Lsm_filter.Point_filter
module Range_filter = Lsm_filter.Range_filter

module Rs = Lsm_util.Rs

let magic = 0x4c534d54 (* "LSMT" *)

(* Magic of the optional ECC tail appended after the legacy footer
   (DESIGN.md §14). *)
let ecc_magic = 0x4c534d45 (* "LSME" *)
let ecc_locator_size = 16
let ecc_tail_size = 2 * ecc_locator_size

(* Bounded retry for transient device faults: a read raising a retriable
   [Lsm_error.Io_error] is retried with linear backoff; anything else
   (including a non-retriable fault on the last attempt) propagates. *)
let max_read_attempts = 4

let read_with_retry dev ~cls name ~off ~len =
  let rec go attempt =
    try Device.read dev ~cls name ~off ~len with
    | Lsm_error.Error (Lsm_error.Io_error { retriable = true; _ })
      when attempt < max_read_attempts ->
      Unix.sleepf (0.00005 *. float_of_int attempt);
      go (attempt + 1)
  in
  go 1

module Props = struct
  type t = {
    entries : int;
    point_tombstones : int;
    range_tombstones : Entry.t list;
    min_key : string;
    max_key : string;
    min_seqno : int;
    max_seqno : int;
    created_at : int;
    data_bytes : int;
    ecc : (int * int * int) option;
        (** [(k, m, page)] parity-stripe geometry for tables written with
            ECC on; [None] for legacy tables. Trailing optional fields, so
            an ECC-off table's props bytes are unchanged. *)
  }

  let encode t =
    let b = Buffer.create 256 in
    Codec.put_varint b t.entries;
    Codec.put_varint b t.point_tombstones;
    Codec.put_varint b (List.length t.range_tombstones);
    List.iter (Entry.encode b) t.range_tombstones;
    Codec.put_lp_string b t.min_key;
    Codec.put_lp_string b t.max_key;
    Codec.put_varint b t.min_seqno;
    Codec.put_varint b t.max_seqno;
    Codec.put_varint b t.created_at;
    Codec.put_varint b t.data_bytes;
    (match t.ecc with
    | Some (k, m, page) ->
      Codec.put_varint b k;
      Codec.put_varint b m;
      Codec.put_varint b page
    | None -> ());
    Buffer.contents b

  let decode s =
    let r = Codec.reader s in
    let entries = Codec.get_varint r in
    let point_tombstones = Codec.get_varint r in
    let nrd = Codec.get_varint r in
    let range_tombstones = List.init nrd (fun _ -> Entry.decode r) in
    let min_key = Codec.get_lp_string r in
    let max_key = Codec.get_lp_string r in
    let min_seqno = Codec.get_varint r in
    let max_seqno = Codec.get_varint r in
    let created_at = Codec.get_varint r in
    let data_bytes = Codec.get_varint r in
    (* The props block is cut to its exact length, so trailing bytes can
       only be the optional ECC geometry. *)
    let ecc =
      if Codec.remaining r > 0 then begin
        let k = Codec.get_varint r in
        let m = Codec.get_varint r in
        let page = Codec.get_varint r in
        Some (k, m, page)
      end
      else None
    in
    {
      entries;
      point_tombstones;
      range_tombstones;
      min_key;
      max_key;
      min_seqno;
      max_seqno;
      created_at;
      data_bytes;
      ecc;
    }

  let pp ppf t =
    Format.fprintf ppf "entries=%d tombstones=%d(+%d range) keys=[%S..%S] seq=[%d..%d] born=%d"
      t.entries t.point_tombstones (List.length t.range_tombstones) t.min_key t.max_key
      t.min_seqno t.max_seqno t.created_at;
    match t.ecc with
    | Some (k, m, page) -> Format.fprintf ppf " ecc=%d+%d/%dB" k m page
    | None -> ()
end

type compression = C_none | C_lz

type build_config = {
  block_size : int;
  restart_interval : int;
  filter : Point_filter.policy;
  filter_bits_override : float option;
  range_filter : Range_filter.policy;
  compression : compression;
  ecc : (int * int) option;
      (** [(k, m)]: write a trailing Reed–Solomon parity section with
          stripes of [k] data pages + [m] parity pages. [None] (the
          default) writes the legacy format byte-identically. *)
}

let default_build_config =
  {
    block_size = 4096;
    restart_interval = 16;
    filter = Point_filter.default;
    filter_bits_override = None;
    range_filter = Range_filter.No_range_filter;
    compression = C_none;
    ecc = None;
  }

(* Per-block frame: [u8 tag | payload] with tag 0 = raw block, or
   [u8 1 | varint raw_len | lz payload]. *)
let frame_block compression data =
  match compression with
  | C_none -> "\x00" ^ data
  | C_lz ->
    let packed = Lsm_util.Lz.compress data in
    if String.length packed + 8 >= String.length data then "\x00" ^ data
    else begin
      let b = Buffer.create (String.length packed + 8) in
      Codec.put_u8 b 1;
      Codec.put_varint b (String.length data);
      Buffer.add_string b packed;
      Buffer.contents b
    end

(* Largest plausible decompressed block. Blocks are cut around
   [block_size] (a few KiB); a corrupt varint must not drive a
   gigabyte-sized allocation before the CRC check can reject the block. *)
let max_raw_block = 1 lsl 26

(* Unframe without copying where possible: a raw (tag 0) block is
   returned as the framed buffer itself with records starting at offset
   1, so the only copy on that path is the device read. A compressed
   block necessarily materializes its decompressed form (base 0). *)
let unframe_block framed =
  let r = Codec.reader framed in
  match Codec.get_u8 r with
  | 0 -> (framed, 1)
  | 1 ->
    let raw_len = Codec.get_varint r in
    if raw_len > max_raw_block then
      raise (Codec.Corrupt (Printf.sprintf "implausible block length %d" raw_len));
    (Lsm_util.Lz.decompress (Codec.get_raw r (Codec.remaining r)) ~expected_len:raw_len, 0)
  | n -> raise (Codec.Corrupt (Printf.sprintf "unknown block frame tag %d" n))

type index_entry = { fence : string; off : int; len : int; first_key : string }

let encode_index entries =
  let b = Buffer.create 1024 in
  Codec.put_varint b (List.length entries);
  List.iter
    (fun e ->
      Codec.put_lp_string b e.fence;
      Codec.put_varint b e.off;
      Codec.put_varint b e.len;
      Codec.put_lp_string b e.first_key)
    entries;
  Buffer.contents b

let decode_index s =
  let r = Codec.reader s in
  let n = Codec.get_varint r in
  Array.init n (fun _ ->
      let fence = Codec.get_lp_string r in
      let off = Codec.get_varint r in
      let len = Codec.get_varint r in
      let first_key = Codec.get_lp_string r in
      { fence; off; len; first_key })

(* ---------------- ECC parity section (DESIGN.md §14) ---------------- *)

(* On-disk layout of an ECC table:

     [ legacy table: data blocks ^ meta blocks ^ 40-byte footer ]  (covered)
     [ section header: varint k | m | page | cov_len,
       then one u32 CRC per covered page, one per parity page ]
     [ u32 header CRC ]
     [ parity bytes: ceil(ncov/k) stripes x m pages ]
     [ 16-byte locator, twice: u32 ecc_off | u32 ecc_len
                             | u32 crc of those 8 bytes | u32 ecc magic ]

   The covered range is the whole legacy file [0, cov_len = ecc_off) —
   data blocks, meta blocks and footer alike — so single-page rot
   anywhere that matters is repairable, and an ECC-off reader opening
   the prefix would see a byte-identical legacy table. Stripe [s] covers
   pages [s*k .. s*k+k-1]; pages past the end act as virtual all-zero
   shards. The per-page CRCs are what turns "this block failed its CRC"
   into "page p of stripe s is the erasure" (and they catch rot in the
   parity pages themselves). The locator is duplicated because it is the
   one thing parity cannot protect; under the one-flip-per-page rot
   model at most one copy is damaged, and [scrub_ecc] rewrites the bad
   twin. A legacy table simply has no tail: misdetection would need 64
   arbitrary trailing bits to pass the locator CRC + magic. *)

let crc_int s = Int32.to_int (Crc32c.mask (Crc32c.string s)) land 0xffffffff

let ecc_locator ~ecc_off ~ecc_len =
  let b = Buffer.create ecc_locator_size in
  Codec.put_u32 b ecc_off;
  Codec.put_u32 b ecc_len;
  Codec.put_u32 b (crc_int (Buffer.sub b 0 8));
  Codec.put_u32 b ecc_magic;
  Buffer.contents b

(* Covered page [p] as a full-[page] shard, zero-padded at the covered
   range's tail and all-zero beyond it. [read] abstracts the source: the
   builder's in-memory mirror or the device. *)
let ecc_cov_shard ~read ~page ~cov_len p =
  let off = p * page in
  if off >= cov_len then String.make page '\000'
  else begin
    let len = min page (cov_len - off) in
    let s = read ~off ~len in
    if len = page then s else s ^ String.make (page - len) '\000'
  end

let build_ecc_section ~k ~m ~page ~cov_len ~read =
  let ncov = ((cov_len - 1) / page) + 1 in
  let nstripes = ((ncov - 1) / k) + 1 in
  let rs = Rs.create ~k ~m in
  let cov_crcs = Array.make ncov 0 in
  let parity = Array.make (nstripes * m) "" in
  for s = 0 to nstripes - 1 do
    let data = Array.init k (fun i -> ecc_cov_shard ~read ~page ~cov_len ((s * k) + i)) in
    Array.iteri
      (fun i sh ->
        let p = (s * k) + i in
        if p < ncov then cov_crcs.(p) <- crc_int sh)
      data;
    Array.blit (Rs.encode rs data) 0 parity (s * m) m
  done;
  let header = Buffer.create (32 + (4 * (ncov + Array.length parity))) in
  Codec.put_varint header k;
  Codec.put_varint header m;
  Codec.put_varint header page;
  Codec.put_varint header cov_len;
  Array.iter (Codec.put_u32 header) cov_crcs;
  Array.iter (fun sh -> Codec.put_u32 header (crc_int sh)) parity;
  let hb = Buffer.contents header in
  let out = Buffer.create (String.length hb + 4 + (Array.length parity * page)) in
  Buffer.add_string out hb;
  Codec.put_u32 out (crc_int hb);
  Array.iter (Buffer.add_string out) parity;
  Buffer.contents out

let effective_filter_policy config =
  match (config.filter, config.filter_bits_override) with
  | Point_filter.Bloom _, Some bits -> Point_filter.Bloom { bits_per_key = bits }
  | Point_filter.Blocked_bloom _, Some bits -> Point_filter.Blocked_bloom { bits_per_key = bits }
  | policy, _ -> policy

let build ?(config = default_build_config) ~cmp ~dev ~cls ~name ~created_at (it : Iter.t) =
  it.Iter.seek_to_first ();
  if not (it.Iter.valid ()) then invalid_arg "Sstable.build: empty iterator";
  let w = Device.open_writer dev ~cls name in
  (* With ECC on, mirror every covered byte so the parity section can be
     computed at the end without re-reading the file. *)
  let mirror =
    match config.ecc with Some _ -> Some (Buffer.create 65536) | None -> None
  in
  let emit s =
    Device.append w s;
    match mirror with Some b -> Buffer.add_string b s | None -> ()
  in
  let block = Block.Builder.create ~restart_interval:config.restart_interval () in
  let index = ref [] in
  (* Fence for a finished block is decided lazily, once the next block's
     first key is known (shortest separator keeps fences small). *)
  let pending : (string * int * int * string) option ref = ref None in
  let block_first = ref "" in
  let block_off = ref 0 in
  let entries = ref 0 in
  let point_tombstones = ref 0 in
  let range_tombstones = ref [] in
  let min_seqno = ref max_int and max_seqno = ref 0 in
  let data_bytes = ref 0 in
  let distinct_keys = ref [] in
  let last_key = ref None in
  let min_key = ref "" and max_key = ref "" in
  let flush_pending next_first_key =
    match !pending with
    | None -> ()
    | Some (last, off, len, first) ->
      let fence =
        match next_first_key with
        | Some nk -> Comparator.shortest_separator cmp last nk
        | None -> Comparator.short_successor cmp last
      in
      index := { fence; off; len; first_key = first } :: !index;
      pending := None
  in
  let finish_block last_key_of_block =
    if not (Block.Builder.is_empty block) then begin
      let data = frame_block config.compression (Block.Builder.finish block) in
      pending := Some (last_key_of_block, !block_off, String.length data, !block_first);
      emit data;
      block_off := !block_off + String.length data
    end
  in
  let prev = ref None in
  while it.Iter.valid () do
    let e = it.Iter.entry () in
    (match !prev with
    | Some p when Entry.compare cmp p e > 0 -> invalid_arg "Sstable.build: iterator out of order"
    | _ -> ());
    prev := Some e;
    (* Cut blocks only between distinct user keys so all versions of a key
       share a block ([get] stops at block end). *)
    (match !last_key with
    | Some k
      when Block.Builder.size_estimate block >= config.block_size
           && not (String.equal k e.Entry.key) ->
      finish_block k
    | _ -> ());
    if Block.Builder.is_empty block then begin
      flush_pending (Some e.Entry.key);
      block_first := e.Entry.key
    end;
    Block.Builder.add block e;
    incr entries;
    (match e.Entry.kind with
    | Entry.Delete | Entry.Single_delete -> incr point_tombstones
    | Entry.Range_delete -> range_tombstones := e :: !range_tombstones
    | Entry.Put | Entry.Merge -> ());
    if e.Entry.seqno < !min_seqno then min_seqno := e.Entry.seqno;
    if e.Entry.seqno > !max_seqno then max_seqno := e.Entry.seqno;
    data_bytes := !data_bytes + String.length e.Entry.key + String.length e.Entry.value;
    (match !last_key with
    | Some k when String.equal k e.Entry.key -> ()
    | _ ->
      distinct_keys := e.Entry.key :: !distinct_keys;
      last_key := Some e.Entry.key);
    if !entries = 1 then min_key := e.Entry.key;
    max_key := e.Entry.key;
    it.Iter.next ()
  done;
  (match !last_key with Some k -> finish_block k | None -> assert false);
  flush_pending None;
  (* Filters over all distinct user keys. *)
  let keys = !distinct_keys in
  let pf = Point_filter.create (effective_filter_policy config) ~expected:(List.length keys) in
  List.iter (Point_filter.add pf) keys;
  let filter_block = Point_filter.encode pf in
  let rf = Range_filter.build config.range_filter ~keys in
  let rfilter_block = Range_filter.encode rf in
  let props =
    {
      Props.entries = !entries;
      point_tombstones = !point_tombstones;
      range_tombstones = List.rev !range_tombstones;
      min_key = !min_key;
      max_key = !max_key;
      min_seqno = !min_seqno;
      max_seqno = !max_seqno;
      created_at;
      data_bytes = !data_bytes;
      ecc = (match config.ecc with Some (k, m) -> Some (k, m, Device.page_size dev) | None -> None);
    }
  in
  let props_block = Props.encode props in
  let index_block = encode_index (List.rev !index) in
  let filter_off = Device.written w in
  emit filter_block;
  let rfilter_off = Device.written w in
  emit rfilter_block;
  let index_off = Device.written w in
  emit index_block;
  let props_off = Device.written w in
  emit props_block;
  let footer = Buffer.create 48 in
  Codec.put_u32 footer filter_off;
  Codec.put_u32 footer (String.length filter_block);
  Codec.put_u32 footer rfilter_off;
  Codec.put_u32 footer (String.length rfilter_block);
  Codec.put_u32 footer index_off;
  Codec.put_u32 footer (String.length index_block);
  Codec.put_u32 footer props_off;
  Codec.put_u32 footer (String.length props_block);
  (* One CRC covers every meta block and the offset table itself: data
     blocks carry per-block checksums, but a flipped bit in the index,
     filters, or props would otherwise silently mis-route or mis-skip
     reads (e.g. [may_contain_key] consulting rotted min/max keys). *)
  let meta_crc =
    Crc32c.mask
      (Crc32c.string
         (filter_block ^ rfilter_block ^ index_block ^ props_block
        ^ Buffer.contents footer))
  in
  Codec.put_u32 footer (Int32.to_int meta_crc land 0xffffffff);
  Codec.put_u32 footer magic;
  emit (Buffer.contents footer);
  (* ECC tail, after (and excluded from) the covered range. *)
  (match (config.ecc, mirror) with
  | Some (k, m), Some cov ->
    let cov = Buffer.contents cov in
    let cov_len = String.length cov in
    let page = Device.page_size dev in
    let section =
      build_ecc_section ~k ~m ~page ~cov_len
        ~read:(fun ~off ~len -> String.sub cov off len)
    in
    let loc = ecc_locator ~ecc_off:cov_len ~ecc_len:(String.length section) in
    Device.append w (section ^ loc ^ loc)
  | _ -> ());
  Device.close w;
  props

let footer_size = 40

type cached_block = Block.parsed

(* What a repair attempt came to — surfaced through [open_reader]'s
   [on_ecc] callback and counted into [Stats]. *)
type ecc_event =
  | Ecc_repaired of { pages : int; ns : int }
  | Ecc_unrecoverable

(* A parsed ECC section: everything needed to locate, check and rebuild
   pages without touching the section bytes again. *)
type ecc_state = {
  ecc_rs : Rs.t;
  ecc_page : int;
  ecc_cov_len : int;  (** covered prefix [0, cov_len) = the legacy table *)
  ecc_parity_off : int;  (** absolute offset of the parity pages *)
  ecc_cov_crcs : int array;
  ecc_par_crcs : int array;
}

type reader = {
  cmp : Comparator.t;
  dev : Device.t;
  cache : cached_block Block_cache.t;
  rname : string;
  size : int;
      (** size of the legacy table image (data + meta + footer) — the
          covered prefix for an ECC table, the whole file otherwise *)
  index : index_entry array;
  filter : Point_filter.t;
  rfilter : Range_filter.t;
  rprops : Props.t;
  ecc_layout : (int * int) option;  (** [(ecc_off, ecc_len)] from the locator *)
  mutable ecc : ecc_state option;
      (** [None] with a layout present means the section itself is rotted;
          reads still verify against block CRCs, and [scrub_ecc] rebuilds
          the section from the verified content *)
  on_ecc : ecc_event -> unit;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Detect the ECC tail: an ECC table ends with two redundant locator
   copies; accept either (one flip per page can damage at most one). *)
let detect_ecc_layout dev ~name ~fsize =
  if fsize < footer_size + ecc_tail_size then None
  else begin
    let tail =
      read_with_retry dev ~cls:Io_stats.C_misc name ~off:(fsize - ecc_tail_size)
        ~len:ecc_tail_size
    in
    let copy pos =
      let r = Codec.reader ~pos tail in
      let off = Codec.get_u32 r in
      let len = Codec.get_u32 r in
      let crc = Codec.get_u32 r in
      let mg = Codec.get_u32 r in
      if
        mg = ecc_magic
        && crc = crc_int (String.sub tail pos 8)
        && off >= footer_size && len > 0
        && off + len + ecc_tail_size = fsize
      then Some (off, len)
      else None
    in
    match copy 0 with Some v -> Some v | None -> copy ecc_locator_size
  end

exception Ecc_section_bad

(* Parse (and internally verify) the section; [None] means the section
   itself is rotted — never fatal, the covered table is still readable. *)
let parse_ecc_section dev ~name (ecc_off, ecc_len) =
  match
    let sec = read_with_retry dev ~cls:Io_stats.C_misc name ~off:ecc_off ~len:ecc_len in
    let r = Codec.reader sec in
    let k = Codec.get_varint r in
    let m = Codec.get_varint r in
    let page = Codec.get_varint r in
    let cov_len = Codec.get_varint r in
    if k < 1 || m < 1 || k + m > 255 || page < 1 || cov_len <> ecc_off then
      raise Ecc_section_bad;
    let ncov = ((cov_len - 1) / page) + 1 in
    let nstripes = ((ncov - 1) / k) + 1 in
    let cov_crcs = Array.init ncov (fun _ -> Codec.get_u32 r) in
    let par_crcs = Array.init (nstripes * m) (fun _ -> Codec.get_u32 r) in
    let header_len = r.Codec.pos in
    let stored = Codec.get_u32 r in
    if stored <> crc_int (String.sub sec 0 header_len) then raise Ecc_section_bad;
    if ecc_len <> header_len + 4 + (nstripes * m * page) then raise Ecc_section_bad;
    {
      ecc_rs = Rs.create ~k ~m;
      ecc_page = page;
      ecc_cov_len = cov_len;
      ecc_parity_off = ecc_off + header_len + 4;
      ecc_cov_crcs = cov_crcs;
      ecc_par_crcs = par_crcs;
    }
  with
  | st -> Some st
  | exception (Ecc_section_bad | Codec.Corrupt _ | Invalid_argument _) -> None

(* Reconstruct every rotted page of the stripes overlapping the covered
   byte range [off, off+len), patching repaired data pages — and
   recomputed parity pages — back in place. The per-page CRC table names
   the erasures; [Rs.decode] interpolates them back from the survivors.
   Returns pages rewritten: 0 means the range was clean or some stripe
   had more than m erasures (the caller falls back to the quarantine
   path). Patches are idempotent — concurrent repairs of one stripe
   write identical bytes — and a reconstruction whose CRC disagrees with
   the stored page CRC is discarded, never written. *)
let ecc_repair_range dev ~cls ~name st ~off ~len =
  let page = st.ecc_page in
  let k = Rs.k st.ecc_rs and m = Rs.m st.ecc_rs in
  let ncov = Array.length st.ecc_cov_crcs in
  let nstripes = ((ncov - 1) / k) + 1 in
  let read ~off ~len = read_with_retry dev ~cls name ~off ~len in
  let lo = max 0 (off / page / k) in
  let hi = min (nstripes - 1) ((off + len - 1) / page / k) in
  let repaired = ref 0 in
  for s = lo to hi do
    let slots = Array.make (k + m) None in
    let missing_data = ref [] and missing_par = ref [] in
    for i = 0 to k - 1 do
      let p = (s * k) + i in
      if p >= ncov then slots.(i) <- Some (String.make page '\000')
      else begin
        let sh = ecc_cov_shard ~read ~page ~cov_len:st.ecc_cov_len p in
        if crc_int sh = st.ecc_cov_crcs.(p) then slots.(i) <- Some sh
        else missing_data := (i, p) :: !missing_data
      end
    done;
    for j = 0 to m - 1 do
      let q = (s * m) + j in
      let sh = read ~off:(st.ecc_parity_off + (q * page)) ~len:page in
      if crc_int sh = st.ecc_par_crcs.(q) then slots.(k + j) <- Some sh
      else missing_par := (j, q) :: !missing_par
    done;
    if !missing_data <> [] || !missing_par <> [] then begin
      match Rs.decode st.ecc_rs slots with
      | None -> () (* beyond m erasures in this stripe *)
      | Some data ->
        if List.for_all (fun (i, p) -> crc_int data.(i) = st.ecc_cov_crcs.(p)) !missing_data
        then begin
          List.iter
            (fun (i, p) ->
              let poff = p * page in
              let real = min page (st.ecc_cov_len - poff) in
              Device.patch dev ~cls name ~off:poff (String.sub data.(i) 0 real);
              incr repaired)
            !missing_data;
          if !missing_par <> [] then begin
            let par = Rs.encode st.ecc_rs data in
            List.iter
              (fun (j, q) ->
                if crc_int par.(j) = st.ecc_par_crcs.(q) then begin
                  Device.patch dev ~cls name ~off:(st.ecc_parity_off + (q * page)) par.(j);
                  incr repaired
                end)
              !missing_par
          end
        end
    end
  done;
  !repaired

let open_reader ~cmp ~dev ~cache ?(on_ecc = fun (_ : ecc_event) -> ()) name =
  let corrupt ?offset detail = raise (Lsm_error.corruption ?offset ~file:name detail) in
  let fsize = Device.size dev name in
  let ecc_layout = detect_ecc_layout dev ~name ~fsize in
  let ecc = Option.bind ecc_layout (parse_ecc_section dev ~name) in
  (* Size of the legacy table image this reader addresses: everything
     before the ECC section for an ECC table, the whole file otherwise. *)
  let size = match ecc_layout with Some (off, _) -> off | None -> fsize in
  let parse_inner () =
    if size < footer_size then corrupt "file too small for footer";
    let footer =
      read_with_retry dev ~cls:Io_stats.C_misc name ~off:(size - footer_size)
        ~len:footer_size
    in
    let r = Codec.reader footer in
    let filter_off = Codec.get_u32 r in
    let filter_len = Codec.get_u32 r in
    let rfilter_off = Codec.get_u32 r in
    let rfilter_len = Codec.get_u32 r in
    let index_off = Codec.get_u32 r in
    let index_len = Codec.get_u32 r in
    let props_off = Codec.get_u32 r in
    let props_len = Codec.get_u32 r in
    let stored_crc = Int32.of_int (Codec.get_u32 r) in
    if Codec.get_u32 r <> magic then
      corrupt ~offset:(size - footer_size) ("bad magic in " ^ name);
    (* The four meta blocks are laid out back to back just before the
       footer; verify their shared CRC before trusting a single offset. *)
    if
      filter_off < 0 || filter_off > size - footer_size
      || props_off + props_len <> size - footer_size
      || rfilter_off <> filter_off + filter_len
      || index_off <> rfilter_off + rfilter_len
      || props_off <> index_off + index_len
    then corrupt ~offset:(size - footer_size) "meta-block offsets inconsistent";
    let meta =
      read_with_retry dev ~cls:Io_stats.C_misc name ~off:filter_off
        ~len:(size - footer_size - filter_off)
    in
    if Crc32c.mask (Crc32c.string (meta ^ String.sub footer 0 32)) <> stored_crc then
      corrupt ~offset:filter_off "meta-block checksum mismatch";
    let cut off len = String.sub meta (off - filter_off) len in
    try
      {
        cmp;
        dev;
        cache;
        rname = name;
        size;
        index = decode_index (cut index_off index_len);
        filter = Point_filter.decode (cut filter_off filter_len);
        rfilter = Range_filter.decode (cut rfilter_off rfilter_len);
        rprops = Props.decode (cut props_off props_len);
        ecc_layout;
        ecc;
        on_ecc;
      }
    with Codec.Corrupt d -> corrupt ("undecodable meta block: " ^ d)
  in
  match parse_inner () with
  | r -> r
  | exception (Lsm_error.Error (Lsm_error.Corruption _) as e) -> (
    (* Rot in the meta region or footer of an ECC table: heal the whole
       covered range from parity, then retry the open once. *)
    match ecc with
    | None -> raise e
    | Some st -> (
      let t0 = now_ns () in
      match ecc_repair_range dev ~cls:Io_stats.C_misc ~name st ~off:0 ~len:st.ecc_cov_len with
      | 0 ->
        on_ecc Ecc_unrecoverable;
        raise e
      | n -> (
        match parse_inner () with
        | r ->
          on_ecc (Ecc_repaired { pages = n; ns = now_ns () - t0 });
          r
        | exception e2 ->
          on_ecc Ecc_unrecoverable;
          raise e2)))

let props t = t.rprops
let name t = t.rname
let file_size t = t.size
let index_block_count t = Array.length t.index
let filter_bits t = Point_filter.bit_count t.filter

let may_contain_key t key =
  t.cmp.Comparator.compare key t.rprops.Props.min_key >= 0
  && t.cmp.Comparator.compare key t.rprops.Props.max_key <= 0
  && Point_filter.mem t.filter key

let may_overlap_range t ~lo ~hi =
  let below_max =
    match hi with
    | None -> true
    | Some hi -> t.cmp.Comparator.compare t.rprops.Props.min_key hi < 0
  in
  below_max
  && t.cmp.Comparator.compare lo t.rprops.Props.max_key <= 0
  && Range_filter.may_overlap t.rfilter ~lo ~hi

(* Decode a framed data block, converting every failure class to a typed
   corruption pinned to the block's offset. [Lz.decompress] on garbage can
   raise more than [Codec.Corrupt] (e.g. [Invalid_argument]), and none of
   them may escape as anything but [Corruption]. *)
let decode_block t (ie : index_entry) raw =
  try
    let buf, base = unframe_block raw in
    Block.parse_checked ~base buf
  with
  | Codec.Corrupt d ->
    raise (Lsm_error.corruption ~file:t.rname ~offset:ie.off ("data block: " ^ d))
  | Invalid_argument d | Failure d ->
    raise
      (Lsm_error.corruption ~file:t.rname ~offset:ie.off ("undecodable data block: " ^ d))

(* Record-level decode happens lazily, after the block-level CRC has
   passed; a [Codec.Corrupt] escaping a cursor at that point still has
   to surface as a typed corruption pinned to this block. *)
let run_typed t (ie : index_entry) f =
  try f () with
  | Codec.Corrupt d ->
    raise (Lsm_error.corruption ~file:t.rname ~offset:ie.off ("data block: " ^ d))

let cache_insert t (ie : index_entry) p =
  Block_cache.insert t.cache ~file:t.rname ~off:ie.off ~bytes:(Block.parsed_cost p) p

(* Data block access, through the cache. The cache stores *decoded*
   blocks ([Block.parsed]): CRC and decompression are paid exactly once
   per miss, and a hit hands [f] the parsed view directly. A block
   enters the cache only after validation, so a cached copy that stops
   decoding (memory rot) is exceptional: it is removed alone — the
   file's other blocks stay hot — and the read retried once against the
   device. *)
(* Device fetch + decode with the ECC fallback: a CRC/decode failure on
   an ECC table first reconstructs the rotted page(s) of the overlapping
   stripe(s) in place from parity, then refetches — the read is served
   and the file is healed. Only when the stripe has lost more pages than
   it carries parity does the original corruption propagate (and the
   caller quarantines as before). *)
let read_block_repairing t ~cls (ie : index_entry) =
  let fetch () =
    let raw = read_with_retry t.dev ~cls t.rname ~off:ie.off ~len:ie.len in
    decode_block t ie raw
  in
  try fetch ()
  with Lsm_error.Error (Lsm_error.Corruption _) as e -> (
    match t.ecc with
    | None -> raise e
    | Some st -> (
      let t0 = now_ns () in
      match ecc_repair_range t.dev ~cls ~name:t.rname st ~off:ie.off ~len:ie.len with
      | 0 ->
        t.on_ecc Ecc_unrecoverable;
        raise e
      | n -> (
        match fetch () with
        | p ->
          t.on_ecc (Ecc_repaired { pages = n; ns = now_ns () - t0 });
          p
        | exception e2 ->
          t.on_ecc Ecc_unrecoverable;
          raise e2)))

let with_block t ~cls ~use_cache (ie : index_entry) f =
  let fetch_fresh () = read_block_repairing t ~cls ie in
  match Block_cache.find t.cache ~file:t.rname ~off:ie.off with
  | Some p -> (
    try run_typed t ie (fun () -> f p)
    with Lsm_error.Error (Lsm_error.Corruption _) ->
      Block_cache.remove t.cache ~file:t.rname ~off:ie.off;
      let p = fetch_fresh () in
      if use_cache then cache_insert t ie p;
      run_typed t ie (fun () -> f p))
  | None ->
    let p = fetch_fresh () in
    if use_cache then cache_insert t ie p;
    run_typed t ie (fun () -> f p)

(* First index slot whose fence key is >= target: the only block that can
   contain [target]. *)
let index_seek t target =
  let n = Array.length t.index in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cmp.Comparator.compare t.index.(mid).fence target < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Point lookup on the zero-copy path: [Block.find] positions a cursor
   without building an iterator, the version walk compares and inspects
   borrowed views, and [Cursor.entry] materializes only the one record
   the read actually returns. *)
let get t ~cls ?(max_seqno = max_int) key =
  if not (may_contain_key t key) then None
  else begin
    let slot = index_seek t key in
    if slot >= Array.length t.index then None
    else
      with_block t ~cls ~use_cache:true t.index.(slot) (fun p ->
          let cur = Block.find t.cmp p key in
          let rec walk () =
            if not (Block.Cursor.valid cur) then None
            else if Block.Cursor.key_compare cur key <> 0 then None
            else if
              Block.Cursor.seqno cur <= max_seqno && Block.Cursor.kind cur <> Entry.Range_delete
            then Some (Block.Cursor.entry cur)
            else begin
              Block.Cursor.next cur;
              walk ()
            end
          in
          walk ())
  end

(* A block iterator that escapes [with_block] keeps decoding records
   lazily; wrap its operations so a stray [Codec.Corrupt] surfaces as a
   typed corruption pinned to the block. *)
let typed_iter t ie (it : Iter.t) =
  {
    Iter.valid = it.Iter.valid;
    entry = (fun () -> run_typed t ie it.Iter.entry);
    next = (fun () -> run_typed t ie it.Iter.next);
    seek = (fun target -> run_typed t ie (fun () -> it.Iter.seek target));
    seek_to_first = (fun () -> run_typed t ie it.Iter.seek_to_first);
  }

let iterator t ~cls ?(use_cache = true) () =
  let nblocks = Array.length t.index in
  let slot = ref nblocks in
  let block_iter = ref Iter.empty in
  let open_slot i =
    slot := i;
    if i < nblocks then begin
      let ie = t.index.(i) in
      block_iter := with_block t ~cls ~use_cache ie (fun p -> typed_iter t ie (Block.iterator t.cmp p));
      !block_iter.Iter.seek_to_first ()
    end
    else block_iter := Iter.empty
  in
  let rec skip_empty () =
    if !slot < nblocks && not (!block_iter.Iter.valid ()) then begin
      open_slot (!slot + 1);
      skip_empty ()
    end
  in
  {
    Iter.valid = (fun () -> !slot < nblocks && !block_iter.Iter.valid ());
    entry = (fun () -> !block_iter.Iter.entry ());
    next =
      (fun () ->
        if !slot < nblocks then begin
          !block_iter.Iter.next ();
          skip_empty ()
        end);
    seek =
      (fun target ->
        let i = index_seek t target in
        open_slot i;
        if i < nblocks then begin
          !block_iter.Iter.seek target;
          skip_empty ()
        end);
    seek_to_first =
      (fun () ->
        open_slot 0;
        skip_empty ());
  }

let prefetch_into_cache t ~cls =
  Array.iter
    (fun ie ->
      (* Same rule as [with_block]: nothing unvalidated enters the cache. *)
      cache_insert t ie (read_block_repairing t ~cls ie))
    t.index;
  Array.length t.index

(* ---------------- integrity verification + salvage hooks ---------------- *)

let index_entries t = t.index

let block_entries t ~cls (ie : index_entry) =
  let it = typed_iter t ie (Block.iterator t.cmp (read_block_repairing t ~cls ie)) in
  it.Iter.seek_to_first ();
  let out = ref [] in
  while it.Iter.valid () do
    out := it.Iter.entry () :: !out;
    it.Iter.next ()
  done;
  List.rev !out

(* Full-table scrub: every data block re-read from the device (bypassing
   the cache) and checksum-verified, fence ordering and block/first-key
   agreement checked. Raises the first [Lsm_error.Corruption] found.
   [open_reader] already verified the meta blocks' shared CRC. *)
let verify t ~cls =
  Array.iteri
    (fun i ie ->
      if i > 0 && t.cmp.Comparator.compare t.index.(i - 1).fence ie.fence >= 0 then
        raise
          (Lsm_error.corruption ~file:t.rname ~offset:ie.off
             (Printf.sprintf "fence pointers out of order at slot %d" i));
      if ie.off < 0 || ie.len < 8 || ie.off + ie.len > t.size then
        raise
          (Lsm_error.corruption ~file:t.rname ~offset:ie.off
             (Printf.sprintf "index slot %d outside the file" i));
      match block_entries t ~cls ie with
      | [] ->
        raise
          (Lsm_error.corruption ~file:t.rname ~offset:ie.off
             (Printf.sprintf "data block %d is empty" i))
      | first :: _ ->
        if not (String.equal first.Entry.key ie.first_key) then
          raise
            (Lsm_error.corruption ~file:t.rname ~offset:ie.off
               (Printf.sprintf "data block %d does not start at its indexed key" i)))
    t.index

(* Proactive ECC pass over one table, meant to run right after [verify]
   proved the covered content sound: repair every silently rotted page
   (covered or parity) from the stripes; rebuild the whole parity
   section from the verified content when the section itself rotted; and
   heal a damaged locator copy from its twin. Returns pages rewritten. *)
let scrub_ecc t ~cls =
  match t.ecc_layout with
  | None -> 0
  | Some (ecc_off, ecc_len) ->
    let t0 = now_ns () in
    let fixed = ref 0 in
    (match t.ecc with
    | Some st ->
      fixed := ecc_repair_range t.dev ~cls ~name:t.rname st ~off:0 ~len:st.ecc_cov_len
    | None -> (
      (* The section itself is rotted. The covered table just verified
         clean, so the parity is recomputable from scratch; Props carries
         the (k, m, page) geometry for exactly this. *)
      match t.rprops.Props.ecc with
      | Some (k, m, page) ->
        let read ~off ~len = read_with_retry t.dev ~cls t.rname ~off ~len in
        let sec = build_ecc_section ~k ~m ~page ~cov_len:ecc_off ~read in
        if String.length sec = ecc_len then begin
          Device.patch t.dev ~cls t.rname ~off:ecc_off sec;
          t.ecc <- parse_ecc_section t.dev ~name:t.rname (ecc_off, ecc_len);
          fixed := !fixed + (((ecc_len - 1) / page) + 1)
        end
      | None -> ()));
    (* Heal a rotted locator copy from the layout we already trusted. *)
    let loc = ecc_locator ~ecc_off ~ecc_len in
    let tail_off = ecc_off + ecc_len in
    let tail = read_with_retry t.dev ~cls t.rname ~off:tail_off ~len:ecc_tail_size in
    if not (String.equal (String.sub tail 0 ecc_locator_size) loc) then begin
      Device.patch t.dev ~cls t.rname ~off:tail_off loc;
      incr fixed
    end;
    if not (String.equal (String.sub tail ecc_locator_size ecc_locator_size) loc) then begin
      Device.patch t.dev ~cls t.rname ~off:(tail_off + ecc_locator_size) loc;
      incr fixed
    end;
    if !fixed > 0 then t.on_ecc (Ecc_repaired { pages = !fixed; ns = now_ns () - t0 });
    !fixed
