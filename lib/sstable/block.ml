module Codec = Lsm_util.Codec
module Crc32c = Lsm_util.Crc32c
module Comparator = Lsm_util.Comparator
module Entry = Lsm_record.Entry
module Slice = Lsm_record.Slice
module Iter = Lsm_record.Iter

module Builder = struct
  type t = {
    restart_interval : int;
    mutable buf : Buffer.t;
    mutable restarts : int list;  (** reversed offsets *)
    mutable nrestarts : int;
        (** [List.length restarts], kept incrementally — [size_estimate]
            runs once per entry, and walking the list each call made
            block building quadratic in entries per block *)
    mutable since_restart : int;
    mutable last_key : string;
    mutable count : int;
  }

  let create ?(restart_interval = 16) () =
    {
      restart_interval;
      buf = Buffer.create 4096;
      restarts = [];
      nrestarts = 0;
      since_restart = 0;
      last_key = "";
      count = 0;
    }

  let common_prefix_len a b =
    let n = min (String.length a) (String.length b) in
    let rec loop i = if i < n && a.[i] = b.[i] then loop (i + 1) else i in
    loop 0

  let add t (e : Entry.t) =
    let shared =
      if t.since_restart >= t.restart_interval || t.count = 0 then begin
        t.restarts <- Buffer.length t.buf :: t.restarts;
        t.nrestarts <- t.nrestarts + 1;
        t.since_restart <- 0;
        0
      end
      else common_prefix_len t.last_key e.key
    in
    let unshared = String.length e.key - shared in
    Codec.put_varint t.buf shared;
    Codec.put_varint t.buf unshared;
    Buffer.add_substring t.buf e.key shared unshared;
    Codec.put_varint t.buf e.seqno;
    Codec.put_u8 t.buf (Entry.kind_to_int e.kind);
    Codec.put_lp_string t.buf e.value;
    t.last_key <- e.key;
    t.since_restart <- t.since_restart + 1;
    t.count <- t.count + 1

  let size_estimate t = Buffer.length t.buf + (4 * (t.nrestarts + 2))
  let count t = t.count
  let is_empty t = t.count = 0

  let finish t =
    let restarts = List.rev t.restarts in
    let out = Buffer.create (size_estimate t + 4) in
    Buffer.add_buffer out t.buf;
    List.iter (Codec.put_u32 out) restarts;
    Codec.put_u32 out t.nrestarts;
    let body = Buffer.contents out in
    let crc = Crc32c.mask (Crc32c.string body) in
    Codec.put_u32 out (Int32.to_int crc land 0xffffffff);
    Buffer.clear t.buf;
    t.restarts <- [];
    t.nrestarts <- 0;
    t.since_restart <- 0;
    t.last_key <- "";
    t.count <- 0;
    Buffer.contents out
end

(* Copying verify: strips the CRC trailer into a fresh body string. Kept
   as the reference path for tools and the allocation bench's "before"
   arm; the engine reads through [parse_checked], which verifies in
   place. *)
let decode_check block =
  let n = String.length block in
  if n < 8 then raise (Codec.Corrupt "block too small");
  let body = String.sub block 0 (n - 4) in
  let stored = Int32.of_int (Codec.get_u32 (Codec.reader ~pos:(n - 4) block)) in
  if Crc32c.mask (Crc32c.string body) <> stored then
    raise (Codec.Corrupt "block checksum mismatch");
  body

(* A verified block, decoded once: the backing buffer is retained whole
   (records live at [pbase, pdata_end)), restart offsets are absolute
   positions in [pbody]. This is what the block cache stores, so a cache
   hit pays neither CRC nor trailer parsing. *)
type parsed = { pbody : string; pbase : int; pdata_end : int; prestarts : int array }

let parsed_cost p = String.length p.pbody + (8 * Array.length p.prestarts)

let parse_checked ?(base = 0) block =
  let n = String.length block in
  if base < 0 || base > n then invalid_arg "Block.parse_checked: bad base";
  if n - base < 8 then raise (Codec.Corrupt "block too small");
  let stored = Int32.of_int (Codec.get_u32 (Codec.reader ~pos:(n - 4) block)) in
  if Crc32c.mask (Crc32c.sub block ~pos:base ~len:(n - 4 - base)) <> stored then
    raise (Codec.Corrupt "block checksum mismatch");
  let count = Codec.get_u32 (Codec.reader ~pos:(n - 8) block) in
  let data_end = n - 8 - (4 * count) in
  if data_end < base then raise (Codec.Corrupt "bad restart count");
  let restarts =
    Array.init count (fun i -> base + Codec.get_u32 (Codec.reader ~pos:(data_end + (4 * i)) block))
  in
  { pbody = block; pbase = base; pdata_end = data_end; prestarts = restarts }

module Cursor = struct
  (* An arena cursor over one parsed block. The current key lives in
     [kbuf] (one reusable buffer, extended in place when the shared
     prefix grows); the current value is an [(off, len)] window into the
     block body. Nothing per-record is allocated until the caller
     materializes via [entry]/[key]/[value]. *)
  type t = {
    cmp : Comparator.t;
    p : parsed;
    mutable pos : int;  (** read position of the next record *)
    mutable kbuf : Bytes.t;
    mutable klen : int;
    mutable cseqno : int;
    mutable ckind : Entry.kind;
    mutable voff : int;
    mutable vlen : int;
    mutable cvalid : bool;
  }

  let make cmp p =
    {
      cmp;
      p;
      pos = p.pdata_end;
      kbuf = Bytes.create 64;
      klen = 0;
      cseqno = 0;
      ckind = Entry.Put;
      voff = 0;
      vlen = 0;
      cvalid = false;
    }

  (* Manual byte readers over [p.pbody] bounded by [pdata_end]: the hot
     loop must not allocate a Codec.reader per record. *)
  let u8 c =
    if c.pos >= c.p.pdata_end then raise (Codec.Corrupt "truncated record");
    let v = Char.code (String.unsafe_get c.p.pbody c.pos) in
    c.pos <- c.pos + 1;
    v

  (* Top-level recursion, not a nested [let rec]: a local loop would
     capture [c] and allocate a closure on every call — tens of minor
     words per seek on the hottest path in the engine. *)
  let rec varint_loop c shift acc =
    if shift > 63 then raise (Codec.Corrupt "varint too long");
    let b = u8 c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else varint_loop c (shift + 7) acc

  let varint c = varint_loop c 0 0

  let grow_kbuf c need =
    let cap = max need (2 * Bytes.length c.kbuf) in
    let nb = Bytes.create cap in
    (* Only the live prefix of the old arena carries over. *)
    Bytes.blit c.kbuf 0 nb 0 c.klen;
    c.kbuf <- nb

  let advance c =
    if c.pos >= c.p.pdata_end then c.cvalid <- false
    else begin
      let shared = varint c in
      let unshared = varint c in
      if shared > c.klen then raise (Codec.Corrupt "bad shared prefix");
      if c.pos + unshared > c.p.pdata_end then raise (Codec.Corrupt "truncated key");
      if Bytes.length c.kbuf < shared + unshared then grow_kbuf c (shared + unshared);
      Bytes.blit_string c.p.pbody c.pos c.kbuf shared unshared;
      c.pos <- c.pos + unshared;
      c.klen <- shared + unshared;
      c.cseqno <- varint c;
      c.ckind <- Entry.kind_of_int (u8 c);
      let vlen = varint c in
      if c.pos + vlen > c.p.pdata_end then raise (Codec.Corrupt "truncated value");
      c.voff <- c.pos;
      c.vlen <- vlen;
      c.pos <- c.pos + vlen;
      c.cvalid <- true
    end

  let reset_to c off =
    c.pos <- off;
    c.klen <- 0;
    c.cvalid <- false;
    advance c

  let seek_to_first c =
    if Array.length c.p.prestarts = 0 then c.cvalid <- false
    else reset_to c c.p.prestarts.(0)

  (* Compare the full key stored at restart [i] against [target] without
     materializing it: restart records carry shared = 0, so the key is a
     contiguous window of the body. Leaves [c.pos] untouched. *)
  let restart_cmp c i target =
    let saved = c.pos in
    c.pos <- c.p.prestarts.(i);
    let shared = varint c in
    if shared <> 0 then raise (Codec.Corrupt "bad shared prefix");
    let unshared = varint c in
    if c.pos + unshared > c.p.pdata_end then raise (Codec.Corrupt "truncated key");
    let r = Comparator.compare_sub c.cmp c.p.pbody ~pos:c.pos ~len:unshared target in
    c.pos <- saved;
    r

  let seek c target =
    if Array.length c.p.prestarts = 0 then c.cvalid <- false
    else begin
      (* Rightmost restart whose key is < target (so the target, if
         present, lies at or after it). *)
      let lo = ref 0 and hi = ref (Array.length c.p.prestarts - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if restart_cmp c mid target < 0 then lo := mid else hi := mid - 1
      done;
      reset_to c c.p.prestarts.(!lo);
      let continue = ref true in
      while !continue do
        if c.cvalid && Comparator.compare_bytes c.cmp c.kbuf ~len:c.klen target < 0 then advance c
        else continue := false
      done
    end

  let valid c = c.cvalid
  let next c = if c.cvalid then advance c

  let require c who = if not c.cvalid then invalid_arg ("Block.Cursor." ^ who ^ ": not valid")

  let key c =
    require c "key";
    Bytes.sub_string c.kbuf 0 c.klen

  let key_compare c target =
    require c "key_compare";
    Comparator.compare_bytes c.cmp c.kbuf ~len:c.klen target

  let seqno c =
    require c "seqno";
    c.cseqno

  let kind c =
    require c "kind";
    c.ckind

  let value_slice c =
    require c "value_slice";
    Slice.v c.p.pbody ~off:c.voff ~len:c.vlen

  let value c =
    require c "value";
    String.sub c.p.pbody c.voff c.vlen

  let entry c =
    require c "entry";
    Entry.of_value_slice
      ~key:(Bytes.sub_string c.kbuf 0 c.klen)
      ~seqno:c.cseqno ~kind:c.ckind
      (Slice.v c.p.pbody ~off:c.voff ~len:c.vlen)
end

(* Point lookup: a seek-positioned cursor, skipping Iter.t construction.
   The caller walks versions with [Cursor.next] and materializes only
   the record it takes. *)
let find cmp p target =
  let c = Cursor.make cmp p in
  Cursor.seek c target;
  c

let iterator (cmp : Comparator.t) p =
  let c = Cursor.make cmp p in
  (* Merging iterators call [entry] several times per record; memoize
     the materialization so each record is built at most once. *)
  let memo = ref None in
  let entry () =
    match !memo with
    | Some e -> e
    | None ->
      let e = Cursor.entry c in
      memo := Some e;
      e
  in
  {
    Iter.valid = (fun () -> Cursor.valid c);
    entry;
    next =
      (fun () ->
        memo := None;
        Cursor.next c);
    seek =
      (fun target ->
        memo := None;
        Cursor.seek c target);
    seek_to_first =
      (fun () ->
        memo := None;
        Cursor.seek_to_first c);
  }
