module Codec = Lsm_util.Codec
module Crc32c = Lsm_util.Crc32c
module Comparator = Lsm_util.Comparator
module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter

module Builder = struct
  type t = {
    restart_interval : int;
    mutable buf : Buffer.t;
    mutable restarts : int list;  (** reversed offsets *)
    mutable nrestarts : int;
        (** [List.length restarts], kept incrementally — [size_estimate]
            runs once per entry, and walking the list each call made
            block building quadratic in entries per block *)
    mutable since_restart : int;
    mutable last_key : string;
    mutable count : int;
  }

  let create ?(restart_interval = 16) () =
    {
      restart_interval;
      buf = Buffer.create 4096;
      restarts = [];
      nrestarts = 0;
      since_restart = 0;
      last_key = "";
      count = 0;
    }

  let common_prefix_len a b =
    let n = min (String.length a) (String.length b) in
    let rec loop i = if i < n && a.[i] = b.[i] then loop (i + 1) else i in
    loop 0

  let add t (e : Entry.t) =
    let shared =
      if t.since_restart >= t.restart_interval || t.count = 0 then begin
        t.restarts <- Buffer.length t.buf :: t.restarts;
        t.nrestarts <- t.nrestarts + 1;
        t.since_restart <- 0;
        0
      end
      else common_prefix_len t.last_key e.key
    in
    let unshared = String.length e.key - shared in
    Codec.put_varint t.buf shared;
    Codec.put_varint t.buf unshared;
    Buffer.add_substring t.buf e.key shared unshared;
    Codec.put_varint t.buf e.seqno;
    Codec.put_u8 t.buf (Entry.kind_to_int e.kind);
    Codec.put_lp_string t.buf e.value;
    t.last_key <- e.key;
    t.since_restart <- t.since_restart + 1;
    t.count <- t.count + 1

  let size_estimate t = Buffer.length t.buf + (4 * (t.nrestarts + 2))
  let count t = t.count
  let is_empty t = t.count = 0

  let finish t =
    let restarts = List.rev t.restarts in
    let out = Buffer.create (size_estimate t + 4) in
    Buffer.add_buffer out t.buf;
    List.iter (Codec.put_u32 out) restarts;
    Codec.put_u32 out t.nrestarts;
    let body = Buffer.contents out in
    let crc = Crc32c.mask (Crc32c.string body) in
    Codec.put_u32 out (Int32.to_int crc land 0xffffffff);
    Buffer.clear t.buf;
    t.restarts <- [];
    t.nrestarts <- 0;
    t.since_restart <- 0;
    t.last_key <- "";
    t.count <- 0;
    Buffer.contents out
end

let decode_check block =
  let n = String.length block in
  if n < 8 then raise (Codec.Corrupt "block too small");
  let body = String.sub block 0 (n - 4) in
  let stored = Int32.of_int (Codec.get_u32 (Codec.reader ~pos:(n - 4) block)) in
  if Crc32c.mask (Crc32c.string body) <> stored then
    raise (Codec.Corrupt "block checksum mismatch");
  body

type parsed = { body : string; data_end : int; restarts : int array }

let parse body =
  let n = String.length body in
  if n < 4 then raise (Codec.Corrupt "block body too small");
  let count = Codec.get_u32 (Codec.reader ~pos:(n - 4) body) in
  let data_end = n - 4 - (4 * count) in
  if data_end < 0 then raise (Codec.Corrupt "bad restart count");
  let restarts =
    Array.init count (fun i -> Codec.get_u32 (Codec.reader ~pos:(data_end + (4 * i)) body))
  in
  { body; data_end; restarts }

(* Decode the record at [pos] given the previous key; returns entry and
   next position. *)
let decode_record p ~prev_key ~pos =
  let r = Codec.reader ~pos p.body in
  let shared = Codec.get_varint r in
  let unshared = Codec.get_varint r in
  if shared > String.length prev_key then raise (Codec.Corrupt "bad shared prefix");
  let key = String.sub prev_key 0 shared ^ Codec.get_raw r unshared in
  let seqno = Codec.get_varint r in
  let kind = Entry.kind_of_int (Codec.get_u8 r) in
  let value = Codec.get_lp_string r in
  ({ Entry.key; seqno; kind; value }, r.Codec.pos)

let iterator (cmp : Comparator.t) body =
  let p = parse body in
  let pos = ref p.data_end in
  let current = ref None in
  let advance () =
    if !pos >= p.data_end then current := None
    else begin
      let prev_key = match !current with Some e -> e.Entry.key | None -> "" in
      let e, next = decode_record p ~prev_key ~pos:!pos in
      current := Some e;
      pos := next
    end
  in
  let reset_to offset =
    pos := offset;
    current := None;
    advance ()
  in
  (* Key at a restart point (always stored with shared = 0). *)
  let restart_key i =
    let e, _ = decode_record p ~prev_key:"" ~pos:p.restarts.(i) in
    e.Entry.key
  in
  let seek target =
    if Array.length p.restarts = 0 then current := None
    else begin
      (* Rightmost restart whose key is < target (so the target, if
         present, lies at or after it). *)
      let lo = ref 0 and hi = ref (Array.length p.restarts - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if cmp.compare (restart_key mid) target < 0 then lo := mid else hi := mid - 1
      done;
      reset_to p.restarts.(!lo);
      let continue = ref true in
      while !continue do
        match !current with
        | Some e when cmp.compare e.Entry.key target < 0 -> advance ()
        | Some _ | None -> continue := false
      done
    end
  in
  {
    Iter.valid = (fun () -> !current <> None);
    entry =
      (fun () ->
        match !current with Some e -> e | None -> invalid_arg "Block.iterator: not valid");
    next = (fun () -> if !current <> None then advance ());
    seek;
    seek_to_first =
      (fun () -> if Array.length p.restarts = 0 then current := None else reset_to p.restarts.(0));
  }
