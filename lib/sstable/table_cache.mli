(** Bounded LRU cache of opened {!Sstable.reader}s, so each file's footer,
    index, and filter blocks are parsed once and their in-memory form is
    shared by every get/scan/compaction touching the file.

    The cache holds at most [capacity] readers (RocksDB's
    [max_open_files]); opening the (capacity+1)-th file silently drops
    the least recently used reader, whose parsed blocks are re-read on
    the next touch. A dropped reader that is still in use by an iterator
    stays valid — readers are immutable once opened.

    All operations are mutex-protected: parallel subcompactions and
    fanned-out point lookups hit the cache from several domains. *)

type t

val create :
  ?capacity:int ->
  ?on_ecc:(Sstable.ecc_event -> unit) ->
  cmp:Lsm_util.Comparator.t ->
  dev:Lsm_storage.Device.t ->
  cache:Sstable.cached_block Lsm_storage.Block_cache.t ->
  unit ->
  t
(** [capacity] (default unbounded) is the maximum number of readers kept
    open, >= 1. [on_ecc] is threaded to every {!Sstable.open_reader}, so
    ECC repair outcomes on any cached table reach the db's counters. *)

val get : t -> string -> Sstable.reader
(** Open (or return the cached) reader for a file name; marks it most
    recently used. *)

val evict : t -> string -> unit
(** Drop the reader (call when the file is deleted); also drops the
    file's data blocks from the block cache. *)

val set_capacity : t -> int -> unit
val capacity : t -> int

(** {1 Statistics} *)

val open_count : t -> int
(** Readers currently cached (<= capacity). *)

val total_opens : t -> int
(** Cumulative file opens — [total_opens - open_count] re-opens indicate
    a too-small capacity. *)

val evictions : t -> int
(** Readers dropped by the capacity bound (not by {!evict}). *)

val block_cache : t -> Sstable.cached_block Lsm_storage.Block_cache.t
