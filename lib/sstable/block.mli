(** Data blocks: the unit of disk I/O and caching inside an SSTable.

    Entries are stored in [Entry.compare] order with prefix-compressed
    keys and periodic {e restart points} (full keys) that support binary
    search, exactly as in LevelDB/RocksDB. Each block carries a trailing
    CRC-32C so corruption is detected at read time.

    Record layout (relative to the previous key in the block):
    [varint shared | varint unshared | unshared-bytes | varint seqno |
     u8 kind | lp value]. Trailer: restart offsets (u32 each), restart
    count (u32), masked CRC-32C (u32).

    The read path is zero-copy: {!parse_checked} verifies the CRC in
    place and returns a {!parsed} view that borrows the input buffer;
    {!Cursor} iterates it keeping the current key in one reusable arena
    and the current value as an [(off, len)] window. Per-record
    allocation happens only when a caller materializes. *)

module Builder : sig
  type t

  val create : ?restart_interval:int -> unit -> t
  (** [restart_interval] defaults to 16. *)

  val add : t -> Lsm_record.Entry.t -> unit
  (** Entries must arrive in [Entry.compare] order (not checked here; the
      SSTable builder enforces it). *)

  val size_estimate : t -> int
  (** Current encoded size including the trailer. *)

  val count : t -> int
  val is_empty : t -> bool

  val finish : t -> string
  (** Encodes, seals, and resets the builder for the next block. *)
end

val decode_check : string -> string
(** Copying reference path: verify and strip the CRC trailer, returning
    the body as a fresh string. The engine reads via {!parse_checked};
    this stays for tools and as the bench's before-arm.
    @raise Lsm_util.Codec.Corrupt on checksum mismatch. *)

type parsed = private {
  pbody : string;  (** the backing buffer, retained whole *)
  pbase : int;  (** where records start inside [pbody] *)
  pdata_end : int;  (** where records end (restart trailer begins) *)
  prestarts : int array;  (** absolute restart offsets into [pbody] *)
}
(** A verified, decoded block: what the block cache stores, so hits pay
    neither CRC nor trailer parsing. Borrows its input buffer. *)

val parse_checked : ?base:int -> string -> parsed
(** Verify the CRC of [block[base..]] {e in place} (no copy) and parse
    the restart trailer. [base] defaults to 0; a nonzero base lets the
    caller keep a framing prefix (e.g. the compression tag byte) in the
    same buffer.
    @raise Lsm_util.Codec.Corrupt on checksum mismatch or bad trailer. *)

val parsed_cost : parsed -> int
(** Approximate resident bytes of a parsed block (backing buffer plus
    restart array) — the cache byte charge. *)

(** An arena cursor over one parsed block: the current key lives in a
    single reusable buffer (extended in place as the shared prefix
    grows), the current value is a borrowed window of the block body.
    Accessors raise [Invalid_argument] when the cursor is not
    positioned. Borrowed views ({!Cursor.value_slice}) are valid only
    while the parsed block stays reachable. *)
module Cursor : sig
  type t

  val make : Lsm_util.Comparator.t -> parsed -> t
  (** Starts invalid; position with {!seek} or {!seek_to_first}. *)

  val seek : t -> string -> unit
  (** Position at the first record with key >= target: binary search
      over the restart points (comparing borrowed key windows, no
      materialization), then a forward scan comparing the arena key. *)

  val seek_to_first : t -> unit
  val next : t -> unit
  val valid : t -> bool

  val key : t -> string
  (** Materializes the current key (copies out of the arena). *)

  val key_compare : t -> string -> int
  (** Compare the current key against [target] without materializing. *)

  val seqno : t -> int
  val kind : t -> Lsm_record.Entry.kind

  val value : t -> string
  (** Materializes the current value. *)

  val value_slice : t -> Lsm_record.Slice.t
  (** Borrowed view of the current value; no copy. *)

  val entry : t -> Lsm_record.Entry.t
  (** Materialize the current record (the only per-record allocation on
      the taken path). *)
end

val find : Lsm_util.Comparator.t -> parsed -> string -> Cursor.t
(** [find cmp p key] is a cursor positioned at the first record with
    key >= [key] — the point-get path, skipping iterator construction. *)

val iterator : Lsm_util.Comparator.t -> parsed -> Lsm_record.Iter.t
(** Iterator over a parsed block, backed by a {!Cursor}; [entry] is
    memoized so merging iterators materialize each record at most once.
    [seek] binary-searches the restart points then scans forward. *)
