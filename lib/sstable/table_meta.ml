module Codec = Lsm_util.Codec
module Comparator = Lsm_util.Comparator

type t = {
  file_id : int;
  file_name : string;
  size : int;
  entries : int;
  point_tombstones : int;
  range_tombstones : int;
  min_key : string;
  max_key : string;
  min_seqno : int;
  max_seqno : int;
  created_at : int;
  data_bytes : int;
  ecc : (int * int) option;
}

let of_props ~file_id ~file_name ~size (p : Sstable.Props.t) =
  {
    file_id;
    file_name;
    size;
    ecc = (match p.ecc with Some (k, m, _) -> Some (k, m) | None -> None);
    entries = p.entries;
    point_tombstones = p.point_tombstones;
    range_tombstones = List.length p.range_tombstones;
    min_key = p.min_key;
    max_key = p.max_key;
    min_seqno = p.min_seqno;
    max_seqno = p.max_seqno;
    created_at = p.created_at;
    data_bytes = p.data_bytes;
  }

let file_name_of_id id = Printf.sprintf "%06d.sst" id

let overlaps (c : Comparator.t) t ~lo ~hi =
  c.compare t.min_key hi <= 0 && c.compare lo t.max_key <= 0

let overlaps_file c a b = overlaps c a ~lo:b.min_key ~hi:b.max_key

let tombstone_density t =
  if t.entries = 0 then 0.0
  else float_of_int (t.point_tombstones + t.range_tombstones) /. float_of_int t.entries

let encode b t =
  Codec.put_varint b t.file_id;
  Codec.put_lp_string b t.file_name;
  Codec.put_varint b t.size;
  Codec.put_varint b t.entries;
  Codec.put_varint b t.point_tombstones;
  Codec.put_varint b t.range_tombstones;
  Codec.put_lp_string b t.min_key;
  Codec.put_lp_string b t.max_key;
  Codec.put_varint b t.min_seqno;
  Codec.put_varint b t.max_seqno;
  Codec.put_varint b t.created_at;
  Codec.put_varint b t.data_bytes

let decode r =
  let file_id = Codec.get_varint r in
  let file_name = Codec.get_lp_string r in
  let size = Codec.get_varint r in
  let entries = Codec.get_varint r in
  let point_tombstones = Codec.get_varint r in
  let range_tombstones = Codec.get_varint r in
  let min_key = Codec.get_lp_string r in
  let max_key = Codec.get_lp_string r in
  let min_seqno = Codec.get_varint r in
  let max_seqno = Codec.get_varint r in
  let created_at = Codec.get_varint r in
  let data_bytes = Codec.get_varint r in
  {
    file_id;
    file_name;
    size;
    ecc = None;
    entries;
    point_tombstones;
    range_tombstones;
    min_key;
    max_key;
    min_seqno;
    max_seqno;
    created_at;
    data_bytes;
  }

let pp ppf t =
  Format.fprintf ppf "#%d[%S..%S %dB %de %dt@%d]" t.file_id t.min_key t.max_key t.size
    t.entries t.point_tombstones t.created_at
