(* Fixed-window tenant quotas. One hashtable entry per tenant seen;
   windows roll lazily on the next [admit], so an idle tenant costs
   nothing. All-or-nothing admission: a denied request charges zero,
   keeping retry behavior predictable and batches atomic. *)

type limits = { max_ops : int option; max_bytes : int option }

let unlimited = { max_ops = None; max_bytes = None }

type tenant_state = {
  mutable limits : limits;
  mutable window_start : float;
  mutable used_ops : int;
  mutable used_bytes : int;
}

type t = {
  window_s : float;
  default : limits;
  tenants : (string, tenant_state) Hashtbl.t;
}

type denial = {
  tenant : string;
  dimension : [ `Ops | `Bytes ];
  used : int;
  requested : int;
  limit : int;
}

let create ?(window_s = 1.0) ?(default = unlimited) () =
  if window_s <= 0.0 then invalid_arg "Quota.create: window must be positive";
  { window_s; default; tenants = Hashtbl.create 16 }

let state t ~tenant ~now =
  match Hashtbl.find_opt t.tenants tenant with
  | Some s -> s
  | None ->
    let s = { limits = t.default; window_start = now; used_ops = 0; used_bytes = 0 } in
    Hashtbl.add t.tenants tenant s;
    s

let set_limits t ~tenant limits =
  (* [now] only matters for a brand-new entry, where zero usage makes any
     window placement equivalent until the first [admit] rolls it. *)
  (state t ~tenant ~now:0.0).limits <- limits

let admit t ~tenant ~now ~ops ~bytes =
  let s = state t ~tenant ~now in
  if now -. s.window_start >= t.window_s then begin
    s.window_start <- now;
    s.used_ops <- 0;
    s.used_bytes <- 0
  end;
  let deny dimension used requested limit =
    Error { tenant; dimension; used; requested; limit }
  in
  let over lim used req = match lim with Some l -> used + req > l | None -> false in
  if over s.limits.max_ops s.used_ops ops then
    deny `Ops s.used_ops ops (Option.get s.limits.max_ops)
  else if over s.limits.max_bytes s.used_bytes bytes then
    deny `Bytes s.used_bytes bytes (Option.get s.limits.max_bytes)
  else begin
    s.used_ops <- s.used_ops + ops;
    s.used_bytes <- s.used_bytes + bytes;
    Ok ()
  end

let describe d =
  Printf.sprintf "tenant %s over %s quota: used %d + requested %d > limit %d" d.tenant
    (match d.dimension with `Ops -> "ops" | `Bytes -> "byte")
    d.used d.requested d.limit
