(** RESP2 wire framing (the Redis serialization protocol, request subset).

    Requests are arrays of bulk strings — [*N\r\n] followed by N
    [$len\r\ndata\r\n] frames — and replies are the five RESP2 reply
    kinds. The codec is allocation-light and incremental: parsers take a
    buffer and an offset and either return the decoded value with the
    offset one past its last byte, or report that more bytes are needed,
    so a connection can accumulate partial frames across reads
    (pipelining falls out for free: keep parsing until [Incomplete]).

    Malformed input raises {!Malformed} — a protocol error, distinct
    from short input, which is never an error. *)

exception Malformed of string
(** The bytes cannot be a RESP frame (bad type byte, non-numeric length,
    missing CRLF, negative or oversized length). Connection-fatal. *)

val max_bulk_len : int
(** Upper bound accepted for any single bulk string or array arity
    (defense against hostile [$9999999999] headers). *)

(** {1 Requests — arrays of bulk strings} *)

val encode_command : string list -> string
(** Client side: [encode_command ["PUT"; k; v]] is the request frame. *)

val parse_command : Bytes.t -> pos:int -> len:int -> (string list * int) option
(** Server side: decode one command from [bytes[pos, len)]. [Some (args,
    pos')] on a complete frame, [None] if more bytes are needed.
    @raise Malformed on protocol errors. *)

(** {1 Replies} *)

type reply =
  | Simple of string  (** [+OK\r\n] *)
  | Error of string  (** [-CODE message\r\n]; the string is "CODE message" *)
  | Int of int  (** [:n\r\n] *)
  | Bulk of string  (** [$len\r\ndata\r\n] *)
  | Nil  (** [$-1\r\n] — absent value *)
  | Array of reply list  (** [*N\r\n] followed by N replies *)

val encode_reply : reply -> string

val parse_reply : Bytes.t -> pos:int -> len:int -> (reply * int) option
(** Client side: decode one reply from [bytes[pos, len)]; same contract
    as {!parse_command}. @raise Malformed on protocol errors. *)

val error_code : reply -> string option
(** [Some code] (the first word) when the reply is an [Error]. *)
