(* N hash-partitioned engines behind one map. Each shard is a full [Db]
   — its own device (and so its own WAL and manifest when on disk, under
   [root/shard-NNN/]), its own background lane membership, its own
   backpressure. Keys route by [Hashing.string64] of the {e stored} key
   (tenant prefix included), so one tenant's data spreads across every
   shard and no shard is a tenant hotspot.

   Tenancy is a key-namespace discipline, not a per-tenant tree: the
   stored key is [tenant ^ "\x00" ^ user_key]. NUL is reserved as the
   separator — tenants containing it are rejected at the door — which
   keeps tenants prefix-disjoint under the default comparator (no
   tenant's range scan can leak into another's).

   Cross-shard fan-out (multi-get, grouped batch writes) runs on an
   optional [Domain_pool] owned by the map, one task per shard; shard
   configs keep [compaction_parallelism = 1] in the server so the only
   pool in play is this one (no nested fan-out). Writes remain
   single-writer {e per shard}: the map is driven by one server loop,
   and a fan-out issues at most one task per shard. *)

module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Write_batch = Lsm_core.Write_batch
module Device = Lsm_storage.Device
module Hashing = Lsm_util.Hashing
module Domain_pool = Lsm_util.Domain_pool

type t = {
  shards : Db.t array;
  pool : Domain_pool.t option;  (** cross-shard fan-out; [None] = sequential *)
}

let tenant_sep = '\x00'

let encode_key ~tenant key =
  if String.contains tenant tenant_sep then
    invalid_arg "Shard_map.encode_key: tenant contains NUL";
  let b = Bytes.create (String.length tenant + 1 + String.length key) in
  Bytes.blit_string tenant 0 b 0 (String.length tenant);
  Bytes.set b (String.length tenant) tenant_sep;
  Bytes.blit_string key 0 b (String.length tenant + 1) (String.length key);
  Bytes.unsafe_to_string b

let valid_tenant tenant = tenant <> "" && not (String.contains tenant tenant_sep)

let open_shards ?(config = Config.default) ?(fanout_workers = 0) ~count ~mode () =
  if count < 1 then invalid_arg "Shard_map.open_shards: count must be >= 1";
  let shards =
    Array.init count (fun i ->
        let dev =
          match mode with
          | `Memory -> Device.in_memory ()
          | `Disk root ->
            let dir = Filename.concat root (Printf.sprintf "shard-%03d" i) in
            (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
            Device.on_disk ~dir ()
        in
        Db.open_db ~config ~dev ())
  in
  let pool =
    if fanout_workers > 1 then Some (Domain_pool.create ~size:(min fanout_workers count))
    else None
  in
  { shards; pool }

let count t = Array.length t.shards
let db t i = t.shards.(i)

let shard_of_key t stored_key =
  Int64.to_int
    (Int64.rem
       (Int64.logand (Hashing.string64 stored_key) Int64.max_int)
       (Int64.of_int (Array.length t.shards)))

(* Fan [f shard_index] across every listed shard; the pool path keeps
   result order aligned with [idxs]. *)
let over_shards t idxs f =
  match t.pool with
  | Some pool when List.length idxs > 1 -> Domain_pool.map_list pool f idxs
  | _ -> List.map f idxs

(* Point-lookup fan-out: group keys by shard (preserving each key's
   input position), one [Db.multi_get] per touched shard — each shard's
   batch resolves against one read context — then scatter results back
   into input order. Cross-shard, the cut is per-shard, which is exactly
   the atomicity {!apply_grouped} offers writes. *)
let multi_get t stored_keys =
  let n = List.length stored_keys in
  let buckets = Array.make (Array.length t.shards) [] in
  List.iteri
    (fun i k ->
      let s = shard_of_key t k in
      buckets.(s) <- (i, k) :: buckets.(s))
    stored_keys;
  let touched =
    Array.to_list (Array.mapi (fun s b -> (s, List.rev b)) buckets)
    |> List.filter (fun (_, b) -> b <> [])
  in
  let out = Array.make n None in
  let per_shard =
    over_shards t touched (fun (s, pairs) ->
        (pairs, Db.multi_get t.shards.(s) (List.map snd pairs)))
  in
  List.iter
    (fun (pairs, results) ->
      List.iter2 (fun (i, _) r -> out.(i) <- r) pairs results)
    per_shard;
  Array.to_list out

(* Batch write fan-out: one [Write_batch] per touched shard, applied
   with [Db.apply_batch] — atomic (and crash-atomic) within each shard.
   The batches were grouped by the caller (the server) from one client
   request, so per shard there is still exactly one writer. *)
let apply_grouped t batches =
  ignore
    (over_shards t batches (fun (s, wb) ->
         Db.apply_batch t.shards.(s) wb))

let iter t f = Array.iteri f t.shards
let flush_all t = Array.iter Db.flush t.shards
let quiesce_all t = Array.iter Db.quiesce t.shards

let close_all t =
  Array.iter Db.close t.shards;
  match t.pool with Some p -> Domain_pool.shutdown p | None -> ()
