(** The serving front door: a RESP-speaking, multi-tenant, sharded KV
    server over Unix-domain sockets.

    One event loop, no server-side threads: a [select]-driven reactor
    accepts connections, accumulates partial frames, and executes every
    complete pipelined command in arrival order, appending replies to a
    per-connection output queue. Concurrency lives below the loop —
    cross-shard fan-out on the shard map's domain pool, per-shard
    background flush/compaction lanes — so the protocol layer stays
    sequentially consistent per connection while the engine work runs
    wide. Drive it either with {!run} (blocking; the [bin/lsm_server]
    entry point) or by calling {!step} from an enclosing loop (the
    in-process harness and tests).

    Commands (first argument, case-insensitive):
    - [PING] → [+PONG]
    - [TENANT name] → bind this connection to a tenant namespace; every
      data command below requires it ([-NOTENANT] otherwise)
    - [PUT key value] / [DEL key] → [+OK]
    - [GET key] → bulk value or nil
    - [MGET k1 .. kn] → array, one bulk/nil per key, input order; the
      whole batch reads one point-in-time cut per shard
    - [MSET k1 v1 .. kn vn] → [+OK]; applied as one atomic
      [Write_batch] per touched shard
    - [QUOTA tenant ops bytes] → set a tenant's per-window limits
      ([-] = unlimited)
    - [STATS] → bulk text: per-shard debt/stall counters, op totals
    - [FLUSH] → flush every shard's memtable
    - [SHUTDOWN] → [+OK], then graceful drain: stop accepting, flush
      every connection's pending replies, quiesce every shard's
      background lane, and only then let the listener exit

    Error replies use a leading code word: [-ERR ...], [-NOTENANT ...],
    [-QUOTA_EXCEEDED ...], [-BADARG ...]. *)

type t

type stats = {
  accepted : int;  (** connections accepted over the server's life *)
  active : int;  (** connections currently open *)
  commands : int;  (** commands executed *)
  quota_denials : int;
  protocol_errors : int;  (** connections dropped for malformed frames *)
  bytes_in : int;
  bytes_out : int;
}

val create :
  ?quota:Quota.t -> ?backlog:int -> shards:Shard_map.t -> sock_path:string -> unit -> t
(** Bind and listen on [sock_path] (an existing socket file is removed
    first), non-blocking. The shard map stays owned by the caller —
    {!run} quiesces it on [SHUTDOWN] but never closes it. *)

val step : t -> timeout:float -> bool
(** One reactor round: wait up to [timeout] seconds for readiness, then
    accept/read/execute/write what is ready. Returns [false] once the
    server has fully drained after [SHUTDOWN] (or {!request_shutdown})
    — the listener is closed and no connection remains. *)

val run : t -> unit
(** [step] until drained. *)

val request_shutdown : t -> unit
(** Programmatic [SHUTDOWN] (signal handlers, tests). *)

val draining : t -> bool
val stats : t -> stats
val sock_path : t -> string

val close : t -> unit
(** Force-close listener and every connection without draining. Safe
    after {!run}; does not touch the shard map. *)
