(** N hash-partitioned {!Lsm_core.Db} shards behind one routing map.

    Each shard is a complete engine with its own device — on disk, its
    own WAL and manifest under [root/shard-NNN/] — so shards flush,
    compact, and apply backpressure independently; the shared background
    scheduler lane interleaves their jobs. Stored keys are
    [tenant ^ "\x00" ^ key] (see {!encode_key}) and route to a shard by
    hash of the full stored key.

    Driven by a single server loop: reads may fan out internally, but
    at most one writer touches a shard at a time. *)

type t

val open_shards :
  ?config:Lsm_core.Config.t ->
  ?fanout_workers:int ->
  count:int ->
  mode:[ `Memory | `Disk of string ] ->
  unit ->
  t
(** Open [count] shards. [`Disk root] places each shard under
    [root/shard-NNN/] (directories are created). [fanout_workers] > 1
    enables a domain pool for cross-shard read/write fan-out (capped at
    [count]); the default 0 keeps everything on the calling domain.
    Shard configs should keep [compaction_parallelism = 1] — the map's
    pool is the only fan-out layer. *)

val count : t -> int
val db : t -> int -> Lsm_core.Db.t  (** shard by index; test/stats hook *)

val encode_key : tenant:string -> string -> string
(** The stored form: [tenant ^ "\x00" ^ key]. Tenants are
    prefix-disjoint under the default comparator.
    @raise Invalid_argument if [tenant] contains NUL. *)

val valid_tenant : string -> bool
(** Non-empty and NUL-free. *)

val shard_of_key : t -> string -> int
(** Routing hash over the {e stored} key. *)

val multi_get : t -> string list -> string option list
(** Stored keys, any shards, results in input order. Each shard's subset
    resolves against one read context ({!Lsm_core.Db.multi_get}); the
    fan-out runs on the map's pool when present. *)

val apply_grouped : t -> (int * Lsm_core.Write_batch.t) list -> unit
(** Apply one pre-grouped batch per shard (indices from
    {!shard_of_key}), fanned across the pool. Atomic per shard, not
    across shards. *)

val iter : t -> (int -> Lsm_core.Db.t -> unit) -> unit
val flush_all : t -> unit
val quiesce_all : t -> unit

val close_all : t -> unit
(** Close every shard and shut the fan-out pool down. Call
    {!quiesce_all} first for a graceful drain. *)
