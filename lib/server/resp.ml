(* RESP2 framing. Incremental by construction: every parser either
   consumes a whole frame or returns [None] ("need more bytes") without
   side effects, so the caller can retry with a longer buffer. Malformed
   bytes — as opposed to merely short — raise {!Malformed}; the server
   treats that as connection-fatal, matching Redis.

   Length headers are bounded by [max_bulk_len] before any allocation
   happens: a hostile [$9999999999] costs the attacker a closed
   connection, not the server a 10 GB buffer. *)

exception Malformed of string

let max_bulk_len = 64 * 1024 * 1024

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* ---------------- encoding ---------------- *)

let encode_command args =
  let b = Buffer.create 64 in
  Buffer.add_char b '*';
  Buffer.add_string b (string_of_int (List.length args));
  Buffer.add_string b "\r\n";
  List.iter
    (fun a ->
      Buffer.add_char b '$';
      Buffer.add_string b (string_of_int (String.length a));
      Buffer.add_string b "\r\n";
      Buffer.add_string b a;
      Buffer.add_string b "\r\n")
    args;
  Buffer.contents b

type reply =
  | Simple of string
  | Error of string
  | Int of int
  | Bulk of string
  | Nil
  | Array of reply list

let rec add_reply b = function
  | Simple s ->
    Buffer.add_char b '+';
    Buffer.add_string b s;
    Buffer.add_string b "\r\n"
  | Error s ->
    Buffer.add_char b '-';
    Buffer.add_string b s;
    Buffer.add_string b "\r\n"
  | Int n ->
    Buffer.add_char b ':';
    Buffer.add_string b (string_of_int n);
    Buffer.add_string b "\r\n"
  | Bulk s ->
    Buffer.add_char b '$';
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_string b "\r\n";
    Buffer.add_string b s;
    Buffer.add_string b "\r\n"
  | Nil -> Buffer.add_string b "$-1\r\n"
  | Array rs ->
    Buffer.add_char b '*';
    Buffer.add_string b (string_of_int (List.length rs));
    Buffer.add_string b "\r\n";
    List.iter (add_reply b) rs

let encode_reply r =
  let b = Buffer.create 64 in
  add_reply b r;
  Buffer.contents b

(* ---------------- decoding ---------------- *)

(* Find "\r\n" starting at [pos]; the line body is [pos, i). *)
let find_crlf buf ~pos ~len =
  let rec go i =
    if i + 1 >= len then None
    else if Bytes.get buf i = '\r' then
      if Bytes.get buf (i + 1) = '\n' then Some i
      else malformed "bare CR in frame header"
    else go (i + 1)
  in
  go pos

(* Decode a decimal integer line (sign allowed) ending in CRLF. *)
let parse_int_line buf ~pos ~len =
  match find_crlf buf ~pos ~len with
  | None -> None
  | Some stop ->
    if stop = pos then malformed "empty length header";
    let neg = Bytes.get buf pos = '-' in
    let start = if neg then pos + 1 else pos in
    if start = stop then malformed "sign with no digits";
    let n = ref 0 in
    for i = start to stop - 1 do
      let c = Bytes.get buf i in
      if c < '0' || c > '9' then malformed "non-digit %C in length header" c;
      n := (!n * 10) + (Char.code c - Char.code '0');
      if !n > max_bulk_len then malformed "length header exceeds %d" max_bulk_len
    done;
    Some ((if neg then - !n else !n), stop + 2)

(* [$len\r\ndata\r\n] at [pos]. [$-1] maps to [None] payload. *)
let parse_bulk buf ~pos ~len =
  if pos >= len then None
  else if Bytes.get buf pos <> '$' then
    malformed "expected bulk string, got %C" (Bytes.get buf pos)
  else
    match parse_int_line buf ~pos:(pos + 1) ~len with
    | None -> None
    | Some (-1, pos') -> Some (None, pos')
    | Some (n, _) when n < 0 -> malformed "negative bulk length %d" n
    | Some (n, pos') ->
      if pos' + n + 2 > len then None
      else if Bytes.get buf (pos' + n) <> '\r' || Bytes.get buf (pos' + n + 1) <> '\n' then
        malformed "bulk payload not CRLF-terminated"
      else Some (Some (Bytes.sub_string buf pos' n), pos' + n + 2)

let parse_command buf ~pos ~len =
  if pos >= len then None
  else if Bytes.get buf pos <> '*' then
    malformed "expected array, got %C" (Bytes.get buf pos)
  else
    match parse_int_line buf ~pos:(pos + 1) ~len with
    | None -> None
    | Some (n, _) when n <= 0 -> malformed "command arity %d" n
    | Some (n, pos') ->
      let rec go k pos acc =
        if k = 0 then Some (List.rev acc, pos)
        else
          match parse_bulk buf ~pos ~len with
          | None -> None
          | Some (None, _) -> malformed "nil bulk inside command"
          | Some (Some s, pos') -> go (k - 1) pos' (s :: acc)
      in
      go n pos' []

let rec parse_reply buf ~pos ~len =
  if pos >= len then None
  else
    match Bytes.get buf pos with
    | '+' | '-' -> (
      match find_crlf buf ~pos:(pos + 1) ~len with
      | None -> None
      | Some stop ->
        let s = Bytes.sub_string buf (pos + 1) (stop - pos - 1) in
        Some ((if Bytes.get buf pos = '+' then Simple s else Error s), stop + 2))
    | ':' -> (
      match parse_int_line buf ~pos:(pos + 1) ~len with
      | None -> None
      | Some (n, pos') -> Some (Int n, pos'))
    | '$' -> (
      match parse_bulk buf ~pos ~len with
      | None -> None
      | Some (None, pos') -> Some (Nil, pos')
      | Some (Some s, pos') -> Some (Bulk s, pos'))
    | '*' -> (
      match parse_int_line buf ~pos:(pos + 1) ~len with
      | None -> None
      | Some (n, _) when n < 0 -> malformed "negative array arity %d" n
      | Some (n, pos') ->
        let rec go k pos acc =
          if k = 0 then Some (Array (List.rev acc), pos)
          else
            match parse_reply buf ~pos ~len with
            | None -> None
            | Some (r, pos') -> go (k - 1) pos' (r :: acc)
        in
        go n pos' [])
    | c -> malformed "unknown reply type byte %C" c

let error_code = function
  | Error s -> (
    match String.index_opt s ' ' with
    | Some i -> Some (String.sub s 0 i)
    | None -> Some s)
  | _ -> None
