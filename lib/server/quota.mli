(** Per-tenant admission quotas: operations and ingested bytes per
    fixed accounting window.

    The model is deliberately simple (the paper's serving context needs
    isolation, not a billing system): each tenant carries an optional
    [ops per window] and [bytes per window] limit; usage accumulates in
    the current window and resets when the window rolls over. A request
    that would exceed either limit is rejected {e whole} — partial
    admission would break batch atomicity — with a typed verdict the
    server turns into a [-QUOTA_EXCEEDED] reply.

    Time is passed in by the caller (the server's event loop clock), so
    the module is deterministic under test. Not domain-safe: the single
    server loop is the only caller. *)

type t

type limits = {
  max_ops : int option;  (** operations per window; [None] = unlimited *)
  max_bytes : int option;  (** key+value bytes per window; [None] = unlimited *)
}

val unlimited : limits

type denial = {
  tenant : string;
  dimension : [ `Ops | `Bytes ];
  used : int;  (** consumed in the current window before this request *)
  requested : int;
  limit : int;
}

val create : ?window_s:float -> ?default:limits -> unit -> t
(** [window_s] defaults to 1.0 — per-second rate limits. [default]
    applies to tenants without an explicit {!set_limits} entry and
    defaults to {!unlimited}. *)

val set_limits : t -> tenant:string -> limits -> unit

val admit : t -> tenant:string -> now:float -> ops:int -> bytes:int -> (unit, denial) result
(** Charge [ops]/[bytes] to [tenant]'s current window, rolling the
    window first if [now] has passed it. On [Error] nothing is charged. *)

val describe : denial -> string
(** One-line human form, used as the error-reply message. *)
