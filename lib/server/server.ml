(* Single-threaded RESP reactor over Unix-domain sockets.

   Shape: [select] for readiness; per-connection input bytes accumulate
   until {!Resp.parse_command} yields complete frames; every complete
   command executes immediately (pipelining: a client that wrote ten
   requests back-to-back gets ten replies in one flush); replies queue
   as strings and drain when the socket is writable. No threads and no
   locks at this layer — the engine's own machinery (shard fan-out
   pool, background compaction lanes) provides the parallelism, which
   keeps the protocol state machine trivially race-free and the whole
   module exempt from lock-ranking concerns.

   Drain discipline on SHUTDOWN (ISSUE order): (1) acknowledge, stop
   accepting; (2) flush every connection's queued replies and close
   them; (3) quiesce every shard's background lane — all queued
   flush/compaction work completes or fails deterministically; (4) the
   loop reports drained and the listener exits. Acknowledged writes are
   thus WAL-durable *and* lane-quiet before the process goes away. *)

module Db = Lsm_core.Db
module Stats_core = Lsm_core.Stats
module Write_batch = Lsm_core.Write_batch

type conn = {
  fd : Unix.file_descr;
  mutable inbuf : Bytes.t;
  mutable in_len : int;
  out : string Queue.t;  (** encoded replies awaiting the socket *)
  mutable out_head : string;  (** partially written front chunk, "" = none *)
  mutable out_off : int;
  mutable tenant : string option;
  mutable close_after_flush : bool;
}

type stats = {
  accepted : int;
  active : int;
  commands : int;
  quota_denials : int;
  protocol_errors : int;
  bytes_in : int;
  bytes_out : int;
}

type t = {
  listen_fd : Unix.file_descr;
  path : string;
  shards : Shard_map.t;
  quota : Quota.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  mutable draining : bool;
  mutable stopped : bool;
  mutable accepted : int;
  mutable commands : int;
  mutable quota_denials : int;
  mutable protocol_errors : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
}

let create ?quota ?(backlog = 128) ~shards ~sock_path () =
  let quota = match quota with Some q -> q | None -> Quota.create () in
  (try Unix.unlink sock_path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_UNIX sock_path);
  Unix.listen fd backlog;
  {
    listen_fd = fd;
    path = sock_path;
    shards;
    quota;
    conns = Hashtbl.create 64;
    draining = false;
    stopped = false;
    accepted = 0;
    commands = 0;
    quota_denials = 0;
    protocol_errors = 0;
    bytes_in = 0;
    bytes_out = 0;
  }

let sock_path t = t.path
let draining t = t.draining

let stats t =
  {
    accepted = t.accepted;
    active = Hashtbl.length t.conns;
    commands = t.commands;
    quota_denials = t.quota_denials;
    protocol_errors = t.protocol_errors;
    bytes_in = t.bytes_in;
    bytes_out = t.bytes_out;
  }

let enqueue conn s = Queue.push s conn.out

let has_output conn = conn.out_head <> "" || not (Queue.is_empty conn.out)

let close_conn t conn =
  Hashtbl.remove t.conns conn.fd;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* ---------------- command execution ---------------- *)

let reply_ok = Resp.Simple "OK"

let err code msg = Resp.Error (Printf.sprintf "%s %s" code msg)

let with_tenant conn k =
  match conn.tenant with
  | Some tenant -> k tenant
  | None -> err "NOTENANT" "issue TENANT <name> first"

(* Charge the tenant before touching any shard: a denied request
   performs no engine work at all (all-or-nothing, like the batch
   itself). *)
let admitted t ~tenant ~ops ~bytes k =
  match Quota.admit t.quota ~tenant ~now:(Unix.gettimeofday ()) ~ops ~bytes with
  | Ok () -> k ()
  | Error d ->
    t.quota_denials <- t.quota_denials + 1;
    err "QUOTA_EXCEEDED" (Quota.describe d)

let put_one t ~tenant key value =
  let stored = Shard_map.encode_key ~tenant key in
  Db.put (Shard_map.db t.shards (Shard_map.shard_of_key t.shards stored)) ~key:stored value

let del_one t ~tenant key =
  let stored = Shard_map.encode_key ~tenant key in
  Db.delete (Shard_map.db t.shards (Shard_map.shard_of_key t.shards stored)) stored

(* MSET: one Write_batch per touched shard, fanned across the map's
   pool. Atomic per shard (one seqno range, one WAL record); cross-shard
   the groups land independently — the documented contract. *)
let mset t ~tenant pairs =
  let batches = Hashtbl.create 8 in
  List.iter
    (fun (key, value) ->
      let stored = Shard_map.encode_key ~tenant key in
      let s = Shard_map.shard_of_key t.shards stored in
      let wb =
        match Hashtbl.find_opt batches s with
        | Some wb -> wb
        | None ->
          let wb = Write_batch.create () in
          Hashtbl.add batches s wb;
          wb
      in
      Write_batch.put wb ~key:stored value)
    pairs;
  Shard_map.apply_grouped t.shards (Hashtbl.fold (fun s wb acc -> (s, wb) :: acc) batches [])

let mget t ~tenant keys =
  Shard_map.multi_get t.shards (List.map (fun k -> Shard_map.encode_key ~tenant k) keys)

let stats_text t =
  let b = Buffer.create 256 in
  Printf.bprintf b "shards %d\ncommands %d\nconnections %d\nquota_denials %d\n"
    (Shard_map.count t.shards) t.commands (Hashtbl.length t.conns) t.quota_denials;
  Shard_map.iter t.shards (fun i db ->
      let s = Db.stats db in
      Printf.bprintf b
        "shard %d: puts %d gets %d debt_bytes %d stalls %d slowdowns %d stops %d \
         ecc_repairs %d ecc_unrecoverable %d scrubs_scheduled %d\n"
        i s.Stats_core.user_puts s.Stats_core.user_gets (Db.backpressure_debt db)
        s.Stats_core.write_stalls s.Stats_core.write_slowdowns s.Stats_core.write_stops
        s.Stats_core.ecc_repairs s.Stats_core.ecc_unrecoverable
        s.Stats_core.scrub_runs_scheduled);
  Buffer.contents b

let parse_limit code v =
  if v = "-" then Ok None
  else
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok (Some n)
    | _ -> Error (err "BADARG" (Printf.sprintf "bad %s limit %S" code v))

(* Byte cost of a data command: keys always, values for writes — the
   quantity a tenant's ingestion actually costs the engine. *)
let rec sum_pair_bytes = function
  | k :: v :: rest -> String.length k + String.length v + sum_pair_bytes rest
  | [ k ] -> String.length k
  | [] -> 0

let execute t conn args =
  t.commands <- t.commands + 1;
  match args with
  | [] -> err "ERR" "empty command"
  | cmd :: rest -> (
    match (String.uppercase_ascii cmd, rest) with
    | "PING", [] -> Resp.Simple "PONG"
    | "TENANT", [ name ] ->
      if Shard_map.valid_tenant name then begin
        conn.tenant <- Some name;
        reply_ok
      end
      else err "BADARG" "tenant must be non-empty and NUL-free"
    | "PUT", [ key; value ] ->
      with_tenant conn (fun tenant ->
          admitted t ~tenant ~ops:1 ~bytes:(String.length key + String.length value)
            (fun () ->
              put_one t ~tenant key value;
              reply_ok))
    | "DEL", [ key ] ->
      with_tenant conn (fun tenant ->
          admitted t ~tenant ~ops:1 ~bytes:(String.length key) (fun () ->
              del_one t ~tenant key;
              reply_ok))
    | "GET", [ key ] ->
      with_tenant conn (fun tenant ->
          admitted t ~tenant ~ops:1 ~bytes:(String.length key) (fun () ->
              match mget t ~tenant [ key ] with
              | [ Some v ] -> Resp.Bulk v
              | _ -> Resp.Nil))
    | "MGET", (_ :: _ as keys) ->
      with_tenant conn (fun tenant ->
          admitted t ~tenant ~ops:(List.length keys)
            ~bytes:(List.fold_left (fun a k -> a + String.length k) 0 keys) (fun () ->
              Resp.Array
                (List.map
                   (function Some v -> Resp.Bulk v | None -> Resp.Nil)
                   (mget t ~tenant keys))))
    | "MSET", (_ :: _ as kvs) when List.length kvs mod 2 = 0 ->
      with_tenant conn (fun tenant ->
          let rec pairs = function
            | k :: v :: rest -> (k, v) :: pairs rest
            | _ -> []
          in
          admitted t ~tenant ~ops:(List.length kvs / 2) ~bytes:(sum_pair_bytes kvs)
            (fun () ->
              mset t ~tenant (pairs kvs);
              reply_ok))
    | "MSET", _ -> err "BADARG" "MSET needs key value pairs"
    | "QUOTA", [ tenant; ops; bytes ] -> (
      match (parse_limit "ops" ops, parse_limit "bytes" bytes) with
      | Ok max_ops, Ok max_bytes ->
        Quota.set_limits t.quota ~tenant { Quota.max_ops; max_bytes };
        reply_ok
      | Error e, _ | _, Error e -> e)
    | "STATS", [] -> Resp.Bulk (stats_text t)
    | "FLUSH", [] ->
      Shard_map.flush_all t.shards;
      reply_ok
    | "SHUTDOWN", [] ->
      t.draining <- true;
      conn.close_after_flush <- true;
      reply_ok
    | op, _ -> err "ERR" (Printf.sprintf "unknown command or arity: %s/%d" op (List.length rest)))

(* ---------------- reactor ---------------- *)

let read_chunk = 16 * 1024

let ensure_capacity conn need =
  let cap = Bytes.length conn.inbuf in
  if conn.in_len + need > cap then begin
    let nb = Bytes.create (max (cap * 2) (conn.in_len + need)) in
    Bytes.blit conn.inbuf 0 nb 0 conn.in_len;
    conn.inbuf <- nb
  end

(* Parse-and-execute every complete frame in the connection's input. *)
let drain_input t conn =
  let pos = ref 0 in
  let continue = ref true in
  (try
     while !continue do
       match Resp.parse_command conn.inbuf ~pos:!pos ~len:conn.in_len with
       | Some (args, pos') ->
         pos := pos';
         let reply =
           try execute t conn args
           with e -> err "ERR" (Printexc.to_string e)
         in
         enqueue conn (Resp.encode_reply reply)
       | None -> continue := false
     done
   with Resp.Malformed m ->
     t.protocol_errors <- t.protocol_errors + 1;
     enqueue conn (Resp.encode_reply (err "ERR" ("protocol: " ^ m)));
     conn.close_after_flush <- true);
  if !pos > 0 then begin
    Bytes.blit conn.inbuf !pos conn.inbuf 0 (conn.in_len - !pos);
    conn.in_len <- conn.in_len - !pos
  end

let handle_readable t conn =
  ensure_capacity conn read_chunk;
  match Unix.read conn.fd conn.inbuf conn.in_len read_chunk with
  | 0 -> close_conn t conn
  | n ->
    conn.in_len <- conn.in_len + n;
    t.bytes_in <- t.bytes_in + n;
    drain_input t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t conn

let handle_writable t conn =
  let progress = ref true in
  (try
     while !progress && has_output conn do
       if conn.out_head = "" then begin
         conn.out_head <- Queue.pop conn.out;
         conn.out_off <- 0
       end;
       let remaining = String.length conn.out_head - conn.out_off in
       let n =
         Unix.write_substring conn.fd conn.out_head conn.out_off remaining
       in
       t.bytes_out <- t.bytes_out + n;
       conn.out_off <- conn.out_off + n;
       if conn.out_off = String.length conn.out_head then begin
         conn.out_head <- "";
         conn.out_off <- 0
       end;
       if n < remaining then progress := false
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error _ -> close_conn t conn);
  if Hashtbl.mem t.conns conn.fd && conn.close_after_flush && not (has_output conn) then
    close_conn t conn

let accept_ready t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      t.accepted <- t.accepted + 1;
      Hashtbl.replace t.conns fd
        {
          fd;
          inbuf = Bytes.create read_chunk;
          in_len = 0;
          out = Queue.create ();
          out_head = "";
          out_off = 0;
          tenant = None;
          close_after_flush = false;
        }
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

let finish_drain t =
  (* Step 2 of the drain: anything still queued is force-flushed best
     effort by the writable handler above; what remains now just closes. *)
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  Hashtbl.reset t.conns;
  (* Step 3: every shard's lane runs dry before the listener goes away —
     acknowledged writes have no background work pending behind them. *)
  Shard_map.quiesce_all t.shards;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.path with Unix.Unix_error _ -> ());
  t.stopped <- true

let step t ~timeout =
  if t.stopped then false
  else begin
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    let rds =
      (if t.draining then [] else [ t.listen_fd ]) @ List.map (fun c -> c.fd) conns
    in
    let wrs = List.filter_map (fun c -> if has_output c then Some c.fd else None) conns in
    let r, w, _ =
      match Unix.select rds wrs [] timeout with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if (not t.draining) && List.memq t.listen_fd r then accept_ready t;
    List.iter
      (fun fd ->
        if fd != t.listen_fd then
          match Hashtbl.find_opt t.conns fd with
          | Some c -> handle_readable t c
          | None -> ())
      r;
    List.iter
      (fun fd ->
        match Hashtbl.find_opt t.conns fd with
        | Some c -> handle_writable t c
        | None -> ())
      w;
    if t.draining then begin
      (* Give laggards one pass to take their final bytes; connections
         with nothing pending close immediately. *)
      Hashtbl.iter (fun _ c -> if not (has_output c) then c.close_after_flush <- true) t.conns;
      let still_flushing =
        Hashtbl.fold (fun _ c acc -> acc || has_output c) t.conns false
      in
      if not still_flushing then finish_drain t
      else
        Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []
        |> List.iter (fun c -> if not (has_output c) then close_conn t c)
    end;
    not t.stopped
  end

let run t =
  let continue = ref true in
  while !continue do
    continue := step t ~timeout:0.5
  done

let request_shutdown t = t.draining <- true

let close t =
  if not t.stopped then begin
    Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
    Hashtbl.reset t.conns;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink t.path with Unix.Unix_error _ -> ());
    t.stopped <- true
  end
