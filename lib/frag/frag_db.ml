module Comparator = Lsm_util.Comparator
module Hashing = Lsm_util.Hashing
module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats
module Block_cache = Lsm_storage.Block_cache
module Memtable = Lsm_memtable.Memtable
module Sstable = Lsm_sstable.Sstable
module Table_meta = Lsm_sstable.Table_meta
module Table_cache = Lsm_sstable.Table_cache

type config = {
  comparator : Comparator.t;
  write_buffer_size : int;
  level0_limit : int;
  size_ratio : int;
  level1_capacity : int;
  max_fragments_per_guard : int;
  target_file_size : int;
  block_size : int;
  filter : Lsm_filter.Point_filter.policy;
  guard_stride_base : int;
}

let default_config =
  {
    comparator = Comparator.bytewise;
    write_buffer_size = 1 lsl 20;
    level0_limit = 4;
    size_ratio = 4;
    level1_capacity = 4 lsl 20;
    max_fragments_per_guard = 4;
    target_file_size = 1 lsl 20;
    block_size = 4096;
    filter = Lsm_filter.Point_filter.default;
    guard_stride_base = 4096;
  }

let max_levels = 8

type guard = { gkey : string; mutable frags : Table_meta.t list (* newest first *) }

type t = {
  cfg : config;
  dev : Device.t;
  cache : Sstable.cached_block Block_cache.t;
  tables : Table_cache.t;
  mutable mem : Memtable.t;
  mutable l0 : Table_meta.t list;  (** newest first *)
  mutable guards : guard list array;
      (** index 1..max_levels-1; sorted by gkey; slot 0 unused *)
  mutable next_file : int;
  mutable seqno : int;
  mutable clock : int;
  mutable ubytes : int;
  mutable n_compactions : int;
  mutable comp_written : int;
  mutable closed : bool;
}

let create ?(config = default_config) ~dev () =
  let cache = Block_cache.create ~capacity:(8 lsl 20) () in
  {
    cfg = config;
    dev;
    cache;
    tables = Table_cache.create ~cmp:config.comparator ~dev ~cache ();
    mem = Memtable.create ~cmp:config.comparator ();
    l0 = [];
    guards = Array.init max_levels (fun _ -> [ { gkey = ""; frags = [] } ]);
    next_file = 1;
    seqno = 0;
    clock = 0;
    ubytes = 0;
    n_compactions = 0;
    comp_written = 0;
    closed = false;
  }

(* A key is a guard of level [l] when its hash clears the level's stride;
   deeper levels use smaller strides, so guards get denser with depth. *)
(* Floor of 64 bounds guard counts (and the O(guards) bookkeeping per
   insert) even for levels far below the data. *)
let stride t l =
  let rec div s n = if n <= 0 || s <= 64 then max 64 s else div (s / t.cfg.size_ratio) (n - 1) in
  div t.cfg.guard_stride_base (l - 1)

let is_guard_key t l key =
  let h = Int64.to_int (Hashing.string64 ~seed:0x9aadL key) land max_int in
  h mod stride t l = 0

let register_guards t key =
  for l = 1 to max_levels - 1 do
    if is_guard_key t l key then begin
      let gs = t.guards.(l) in
      if not (List.exists (fun g -> String.equal g.gkey key) gs) then begin
        let fresh = { gkey = key; frags = [] } in
        let rec insert = function
          | [] -> [ fresh ]
          | g :: rest when String.compare g.gkey key > 0 -> fresh :: g :: rest
          | g :: rest -> g :: insert rest
        in
        t.guards.(l) <- insert gs
      end
    end
  done

(* ------------------------------------------------------------------ *)

let file_iter t ~cls (f : Table_meta.t) ~use_cache =
  Sstable.iterator (Table_cache.get t.tables f.file_name) ~cls ~use_cache ()

(* Write the filtered stream, cutting files at guard [boundaries] (sorted,
   not including the implicit ""), and at the size target; returns
   (guard_key, meta) pairs. *)
let write_partitioned t ~cls ~boundaries it =
  let cmp = t.cfg.comparator in
  it.Iter.seek_to_first ();
  let out = ref [] in
  let bounds = Array.of_list boundaries in
  let guard_of key =
    (* largest boundary <= key; "" when below all *)
    let lo = ref (-1) and hi = ref (Array.length bounds - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if cmp.Comparator.compare bounds.(mid) key <= 0 then lo := mid else hi := mid - 1
    done;
    if !lo < 0 then "" else bounds.(!lo)
  in
  while it.Iter.valid () do
    let first_key = (it.Iter.entry ()).Entry.key in
    let gkey = guard_of first_key in
    let next_bound =
      (* first boundary strictly greater than gkey *)
      Array.fold_left
        (fun acc b ->
          if cmp.Comparator.compare b gkey > 0 then
            match acc with
            | Some a when cmp.Comparator.compare a b <= 0 -> acc
            | _ -> Some b
          else acc)
        None bounds
    in
    let emitted = ref 0 in
    let stopped = ref false in
    let part =
      {
        Iter.valid = (fun () -> (not !stopped) && it.Iter.valid ());
        entry = (fun () -> it.Iter.entry ());
        next =
          (fun () ->
            if it.Iter.valid () then begin
              emitted := !emitted + Entry.encoded_size (it.Iter.entry ());
              it.Iter.next ();
              if it.Iter.valid () then begin
                let k = (it.Iter.entry ()).Entry.key in
                let crossed =
                  match next_bound with
                  | Some b -> cmp.Comparator.compare k b >= 0
                  | None -> false
                in
                if crossed || !emitted >= t.cfg.target_file_size then stopped := true
              end
            end);
        seek = (fun _ -> invalid_arg "partitioned writer: seek");
        seek_to_first = (fun () -> ());
      }
    in
    let id = t.next_file in
    t.next_file <- t.next_file + 1;
    let name = Printf.sprintf "frag-%06d.sst" id in
    let config =
      {
        Sstable.default_build_config with
        block_size = t.cfg.block_size;
        filter = t.cfg.filter;
      }
    in
    let props = Sstable.build ~config ~cmp ~dev:t.dev ~cls ~name ~created_at:t.clock part in
    let size = Device.size t.dev name in
    out := (gkey, Table_meta.of_props ~file_id:id ~file_name:name ~size props) :: !out
  done;
  List.rev !out

let retire t files =
  List.iter
    (fun (f : Table_meta.t) ->
      Device.delete t.dev f.file_name;
      Table_cache.evict t.tables f.file_name)
    files

(* No snapshots in this engine: compaction keeps just the newest version. *)
let filtered t ~bottom inputs_iter =
  Lsm_core.Merge_filter.filtered ~cmp:t.cfg.comparator ~snapshots:[] ~bottom
    ~range_tombstones:[] inputs_iter

let guard_bounds t l = List.filter_map (fun g -> if g.gkey = "" then None else Some g.gkey) t.guards.(l)

let find_guard t l key =
  let cmp = t.cfg.comparator in
  (* guards sorted ascending, first is ""; find last with gkey <= key *)
  let rec loop best = function
    | [] -> best
    | g :: rest -> if cmp.Comparator.compare g.gkey key <= 0 then loop (Some g) rest else best
  in
  loop None t.guards.(l)

let add_fragment t l (gkey, meta) =
  match List.find_opt (fun g -> String.equal g.gkey gkey) t.guards.(l) with
  | Some g -> g.frags <- meta :: g.frags
  | None ->
    (* The boundary list came from this level, so the guard must exist. *)
    assert false

let level_bytes t l =
  if l = 0 then List.fold_left (fun a (f : Table_meta.t) -> a + f.size) 0 t.l0
  else
    List.fold_left
      (fun a g -> List.fold_left (fun a (f : Table_meta.t) -> a + f.size) a g.frags)
      0 t.guards.(l)

let level_capacity t l =
  let rec grow cap n = if n <= 1 then cap else grow (cap * t.cfg.size_ratio) (n - 1) in
  grow t.cfg.level1_capacity l

let deepest_nonempty t =
  let rec loop l = if l <= 0 then 0 else if level_bytes t l > 0 then l else loop (l - 1) in
  loop (max_levels - 1)

let account_compaction t metas =
  t.n_compactions <- t.n_compactions + 1;
  t.comp_written <-
    t.comp_written + List.fold_left (fun a (_, (m : Table_meta.t)) -> a + m.size) 0 metas

(* Merge all of L0 and partition into L1 guards. *)
let compact_l0 t =
  match t.l0 with
  | [] -> ()
  | inputs ->
    let iters =
      List.map (fun f -> file_iter t ~cls:Io_stats.C_compaction_read f ~use_cache:false) inputs
    in
    let bottom = deepest_nonempty t <= 1 && level_bytes t 1 = 0 in
    let stream = filtered t ~bottom (Iter.merge t.cfg.comparator iters) in
    let metas =
      write_partitioned t ~cls:Io_stats.C_compaction_write ~boundaries:(guard_bounds t 1) stream
    in
    List.iter (add_fragment t 1) metas;
    t.l0 <- [];
    retire t inputs;
    account_compaction t metas

(* Merge one guard of level [l]; partition into level [l+1] (or rewrite in
   place when [l] is the deepest level). *)
let compact_guard t l g =
  match g.frags with
  | [] -> ()
  | inputs ->
    let iters =
      List.map (fun f -> file_iter t ~cls:Io_stats.C_compaction_read f ~use_cache:false) inputs
    in
    let deepest = deepest_nonempty t in
    let in_place = l >= max_levels - 1 || (l >= deepest && level_bytes t l <= level_capacity t l) in
    let target = if in_place then l else l + 1 in
    (* In place: everything below this guard's range is in the inputs. *)
    let bottom =
      target >= deepest
      && (in_place
         ||
         match find_guard t target g.gkey with
         | Some tg -> tg.frags = []
         | None -> true)
    in
    let stream = filtered t ~bottom (Iter.merge t.cfg.comparator iters) in
    let metas =
      write_partitioned t ~cls:Io_stats.C_compaction_write ~boundaries:(guard_bounds t target)
        stream
    in
    g.frags <- [];
    List.iter (add_fragment t target) metas;
    retire t inputs;
    account_compaction t metas

let rec maybe_compact t =
  if List.length t.l0 >= t.cfg.level0_limit then begin
    compact_l0 t;
    maybe_compact t
  end
  else begin
    let worked = ref false in
    for l = 1 to max_levels - 1 do
      if not !worked then begin
        (* Fragment-count trigger: any overfull guard. *)
        (match
           List.find_opt
             (fun g -> List.length g.frags > t.cfg.max_fragments_per_guard)
             t.guards.(l)
         with
        | Some g ->
          compact_guard t l g;
          worked := true
        | None -> ());
        (* Capacity trigger: push the heaviest guard down. *)
        if (not !worked) && l < max_levels - 1 && level_bytes t l > level_capacity t l then begin
          let heaviest =
            List.fold_left
              (fun acc g ->
                let sz = List.fold_left (fun a (f : Table_meta.t) -> a + f.size) 0 g.frags in
                match acc with
                | Some (_, best) when best >= sz -> acc
                | _ -> if sz > 0 then Some (g, sz) else acc)
              None t.guards.(l)
          in
          match heaviest with
          | Some (g, _) ->
            compact_guard t l g;
            worked := true
          | None -> ()
        end
      end
    done;
    if !worked then maybe_compact t
  end

(* ------------------------------------------------------------------ *)

let flush_memtable t =
  if Memtable.count t.mem > 0 then begin
    let stream = filtered t ~bottom:false (Memtable.iterator t.mem) in
    (* L0 fragments are unpartitioned (whole key range). *)
    let metas = write_partitioned t ~cls:Io_stats.C_flush ~boundaries:[] stream in
    List.iter (fun (_, m) -> t.l0 <- m :: t.l0) metas;
    t.mem <- Memtable.create ~cmp:t.cfg.comparator ()
  end

let check_open t = if t.closed then invalid_arg "Frag_db: closed"

let write t e =
  check_open t;
  t.clock <- t.clock + 1;
  Memtable.add t.mem e;
  if Memtable.footprint t.mem >= t.cfg.write_buffer_size then begin
    flush_memtable t;
    maybe_compact t
  end

let put t ~key value =
  t.seqno <- t.seqno + 1;
  t.ubytes <- t.ubytes + String.length key + String.length value;
  register_guards t key;
  write t (Entry.put ~key ~seqno:t.seqno value)

let delete t key =
  t.seqno <- t.seqno + 1;
  t.ubytes <- t.ubytes + String.length key;
  write t (Entry.delete ~key ~seqno:t.seqno)

let probe_frags t ~cls key frags =
  let rec loop = function
    | [] -> None
    | (f : Table_meta.t) :: rest ->
      if
        t.cfg.comparator.Comparator.compare f.min_key key <= 0
        && t.cfg.comparator.Comparator.compare key f.max_key <= 0
      then begin
        let reader = Table_cache.get t.tables f.file_name in
        if Sstable.may_contain_key reader key then begin
          match Sstable.get reader ~cls key with
          | Some e -> Some e
          | None -> loop rest
        end
        else loop rest
      end
      else loop rest
  in
  loop frags

let get t key =
  check_open t;
  t.clock <- t.clock + 1;
  let interpret = function
    | Some (e : Entry.t) -> (
      match e.kind with
      | Entry.Put | Entry.Merge -> Some (Some e.value)
      | Entry.Delete | Entry.Single_delete -> Some None
      | Entry.Range_delete -> None)
    | None -> None
  in
  let result =
    match interpret (Memtable.find t.mem key) with
    | Some r -> Some r
    | None -> (
      match interpret (probe_frags t ~cls:Io_stats.C_user_read key t.l0) with
      | Some r -> Some r
      | None ->
        let rec levels l =
          if l >= max_levels then None
          else
            let guard_hit =
              match find_guard t l key with
              | Some g -> interpret (probe_frags t ~cls:Io_stats.C_user_read key g.frags)
              | None -> None
            in
            match guard_hit with Some r -> Some r | None -> levels (l + 1)
        in
        levels 1)
  in
  match result with Some r -> r | None -> None

let scan t ?(limit = max_int) ~lo ~hi () =
  check_open t;
  t.clock <- t.clock + 1;
  let cmp = t.cfg.comparator in
  let overlaps (f : Table_meta.t) =
    cmp.Comparator.compare lo f.max_key <= 0
    && match hi with None -> true | Some h -> cmp.Comparator.compare f.min_key h < 0
  in
  let sources =
    Memtable.iterator t.mem
    :: (List.filter overlaps t.l0
       |> List.map (fun f -> file_iter t ~cls:Io_stats.C_user_read f ~use_cache:true))
    @ List.concat_map
        (fun l ->
          List.concat_map
            (fun g ->
              List.filter overlaps g.frags
              |> List.map (fun f -> file_iter t ~cls:Io_stats.C_user_read f ~use_cache:true))
            t.guards.(l))
        (List.init (max_levels - 1) (fun i -> i + 1))
  in
  let it = Iter.merge cmp sources in
  it.Iter.seek lo;
  let out = ref [] and count = ref 0 in
  let in_range k = match hi with None -> true | Some h -> cmp.Comparator.compare k h < 0 in
  while it.Iter.valid () && !count < limit && in_range (it.Iter.entry ()).Entry.key do
    let key = (it.Iter.entry ()).Entry.key in
    let first = it.Iter.entry () in
    (match first.Entry.kind with
    | Entry.Put | Entry.Merge ->
      out := (key, first.Entry.value) :: !out;
      incr count
    | Entry.Delete | Entry.Single_delete | Entry.Range_delete -> ());
    while it.Iter.valid () && String.equal (it.Iter.entry ()).Entry.key key do
      it.Iter.next ()
    done
  done;
  List.rev !out

let flush t =
  check_open t;
  flush_memtable t;
  maybe_compact t

let close t = t.closed <- true

let guard_count t l = if l >= 1 && l < max_levels then List.length t.guards.(l) else 0

let fragment_count t =
  List.length t.l0
  + Array.fold_left
      (fun acc gs -> acc + List.fold_left (fun a g -> a + List.length g.frags) 0 gs)
      0 t.guards

let compactions t = t.n_compactions
let compaction_bytes_written t = t.comp_written
let user_bytes t = t.ubytes

let write_amplification t =
  let st = Device.stats t.dev in
  let written =
    Io_stats.bytes_written ~cls:Io_stats.C_flush st
    + Io_stats.bytes_written ~cls:Io_stats.C_compaction_write st
  in
  if t.ubytes = 0 then 0.0 else float_of_int written /. float_of_int t.ubytes

let to_kv_store t =
  {
    Lsm_workload.Kv_store.store_name = "pebbles";
    put = (fun ~key value -> put t ~key value);
    get = (fun key -> get t key);
    scan = (fun ~lo ~hi ~limit -> scan t ~limit ~lo ~hi ());
    delete = (fun key -> delete t key);
    rmw =
      (fun ~key operand ->
        let base = Option.value ~default:"" (get t key) in
        put t ~key (base ^ operand));
    flush = (fun () -> flush t);
    quiesce = (fun () -> ());
    io_stats = (fun () -> Device.stats t.dev);
    user_bytes = (fun () -> t.ubytes);
    space_bytes = (fun () -> Device.total_bytes t.dev);
  }
