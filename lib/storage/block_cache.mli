(** A byte-budgeted, sharded LRU cache of data blocks, keyed by
    (file, offset).

    This is the block cache of §2.1.3: it can hold data, index, and filter
    blocks alike. It exposes the statistics the cache experiments need
    (hit/miss/eviction counters) and the two hooks the compaction–cache
    interaction study (E13) uses: {!evict_file} (what happens implicitly
    when compaction deletes an input file) and pre-populating via
    {!insert} (Leaper-style refill after compaction).

    The cache is striped into [shards] independent LRUs, each guarded by
    its own mutex, with keys routed by hash — so it is safe (and cheap)
    to hit from several domains at once. One shard (the default) behaves
    exactly like the former global LRU. Statistics aggregate across
    shards; capacity is split evenly between them. *)

type t

val create : ?shards:int -> capacity:int -> unit -> t
(** [capacity] in bytes, split across [shards] (default 1) stripes. A
    zero capacity disables caching (every lookup misses, inserts are
    dropped). *)

val shard_count : t -> int

val capacity : t -> int

val set_capacity : t -> int -> unit
(** Adjust the byte budget at runtime (evicting LRU entries if shrinking) —
    the hook adaptive memory management (§2.3.1) turns. *)

val used_bytes : t -> int
val block_count : t -> int

val find : t -> file:string -> off:int -> string option
(** Moves the block to most-recently-used on hit. *)

val insert : t -> file:string -> off:int -> string -> unit
(** Inserts (replacing any previous block at that key) and evicts LRU
    entries until within capacity. Blocks larger than the whole capacity
    are not cached. *)

val get_or_load : t -> file:string -> off:int -> (unit -> string) -> string
(** [get_or_load t ~file ~off load] returns the cached block or calls
    [load], caches the result, and returns it. *)

val evict_file : t -> string -> int
(** Drop every cached block of a file; returns how many were dropped. *)

val clear : t -> unit

(** {1 Statistics} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val hit_rate : t -> float
(** hits / (hits + misses); 0 when no lookups happened. *)

val reset_stats : t -> unit
