(** A byte-budgeted, sharded LRU cache of decoded blocks, keyed by
    (file, offset).

    This is the block cache of §2.1.3: it can hold data, index, and filter
    blocks alike. It exposes the statistics the cache experiments need
    (hit/miss/eviction counters) and the two hooks the compaction–cache
    interaction study (E13) uses: {!evict_file} (what happens implicitly
    when compaction deletes an input file) and pre-populating via
    {!insert} (Leaper-style refill after compaction).

    The cache is polymorphic in its entry type so the engine can store
    blocks {e decoded}: verified, decompressed, restart-array-parsed.
    A hit then pays neither CRC nor decompression — decode-once caching.
    Because entries are arbitrary values, every {!insert} declares an
    explicit byte charge (the decoded footprint), which is what
    {!used_bytes} and the eviction budget account.

    The cache is striped into [shards] independent LRUs, each guarded by
    its own mutex, with keys routed by hash — so it is safe (and cheap)
    to hit from several domains at once. One shard (the default) behaves
    exactly like the former global LRU. Statistics aggregate across
    shards; capacity is split evenly between them. *)

type 'a t

val create : ?shards:int -> capacity:int -> unit -> 'a t
(** [capacity] in bytes, split across [shards] (default 1) stripes. A
    zero capacity disables caching (every lookup misses, inserts are
    dropped). *)

val shard_count : 'a t -> int

val capacity : 'a t -> int

val set_capacity : 'a t -> int -> unit
(** Adjust the byte budget at runtime (evicting LRU entries if shrinking) —
    the hook adaptive memory management (§2.3.1) turns. *)

val used_bytes : 'a t -> int
val block_count : 'a t -> int

val find : 'a t -> file:string -> off:int -> 'a option
(** Moves the block to most-recently-used on hit. *)

val insert : 'a t -> file:string -> off:int -> bytes:int -> 'a -> unit
(** Inserts (replacing any previous entry at that key) charging [bytes]
    against the budget, then evicts LRU entries until within capacity.
    Entries charged more than the whole capacity are not cached.
    @raise Invalid_argument if [bytes] is negative. *)

val remove : 'a t -> file:string -> off:int -> unit
(** Drop exactly one (file, offset) entry if present. Used to invalidate
    a single block found corrupt in cache without disturbing the file's
    other hot blocks. Not counted as an eviction. *)

val get_or_load : 'a t -> file:string -> off:int -> (unit -> 'a * int) -> 'a
(** [get_or_load t ~file ~off load] returns the cached entry or calls
    [load] — which produces the entry and its byte charge — caches the
    result, and returns it. *)

val evict_file : 'a t -> string -> int
(** Drop every cached block of a file; returns how many were dropped. *)

val clear : 'a t -> unit

(** {1 Statistics} *)

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
val hit_rate : 'a t -> float
(** hits / (hits + misses); 0 when no lookups happened. *)

val reset_stats : 'a t -> unit
