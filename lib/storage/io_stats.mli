(** Per-class I/O accounting.

    The paper states every tradeoff in terms of I/O counts — write
    amplification, read amplification, superfluous lookup I/Os — so the
    device attributes every page touched to an operation class and the
    experiments read the totals from here. *)

type op_class =
  | C_user_write  (** WAL and memtable-path writes issued for user puts *)
  | C_user_read  (** pages read serving gets and scans *)
  | C_flush  (** pages written by memtable flushes *)
  | C_compaction_read
  | C_compaction_write
  | C_gc  (** value-log garbage collection (kv-separation) *)
  | C_misc

val all_classes : op_class list
val class_name : op_class -> string

type t

val create : unit -> t
val clear : t -> unit

val record_read : t -> op_class -> pages:int -> bytes:int -> unit
val record_write : t -> op_class -> pages:int -> bytes:int -> unit
val record_sync : t -> op_class -> unit

val pages_read : ?cls:op_class -> t -> int
val pages_written : ?cls:op_class -> t -> int
val bytes_read : ?cls:op_class -> t -> int
val bytes_written : ?cls:op_class -> t -> int

val syncs : ?cls:op_class -> t -> int
(** Sync calls charged to each class — the durability cost that byte
    counts alone hide (a per-write fsync discipline vs. batched syncs). *)

val write_amplification : t -> user_bytes:int -> float
(** Total device bytes written divided by logical user bytes ingested. *)

val snapshot : t -> (op_class * (int * int * int * int)) list
(** Per class: (pages_read, bytes_read, pages_written, bytes_written). *)

val diff : t -> t -> t
(** [diff now before] — counters accumulated between two snapshots. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
