(** The block-device / file-system abstraction underneath the engine.

    Files are append-only while being written and immutable once closed —
    exactly the discipline LSM components need (§2.1.1.C). The device
    charges every read and write to an {!Io_stats.op_class} at page
    granularity, which is what the experiments measure.

    Two backends:
    - {!in_memory} — the default substrate for tests and benchmarks. It can
      also simulate power loss, either immediately ({!crash}) or at a
      scheduled future instant ({!plan_crash}): all bytes not covered by an
      explicit {!sync} are lost — modulo an optional torn tail — which is
      how WAL and manifest recovery are exercised.
    - {!on_disk} — real files under a directory, for running the engine
      against an actual file system.

    {b The sync/crash contract.} {!sync} makes every byte appended so far
    immune to any later crash; bytes appended after the last sync may, at a
    crash, be (a) discarded, (b) partially retained (a torn page), or
    (c) retained scrambled (a corrupt torn page) — but synced bytes are
    never altered. {!rename} is atomic and immediately durable. Recovery
    code must therefore treat everything past a file's last sync point as
    arbitrary garbage, which is what the CRC framing of the WAL and
    manifest is for. *)

type t
type writer

exception Crashed
(** Raised by the device operation during which an armed {!plan_crash}
    fires, and by every subsequent mutating operation until {!revive}. *)

(** What survives of the unsynced suffix of each file when a crash fires. *)
type tear =
  | Tear_none  (** lose everything past the synced prefix *)
  | Tear_keep of int
      (** additionally retain up to [n] unsynced bytes, intact (a torn
          write whose prefix made it to the platter) *)
  | Tear_corrupt of int
      (** additionally retain up to [n] unsynced bytes, bit-flipped (a
          torn write that scribbled the final page) — synced bytes are
          never touched *)

(** When an armed crash fires (counted from the moment of arming). *)
type crash_point =
  | After_syncs of int  (** immediately after the [n]-th sync completes *)
  | After_ops of int
      (** immediately after the [n]-th mutating device op (open / append
          / sync / delete / rename) completes *)
  | After_bytes of int
      (** mid-append, once [n] more bytes have been appended: the
          triggering append stores only the prefix that "made it" *)

val in_memory : ?page_size:int -> unit -> t
(** [page_size] defaults to 4096 bytes. *)

val on_disk : ?page_size:int -> dir:string -> unit -> t
(** Stores files under [dir] (created if missing). *)

val page_size : t -> int
val stats : t -> Io_stats.t
val sync_count : t -> int

val mutation_count : t -> int
(** Total mutating device ops so far — the coordinate system of
    [After_ops] crash points. *)

(** {1 Writing} *)

val open_writer : t -> cls:Io_stats.op_class -> string -> writer
(** Creates (or truncates) the named file for appending.
    @raise Invalid_argument if a writer is already open on that name. *)

val append : writer -> string -> unit
val append_buffer : writer -> Buffer.t -> unit
val written : writer -> int
(** Bytes appended so far (= current file size). *)

val sync : writer -> unit
(** Make all appended bytes crash-durable. *)

val close : writer -> unit
(** Seal the file (implies {!sync}); it becomes immutable and readable. *)

(** {1 Reading} *)

val read : t -> cls:Io_stats.op_class -> string -> off:int -> len:int -> string
(** @raise Not_found if the file does not exist.
    @raise Invalid_argument if the range is out of bounds. *)

val size : t -> string -> int
val exists : t -> string -> bool

val patch : t -> cls:Io_stats.op_class -> string -> off:int -> string -> unit
(** [patch t ~cls name ~off data] overwrites [data] in place at [off] in a
    file that has no open writer — the primitive ECC repair stands on. It
    never extends a file, and repaired bytes inherit the durability of the
    bytes they replace (a patch of the synced prefix stays synced).
    @raise Not_found if the file does not exist.
    @raise Invalid_argument if the range is out of bounds or the file has
    an open writer. *)

val delete : t -> string -> unit
(** Removing a missing file is a no-op. *)

val rename : t -> string -> string -> unit
(** [rename t src dst] atomically replaces [dst] (which may or may not
    exist) with [src]. The switch is crash-atomic and immediately durable;
    a writer open on [src] keeps appending to the renamed file.
    @raise Not_found if [src] does not exist. *)

val list_files : t -> string list
(** Sorted file names. *)

val total_bytes : t -> int
(** Sum of all file sizes: the space-amplification numerator. *)

(** {1 Fault injection}

    In-memory backend only. Typical harness loop: {!plan_crash}, run a
    workload until it raises {!Crashed}, {!revive}, reopen the database,
    and check the recovered state against the acknowledged prefix. *)

val crash : ?tear:tear -> t -> unit
(** Crash {e now}: discard all unsynced bytes (modulo [tear], default
    {!Tear_none}) and seal every file, as a power failure would. Open
    writers become unusable; the device itself stays usable, so a caller
    can immediately exercise recovery.
    @raise Invalid_argument on the on-disk backend. *)

val plan_crash : t -> ?tear:tear -> crash_point -> unit
(** Arm a crash at a future instant. When it fires, the triggering
    operation raises {!Crashed} after the crash semantics (truncate to
    the synced prefix, apply [tear], seal everything) have been applied.
    Re-arming replaces any previous plan. Test-only: the arming domain
    must be the only mutator.
    @raise Invalid_argument on the on-disk backend or a count < 1. *)

val cancel_crash_plan : t -> unit

val is_crashed : t -> bool
(** True between a planned crash firing and {!revive}. While true, every
    mutating operation raises {!Crashed}; reads still work. *)

val revive : t -> unit
(** Clear the crashed state ("reboot"): the surviving file images become
    the readable, durable on-device state, ready for recovery. *)

(** {1 Bit-rot and transient-fault injection}

    Orthogonal to crash injection: {!plan_crash} never alters synced
    bytes, whereas {!plan_corruption} deliberately flips bits {e inside}
    the synced prefix — silent corruption of data the device already
    acknowledged. This is what checksums, quarantine, and [lsm-doctor]
    defend against. *)

(** Coarse file classification by name, for targeting fault injection. *)
type file_class =
  | F_sst  (** [*.sst] table files *)
  | F_manifest  (** [MANIFEST] / [MANIFEST.tmp] *)
  | F_wal  (** [wal-*] log files *)
  | F_other

val classify : string -> file_class

type corruption_hit = {
  hit_file : string;
  hit_class : file_class;
  hit_off : int;  (** exact byte offset whose bit was flipped *)
}

val plan_corruption :
  t ->
  seed:int ->
  ?classes:file_class list ->
  ?pattern:(string -> bool) ->
  pages:int ->
  unit ->
  corruption_hit list
(** Flip one random bit in each of up to [pages] distinct pages of the
    synced prefix of every file matching [classes] (default: all) and
    [pattern] (default: all), deterministically in [seed]. Files are
    visited in name order. Returns one hit per flipped bit so harnesses
    can map damage to blocks. Applied immediately to the durable image.
    @raise Invalid_argument on the on-disk backend or [pages < 1]. *)

val plan_read_faults : t -> ?classes:file_class list -> int -> unit
(** Arm [n] transient read faults: the next [n] {!read}s of files in
    [classes] raise a retriable [Lsm_util.Lsm_error.Io_error] before
    returning any bytes (the data is undamaged — a retry succeeds once
    the charges are spent). [n = 0] disarms. Works on both backends. *)

val read_faults_fired : t -> int
(** Total injected read faults raised so far. *)

val simulate_latency : t -> ?read_ns_per_page:int -> ?write_ns_per_page:int -> unit -> unit
(** Model device speed: every subsequent {!read} ([append]) sleeps the
    given time per page touched, with no lock held — so concurrent I/O
    from different domains overlaps, exactly like queued requests on a
    real disk. The in-memory backend is otherwise so fast that I/O
    concurrency is invisible; benchmarks use this to measure it
    honestly on any host. Defaults/0 disable.
    @raise Invalid_argument on the on-disk backend or negative values. *)
