type op_class =
  | C_user_write
  | C_user_read
  | C_flush
  | C_compaction_read
  | C_compaction_write
  | C_gc
  | C_misc

let all_classes =
  [ C_user_write; C_user_read; C_flush; C_compaction_read; C_compaction_write; C_gc; C_misc ]

let class_name = function
  | C_user_write -> "user-write"
  | C_user_read -> "user-read"
  | C_flush -> "flush"
  | C_compaction_read -> "compaction-read"
  | C_compaction_write -> "compaction-write"
  | C_gc -> "gc"
  | C_misc -> "misc"

let class_index = function
  | C_user_write -> 0
  | C_user_read -> 1
  | C_flush -> 2
  | C_compaction_read -> 3
  | C_compaction_write -> 4
  | C_gc -> 5
  | C_misc -> 6

let num_classes = 7

(* The counter arrays are shared by every domain touching the device, so
   updates go through a mutex. Reads of a live record (the accessors
   below) stay lock-free: they are only meaningful on a quiescent device
   anyway, and int loads cannot tear. *)
type t = {
  pages_read : int array;
  bytes_read : int array;
  pages_written : int array;
  bytes_written : int array;
  sync_calls : int array;
  m : Lsm_util.Ordered_mutex.t;
}

let mk_mutex () =
  Lsm_util.Ordered_mutex.create ~rank:Lsm_util.Ordered_mutex.Rank.stats ~name:"io_stats"

let create () =
  {
    pages_read = Array.make num_classes 0;
    bytes_read = Array.make num_classes 0;
    pages_written = Array.make num_classes 0;
    bytes_written = Array.make num_classes 0;
    sync_calls = Array.make num_classes 0;
    m = mk_mutex ();
  }

let clear t =
  Lsm_util.Ordered_mutex.with_lock t.m @@ fun () ->
  Array.fill t.pages_read 0 num_classes 0;
  Array.fill t.bytes_read 0 num_classes 0;
  Array.fill t.pages_written 0 num_classes 0;
  Array.fill t.bytes_written 0 num_classes 0;
  Array.fill t.sync_calls 0 num_classes 0

let record_read t cls ~pages ~bytes =
  let i = class_index cls in
  Lsm_util.Ordered_mutex.with_lock t.m @@ fun () ->
  t.pages_read.(i) <- t.pages_read.(i) + pages;
  t.bytes_read.(i) <- t.bytes_read.(i) + bytes

let record_write t cls ~pages ~bytes =
  let i = class_index cls in
  Lsm_util.Ordered_mutex.with_lock t.m @@ fun () ->
  t.pages_written.(i) <- t.pages_written.(i) + pages;
  t.bytes_written.(i) <- t.bytes_written.(i) + bytes

(* Syncs are the durability cost the WA/RA numbers do not show: a
   per-write fsync discipline can dominate latency at identical byte
   counts, so recovery experiments track them separately. *)
let record_sync t cls =
  let i = class_index cls in
  Lsm_util.Ordered_mutex.with_lock t.m @@ fun () ->
  t.sync_calls.(i) <- t.sync_calls.(i) + 1

let sum_or_one a = function
  | Some cls -> a.(class_index cls)
  | None -> Array.fold_left ( + ) 0 a

let pages_read ?cls t = sum_or_one t.pages_read cls
let pages_written ?cls t = sum_or_one t.pages_written cls
let bytes_read ?cls t = sum_or_one t.bytes_read cls
let bytes_written ?cls t = sum_or_one t.bytes_written cls
let syncs ?cls t = sum_or_one t.sync_calls cls

let write_amplification t ~user_bytes =
  if user_bytes <= 0 then 0.0
  else float_of_int (bytes_written t) /. float_of_int user_bytes

let snapshot t =
  List.map
    (fun cls ->
      let i = class_index cls in
      (cls, (t.pages_read.(i), t.bytes_read.(i), t.pages_written.(i), t.bytes_written.(i))))
    all_classes

let copy t =
  Lsm_util.Ordered_mutex.with_lock t.m @@ fun () ->
  {
    pages_read = Array.copy t.pages_read;
    bytes_read = Array.copy t.bytes_read;
    pages_written = Array.copy t.pages_written;
    bytes_written = Array.copy t.bytes_written;
    sync_calls = Array.copy t.sync_calls;
    m = mk_mutex ();
  }

let diff now before =
  let sub a b = Array.init num_classes (fun i -> a.(i) - b.(i)) in
  {
    pages_read = sub now.pages_read before.pages_read;
    bytes_read = sub now.bytes_read before.bytes_read;
    pages_written = sub now.pages_written before.pages_written;
    bytes_written = sub now.bytes_written before.bytes_written;
    sync_calls = sub now.sync_calls before.sync_calls;
    m = mk_mutex ();
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun cls ->
      let i = class_index cls in
      if t.pages_read.(i) + t.pages_written.(i) + t.sync_calls.(i) > 0 then
        Format.fprintf ppf
          "%-17s read %8d pages / %10d B, wrote %8d pages / %10d B, %6d syncs@,"
          (class_name cls) t.pages_read.(i) t.bytes_read.(i) t.pages_written.(i)
          t.bytes_written.(i) t.sync_calls.(i))
    all_classes;
  Format.fprintf ppf "@]"
