module Codec = Lsm_util.Codec
module Crc32c = Lsm_util.Crc32c

let frame payload =
  let b = Buffer.create (String.length payload + 8) in
  let crc = Crc32c.mask (Crc32c.string payload) in
  Codec.put_u32 b (Int32.to_int crc land 0xffffffff);
  Codec.put_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* A clean close stamps this sentinel as the final frame. No real WAL or
   manifest payload can collide with it: WAL payloads start with a varint
   entry count and a count of 0x4c ('L') would need far more than 7 more
   bytes of entry encodings; manifest payloads start with a varint
   added-files count with the same argument. *)
let seal_payload = "LSM!SEAL"
let seal_size = 8 + String.length seal_payload
let seal_frame = frame seal_payload

let is_seal_tail data =
  let len = String.length data in
  len >= seal_size
  &&
  let r = Codec.reader ~pos:(len - seal_size) data in
  let crc = Int32.of_int (Codec.get_u32 r) in
  let plen = Codec.get_u32 r in
  plen = String.length seal_payload
  && Codec.get_raw r plen = seal_payload
  && Crc32c.mask (Crc32c.string seal_payload) = crc

type scan_end =
  | Sealed_clean
  | Unsealed_end
  | Bad_frame of int

let scan data f =
  let r = Codec.reader data in
  let frames = ref 0 in
  let stop = ref None in
  (try
     while Codec.remaining r >= 8 do
       let frame_off = r.Codec.pos in
       let stored_crc = Int32.of_int (Codec.get_u32 r) in
       let plen = Codec.get_u32 r in
       if plen > Codec.remaining r then begin
         stop := Some (Bad_frame frame_off);
         raise Exit
       end;
       let payload = Codec.get_raw r plen in
       if Crc32c.mask (Crc32c.string payload) <> stored_crc then begin
         stop := Some (Bad_frame frame_off);
         raise Exit
       end;
       if payload = seal_payload then begin
         stop := Some (if Codec.at_end r then Sealed_clean else Bad_frame r.Codec.pos);
         raise Exit
       end;
       (try f ~off:frame_off payload
        with Codec.Corrupt _ ->
          stop := Some (Bad_frame frame_off);
          raise Exit);
       incr frames
     done
   with Exit -> ());
  let ending =
    match !stop with
    | Some e -> e
    | None -> if Codec.at_end r then Unsealed_end else Bad_frame r.Codec.pos
  in
  (!frames, ending)

(* Is any complete frame decodable strictly after [off]? Distinguishes
   mid-log bit rot (intact frames follow the damage) from a genuine
   crash-torn tail (nothing decodable beyond it: a tear keeps at most a
   few bytes past the synced prefix, far short of a valid frame). The
   probe slides byte by byte, so it re-synchronizes even though the bad
   frame's length field is untrustworthy; a false positive needs four
   arbitrary bytes to match a CRC-32C — 2^-32 per candidate offset. *)
let find_frame_after data ~off =
  let len = String.length data in
  let rec probe pos =
    if pos + 8 > len then None
    else begin
      let r = Codec.reader ~pos data in
      let stored_crc = Int32.of_int (Codec.get_u32 r) in
      let plen = Codec.get_u32 r in
      if
        plen > 0
        && plen <= len - pos - 8
        && Crc32c.mask (Crc32c.string (Codec.get_raw r plen)) = stored_crc
      then Some pos
      else probe (pos + 1)
    end
  in
  probe (off + 1)

let has_frame_after data ~off = find_frame_after data ~off <> None

(* Tolerant scan: where [scan] stops at the first undecodable frame,
   this re-synchronizes past it to the next decodable frame boundary
   (the same sliding probe as [find_frame_after]) and keeps going,
   recording every skipped byte range. Frames past a seal are not
   replayed — a seal means "log ends here" — but trailing junk is still
   disclosed. The caller decides which gaps are losses (mid-log rot)
   and which are benign (a crash-torn tail). *)
let scan_salvage data f =
  let len = String.length data in
  let frames = ref 0 in
  let gaps = ref [] in
  let resync pos =
    match find_frame_after data ~off:pos with
    | Some j ->
      gaps := (pos, j) :: !gaps;
      j
    | None ->
      gaps := (pos, len) :: !gaps;
      len
  in
  let pos = ref 0 in
  (try
     while !pos < len do
       if len - !pos < 8 then pos := resync !pos
       else begin
         let r = Codec.reader ~pos:!pos data in
         let stored_crc = Int32.of_int (Codec.get_u32 r) in
         let plen = Codec.get_u32 r in
         if plen > len - !pos - 8 then pos := resync !pos
         else begin
           let payload = Codec.get_raw r plen in
           if Crc32c.mask (Crc32c.string payload) <> stored_crc then pos := resync !pos
           else if payload = seal_payload then begin
             if not (Codec.at_end r) then gaps := (r.Codec.pos, len) :: !gaps;
             raise Exit
           end
           else
             match f ~off:!pos payload with
             | () ->
               incr frames;
               pos := r.Codec.pos
             | exception Codec.Corrupt _ -> pos := resync !pos
         end
       end
     done
   with Exit -> ());
  (!frames, List.rev !gaps)

(* The last [seal_size] bytes differ from the seal frame in at most two
   bytes: a seal that took a bit flip or two. A crash cannot fabricate
   this — an unsynced seal either survives whole (then [is_seal_tail]
   holds) or is cut short, shifting the tail out of alignment. *)
let tail_is_damaged_seal data =
  let len = String.length data in
  len >= seal_size
  &&
  let diff = ref 0 in
  for i = 0 to seal_size - 1 do
    if data.[len - seal_size + i] <> seal_frame.[i] then incr diff
  done;
  !diff > 0 && !diff <= 2

(* Classify a [Bad_frame off] on an *unsealed* log: is this bit rot
   (which must be a typed corruption) rather than a legitimate
   crash-torn tail (which recovery may truncate)? Three independent
   tells, each impossible for a torn tail:
   - the bad frame is complete — its length field fits the file, so the
     payload is all there and the CRC simply disagrees; a torn frame is
     cut short (crashes tear at most a few unsynced bytes, well under a
     minimal frame);
   - an intact frame is decodable beyond the damage;
   - the file ends in a seal frame damaged by a flip or two. *)
let bad_frame_is_rot data ~off =
  let len = String.length data in
  let complete =
    len - off >= 8
    &&
    let r = Codec.reader ~pos:(off + 4) data in
    let plen = Codec.get_u32 r in
    plen <= len - off - 8
  in
  complete || has_frame_after data ~off || tail_is_damaged_seal data

let load dev ~name =
  let len = Device.size dev name in
  Device.read dev ~cls:Io_stats.C_misc name ~off:0 ~len

let is_sealed dev ~name = Device.exists dev name && is_seal_tail (load dev ~name)
