type mem_file = {
  buf : Buffer.t;
  mutable synced : int;  (** crash-durable prefix length *)
  mutable sealed : bool;
  mutable writing : bool;
}

type backend =
  | Mem of (string, mem_file) Hashtbl.t
  | Disk of { dir : string; open_writers : (string, unit) Hashtbl.t }

(* [m] guards the file table (Mem hashtable / Disk open-writer set) and
   the sync counter, making concurrent reads and writer open/close from
   several domains safe. Appends to an already-open writer deliberately
   bypass it: each file has exactly one writer, and files become readable
   only once sealed, so sink buffers are never shared across domains. *)
type t = {
  backend : backend;
  page_size : int;
  io : Io_stats.t;
  m : Mutex.t;
  mutable syncs : int;
}

type writer = {
  dev : t;
  name : string;
  cls : Io_stats.op_class;
  mutable w_written : int;
  sink : sink;
  mutable closed : bool;
}

and sink = Mem_sink of mem_file | Disk_sink of out_channel

let in_memory ?(page_size = 4096) () =
  {
    backend = Mem (Hashtbl.create 64);
    page_size;
    io = Io_stats.create ();
    m = Mutex.create ();
    syncs = 0;
  }

let on_disk ?(page_size = 4096) ~dir () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  {
    backend = Disk { dir; open_writers = Hashtbl.create 8 };
    page_size;
    io = Io_stats.create ();
    m = Mutex.create ();
    syncs = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let page_size t = t.page_size
let stats t = t.io
let sync_count t = t.syncs

let pages_of t ~off ~len =
  if len = 0 then 0
  else (((off + len - 1) / t.page_size) - (off / t.page_size)) + 1

let disk_path dir name = Filename.concat dir name

let open_writer t ~cls name =
  locked t @@ fun () ->
  match t.backend with
  | Mem files ->
    (match Hashtbl.find_opt files name with
    | Some f when f.writing -> invalid_arg ("Device.open_writer: already open: " ^ name)
    | _ -> ());
    let f = { buf = Buffer.create 4096; synced = 0; sealed = false; writing = true } in
    Hashtbl.replace files name f;
    { dev = t; name; cls; w_written = 0; sink = Mem_sink f; closed = false }
  | Disk d ->
    if Hashtbl.mem d.open_writers name then
      invalid_arg ("Device.open_writer: already open: " ^ name);
    Hashtbl.replace d.open_writers name ();
    let oc = open_out_bin (disk_path d.dir name) in
    { dev = t; name; cls; w_written = 0; sink = Disk_sink oc; closed = false }

let check_open w = if w.closed then invalid_arg "Device: writer is closed"

let account_write w len =
  let pages = pages_of w.dev ~off:w.w_written ~len in
  Io_stats.record_write w.dev.io w.cls ~pages ~bytes:len;
  w.w_written <- w.w_written + len

let append w s =
  check_open w;
  (match w.sink with
  | Mem_sink f ->
    if f.sealed then invalid_arg "Device.append: file sealed (crashed?)";
    Buffer.add_string f.buf s
  | Disk_sink oc -> output_string oc s);
  account_write w (String.length s)

let append_buffer w b =
  check_open w;
  (match w.sink with
  | Mem_sink f ->
    if f.sealed then invalid_arg "Device.append: file sealed (crashed?)";
    Buffer.add_buffer f.buf b
  | Disk_sink oc -> Buffer.output_buffer oc b);
  account_write w (Buffer.length b)

let written w = w.w_written

let sync w =
  check_open w;
  locked w.dev (fun () -> w.dev.syncs <- w.dev.syncs + 1);
  match w.sink with
  | Mem_sink f -> f.synced <- Buffer.length f.buf
  | Disk_sink oc -> flush oc

let close w =
  if not w.closed then begin
    sync w;
    w.closed <- true;
    locked w.dev @@ fun () ->
    match w.sink with
    | Mem_sink f ->
      f.sealed <- true;
      f.writing <- false
    | Disk_sink oc ->
      close_out oc;
      (match w.dev.backend with
      | Disk d -> Hashtbl.remove d.open_writers w.name
      | Mem _ -> assert false)
  end

let find_mem files name =
  match Hashtbl.find_opt files name with
  | Some f -> f
  | None -> raise Not_found

let read t ~cls name ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Device.read: negative range";
  let data =
    match t.backend with
    | Mem files ->
      locked t @@ fun () ->
      let f = find_mem files name in
      let n = Buffer.length f.buf in
      if off + len > n then invalid_arg "Device.read: out of bounds";
      Buffer.sub f.buf off len
    | Disk d ->
      let path = disk_path d.dir name in
      if not (Sys.file_exists path) then raise Not_found;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          if off + len > in_channel_length ic then invalid_arg "Device.read: out of bounds";
          seek_in ic off;
          really_input_string ic len)
  in
  Io_stats.record_read t.io cls ~pages:(pages_of t ~off ~len) ~bytes:len;
  data

let size t name =
  match t.backend with
  | Mem files -> locked t (fun () -> Buffer.length (find_mem files name).buf)
  | Disk d ->
    let path = disk_path d.dir name in
    if not (Sys.file_exists path) then raise Not_found;
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> in_channel_length ic)

let exists t name =
  match t.backend with
  | Mem files -> locked t (fun () -> Hashtbl.mem files name)
  | Disk d -> Sys.file_exists (disk_path d.dir name)

let delete t name =
  match t.backend with
  | Mem files -> locked t (fun () -> Hashtbl.remove files name)
  | Disk d ->
    let path = disk_path d.dir name in
    if Sys.file_exists path then Sys.remove path

let list_files t =
  match t.backend with
  | Mem files ->
    locked t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) files [])
    |> List.sort String.compare
  | Disk d -> Sys.readdir d.dir |> Array.to_list |> List.sort String.compare

let total_bytes t =
  match t.backend with
  | Mem files ->
    locked t (fun () -> Hashtbl.fold (fun _ f acc -> acc + Buffer.length f.buf) files 0)
  | Disk d ->
    Sys.readdir d.dir |> Array.to_list
    |> List.fold_left (fun acc name -> acc + size t name) 0

let crash t =
  match t.backend with
  | Disk _ -> invalid_arg "Device.crash: only supported on the in-memory backend"
  | Mem files ->
    locked t @@ fun () ->
    Hashtbl.iter
      (fun _ f ->
        Buffer.truncate f.buf f.synced;
        f.sealed <- true;
        f.writing <- false)
      files
