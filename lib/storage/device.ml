type mem_file = {
  mutable buf : Buffer.t;
  mutable synced : int;  (** crash-durable prefix length *)
  mutable sealed : bool;
  mutable writing : bool;
}

type backend =
  | Mem of (string, mem_file) Hashtbl.t
  | Disk of { dir : string; open_writers : (string, unit) Hashtbl.t }

exception Crashed

type tear = Tear_none | Tear_keep of int | Tear_corrupt of int

type crash_point = After_syncs of int | After_ops of int | After_bytes of int

type file_class = F_sst | F_manifest | F_wal | F_other

let classify name =
  if Filename.check_suffix name ".sst" then F_sst
  else if name = "MANIFEST" || name = "MANIFEST.tmp" then F_manifest
  else if String.length name >= 4 && String.sub name 0 4 = "wal-" then F_wal
  else F_other

type corruption_hit = { hit_file : string; hit_class : file_class; hit_off : int }

(* Countdown state of an armed crash; unused triggers sit at [max_int].
   Crash planning is a test-only, single-domain facility: the workload
   that arms a plan is the only mutator until the crash fires. *)
type plan = {
  mutable syncs_left : int;
  mutable ops_left : int;
  mutable bytes_left : int;
  tear : tear;
}

(* [m] guards the file table (Mem hashtable / Disk open-writer set) and
   the sync counter, making concurrent reads and writer open/close from
   several domains safe. Appends to an already-open writer deliberately
   bypass it: each file has exactly one writer, and files become readable
   only once sealed, so sink buffers are never shared across domains.
   (The crash-plan hook in [post_mutation] takes it only briefly.) *)
type t = {
  backend : backend;
  page_size : int;
  io : Io_stats.t;
  m : Lsm_util.Ordered_mutex.t;
  mutable syncs : int;
  mutable mutations : int;  (** count of durability-relevant device ops *)
  mutable plan : plan option;
  mutable is_crashed : bool;
  mutable read_faults : read_faults option;
  mutable read_faults_fired : int;
  mutable read_lat_ns : int;  (** simulated latency per page read (0 = off) *)
  mutable write_lat_ns : int;  (** simulated latency per page appended (0 = off) *)
}

(* Scheduled transient read faults: the next [left] reads of files in
   [fault_classes] fail with a retriable [Lsm_error.Io_error] before any
   bytes are returned. Models a device hiccup (not data loss — the bytes
   are fine on the next attempt). *)
and read_faults = { mutable left : int; fault_classes : file_class list }

type writer = {
  dev : t;
  name : string;
  cls : Io_stats.op_class;
  mutable w_written : int;
  sink : sink;
  mutable closed : bool;
}

and sink = Mem_sink of mem_file | Disk_sink of out_channel

let in_memory ?(page_size = 4096) () =
  {
    backend = Mem (Hashtbl.create 64);
    page_size;
    io = Io_stats.create ();
    m = Lsm_util.Ordered_mutex.create ~rank:Lsm_util.Ordered_mutex.Rank.device ~name:"device";
    syncs = 0;
    mutations = 0;
    plan = None;
    is_crashed = false;
    read_faults = None;
    read_faults_fired = 0;
    read_lat_ns = 0;
    write_lat_ns = 0;
  }

let on_disk ?(page_size = 4096) ~dir () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  {
    backend = Disk { dir; open_writers = Hashtbl.create 8 };
    page_size;
    io = Io_stats.create ();
    m = Lsm_util.Ordered_mutex.create ~rank:Lsm_util.Ordered_mutex.Rank.device ~name:"device";
    syncs = 0;
    mutations = 0;
    plan = None;
    is_crashed = false;
    read_faults = None;
    read_faults_fired = 0;
    read_lat_ns = 0;
    write_lat_ns = 0;
  }

let locked t f = Lsm_util.Ordered_mutex.with_lock t.m f

let simulate_latency t ?(read_ns_per_page = 0) ?(write_ns_per_page = 0) () =
  (match t.backend with
  | Mem _ -> ()
  | Disk _ -> invalid_arg "Device.simulate_latency: in-memory backend only");
  if read_ns_per_page < 0 || write_ns_per_page < 0 then
    invalid_arg "Device.simulate_latency: negative latency";
  t.read_lat_ns <- read_ns_per_page;
  t.write_lat_ns <- write_ns_per_page

(* The simulated device stall. Never called with the device lock held —
   concurrent I/O from different domains must overlap, exactly like
   queued requests on a real disk. *)
let lat_sleep ~per_page_ns ~pages =
  if per_page_ns > 0 && pages > 0 then
    Unix.sleepf (float_of_int (per_page_ns * pages) *. 1e-9)

let page_size t = t.page_size
let stats t = t.io
let sync_count t = t.syncs
let mutation_count t = t.mutations

let pages_of t ~off ~len =
  if len = 0 then 0
  else (((off + len - 1) / t.page_size) - (off / t.page_size)) + 1

let disk_path dir name = Filename.concat dir name

(* ---------------- crash machinery ---------------- *)

(* Power loss, as seen by one file: everything past the synced prefix is
   gone (Tear_none), except that the torn last page(s) being written at
   the instant of failure may survive partially (Tear_keep) or survive
   scrambled (Tear_corrupt). Corruption never touches synced bytes — the
   sync contract is exactly that they are immune. Whatever survives is,
   by definition, the new durable image. *)
let apply_tear f tear =
  let len = Buffer.length f.buf in
  let keep, corrupt =
    match tear with
    | Tear_none -> (f.synced, false)
    | Tear_keep n -> (min len (f.synced + max 0 n), false)
    | Tear_corrupt n -> (min len (f.synced + max 0 n), true)
  in
  if keep < len || corrupt then begin
    let data = Bytes.of_string (Buffer.sub f.buf 0 keep) in
    if corrupt then
      for i = f.synced to keep - 1 do
        Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor 0x5a))
      done;
    let b = Buffer.create (max 16 keep) in
    Buffer.add_bytes b data;
    f.buf <- b
  end;
  f.synced <- keep;
  f.sealed <- true;
  f.writing <- false

(* Must be called with [t.m] held. *)
let fire_crash_locked t tear =
  (match t.backend with
  | Mem files -> Hashtbl.iter (fun _ f -> apply_tear f tear) files
  | Disk _ -> ());
  t.plan <- None;
  t.is_crashed <- true

(* Every durability-relevant op (open/append/sync/delete/rename) funnels
   through here after its effect has been applied; an armed plan counts
   down and, at zero, the device dies mid-flight: the triggering call
   raises {!Crashed} and all unsynced state is torn away. *)
let post_mutation t ~is_sync =
  let fired =
    locked t @@ fun () ->
    t.mutations <- t.mutations + 1;
    match t.plan with
    | None -> false
    | Some p ->
      if is_sync && p.syncs_left <> max_int then p.syncs_left <- p.syncs_left - 1;
      if p.ops_left <> max_int then p.ops_left <- p.ops_left - 1;
      if p.syncs_left <= 0 || p.ops_left <= 0 then begin
        fire_crash_locked t p.tear;
        true
      end
      else false
  in
  if fired then raise Crashed

let check_alive t = if t.is_crashed then raise Crashed

let plan_crash t ?(tear = Tear_none) point =
  (match t.backend with
  | Disk _ -> invalid_arg "Device.plan_crash: only supported on the in-memory backend"
  | Mem _ -> ());
  let p =
    { syncs_left = max_int; ops_left = max_int; bytes_left = max_int; tear }
  in
  (match point with
  | After_syncs n ->
    if n < 1 then invalid_arg "Device.plan_crash: After_syncs needs n >= 1";
    p.syncs_left <- n
  | After_ops n ->
    if n < 1 then invalid_arg "Device.plan_crash: After_ops needs n >= 1";
    p.ops_left <- n
  | After_bytes n ->
    if n < 1 then invalid_arg "Device.plan_crash: After_bytes needs n >= 1";
    p.bytes_left <- n);
  locked t (fun () -> t.plan <- Some p)

let cancel_crash_plan t = locked t (fun () -> t.plan <- None)
let is_crashed t = t.is_crashed

let revive t =
  locked t @@ fun () ->
  t.plan <- None;
  t.is_crashed <- false

(* ---------------- bit-rot + read-fault injection ---------------- *)

(* Seeded bit-rot on the *durable image*: unlike crash tears, which by
   contract never touch synced bytes, this deliberately flips bits inside
   the synced prefix — the storage layer lying about data it acknowledged.
   One random bit per chosen page, deterministic in [seed]; matching files
   are visited in name order. Returns the exact byte offsets hit so a
   harness can reason about which blocks were physically damaged. *)
let plan_corruption t ~seed ?(classes = [ F_sst; F_manifest; F_wal; F_other ])
    ?(pattern = fun _ -> true) ~pages () =
  let files =
    match t.backend with
    | Disk _ ->
      invalid_arg "Device.plan_corruption: only supported on the in-memory backend"
    | Mem files -> files
  in
  if pages < 1 then invalid_arg "Device.plan_corruption: pages >= 1";
  let rng = Lsm_util.Rng.create seed in
  locked t @@ fun () ->
  let victims =
    Hashtbl.fold (fun name f acc -> (name, f) :: acc) files []
    |> List.filter (fun (name, f) ->
           f.synced > 0 && List.mem (classify name) classes && pattern name)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.concat_map
    (fun (name, f) ->
      let synced_pages = ((f.synced - 1) / t.page_size) + 1 in
      let page_idx = Array.init synced_pages Fun.id in
      Lsm_util.Rng.shuffle rng page_idx;
      let n = min pages synced_pages in
      let data = Buffer.to_bytes f.buf in
      let hits = ref [] in
      for i = 0 to n - 1 do
        let page = page_idx.(i) in
        let page_len = min t.page_size (f.synced - (page * t.page_size)) in
        let off = (page * t.page_size) + Lsm_util.Rng.int rng page_len in
        let bit = Lsm_util.Rng.int rng 8 in
        Bytes.set data off
          (Char.chr (Char.code (Bytes.get data off) lxor (1 lsl bit)));
        hits := { hit_file = name; hit_class = classify name; hit_off = off } :: !hits
      done;
      let b = Buffer.create (max 16 (Bytes.length data)) in
      Buffer.add_bytes b data;
      f.buf <- b;
      List.rev !hits)
    victims

let plan_read_faults t ?(classes = [ F_sst; F_manifest; F_wal; F_other ]) n =
  if n < 0 then invalid_arg "Device.plan_read_faults: n >= 0";
  locked t (fun () ->
      t.read_faults <- (if n = 0 then None else Some { left = n; fault_classes = classes }))

let read_faults_fired t = t.read_faults_fired

(* Raises a retriable [Lsm_error.Io_error] if an armed fault applies to
   [name], consuming one fault charge. *)
let maybe_read_fault t name =
  let fire =
    locked t @@ fun () ->
    match t.read_faults with
    | Some rf when rf.left > 0 && List.mem (classify name) rf.fault_classes ->
      rf.left <- rf.left - 1;
      if rf.left = 0 then t.read_faults <- None;
      t.read_faults_fired <- t.read_faults_fired + 1;
      true
    | _ -> false
  in
  if fire then
    raise
      (Lsm_util.Lsm_error.io_error ~retriable:true
         ("injected transient read fault: " ^ name))

(* ---------------- writing ---------------- *)

let open_writer t ~cls name =
  check_alive t;
  let w =
    locked t @@ fun () ->
    match t.backend with
    | Mem files ->
      (match Hashtbl.find_opt files name with
      | Some f when f.writing -> invalid_arg ("Device.open_writer: already open: " ^ name)
      | _ -> ());
      let f = { buf = Buffer.create 4096; synced = 0; sealed = false; writing = true } in
      Hashtbl.replace files name f;
      { dev = t; name; cls; w_written = 0; sink = Mem_sink f; closed = false }
    | Disk d ->
      if Hashtbl.mem d.open_writers name then
        invalid_arg ("Device.open_writer: already open: " ^ name);
      Hashtbl.replace d.open_writers name ();
      let oc = open_out_bin (disk_path d.dir name) in
      { dev = t; name; cls; w_written = 0; sink = Disk_sink oc; closed = false }
  in
  post_mutation t ~is_sync:false;
  w

let check_open w = if w.closed then invalid_arg "Device: writer is closed"

let account_write w len =
  let pages = pages_of w.dev ~off:w.w_written ~len in
  Io_stats.record_write w.dev.io w.cls ~pages ~bytes:len;
  w.w_written <- w.w_written + len

(* A byte-triggered plan fires *inside* the append: only the prefix of
   [s] that fit before the failure instant reaches the (volatile) page
   cache — the torn-write case CRC framing exists for. *)
let append_prefix_on_plan w s =
  match w.dev.plan with
  | Some p when p.bytes_left <> max_int ->
    if p.bytes_left <= String.length s then (String.sub s 0 p.bytes_left, true)
    else begin
      p.bytes_left <- p.bytes_left - String.length s;
      (s, false)
    end
  | _ -> (s, false)

let append w s =
  check_open w;
  check_alive w.dev;
  let s, tripped = append_prefix_on_plan w s in
  (match w.sink with
  | Mem_sink f ->
    if f.sealed then invalid_arg "Device.append: file sealed (crashed?)";
    Buffer.add_string f.buf s
  | Disk_sink oc -> output_string oc s);
  account_write w (String.length s);
  lat_sleep ~per_page_ns:w.dev.write_lat_ns
    ~pages:(pages_of w.dev ~off:(w.w_written - String.length s) ~len:(String.length s));
  if tripped then begin
    locked w.dev (fun () ->
        match w.dev.plan with
        | Some p -> fire_crash_locked w.dev p.tear
        | None -> fire_crash_locked w.dev Tear_none);
    raise Crashed
  end;
  post_mutation w.dev ~is_sync:false

let append_buffer w b = append w (Buffer.contents b)

let written w = w.w_written

let sync w =
  check_open w;
  check_alive w.dev;
  (match w.sink with
  | Mem_sink f -> f.synced <- Buffer.length f.buf
  | Disk_sink oc -> flush oc);
  locked w.dev (fun () -> w.dev.syncs <- w.dev.syncs + 1);
  Io_stats.record_sync w.dev.io w.cls;
  post_mutation w.dev ~is_sync:true

let close w =
  if not w.closed then begin
    sync w;
    w.closed <- true;
    locked w.dev @@ fun () ->
    match w.sink with
    | Mem_sink f ->
      f.sealed <- true;
      f.writing <- false
    | Disk_sink oc ->
      close_out oc;
      (match w.dev.backend with
      | Disk d -> Hashtbl.remove d.open_writers w.name
      | Mem _ -> assert false)
  end

let find_mem files name =
  match Hashtbl.find_opt files name with
  | Some f -> f
  | None -> raise Not_found

let read t ~cls name ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Device.read: negative range";
  maybe_read_fault t name;
  let data =
    match t.backend with
    | Mem files ->
      locked t @@ fun () ->
      let f = find_mem files name in
      let n = Buffer.length f.buf in
      if off + len > n then invalid_arg "Device.read: out of bounds";
      Buffer.sub f.buf off len
    | Disk d ->
      let path = disk_path d.dir name in
      if not (Sys.file_exists path) then raise Not_found;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          if off + len > in_channel_length ic then invalid_arg "Device.read: out of bounds";
          seek_in ic off;
          really_input_string ic len)
  in
  Io_stats.record_read t.io cls ~pages:(pages_of t ~off ~len) ~bytes:len;
  lat_sleep ~per_page_ns:t.read_lat_ns ~pages:(pages_of t ~off ~len);
  data

let size t name =
  match t.backend with
  | Mem files -> locked t (fun () -> Buffer.length (find_mem files name).buf)
  | Disk d ->
    let path = disk_path d.dir name in
    if not (Sys.file_exists path) then raise Not_found;
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> in_channel_length ic)

let exists t name =
  match t.backend with
  | Mem files -> locked t (fun () -> Hashtbl.mem files name)
  | Disk d -> Sys.file_exists (disk_path d.dir name)

(* In-place overwrite of already-written bytes — the primitive ECC repair
   stands on. Deliberately not routed through a writer handle: repair
   targets sealed, immutable tables, and never extends a file. Patched
   bytes inherit the durability of the bytes they replace (a repair of the
   synced prefix stays synced — the durable frontier never moves). *)
let patch t ~cls name ~off data =
  check_alive t;
  let len = String.length data in
  if off < 0 then invalid_arg "Device.patch: negative offset";
  (match t.backend with
  | Mem files ->
    locked t @@ fun () ->
    let f = find_mem files name in
    let n = Buffer.length f.buf in
    if off + len > n then invalid_arg "Device.patch: out of bounds";
    if f.writing then invalid_arg ("Device.patch: file has an open writer: " ^ name);
    if len > 0 then begin
      let bytes = Buffer.to_bytes f.buf in
      Bytes.blit_string data 0 bytes off len;
      let b = Buffer.create (max 16 n) in
      Buffer.add_bytes b bytes;
      f.buf <- b
    end
  | Disk d ->
    let path = disk_path d.dir name in
    if not (Sys.file_exists path) then raise Not_found;
    let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        if off + len > out_channel_length oc then invalid_arg "Device.patch: out of bounds";
        seek_out oc off;
        output_string oc data));
  Io_stats.record_write t.io cls ~pages:(pages_of t ~off ~len) ~bytes:len;
  post_mutation t ~is_sync:false

let delete t name =
  check_alive t;
  (match t.backend with
  | Mem files -> locked t (fun () -> Hashtbl.remove files name)
  | Disk d ->
    let path = disk_path d.dir name in
    if Sys.file_exists path then Sys.remove path);
  post_mutation t ~is_sync:false

(* Atomic, immediately-durable replacement of [dst] by [src] — the
   idealized POSIX [rename(2)] the manifest-swap protocol builds on. An
   open writer keeps appending to the renamed file. *)
let rename t src dst =
  check_alive t;
  if src = dst then invalid_arg "Device.rename: src = dst";
  (match t.backend with
  | Mem files ->
    locked t @@ fun () ->
    let f = find_mem files src in
    Hashtbl.remove files src;
    Hashtbl.replace files dst f
  | Disk d ->
    let sp = disk_path d.dir src in
    if not (Sys.file_exists sp) then raise Not_found;
    Sys.rename sp (disk_path d.dir dst);
    if Hashtbl.mem d.open_writers src then begin
      Hashtbl.remove d.open_writers src;
      Hashtbl.replace d.open_writers dst ()
    end);
  post_mutation t ~is_sync:false

let list_files t =
  match t.backend with
  | Mem files ->
    locked t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) files [])
    |> List.sort String.compare
  | Disk d -> Sys.readdir d.dir |> Array.to_list |> List.sort String.compare

let total_bytes t =
  match t.backend with
  | Mem files ->
    locked t (fun () -> Hashtbl.fold (fun _ f acc -> acc + Buffer.length f.buf) files 0)
  | Disk d ->
    Sys.readdir d.dir |> Array.to_list
    |> List.fold_left (fun acc name -> acc + size t name) 0

let crash ?(tear = Tear_none) t =
  match t.backend with
  | Disk _ -> invalid_arg "Device.crash: only supported on the in-memory backend"
  | Mem files ->
    locked t @@ fun () ->
    t.plan <- None;
    Hashtbl.iter (fun _ f -> apply_tear f tear) files
