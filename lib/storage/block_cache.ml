(* Striped LRU: the cache is split into independent shards, each a full
   (hashtable + intrusive doubly-linked list) LRU with its own mutex, so
   domains running parallel subcompactions or fanned-out point lookups
   contend only when they touch the same stripe. Keys route by hash of
   (file, offset); stats aggregate across shards.

   The cache is polymorphic in what it stores. The engine keeps
   *decoded* blocks (verified, decompressed, restart-parsed) so a hit
   never re-pays CRC or decompression; because a decoded entry is not a
   string, the byte charge is explicit — [insert ~bytes] — rather than
   derived, and [used_bytes] accounts those charges. *)

type key = string * int

module Shard = struct
  type 'a node = {
    nkey : key;
    data : 'a;
    nbytes : int;  (** the byte charge declared at insert *)
    mutable prev : 'a node option;
    mutable next : 'a node option;
  }

  type 'a t = {
    m : Lsm_util.Ordered_mutex.t;
    mutable cap : int;
    table : (key, 'a node) Hashtbl.t;
    mutable head : 'a node option;  (** most recently used *)
    mutable tail : 'a node option;  (** least recently used *)
    mutable used : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ~capacity =
    {
      m =
        Lsm_util.Ordered_mutex.create ~rank:Lsm_util.Ordered_mutex.Rank.block_cache_shard
          ~name:"block_cache.shard";
      cap = capacity;
      table = Hashtbl.create 256;
      head = None;
      tail = None;
      used = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let locked t f = Lsm_util.Ordered_mutex.with_lock t.m f

  let unlink t n =
    (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
    (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_front t n =
    n.next <- t.head;
    n.prev <- None;
    (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
    t.head <- Some n

  let remove_node t n =
    unlink t n;
    Hashtbl.remove t.table n.nkey;
    t.used <- t.used - n.nbytes

  let find t ~file ~off =
    locked t @@ fun () ->
    match Hashtbl.find_opt t.table (file, off) with
    | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      Some n.data
    | None ->
      t.misses <- t.misses + 1;
      None

  let evict_until_fits t =
    while t.used > t.cap do
      match t.tail with
      | Some n ->
        remove_node t n;
        t.evictions <- t.evictions + 1
      | None -> assert false
    done

  let set_capacity t capacity =
    locked t @@ fun () ->
    t.cap <- capacity;
    evict_until_fits t

  let insert t ~file ~off ~bytes data =
    if bytes < 0 then invalid_arg "Block_cache.insert: negative byte charge";
    locked t @@ fun () ->
    if bytes <= t.cap && t.cap > 0 then begin
      (match Hashtbl.find_opt t.table (file, off) with
      | Some old -> remove_node t old
      | None -> ());
      let n = { nkey = (file, off); data; nbytes = bytes; prev = None; next = None } in
      Hashtbl.replace t.table n.nkey n;
      push_front t n;
      t.used <- t.used + bytes;
      evict_until_fits t
    end

  (* Targeted invalidation of one entry: the corrupt-cached-block path
     drops exactly the offending (file, off) and leaves the file's other
     blocks hot. Not counted as a capacity eviction. *)
  let remove t ~file ~off =
    locked t @@ fun () ->
    match Hashtbl.find_opt t.table (file, off) with
    | Some n -> remove_node t n
    | None -> ()

  let evict_file t file =
    locked t @@ fun () ->
    let victims =
      Hashtbl.fold (fun (f, _) n acc -> if String.equal f file then n :: acc else acc) t.table []
    in
    List.iter (remove_node t) victims;
    List.length victims

  let clear t =
    locked t @@ fun () ->
    Hashtbl.reset t.table;
    t.head <- None;
    t.tail <- None;
    t.used <- 0

  let reset_stats t =
    locked t @@ fun () ->
    t.hits <- 0;
    t.misses <- 0;
    t.evictions <- 0
end

type 'a t = 'a Shard.t array

(* Byte budget split as evenly as integer division allows; the first
   [capacity mod n] shards take the remainder byte each. *)
let split_capacity ~capacity n =
  Array.init n (fun i -> (capacity / n) + if i < capacity mod n then 1 else 0)

let create ?(shards = 1) ~capacity () =
  if capacity < 0 then invalid_arg "Block_cache.create: negative capacity";
  if shards < 1 then invalid_arg "Block_cache.create: shards must be >= 1";
  let caps = split_capacity ~capacity shards in
  Array.init shards (fun i -> Shard.create ~capacity:caps.(i))

let shard_count t = Array.length t

let shard_of t ~file ~off =
  let n = Array.length t in
  if n = 1 then t.(0) else t.(Hashtbl.hash (file, off) mod n)

let sum f t = Array.fold_left (fun acc s -> acc + f s) 0 t

let capacity t = sum (fun (s : _ Shard.t) -> s.Shard.cap) t
let used_bytes t = sum (fun (s : _ Shard.t) -> s.Shard.used) t
let block_count t = sum (fun (s : _ Shard.t) -> Hashtbl.length s.Shard.table) t

let set_capacity t capacity =
  if capacity < 0 then invalid_arg "Block_cache.set_capacity: negative capacity";
  let caps = split_capacity ~capacity (Array.length t) in
  Array.iteri (fun i s -> Shard.set_capacity s caps.(i)) t

let find t ~file ~off = Shard.find (shard_of t ~file ~off) ~file ~off
let insert t ~file ~off ~bytes data = Shard.insert (shard_of t ~file ~off) ~file ~off ~bytes data
let remove t ~file ~off = Shard.remove (shard_of t ~file ~off) ~file ~off

let get_or_load t ~file ~off load =
  let s = shard_of t ~file ~off in
  match Shard.find s ~file ~off with
  | Some data -> data
  | None ->
    (* Load outside the shard lock: a racing domain may load the same
       block twice, but never blocks behind another shard's I/O. *)
    let data, bytes = load () in
    Shard.insert s ~file ~off ~bytes data;
    data

let evict_file t file = sum (fun s -> Shard.evict_file s file) t
let clear t = Array.iter Shard.clear t

let hits t = sum (fun (s : _ Shard.t) -> s.Shard.hits) t
let misses t = sum (fun (s : _ Shard.t) -> s.Shard.misses) t
let evictions t = sum (fun (s : _ Shard.t) -> s.Shard.evictions) t

let hit_rate t =
  let lookups = hits t + misses t in
  if lookups = 0 then 0.0 else float_of_int (hits t) /. float_of_int lookups

let reset_stats t = Array.iter Shard.reset_stats t
