(** Write-ahead log: crash durability for the memtable.

    Each user write batch is framed as one checksummed record. On a clean
    {!close} the log is terminated with a {e seal} sentinel frame, which
    tells replay the file is complete: a sealed log must parse perfectly,
    so any bad frame inside one is silent corruption (bit-rot) and raises
    a typed [Lsm_util.Lsm_error.Corruption]. A log {e without} a seal is
    a crash-truncated log: {!replay} folds over the intact prefix and
    silently stops at the first torn or corrupt record — the standard
    contract that makes a crashed tail harmless (the lost suffix was
    never acknowledged if the caller synced per batch).

    Frame layout: [u32 masked-crc32c | u32 payload-len | payload], where the
    payload is a varint entry count followed by the encoded entries. The
    seal frame's payload is the 8-byte sentinel ["LSM!SEAL"], which no real
    batch payload can collide with. *)

type t

val create : Device.t -> name:string -> t
(** Opens a fresh log file for appending (truncates an existing one). *)

val append : t -> ?sync:bool -> Lsm_record.Entry.t list -> unit
(** Appends one batch as one record. [sync] (default [true]) makes the
    record crash-durable before returning. Empty batches are ignored —
    including their [sync]; use {!sync} to force durability alone. *)

val sync : t -> unit
(** Make every record appended so far crash-durable. Needed after a run
    of [append ~sync:false] (e.g. recovery re-logging) before anything
    that assumed durability — like deleting the logs replayed from. *)

val size : t -> int
(** Bytes of batch records appended so far (the seal frame, written at
    {!close}, is not yet included). *)

val name : t -> string

val close : t -> unit
(** Appends the seal frame and seals the file (implies sync). *)

val seal_size : int
(** On-device size of the seal frame. *)

val is_sealed : Device.t -> name:string -> bool
(** Whether the file ends with a valid seal frame (i.e. was closed
    cleanly). Missing files are not sealed. *)

val replay :
  Device.t -> name:string -> (Lsm_record.Entry.t list -> unit) -> int
(** [replay dev ~name f] applies [f] to each intact batch in order and
    returns the number of batches recovered. A missing file recovers zero
    batches. An unsealed (crash-truncated) log ignores corruption past
    the intact prefix; a sealed log raises
    [Lsm_util.Lsm_error.Corruption] on any bad frame instead — batches
    before the bad frame may already have been applied when it raises.
    The seal frame itself is not counted or passed to [f]. *)

val salvage :
  Device.t -> name:string -> (Lsm_record.Entry.t list -> unit) -> int * (int * int) list
(** Tolerant scan for repair tools: applies [f] to each intact batch in
    file order regardless of seal state, re-synchronizing past
    undecodable frames so batches on {e both} sides of mid-log damage
    are recovered. Returns the batch count and the disclosed byte ranges
    [(start, stop)] that were skipped as lost. A benign crash-torn tail
    (a final unparseable stretch bearing none of the rot tells) is
    truncated silently — exactly as {!replay} would — and not disclosed;
    every disclosed gap is real damage an operator should know about. *)
