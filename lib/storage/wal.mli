(** Write-ahead log: crash durability for the memtable.

    Each user write batch is framed as one checksummed record; on restart,
    {!replay} folds over the intact prefix of the log and silently stops at
    the first torn or corrupt record — the standard contract that makes a
    crashed tail harmless (the lost suffix was never acknowledged if the
    caller synced per batch).

    Frame layout: [u32 masked-crc32c | u32 payload-len | payload], where the
    payload is a varint entry count followed by the encoded entries. *)

type t

val create : Device.t -> name:string -> t
(** Opens a fresh log file for appending (truncates an existing one). *)

val append : t -> ?sync:bool -> Lsm_record.Entry.t list -> unit
(** Appends one batch as one record. [sync] (default [true]) makes the
    record crash-durable before returning. Empty batches are ignored —
    including their [sync]; use {!sync} to force durability alone. *)

val sync : t -> unit
(** Make every record appended so far crash-durable. Needed after a run
    of [append ~sync:false] (e.g. recovery re-logging) before anything
    that assumed durability — like deleting the logs replayed from. *)

val size : t -> int
val name : t -> string
val close : t -> unit

val replay :
  Device.t -> name:string -> (Lsm_record.Entry.t list -> unit) -> int
(** [replay dev ~name f] applies [f] to each intact batch in order and
    returns the number of batches recovered. A missing file recovers zero
    batches. Corruption past the intact prefix is ignored (torn tail). *)
