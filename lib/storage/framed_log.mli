(** The CRC frame discipline shared by the WAL and the manifest.

    Layout per frame: [u32 masked-crc32c | u32 payload-len | payload].
    A cleanly-closed log ends with a {e seal} frame (payload
    {!seal_payload}); its presence distinguishes silent corruption (a bad
    frame in a sealed log) from an ordinary crash-truncated tail. *)

val frame : string -> string
(** Wrap a payload in a CRC frame. *)

val seal_payload : string
val seal_size : int

val seal_frame : string
(** The pre-framed seal sentinel, ready to append on close. *)

val is_seal_tail : string -> bool
(** Whether the raw file image ends with a valid seal frame. *)

(** How a frame scan ended. *)
type scan_end =
  | Sealed_clean  (** every frame valid, terminated by the seal *)
  | Unsealed_end  (** every frame valid, no seal (crash-truncated log) *)
  | Bad_frame of int  (** first undecodable frame starts at this offset *)

val scan : string -> (off:int -> string -> unit) -> int * scan_end
(** [scan data f] walks the frames in order, calling [f ~off payload] for
    each valid non-seal frame, and returns how many were delivered plus
    the ending. An [f] raising [Codec.Corrupt] marks that frame bad and
    stops the scan (its delivery is not counted). *)

val find_frame_after : string -> off:int -> int option
(** Offset of the first complete, CRC-valid frame strictly after [off],
    if any. The probe slides byte by byte, so it re-synchronizes even
    though a damaged frame's length field is untrustworthy; a false
    positive needs four arbitrary bytes to match a CRC-32C — 2^-32 per
    candidate offset. *)

val has_frame_after : string -> off:int -> bool
(** Whether any complete, CRC-valid frame is decodable strictly after
    [off]. A scan ending in [Bad_frame off] on an {e unsealed} log is a
    legitimate crash-torn tail only when nothing decodable follows;
    intact frames beyond the damage mean mid-log bit rot, which must be
    a typed corruption, never a silent truncation. *)

val scan_salvage : string -> (off:int -> string -> unit) -> int * (int * int) list
(** [scan_salvage data f] is the tolerant counterpart of {!scan}: at an
    undecodable frame it re-synchronizes to the next decodable frame
    boundary ({!find_frame_after}) and continues, so intact frames on
    {e both} sides of damage are delivered. Returns the delivered frame
    count and the skipped byte ranges [(start, stop)] in file order
    (empty for a clean log). Frames past a seal are not delivered;
    trailing junk after one is still disclosed as a gap. *)

val bad_frame_is_rot : string -> off:int -> bool
(** Classify a [Bad_frame off] on an unsealed log: [true] when the
    damage bears a tell no crash-torn tail can produce — the bad frame
    is complete (payload all present, CRC disagreeing), or an intact
    frame follows it ({!has_frame_after}), or the file ends in a seal
    frame off by a bit flip or two. Recovery must then raise a typed
    corruption instead of truncating. *)

val load : Device.t -> name:string -> string
(** Read a whole file. @raise Not_found if it does not exist. *)

val is_sealed : Device.t -> name:string -> bool
(** Whether the named file ends with a valid seal frame; [false] for a
    missing file. *)
