module Codec = Lsm_util.Codec
module Lsm_error = Lsm_util.Lsm_error
module Entry = Lsm_record.Entry

type t = { wname : string; writer : Device.writer; mutable closed : bool }

let create dev ~name =
  { wname = name; writer = Device.open_writer dev ~cls:Io_stats.C_user_write name; closed = false }

let seal_size = Framed_log.seal_size

let append t ?(sync = true) entries =
  if t.closed then invalid_arg "Wal.append: closed";
  match entries with
  | [] -> ()
  | entries ->
    let payload = Buffer.create 256 in
    Codec.put_varint payload (List.length entries);
    List.iter (Entry.encode payload) entries;
    Device.append t.writer (Framed_log.frame (Buffer.contents payload));
    if sync then Device.sync t.writer

let sync t =
  if t.closed then invalid_arg "Wal.sync: closed";
  Device.sync t.writer

let size t = Device.written t.writer
let name t = t.wname

let close t =
  if not t.closed then begin
    (* The seal is best-effort: a writer whose file was sealed by a crash
       plan (and the device revived) stays closable, as before. *)
    (try Device.append t.writer Framed_log.seal_frame
     with Invalid_argument _ -> ());
    Device.close t.writer;
    t.closed <- true
  end

let is_sealed dev ~name = Framed_log.is_sealed dev ~name

let decode_batch payload f =
  let pr = Codec.reader payload in
  let count = Codec.get_varint pr in
  let entries = List.init count (fun _ -> Entry.decode pr) in
  f entries

let replay dev ~name f =
  if not (Device.exists dev name) then 0
  else begin
    let data = Framed_log.load dev ~name in
    let sealed = Framed_log.is_seal_tail data in
    let batches, ending = Framed_log.scan data (fun ~off:_ p -> decode_batch p f) in
    (match (sealed, ending) with
    | true, Framed_log.Sealed_clean -> ()
    | false, Framed_log.Bad_frame off when Framed_log.bad_frame_is_rot data ~off ->
      (* Intact frames beyond the damage: mid-log bit rot (possibly with
         a rotted seal), not a crash-torn tail. Replaying the prefix and
         dropping acknowledged batches after it would be silent data
         loss; only [salvage] may truncate, and it reports doing so. *)
      raise
        (Lsm_error.corruption ~file:name ~offset:off
           "valid frames beyond a damaged frame: bit rot, not a torn tail")
    | false, _ -> ()
    | true, Framed_log.Bad_frame off ->
      raise
        (Lsm_error.corruption ~file:name ~offset:off
           "bad frame in cleanly-closed WAL")
    | true, Framed_log.Unsealed_end ->
      (* The tail is a valid seal frame yet the forward scan never reached
         it: frame boundaries are misaligned. *)
      raise (Lsm_error.corruption ~file:name "sealed WAL with misaligned frames"));
    batches
  end

let salvage dev ~name f =
  if not (Device.exists dev name) then (0, [])
  else begin
    let data = Framed_log.load dev ~name in
    let len = String.length data in
    let batches, gaps =
      Framed_log.scan_salvage data (fun ~off:_ p -> decode_batch p f)
    in
    (* A final gap reaching end-of-file with none of the rot tells is an
       ordinary crash-torn tail: recovery truncates those silently (as
       [replay] does), so it is not a disclosed loss. Every other gap is
       mid-log damage with intact batches beyond it — real, reportable
       loss. *)
    let gaps =
      List.filter
        (fun (g0, g1) -> g1 < len || Framed_log.bad_frame_is_rot data ~off:g0)
        gaps
    in
    (batches, gaps)
  end
