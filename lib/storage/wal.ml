module Codec = Lsm_util.Codec
module Crc32c = Lsm_util.Crc32c
module Entry = Lsm_record.Entry

type t = { wname : string; writer : Device.writer; mutable closed : bool }

let create dev ~name =
  { wname = name; writer = Device.open_writer dev ~cls:Io_stats.C_user_write name; closed = false }

let frame_record payload =
  let b = Buffer.create (String.length payload + 8) in
  let crc = Crc32c.mask (Crc32c.string payload) in
  Codec.put_u32 b (Int32.to_int crc land 0xffffffff);
  Codec.put_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

let append t ?(sync = true) entries =
  if t.closed then invalid_arg "Wal.append: closed";
  match entries with
  | [] -> ()
  | entries ->
    let payload = Buffer.create 256 in
    Codec.put_varint payload (List.length entries);
    List.iter (Entry.encode payload) entries;
    Device.append t.writer (frame_record (Buffer.contents payload));
    if sync then Device.sync t.writer

let sync t =
  if t.closed then invalid_arg "Wal.sync: closed";
  Device.sync t.writer

let size t = Device.written t.writer
let name t = t.wname

let close t =
  if not t.closed then begin
    Device.close t.writer;
    t.closed <- true
  end

let replay dev ~name f =
  if not (Device.exists dev name) then 0
  else begin
    let len = Device.size dev name in
    let data = Device.read dev ~cls:Io_stats.C_misc name ~off:0 ~len in
    let r = Codec.reader data in
    let batches = ref 0 in
    (try
       while Codec.remaining r >= 8 do
         let stored_crc = Int32.of_int (Codec.get_u32 r) in
         let plen = Codec.get_u32 r in
         if plen > Codec.remaining r then raise Exit;
         let payload = Codec.get_raw r plen in
         if Crc32c.mask (Crc32c.string payload) <> stored_crc then raise Exit;
         let pr = Codec.reader payload in
         let count = Codec.get_varint pr in
         let entries = List.init count (fun _ -> Entry.decode pr) in
         f entries;
         incr batches
       done
     with Exit | Codec.Corrupt _ -> ());
    !batches
  end
