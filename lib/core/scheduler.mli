(** Background flush/compaction scheduler.

    All background jobs from all open dbs run on one process-wide
    single-worker lane ([Lsm_util.Domain_pool] of size 1): bounded
    domain count regardless of how many dbs a process opens, and jobs
    execute strictly in enqueue order — which is what makes background
    mode produce the same tree evolution as inline mode.

    Each db owns a [t]: a pending-job counter (fed into write
    backpressure as compaction debt), an idle condition for the *stop*
    path, and a sticky failure latch re-raising background exceptions
    on the next foreground call. Lock rank: [Rank.scheduler]. *)

type t

val create : unit -> t
(** New per-db scheduler, sharing (and on first call creating) the
    process-wide background lane. *)

val enqueue : t -> (unit -> unit) -> unit
(** Queue a job; returns immediately. Re-raises a previously recorded
    background failure before queueing. A raising job records its
    exception in the failure latch. *)

val pending : t -> int
(** Jobs enqueued but not yet finished. *)

val wait_until : t -> (pending:int -> bool) -> unit
(** Block until [pred ~pending] holds. [pred] is called under the
    scheduler lock on every job completion — it must not acquire
    ordered mutexes of rank <= [Rank.scheduler]. Returns (rather than
    hanging) when the queue drains or a job fails with the predicate
    still false; failures re-raise. *)

val quiesce : t -> unit
(** Wait for every queued job, then re-raise any recorded failure. *)

val take_failure : t -> exn option
(** Remove and return the parked background failure, if any — the
    fail-safe resume path ([Db.try_resume]) clears the latch without
    re-raising. *)

val shutdown : t -> unit
(** Wait for every queued job, discarding any recorded failure. The
    shared lane keeps running (it is shut down at process exit). *)
