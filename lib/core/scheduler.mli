(** Background flush/compaction scheduler: multi-worker lane with a
    deterministic commit sequencer.

    Background jobs from all open dbs execute on one process-wide
    [Lsm_util.Domain_pool], grown to the largest [workers] any open db
    requested. Each db owns a [t] that dispatches up to [workers] of its
    jobs concurrently — but only jobs whose {!key}s do not conflict —
    and applies their version edits strictly in commit order: a job's
    [execute] phase returns a commit thunk, and a thunk that finishes
    out of order parks until every earlier ticket has committed. Commit
    order is ordinarily submission order, except that submissions made
    from inside the post-commit hook are sequenced at the head of the
    uncommitted queue (see {!set_on_commit}). With [workers = 1] this
    degenerates to the strict FIFO lane of PR 4.

    Conflict relation: jobs at the same level conflict; jobs at adjacent
    levels conflict iff their key ranges overlap; [Flush] is a
    full-range job at level -1 (serializes with flushes and L0
    compactions); [Maintenance] conflicts with everything.

    Failure: the first exception (from an execute phase or a commit
    thunk) latches, and every ticket behind the failing one in commit
    order is discarded — its
    parked edit is dropped rather than applied over the failure — while
    earlier tickets commit normally. Discarded tickets still drain, so
    {!quiesce} and {!shutdown} never deadlock on parked edits.

    Lock rank: [Rank.scheduler]. Commit thunks and the post-commit hook
    run with no scheduler lock held. *)

type t

type key =
  | Flush  (** memtable flush: full key range at pseudo-level -1 *)
  | Compact of { level : int; lo : string; hi : string }
      (** compaction sourced at [level], touching [level] and
          [level + 1] within the inclusive key range [lo..hi] *)
  | Maintenance  (** scrub or other serialized housekeeping *)

val create : ?workers:int -> ?cmp:(string -> string -> int) -> ?stats:Stats.t -> unit -> t
(** New per-db scheduler, sharing (and on first call creating, or
    growing to [workers]) the process-wide background lane. [cmp]
    orders user keys for the conflict relation (default bytewise).
    [stats] receives per-worker counters and sequencer histograms
    ({!Stats.provision_workers} is called with [workers]).
    @raise Invalid_argument if [workers < 1]. *)

val workers : t -> int
(** The concurrency cap this scheduler was created with. *)

val submit : t -> key:key -> input_bytes:int -> execute:(unit -> unit -> unit) -> unit
(** Queue a two-phase job; returns immediately. [execute ()] runs on a
    pool worker (concurrently with non-conflicting jobs) and returns
    the commit thunk, which the sequencer runs in commit order.
    Ordinary submissions append to the commit order; submissions made
    from inside the post-commit hook are front-inserted right after the
    commit that triggered them, ahead of already-queued tickets —
    overtaking is sound only because the overtaken tickets (flushes,
    maintenance) have version-independent effects. [input_bytes] feeds
    {!unapplied_bytes} (backpressure debt) and the per-worker
    bytes-moved counter until the ticket commits. Re-raises a
    previously recorded background failure before queueing. *)

val enqueue : t -> (unit -> unit) -> unit
(** [submit] of a [Maintenance] job that does all its work in the
    execute phase and commits nothing. *)

val set_on_commit : t -> (unit -> unit) -> unit
(** Install the post-commit hook, run by the sequencer after every
    successful commit with no scheduler lock held. This is where the db
    picks follow-up compactions: picks made here observe version edits
    in commit order, and {!submit} calls from inside the hook are
    sequenced at the commit head (before every already-queued ticket),
    which makes the pick sequence — and therefore the whole tree
    evolution — independent of the worker count and identical to the
    inline scheduler's synchronous cascade. The hook may call
    {!submit}/{!conflicts_pending}. An exception from the hook latches
    as a failure and discards everything still queued. *)

val conflicts_pending : ?ignore_flush:bool -> t -> key -> bool
(** Would a job with this key conflict with any uncommitted ticket?
    Used by the pick hook to stop picking (rather than skip ahead) when
    the canonical next compaction overlaps in-flight work.
    [~ignore_flush:true] skips pending [Flush] tickets: a flush's edit
    only adds a brand-new L0 run, so it never invalidates a pick's
    captured inputs — refusing on it would defer L0 compaction
    indefinitely under sustained ingest (the writer keeps one flush in
    flight almost always) and leave a backlog whose eventual shape
    depends on timing. The dispatch-level Flush/Compact-L0 conflict is
    unaffected: execution still serializes, only the pick decision
    looks through flushes. *)

val pending : t -> int
(** Tickets enqueued but not yet committed (queued, running, parked,
    or discarded-but-undrained). *)

val unapplied_bytes : t -> int
(** Sum of [input_bytes] over uncommitted tickets — the
    enqueued-but-unapplied component of byte-denominated backpressure
    debt. *)

val wait_until : t -> (pending:int -> unapplied_bytes:int -> bool) -> unit
(** Block until [pred ~pending ~unapplied_bytes] holds. [pred] is
    called under the scheduler lock on every commit — it must not
    acquire ordered mutexes of rank <= [Rank.scheduler]. Returns
    (rather than hanging) when the scheduler drains or a job fails with
    the predicate still false; failures re-raise. *)

val quiesce : t -> unit
(** Wait until every ticket has committed (or been discarded) and the
    sequencer is idle, then re-raise any recorded failure. *)

val take_failure : t -> exn option
(** Remove and return the parked background failure, if any — the
    fail-safe resume path ([Db.try_resume]) clears the latch without
    re-raising. *)

val shutdown : t -> unit
(** Wait for every ticket to drain, discarding any recorded failure.
    The shared lane keeps running (it is shut down at process exit). *)
