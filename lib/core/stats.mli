(** Engine statistics: the measurable quantities every experiment reports.

    The device already attributes page I/O by class; this record adds the
    engine-level counters (user bytes for write-amp, probe counts for
    read-amp, filter effectiveness, stall bursts, tombstone latency). *)

type worker = {
  mutable w_jobs : int;  (** background jobs executed on this worker slot *)
  mutable w_busy_ns : int;
      (** wall-clock nanoseconds the slot spent inside job execution —
          divide by elapsed wall time for per-worker utilization *)
  mutable w_bytes : int;  (** input bytes moved by the slot's jobs *)
}
(** Per-worker-slot counters for the multi-worker compaction lane. A
    "slot" is a logical scheduler worker (0 .. compaction_workers-1),
    not a fixed domain: the lane assigns the lowest free slot at
    dispatch, so slot 0 saturates first and the tail slots light up
    only when jobs genuinely overlap. *)

type t = {
  mutable user_puts : int;
  mutable user_deletes : int;
  mutable user_gets : int;
  mutable user_scans : int;
  mutable user_bytes_ingested : int;  (** logical key+value bytes from puts *)
  mutable gets_found : int;
  mutable runs_probed : int;  (** sorted runs consulted across all gets *)
  mutable filter_negatives : int;  (** run probes skipped by a point filter *)
  mutable filter_false_positives : int;
      (** filter said maybe, run had no visible entry *)
  mutable range_filter_skips : int;
  mutable flushes : int;
  mutable compactions : int;
  mutable trivial_moves : int;
      (** files relocated down without rewriting (no I/O) *)
  mutable compaction_bytes_read : int;
  mutable compaction_bytes_written : int;
  mutable compaction_wall_ns : int;
      (** wall-clock nanoseconds spent inside merge execution (all
          subcompactions of a merge count once, by the slowest) *)
  mutable subcompactions : int;
      (** parallel key-range partitions executed across all compactions;
          equals [compactions] when running serially *)
  mutable write_stalls : int;
      (** writes that had to wait for a synchronous flush *)
  mutable write_slowdowns : int;
      (** background backpressure: writes delayed by the bounded
          slowdown sleep ([write_slowdown_trigger]) *)
  mutable write_stops : int;
      (** background backpressure: writes that blocked on the scheduler
          condition variable ([write_stop_trigger]) *)
  mutable corruptions_detected : int;
      (** typed [Corruption] errors surfaced by reads, scrubs, or recovery *)
  mutable tables_quarantined : int;
      (** SSTs fenced off after a corruption (reads over their range fail
          loudly instead of silently serving older versions) *)
  mutable failsafe_entries : int;
      (** transitions into fail-safe read-only mode (background flush or
          compaction failed and the latch tripped) *)
  mutable resumes : int;  (** successful [Db.try_resume] calls *)
  mutable scrub_runs : int;  (** completed [Db.verify_integrity] passes *)
  mutable scrub_errors : int;  (** defects found across all scrub passes *)
  mutable scrub_runs_scheduled : int;
      (** scrub passes kicked off by [Config.scrub_interval] (a subset of
          [scrub_runs] once they complete) *)
  mutable ecc_repairs : int;
      (** pages reconstructed in place from the Reed–Solomon parity
          section — reads served and rot healed instead of quarantined *)
  mutable ecc_unrecoverable : int;
      (** ECC repair attempts that failed (rot beyond the per-stripe
          parity budget); the normal quarantine path took over *)
  ecc_repair_ns : Lsm_util.Histogram.t;
      (** wall-clock nanoseconds per successful in-place ECC repair
          (reconstruction + patch + re-read) *)
  stall_burst_bytes : Lsm_util.Histogram.t;
      (** bytes of flush+compaction work performed synchronously inside a
          user write — the latency-spike proxy (§2.2.3, SILK) *)
  compaction_burst_bytes : Lsm_util.Histogram.t;
      (** bytes moved per compaction: the I/O burst distribution (E5) *)
  get_run_probes : Lsm_util.Histogram.t;  (** runs probed per get (read amp) *)
  write_latency_ns : Lsm_util.Histogram.t;
      (** foreground wall-clock nanoseconds per [Db.write]/[apply_batch]
          call, including any backpressure delay — the tail-latency
          measure the [--stall] bench reports (p50/p99/p999) *)
  slowdown_delay_ns : Lsm_util.Histogram.t;
      (** nanoseconds of proportional backpressure delay injected per
          slowed-down write (between the slowdown and stop triggers the
          delay ramps linearly with compaction debt) *)
  mutable sched_workers : worker array;
      (** one entry per scheduler worker slot; sized by the scheduler at
          creation ([[||]] until a background lane attaches) *)
  mutable sched_edits_parked : int;
      (** background jobs that finished out of enqueue order and had to
          park their version edit until the commit sequencer reached
          them — the price of out-of-order execution *)
  sched_queue_depth : Lsm_util.Histogram.t;
      (** uncommitted scheduler tickets observed at each enqueue (gauge
          sampled on the producer side) *)
  sched_parked_edits : Lsm_util.Histogram.t;
      (** parked (finished-but-uncommitted) edits observed at each park
          event — how far ahead of the sequencer the workers run *)
}

val create : unit -> t
val clear : t -> unit

val provision_workers : t -> int -> unit
(** (Re)size [sched_workers] to [n] zeroed slots. Called by the
    scheduler when a lane attaches; idempotent for a same-size lane. *)

val write_amp_engine : t -> float
(** (flush+compaction bytes written) / user bytes — the engine-level WA. *)

val avg_probes_per_get : t -> float
val pp : Format.formatter -> t -> unit
