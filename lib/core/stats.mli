(** Engine statistics: the measurable quantities every experiment reports.

    The device already attributes page I/O by class; this record adds the
    engine-level counters (user bytes for write-amp, probe counts for
    read-amp, filter effectiveness, stall bursts, tombstone latency). *)

type t = {
  mutable user_puts : int;
  mutable user_deletes : int;
  mutable user_gets : int;
  mutable user_scans : int;
  mutable user_bytes_ingested : int;  (** logical key+value bytes from puts *)
  mutable gets_found : int;
  mutable runs_probed : int;  (** sorted runs consulted across all gets *)
  mutable filter_negatives : int;  (** run probes skipped by a point filter *)
  mutable filter_false_positives : int;
      (** filter said maybe, run had no visible entry *)
  mutable range_filter_skips : int;
  mutable flushes : int;
  mutable compactions : int;
  mutable trivial_moves : int;
      (** files relocated down without rewriting (no I/O) *)
  mutable compaction_bytes_read : int;
  mutable compaction_bytes_written : int;
  mutable compaction_wall_ns : int;
      (** wall-clock nanoseconds spent inside merge execution (all
          subcompactions of a merge count once, by the slowest) *)
  mutable subcompactions : int;
      (** parallel key-range partitions executed across all compactions;
          equals [compactions] when running serially *)
  mutable write_stalls : int;
      (** writes that had to wait for a synchronous flush *)
  mutable write_slowdowns : int;
      (** background backpressure: writes delayed by the bounded
          slowdown sleep ([write_slowdown_trigger]) *)
  mutable write_stops : int;
      (** background backpressure: writes that blocked on the scheduler
          condition variable ([write_stop_trigger]) *)
  mutable corruptions_detected : int;
      (** typed [Corruption] errors surfaced by reads, scrubs, or recovery *)
  mutable tables_quarantined : int;
      (** SSTs fenced off after a corruption (reads over their range fail
          loudly instead of silently serving older versions) *)
  mutable failsafe_entries : int;
      (** transitions into fail-safe read-only mode (background flush or
          compaction failed and the latch tripped) *)
  mutable resumes : int;  (** successful [Db.try_resume] calls *)
  mutable scrub_runs : int;  (** completed [Db.verify_integrity] passes *)
  mutable scrub_errors : int;  (** defects found across all scrub passes *)
  stall_burst_bytes : Lsm_util.Histogram.t;
      (** bytes of flush+compaction work performed synchronously inside a
          user write — the latency-spike proxy (§2.2.3, SILK) *)
  compaction_burst_bytes : Lsm_util.Histogram.t;
      (** bytes moved per compaction: the I/O burst distribution (E5) *)
  get_run_probes : Lsm_util.Histogram.t;  (** runs probed per get (read amp) *)
  write_latency_ns : Lsm_util.Histogram.t;
      (** foreground wall-clock nanoseconds per [Db.write]/[apply_batch]
          call, including any backpressure delay — the tail-latency
          measure the [--stall] bench reports (p50/p99/p999) *)
  slowdown_delay_ns : Lsm_util.Histogram.t;
      (** nanoseconds of proportional backpressure delay injected per
          slowed-down write (between the slowdown and stop triggers the
          delay ramps linearly with compaction debt) *)
}

val create : unit -> t
val clear : t -> unit

val write_amp_engine : t -> float
(** (flush+compaction bytes written) / user bytes — the engine-level WA. *)

val avg_probes_per_get : t -> float
val pp : Format.formatter -> t -> unit
