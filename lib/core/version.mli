(** The tree shape: which files live in which sorted run of which level.

    - Level 0 holds one single-file run per flush; runs may overlap.
    - Levels >= 1 hold up to [run_cap] runs (per the layout); each run is
      a key-ordered list of non-overlapping files.
    - Run recency: within a level, higher [group] ids are newer. The LSM
      invariant (§2.1.1.E) — shallower/newer data shadows deeper/older —
      is exactly (level asc, group desc) probe order.

    A version is a persistent value; {!apply} returns a new version, so
    iterators and in-flight reads keep a coherent snapshot of the shape. *)

module Table_meta = Lsm_sstable.Table_meta

type run = { group : int; files : Table_meta.t list (* key-ascending *) }
type level = run list (* newest group first *)

type t = {
  levels : level array;  (** index 0 = level 0; fixed max depth, sparse *)
  next_file_id : int;
  next_group : int;
  last_seqno : int;
}

val max_levels : int
val empty : t

type edit = {
  added : (int * int * Table_meta.t) list;  (** (level, group, meta) *)
  removed : int list;  (** file ids *)
  seqno_watermark : int;
}

val apply : t -> edit -> t
(** Applies removals then additions; bumps [next_file_id]/[next_group]
    past any ids seen; raises [Invalid_argument] on unknown removed ids. *)

(** {1 Queries} *)

val level_runs : t -> int -> run list
val run_count : t -> int -> int
val level_bytes : t -> int -> int
val level_entries : t -> int -> int

val runs_key_range : cmp:Lsm_util.Comparator.t -> run list -> (string * string) option
(** Inclusive [lo, hi] key span of every file in the runs, or [None]
    when the runs are empty — the key-range half of the scheduler's
    compaction conflict keys. *)

val last_level : t -> int
(** Deepest non-empty level; 0 when the tree is empty. *)

val file_count : t -> int
val total_bytes : t -> int
val all_files : t -> Table_meta.t list
val find_file : t -> int -> (int * int * Table_meta.t) option
(** [find_file t id] = (level, group, meta). *)

val runs_overlapping :
  cmp:Lsm_util.Comparator.t -> lo:string -> hi:string option -> t ->
  (int * run) list
(** All (level, run) pairs possibly intersecting the key range, in probe
    order (level asc, newest run first). [hi = None] = unbounded. *)

val files_of_run_overlapping :
  cmp:Lsm_util.Comparator.t -> lo:string -> hi:string option -> run ->
  Table_meta.t list

val check_invariants : cmp:Lsm_util.Comparator.t -> t -> (unit, string) result
(** Structural soundness: runs internally non-overlapping and sorted;
    no duplicate file ids. Used by tests and the paranoid mode. *)

(** {1 Lifetime pinning}

    Versions are persistent values, but the [.sst] files they reference
    are deleted after compaction. With a background scheduler a reader
    can hold a version across an install, so deletion is deferred: the
    registry numbers installs with a sequence, readers {!Pins.pin} the
    current sequence, and a deletion deferred after install [d] runs
    only once no pin older than [d] remains. In inline mode the
    registry is bypassed entirely (deletions stay eager). *)
module Pins : sig
  type registry
  type pin

  val create_registry : unit -> registry

  val advance : registry -> unit
  (** Record that a new version was installed. Call after every
      [install_edit] (under the serialized maintenance lane). *)

  val pin : registry -> pin
  (** Pin the currently installed version. *)

  val unpin : pin -> unit
  (** Drop the pin; runs any deferred deletions it was blocking (on the
      calling domain, outside the registry lock). *)

  val with_pin : registry -> (unit -> 'a) -> 'a

  val defer : registry -> (unit -> unit) -> unit
  (** [defer reg delete] — run [delete] once every pin taken before the
      latest {!advance} has dropped; immediately if none is live. *)

  val deferred_count : registry -> int
  (** Deletions still waiting on a pin (observability / tests). *)

  val drain : registry -> unit
  (** Run every deferred deletion unconditionally. Only sound once no
      reader can touch the files again (db close). *)
end

(** {1 Manifest encoding} *)

val encode_edit : Buffer.t -> edit -> unit
val decode_edit : Lsm_util.Codec.reader -> edit
val pp : Format.formatter -> t -> unit
