(* Background flush/compaction scheduler.

   One process-wide background lane — a singleton [Domain_pool] of one
   worker — serializes every background job for every open db. A single
   lane (rather than a domain per db) keeps domain count bounded no
   matter how many dbs a process churns through (the crash harness opens
   hundreds without closing them), and the serialization is what makes
   background mode deterministic: jobs run in enqueue order, which is
   exactly the order the inline engine would have run the same work.

   Per-db state is a pending-job count (the scheduler's contribution to
   write backpressure debt), an idle condition the backpressure *stop*
   path waits on, and a sticky failure latch: a job that raises (e.g.
   [Device.Crashed] from fault injection) parks its exception here and
   the next foreground interaction re-raises it, so background mode
   reports I/O failures on the same API calls inline mode does.

   Module-level state (the lane) is on the lint R4 allowlist; see the
   rationale above. *)

module Ordered_mutex = Lsm_util.Ordered_mutex
module Domain_pool = Lsm_util.Domain_pool

(* The singleton lane, created on first Background open. [lazy] forcing
   is not domain-safe, so creation is guarded by a mutex of scheduler
   rank (nothing else is held when a db is opened). The lane is never
   shut down mid-process — workers idle on a condition — only at exit. *)
let lane_mutex = Ordered_mutex.create ~rank:Ordered_mutex.Rank.scheduler ~name:"scheduler.lane"
let lane = ref None

let get_lane () =
  Ordered_mutex.with_lock lane_mutex @@ fun () ->
  match !lane with
  | Some pool -> pool
  | None ->
    let pool = Domain_pool.create ~size:1 in
    lane := Some pool;
    at_exit (fun () -> Domain_pool.shutdown pool);
    pool

type t = {
  m : Ordered_mutex.t;
  idle : Condition.t; (* broadcast on every job completion *)
  pool : Domain_pool.t;
  mutable pending : int;
  mutable failed : exn option;
}

let create () =
  {
    m = Ordered_mutex.create ~rank:Ordered_mutex.Rank.scheduler ~name:"scheduler";
    idle = Condition.create ();
    pool = get_lane ();
    pending = 0;
    failed = None;
  }

let pending t = Ordered_mutex.with_lock t.m (fun () -> t.pending)

let take_failure t =
  Ordered_mutex.with_lock t.m (fun () ->
      match t.failed with
      | Some e ->
        t.failed <- None;
        Some e
      | None -> None)

let raise_if_failed t = match take_failure t with Some e -> raise e | None -> ()

let enqueue t job =
  raise_if_failed t;
  Ordered_mutex.with_lock t.m (fun () -> t.pending <- t.pending + 1);
  (* Submitted outside [t.m]: the pool's queue lock ranks above
     [scheduler], and only the owning db's writer enqueues, so dropping
     the lock between the increment and the submit cannot reorder jobs. *)
  ignore
    (Domain_pool.submit t.pool (fun () ->
         let failure = match job () with () -> None | exception e -> Some e in
         Ordered_mutex.with_lock t.m (fun () ->
             (match (failure, t.failed) with
             | Some e, None -> t.failed <- Some e
             | _ -> ());
             t.pending <- t.pending - 1;
             Condition.broadcast t.idle)))

(* Backpressure stop: block until [pred ~pending] (called with [t.m]
   held) turns true. The loop also exits when the scheduler drains
   completely or a job has failed — in either case nothing further will
   change the predicate's inputs, so waiting on would deadlock. *)
let wait_until t pred =
  Ordered_mutex.with_lock t.m (fun () ->
      while
        (not (pred ~pending:t.pending))
        && t.pending > 0
        && match t.failed with Some _ -> false | None -> true
      do
        Ordered_mutex.wait t.idle t.m
      done);
  raise_if_failed t

let quiesce t =
  Ordered_mutex.with_lock t.m (fun () ->
      while t.pending > 0 do
        Ordered_mutex.wait t.idle t.m
      done);
  raise_if_failed t

(* Close path: drain without raising (close must succeed even after a
   planned crash) — the failure latch is cleared, not reported. *)
let shutdown t =
  Ordered_mutex.with_lock t.m (fun () ->
      while t.pending > 0 do
        Ordered_mutex.wait t.idle t.m
      done;
      t.failed <- None)
