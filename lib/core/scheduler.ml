(* Background flush/compaction scheduler: a multi-worker lane with a
   commit sequencer.

   One process-wide background lane — a singleton [Domain_pool], grown
   to the largest [workers] any open db asked for — executes background
   jobs for every open db. A single shared pool (rather than domains per
   db) keeps domain count bounded no matter how many dbs a process
   churns through (the crash harness opens hundreds without closing
   them).

   Determinism no longer comes from serial execution; it comes from
   splitting every job into two phases:

     execute : unit -> (unit -> unit)

   The heavy phase (merge I/O, run writing) runs on any pool worker,
   concurrently with other non-conflicting jobs. It returns a *commit
   thunk* — the version-edit installation — which the scheduler applies
   strictly in commit order: a job that finishes out of order parks its
   thunk until every earlier ticket has committed.

   Commit order is an explicit ticket list, not submission time: the
   writer's submissions append, but submissions made from inside the
   post-commit hook insert at the head of the uncommitted queue, right
   after the ticket that just committed. That is what makes the edit
   sequence worker-count-independent *and* identical to the inline
   scheduler: inline runs its compaction cascade synchronously at each
   flush point, before the next flush, so a background pick made at a
   flush's commit must also apply before any flush that happens to be
   queued behind it. Front-insertion is sound because the only tickets
   it overtakes are flushes (and maintenance), whose effect does not
   depend on the version: a flush's edit adds a brand-new L0 run and
   its group id is allocated at commit time, in commit order.

   Two jobs may run concurrently only if their keys do not conflict:
   jobs at the same level always conflict, jobs at adjacent levels
   conflict when their key ranges overlap, and a [Flush] behaves as a
   full-range job at level -1 (so flushes serialize with each other and
   with L0 compactions, but run alongside deeper merges). [Maintenance]
   jobs (scrubs) conflict with everything — they were serialized on the
   old lane and stay that way.

   The commit sequencer is driven by a committer token: the worker that
   completes the ticket at the commit head takes the token, drains every
   consecutively-parked thunk (releasing the scheduler lock around each
   commit — commits acquire engine locks of lower rank), runs the
   owner's post-commit hook (the compaction picker), and drops the token
   when the head is no longer ready.

   Failure semantics: the first exception latches, exactly as on the old
   lane; in addition every ticket behind the failing one in commit order
   is discarded — its parked edit is dropped, not applied over a latched
   failure — while earlier tickets commit normally. Discarded tickets
   still drain through the sequencer, so [quiesce]/[shutdown] cannot
   deadlock on a parked edit.

   Module-level state (the lane) is on the lint R4 allowlist; see the
   rationale above. *)

module Ordered_mutex = Lsm_util.Ordered_mutex
module Domain_pool = Lsm_util.Domain_pool
module Histogram = Lsm_util.Histogram

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* The singleton lane, created on first Background open and grown when a
   db asks for more workers than it has. [lazy] forcing is not
   domain-safe, so creation is guarded by a mutex of scheduler rank
   (nothing else is held when a db is opened). The lane is never shut
   down mid-process — workers idle on a condition — only at exit. *)
let lane_mutex = Ordered_mutex.create ~rank:Ordered_mutex.Rank.scheduler ~name:"scheduler.lane"
let lane = ref None

let get_lane ~min_size () =
  Ordered_mutex.with_lock lane_mutex @@ fun () ->
  match !lane with
  | Some pool ->
    Domain_pool.ensure_size pool min_size;
    pool
  | None ->
    let pool = Domain_pool.create ~size:min_size in
    lane := Some pool;
    at_exit (fun () -> Domain_pool.shutdown pool);
    pool

type key =
  | Flush
  | Compact of { level : int; lo : string; hi : string }
  | Maintenance

type state =
  | Queued
  | Running of int (* worker slot *)
  | Parked of (unit -> unit) (* finished out of order; commit thunk waits its turn *)
  | Discarded (* predecessor failed; the edit must never be applied *)

type ticket = {
  key : key;
  input_bytes : int;
  execute : unit -> unit -> unit;
  mutable state : state;
  mutable doomed : bool; (* set when an earlier ticket failed while this one ran *)
}

type t = {
  m : Ordered_mutex.t;
  idle : Condition.t; (* broadcast on every commit-head advance and token drop *)
  pool : Domain_pool.t;
  workers : int;
  cmp : string -> string -> int;
  stats : Stats.t;
  mutable order : ticket list; (* uncommitted tickets, commit order, head first *)
  mutable running : int;
  slots : bool array; (* per-worker-slot busy flags *)
  mutable committing : bool; (* committer token *)
  mutable unapplied : int; (* input bytes of uncommitted tickets (backpressure debt) *)
  mutable failed : exn option;
  mutable on_commit : unit -> unit;
  mutable hook_domain : Domain.id option; (* committer domain while the hook runs *)
  mutable hook_pos : int; (* insertion cursor for submissions from the hook *)
}

let create ?(workers = 1) ?(cmp = String.compare) ?stats () =
  if workers < 1 then invalid_arg "Scheduler.create: workers < 1";
  let stats = match stats with Some s -> s | None -> Stats.create () in
  Stats.provision_workers stats workers;
  {
    m = Ordered_mutex.create ~rank:Ordered_mutex.Rank.scheduler ~name:"scheduler";
    idle = Condition.create ();
    pool = get_lane ~min_size:workers ();
    workers;
    cmp;
    stats;
    order = [];
    running = 0;
    slots = Array.make workers false;
    committing = false;
    unapplied = 0;
    failed = None;
    on_commit = (fun () -> ());
    hook_domain = None;
    hook_pos = 0;
  }

let workers t = t.workers
let set_on_commit t f = t.on_commit <- f

let ranges_overlap cmp (lo1, hi1) (lo2, hi2) = cmp lo1 hi2 <= 0 && cmp lo2 hi1 <= 0

(* Conflict relation: same level always conflicts; adjacent levels
   conflict iff the key ranges overlap (a merge touches its source level
   and the next one, so level-disjointness by >= 2 guarantees disjoint
   file sets). A flush is a full-range job at level -1: it conflicts
   with other flushes and with any L0 compaction. *)
let conflicts cmp a b =
  match (a, b) with
  | Maintenance, _ | _, Maintenance -> true
  | Flush, Flush -> true
  | Flush, Compact { level; _ } | Compact { level; _ }, Flush -> level = 0
  | Compact ca, Compact cb ->
    ca.level = cb.level
    || (abs (ca.level - cb.level) = 1 && ranges_overlap cmp (ca.lo, ca.hi) (cb.lo, cb.hi))

let is_discarded tk = match tk.state with Discarded -> true | _ -> false

let parked_count_locked t =
  List.fold_left
    (fun n tk -> match tk.state with Parked _ -> n + 1 | _ -> n)
    0 t.order

let latch_locked t e = match t.failed with None -> t.failed <- Some e | Some _ -> ()

let doom tk =
  tk.doomed <- true;
  match tk.state with
  | Queued | Parked _ -> tk.state <- Discarded
  | Running _ | Discarded -> ()

(* First failure: latch it, and doom every ticket behind the failing one
   in commit order. Queued and parked successors flip to [Discarded]
   immediately; running ones carry the [doomed] mark and discard
   themselves on completion. *)
let fail_locked t tk e =
  latch_locked t e;
  tk.state <- Discarded;
  let rec after = function
    | [] -> ()
    | x :: rest -> if x == tk then List.iter doom rest else after rest
  in
  after t.order;
  Condition.broadcast t.idle

let retire_locked t tk =
  (match t.order with
  | head :: rest when head == tk -> t.order <- rest
  | _ -> t.order <- List.filter (fun x -> x != tk) t.order);
  t.unapplied <- t.unapplied - tk.input_bytes;
  Condition.broadcast t.idle

let take_slot_locked t =
  let rec go i =
    if t.slots.(i) then go (i + 1)
    else begin
      t.slots.(i) <- true;
      i
    end
  in
  go 0

(* A queued ticket may dispatch only when no earlier undiscarded ticket
   in commit order conflicts with it: its inputs were captured against
   the version as of its submission point, which is valid exactly until
   a conflicting predecessor rewrites the overlapping levels. *)
let rec dispatch_locked t =
  if t.running < t.workers then begin
    let rec find seen = function
      | [] -> None
      | tk :: rest ->
        if is_discarded tk then find seen rest
        else if
          (match tk.state with Queued -> true | _ -> false)
          && not (List.exists (fun k -> conflicts t.cmp k tk.key) seen)
        then Some tk
        else find (tk.key :: seen) rest
    in
    match find [] t.order with
    | None -> ()
    | Some tk ->
      let slot = take_slot_locked t in
      tk.state <- Running slot;
      t.running <- t.running + 1;
      ignore (Domain_pool.submit t.pool (fun () -> run_ticket t tk slot));
      dispatch_locked t
  end

and run_ticket t tk slot =
  let t0 = now_ns () in
  let outcome = match tk.execute () with commit -> Ok commit | exception e -> Error e in
  let busy = now_ns () - t0 in
  let become_committer =
    Ordered_mutex.with_lock t.m (fun () ->
        t.slots.(slot) <- false;
        t.running <- t.running - 1;
        (if slot < Array.length t.stats.Stats.sched_workers then begin
           let w = t.stats.Stats.sched_workers.(slot) in
           w.Stats.w_jobs <- w.Stats.w_jobs + 1;
           w.Stats.w_busy_ns <- w.Stats.w_busy_ns + busy;
           w.Stats.w_bytes <- w.Stats.w_bytes + tk.input_bytes
         end);
        (match outcome with
        | Ok commit ->
          if tk.doomed then tk.state <- Discarded
          else begin
            tk.state <- Parked commit;
            (match t.order with
            | head :: _ when head != tk ->
              t.stats.Stats.sched_edits_parked <- t.stats.Stats.sched_edits_parked + 1;
              Histogram.add t.stats.Stats.sched_parked_edits (parked_count_locked t)
            | _ -> ())
          end
        | Error e -> fail_locked t tk e);
        dispatch_locked t;
        if (not t.committing) && head_ready_locked t then begin
          t.committing <- true;
          true
        end
        else false)
  in
  if become_committer then committer_loop t

and head_ready_locked t =
  match t.order with
  | { state = Parked _ | Discarded; _ } :: _ -> true
  | _ -> false

(* The committer drains the head: skip discarded tickets, apply parked
   commit thunks in commit order, run the owner's post-commit hook
   (which picks and front-inserts follow-up compactions), and drop the
   token once the head is queued/running/absent. Commit thunks and the
   hook run with no scheduler lock held — they acquire engine locks of
   lower rank (buffers, version pins, table cache, device). While the
   hook runs, [hook_domain]/[hook_pos] mark the committer so that
   [submit] can recognize hook submissions and sequence them at the
   front; only the token holder runs hooks, so the mark is exclusive. *)
and committer_loop t =
  let action =
    Ordered_mutex.with_lock t.m (fun () ->
        let rec skip () =
          match t.order with
          | ({ state = Discarded; _ } as tk) :: _ ->
            retire_locked t tk;
            skip ()
          | ({ state = Parked commit; _ } as tk) :: _ -> `Commit (tk, commit)
          | _ ->
            t.committing <- false;
            Condition.broadcast t.idle;
            `Stop
        in
        skip ())
  in
  match action with
  | `Stop -> ()
  | `Commit (tk, commit) ->
    (match commit () with
    | () ->
      Ordered_mutex.with_lock t.m (fun () ->
          retire_locked t tk;
          dispatch_locked t;
          t.hook_domain <- Some (Domain.self ());
          t.hook_pos <- 0);
      let hook_failure = match t.on_commit () with () -> None | exception e -> Some e in
      Ordered_mutex.with_lock t.m (fun () ->
          t.hook_domain <- None;
          match hook_failure with
          | None -> ()
          | Some e ->
            (* A failing pick hook poisons everything still queued: picks
               made against the pre-failure version may no longer be
               valid. *)
            latch_locked t e;
            List.iter doom t.order;
            Condition.broadcast t.idle)
    | exception e ->
      Ordered_mutex.with_lock t.m (fun () ->
          fail_locked t tk e;
          retire_locked t tk;
          dispatch_locked t));
    committer_loop t

let take_failure t =
  Ordered_mutex.with_lock t.m (fun () ->
      match t.failed with
      | Some e ->
        t.failed <- None;
        Some e
      | None -> None)

let raise_if_failed t = match take_failure t with Some e -> raise e | None -> ()

(* Submissions from the post-commit hook are sequenced at the insertion
   cursor — directly after the commit that triggered the pick, ahead of
   every already-queued ticket — and consecutive hook submissions keep
   their relative order. Everyone else appends. *)
let submit t ~key ~input_bytes ~execute =
  raise_if_failed t;
  Ordered_mutex.with_lock t.m (fun () ->
      let tk = { key; input_bytes; execute; state = Queued; doomed = false } in
      (match t.hook_domain with
      | Some d when d = Domain.self () ->
        let rec ins n l =
          if n <= 0 then tk :: l
          else match l with [] -> [ tk ] | x :: rest -> x :: ins (n - 1) rest
        in
        t.order <- ins t.hook_pos t.order;
        t.hook_pos <- t.hook_pos + 1
      | _ -> t.order <- t.order @ [ tk ]);
      t.unapplied <- t.unapplied + input_bytes;
      Histogram.add t.stats.Stats.sched_queue_depth (List.length t.order);
      dispatch_locked t)

let enqueue t job =
  submit t ~key:Maintenance ~input_bytes:0
    ~execute:
      (fun () ->
        job ();
        fun () -> ())

let conflicts_pending ?(ignore_flush = false) t key =
  Ordered_mutex.with_lock t.m (fun () ->
      List.exists
        (fun p ->
          (not (is_discarded p))
          && (not (ignore_flush && p.key = Flush))
          && conflicts t.cmp p.key key)
        t.order)

let pending t = Ordered_mutex.with_lock t.m (fun () -> List.length t.order)
let unapplied_bytes t = Ordered_mutex.with_lock t.m (fun () -> t.unapplied)

(* Backpressure stop: block until [pred] (called with [t.m] held) turns
   true. The loop also exits when the scheduler drains completely or a
   job has failed — in either case nothing further will change the
   predicate's inputs, so waiting on would deadlock. [committing] counts
   as not-drained: the post-commit hook may be about to enqueue. *)
let wait_until t pred =
  Ordered_mutex.with_lock t.m (fun () ->
      while
        (not (pred ~pending:(List.length t.order) ~unapplied_bytes:t.unapplied))
        && (t.order <> [] || t.committing)
        && match t.failed with Some _ -> false | None -> true
      do
        Ordered_mutex.wait t.idle t.m
      done);
  raise_if_failed t

let drain t =
  Ordered_mutex.with_lock t.m (fun () ->
      while t.order <> [] || t.committing do
        Ordered_mutex.wait t.idle t.m
      done)

let quiesce t =
  drain t;
  raise_if_failed t

(* Close path: drain without raising (close must succeed even after a
   planned crash) — the failure latch is cleared, not reported. *)
let shutdown t =
  drain t;
  Ordered_mutex.with_lock t.m (fun () -> t.failed <- None)
