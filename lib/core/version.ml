module Table_meta = Lsm_sstable.Table_meta
module Codec = Lsm_util.Codec
module Comparator = Lsm_util.Comparator

type run = { group : int; files : Table_meta.t list }
type level = run list

type t = {
  levels : level array;
  next_file_id : int;
  next_group : int;
  last_seqno : int;
}

let max_levels = 12

let empty = { levels = Array.make max_levels []; next_file_id = 1; next_group = 1; last_seqno = 0 }

type edit = {
  added : (int * int * Table_meta.t) list;
  removed : int list;
  seqno_watermark : int;
}

let apply t edit =
  let levels = Array.map (fun l -> l) t.levels in
  (* Removals. *)
  List.iter
    (fun fid ->
      let found = ref false in
      Array.iteri
        (fun li runs ->
          let runs' =
            List.filter_map
              (fun r ->
                let files =
                  List.filter
                    (fun (f : Table_meta.t) ->
                      if f.file_id = fid then begin
                        found := true;
                        false
                      end
                      else true)
                    r.files
                in
                if files = [] then None else Some { r with files })
              runs
          in
          levels.(li) <- runs')
        levels;
      if not !found then invalid_arg (Printf.sprintf "Version.apply: unknown file id %d" fid))
    edit.removed;
  (* Additions, grouped into runs. *)
  List.iter
    (fun (li, group, meta) ->
      if li < 0 || li >= max_levels then invalid_arg "Version.apply: level out of range";
      let runs = levels.(li) in
      let rec insert = function
        | [] -> [ { group; files = [ meta ] } ]
        | r :: rest when r.group = group ->
          let files =
            List.sort
              (fun (a : Table_meta.t) (b : Table_meta.t) -> String.compare a.min_key b.min_key)
              (meta :: r.files)
          in
          { r with files } :: rest
        | r :: rest when r.group < group -> { group; files = [ meta ] } :: r :: rest
        | r :: rest -> r :: insert rest
      in
      levels.(li) <- insert runs)
    edit.added;
  let max_added_id =
    List.fold_left (fun acc (_, _, (m : Table_meta.t)) -> max acc m.file_id) 0 edit.added
  in
  let max_added_group = List.fold_left (fun acc (_, g, _) -> max acc g) 0 edit.added in
  {
    levels;
    next_file_id = max t.next_file_id (max_added_id + 1);
    next_group = max t.next_group (max_added_group + 1);
    last_seqno = max t.last_seqno edit.seqno_watermark;
  }

let level_runs t l = if l < 0 || l >= max_levels then [] else t.levels.(l)
let run_count t l = List.length (level_runs t l)

let level_bytes t l =
  List.fold_left
    (fun acc r -> List.fold_left (fun a (f : Table_meta.t) -> a + f.size) acc r.files)
    0 (level_runs t l)

(* Inclusive key span of a set of runs — the scheduler's conflict
   relation keys compaction jobs by the span of their captured inputs.
   [None] when the runs hold no files. *)
let runs_key_range ~cmp runs =
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc (f : Table_meta.t) ->
          match acc with
          | None -> Some (f.min_key, f.max_key)
          | Some (lo, hi) ->
            Some (Comparator.min_key cmp lo f.min_key, Comparator.max_key cmp hi f.max_key))
        acc r.files)
    None runs

let level_entries t l =
  List.fold_left
    (fun acc r -> List.fold_left (fun a (f : Table_meta.t) -> a + f.entries) acc r.files)
    0 (level_runs t l)

let last_level t =
  let rec loop l = if l <= 0 then 0 else if t.levels.(l) <> [] then l else loop (l - 1) in
  loop (max_levels - 1)

let all_files t =
  Array.to_list t.levels
  |> List.concat_map (fun runs -> List.concat_map (fun r -> r.files) runs)

let file_count t = List.length (all_files t)
let total_bytes t = List.fold_left (fun acc (f : Table_meta.t) -> acc + f.size) 0 (all_files t)

let find_file t fid =
  let result = ref None in
  Array.iteri
    (fun li runs ->
      List.iter
        (fun r ->
          List.iter
            (fun (f : Table_meta.t) -> if f.file_id = fid then result := Some (li, r.group, f))
            r.files)
        runs)
    t.levels;
  !result

let files_of_run_overlapping ~cmp ~lo ~hi run =
  List.filter
    (fun (f : Table_meta.t) ->
      let above_lo = cmp.Comparator.compare lo f.max_key <= 0 in
      let below_hi =
        match hi with None -> true | Some hi -> cmp.Comparator.compare f.min_key hi < 0
      in
      above_lo && below_hi)
    run.files

let runs_overlapping ~cmp ~lo ~hi t =
  let out = ref [] in
  for l = max_levels - 1 downto 0 do
    List.iter
      (fun r ->
        if files_of_run_overlapping ~cmp ~lo ~hi r <> [] then out := (l, r) :: !out)
      (* keep newest-first order within the level *)
      (List.rev t.levels.(l))
  done;
  !out

let check_invariants ~cmp t =
  let seen = Hashtbl.create 64 in
  let err = ref None in
  let fail fmt = Format.kasprintf (fun s -> if !err = None then err := Some s) fmt in
  Array.iteri
    (fun li runs ->
      let last_group = ref max_int in
      List.iter
        (fun r ->
          if r.group >= !last_group then fail "level %d: run groups not newest-first" li;
          last_group := r.group;
          let rec check_sorted = function
            | (a : Table_meta.t) :: (b : Table_meta.t) :: rest ->
              if cmp.Comparator.compare a.max_key b.min_key >= 0 then
                fail "level %d group %d: files %d and %d overlap or misordered" li r.group
                  a.file_id b.file_id;
              check_sorted (b :: rest)
            | _ -> ()
          in
          check_sorted r.files;
          List.iter
            (fun (f : Table_meta.t) ->
              if Hashtbl.mem seen f.file_id then fail "duplicate file id %d" f.file_id;
              Hashtbl.replace seen f.file_id ();
              if cmp.Comparator.compare f.min_key f.max_key > 0 then
                fail "file %d: min_key > max_key" f.file_id)
            r.files)
        runs)
    t.levels;
  match !err with None -> Ok () | Some e -> Error e

let encode_edit b e =
  Codec.put_varint b (List.length e.added);
  List.iter
    (fun (l, g, m) ->
      Codec.put_varint b l;
      Codec.put_varint b g;
      Table_meta.encode b m)
    e.added;
  Codec.put_varint b (List.length e.removed);
  List.iter (Codec.put_varint b) e.removed;
  Codec.put_varint b e.seqno_watermark

let decode_edit r =
  let nadd = Codec.get_varint r in
  let added =
    List.init nadd (fun _ ->
        let l = Codec.get_varint r in
        let g = Codec.get_varint r in
        let m = Table_meta.decode r in
        (l, g, m))
  in
  let nrem = Codec.get_varint r in
  let removed = List.init nrem (fun _ -> Codec.get_varint r) in
  let seqno_watermark = Codec.get_varint r in
  { added; removed; seqno_watermark }

(* Version lifetime pinning.

   A version value itself is persistent, but the [.sst] files it points
   at are not: background compaction installs a new version and then
   wants the replaced files gone. A reader that grabbed [t.vers] just
   before the install may still be iterating those files, so deletion
   must wait for it. The registry numbers installed versions with a
   sequence; a pin taken while version [s] is current records [s], and a
   deletion deferred after installing version [d] runs once no pin with
   sequence [< d] remains ([min_pinned >= d]).

   Lock rank: [version_pins] (12) — above [db]'s id lock, below every
   I/O lock, so the deferred closures (device delete + cache evict)
   always run *outside* the registry lock. *)
module Pins = struct
  module Ordered_mutex = Lsm_util.Ordered_mutex

  type registry = {
    m : Ordered_mutex.t;
    pinned : (int, int) Hashtbl.t; (* version seq -> live pin count *)
    mutable seq : int; (* seq of the currently installed version *)
    mutable deferred : (int * (unit -> unit)) list; (* (needed seq, deletion) *)
  }

  type pin = { preg : registry; pseq : int }

  let create_registry () =
    {
      m = Ordered_mutex.create ~rank:Ordered_mutex.Rank.version_pins ~name:"version.pins";
      pinned = Hashtbl.create 8;
      seq = 0;
      deferred = [];
    }

  let advance reg = Ordered_mutex.with_lock reg.m (fun () -> reg.seq <- reg.seq + 1)

  (* max_int when nothing is pinned: every deferred deletion is runnable. *)
  let min_pinned_locked reg = Hashtbl.fold (fun s _ acc -> min s acc) reg.pinned max_int

  let runnable_locked reg =
    let mp = min_pinned_locked reg in
    let run, keep = List.partition (fun (d, _) -> mp >= d) reg.deferred in
    reg.deferred <- keep;
    (* [deferred] is newest-first; run oldest deletions first. *)
    List.rev_map snd run

  let pin reg =
    Ordered_mutex.with_lock reg.m (fun () ->
        let s = reg.seq in
        let c = match Hashtbl.find_opt reg.pinned s with Some c -> c | None -> 0 in
        Hashtbl.replace reg.pinned s (c + 1);
        { preg = reg; pseq = s })

  let unpin p =
    let reg = p.preg in
    let run =
      Ordered_mutex.with_lock reg.m (fun () ->
          (match Hashtbl.find_opt reg.pinned p.pseq with
          | Some c when c > 1 -> Hashtbl.replace reg.pinned p.pseq (c - 1)
          | Some _ -> Hashtbl.remove reg.pinned p.pseq
          | None -> ());
          runnable_locked reg)
    in
    List.iter (fun f -> f ()) run

  let defer reg f =
    let run =
      Ordered_mutex.with_lock reg.m (fun () ->
          let d = reg.seq in
          if min_pinned_locked reg >= d then [ f ]
          else begin
            reg.deferred <- (d, f) :: reg.deferred;
            []
          end)
    in
    List.iter (fun f -> f ()) run

  let deferred_count reg = Ordered_mutex.with_lock reg.m (fun () -> List.length reg.deferred)

  let drain reg =
    let run =
      Ordered_mutex.with_lock reg.m (fun () ->
          let fs = List.rev_map snd reg.deferred in
          reg.deferred <- [];
          fs)
    in
    List.iter (fun f -> f ()) run

  let with_pin reg f =
    let p = pin reg in
    Fun.protect ~finally:(fun () -> unpin p) f
end

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun li runs ->
      if runs <> [] then begin
        Format.fprintf ppf "L%d: %d runs, %d files, %d bytes@," li (List.length runs)
          (List.fold_left (fun a r -> a + List.length r.files) 0 runs)
          (level_bytes t li)
      end)
    t.levels;
  Format.fprintf ppf "@]"
