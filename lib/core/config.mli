(** Every tuning knob of the engine in one record — the paper's point is
    that these knobs {e are} the LSM design space (§2.3), so the full
    space is reachable from here: data layout, compaction primitives,
    buffer implementation and size, filter choice and memory, cache size,
    key-value separation threshold.

    Use {!default} and override fields:
    {[ { Config.default with compaction = Policy.tiered (); write_buffer_size = 1 lsl 20 } ]} *)

type backend =
  | Inline  (** flush/compaction run synchronously inside the triggering write *)
  | Background
      (** flush/compaction run as jobs on the process-wide scheduler lane;
          writes return after WAL+memtable and are throttled by
          backpressure instead of absorbing merge work *)

type t = {
  comparator : Lsm_util.Comparator.t;
  (* -- write path (§2.2.1) -- *)
  memtable : Lsm_memtable.Memtable.kind;
  write_buffer_size : int;  (** bytes buffered before rotation *)
  max_immutable_buffers : int;
      (** rotated buffers allowed to pile up before the writer must flush
          (absorbs ingestion bursts) *)
  wal_enabled : bool;
  wal_sync_every_write : bool;
  (* -- data layout & compaction (§2.2.2–§2.2.4) -- *)
  compaction : Lsm_compaction.Policy.t;
  level1_capacity : int;  (** bytes; level L holds [level1_capacity * T^(L-1)] *)
  target_file_size : int;  (** output files are cut at about this size *)
  (* -- sstable format -- *)
  block_size : int;
  restart_interval : int;
  compression : Lsm_sstable.Sstable.compression;
      (** per-block compression; trades CPU for device bytes (space and
          write amplification) *)
  (* -- read path (§2.1.3) -- *)
  filter : Lsm_filter.Point_filter.policy;
  monkey_filters : bool;
      (** allocate filter bits per level with Monkey instead of uniformly;
          uses [filter_memory_bits] as the total budget *)
  filter_memory_bits : int;
      (** total filter memory budget (bits), only meaningful with
          [monkey_filters] *)
  range_filter : Lsm_filter.Range_filter.policy;
  block_cache_bytes : int;
  block_cache_shards : int;
      (** stripe the block cache into this many independent mutex-guarded
          LRUs (>= 1); raise alongside [compaction_parallelism] so
          concurrent domains do not serialize on one cache lock *)
  max_open_tables : int;
      (** bound on cached open SSTable readers (RocksDB's
          [max_open_files]); the LRU reader is dropped beyond it *)
  cache_refill_after_compaction : bool;
      (** Leaper-style: prefetch output blocks into the cache right after a
          compaction (E13) *)
  (* -- read-modify-write (§2.2.6) -- *)
  merge_operator : (string -> string option -> string list -> string) option;
      (** [f key base operands] combines a base value (if any) with merge
          operands, oldest first, at read time. [None] makes the newest
          operand behave like a put. *)
  (* -- scheduling (§2.2.3, §2.3.2) -- *)
  allow_trivial_move : bool;
      (** move files down without rewriting when they overlap nothing at
          the target and no garbage collection would fire (RocksDB's
          trivial move); pure WA reduction, ablated in the benches *)
  compaction_bytes_per_round : int option;
      (** Luo & Carey-style throttling: cap compaction traffic triggered
          by any single write; remaining work is deferred to later writes,
          trading a transiently deeper tree for stable write latency.
          [None] = drain all pending compactions immediately. *)
  compaction_parallelism : int;
      (** number of worker domains for subcompactions and {!Db.multi_get}
          fan-out (>= 1). 1 (the default) keeps today's fully serial,
          deterministic execution — no domains are spawned, and every
          cost-model experiment is unaffected. K > 1 partitions each
          merge's key space by fence-pointer boundaries into up to K
          disjoint ranges compacted in parallel, RocksDB-subcompaction
          style. *)
  compaction_backend : backend;
      (** [Inline] (default) keeps the single-writer deterministic shape
          every cost-model experiment depends on. [Background] moves
          flush and compaction onto the scheduler (see DESIGN.md §10):
          logically equivalent ([Db.dump_entries] identical after
          quiesce), but writes no longer pay for merges — they pay
          bounded backpressure delays instead. The default flips to
          [Background] when [LSM_COMPACTION_BACKEND=background] is in
          the environment (CI matrix leg). *)
  compaction_workers : int;
      (** background mode only: how many of this db's flush/compaction
          jobs may execute concurrently on the shared lane (>= 1).
          Only jobs with non-conflicting keys overlap (same level
          always conflicts; adjacent levels conflict when key ranges
          overlap), and version edits still apply strictly in enqueue
          order through the commit sequencer, so [Db.dump_entries]
          after quiesce is identical for any worker count. 1 (the
          default) is the PR 4 strict FIFO lane. The default follows
          [LSM_COMPACTION_WORKERS] in the environment (CI matrix
          leg). *)
  write_slowdown_trigger : int;
      (** backpressure (background mode only): a {e byte} threshold on
          compaction debt = immutable-buffer bytes + L0 run bytes +
          enqueued-but-unapplied compaction input bytes. Once debt
          reaches this many bytes, each write sleeps a bounded delay
          that ramps with the overshoot (RocksDB's slowdown trigger).
          Must be at least [block_size]; scale it off
          [write_buffer_size] (the default is 20 buffers' worth). *)
  write_stop_trigger : int;
      (** backpressure (background mode only): once the same byte debt
          reaches this, writes block on a condition variable until the
          scheduler catches up; must exceed [write_slowdown_trigger]
          (the gap is the slowdown ramp) *)
  paranoid_checks : bool;
      (** verify version invariants after every flush/compaction *)
  scrub_delay : float;
      (** rate limit for the background integrity scrubber ({!Db.scrub}):
          seconds of deliberate idle after each table verification, so a
          scrub pass trickles through the tree instead of monopolizing
          the lane; 0 (the default) scrubs at full speed *)
  scrub_interval : float;
      (** scheduled scrubbing: at most every this many seconds, a write
          that rotates the memtable also kicks off a {!Db.scrub} pass
          (background mode enqueues per-table maintenance jobs on the
          scheduler lane, honoring [scrub_delay]; inline mode runs a
          synchronous {!Db.verify_integrity}), so rot is found — and,
          with [ecc] on, healed — before a user read trips on it. 0 (the
          default) disables scheduled scrubbing. *)
  ecc : ecc option;
      (** read-path error correction: when set, every new table is
          written with a trailing Reed–Solomon parity section — stripes
          of [ecc_data_pages] device pages carry [ecc_parity_pages]
          parity pages — and a CRC failure on read reconstructs the
          rotted page(s) in place instead of quarantining the table
          (DESIGN.md §14). [None] (the default) writes the legacy
          format, byte-identical to pre-ECC builds. Tables written
          either way are readable either way. *)
}

and ecc = {
  ecc_data_pages : int;  (** data pages per parity stripe (k >= 1) *)
  ecc_parity_pages : int;
      (** parity pages per stripe (m >= 1): up to [m] rotted pages per
          stripe are repairable; [k + m <= 255] *)
}

val default : t
(** Small-scale defaults tuned for the in-memory device: 1 MiB buffer,
    leveled compaction T=10, 4 MiB level 1, 10-bit Bloom filters, 8 MiB
    block cache. *)

val validate : t -> unit
(** @raise Invalid_argument on nonsensical settings. *)

val level_capacity : t -> int -> int
(** [level_capacity t level] in bytes (level >= 1). *)

val describe : t -> string
