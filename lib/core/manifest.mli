(** Append-only log of version edits (the MANIFEST).

    Same checksummed framing as the WAL; recovery folds the intact prefix
    of edits over {!Version.empty} to rebuild the tree shape, then the WAL
    replays on top.

    {b Manifest-swap protocol.} Reopening a database compacts the edit
    history into one snapshot edit — but the old manifest must stay
    durable until the snapshot is: the snapshot is written and synced to
    [MANIFEST.tmp] ({!create} with [~name:tmp_file_name]), then {!promote}
    atomically renames it over [MANIFEST]. A crash at any instant leaves
    exactly one readable manifest ({!recover} only ever reads
    [MANIFEST]; a stale [MANIFEST.tmp] is truncated by the next open). *)

type t

val file_name : string
(** ["MANIFEST"] — the only name {!recover} reads. *)

val tmp_file_name : string
(** ["MANIFEST.tmp"] — staging name for the swap protocol. *)

val create : ?name:string -> Lsm_storage.Device.t -> t
(** Opens a fresh manifest at [name] (default {!file_name}), truncating
    any previous file of that name — call only after {!recover} has been
    consumed, and with a [tmp_file_name] + {!promote} pair whenever an
    existing manifest must survive a crash mid-rewrite. *)

val log_edit : t -> Version.edit -> unit
(** Appends and syncs one edit. *)

val promote : t -> unit
(** Atomically rename a manifest created under {!tmp_file_name} to
    {!file_name}; no-op if it already is [MANIFEST]. Appending continues
    transparently afterwards. *)

val close : t -> unit
(** Appends the shared seal frame (see {!Lsm_storage.Framed_log}) and
    seals the file: recovery of a cleanly-closed manifest is strict. *)

val recover : Lsm_storage.Device.t -> Version.t
(** Rebuild the version from the manifest; an absent manifest yields
    {!Version.empty}. Torn tails of an {e unsealed} (crashed) manifest
    are ignored; a sealed manifest with any bad frame, or a nonempty
    unsealed manifest with {e no} valid frame, raises a typed
    [Lsm_util.Lsm_error.Corruption] instead of silently recovering an
    older tree. *)
