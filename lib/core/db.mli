(** The LSM-tree storage engine: the paper's object of study, assembled
    from the substrate libraries.

    Single-{e writer} by design: with the default
    [Config.compaction_backend = Inline], internal work (flush,
    compaction) runs synchronously inside the triggering write, and its
    cost is {e accounted} (stall bursts, compaction I/O histograms)
    rather than hidden — which is exactly what the stall/burst
    experiments measure. With [Config.compaction_parallelism] > 1 that
    shape is kept, but the {e inside} of each merge fans out across a
    fixed pool of worker domains (RocksDB-style subcompactions over
    disjoint key ranges), and {!multi_get} shards batched point lookups
    over the same pool; results are identical to serial execution, only
    wall-clock changes.

    With [Config.compaction_backend = Background] the engine stays
    single-writer but flush and compaction move off the write path onto
    the process-wide scheduler lane (see DESIGN.md §10): a rotation
    enqueues a job and returns, writes are throttled by
    [write_slowdown_trigger]/[write_stop_trigger] backpressure instead
    of absorbing merge cascades, and concurrent readers ({!get},
    {!multi_get}, {!fold}, {!scan}) pin the version they read so
    compaction never deletes a table under them. After {!quiesce} (or
    {!flush}) the logical contents are identical to inline execution.

    External operations: {!put}, {!get}, {!scan}, {!delete} (plus
    {!single_delete}, {!range_delete}, {!merge} — §2.1.2). Internal
    operations: {!flush} and compaction (automatic; {!compact_once} /
    {!major_compact} force it). *)

type t

val open_db : ?config:Config.t -> dev:Lsm_storage.Device.t -> unit -> t
(** Opens (or recovers) the database living on [dev]: replays the
    manifest, then the write-ahead logs. *)

val close : t -> unit
(** Flushes nothing (buffers are recoverable from the WAL); seals the
    manifest and WAL files. *)

val config : t -> Config.t
val device : t -> Lsm_storage.Device.t

(** {1 External operations} *)

val put : t -> key:string -> string -> unit
val delete : t -> string -> unit
val single_delete : t -> string -> unit
(** Deletion of a key guaranteed to have been put at most once since the
    last delete; cheaper to purge (§2.3.3, [101]). *)

val range_delete : t -> lo:string -> hi:string -> unit
(** Deletes all keys in [\[lo, hi)]. *)

val merge : t -> key:string -> string -> unit
(** Read-modify-write operand (§2.2.6); resolved by
    [Config.merge_operator] at read time. *)

val apply_batch : t -> Write_batch.t -> unit
(** Apply all operations of the batch atomically: one sequence-number
    range, one WAL record — after a crash, all or none recover. *)

val get : t -> ?snapshot:Snapshot.t -> string -> string option

val multi_get : t -> ?snapshot:Snapshot.t -> string list -> string option list
(** Point-lookup fan-out: resolves every key against ONE captured read
    context — one snapshot ceiling, one memtable stack, one version — so
    the result list is a point-in-time cut of the database on {e both}
    execution paths. A concurrent {!apply_batch} is observed either
    entirely or not at all, matching the batch's crash atomicity. With
    [Config.compaction_parallelism] > 1 the lookups are sharded across
    the worker-domain pool; otherwise they resolve sequentially on the
    calling domain (against the same single context). *)

val scan :
  t -> ?snapshot:Snapshot.t -> ?limit:int -> lo:string -> hi:string option ->
  unit -> (string * string) list
(** Latest visible version of every key in [\[lo, hi)], ascending, at most
    [limit] results. *)

val fold :
  t -> ?snapshot:Snapshot.t -> ?limit:int -> lo:string -> hi:string option ->
  init:'a -> f:('a -> string -> string -> 'a) -> unit -> 'a
(** Streaming variant of {!scan}: folds over resolved (key, value) pairs
    in ascending order without materializing the result. *)

(** {1 Snapshots} *)

val snapshot : t -> Snapshot.t
(** Pin the current visible state: reads through the returned handle see
    exactly the entries published at this instant, until {!release}.
    Registration is synchronized (a ranked [Ordered_mutex]) with the
    flush/compaction planners that consult the registry, so a snapshot
    taken from any domain is never lost to a concurrently planned merge. *)

val release : t -> Snapshot.t -> unit
(** Unregister one registration of the snapshot's seqno (idempotent per
    registration; releasing twice only affects duplicate pins). *)

val live_snapshots : t -> int list
(** Consistent copy of the registered snapshot seqnos, newest first —
    what flush/merge planning passes to the merge filter. Test hook. *)

(** {1 Internal operations} *)

val flush : t -> unit
(** Rotate and flush every buffer to level 0, then run any triggered
    compactions. *)

val compact_once : t -> bool
(** Run the single highest-priority compaction if one is due (draining
    the background lane first in background mode). *)

val quiesce : t -> unit
(** Background mode: block until every enqueued flush/compaction job has
    finished, re-raising on this domain any exception a job hit. Inline
    mode: no-op. *)

val backpressure_debt : t -> int
(** The write-throttle debt measure, in bytes: immutable buffer bytes
    + level-0 run bytes + input bytes of enqueued-but-unapplied
    background compactions (0 pending inline). Compared against
    [Config.write_slowdown_trigger] / [write_stop_trigger].
    Observability/tests. *)

val major_compact : t -> unit
(** Flush, then compact until no trigger fires. *)

(** {1 Health, quarantine, and integrity (DESIGN.md §11)}

    Every failure that escapes this API is a typed
    [Lsm_util.Lsm_error.Error]: [Corruption] when on-disk bytes are
    provably wrong, [Io_error] for device trouble, [Read_only] for
    mutations rejected in fail-safe mode, [Shutdown] after close. The
    engine never serves data it cannot prove intact — a read that hits a
    corrupt or quarantined table raises instead of falling through to an
    older (stale) version of the key. *)

type health =
  | Healthy
  | Degraded
      (** at least one table is quarantined; reads outside the fenced
          ranges and all writes still work *)
  | Failsafe_read_only
      (** a background or inline flush/compaction failed: mutations
          raise [Lsm_error.Read_only], reads keep working,
          {!try_resume} re-arms *)

type quarantine_entry = {
  q_file : string;
  q_min : string;
  q_max : string;  (** key range whose reads now fail loudly *)
  q_detail : string;
}

val health : t -> health
val quarantined_tables : t -> quarantine_entry list

val try_resume : t -> health
(** Leave fail-safe mode: discards the parked background failure and
    returns the resulting health — [Healthy], or [Degraded] when
    quarantined tables remain (re-arming cannot un-corrupt a file). *)

val verify_integrity : t -> Lsm_util.Lsm_error.t list
(** Synchronous integrity scrub: manifest frame chain, then every live
    table (block CRCs, fence order — see [Sstable.verify]) under a
    version pin, then the WALs. Defective tables are quarantined; all
    findings are returned (never raised — the scrubber reports, it does
    not abort on the first defect). *)

val scrub : t -> unit
(** Background variant of {!verify_integrity}: enqueues one verification
    job per live table on the scheduler lane, rate-limited by
    [Config.scrub_delay], so foreground work interleaves. Inline mode
    runs the synchronous pass. Findings land in {!stats} and
    {!quarantined_tables}; {!quiesce} waits for completion. *)

val checkpoint : t -> dest:Lsm_storage.Device.t -> unit
(** Consistent full backup: flush, copy every live table to [dest], and
    write a manifest describing exactly this version — [dest] then opens
    as an independent database with the same contents.
    @raise Invalid_argument if [dest] already holds a database. *)

val wake : t -> int
(** Advance the logical clock without writing (models idle time for
    TTL-based policies); returns the new tick. *)

(** {1 Runtime memory knobs (§2.3.1)} *)

val write_buffer_size : t -> int
val set_write_buffer_size : t -> int -> unit
(** Change the rotation threshold on the fly (rotating immediately if the
    active buffer already exceeds it). *)

val set_block_cache_bytes : t -> int -> unit
(** Resize the block cache, evicting LRU blocks when shrinking. Together
    with {!set_write_buffer_size} this is the lever adaptive memory
    management (Luo & Carey, §2.3.1) turns. *)

(** {1 Introspection} *)

val stats : t -> Stats.t
val io_stats : t -> Lsm_storage.Io_stats.t
val version : t -> Version.t
val block_cache : t -> Lsm_sstable.Sstable.cached_block Lsm_storage.Block_cache.t
val table_cache : t -> Lsm_sstable.Table_cache.t
val tick : t -> int

val dump_entries : t -> (int * Lsm_record.Entry.t) list
(** Every on-disk entry paired with its level, in probe order: the
    verification hook the parallel-compaction determinism test compares
    across engines (identical logical state = identical dumps, whatever
    the physical file boundaries). Reads every table; debug/test only. *)

val last_seqno : t -> int
val write_amplification : t -> float
(** Device bytes written (flush + compaction + WAL) / user bytes. *)

val space_amplification : t -> float
(** Live device bytes / logical user data bytes (latest versions only). *)

val check_invariants : t -> (unit, string) result
val pp_tree : Format.formatter -> t -> unit
