module Comparator = Lsm_util.Comparator
module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats
module Block_cache = Lsm_storage.Block_cache
module Wal = Lsm_storage.Wal
module Memtable = Lsm_memtable.Memtable
module Point_filter = Lsm_filter.Point_filter
module Monkey = Lsm_filter.Monkey
module Sstable = Lsm_sstable.Sstable
module Table_meta = Lsm_sstable.Table_meta
module Table_cache = Lsm_sstable.Table_cache
module Policy = Lsm_compaction.Policy
module Picker = Lsm_compaction.Picker
module Domain_pool = Lsm_util.Domain_pool
module Ordered_mutex = Lsm_util.Ordered_mutex
module Lsm_error = Lsm_util.Lsm_error
module Framed_log = Lsm_storage.Framed_log

type buffer_unit = { mt : Memtable.t; wal : Wal.t option; wal_name : string option }

(* Health state machine (§ DESIGN.md 11): [Healthy] until something goes
   wrong; [Degraded] while quarantined tables exist but the engine still
   accepts writes; [Failsafe_read_only] after a maintenance failure —
   reads keep working, mutations raise [Lsm_error.Read_only] until
   [try_resume]. *)
type health = Healthy | Degraded | Failsafe_read_only

type quarantine_entry = {
  q_file : string;  (** the fenced-off [.sst] file *)
  q_min : string;
  q_max : string;  (** its key range: reads inside it fail loudly *)
  q_detail : string;  (** what the detector saw *)
}

type t = {
  cfg : Config.t;
  dev : Device.t;
  cache : Sstable.cached_block Block_cache.t;
  tables : Table_cache.t;
  db_stats : Stats.t;
  mutable active : buffer_unit;
  mutable immutables : buffer_unit list;  (** newest first; guarded by [buf_mutex] *)
  mutable imm_count : int;
      (** [List.length immutables], maintained so the per-write flush
          trigger and backpressure debt are O(1); same guard *)
  mutable imm_bytes : int;
      (** memtable bytes of immutable buffers not yet claimed by a
          background flush ticket — the buffer component of the
          byte-denominated backpressure debt (claimed buffers move into
          the scheduler's unapplied bytes instead, so no byte is counted
          twice); same guard *)
  mutable bg_flush_claims : int;
      (** immutable buffers claimed by enqueued-but-uncommitted
          background flush tickets — always a prefix of the oldest,
          since flush tickets enqueue and commit in rotation order;
          same guard *)
  mutable vers : Version.t;
      (** the maintenance lane's working state — mutated only inline or
          on the serialized background lane (never both concurrently) *)
  mutable read_view : Version.t * (string * string * int) list;
      (** what readers use: the installed version paired with the
          range-tombstone list rebuilt from exactly that version, swapped
          in one field write so a reader can never pair a new version
          with stale tombstones (or vice versa, which would resurrect
          range-deleted keys) *)
  mutable manifest : Manifest.t;
  mutable seqno : int;
      (** last {e allocated} sequence number — may run ahead of what the
          memtable holds while a write/batch is mid-insert *)
  visible_seqno : int Atomic.t;
      (** last {e published} sequence number: every entry at or below it
          is fully inserted in the memtable stack. The writer stores it
          after the memtable insert(s) of a write/batch complete, so a
          reader that captures it as its read ceiling can never observe
          a half-applied batch (the atomic store/load pair also orders
          the plain memtable writes before the reader's traversal). *)
  clock : int Atomic.t;
      (** logical clock, ticked by every operation including concurrent
          readers — a plain read-modify-write here loses ticks under
          [multi_get]/[get] from several domains, starving TTL-based
          compaction triggers *)
  mutable snapshots : int list;
      (** live snapshot seqnos; guarded by [snap_mutex] — registration
          from one domain must never be lost to a concurrent
          register/release (a dropped registration lets compaction GC
          versions the snapshot still needs) *)
  snap_mutex : Ordered_mutex.t;  (** guards [snapshots] *)
  mutable next_file_id : int;
  mutable next_group : int;
  mutable wal_counter : int;
  rr_cursors : (int, string) Hashtbl.t;  (** round-robin movement cursor per level *)
  mutable dyn_buffer_size : int;
      (** runtime-adjustable rotation threshold (adaptive memory, §2.3.1);
          starts at [cfg.write_buffer_size] *)
  pool : Domain_pool.t option;
      (** worker domains for subcompactions and multi_get fan-out;
          [None] iff [cfg.compaction_parallelism = 1] *)
  id_mutex : Lsm_util.Ordered_mutex.t;
      (** guards [next_file_id] across subcompaction domains *)
  buf_mutex : Ordered_mutex.t;
      (** guards [immutables]/[imm_count]: the writer pushes on rotation,
          the background flush job pops, readers snapshot *)
  sched : Scheduler.t option;
      (** [Some] iff [cfg.compaction_backend = Background] *)
  pins : Version.Pins.registry;
      (** version pin registry; deletions of compacted [.sst] files are
          deferred through it in background mode (eager inline) *)
  health : health Atomic.t;
      (** atomic because reader domains (multi_get fan-out) and the
          background lane both observe and flip it *)
  quarantined : quarantine_entry list Atomic.t;
      (** CAS-appended list of fenced-off tables; probes check it before
          touching a file so a known-bad table never serves *)
  mutable last_scrub : float;
      (** when the last [Config.scrub_interval]-scheduled scrub kicked
          off (wall clock); starts at open so the first one fires an
          interval after open, not on the first write *)
  mutable scrub_tick : unit -> unit;
      (** rotation hook for scheduled scrubbing — a closure set at the
          end of [open_db] (it needs [scrub], defined long after the
          write path); no-op until then and when [scrub_interval = 0] *)
  mutable closed : bool;
}

let cmp_of t = t.cfg.Config.comparator

(* The one blessed read of the snapshot registry: a consistent copy taken
   under [snap_mutex]. Flush/merge planning captures through here; a
   registration that happened-before the capture is never missed, which
   is what keeps merge-time GC from dropping versions a live snapshot
   still needs. (The list itself is immutable — only the field mutates.) *)
let live_snapshots t = Ordered_mutex.with_lock t.snap_mutex (fun () -> t.snapshots)

(* ------------------------------------------------------------------ *)
(* Health & quarantine                                                 *)
(* ------------------------------------------------------------------ *)

let health t = Atomic.get t.health
let quarantined_tables t = Atomic.get t.quarantined

let is_quarantined t name =
  List.exists (fun q -> String.equal q.q_file name) (Atomic.get t.quarantined)

(* Healthy -> Degraded only — a CAS so a concurrent fail-safe transition
   can never be downgraded back to Degraded. *)
let degrade t = ignore (Atomic.compare_and_set t.health Healthy Degraded)

let rec enter_failsafe t =
  match Atomic.get t.health with
  | Failsafe_read_only -> ()
  | prev ->
    if Atomic.compare_and_set t.health prev Failsafe_read_only then
      t.db_stats.Stats.failsafe_entries <- t.db_stats.Stats.failsafe_entries + 1
    else enter_failsafe t

let note_corruption t =
  t.db_stats.Stats.corruptions_detected <- t.db_stats.Stats.corruptions_detected + 1

let rec add_quarantine t q =
  let cur = Atomic.get t.quarantined in
  if List.exists (fun e -> String.equal e.q_file q.q_file) cur then ()
  else if Atomic.compare_and_set t.quarantined cur (q :: cur) then begin
    t.db_stats.Stats.tables_quarantined <- t.db_stats.Stats.tables_quarantined + 1;
    degrade t
  end
  else add_quarantine t q

let quarantine_of_meta (f : Table_meta.t) detail =
  { q_file = f.Table_meta.file_name; q_min = f.Table_meta.min_key;
    q_max = f.Table_meta.max_key; q_detail = detail }

(* A probe that selected a quarantined table must fail loudly: falling
   through to an older run would silently serve a stale version of the
   key, which is exactly the wrong-data outcome quarantine exists to
   prevent. *)
let raise_quarantined t (f : Table_meta.t) =
  match
    List.find_opt
      (fun q -> String.equal q.q_file f.Table_meta.file_name)
      (Atomic.get t.quarantined)
  with
  | Some q ->
    raise (Lsm_error.corruption ~file:q.q_file ("table is quarantined: " ^ q.q_detail))
  | None -> ()

(* Every read touching table [f] goes through this guard: a decode
   failure — or a referenced file that has vanished — quarantines the
   table, degrades health, and surfaces as a typed error. *)
let guard_table_read t (f : Table_meta.t) fn =
  let quarantine detail =
    note_corruption t;
    add_quarantine t (quarantine_of_meta f detail)
  in
  try fn () with
  | Lsm_error.Error (Lsm_error.Corruption _ as c) as e ->
    quarantine (Lsm_error.to_string c);
    raise e
  | Lsm_util.Codec.Corrupt msg ->
    quarantine msg;
    raise (Lsm_error.corruption ~file:f.Table_meta.file_name msg)
  | Not_found ->
    let detail = "referenced table missing" in
    quarantine detail;
    raise (Lsm_error.corruption ~file:f.Table_meta.file_name detail)

let wal_name_of n = Printf.sprintf "wal-%06d.log" n

(* Accept exactly the names [wal_name_of] generates. Anything else — a
   stray "wal-backup", a truncated "wal-1" — is not ours to replay or
   delete, and must above all not abort recovery (a [String.sub] on an
   unchecked name used to do exactly that). *)
let wal_seq_of_name n =
  let plen = String.length "wal-" and slen = String.length ".log" in
  if
    String.length n > plen + slen
    && String.sub n 0 plen = "wal-"
    && Filename.check_suffix n ".log"
  then begin
    let stem = String.sub n plen (String.length n - plen - slen) in
    if String.for_all (fun c -> c >= '0' && c <= '9') stem then int_of_string_opt stem
    else None
  end
  else None

let new_buffer t =
  let name = wal_name_of t.wal_counter in
  t.wal_counter <- t.wal_counter + 1;
  let wal = if t.cfg.Config.wal_enabled then Some (Wal.create t.dev ~name) else None in
  {
    mt = Memtable.create ~kind:t.cfg.Config.memtable ~cmp:(cmp_of t) ();
    wal;
    wal_name = (if t.cfg.Config.wal_enabled then Some name else None);
  }

(* ------------------------------------------------------------------ *)
(* Version-edit installation                                           *)
(* ------------------------------------------------------------------ *)

let rebuild_table_rds t =
  let rds = ref [] in
  List.iter
    (fun (f : Table_meta.t) ->
      if f.range_tombstones > 0 then begin
        let reader = Table_cache.get t.tables f.file_name in
        List.iter
          (fun (e : Entry.t) ->
            if e.kind = Entry.Range_delete then rds := (e.key, e.value, e.seqno) :: !rds)
          (Sstable.props reader).Sstable.Props.range_tombstones
      end)
    (Version.all_files t.vers);
  !rds

(* Serialized: runs inline, or on the background lane, or on a quiesced
   foreground — never two at once. Publishing [read_view] before
   [Pins.advance] keeps pinning conservative: a pin taken between the
   two blocks deletions for the version it just read. *)
let install_edit t edit =
  t.vers <- Version.apply t.vers edit;
  Manifest.log_edit t.manifest edit;
  if t.cfg.Config.paranoid_checks then begin
    match Version.check_invariants ~cmp:(cmp_of t) t.vers with
    | Ok () -> ()
    | Error e ->
      (* The just-logged edit produced an inconsistent tree: the manifest
         now describes a version that must never serve reads. *)
      raise
        (Lsm_error.corruption ~file:Manifest.file_name
           ("LSM invariant violation: " ^ e))
  end;
  t.read_view <- (t.vers, rebuild_table_rds t);
  Version.Pins.advance t.pins

(* ------------------------------------------------------------------ *)
(* Writing runs of SSTables                                            *)
(* ------------------------------------------------------------------ *)

(* Bits-per-key override for a level under Monkey allocation: project the
   level's population after this write lands there. *)
let monkey_bits t ~target_level ~incoming_entries =
  if not t.cfg.Config.monkey_filters then None
  else begin
    let entries =
      Array.init Version.max_levels (fun l -> Version.level_entries t.vers l)
    in
    entries.(target_level) <- entries.(target_level) + incoming_entries;
    let bits =
      Monkey.allocate
        ~total_bits:(float_of_int t.cfg.Config.filter_memory_bits)
        ~level_entries:entries
    in
    Some bits.(target_level)
  end

let build_config t ~filter_bits_override =
  {
    Sstable.block_size = t.cfg.Config.block_size;
    restart_interval = t.cfg.Config.restart_interval;
    filter = t.cfg.Config.filter;
    filter_bits_override;
    range_filter = t.cfg.Config.range_filter;
    compression = t.cfg.Config.compression;
    ecc =
      (match t.cfg.Config.ecc with
      | Some e -> Some (e.Config.ecc_data_pages, e.Config.ecc_parity_pages)
      | None -> None);
  }

(* Wrap [src] so it stops at a user-key boundary once [target] bytes of
   entries have passed; returns whether anything remains. *)
let capped_iter src ~target =
  let emitted = ref 0 in
  let stopped = ref false in
  let check_boundary () =
    if !emitted >= target && src.Iter.valid () then stopped := true
  in
  let last_key = ref None in
  {
    Iter.valid = (fun () -> (not !stopped) && src.Iter.valid ());
    entry = (fun () -> src.Iter.entry ());
    next =
      (fun () ->
        if (not !stopped) && src.Iter.valid () then begin
          let e = src.Iter.entry () in
          emitted := !emitted + Entry.encoded_size e;
          last_key := Some e.Entry.key;
          src.Iter.next ();
          (* only cut between distinct user keys *)
          if src.Iter.valid () then begin
            let nxt = src.Iter.entry () in
            match !last_key with
            | Some k when not (String.equal k nxt.Entry.key) -> check_boundary ()
            | _ -> ()
          end
        end);
    seek = (fun _ -> invalid_arg "capped_iter: seek unsupported");
    seek_to_first = (fun () -> () (* already positioned mid-stream *));
  }

(* File ids are allocated under a mutex: parallel subcompactions cut
   output files concurrently. Serial callers pay an uncontended lock. *)
let alloc_file_id t =
  Lsm_util.Ordered_mutex.with_lock t.id_mutex @@ fun () ->
  let id = t.next_file_id in
  t.next_file_id <- t.next_file_id + 1;
  id

(* Drain [src] into as many files as needed; returns their metadata. *)
let write_run t ~cls ~filter_bits_override src =
  src.Iter.seek_to_first ();
  let metas = ref [] in
  while src.Iter.valid () do
    let file_id = alloc_file_id t in
    let name = Table_meta.file_name_of_id file_id in
    let part = capped_iter src ~target:t.cfg.Config.target_file_size in
    let props =
      Sstable.build
        ~config:(build_config t ~filter_bits_override)
        ~cmp:(cmp_of t) ~dev:t.dev ~cls ~name ~created_at:(Atomic.get t.clock) part
    in
    let size = Device.size t.dev name in
    metas := Table_meta.of_props ~file_id ~file_name:name ~size props :: !metas
  done;
  List.rev !metas

(* ------------------------------------------------------------------ *)
(* Flush                                                               *)
(* ------------------------------------------------------------------ *)

(* The buffer the writer retires stays reachable through [immutables]
   before [active] is swapped, so a reader snapshotting mid-rotation sees
   the buffer at least once (twice is benign: probe order dedupes).
   [new_buffer] creates the WAL (device I/O) outside the buffer lock. *)
let rotate t =
  if Memtable.count t.active.mt > 0 then begin
    let fresh = new_buffer t in
    Ordered_mutex.with_lock t.buf_mutex (fun () ->
        t.immutables <- t.active :: t.immutables;
        t.imm_count <- t.imm_count + 1;
        t.imm_bytes <- t.imm_bytes + Memtable.footprint t.active.mt;
        t.active <- fresh)
  end

(* Consistent reader snapshot of the memtable stack. Taking the buffer
   lock (not just reading the fields) also orders this read against the
   flush job's pop: a reader that no longer sees a buffer here is
   guaranteed to see the [read_view] that contains its flushed table. *)
let buffers t =
  Ordered_mutex.with_lock t.buf_mutex (fun () -> (t.active, t.immutables))

(* Flushes are split into an execute phase (reads the frozen buffer and
   writes the L0 run — safe off the sequencer, the buffer is immutable)
   and a commit phase (group assignment, version edit, WAL retirement —
   runs only in commit order, so [t.next_group] stays single-threaded). *)
let flush_execute t buffer =
  let it = Memtable.iterator buffer.mt in
  (* Flush-time GC: drop same-stripe shadowed versions (never the bottom).
     The snapshot list is captured under its mutex: a snapshot registered
     after this point has a seqno at or above every seqno in the frozen
     buffer, so it only needs each key's newest version — which the
     filter always keeps. *)
  let filtered =
    Merge_filter.filtered ~cmp:(cmp_of t) ~snapshots:(live_snapshots t) ~bottom:false
      ~range_tombstones:(Memtable.range_tombstones buffer.mt)
      it
  in
  let bits = monkey_bits t ~target_level:0 ~incoming_entries:(Memtable.count buffer.mt) in
  write_run t ~cls:Io_stats.C_flush ~filter_bits_override:bits filtered

let flush_commit t buffer metas =
  let group = t.next_group in
  t.next_group <- t.next_group + 1;
  let edit =
    {
      Version.added = List.map (fun m -> (0, group, m)) metas;
      removed = [];
      seqno_watermark = t.seqno;
    }
  in
  install_edit t edit;
  (match buffer.wal with Some w -> Wal.close w | None -> ());
  (match buffer.wal_name with Some n -> Device.delete t.dev n | None -> ());
  t.db_stats.Stats.flushes <- t.db_stats.Stats.flushes + 1

let flush_one t buffer = flush_commit t buffer (flush_execute t buffer)

(* Remove a flushed buffer from the stack. A buffer claimed by a
   background flush ticket already left [imm_bytes] at claim time (its
   bytes were counted as the ticket's unapplied input instead); an
   unclaimed buffer — the inline path — leaves it here. *)
let pop_buffer t ~claimed buffer =
  Ordered_mutex.with_lock t.buf_mutex (fun () ->
      t.immutables <- List.filter (fun b -> b != buffer) t.immutables;
      t.imm_count <- t.imm_count - 1;
      if claimed then t.bg_flush_claims <- t.bg_flush_claims - 1
      else t.imm_bytes <- t.imm_bytes - Memtable.footprint buffer.mt)

(* Flush first, pop after: between [install_edit] and the pop a reader
   may see the entries both in the immutable memtable and in L0, which
   probe order dedupes; popping first would open a window where a
   concurrent reader sees them in neither. Only the maintenance lane
   pops, and pushes only prepend, so the oldest element is stable across
   the unlocked read. *)
let flush_oldest t =
  match List.rev t.immutables with
  | [] -> ()
  | oldest :: _ ->
    flush_one t oldest;
    pop_buffer t ~claimed:false oldest

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)
(* ------------------------------------------------------------------ *)

type job =
  | J_level0
  | J_tier_merge of int  (** merge all runs of the level, append at level+1 *)
  | J_whole_level of int  (** level + next level's run, rewritten at level+1 *)
  | J_file of int * Table_meta.t  (** one file + next-level overlap *)

let run_cap t ~level =
  Policy.run_cap t.cfg.Config.compaction ~level ~last_level:(max 1 (Version.last_level t.vers))

let pick_compaction t =
  let v = t.vers in
  let policy = t.cfg.Config.compaction in
  if Version.run_count v 0 >= policy.Policy.level0_limit && Version.run_count v 0 > 0 then
    Some J_level0
  else begin
    let job = ref None in
    (* Capacity / run-count triggers, shallowest level first. *)
    for l = 1 to Version.max_levels - 2 do
      if !job = None && Version.level_runs v l <> [] then begin
        let cap = run_cap t ~level:l in
        if cap > 1 then begin
          if Version.run_count v l >= cap then job := Some (J_tier_merge l)
        end
        else if Version.level_bytes v l > Config.level_capacity t.cfg l then begin
          let target_tiered = run_cap t ~level:(l + 1) > 1 in
          if target_tiered then job := Some (J_tier_merge l)
          else
            match policy.Policy.granularity with
            | Policy.Whole_level -> job := Some (J_whole_level l)
            | Policy.Single_file -> (
              let next_files =
                List.concat_map (fun (r : Version.run) -> r.Version.files)
                  (Version.level_runs v (l + 1))
              in
              let files =
                List.concat_map (fun (r : Version.run) -> r.Version.files)
                  (Version.level_runs v l)
              in
              let ttl =
                match policy.Policy.movement with
                | Policy.Expired_ttl { ttl } -> Some ttl
                | _ -> None
              in
              let candidates =
                Picker.annotate ~cmp:(cmp_of t) ~now:(Atomic.get t.clock) ~ttl
                  ~next_level:next_files files
              in
              let cursor = Hashtbl.find_opt t.rr_cursors l in
              match Picker.pick policy.Policy.movement ~cursor candidates with
              | Some f -> job := Some (J_file (l, f))
              | None -> ())
        end
      end
    done;
    (* Lethe's delete-driven trigger: files with expired tombstones force a
       compaction even when the level is under capacity. *)
    (match (policy.Policy.movement, !job) with
    | Policy.Expired_ttl { ttl }, None ->
      (try
         for l = 0 to Version.max_levels - 2 do
           if l < Version.max_levels - 1 then
             List.iter
               (fun (r : Version.run) ->
                 List.iter
                   (fun (f : Table_meta.t) ->
                     if
                       f.point_tombstones + f.range_tombstones > 0
                       && Atomic.get t.clock - f.created_at > ttl
                       && l >= 1
                     then begin
                       job := Some (J_file (l, f));
                       raise Exit
                     end
                     else if
                       f.point_tombstones + f.range_tombstones > 0
                       && Atomic.get t.clock - f.created_at > ttl
                       && l = 0
                     then begin
                       job := Some J_level0;
                       raise Exit
                     end)
                   r.Version.files)
               (Version.level_runs v l)
         done
       with Exit -> ())
    | _ -> ());
    !job
  end

let file_iter t ~cls ?(use_cache = false) (f : Table_meta.t) =
  let reader = Table_cache.get t.tables f.file_name in
  Sstable.iterator reader ~cls ~use_cache ()

let rds_of_files t files =
  List.concat_map
    (fun (f : Table_meta.t) ->
      if f.range_tombstones = 0 then []
      else
        (Sstable.props (Table_cache.get t.tables f.file_name)).Sstable.Props.range_tombstones)
    files

let retire_files t files =
  let delete () =
    List.iter
      (fun (f : Table_meta.t) ->
        Device.delete t.dev f.file_name;
        (* Deleting inputs implicitly evicts their hot blocks — the cache
           disturbance §2.1.3 attributes to compactions. *)
        Table_cache.evict t.tables f.file_name)
      files
  in
  match t.sched with
  | None -> delete ()
  | Some _ ->
    (* Concurrent readers may still hold a version referencing these
       files; deletion waits for the last pin predating this install. *)
    Version.Pins.defer t.pins delete

(* ---------------- subcompactions ---------------- *)

(* Clamp a run to the key range [lo, hi) (either bound may be open).
   Files wholly outside the range are skipped via their fence pointers;
   the iterator seeks to [lo] and stops at the first key >= [hi]. *)
let clamped_run_iter t ~cls ?(use_cache = false) ~lo ~hi (r : Version.run) =
  let cmp = (cmp_of t).Comparator.compare in
  let files =
    List.filter
      (fun (f : Table_meta.t) ->
        (match hi with Some h -> cmp f.min_key h < 0 | None -> true)
        && match lo with Some l -> cmp f.max_key l >= 0 | None -> true)
      r.Version.files
  in
  let it =
    match files with
    | [ f ] -> file_iter t ~cls ~use_cache f
    | files -> Iter.concat (List.map (file_iter t ~cls ~use_cache) files)
  in
  let below_hi () =
    match hi with None -> true | Some h -> cmp (it.Iter.entry ()).Entry.key h < 0
  in
  {
    Iter.valid = (fun () -> it.Iter.valid () && below_hi ());
    entry = (fun () -> it.Iter.entry ());
    next = it.Iter.next;
    seek = it.Iter.seek;
    seek_to_first =
      (fun () ->
        match lo with None -> it.Iter.seek_to_first () | Some l -> it.Iter.seek l);
  }

(* Cut the inputs' key space into at most [k] consecutive ranges at
   fence-pointer boundaries (file min-keys), weighted by file size so the
   ranges carry roughly equal bytes. Because a boundary is a user key and
   each clamped iterator covers [lo, hi), every version of a user key
   falls in exactly one range — the per-key GC of [Merge_filter] sees
   the same version stream as a serial merge, so the concatenated outputs
   are entry-for-entry identical to the serial output. Fully-overlapping
   inputs (a stack of level-0 runs) offer no usable boundaries and fall
   back to fewer, possibly one, range. *)
let partition_ranges t ~input_files ~k =
  let cmp = (cmp_of t).Comparator.compare in
  let sorted =
    List.sort (fun (a : Table_meta.t) (b : Table_meta.t) -> cmp a.min_key b.min_key) input_files
  in
  let total = List.fold_left (fun a (f : Table_meta.t) -> a + f.size) 0 input_files in
  let target = max 1 (total / k) in
  let bounds = ref [] in
  let acc = ref 0 in
  List.iter
    (fun (f : Table_meta.t) ->
      if
        !acc >= target
        && List.length !bounds < k - 1
        && (match !bounds with b :: _ -> cmp b f.min_key < 0 | [] -> true)
        (* a boundary at/below the global min would make an empty head range *)
        && (match sorted with first :: _ -> cmp first.Table_meta.min_key f.min_key < 0 | [] -> false)
      then begin
        bounds := f.min_key :: !bounds;
        acc := 0
      end;
      acc := !acc + f.size)
    sorted;
  let rec ranges lo = function
    | [] -> [ (lo, None) ]
    | b :: rest -> (lo, Some b) :: ranges (Some b) rest
  in
  ranges None (List.rev !bounds)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Merge [input_runs] (newest first) and write the result as one sorted
   run at [target_level] with [target_group]. [bottom] asserts that, for
   every key range the inputs cover, no data at or below [target_level]
   exists outside the inputs — only then may tombstones be retired.

   With [compaction_parallelism] > 1 the merge is executed as parallel
   subcompactions: the key space is partitioned at fence-pointer
   boundaries and each range is merged, filtered, and written by a pool
   domain; the per-range outputs concatenate (in key order) into the same
   single sorted run a serial merge would produce, installed by one
   version edit.

   Like flushes, merges are split in two: [plan_merge] captures every
   input from [t.vers] (sequencer context, deterministic), the execute
   phase does the heavy reading/merging/writing against those captured
   inputs on any worker, and the commit phase installs the edit in
   enqueue order. *)
type merge_plan = {
  mp_input_runs : Version.run list;
  mp_input_files : Table_meta.t list;
  mp_read_bytes : int;
  mp_extra_removed : int list;
  mp_target_level : int;
  mp_target_group : int;
  mp_bottom : bool;
  mp_bits : float option;
  mp_snapshots : int list;
      (** live-snapshot seqnos captured (under [snap_mutex]) at plan
          time; the execute phase filters against exactly this list. A
          snapshot taken after planning has a seqno at or above every
          seqno in the captured inputs, so it only needs each key's
          newest input version, which [Merge_filter] always retains. *)
}

let plan_merge t ~input_runs ~extra_removed ~target_level ~target_group ~bottom =
  let input_files = List.concat_map (fun (r : Version.run) -> r.Version.files) input_runs in
  let read_bytes = List.fold_left (fun a (f : Table_meta.t) -> a + f.size) 0 input_files in
  let input_entries = List.fold_left (fun a (f : Table_meta.t) -> a + f.entries) 0 input_files in
  {
    mp_input_runs = input_runs;
    mp_input_files = input_files;
    mp_read_bytes = read_bytes;
    mp_extra_removed = extra_removed;
    mp_target_level = target_level;
    mp_target_group = target_group;
    mp_bottom = bottom;
    mp_bits = monkey_bits t ~target_level ~incoming_entries:input_entries;
    mp_snapshots = live_snapshots t;
  }

let merge_execute t (p : merge_plan) =
  let t_start = now_ns () in
  let input_runs = p.mp_input_runs in
  let input_files = p.mp_input_files in
  let bottom = p.mp_bottom in
  let rds = rds_of_files t input_files in
  let bits = p.mp_bits in
  (* Parallel input warm-up: with a pool, load every input file's data
     blocks into the block cache first, one file per domain. The block
     reads of one merge then overlap like queued requests on a real
     device instead of paying their I/O latency one at a time inside
     the merge loop. The cache disturbance is transient by the same
     rule as any compaction read: [retire_files] evicts the inputs as
     soon as the merge commits. *)
  let warmed =
    match t.pool with
    | Some pool when Domain_pool.size pool > 1 && List.length input_files > 1 ->
      ignore
        (Domain_pool.map_list pool
           (fun (f : Table_meta.t) ->
             Sstable.prefetch_into_cache
               (Table_cache.get t.tables f.file_name)
               ~cls:Io_stats.C_compaction_read)
           input_files);
      true
    | _ -> false
  in
  let ranges =
    (* Cap the fan-out so every range carries at least a target file's
       worth of input: splitting smaller merges buys no overlap worth
       having and litters the tree with undersized output files, whose
       cleanup merges then eat the throughput the split was meant to
       win. *)
    let k_bytes = max 1 (p.mp_read_bytes / max 1 t.cfg.Config.target_file_size) in
    match t.pool with
    | Some pool when Domain_pool.size pool > 1 && k_bytes > 1 ->
      partition_ranges t ~input_files ~k:(min (Domain_pool.size pool) k_bytes)
    | _ -> [ (None, None) ]
  in
  let merge_range (lo, hi) =
    let merged =
      Iter.merge (cmp_of t)
        (List.map
           (clamped_run_iter t ~cls:Io_stats.C_compaction_read ~use_cache:warmed ~lo ~hi)
           input_runs)
    in
    let filtered =
      Merge_filter.filtered ~cmp:(cmp_of t) ~snapshots:p.mp_snapshots ~bottom
        ~range_tombstones:rds merged
    in
    write_run t ~cls:Io_stats.C_compaction_write ~filter_bits_override:bits filtered
  in
  let metas =
    match (t.pool, ranges) with
    | Some pool, _ :: _ :: _ -> List.concat (Domain_pool.map_list pool merge_range ranges)
    | _ -> List.concat (List.map merge_range ranges)
  in
  (metas, List.length ranges, now_ns () - t_start)

let merge_commit t (p : merge_plan) (metas, nranges, exec_ns) =
  let written = List.fold_left (fun a (m : Table_meta.t) -> a + m.size) 0 metas in
  let edit =
    {
      Version.added = List.map (fun m -> (p.mp_target_level, p.mp_target_group, m)) metas;
      removed =
        List.map (fun (f : Table_meta.t) -> f.file_id) p.mp_input_files @ p.mp_extra_removed;
      seqno_watermark = t.seqno;
    }
  in
  install_edit t edit;
  retire_files t p.mp_input_files;
  t.db_stats.Stats.compactions <- t.db_stats.Stats.compactions + 1;
  t.db_stats.Stats.subcompactions <- t.db_stats.Stats.subcompactions + nranges;
  t.db_stats.Stats.compaction_wall_ns <- t.db_stats.Stats.compaction_wall_ns + exec_ns;
  t.db_stats.Stats.compaction_bytes_read <-
    t.db_stats.Stats.compaction_bytes_read + p.mp_read_bytes;
  t.db_stats.Stats.compaction_bytes_written <-
    t.db_stats.Stats.compaction_bytes_written + written;
  Lsm_util.Histogram.add t.db_stats.Stats.compaction_burst_bytes (p.mp_read_bytes + written);
  if t.cfg.Config.cache_refill_after_compaction then
    List.iter
      (fun (m : Table_meta.t) ->
        ignore
          (Sstable.prefetch_into_cache
             (Table_cache.get t.tables m.file_name)
             ~cls:Io_stats.C_compaction_read))
      metas;
  metas

let execute_merge t ~input_runs ~extra_removed ~target_level ~target_group ~bottom =
  let p = plan_merge t ~input_runs ~extra_removed ~target_level ~target_group ~bottom in
  merge_commit t p (merge_execute t p)

(* The run group output goes to: reuse the target's single-run group when
   merging into a leveled level that already has a run, else a new group. *)
let fresh_group t =
  let g = t.next_group in
  t.next_group <- t.next_group + 1;
  g

let leveled_target_group t level =
  match Version.level_runs t.vers level with
  | [ r ] when run_cap t ~level = 1 -> r.Version.group
  | _ -> fresh_group t

(* Relocate files one level down without rewriting them: legal whenever
   nothing at the target overlaps them and no garbage collection would
   have fired during a real merge. Content is unchanged, so snapshots are
   unaffected; write amplification for the move is zero. *)
let trivial_move t ~files ~target_level ~target_group =
  let edit =
    {
      Version.added = List.map (fun (f : Table_meta.t) -> (target_level, target_group, f)) files;
      removed = List.map (fun (f : Table_meta.t) -> f.file_id) files;
      seqno_watermark = t.seqno;
    }
  in
  install_edit t edit;
  t.db_stats.Stats.trivial_moves <- t.db_stats.Stats.trivial_moves + List.length files

let has_tombstones files =
  List.exists (fun (f : Table_meta.t) -> f.point_tombstones + f.range_tombstones > 0) files

(* A planned job: every input captured from [t.vers], target group
   allocated, round-robin cursor advanced — all the decisions that must
   happen deterministically in sequencer context. What remains
   ([run_planned]'s execute phase) only reads the captured immutable
   files. Background picks plan from exactly the tree states the inline
   scheduler would see — the sequencer front-inserts hook picks and runs
   the hook after every commit — so planning needs no batch capping or
   other background-specific adjustment. *)
type planned =
  | P_merge of merge_plan
  | P_move of { files : Table_meta.t list; target_level : int; target_group : int }

let plan_of_job t job =
  let last = Version.last_level t.vers in
  match job with
  | J_level0 ->
    let l0_runs = Version.level_runs t.vers 0 in
    let target_tiered = run_cap t ~level:1 > 1 in
    if target_tiered then
      P_merge
        (plan_merge t ~input_runs:l0_runs ~extra_removed:[] ~target_level:1
           ~target_group:(fresh_group t)
           ~bottom:(last <= 1 && Version.level_runs t.vers 1 = []))
    else begin
      (* Merge with the whole overlapping portion of L1's run. *)
      let l1_runs = Version.level_runs t.vers 1 in
      P_merge
        (plan_merge t
           ~input_runs:(l0_runs @ l1_runs)
           ~extra_removed:[] ~target_level:1 ~target_group:(leveled_target_group t 1)
           ~bottom:(last <= 1))
    end
  | J_tier_merge l ->
    let runs = Version.level_runs t.vers l in
    let target = l + 1 in
    let target_tiered = run_cap t ~level:target > 1 in
    if target_tiered then begin
      let bottom = last <= target && Version.level_runs t.vers target = [] in
      match runs with
      | [ r ]
        when t.cfg.Config.allow_trivial_move && not (bottom && has_tombstones r.Version.files)
        ->
        (* A single leveled run pushed into a tiered level: appendable
           verbatim as its own run. *)
        P_move
          { files = r.Version.files; target_level = target; target_group = fresh_group t }
      | _ ->
        P_merge
          (plan_merge t ~input_runs:runs ~extra_removed:[] ~target_level:target
             ~target_group:(fresh_group t) ~bottom)
    end
    else begin
      let next_runs = Version.level_runs t.vers target in
      P_merge
        (plan_merge t ~input_runs:(runs @ next_runs) ~extra_removed:[] ~target_level:target
           ~target_group:(leveled_target_group t target) ~bottom:(last <= target))
    end
  | J_whole_level l ->
    let runs = Version.level_runs t.vers l in
    let next_runs = Version.level_runs t.vers (l + 1) in
    P_merge
      (plan_merge t ~input_runs:(runs @ next_runs) ~extra_removed:[] ~target_level:(l + 1)
         ~target_group:(leveled_target_group t (l + 1)) ~bottom:(last <= l + 1))
  | J_file (l, f) ->
    let target = l + 1 in
    let next_run_files =
      List.concat_map (fun (r : Version.run) -> r.Version.files) (Version.level_runs t.vers target)
    in
    (* A range tombstone in [f] may extend past [f.max_key]; widen the
       next-level overlap so its victims are merged (else retiring the
       tombstone at the bottom would resurrect them). *)
    let hi =
      List.fold_left
        (fun acc (rd : Entry.t) -> Lsm_util.Comparator.max_key (cmp_of t) acc rd.value)
        f.Table_meta.max_key (rds_of_files t [ f ])
    in
    let overlapping =
      Picker.overlapping ~cmp:(cmp_of t) ~lo:f.Table_meta.min_key ~hi next_run_files
    in
    Hashtbl.replace t.rr_cursors l f.Table_meta.max_key;
    let bottom = last <= target in
    if
      t.cfg.Config.allow_trivial_move
      && overlapping = []
      && not (bottom && has_tombstones [ f ])
    then
      P_move
        { files = [ f ]; target_level = target; target_group = leveled_target_group t target }
    else begin
      let input_runs =
        [ { Version.group = max_int; files = [ f ] };
          { Version.group = 0; files = overlapping } ]
      in
      P_merge
        (plan_merge t ~input_runs ~extra_removed:[] ~target_level:target
           ~target_group:(leveled_target_group t target) ~bottom)
    end

let run_planned t = function
  | P_move { files; target_level; target_group } ->
    trivial_move t ~files ~target_level ~target_group
  | P_merge p -> ignore (merge_commit t p (merge_execute t p))

let planned_input_bytes = function
  | P_merge p -> p.mp_read_bytes
  | P_move { files; _ } -> List.fold_left (fun a (f : Table_meta.t) -> a + f.size) 0 files

let execute_job t job = run_planned t (plan_of_job t job)

(* Conflict key for a background pick: the job's source level plus the
   inclusive key span of everything it may read or rewrite — source and
   next-level runs, or for a single-file job the file plus its (widened)
   next-level overlap. Computed before planning, so a refused pick has
   no side effects. A span wider than the eventual inputs only costs
   parallelism, never correctness. *)
let key_of_job t job =
  let span level runs =
    match Version.runs_key_range ~cmp:(cmp_of t) runs with
    | Some (lo, hi) -> Scheduler.Compact { level; lo; hi }
    | None -> Scheduler.Compact { level; lo = ""; hi = "" }
  in
  match job with
  | J_level0 -> span 0 (Version.level_runs t.vers 0 @ Version.level_runs t.vers 1)
  | J_tier_merge l | J_whole_level l ->
    span l (Version.level_runs t.vers l @ Version.level_runs t.vers (l + 1))
  | J_file (l, f) ->
    let next_run_files =
      List.concat_map
        (fun (r : Version.run) -> r.Version.files)
        (Version.level_runs t.vers (l + 1))
    in
    let hi =
      List.fold_left
        (fun acc (rd : Entry.t) -> Lsm_util.Comparator.max_key (cmp_of t) acc rd.value)
        f.Table_meta.max_key (rds_of_files t [ f ])
    in
    let overlapping =
      Picker.overlapping ~cmp:(cmp_of t) ~lo:f.Table_meta.min_key ~hi next_run_files
    in
    span l [ { Version.group = 0; files = f :: overlapping } ]

(* One compaction step on the calling domain; no lane coordination —
   [schedule_compactions] runs this from inside background jobs. The
   public [compact_once] below quiesces first. *)
let compact_step t =
  match pick_compaction t with
  | None -> false
  | Some job ->
    execute_job t job;
    true

let max_cascade = 1000

(* Drain pending compactions, optionally capped per round (the throttling
   of Luo & Carey [81]: spreading the merge work across many writes keeps
   write latency stable at the cost of a transiently deeper tree). *)
let schedule_compactions t =
  let budget =
    match t.cfg.Config.compaction_bytes_per_round with Some b -> b | None -> max_int
  in
  let moved () =
    t.db_stats.Stats.compaction_bytes_read + t.db_stats.Stats.compaction_bytes_written
  in
  let start = moved () in
  let rec loop n =
    if n < max_cascade && moved () - start < budget && compact_step t then loop (n + 1)
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Background scheduling & backpressure                                 *)
(* ------------------------------------------------------------------ *)

let quiesce_bg t = match t.sched with Some s -> Scheduler.quiesce s | None -> ()

(* Readers pin the installed version so background compaction cannot
   delete the [.sst] files under them; inline mode has no concurrent
   deleter and skips the registry. *)
let with_pin t f =
  match t.sched with None -> f () | Some _ -> Version.Pins.with_pin t.pins f

(* Background jobs report through the scheduler's failure latch; this
   wrapper additionally flips the engine into fail-safe read-only mode
   and makes sure the parked exception is typed. [Device.Crashed] passes
   through unwrapped and does not change health — crash injection models
   power loss, which reopen-time recovery handles, not bad hardware. *)
let guard_bg_job t job () =
  try job () with
  | Device.Crashed as e -> raise e
  | Lsm_error.Error _ as e ->
    enter_failsafe t;
    raise e
  | e ->
    enter_failsafe t;
    raise
      (Lsm_error.io_error ~retriable:false
         ("background maintenance failed: " ^ Printexc.to_string e))

(* Inline maintenance (flush/compaction on the write path) gets the same
   health transition but re-raises the original exception — the caller
   sees the failure directly rather than through the latch. *)
let guard_inline_maintenance t f =
  try f () with
  | Device.Crashed as e -> raise e
  | e ->
    enter_failsafe t;
    raise e

(* Wrap both phases of a two-phase background job with the fail-safe
   guard: an error in either phase flips the engine read-only and parks
   a typed error in the scheduler's failure latch. *)
let bg_phases t mk () =
  let commit = guard_bg_job t mk () in
  fun () -> guard_bg_job t commit ()

(* Claim the oldest unclaimed immutable buffer for a background flush
   ticket iff the stack is over the limit net of buffers already
   claimed — one ticket per buffer, exactly the work the inline trigger
   does per rotation. Claiming moves the buffer's bytes out of
   [imm_bytes]: from here until its commit pops it they are accounted
   as the ticket's unapplied input bytes instead. *)
let claim_flush t =
  Ordered_mutex.with_lock t.buf_mutex (fun () ->
      if t.imm_count - t.bg_flush_claims > t.cfg.Config.max_immutable_buffers then begin
        let buffer = List.nth (List.rev t.immutables) t.bg_flush_claims in
        t.bg_flush_claims <- t.bg_flush_claims + 1;
        t.imm_bytes <- t.imm_bytes - Memtable.footprint buffer.mt;
        Some buffer
      end
      else None)

(* Commit-time compaction picker: the sequencer calls this after every
   committed edit (in commit order, on whichever worker holds the
   committer token — serialized, so it may read [t.vers] and allocate
   groups like the inline scheduler does). Each call submits at most ONE
   pick, which the sequencer front-inserts at the commit head — so the
   pick applies before any already-queued flush, exactly where the
   inline scheduler would have run it. The cascade then advances one
   step per commit: the pick's own commit re-runs this hook against the
   updated tree, replaying inline's pick-apply-repick loop until
   [pick_compaction] returns [None] — the same fixpoint at which the
   inline cascade stops. A pick whose key conflicts with an in-flight
   ticket is refused without side effects (the trigger fires again at
   that ticket's commit); pending flushes are ignored for refusal — see
   [Scheduler.conflicts_pending]. *)
let bg_pick_compactions t sched =
  match pick_compaction t with
  | None -> ()
  | Some job ->
    let key = key_of_job t job in
    if not (Scheduler.conflicts_pending ~ignore_flush:true sched key) then begin
      let planned = plan_of_job t job in
      Scheduler.submit sched ~key ~input_bytes:(planned_input_bytes planned)
        ~execute:
          (bg_phases t (fun () ->
               match planned with
               | P_move _ -> fun () -> run_planned t planned
               | P_merge p ->
                 let res = merge_execute t p in
                 fun () -> ignore (merge_commit t p res)))
    end

(* RocksDB-style backpressure, re-denominated in bytes: debt = unclaimed
   immutable-buffer bytes + L0 run bytes + captured input bytes of every
   enqueued-but-unapplied ticket. The debt reads are deliberately
   lock-free (stale by at most a step — this is a throttle, not an
   invariant). *)
let bg_debt t sched =
  t.imm_bytes + Version.level_bytes t.vers 0 + Scheduler.unapplied_bytes sched

let bg_after_rotate t sched =
  (match claim_flush t with
  | None -> ()
  | Some buffer ->
    Scheduler.submit sched ~key:Scheduler.Flush
      ~input_bytes:(Memtable.footprint buffer.mt)
      ~execute:
        (bg_phases t (fun () ->
             let metas = flush_execute t buffer in
             fun () ->
               flush_commit t buffer metas;
               pop_buffer t ~claimed:true buffer)));
  let d = bg_debt t sched in
  if d >= t.cfg.Config.write_stop_trigger then begin
    t.db_stats.Stats.write_stops <- t.db_stats.Stats.write_stops + 1;
    Scheduler.wait_until sched (fun ~pending:_ ~unapplied_bytes ->
        t.imm_bytes + Version.level_bytes t.vers 0 + unapplied_bytes
        < t.cfg.Config.write_stop_trigger)
  end
  else if d >= t.cfg.Config.write_slowdown_trigger then begin
    t.db_stats.Stats.write_slowdowns <- t.db_stats.Stats.write_slowdowns + 1;
    (* Proportional delay (the shape of RocksDB's delayed-write-rate):
       ramps linearly from ~50µs just past the slowdown trigger to ~1ms
       as debt approaches the stop threshold, so backpressure tightens
       smoothly instead of jumping from a fixed nap straight to a full
       stop. The injected delay is recorded so benches can see it. *)
    let span =
      max 1 (t.cfg.Config.write_stop_trigger - t.cfg.Config.write_slowdown_trigger)
    in
    let excess = min span (1 + d - t.cfg.Config.write_slowdown_trigger) in
    let frac = float_of_int excess /. float_of_int span in
    let delay = 0.00005 +. ((0.001 -. 0.00005) *. frac) in
    Lsm_util.Histogram.add t.db_stats.Stats.slowdown_delay_ns
      (int_of_float (delay *. 1e9));
    Unix.sleepf delay
  end

let compact_once t =
  quiesce_bg t;
  compact_step t

(* ------------------------------------------------------------------ *)
(* Write path                                                          *)
(* ------------------------------------------------------------------ *)

let maybe_flush_for_write t =
  if t.imm_count > t.cfg.Config.max_immutable_buffers then begin
    let before = Io_stats.copy (Device.stats t.dev) in
    guard_inline_maintenance t (fun () ->
        while t.imm_count > t.cfg.Config.max_immutable_buffers do
          flush_oldest t
        done;
        schedule_compactions t);
    let d = Io_stats.diff (Device.stats t.dev) before in
    let burst =
      Io_stats.bytes_written ~cls:Io_stats.C_flush d
      + Io_stats.bytes_written ~cls:Io_stats.C_compaction_write d
    in
    t.db_stats.Stats.write_stalls <- t.db_stats.Stats.write_stalls + 1;
    Lsm_util.Histogram.add t.db_stats.Stats.stall_burst_bytes burst
  end

let check_open t = if t.closed then invalid_arg "Db: closed"

(* Fail-safe mode rejects mutations with a typed error; reads stay up
   and [try_resume] re-arms the engine. *)
let check_writable t =
  check_open t;
  if Atomic.get t.health = Failsafe_read_only then
    raise
      (Lsm_error.read_only
         "fail-safe mode after a maintenance failure (Db.try_resume to re-arm)")

(* Shared tail of [write]/[apply_batch]: rotation trigger plus the
   per-backend follow-up work. [throttle] is true only for single
   writes — batches never paid the throttled-mode slice, and keeping
   that exact shape keeps the inline cost-model experiments bit-stable. *)
let after_memtable_add t ~throttle =
  if Memtable.footprint t.active.mt >= t.dyn_buffer_size then begin
    rotate t;
    (match t.sched with
    | Some sched -> bg_after_rotate t sched
    | None -> maybe_flush_for_write t);
    if t.cfg.Config.scrub_interval > 0. then t.scrub_tick ()
  end
  else
    match t.sched with
    | None when throttle && t.cfg.Config.compaction_bytes_per_round <> None ->
      (* Throttled mode: pay down deferred compaction debt a slice at a
         time on ordinary writes instead of in bursts at flush points.
         In background mode the budget throttles each lane job instead. *)
      schedule_compactions t
    | _ -> ()

let write t (e : Entry.t) =
  check_writable t;
  let t0 = now_ns () in
  ignore (Atomic.fetch_and_add t.clock 1);
  (match t.active.wal with
  | Some w -> Wal.append w ~sync:t.cfg.Config.wal_sync_every_write [ e ]
  | None -> ());
  Memtable.add t.active.mt e;
  (* Publish only after the memtable insert: readers that observe this
     ceiling are guaranteed to find the entry (SC atomics order the
     plain insert before the store, and the reader's load before its
     traversal). *)
  Atomic.set t.visible_seqno e.Entry.seqno;
  after_memtable_add t ~throttle:true;
  Lsm_util.Histogram.add t.db_stats.Stats.write_latency_ns (now_ns () - t0)

let next_seqno t =
  t.seqno <- t.seqno + 1;
  t.seqno

let put t ~key value =
  let e = Entry.put ~key ~seqno:(next_seqno t) value in
  t.db_stats.Stats.user_puts <- t.db_stats.Stats.user_puts + 1;
  t.db_stats.Stats.user_bytes_ingested <-
    t.db_stats.Stats.user_bytes_ingested + String.length key + String.length value;
  write t e

let delete t key =
  let e = Entry.delete ~key ~seqno:(next_seqno t) in
  t.db_stats.Stats.user_deletes <- t.db_stats.Stats.user_deletes + 1;
  t.db_stats.Stats.user_bytes_ingested <- t.db_stats.Stats.user_bytes_ingested + String.length key;
  write t e

let single_delete t key =
  let e = Entry.single_delete ~key ~seqno:(next_seqno t) in
  t.db_stats.Stats.user_deletes <- t.db_stats.Stats.user_deletes + 1;
  t.db_stats.Stats.user_bytes_ingested <- t.db_stats.Stats.user_bytes_ingested + String.length key;
  write t e

let range_delete t ~lo ~hi =
  if (cmp_of t).Comparator.compare lo hi >= 0 then
    invalid_arg "Db.range_delete: lo must be < hi";
  let e = Entry.range_delete ~start_key:lo ~end_key:hi ~seqno:(next_seqno t) in
  t.db_stats.Stats.user_deletes <- t.db_stats.Stats.user_deletes + 1;
  t.db_stats.Stats.user_bytes_ingested <-
    t.db_stats.Stats.user_bytes_ingested + String.length lo + String.length hi;
  write t e

let merge t ~key operand =
  let e = Entry.merge ~key ~seqno:(next_seqno t) operand in
  t.db_stats.Stats.user_puts <- t.db_stats.Stats.user_puts + 1;
  t.db_stats.Stats.user_bytes_ingested <-
    t.db_stats.Stats.user_bytes_ingested + String.length key + String.length operand;
  write t e

(* One WAL record, one sequence-number range, one durability point: the
   batch recovers all-or-nothing after a crash. *)
let apply_batch t batch =
  check_writable t;
  match Write_batch.operations batch with
  | [] -> ()
  | ops ->
    let t0 = now_ns () in
    let entries =
      List.map
        (fun (kind, key, value) ->
          let seqno = next_seqno t in
          ignore (Atomic.fetch_and_add t.clock 1);
          (match kind with
          | Entry.Put | Entry.Merge ->
            t.db_stats.Stats.user_puts <- t.db_stats.Stats.user_puts + 1
          | Entry.Delete | Entry.Single_delete | Entry.Range_delete ->
            t.db_stats.Stats.user_deletes <- t.db_stats.Stats.user_deletes + 1);
          t.db_stats.Stats.user_bytes_ingested <-
            t.db_stats.Stats.user_bytes_ingested + String.length key + String.length value;
          { Entry.key; seqno; kind; value })
        ops
    in
    (match t.active.wal with
    | Some w -> Wal.append w ~sync:t.cfg.Config.wal_sync_every_write entries
    | None -> ());
    List.iter (Memtable.add t.active.mt) entries;
    (* The whole batch becomes visible at once: the ceiling moves only
       after the last entry is inserted, so no reader can resolve part
       of the batch without the rest (multi_get atomicity). *)
    Atomic.set t.visible_seqno t.seqno;
    after_memtable_add t ~throttle:false;
    Lsm_util.Histogram.add t.db_stats.Stats.write_latency_ns (now_ns () - t0)

(* ------------------------------------------------------------------ *)
(* Read path                                                           *)
(* ------------------------------------------------------------------ *)

(* Highest-seqno visible range tombstone covering [key]. [active],
   [immutables], and [table_rds] are the caller's consistent snapshot
   (see [capture_read_ctx]). *)
let covering_rd_seqno t ~active ~immutables ~table_rds ~snap key =
  let cmp = cmp_of t in
  let best = ref 0 in
  let consider (lo, hi, seqno) =
    if
      seqno <= snap
      && cmp.Comparator.compare lo key <= 0
      && cmp.Comparator.compare key hi < 0
      && seqno > !best
    then best := seqno
  in
  let mem_rds b =
    List.iter
      (fun (e : Entry.t) -> consider (e.key, e.value, e.seqno))
      (Memtable.range_tombstones b.mt)
  in
  mem_rds active;
  List.iter mem_rds immutables;
  List.iter consider table_rds;
  !best

(* Binary search the file of a sorted run that may hold [key]. *)
let find_file_in_run (cmp : Comparator.t) (r : Version.run) key =
  let files = Array.of_list r.Version.files in
  let n = Array.length files in
  (* last file with min_key <= key *)
  let lo = ref 0 and hi = ref (n - 1) in
  if n = 0 || cmp.compare files.(0).Table_meta.min_key key > 0 then None
  else begin
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if cmp.compare files.(mid).Table_meta.min_key key <= 0 then lo := mid else hi := mid - 1
    done;
    let f = files.(!lo) in
    if cmp.compare key f.Table_meta.max_key <= 0 then Some f else None
  end

type probe_outcome =
  | Found of Entry.t
  | Absent  (** nothing for this key in this source *)

(* Probe disk runs in recency order, returning the newest visible point
   entry; accounts filter statistics when [record] (pool domains pass
   false — the counters are not domain-safe, and multi_get aggregates on
   the calling domain instead). *)
let probe_tables t ~v ~snap ~record key =
  let cmp = cmp_of t in
  let result = ref None in
  (try
     for l = 0 to Version.max_levels - 1 do
       List.iter
         (fun (r : Version.run) ->
           match find_file_in_run cmp r key with
           | None -> ()
           | Some f -> (
             (* [find_file_in_run] selected [f] by key range, so a
                quarantined hit means the key lives in the fenced range. *)
             raise_quarantined t f;
             guard_table_read t f @@ fun () ->
             let reader = Table_cache.get t.tables f.Table_meta.file_name in
             if not (Sstable.may_contain_key reader key) then begin
               if record then
                 t.db_stats.Stats.filter_negatives <- t.db_stats.Stats.filter_negatives + 1
             end
             else begin
               if record then t.db_stats.Stats.runs_probed <- t.db_stats.Stats.runs_probed + 1;
               match Sstable.get reader ~cls:Io_stats.C_user_read ~max_seqno:snap key with
               | Some e -> begin
                 result := Some e;
                 raise Exit
               end
               | None ->
                 if record then
                   t.db_stats.Stats.filter_false_positives <-
                     t.db_stats.Stats.filter_false_positives + 1
             end))
         (Version.level_runs v l)
     done
   with Exit -> ());
  !result

(* Resolve a merge chain by iterating every visible version of [key],
   newest first. Used only when the newest visible entry is a Merge. *)
let resolve_merge_chain t ~v ~active ~immutables ~snap ~rd_seq key =
  let cmp = cmp_of t in
  let sources =
    (Memtable.iterator active.mt :: List.map (fun b -> Memtable.iterator b.mt) immutables)
    @ List.concat_map
        (fun l ->
          List.map
            (fun (r : Version.run) ->
              match find_file_in_run cmp r key with
              | Some f ->
                Sstable.iterator (Table_cache.get t.tables f.Table_meta.file_name)
                  ~cls:Io_stats.C_user_read ()
              | None -> Iter.empty)
            (Version.level_runs v l))
        (List.init Version.max_levels Fun.id)
  in
  let it = Iter.merge cmp sources in
  it.Iter.seek key;
  let operands = ref [] in
  let base = ref None in
  (try
     while it.Iter.valid () do
       let e = it.Iter.entry () in
       if not (String.equal e.Entry.key key) then raise Exit;
       if e.Entry.seqno <= snap && e.Entry.kind <> Entry.Range_delete then begin
         if e.Entry.seqno <= rd_seq then raise Exit (* rest is range-deleted *)
         else
           match e.Entry.kind with
           | Entry.Put ->
             base := Some e.Entry.value;
             raise Exit
           | Entry.Delete | Entry.Single_delete -> raise Exit
           | Entry.Merge -> operands := e.Entry.value :: !operands
           | Entry.Range_delete -> ()
       end;
       it.Iter.next ()
     done
   with Exit -> ());
  (* Encounter order was newest-to-oldest; consing reversed it, so
     [operands] is oldest-first — the operator's expected order. *)
  match (!operands, !base) with
  | [], base -> base
  | oldest_first, base -> (
    match t.cfg.Config.merge_operator with
    | Some f -> Some (f key base oldest_first)
    | None -> Some (List.hd (List.rev oldest_first)))

(* One coherent view of the database, captured once and then used to
   resolve any number of keys: the snapshot ceiling, the memtable stack,
   and the installed version with its range tombstones. Every read API
   resolves {e all} of its keys against a single capture — this is what
   makes a {!multi_get} (either path) atomic with respect to a
   concurrent {!apply_batch}: a per-key re-capture could observe the
   batch half-applied across the returned list. *)
type read_ctx = {
  rc_snap : int;  (** highest visible seqno *)
  rc_active : buffer_unit;
  rc_immutables : buffer_unit list;
  rc_version : Version.t;
  rc_rds : (string * string * int) list;  (** table range tombstones of [rc_version] *)
}

(* Capture order is load-bearing twice over.

   Ceiling and buffers together, under the buffer lock: [visible_seqno]
   is published only after the whole write/batch is in the memtable, so
   every entry at or below the ceiling is already fully inserted —
   reading both in one critical section, a reader can never select a
   seqno whose entry it cannot find, and can never see a batch's tail
   without its head. The lock matters for the ceiling too, not just the
   stack copy: flush-time GC keeps only each key's newest version (plus
   registered-snapshot pins), so an implicit read point — which is
   registered nowhere — is only safe while the buffers that resolve it
   are still reachable. Reading the ceiling outside the lock opens a
   stall window in which the buffer holding every entry at or below the
   ceiling is flushed, GC'd down to versions above the ceiling, and
   popped — leaving the context with no resolvable version of any key.
   Pops take this same lock, so inside the critical section the stack
   cannot retire under us; after it, our references keep the captured
   memtables alive no matter what the maintenance lane does.

   Buffers before view: the memtable stack is snapshotted *before*
   [read_view] is read, and the flush job installs the new view *before*
   popping the buffer. So if a buffer is already gone from our snapshot,
   the view we then read must contain its flushed table — entries can be
   seen twice during the overlap (probe order dedupes) but never zero
   times. The caller holds a version pin, keeping every file of
   [rc_version] on disk.

   An explicit [snapshot] needs none of the ceiling choreography — its
   seqno is protected from GC by the registry ([live_snapshots]) — but
   shares the locked stack copy. *)
let capture_read_ctx t ?snapshot () =
  let snap, active, immutables =
    Ordered_mutex.with_lock t.buf_mutex (fun () ->
        let snap =
          match snapshot with
          | Some s -> Snapshot.seqno s
          | None -> Atomic.get t.visible_seqno
        in
        (snap, t.active, t.immutables))
  in
  let v, table_rds = t.read_view in
  { rc_snap = snap; rc_active = active; rc_immutables = immutables;
    rc_version = v; rc_rds = table_rds }

(* The full read path for one key against a captured context, minus
   clock/statistics bookkeeping: shared by {!get} (record = true) and
   both paths of {!multi_get} (record = false on pool domains — the
   counters are not domain-safe; the caller aggregates instead). *)
let lookup_in_ctx t ctx ~record key =
  let { rc_snap = snap; rc_active = active; rc_immutables = immutables;
        rc_version = v; rc_rds = table_rds } = ctx in
  let rd_seq = covering_rd_seqno t ~active ~immutables ~table_rds ~snap key in
  let newest =
    match Memtable.find active.mt ~max_seqno:snap key with
    | Some e -> Found e
    | None -> (
      let rec try_immutables = function
        | [] -> Absent
        | b :: rest -> (
          match Memtable.find b.mt ~max_seqno:snap key with
          | Some e -> Found e
          | None -> try_immutables rest)
      in
      match try_immutables immutables with
      | Found e -> Found e
      | Absent -> (
        match probe_tables t ~v ~snap ~record key with Some e -> Found e | None -> Absent))
  in
  match newest with
  | Absent -> None
  | Found e ->
    if e.Entry.seqno <= rd_seq then None
    else begin
      match e.Entry.kind with
      | Entry.Put -> Some e.Entry.value
      | Entry.Delete | Entry.Single_delete -> None
      | Entry.Merge -> resolve_merge_chain t ~v ~active ~immutables ~snap ~rd_seq key
      | Entry.Range_delete -> None
    end

let get t ?snapshot key =
  check_open t;
  ignore (Atomic.fetch_and_add t.clock 1);
  t.db_stats.Stats.user_gets <- t.db_stats.Stats.user_gets + 1;
  let probes_before = t.db_stats.Stats.runs_probed in
  let result =
    with_pin t (fun () ->
        lookup_in_ctx t (capture_read_ctx t ?snapshot ()) ~record:true key)
  in
  Lsm_util.Histogram.add t.db_stats.Stats.get_run_probes
    (t.db_stats.Stats.runs_probed - probes_before);
  if result <> None then t.db_stats.Stats.gets_found <- t.db_stats.Stats.gets_found + 1;
  result

(* Split [xs] into at most [n] contiguous chunks of near-equal length. *)
let chunk_list n xs =
  let len = List.length xs in
  let per = max 1 ((len + n - 1) / n) in
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec split = function
    | [] -> []
    | xs ->
      let c, rest = take per [] xs in
      c :: split rest
  in
  split xs

let multi_get t ?snapshot keys =
  check_open t;
  ignore (Atomic.fetch_and_add t.clock 1);
  let results =
    (* One pin and ONE captured context cover the whole batch, on either
       path — every key resolves against the same snapshot ceiling,
       memtable stack, and version, so the result list is a point-in-time
       cut (a concurrent [apply_batch] is all-there or all-absent, never
       half). The pin is taken on the calling domain and held until every
       chunk has settled. *)
    with_pin t (fun () ->
        let ctx = capture_read_ctx t ?snapshot () in
        match t.pool with
        | Some pool when Domain_pool.size pool > 1 && List.length keys > 1 ->
          (* One chunk per worker: the per-task overhead (queue lock,
             future wakeup) amortizes over the chunk, and results
             concatenate back in input order. Reads are pure — all
             statistics except probe counters are accounted below, on the
             calling domain. *)
          let chunks = chunk_list (Domain_pool.size pool) keys in
          List.concat
            (Domain_pool.map_list pool
               (fun chunk -> List.map (fun key -> lookup_in_ctx t ctx ~record:false key) chunk)
               chunks)
        | _ -> List.map (fun key -> lookup_in_ctx t ctx ~record:false key) keys)
  in
  let n = List.length keys in
  t.db_stats.Stats.user_gets <- t.db_stats.Stats.user_gets + n;
  let found = List.fold_left (fun a r -> if r <> None then a + 1 else a) 0 results in
  t.db_stats.Stats.gets_found <- t.db_stats.Stats.gets_found + found;
  results

(* ---------------- scan ---------------- *)

let scan_rds t ~active ~immutables ~table_rds ~snap ~lo ~hi =
  let cmp = cmp_of t in
  (* rd [rlo, rhi) overlaps scan [lo, hi)? *)
  let overlaps (rlo, rhi, seqno) =
    let below_hi = match hi with None -> true | Some h -> cmp.Comparator.compare rlo h < 0 in
    seqno <= snap && below_hi && cmp.Comparator.compare lo rhi < 0
  in
  let out = ref [] in
  let consider (rlo, rhi, seqno) = if overlaps (rlo, rhi, seqno) then out := (rlo, rhi, seqno) :: !out in
  let mem_rds b =
    List.iter (fun (e : Entry.t) -> consider (e.key, e.value, e.seqno)) (Memtable.range_tombstones b.mt)
  in
  mem_rds active;
  List.iter mem_rds immutables;
  List.iter consider table_rds;
  !out

let fold t ?snapshot ?(limit = max_int) ~lo ~hi ~init ~f () =
  check_open t;
  ignore (Atomic.fetch_and_add t.clock 1);
  t.db_stats.Stats.user_scans <- t.db_stats.Stats.user_scans + 1;
  let cmp = cmp_of t in
  with_pin t @@ fun () ->
  (* Same capture discipline as [get]/[multi_get]: ceiling first, then
     buffers, then view, one read each. *)
  let { rc_snap = snap; rc_active = active; rc_immutables = immutables;
        rc_version = v; rc_rds = table_rds } =
    capture_read_ctx t ?snapshot ()
  in
  let rds = scan_rds t ~active ~immutables ~table_rds ~snap ~lo ~hi in
  let rd_covering key seqno =
    List.exists
      (fun (rlo, rhi, rseq) ->
        rseq > seqno && cmp.Comparator.compare rlo key <= 0 && cmp.Comparator.compare key rhi < 0)
      rds
  in
  let mem_sources =
    Memtable.iterator active.mt :: List.map (fun b -> Memtable.iterator b.mt) immutables
  in
  let table_sources =
    List.concat_map
      (fun (_, r) ->
        let files = Version.files_of_run_overlapping ~cmp ~lo ~hi r in
        let files =
          List.filter
            (fun (f : Table_meta.t) ->
              raise_quarantined t f;
              guard_table_read t f @@ fun () ->
              let reader = Table_cache.get t.tables f.file_name in
              let keep = Sstable.may_overlap_range reader ~lo ~hi in
              if not keep then
                t.db_stats.Stats.range_filter_skips <- t.db_stats.Stats.range_filter_skips + 1;
              keep)
            files
        in
        match files with
        | [] -> []
        | files ->
          [ Iter.concat
              (List.map
                 (fun (f : Table_meta.t) ->
                   Sstable.iterator (Table_cache.get t.tables f.file_name)
                     ~cls:Io_stats.C_user_read ())
                 files) ])
      (Version.runs_overlapping ~cmp ~lo ~hi v)
  in
  let it = Iter.merge cmp (mem_sources @ table_sources) in
  it.Iter.seek lo;
  let acc = ref init in
  let count = ref 0 in
  let in_range key =
    match hi with None -> true | Some h -> cmp.Comparator.compare key h < 0
  in
  while it.Iter.valid () && !count < limit && in_range (it.Iter.entry ()).Entry.key do
    let key = (it.Iter.entry ()).Entry.key in
    (* Resolve this key: first visible version decides; merges accumulate. *)
    let operands = ref [] in
    let base = ref None in
    let decided = ref false in
    while it.Iter.valid () && String.equal (it.Iter.entry ()).Entry.key key do
      let e = it.Iter.entry () in
      if
        (not !decided)
        && e.Entry.seqno <= snap
        && e.Entry.kind <> Entry.Range_delete
      then begin
        if rd_covering key e.Entry.seqno then decided := true
        else
          match e.Entry.kind with
          | Entry.Put ->
            base := Some e.Entry.value;
            decided := true
          | Entry.Delete | Entry.Single_delete -> decided := true
          | Entry.Merge -> operands := e.Entry.value :: !operands
          | Entry.Range_delete -> ()
      end;
      it.Iter.next ()
    done;
    (* [operands] accumulated by consing along a newest-to-oldest walk,
       so it sits oldest-first already. *)
    let value =
      match (!operands, !base) with
      | [], b -> b
      | oldest_first, b -> (
        match t.cfg.Config.merge_operator with
        | Some f -> Some (f key b oldest_first)
        | None -> (
          match List.rev oldest_first with newest :: _ -> Some newest | [] -> b))
    in
    (match value with
    | Some v ->
      acc := f !acc key v;
      incr count
    | None -> ())
  done;
  !acc

let scan t ?snapshot ?limit ~lo ~hi () =
  List.rev
    (fold t ?snapshot ?limit ~lo ~hi ~init:[] ~f:(fun acc k v -> (k, v) :: acc) ())

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

(* Registration and release are read-modify-writes on the registry list;
   unsynchronized, two concurrent calls lose one of the updates — and a
   lost registration means merge-time GC no longer knows the snapshot
   exists. Both run under [snap_mutex] (rank [db_snapshots]; no other
   lock is ever taken inside).

   The snapshot pins [visible_seqno], not [seqno]: the allocation
   counter may run ahead of the memtable mid-batch, and a snapshot at
   such a seqno would read a half-applied batch. *)
let snapshot t =
  check_open t;
  Ordered_mutex.with_lock t.snap_mutex (fun () ->
      let s = Snapshot.make (Atomic.get t.visible_seqno) in
      t.snapshots <- Snapshot.seqno s :: t.snapshots;
      s)

let release t s =
  let rec remove_one = function
    | [] -> []
    | x :: rest -> if x = Snapshot.seqno s then rest else x :: remove_one rest
  in
  Ordered_mutex.with_lock t.snap_mutex (fun () -> t.snapshots <- remove_one t.snapshots)

(* ------------------------------------------------------------------ *)
(* Maintenance & introspection                                         *)
(* ------------------------------------------------------------------ *)

(* Foreground maintenance first drains the background lane (re-raising
   any parked failure), then runs inline on the calling domain: with the
   lane idle and the caller being the only job producer, the version is
   safe to mutate from here. [flush_work] skips the writability check —
   [close] must be able to drain buffers even in fail-safe mode. *)
let flush_work t =
  quiesce_bg t;
  (* Rebaseline the claim accounting: with the lane drained no flush
     ticket is outstanding, but a failed-and-discarded ticket may have
     left its claim (and byte deduction) behind — its buffer is still
     in the stack and is about to be flushed inline here. *)
  Ordered_mutex.with_lock t.buf_mutex (fun () ->
      t.bg_flush_claims <- 0;
      t.imm_bytes <-
        List.fold_left (fun a b -> a + Memtable.footprint b.mt) 0 t.immutables);
  rotate t;
  while t.imm_count > 0 do
    flush_oldest t
  done;
  schedule_compactions t

let flush t =
  check_writable t;
  guard_inline_maintenance t (fun () -> flush_work t)

(* ------------------------------------------------------------------ *)
(* Integrity scrubbing & fail-safe recovery                            *)
(* ------------------------------------------------------------------ *)

(* Discard any parked background failure and leave fail-safe mode.
   Quarantined tables stay fenced (re-arming cannot un-corrupt a file),
   so health lands on [Degraded] when any remain. *)
let try_resume t =
  check_open t;
  (match t.sched with Some s -> ignore (Scheduler.take_failure s) | None -> ());
  let target = if Atomic.get t.quarantined = [] then Healthy else Degraded in
  Atomic.set t.health target;
  t.db_stats.Stats.resumes <- t.db_stats.Stats.resumes + 1;
  target

(* One table's scrub, shared by the synchronous scrubber and the
   background jobs: every data block re-read and CRC-checked. A defect
   quarantines the table and is returned rather than raised — the
   scrubber reports findings, it does not abort on the first one. *)
let verify_one_table t (f : Table_meta.t) =
  match
    let reader = Table_cache.get t.tables f.Table_meta.file_name in
    Sstable.verify reader ~cls:Io_stats.C_misc;
    (* Content proven sound: also heal any silent rot in the table's ECC
       section / parity pages so the next corruption finds full parity. *)
    ignore (Sstable.scrub_ecc reader ~cls:Io_stats.C_misc)
  with
  | () -> None
  | exception Lsm_error.Error c ->
    add_quarantine t (quarantine_of_meta f (Lsm_error.to_string c));
    Some c
  | exception Not_found ->
    let detail = "referenced table missing" in
    add_quarantine t (quarantine_of_meta f detail);
    Some (Lsm_error.Corruption { file = f.Table_meta.file_name; offset = None; detail })

let verify_integrity t =
  check_open t;
  let findings = ref [] in
  let add c =
    note_corruption t;
    findings := c :: !findings
  in
  (* 1. Manifest: the frame chain must be intact up to the live end (the
     open manifest carries no seal yet, so only framing is checked —
     edit decodability was proven at recovery). *)
  (match Framed_log.load t.dev ~name:Manifest.file_name with
  | exception Not_found ->
    add
      (Lsm_error.Corruption
         { file = Manifest.file_name; offset = None; detail = "manifest missing" })
  | data -> (
    match Framed_log.scan data (fun ~off:_ _ -> ()) with
    | _, Framed_log.Bad_frame off ->
      add
        (Lsm_error.Corruption
           { file = Manifest.file_name; offset = Some off; detail = "bad edit frame" })
    | _ -> ()));
  (* 2. Every live table, under a pin so background compaction cannot
     delete files out from under the walk. *)
  with_pin t (fun () ->
      let v, _ = t.read_view in
      List.iter
        (fun (f : Table_meta.t) ->
          if not (is_quarantined t f.Table_meta.file_name) then
            match verify_one_table t f with Some c -> add c | None -> ())
        (Version.all_files v));
  (* 3. WALs: tolerant scan, reporting every mangled byte range. A file
     deleted by a concurrent flush between listing and reading is fine. *)
  List.iter
    (fun name ->
      match wal_seq_of_name name with
      | None -> ()
      | Some _ -> (
        match Wal.salvage t.dev ~name (fun _ -> ()) with
        | _, gaps ->
          List.iter
            (fun (g0, g1) ->
              add
                (Lsm_error.Corruption
                   {
                     file = name;
                     offset = Some g0;
                     detail = Printf.sprintf "bad WAL frames in [%d,%d)" g0 g1;
                   }))
            gaps
        | exception Not_found -> ()))
    (Device.list_files t.dev);
  t.db_stats.Stats.scrub_runs <- t.db_stats.Stats.scrub_runs + 1;
  t.db_stats.Stats.scrub_errors <-
    t.db_stats.Stats.scrub_errors + List.length !findings;
  List.rev !findings

(* Rate-limited background scrub: one lane job per live table, so user
   flushes/compactions interleave between table verifications, plus
   [Config.scrub_delay] seconds of deliberate idle per table. Inline
   mode degenerates to a synchronous full pass. *)
let scrub t =
  check_open t;
  match t.sched with
  | None -> ignore (verify_integrity t)
  | Some sched ->
    let v, _ = t.read_view in
    List.iter
      (fun (f : Table_meta.t) ->
        Scheduler.enqueue sched (fun () ->
            Version.Pins.with_pin t.pins (fun () ->
                let live, _ = t.read_view in
                let still_live =
                  List.exists
                    (fun (g : Table_meta.t) ->
                      String.equal g.Table_meta.file_name f.Table_meta.file_name)
                    (Version.all_files live)
                in
                if still_live && not (is_quarantined t f.Table_meta.file_name) then begin
                  (match verify_one_table t f with
                  | Some _ ->
                    note_corruption t;
                    t.db_stats.Stats.scrub_errors <- t.db_stats.Stats.scrub_errors + 1
                  | None -> ());
                  if t.cfg.Config.scrub_delay > 0. then
                    Unix.sleepf t.cfg.Config.scrub_delay
                end)))
      (Version.all_files v);
    Scheduler.enqueue sched (fun () ->
        t.db_stats.Stats.scrub_runs <- t.db_stats.Stats.scrub_runs + 1)

(* ------------------------------------------------------------------ *)
(* Open / recover                                                      *)
(* ------------------------------------------------------------------ *)

(* Crash-safety discipline (every step leaves a recoverable state):
   1. read MANIFEST; 2. write the recovered version as one snapshot edit
   to MANIFEST.tmp, synced; 3. atomically rename it over MANIFEST —
   never delete-then-recreate, which has a window holding neither;
   4. delete orphaned tables (referenced by no version); 5. replay the
   surviving WALs and re-log their batches into a fresh WAL, which is
   synced (or, with the WAL disabled, flushed to tables) *before* the
   replayed logs are deleted — acknowledged writes must never have zero
   durable homes. *)
let open_db ?(config = Config.default) ~dev () =
  Config.validate config;
  let recovered = Manifest.recover dev in
  let cache =
    Block_cache.create ~shards:config.Config.block_cache_shards
      ~capacity:config.Config.block_cache_bytes ()
  in
  let db_stats = Stats.create () in
  (* Every ECC repair outcome — from any read path of any cached reader —
     lands in the db's counters through this one closure. *)
  let on_ecc = function
    | Sstable.Ecc_repaired { pages; ns } ->
      db_stats.Stats.ecc_repairs <- db_stats.Stats.ecc_repairs + pages;
      Lsm_util.Histogram.add db_stats.Stats.ecc_repair_ns ns
    | Sstable.Ecc_unrecoverable ->
      db_stats.Stats.ecc_unrecoverable <- db_stats.Stats.ecc_unrecoverable + 1
  in
  let tables =
    Table_cache.create ~capacity:config.Config.max_open_tables ~on_ecc
      ~cmp:config.Config.comparator ~dev ~cache ()
  in
  let pool =
    if config.Config.compaction_parallelism > 1 then
      Some (Domain_pool.create ~size:config.Config.compaction_parallelism)
    else None
  in
  let manifest = Manifest.create ~name:Manifest.tmp_file_name dev in
  let t =
    {
      cfg = config;
      dev;
      cache;
      tables;
      db_stats;
      active =
        { mt = Memtable.create ~kind:config.Config.memtable ~cmp:config.Config.comparator ();
          wal = None;
          wal_name = None };
      immutables = [];
      imm_count = 0;
      imm_bytes = 0;
      bg_flush_claims = 0;
      vers = recovered;
      read_view = (Version.empty, []);
      manifest;
      seqno = recovered.Version.last_seqno;
      visible_seqno = Atomic.make recovered.Version.last_seqno;
      clock = Atomic.make 0;
      snapshots = [];
      snap_mutex =
        Ordered_mutex.create ~rank:Ordered_mutex.Rank.db_snapshots ~name:"db.snapshots";
      next_file_id = recovered.Version.next_file_id;
      next_group = recovered.Version.next_group;
      wal_counter = 0;
      rr_cursors = Hashtbl.create 8;
      dyn_buffer_size = config.Config.write_buffer_size;
      pool;
      id_mutex = Lsm_util.Ordered_mutex.create ~rank:Lsm_util.Ordered_mutex.Rank.db ~name:"db.id";
      buf_mutex =
        Ordered_mutex.create ~rank:Ordered_mutex.Rank.db_buffers ~name:"db.buffers";
      sched =
        (match config.Config.compaction_backend with
        | Config.Background ->
          Some
            (Scheduler.create ~workers:config.Config.compaction_workers
               ~cmp:config.Config.comparator.Comparator.compare ~stats:db_stats ())
        | Config.Inline -> None);
      pins = Version.Pins.create_registry ();
      health = Atomic.make Healthy;
      quarantined = Atomic.make [];
      last_scrub = Unix.gettimeofday ();
      scrub_tick = (fun () -> ());
      closed = false;
    }
  in
  (* Scheduled scrubbing: each memtable rotation checks the wall clock
     and, at most once per [scrub_interval], kicks off a scrub pass —
     background mode trickles per-table jobs through the lane (honoring
     [scrub_delay]), inline mode runs a synchronous pass. *)
  t.scrub_tick <-
    (fun () ->
      let now = Unix.gettimeofday () in
      if now -. t.last_scrub >= t.cfg.Config.scrub_interval then begin
        t.last_scrub <- now;
        t.db_stats.Stats.scrub_runs_scheduled <-
          t.db_stats.Stats.scrub_runs_scheduled + 1;
        scrub t
      end);
  (* Compaction triggers are evaluated after every committed edit, in
     commit order, by whichever worker holds the committer token — the
     background replacement for the inline cascade in
     [schedule_compactions]. *)
  (match t.sched with
  | Some s -> Scheduler.set_on_commit s (guard_bg_job t (fun () -> bg_pick_compactions t s))
  | None -> ());
  let snapshot_edit =
    {
      Version.added =
        (let out = ref [] in
         Array.iteri
           (fun li runs ->
             List.iter
               (fun (r : Version.run) ->
                 List.iter (fun f -> out := (li, r.Version.group, f) :: !out) r.Version.files)
               runs)
           recovered.Version.levels;
         !out);
      removed = [];
      seqno_watermark = recovered.Version.last_seqno;
    }
  in
  t.vers <- Version.empty;
  install_edit t snapshot_edit;
  Manifest.promote t.manifest;
  (* Orphan cleanup: a crash between writing compaction/flush outputs and
     syncing the manifest edit leaves .sst files no version references;
     they are dead weight (and would alias future file ids). *)
  let live =
    List.fold_left
      (fun acc (f : Table_meta.t) -> f.file_name :: acc)
      [] (Version.all_files t.vers)
  in
  let is_table_name n =
    String.length n = 10
    && Filename.check_suffix n ".sst"
    && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub n 0 6)
  in
  List.iter
    (fun name ->
      if is_table_name name && not (List.mem name live) then Device.delete dev name)
    (Device.list_files dev);
  (* Replay surviving WALs (in sequence order) into a fresh buffer. *)
  let old_wals =
    Device.list_files dev
    |> List.filter_map (fun n ->
           match wal_seq_of_name n with Some s -> Some (s, n) | None -> None)
    |> List.sort compare
  in
  let recovered_entries = ref [] in
  List.iter
    (fun (_, name) ->
      ignore (Wal.replay dev ~name (fun batch -> recovered_entries := batch :: !recovered_entries)))
    old_wals;
  let batches = List.rev !recovered_entries in
  t.wal_counter <- 1 + List.fold_left (fun acc (s, _) -> max acc s) (-1) old_wals;
  t.active <- new_buffer t;
  List.iter
    (fun batch ->
      List.iter
        (fun (e : Entry.t) ->
          Memtable.add t.active.mt e;
          if e.seqno > t.seqno then t.seqno <- e.seqno)
        batch;
      match t.active.wal with Some w -> Wal.append w ~sync:false batch | None -> ())
    batches;
  (* The replayed batches were acknowledged in a previous life: they must
     be durable again — synced into the new WAL, or flushed to tables
     when the WAL is disabled — before the logs that held them go away. *)
  (match t.active.wal with
  | Some w when batches <> [] -> Wal.sync w
  | None when batches <> [] -> flush t
  | _ -> ());
  List.iter (fun (_, name) -> Device.delete dev name) old_wals;
  Atomic.set t.visible_seqno t.seqno;
  t

let major_compact t =
  flush t;
  schedule_compactions t;
  (* Full compaction: merge every run of every level into one sorted run
     at the deepest populated level, with tombstones retired. *)
  let all_runs =
    List.concat_map
      (fun l -> Version.level_runs t.vers l)
      (List.init Version.max_levels Fun.id)
  in
  let total_runs = List.length all_runs in
  let last = Version.last_level t.vers in
  (* Rewrite unconditionally (RocksDB CompactRange-with-force semantics):
     even a lone bottom run may hold versions retained for snapshots that
     have since been released, or tombstones to retire. *)
  if total_runs >= 1 then begin
    let target = max 1 last in
    ignore
      (execute_merge t ~input_runs:all_runs ~extra_removed:[] ~target_level:target
         ~target_group:(fresh_group t) ~bottom:true)
  end;
  schedule_compactions t

let wake t = 1 + Atomic.fetch_and_add t.clock 1

(* Wait until every queued background job has run (no-op inline);
   re-raises a background failure on this, the foreground, domain. *)
let quiesce t =
  check_open t;
  quiesce_bg t

let backpressure_debt t =
  t.imm_bytes + Version.level_bytes t.vers 0
  + match t.sched with Some s -> Scheduler.unapplied_bytes s | None -> 0

let close t =
  if not t.closed then begin
    (* Drain the lane without re-raising a parked background failure:
       close must tear down even a crashed database. *)
    (match t.sched with Some s -> Scheduler.shutdown s | None -> ());
    if not t.cfg.Config.wal_enabled then flush_work t;
    (match t.active.wal with Some w -> Wal.close w | None -> ());
    List.iter (fun b -> match b.wal with Some w -> Wal.close w | None -> ()) t.immutables;
    Manifest.close t.manifest;
    (* No reader can start after [closed]; run every deferred deletion. *)
    Version.Pins.drain t.pins;
    (match t.pool with Some p -> Domain_pool.shutdown p | None -> ());
    t.closed <- true
  end

(* Consistent full backup: flush, then copy every live table plus a fresh
   manifest describing exactly this version onto the destination device.
   The copy is crash-consistent by construction (tables are immutable and
   the manifest is written last). *)
let checkpoint t ~dest =
  check_open t;
  flush t;
  if Device.exists dest Manifest.file_name then
    invalid_arg "Db.checkpoint: destination already holds a database";
  List.iter
    (fun (f : Table_meta.t) ->
      let data = Device.read t.dev ~cls:Io_stats.C_misc f.file_name ~off:0 ~len:f.size in
      let w = Device.open_writer dest ~cls:Io_stats.C_misc f.file_name in
      Device.append w data;
      Device.close w)
    (Version.all_files t.vers);
  let m = Manifest.create dest in
  let added = ref [] in
  Array.iteri
    (fun li runs ->
      List.iter
        (fun (r : Version.run) ->
          List.iter (fun f -> added := (li, r.Version.group, f) :: !added) r.Version.files)
        runs)
    t.vers.Version.levels;
  Manifest.log_edit m
    { Version.added = !added; removed = []; seqno_watermark = t.seqno };
  Manifest.close m

let config t = t.cfg
let device t = t.dev

let write_buffer_size t = t.dyn_buffer_size

let set_write_buffer_size t bytes =
  if bytes < 1024 then invalid_arg "Db.set_write_buffer_size: too small";
  t.dyn_buffer_size <- bytes;
  if Memtable.footprint t.active.mt >= bytes then begin
    rotate t;
    match t.sched with
    | Some sched -> bg_after_rotate t sched
    | None -> maybe_flush_for_write t
  end

let set_block_cache_bytes t bytes = Block_cache.set_capacity t.cache bytes
let stats t = t.db_stats
let io_stats t = Device.stats t.dev
let version t = t.vers
let block_cache t = t.cache
let table_cache t = t.tables
let tick t = Atomic.get t.clock
let last_seqno t = t.seqno

(* Every on-disk entry with its level, in probe order (level ascending,
   newest run first, files in key order). Verification hook: two
   databases that executed the same logical merges — serially or as
   parallel subcompactions — dump identical lists (same keys, seqnos,
   kinds, and values), whatever the file boundaries. *)
let dump_entries t =
  with_pin t @@ fun () ->
  let v, _ = t.read_view in
  List.concat_map
    (fun l ->
      List.concat_map
        (fun (r : Version.run) ->
          List.concat_map
            (fun (f : Table_meta.t) ->
              let reader = Table_cache.get t.tables f.file_name in
              Iter.to_list (Sstable.iterator reader ~cls:Io_stats.C_misc ~use_cache:false ())
              |> List.map (fun e -> (l, e)))
            r.Version.files)
        (Version.level_runs v l))
    (List.init Version.max_levels Fun.id)

let write_amplification t =
  let st = Device.stats t.dev in
  let written =
    Io_stats.bytes_written ~cls:Io_stats.C_flush st
    + Io_stats.bytes_written ~cls:Io_stats.C_compaction_write st
    + Io_stats.bytes_written ~cls:Io_stats.C_user_write st
  in
  if t.db_stats.Stats.user_bytes_ingested = 0 then 0.0
  else float_of_int written /. float_of_int t.db_stats.Stats.user_bytes_ingested

let space_amplification t =
  let live =
    fold t ~lo:"" ~hi:None ~init:0
      ~f:(fun acc k v -> acc + String.length k + String.length v)
      ()
  in
  let active, immutables = buffers t in
  let v, _ = t.read_view in
  let physical =
    Version.total_bytes v
    + Memtable.footprint active.mt
    + List.fold_left (fun a b -> a + Memtable.footprint b.mt) 0 immutables
  in
  if live = 0 then 0.0 else float_of_int physical /. float_of_int live

let check_invariants t = Version.check_invariants ~cmp:(cmp_of t) t.vers

let pp_tree ppf t =
  Format.fprintf ppf "@[<v>buffer: %d entries (%d immutable buffers)@,%a@]"
    (Memtable.count t.active.mt) t.imm_count Version.pp t.vers
