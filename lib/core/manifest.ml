module Codec = Lsm_util.Codec
module Crc32c = Lsm_util.Crc32c
module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats

type t = { dev : Device.t; writer : Device.writer; mutable name : string }

let file_name = "MANIFEST"
let tmp_file_name = "MANIFEST.tmp"

let create ?(name = file_name) dev =
  { dev; writer = Device.open_writer dev ~cls:Io_stats.C_misc name; name }

let log_edit t edit =
  let payload = Buffer.create 256 in
  Version.encode_edit payload edit;
  let payload = Buffer.contents payload in
  let frame = Buffer.create (String.length payload + 8) in
  Codec.put_u32 frame (Int32.to_int (Crc32c.mask (Crc32c.string payload)) land 0xffffffff);
  Codec.put_u32 frame (String.length payload);
  Buffer.add_string frame payload;
  Device.append t.writer (Buffer.contents frame);
  Device.sync t.writer

let promote t =
  if t.name <> file_name then begin
    Device.rename t.dev t.name file_name;
    t.name <- file_name
  end

let close t = Device.close t.writer

let recover dev =
  if not (Device.exists dev file_name) then Version.empty
  else begin
    let len = Device.size dev file_name in
    let data = Device.read dev ~cls:Io_stats.C_misc file_name ~off:0 ~len in
    let r = Codec.reader data in
    let version = ref Version.empty in
    (try
       while Codec.remaining r >= 8 do
         let stored = Int32.of_int (Codec.get_u32 r) in
         let plen = Codec.get_u32 r in
         if plen > Codec.remaining r then raise Exit;
         let payload = Codec.get_raw r plen in
         if Crc32c.mask (Crc32c.string payload) <> stored then raise Exit;
         let edit = Version.decode_edit (Codec.reader payload) in
         version := Version.apply !version edit
       done
     with Exit | Codec.Corrupt _ -> ());
    !version
  end
