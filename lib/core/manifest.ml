module Device = Lsm_storage.Device
module Framed_log = Lsm_storage.Framed_log
module Io_stats = Lsm_storage.Io_stats
module Lsm_error = Lsm_util.Lsm_error

type t = { dev : Device.t; writer : Device.writer; mutable name : string }

let file_name = "MANIFEST"
let tmp_file_name = "MANIFEST.tmp"

let create ?(name = file_name) dev =
  { dev; writer = Device.open_writer dev ~cls:Io_stats.C_misc name; name }

let log_edit t edit =
  let payload = Buffer.create 256 in
  Version.encode_edit payload edit;
  Device.append t.writer (Framed_log.frame (Buffer.contents payload));
  Device.sync t.writer

let promote t =
  if t.name <> file_name then begin
    Device.rename t.dev t.name file_name;
    t.name <- file_name
  end

let close t =
  (* Seal on clean close, like the WAL: recovery of a sealed manifest is
     strict. Best-effort so closing after a device crash keeps its old
     behavior. *)
  (try Device.append t.writer Framed_log.seal_frame with Invalid_argument _ -> ());
  Device.close t.writer

let recover dev =
  if not (Device.exists dev file_name) then Version.empty
  else begin
    let data = Framed_log.load dev ~name:file_name in
    let sealed = Framed_log.is_seal_tail data in
    let version = ref Version.empty in
    let edits, ending =
      Framed_log.scan data (fun ~off:_ payload ->
          let edit = Version.decode_edit (Lsm_util.Codec.reader payload) in
          version := Version.apply !version edit)
    in
    (match (sealed, ending) with
    | true, Framed_log.Sealed_clean -> ()
    | true, Framed_log.Bad_frame off ->
      raise
        (Lsm_error.corruption ~file:file_name ~offset:off
           "bad edit frame in cleanly-closed manifest")
    | true, Framed_log.Unsealed_end ->
      raise
        (Lsm_error.corruption ~file:file_name "sealed manifest with misaligned frames")
    | false, Framed_log.Bad_frame off when Framed_log.bad_frame_is_rot data ~off ->
      (* Intact edit frames beyond the damage: this is mid-log bit rot
         (possibly including a rotted seal), not a crash-torn tail.
         Truncating here would silently drop tables — and [open_db] would
         then garbage-collect them as orphans, destroying the data the
         doctor could have salvaged. *)
      raise
        (Lsm_error.corruption ~file:file_name ~offset:off
           "valid edit frames beyond a damaged frame: bit rot, not a torn tail")
    | false, _ ->
      (* Unsealed manifests exist only after a crash, where a torn tail is
         legitimate — but the tmp+promote protocol syncs at least one edit
         frame before MANIFEST ever carries the name, so a nonempty
         manifest recovering *zero* edits is not a crash artifact: its
         head frame rotted. *)
      if edits = 0 && String.length data > 0 then
        raise
          (Lsm_error.corruption ~file:file_name ~offset:0
             "no valid edit frame in nonempty manifest"));
    !version
  end
