(** Offline verification and repair of a closed store — the engine behind
    the [lsm-doctor] CLI. Operates directly on a device, never through
    [Db.open_db], so it works on stores too damaged to recover: it
    salvages every intact data block, rebuilds the manifest from the
    surviving [.sst] footers, re-synchronizes the WAL chain past every
    undecodable frame, and reports exactly which key ranges and byte
    ranges were lost. *)

type table_report = {
  tr_file : string;
  tr_blocks : int;  (** data blocks in the index *)
  tr_bad_blocks : int;
  tr_entries_salvaged : int;
  tr_lost_ranges : (string * string) list;
      (** inclusive key spans of the rotten blocks; [("","")] when the
          footer itself was gone and the span is unknowable *)
  tr_output : string option;
      (** live file after repair: the original when intact, a rewritten
          salvage table, or [None] when nothing survived *)
}

type wal_report = {
  wr_file : string;
  wr_batches : int;  (** batches salvaged from this log *)
  wr_gaps : (int * int) list;
      (** disclosed byte ranges skipped as lost (mid-log rot; a benign
          crash-torn tail is truncated silently and not listed) *)
}

type report = {
  tables : table_report list;
  wals : wal_report list;
  manifest_rebuilt : bool;
  findings : Lsm_util.Lsm_error.t list;  (** every defect encountered *)
}

val verify : ?cmp:Lsm_util.Comparator.t -> Lsm_storage.Device.t -> Lsm_util.Lsm_error.t list
(** Read-only scrub of a closed store: manifest recovery, every table it
    references (every [.sst] on the device when the manifest itself is
    unreadable), and the WAL chain. Returns all findings; an empty list
    means the store is sound. Never modifies the device. *)

val repair : ?cmp:Lsm_util.Comparator.t -> Lsm_storage.Device.t -> report
(** Point-in-time salvage. Every intact block of every table survives
    (rewritten into a fresh table when its neighbours rotted); the
    manifest is rebuilt from the surviving footers with each table as
    its own level-0 run, newest first by max seqno; WALs are salvaged
    tolerantly — batches on both sides of mid-log damage are kept, the
    skipped byte ranges disclosed — and re-logged into one fresh sealed
    WAL. After repair the device opens cleanly with [Db.open_db]. *)

val repair_manifest :
  ?cmp:Lsm_util.Comparator.t -> Lsm_storage.Device.t -> int * Lsm_util.Lsm_error.t list
(** Manifest-only repair: rebuild a rotted MANIFEST by re-deriving the
    version edits from whatever table footers still parse, leaving the
    tables and WALs untouched. Unopenable tables are reported (and left
    out of the new manifest) but not deleted, so a later full {!repair}
    can still salvage their intact blocks. Returns the number of tables
    the rebuilt manifest references plus any findings. *)

val disclosed_losses : report -> bool
(** Whether a {!repair} disclosed any data loss (rotten blocks, a
    dropped table, or skipped WAL byte ranges) — i.e. the store needed
    more than re-derivable metadata to come back. *)

val pp_report : Format.formatter -> report -> unit
