(** Offline verification and repair of a closed store — the engine behind
    the [lsm-doctor] CLI. Operates directly on a device, never through
    [Db.open_db], so it works on stores too damaged to recover: it
    salvages every intact data block, rebuilds the manifest from the
    surviving [.sst] footers, truncates the WAL chain at the first
    undecodable frame, and reports exactly which key ranges were lost. *)

type table_report = {
  tr_file : string;
  tr_blocks : int;  (** data blocks in the index *)
  tr_bad_blocks : int;
  tr_entries_salvaged : int;
  tr_lost_ranges : (string * string) list;
      (** inclusive key spans of the rotten blocks; [("","")] when the
          footer itself was gone and the span is unknowable *)
  tr_output : string option;
      (** live file after repair: the original when intact, a rewritten
          salvage table, or [None] when nothing survived *)
}

type wal_report = {
  wr_file : string;
  wr_batches : int;  (** batches salvaged from this log *)
  wr_truncated_at : int option;  (** first bad frame offset, if any *)
  wr_dropped : bool;
      (** log discarded because an earlier log already broke — applying
          batches from after a gap would tear the acknowledged order *)
}

type report = {
  tables : table_report list;
  wals : wal_report list;
  manifest_rebuilt : bool;
  findings : Lsm_util.Lsm_error.t list;  (** every defect encountered *)
}

val verify : ?cmp:Lsm_util.Comparator.t -> Lsm_storage.Device.t -> Lsm_util.Lsm_error.t list
(** Read-only scrub of a closed store: manifest recovery, every table it
    references (every [.sst] on the device when the manifest itself is
    unreadable), and the WAL chain. Returns all findings; an empty list
    means the store is sound. Never modifies the device. *)

val repair : ?cmp:Lsm_util.Comparator.t -> Lsm_storage.Device.t -> report
(** Point-in-time salvage. Every intact block of every table survives
    (rewritten into a fresh table when its neighbours rotted); the
    manifest is rebuilt from the surviving footers with each table as
    its own level-0 run, newest first by max seqno; WALs are kept up to
    the first bad frame and dropped after it, the survivors re-logged
    into one fresh sealed WAL. After repair the device opens cleanly
    with [Db.open_db]. *)

val pp_report : Format.formatter -> report -> unit
