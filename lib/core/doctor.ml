(* Offline repair for a closed store: the engine behind the [lsm-doctor]
   CLI. Works directly on a device — no [Db.t] is opened, so it can
   operate on stores too damaged to recover.

   Repair strategy (point-in-time salvage):
   - every [.sst] file is opened and scrubbed block by block; intact
     blocks are salvaged into a replacement table (index-order
     concatenation of sorted blocks stays sorted), rotten blocks become
     reported lost ranges, and a table whose footer or meta region is
     gone is dropped wholesale;
   - the manifest is rebuilt from scratch out of the surviving table
     footers: every table lands in level 0 as its own single-file run,
     ordered newest-first by max sequence number, so probe order still
     resolves key versions correctly whatever levels the tables came
     from;
   - WALs are salvaged tolerantly: the scan re-synchronizes past every
     undecodable frame to the next intact frame boundary, so batches on
     both sides of mid-log damage survive (each batch carries its own
     sequence numbers, so replay order is unharmed); every skipped byte
     range is disclosed as a lost gap. The surviving batches are
     re-logged into one fresh sealed WAL. *)

module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats
module Block_cache = Lsm_storage.Block_cache
module Wal = Lsm_storage.Wal
module Framed_log = Lsm_storage.Framed_log
module Sstable = Lsm_sstable.Sstable
module Table_meta = Lsm_sstable.Table_meta
module Iter = Lsm_record.Iter
module Comparator = Lsm_util.Comparator
module Lsm_error = Lsm_util.Lsm_error

type table_report = {
  tr_file : string;
  tr_blocks : int;  (** data blocks in the index *)
  tr_bad_blocks : int;
  tr_entries_salvaged : int;
  tr_lost_ranges : (string * string) list;
      (** inclusive key spans of the rotten blocks *)
  tr_output : string option;
      (** live file after repair: the original when intact, a rewritten
          salvage table, or [None] when nothing survived *)
}

type wal_report = {
  wr_file : string;
  wr_batches : int;  (** batches salvaged from this log *)
  wr_gaps : (int * int) list;
      (** disclosed byte ranges skipped as lost (mid-log rot; a benign
          crash-torn tail is truncated silently and not listed) *)
}

type report = {
  tables : table_report list;
  wals : wal_report list;
  manifest_rebuilt : bool;
  findings : Lsm_error.t list;  (** every defect encountered *)
}

let is_sst name = Filename.check_suffix name ".sst"

let sst_id name =
  if String.length name = 10 && is_sst name then
    int_of_string_opt (String.sub name 0 6)
  else None

let wal_seq name =
  let plen = String.length "wal-" and slen = String.length ".log" in
  if
    String.length name > plen + slen
    && String.sub name 0 plen = "wal-"
    && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name plen (String.length name - plen - slen))
  else None

(* A throwaway cache: doctor reads every block exactly once. *)
let scratch_cache () = Block_cache.create ~shards:1 ~capacity:0 ()

(* ------------------------------------------------------------------ *)
(* Read-only verification                                              *)
(* ------------------------------------------------------------------ *)

(* Scrub a closed store without modifying anything: manifest recovery,
   every table referenced by it (or every [.sst] on the device when the
   manifest itself is unreadable), and the WAL chain. *)
let verify ?(cmp = Comparator.bytewise) dev =
  let findings = ref [] in
  let add c = findings := c :: !findings in
  let cache = scratch_cache () in
  let tables_to_check =
    match Manifest.recover dev with
    | v -> List.map (fun (f : Table_meta.t) -> f.file_name) (Version.all_files v)
    | exception Lsm_error.Error c ->
      add c;
      List.filter is_sst (Device.list_files dev)
    | exception Lsm_util.Codec.Corrupt msg ->
      add (Lsm_error.Corruption { file = Manifest.file_name; offset = None; detail = msg });
      List.filter is_sst (Device.list_files dev)
  in
  List.iter
    (fun name ->
      match
        let reader = Sstable.open_reader ~cmp ~dev ~cache name in
        Sstable.verify reader ~cls:Io_stats.C_misc
      with
      | () -> ()
      | exception Lsm_error.Error c -> add c
      | exception Not_found ->
        add (Lsm_error.Corruption { file = name; offset = None; detail = "referenced table missing" }))
    tables_to_check;
  List.iter
    (fun name ->
      match wal_seq name with
      | None -> ()
      | Some _ ->
        let _, gaps = Wal.salvage dev ~name (fun _ -> ()) in
        List.iter
          (fun (g0, g1) ->
            add
              (Lsm_error.Corruption
                 {
                   file = name;
                   offset = Some g0;
                   detail = Printf.sprintf "bad WAL frames in [%d,%d)" g0 g1;
                 }))
          gaps)
    (Device.list_files dev);
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Salvage                                                             *)
(* ------------------------------------------------------------------ *)

(* Walk one table block by block. Returns the report plus the salvaged
   entries (in order) when a rewrite is needed, or [None] when the file
   is intact as-is. *)
let salvage_table ~cmp dev name =
  let cache = scratch_cache () in
  match Sstable.open_reader ~cmp ~dev ~cache name with
  | exception (Lsm_error.Error c) ->
    (* Footer or meta region gone: no index, nothing salvageable. *)
    ( { tr_file = name; tr_blocks = 0; tr_bad_blocks = 0; tr_entries_salvaged = 0;
        tr_lost_ranges = [ ("", "") ]; tr_output = None },
      [ c ], `Drop )
  | reader ->
    let index = Sstable.index_entries reader in
    let bad = ref [] and intact = ref [] and findings = ref [] in
    Array.iter
      (fun (ie : Sstable.index_entry) ->
        match Sstable.block_entries reader ~cls:Io_stats.C_misc ie with
        | entries -> intact := entries :: !intact
        | exception (Lsm_error.Error c) ->
          findings := c :: !findings;
          bad := (ie.Sstable.first_key, ie.Sstable.fence) :: !bad)
      index;
    let lost = List.rev !bad in
    let entries = List.concat (List.rev !intact) in
    let report kept output =
      { tr_file = name;
        tr_blocks = Array.length index;
        tr_bad_blocks = List.length lost;
        tr_entries_salvaged = kept;
        tr_lost_ranges = lost;
        tr_output = output }
    in
    if lost = [] then (report (List.length entries) (Some name), [], `Intact)
    else if entries = [] then (report 0 None, List.rev !findings, `Drop)
    else (report (List.length entries) None, List.rev !findings, `Rewrite entries)

(* Rebuild the manifest from scratch out of the given tables' footers:
   L0, one run per table, newest (highest max seqno) probed first, the
   seqno watermark re-derived as the max over all tables. Returns the
   number of tables referenced by the new manifest. *)
let rebuild_manifest ~cmp dev names =
  let cache = scratch_cache () in
  let metas =
    List.filter_map
      (fun name ->
        match sst_id name with
        | None -> None
        | Some id ->
          let reader = Sstable.open_reader ~cmp ~dev ~cache name in
          let props = Sstable.props reader in
          Some (Table_meta.of_props ~file_id:id ~file_name:name
                  ~size:(Device.size dev name) props))
      names
  in
  let by_recency =
    List.sort
      (fun (a : Table_meta.t) (b : Table_meta.t) -> compare a.max_seqno b.max_seqno)
      metas
  in
  let added = List.mapi (fun i m -> (0, i + 1, m)) by_recency in
  let watermark =
    List.fold_left (fun acc (m : Table_meta.t) -> max acc m.max_seqno) 0 metas
  in
  Device.delete dev Manifest.tmp_file_name;
  Device.delete dev Manifest.file_name;
  let m = Manifest.create ~name:Manifest.tmp_file_name dev in
  Manifest.log_edit m { Version.added; removed = []; seqno_watermark = watermark };
  Manifest.promote m;
  Manifest.close m;
  List.length metas

(* Manifest-only repair: re-derive the version edits from whatever table
   footers still parse, leaving table files and WALs untouched. The cure
   for a rotted MANIFEST on an otherwise healthy store — recovery was
   typed-error fatal, yet every byte of data is still there. Unopenable
   tables are reported (and excluded) but not deleted; a full [repair]
   can still salvage their intact blocks later. *)
let repair_manifest ?(cmp = Comparator.bytewise) dev =
  let findings = ref [] in
  let cache = scratch_cache () in
  let names =
    Device.list_files dev |> List.filter is_sst |> List.sort compare
    |> List.filter (fun name ->
           match Sstable.open_reader ~cmp ~dev ~cache name with
           | _ -> true
           | exception Lsm_error.Error c ->
             findings := c :: !findings;
             false)
  in
  let n = rebuild_manifest ~cmp dev names in
  (n, List.rev !findings)

let repair ?(cmp = Comparator.bytewise) dev =
  let findings = ref [] in
  let ssts =
    Device.list_files dev |> List.filter is_sst |> List.sort compare
  in
  let max_id =
    List.fold_left
      (fun acc n -> match sst_id n with Some i -> max acc i | None -> acc)
      0 ssts
  in
  let next_id = ref (max_id + 1) in
  (* 1. Per-table salvage. *)
  let table_reports = ref [] in
  let survivors = ref [] in
  List.iter
    (fun name ->
      let tr, fnds, action = salvage_table ~cmp dev name in
      findings := List.rev_append fnds !findings;
      match action with
      | `Intact -> table_reports := tr :: !table_reports; survivors := name :: !survivors
      | `Drop ->
        Device.delete dev name;
        table_reports := tr :: !table_reports
      | `Rewrite entries ->
        let id = !next_id in
        incr next_id;
        let out = Table_meta.file_name_of_id id in
        let props =
          Sstable.build ~cmp ~dev ~cls:Io_stats.C_misc ~name:out ~created_at:0
            (Iter.of_sorted_list cmp entries)
        in
        ignore props;
        Device.delete dev name;
        table_reports := { tr with tr_output = Some out } :: !table_reports;
        survivors := out :: !survivors)
    ssts;
  (* 2. Rebuild the manifest from the surviving footers. *)
  ignore (rebuild_manifest ~cmp dev (List.rev !survivors));
  (* 3. WAL chain: tolerant salvage of every log — batches on both sides
     of mid-log damage survive, every skipped byte range is disclosed —
     then re-log the survivors into one fresh sealed WAL. *)
  let wal_files =
    Device.list_files dev
    |> List.filter_map (fun n -> match wal_seq n with Some s -> Some (s, n) | None -> None)
    |> List.sort compare
  in
  let batches = ref [] in
  let wal_reports =
    List.map
      (fun (_, name) ->
        let n, gaps = Wal.salvage dev ~name (fun b -> batches := b :: !batches) in
        List.iter
          (fun (g0, g1) ->
            findings :=
              Lsm_error.Corruption
                {
                  file = name;
                  offset = Some g0;
                  detail = Printf.sprintf "bad WAL frames in [%d,%d): batches lost" g0 g1;
                }
              :: !findings)
          gaps;
        { wr_file = name; wr_batches = n; wr_gaps = gaps })
      wal_files
  in
  List.iter (fun (_, name) -> Device.delete dev name) wal_files;
  (match List.rev !batches with
  | [] -> ()
  | salvaged ->
    let w = Wal.create dev ~name:"wal-000000.log" in
    List.iter (fun b -> Wal.append w ~sync:false b) salvaged;
    Wal.sync w;
    Wal.close w);
  {
    tables = List.rev !table_reports;
    wals = wal_reports;
    manifest_rebuilt = true;
    findings = List.rev !findings;
  }

(* Did the repair disclose any data loss — rotten blocks, a dropped
   table, or skipped WAL ranges? Distinguishes "store was damaged and
   something is gone" from "store repaired with everything salvaged". *)
let disclosed_losses r =
  List.exists (fun tr -> tr.tr_lost_ranges <> []) r.tables
  || List.exists (fun wr -> wr.wr_gaps <> []) r.wals

let pp_report ppf r =
  let pp_table ppf tr =
    Format.fprintf ppf "%s: %d/%d blocks bad, %d entries salvaged -> %s" tr.tr_file
      tr.tr_bad_blocks tr.tr_blocks tr.tr_entries_salvaged
      (match tr.tr_output with Some f -> f | None -> "(dropped)");
    List.iter
      (fun (lo, hi) -> Format.fprintf ppf "@,  lost range [%S .. %S]" lo hi)
      tr.tr_lost_ranges
  in
  let pp_wal ppf wr =
    Format.fprintf ppf "%s: %d batches%s" wr.wr_file wr.wr_batches
      (String.concat ""
         (List.map (fun (g0, g1) -> Printf.sprintf ", gap [%d,%d)" g0 g1) wr.wr_gaps))
  in
  Format.fprintf ppf "@[<v>manifest: %s@,%a@,%a@,%d findings@]"
    (if r.manifest_rebuilt then "rebuilt" else "intact")
    (Format.pp_print_list pp_table) r.tables (Format.pp_print_list pp_wal) r.wals
    (List.length r.findings)
