module Histogram = Lsm_util.Histogram

type worker = {
  mutable w_jobs : int;
  mutable w_busy_ns : int;
  mutable w_bytes : int;
}

type t = {
  mutable user_puts : int;
  mutable user_deletes : int;
  mutable user_gets : int;
  mutable user_scans : int;
  mutable user_bytes_ingested : int;
  mutable gets_found : int;
  mutable runs_probed : int;
  mutable filter_negatives : int;
  mutable filter_false_positives : int;
  mutable range_filter_skips : int;
  mutable flushes : int;
  mutable compactions : int;
  mutable trivial_moves : int;
  mutable compaction_bytes_read : int;
  mutable compaction_bytes_written : int;
  mutable compaction_wall_ns : int;
  mutable subcompactions : int;
  mutable write_stalls : int;
  mutable write_slowdowns : int;
  mutable write_stops : int;
  mutable corruptions_detected : int;
  mutable tables_quarantined : int;
  mutable failsafe_entries : int;
  mutable resumes : int;
  mutable scrub_runs : int;
  mutable scrub_errors : int;
  mutable scrub_runs_scheduled : int;
  mutable ecc_repairs : int;
  mutable ecc_unrecoverable : int;
  ecc_repair_ns : Histogram.t;
  stall_burst_bytes : Histogram.t;
  compaction_burst_bytes : Histogram.t;
  get_run_probes : Histogram.t;
  write_latency_ns : Histogram.t;
  slowdown_delay_ns : Histogram.t;
  mutable sched_workers : worker array;
  mutable sched_edits_parked : int;
  sched_queue_depth : Histogram.t;
  sched_parked_edits : Histogram.t;
}

let create () =
  {
    user_puts = 0;
    user_deletes = 0;
    user_gets = 0;
    user_scans = 0;
    user_bytes_ingested = 0;
    gets_found = 0;
    runs_probed = 0;
    filter_negatives = 0;
    filter_false_positives = 0;
    range_filter_skips = 0;
    flushes = 0;
    compactions = 0;
    trivial_moves = 0;
    compaction_bytes_read = 0;
    compaction_bytes_written = 0;
    compaction_wall_ns = 0;
    subcompactions = 0;
    write_stalls = 0;
    write_slowdowns = 0;
    write_stops = 0;
    corruptions_detected = 0;
    tables_quarantined = 0;
    failsafe_entries = 0;
    resumes = 0;
    scrub_runs = 0;
    scrub_errors = 0;
    scrub_runs_scheduled = 0;
    ecc_repairs = 0;
    ecc_unrecoverable = 0;
    ecc_repair_ns = Histogram.create ();
    stall_burst_bytes = Histogram.create ();
    compaction_burst_bytes = Histogram.create ();
    get_run_probes = Histogram.create ();
    write_latency_ns = Histogram.create ();
    slowdown_delay_ns = Histogram.create ();
    sched_workers = [||];
    sched_edits_parked = 0;
    sched_queue_depth = Histogram.create ();
    sched_parked_edits = Histogram.create ();
  }

let provision_workers t n =
  if Array.length t.sched_workers <> n then
    t.sched_workers <- Array.init n (fun _ -> { w_jobs = 0; w_busy_ns = 0; w_bytes = 0 })

let clear t =
  t.user_puts <- 0;
  t.user_deletes <- 0;
  t.user_gets <- 0;
  t.user_scans <- 0;
  t.user_bytes_ingested <- 0;
  t.gets_found <- 0;
  t.runs_probed <- 0;
  t.filter_negatives <- 0;
  t.filter_false_positives <- 0;
  t.range_filter_skips <- 0;
  t.flushes <- 0;
  t.compactions <- 0;
  t.trivial_moves <- 0;
  t.compaction_bytes_read <- 0;
  t.compaction_bytes_written <- 0;
  t.compaction_wall_ns <- 0;
  t.subcompactions <- 0;
  t.write_stalls <- 0;
  t.write_slowdowns <- 0;
  t.write_stops <- 0;
  t.corruptions_detected <- 0;
  t.tables_quarantined <- 0;
  t.failsafe_entries <- 0;
  t.resumes <- 0;
  t.scrub_runs <- 0;
  t.scrub_errors <- 0;
  t.scrub_runs_scheduled <- 0;
  t.ecc_repairs <- 0;
  t.ecc_unrecoverable <- 0;
  Histogram.clear t.ecc_repair_ns;
  Histogram.clear t.stall_burst_bytes;
  Histogram.clear t.compaction_burst_bytes;
  Histogram.clear t.get_run_probes;
  Histogram.clear t.write_latency_ns;
  Histogram.clear t.slowdown_delay_ns;
  Array.iter
    (fun w ->
      w.w_jobs <- 0;
      w.w_busy_ns <- 0;
      w.w_bytes <- 0)
    t.sched_workers;
  t.sched_edits_parked <- 0;
  Histogram.clear t.sched_queue_depth;
  Histogram.clear t.sched_parked_edits

let write_amp_engine t =
  if t.user_bytes_ingested = 0 then 0.0
  else
    float_of_int (t.compaction_bytes_written + Histogram.total t.stall_burst_bytes)
    /. float_of_int t.user_bytes_ingested

let avg_probes_per_get t =
  if t.user_gets = 0 then 0.0 else float_of_int t.runs_probed /. float_of_int t.user_gets

let pp_workers ppf t =
  Array.iteri
    (fun i w ->
      Format.fprintf ppf "@,  worker %d: jobs=%d busy=%dns moved=%dB" i w.w_jobs w.w_busy_ns
        w.w_bytes)
    t.sched_workers

let pp ppf t =
  Format.fprintf ppf
    "@[<v>puts=%d deletes=%d gets=%d (found %d) scans=%d@,\
     ingested=%dB flushes=%d compactions=%d (read %dB, wrote %dB)@,\
     probes/get=%.2f filter: neg=%d fp=%d range-skips=%d@,\
     stalls=%d slowdowns=%d stops=%d stall-bytes: %a@,compaction-bursts: %a@,\
     write-latency-ns: %a@,slowdown-delay-ns: %a@,\
     corruptions=%d quarantined=%d failsafe=%d resumes=%d scrubs=%d (errors %d, scheduled %d)@,\
     ecc: repairs=%d unrecoverable=%d repair-ns: %a@,\
     sched: parked-edits=%d queue-depth: %a park-depth: %a%a@]"
    t.user_puts t.user_deletes t.user_gets t.gets_found t.user_scans t.user_bytes_ingested
    t.flushes t.compactions t.compaction_bytes_read t.compaction_bytes_written
    (avg_probes_per_get t) t.filter_negatives t.filter_false_positives t.range_filter_skips
    t.write_stalls t.write_slowdowns t.write_stops Histogram.pp_summary t.stall_burst_bytes
    Histogram.pp_summary t.compaction_burst_bytes Histogram.pp_summary t.write_latency_ns
    Histogram.pp_summary t.slowdown_delay_ns t.corruptions_detected t.tables_quarantined
    t.failsafe_entries t.resumes t.scrub_runs t.scrub_errors t.scrub_runs_scheduled
    t.ecc_repairs t.ecc_unrecoverable Histogram.pp_summary t.ecc_repair_ns t.sched_edits_parked
    Histogram.pp_summary t.sched_queue_depth Histogram.pp_summary t.sched_parked_edits pp_workers
    t
