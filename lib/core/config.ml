module Policy = Lsm_compaction.Policy

type backend = Inline | Background

type t = {
  comparator : Lsm_util.Comparator.t;
  memtable : Lsm_memtable.Memtable.kind;
  write_buffer_size : int;
  max_immutable_buffers : int;
  wal_enabled : bool;
  wal_sync_every_write : bool;
  compaction : Policy.t;
  level1_capacity : int;
  target_file_size : int;
  block_size : int;
  restart_interval : int;
  compression : Lsm_sstable.Sstable.compression;
  filter : Lsm_filter.Point_filter.policy;
  monkey_filters : bool;
  filter_memory_bits : int;
  range_filter : Lsm_filter.Range_filter.policy;
  block_cache_bytes : int;
  block_cache_shards : int;
  max_open_tables : int;
  cache_refill_after_compaction : bool;
  merge_operator : (string -> string option -> string list -> string) option;
  allow_trivial_move : bool;
  compaction_bytes_per_round : int option;
  compaction_parallelism : int;
  compaction_backend : backend;
  compaction_workers : int;
  write_slowdown_trigger : int;
  write_stop_trigger : int;
  paranoid_checks : bool;
  scrub_delay : float;
  scrub_interval : float;
  ecc : ecc option;
}

and ecc = { ecc_data_pages : int; ecc_parity_pages : int }

(* CI's background matrix leg flips the default backend through the
   environment so the whole tier-1 suite runs against the scheduler
   without touching any test. Explicit [compaction_backend] settings in
   code always win — this only changes [default]. *)
let default_backend =
  match Sys.getenv_opt "LSM_COMPACTION_BACKEND" with
  | Some ("background" | "Background" | "BACKGROUND") -> Background
  | Some _ | None -> Inline

(* Same shape for the worker count: the CI workers=4 leg exports
   LSM_COMPACTION_WORKERS so the whole suite exercises the multi-worker
   sequencer. Garbage or missing values fall back to 1 (today's strict
   FIFO lane). *)
let default_workers =
  match Sys.getenv_opt "LSM_COMPACTION_WORKERS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | Some _ | None -> 1)
  | None -> 1

let default =
  {
    comparator = Lsm_util.Comparator.bytewise;
    memtable = Lsm_memtable.Memtable.Skiplist;
    write_buffer_size = 1 lsl 20;
    max_immutable_buffers = 1;
    wal_enabled = true;
    wal_sync_every_write = false;
    compaction = Policy.default;
    level1_capacity = 4 lsl 20;
    target_file_size = 1 lsl 20;
    block_size = 4096;
    restart_interval = 16;
    compression = Lsm_sstable.Sstable.C_none;
    filter = Lsm_filter.Point_filter.default;
    monkey_filters = false;
    filter_memory_bits = 0;
    range_filter = Lsm_filter.Range_filter.No_range_filter;
    block_cache_bytes = 8 lsl 20;
    block_cache_shards = 1;
    max_open_tables = 1024;
    cache_refill_after_compaction = false;
    merge_operator = None;
    allow_trivial_move = true;
    compaction_bytes_per_round = None;
    compaction_parallelism = 1;
    compaction_backend = default_backend;
    compaction_workers = default_workers;
    (* Byte-denominated since PR 6: with the default 1 MiB buffer these
       are the same operating points the old counts (20/36) hit when
       every debt unit was roughly one buffer-sized run. *)
    write_slowdown_trigger = 20 lsl 20;
    write_stop_trigger = 36 lsl 20;
    paranoid_checks = false;
    scrub_delay = 0.;
    scrub_interval = 0.;
    ecc = None;
  }

let validate t =
  if t.write_buffer_size <= 0 then invalid_arg "Config: write_buffer_size must be positive";
  if t.max_immutable_buffers < 0 then invalid_arg "Config: max_immutable_buffers negative";
  if t.level1_capacity <= 0 then invalid_arg "Config: level1_capacity must be positive";
  if t.target_file_size <= 0 then invalid_arg "Config: target_file_size must be positive";
  if t.block_size < 128 then invalid_arg "Config: block_size too small";
  if t.compaction.Policy.size_ratio < 2 then invalid_arg "Config: size_ratio must be >= 2";
  if t.compaction.Policy.level0_limit < 1 then invalid_arg "Config: level0_limit must be >= 1";
  if t.monkey_filters && t.filter_memory_bits <= 0 then
    invalid_arg "Config: monkey_filters requires a filter_memory_bits budget";
  if t.block_cache_shards < 1 then invalid_arg "Config: block_cache_shards must be >= 1";
  if t.max_open_tables < 8 then invalid_arg "Config: max_open_tables must be >= 8";
  if t.compaction_parallelism < 1 then
    invalid_arg "Config: compaction_parallelism must be >= 1";
  if t.compaction_workers < 1 then invalid_arg "Config: compaction_workers must be >= 1";
  (* The triggers are byte thresholds on debt = immutable-buffer bytes +
     L0 bytes + unapplied compaction input bytes. Anything below one
     block can never be crossed meaningfully (the smallest debt step is
     a block-sized run), and a stop at or below the slowdown leaves no
     ramp. *)
  if t.write_slowdown_trigger < t.block_size then
    invalid_arg "Config: write_slowdown_trigger must be >= block_size (it is a byte threshold)";
  if t.write_stop_trigger <= t.write_slowdown_trigger then
    invalid_arg "Config: write_stop_trigger must exceed write_slowdown_trigger";
  if t.scrub_delay < 0. then invalid_arg "Config: scrub_delay must be >= 0";
  if t.scrub_interval < 0. then invalid_arg "Config: scrub_interval must be >= 0";
  (match t.ecc with
  | Some { ecc_data_pages = k; ecc_parity_pages = m } ->
    if k < 1 || m < 1 || k + m > 255 then
      invalid_arg "Config: ecc needs data_pages >= 1, parity_pages >= 1, sum <= 255"
  | None -> ());
  match t.compaction_bytes_per_round with
  | Some n when n <= 0 -> invalid_arg "Config: compaction_bytes_per_round must be positive"
  | Some _ | None -> ()

let level_capacity t level =
  if level < 1 then invalid_arg "Config.level_capacity: level must be >= 1";
  let rec grow cap l = if l <= 1 then cap else grow (cap * t.compaction.Policy.size_ratio) (l - 1) in
  grow t.level1_capacity level

let describe t =
  Printf.sprintf "%s buffer=%dKiB(%s) L1=%dKiB file=%dKiB filter=%s cache=%dKiB%s"
    (Policy.describe t.compaction)
    (t.write_buffer_size / 1024)
    (Lsm_memtable.Memtable.kind_name t.memtable)
    (t.level1_capacity / 1024) (t.target_file_size / 1024)
    (Lsm_filter.Point_filter.policy_name t.filter)
    (t.block_cache_bytes / 1024)
    (if t.monkey_filters then " monkey" else "")
  ^ (match t.compaction_backend with
    | Inline -> ""
    | Background -> if t.compaction_workers = 1 then " bg" else Printf.sprintf " bg×%d" t.compaction_workers)
