module Codec = Lsm_util.Codec
module Comparator = Lsm_util.Comparator

type kind = Put | Delete | Single_delete | Range_delete | Merge

type t = { key : string; seqno : int; kind : kind; value : string }

let kind_to_int = function
  | Put -> 0
  | Delete -> 1
  | Single_delete -> 2
  | Range_delete -> 3
  | Merge -> 4

let kind_of_int = function
  | 0 -> Put
  | 1 -> Delete
  | 2 -> Single_delete
  | 3 -> Range_delete
  | 4 -> Merge
  | n -> raise (Codec.Corrupt (Printf.sprintf "unknown entry kind %d" n))

let kind_to_string = function
  | Put -> "put"
  | Delete -> "delete"
  | Single_delete -> "single-delete"
  | Range_delete -> "range-delete"
  | Merge -> "merge"

let put ~key ~seqno value = { key; seqno; kind = Put; value }
let delete ~key ~seqno = { key; seqno; kind = Delete; value = "" }
let single_delete ~key ~seqno = { key; seqno; kind = Single_delete; value = "" }

let range_delete ~start_key ~end_key ~seqno =
  { key = start_key; seqno; kind = Range_delete; value = end_key }

let merge ~key ~seqno value = { key; seqno; kind = Merge; value }

(* Materialize an entry from a borrowed value view: the one place the
   zero-copy cursor copies a value out of the block body, and only when
   the caller actually takes the record. *)
let of_value_slice ~key ~seqno ~kind value = { key; seqno; kind; value = Slice.to_string value }

let is_tombstone e =
  match e.kind with
  | Delete | Single_delete | Range_delete -> true
  | Put | Merge -> false

let compare (c : Comparator.t) a b =
  let k = c.compare a.key b.key in
  if k <> 0 then k
  else
    let s = Int.compare b.seqno a.seqno in
    if s <> 0 then s else Int.compare (kind_to_int a.kind) (kind_to_int b.kind)

let encode buf e =
  Codec.put_varint buf e.seqno;
  Codec.put_u8 buf (kind_to_int e.kind);
  Codec.put_lp_string buf e.key;
  Codec.put_lp_string buf e.value

let decode r =
  let seqno = Codec.get_varint r in
  let kind = kind_of_int (Codec.get_u8 r) in
  let key = Codec.get_lp_string r in
  let value = Codec.get_lp_string r in
  { key; seqno; kind; value }

let encoded_size e =
  Codec.varint_size e.seqno + 1
  + Codec.varint_size (String.length e.key)
  + String.length e.key
  + Codec.varint_size (String.length e.value)
  + String.length e.value

(* Words-on-heap estimate: two boxed strings plus the record itself. *)
let footprint e = String.length e.key + String.length e.value + 48

let pp ppf e =
  Format.fprintf ppf "@[<h>%s(%S@%d%s)@]" (kind_to_string e.kind) e.key e.seqno
    (if e.value = "" then "" else Printf.sprintf " -> %d bytes" (String.length e.value))
