(* A borrowed [(base, off, len)] view of bytes inside a larger string —
   the record layer's currency for zero-copy reads. A slice does not own
   its backing string: whoever hands one out (the block cursor, over a
   pinned cached block body) guarantees the base outlives the borrow.
   Materializing ([to_string]) is the single place a copy happens, so
   callers can see exactly where the allocation is. *)

type t = { base : string; off : int; len : int }

let v base ~off ~len =
  if off < 0 || len < 0 || off + len > String.length base then
    invalid_arg "Slice.v: out of bounds";
  { base; off; len }

let of_string s = { base = s; off = 0; len = String.length s }
let length s = s.len
let is_empty s = s.len = 0
let get s i = if i < 0 || i >= s.len then invalid_arg "Slice.get" else s.base.[s.off + i]
let to_string s = String.sub s.base s.off s.len

let compare_string s b =
  let nb = String.length b in
  let n = min s.len nb in
  let rec loop i =
    if i >= n then Int.compare s.len nb
    else
      let c = Char.compare (String.unsafe_get s.base (s.off + i)) (String.unsafe_get b i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let equal_string s b = String.length b = s.len && compare_string s b = 0

let compare a b =
  let n = min a.len b.len in
  let rec loop i =
    if i >= n then Int.compare a.len b.len
    else
      let c =
        Char.compare (String.unsafe_get a.base (a.off + i)) (String.unsafe_get b.base (b.off + i))
      in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let equal a b = a.len = b.len && compare a b = 0

let blit s buf ~dst =
  if dst < 0 || dst + s.len > Bytes.length buf then invalid_arg "Slice.blit: out of bounds";
  Bytes.blit_string s.base s.off buf dst s.len

let pp ppf s = Format.fprintf ppf "%S" (to_string s)
