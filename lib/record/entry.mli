(** The internal key-value entry model.

    Every mutation in the tree is an [entry]: a user key, a monotonically
    increasing sequence number (assigned at write time), an operation
    [kind], and a value. Reads resolve a user key to the entry with the
    highest visible sequence number; compactions merge entries and drop
    the ones that are shadowed or whose tombstone has done its work.

    Ordering: entries sort by user key ascending, then by sequence number
    {e descending}, so that within any sorted run an iterator meets the
    newest version of a key first. This is the LSM invariant of the paper
    (§2.1.1.E) pushed down to the entry level. *)

type kind =
  | Put  (** insert or blind update *)
  | Delete  (** point tombstone *)
  | Single_delete
      (** RocksDB-style single delete: cancels exactly the one matching put
          and then disappears (§2.3.3) *)
  | Range_delete
      (** range tombstone; [key] is the range start, [value] the exclusive
          range end *)
  | Merge  (** read-modify-write operand (RocksDB merge operator, §2.2.6) *)

type t = {
  key : string;
  seqno : int;
  kind : kind;
  value : string;
}

val kind_to_int : kind -> int
val kind_of_int : int -> kind
(** @raise Lsm_util.Codec.Corrupt on unknown tags. *)

val kind_to_string : kind -> string

val put : key:string -> seqno:int -> string -> t
val delete : key:string -> seqno:int -> t
val single_delete : key:string -> seqno:int -> t
val range_delete : start_key:string -> end_key:string -> seqno:int -> t
val merge : key:string -> seqno:int -> string -> t

val of_value_slice : key:string -> seqno:int -> kind:kind -> Slice.t -> t
(** Materialize an entry whose value still lives in a block body. The
    single value copy on the zero-copy read path — called only when the
    caller actually takes the record. *)

val is_tombstone : t -> bool
(** [Delete], [Single_delete], and [Range_delete] entries. *)

val compare : Lsm_util.Comparator.t -> t -> t -> int
(** Key ascending, then seqno descending, then kind (for determinism). *)

val encode : Buffer.t -> t -> unit
val decode : Lsm_util.Codec.reader -> t
(** Wire format: varint seqno | u8 kind | lp key | lp value. *)

val encoded_size : t -> int
(** Exact size {!encode} will produce. *)

val footprint : t -> int
(** Approximate in-memory footprint in bytes, used for buffer sizing. *)

val pp : Format.formatter -> t -> unit
