(** Borrowed byte views for the zero-copy read path.

    A slice is an [(off, len)] window into a backing string it does not
    own. The block cursor decodes values as slices of the cached block
    body, so nothing is copied until a caller actually takes the bytes —
    {!to_string} is the one materialization point. The borrow is only
    valid while the backing block stays reachable (the cursor's pin);
    holders must not stash slices past that scope. *)

type t = private { base : string; off : int; len : int }

val v : string -> off:int -> len:int -> t
(** @raise Invalid_argument if [off]/[len] fall outside [base]. *)

val of_string : string -> t
(** Whole-string view; no copy. *)

val length : t -> int
val is_empty : t -> bool

val get : t -> int -> char
(** @raise Invalid_argument out of bounds. *)

val to_string : t -> string
(** Materialize (the only copying operation). *)

val compare_string : t -> string -> int
(** Bytewise compare against a string, allocation-free. *)

val equal_string : t -> string -> bool

val compare : t -> t -> int
(** Bytewise slice-to-slice compare, allocation-free. *)

val equal : t -> t -> bool

val blit : t -> Bytes.t -> dst:int -> unit
(** Copy the viewed bytes into [buf] at [dst].
    @raise Invalid_argument if the destination range is out of bounds. *)

val pp : Format.formatter -> t -> unit
