(** Reed–Solomon erasure coding over GF(256).

    A systematic [k]+[m] code: [encode] turns [k] equal-length data
    shards into [m] parity shards; [decode] reconstructs all [k] data
    shards from any [k] survivors of the [k+m] total. Erasure-only —
    callers identify lost shards by position (here: pages whose CRC
    failed), the coder does not locate errors itself. With more than
    [m] erasures, [decode] returns [None]; it never mis-decodes silently.

    Used by the SST parity section (DESIGN.md §14): stripes of [k] data
    pages carry [m] parity pages so single-page bit rot repairs in
    place. *)

type t
(** A coder for a fixed shape [(k, m)]. Immutable; safe to share across
    domains. *)

val create : k:int -> m:int -> t
(** [create ~k ~m] precomputes encode coefficients. Raises
    [Invalid_argument] unless [k >= 1], [m >= 1] and [k + m <= 255]
    (GF(256) supports at most 255 distinct evaluation points). *)

val k : t -> int
val m : t -> int

val encode : t -> string array -> string array
(** [encode t data] maps [k] equal-length data shards to [m] parity
    shards of the same length. Raises [Invalid_argument] on a wrong
    shard count or unequal lengths. *)

val decode : t -> string option array -> string array option
(** [decode t shards] takes [k + m] slots (data shards first, then
    parity; [None] marks an erased shard) and returns the [k] data
    shards, or [None] when fewer than [k] shards survive. Surviving
    data shards are returned as-is. *)
