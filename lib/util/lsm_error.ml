(* Typed error taxonomy for the storage engine. Every failure that can
   escape the public Db API is one of these constructors; bare
   [Codec.Corrupt] / [Failure _] must not cross the API boundary
   (the linter's R7 rule forces new code through this module). *)

type t =
  | Corruption of { file : string; offset : int option; detail : string }
  | Io_error of { retriable : bool; detail : string }
  | Read_only of string
  | Shutdown

exception Error of t

let corruption ?offset ~file detail = Error (Corruption { file; offset; detail })
let io_error ~retriable detail = Error (Io_error { retriable; detail })
let read_only detail = Error (Read_only detail)

let to_string = function
  | Corruption { file; offset; detail } ->
    let where =
      match offset with None -> file | Some o -> Printf.sprintf "%s@%d" file o
    in
    Printf.sprintf "corruption in %s: %s" where detail
  | Io_error { retriable; detail } ->
    Printf.sprintf "i/o error (%s): %s"
      (if retriable then "retriable" else "permanent")
      detail
  | Read_only detail -> Printf.sprintf "store is read-only: %s" detail
  | Shutdown -> "store is shut down"

let pp ppf e = Fmt.string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Lsm_error.Error: " ^ to_string e)
    | _ -> None)
