(* Ranked mutex with optional runtime lock-order checking ("lockdep").

   Every lock in the engine belongs to a lock class with an explicit
   integer rank; the discipline is that a domain may only acquire locks
   in strictly increasing rank order. Violations — acquiring downward,
   acquiring a second lock of the same rank, or re-entering a held
   mutex — are exactly the shapes that deadlock once two domains
   interleave, so when checking is enabled ([LSM_LOCKDEP=1] in the
   environment, or {!set_enforce}) they raise {!Violation} at the
   acquisition site, turning a potential hang into a deterministic
   test failure. With checking off the wrapper costs one load per
   acquisition.

   This module is the one blessed home of raw [Mutex.lock]/[unlock] in
   the tree — everything else goes through {!with_lock} (enforced by
   lint rule R1) — and its module-level state (the enforcement flag)
   is the documented R4 allowlist entry. *)

module Rank = struct
  let db_buffers = 8
  let db_snapshots = 9
  let db = 10
  let version_pins = 12
  let table_cache = 20
  let block_cache_shard = 30
  let device = 40
  let stats = 50
  let scheduler = 55
  let domain_pool = 60
  let future = 70
end

type t = { m : Mutex.t; rank : int; name : string }

exception Violation of string

(* Read on every acquisition from any domain, written only by tests and
   startup: a relaxed atomic, never part of a get/set cycle. *)
let enforce =
  Atomic.make
    (match Sys.getenv_opt "LSM_LOCKDEP" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | Some _ | None -> false)

let set_enforce b = Atomic.set enforce b
let enabled () = Atomic.get enforce

(* Graph recording is independent of enforcement: with enforcement off
   (production-shaped runs) the held stack is still maintained and every
   observed held->acquired pair lands in the per-run edge table, so two
   acquisition orders that are each acyclic in isolation — and that
   rank checking would only catch if both interleaved in one run under
   [enforce] — still meet in the merged on-disk graph. *)
let recording = Atomic.make false

(* Per-domain stack of currently held locks, innermost first. Only the
   owning domain reads or writes its own stack, so no synchronization
   is needed beyond DLS itself. *)
let held_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let create ~rank ~name =
  if rank < 0 then invalid_arg "Ordered_mutex.create: negative rank";
  { m = Mutex.create (); rank; name }

let rank t = t.rank
let name t = t.name

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

(* Runs before [Mutex.lock], so a raise leaves nothing held. *)
let check_acquire t held =
  if List.exists (fun h -> h == t) !held then
    violation "lockdep: re-entrant acquisition of %s (rank %d)" t.name t.rank;
  match !held with
  | [] -> ()
  | top :: _ ->
    if t.rank <= top.rank then
      violation "lockdep: acquired %s (rank %d) while holding %s (rank %d); ranks must increase"
        t.name t.rank top.name top.rank

(* ---------------- acquired-before graph recorder ---------------- *)

(* RocksDB-style lockdep graph: while recording, every acquisition with
   a non-empty held stack appends (held.name -> acquired.name) edges —
   all held locks, not just the top, so the relation matches the static
   one lsm-lint infers — each with one sample stack from its first
   sighting. At process exit the per-run edges are merged into a
   persisted graph file (read-union-write, atomic tmp+rename), and any
   cycle in the *merged* graph is reported on stderr: two runs that
   each witnessed only one side of an inversion still produce a
   deterministic report. `lsm-lint --lockdep-graph FILE` turns the same
   cycles into a failing exit code for CI. *)
module Graph = struct
  type edge = { src : string; dst : string; stack : string list }

  (* The recorder's own state is guarded by a raw mutex: this file is
     the blessed R1 exemption, and an Ordered_mutex here would recurse
     into the recorder. *)
  let g_m = Mutex.create ()
  let run_edges : (string * string, string list) Hashtbl.t = Hashtbl.create 64
  let path = ref None
  let exit_hook_installed = ref false

  let record held t =
    let stack = List.rev_map (fun h -> h.name) held @ [ t.name ] in
    Mutex.lock g_m;
    List.iter
      (fun h ->
        let key = (h.name, t.name) in
        if not (Hashtbl.mem run_edges key) then Hashtbl.add run_edges key stack)
      held;
    Mutex.unlock g_m

  let edges () =
    Mutex.lock g_m;
    let es =
      Hashtbl.fold (fun (src, dst) stack acc -> { src; dst; stack } :: acc) run_edges []
    in
    Mutex.unlock g_m;
    List.sort compare es

  let reset_run () =
    Mutex.lock g_m;
    Hashtbl.reset run_edges;
    Mutex.unlock g_m

  let header = "# lsm-lockdep-graph v1"

  let load file =
    match open_in_bin file with
    | exception Sys_error _ -> []
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let es = ref [] in
          (try
             while true do
               match String.split_on_char '\t' (input_line ic) with
               | [ "edge"; src; dst; stack ] ->
                 es := { src; dst; stack = String.split_on_char ',' stack } :: !es
               | _ -> ()
             done
           with End_of_file -> ());
          List.rev !es)

  let save file es =
    let tmp = file ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (header ^ "\n");
        List.iter
          (fun e ->
            Printf.fprintf oc "edge\t%s\t%s\t%s\n" e.src e.dst (String.concat "," e.stack))
          es);
    Sys.rename tmp file

  (* Union this run's edges into [file] (first-seen sample stacks win)
     and return the merged graph. *)
  let merge_to_file () =
    match !path with
    | None -> []
    | Some file ->
      let merged = Hashtbl.create 64 in
      List.iter (fun e -> Hashtbl.replace merged (e.src, e.dst) e.stack) (edges ());
      List.iter
        (fun e ->
          if not (Hashtbl.mem merged (e.src, e.dst)) then
            Hashtbl.add merged (e.src, e.dst) e.stack)
        (load file);
      let es =
        Hashtbl.fold (fun (src, dst) stack acc -> { src; dst; stack } :: acc) merged []
        |> List.sort compare
      in
      save file es;
      es

  (* One representative cycle per strongly-connected knot, by DFS with
     an explicit color map; self-loops count. Deterministic: nodes are
     visited in sorted order. *)
  let cycles es =
    let adj = Hashtbl.create 64 in
    let nodes = Hashtbl.create 64 in
    List.iter
      (fun e ->
        Hashtbl.replace nodes e.src ();
        Hashtbl.replace nodes e.dst ();
        Hashtbl.add adj e.src e.dst)
      es;
    let node_list = Hashtbl.fold (fun n () acc -> n :: acc) nodes [] |> List.sort compare in
    let color = Hashtbl.create 64 in
    (* 1 = on current DFS path, 2 = done *)
    let found = ref [] in
    let seen_sets = ref [] in
    let rec dfs path n =
      Hashtbl.replace color n 1;
      List.iter
        (fun m ->
          match Hashtbl.find_opt color m with
          | Some 1 ->
            (* back edge: the cycle is the path suffix from m, plus m. *)
            let rec suffix = function
              | x :: tl -> if x = m then x :: List.rev tl else suffix tl
              | [] -> [ m ]
            in
            let cyc = suffix (List.rev (n :: path)) @ [ m ] in
            let key = List.sort_uniq compare cyc in
            if not (List.mem key !seen_sets) then begin
              seen_sets := key :: !seen_sets;
              found := cyc :: !found
            end
          | Some _ -> ()
          | None -> dfs (n :: path) m)
        (Hashtbl.find_all adj n);
      Hashtbl.replace color n 2
    in
    List.iter (fun n -> if not (Hashtbl.mem color n) then dfs [] n) node_list;
    List.rev !found

  let set_path p =
    path := p;
    Atomic.set recording (p <> None);
    if p <> None && not !exit_hook_installed then begin
      exit_hook_installed := true;
      at_exit (fun () ->
          match !path with
          | None -> ()
          | Some file -> (
            let merged = merge_to_file () in
            match cycles merged with
            | [] -> ()
            | cys ->
              Printf.eprintf
                "lockdep: %d cycle(s) in merged acquired-before graph %s (orders from separate runs \
                 can deadlock when interleaved):\n"
                (List.length cys) file;
              List.iter
                (fun cyc -> Printf.eprintf "lockdep:   %s\n" (String.concat " -> " cyc))
                cys))
    end

  let path () = !path
  let recording () = Atomic.get recording
end

let () =
  match Sys.getenv_opt "LSM_LOCKDEP_GRAPH" with
  | Some p when p <> "" -> Graph.set_path (Some p)
  | Some _ | None -> ()

let lock t =
  let enf = Atomic.get enforce and rec_ = Atomic.get recording in
  if enf || rec_ then begin
    let held = Domain.DLS.get held_key in
    if enf then check_acquire t held;
    Mutex.lock t.m;
    if rec_ && !held <> [] then Graph.record !held t;
    held := t :: !held
  end
  else Mutex.lock t.m

(* Tolerates out-of-LIFO and untracked unlocks (tracking may have been
   toggled mid-hold by a test): drop exactly the first matching entry.
   Dropping *all* matches would silently empty the stack under legal
   nested holds of the same instance taken while tracking was off. *)
let rec remove_first t = function
  | [] -> []
  | h :: tl -> if h == t then tl else h :: remove_first t tl

let unlock t =
  if Atomic.get enforce || Atomic.get recording then begin
    let held = Domain.DLS.get held_key in
    held := remove_first t !held
  end;
  Mutex.unlock t.m

let with_lock t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f

(* [Condition.wait] atomically releases and re-acquires [t.m]. The held
   stack deliberately keeps [t] on it for the duration: the domain is
   blocked and acquires nothing else, and on return the mutex is held
   again, so the stack is accurate at every point the domain runs. *)
let wait cond t = Condition.wait cond t.m

let held_names () =
  List.rev_map (fun t -> t.name) !(Domain.DLS.get held_key)
