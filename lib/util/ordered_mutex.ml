(* Ranked mutex with optional runtime lock-order checking ("lockdep").

   Every lock in the engine belongs to a lock class with an explicit
   integer rank; the discipline is that a domain may only acquire locks
   in strictly increasing rank order. Violations — acquiring downward,
   acquiring a second lock of the same rank, or re-entering a held
   mutex — are exactly the shapes that deadlock once two domains
   interleave, so when checking is enabled ([LSM_LOCKDEP=1] in the
   environment, or {!set_enforce}) they raise {!Violation} at the
   acquisition site, turning a potential hang into a deterministic
   test failure. With checking off the wrapper costs one load per
   acquisition.

   This module is the one blessed home of raw [Mutex.lock]/[unlock] in
   the tree — everything else goes through {!with_lock} (enforced by
   lint rule R1) — and its module-level state (the enforcement flag)
   is the documented R4 allowlist entry. *)

module Rank = struct
  let db_buffers = 8
  let db_snapshots = 9
  let db = 10
  let version_pins = 12
  let table_cache = 20
  let block_cache_shard = 30
  let device = 40
  let stats = 50
  let scheduler = 55
  let domain_pool = 60
  let future = 70
end

type t = { m : Mutex.t; rank : int; name : string }

exception Violation of string

(* Read on every acquisition from any domain, written only by tests and
   startup: a relaxed atomic, never part of a get/set cycle. *)
let enforce =
  Atomic.make
    (match Sys.getenv_opt "LSM_LOCKDEP" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | Some _ | None -> false)

let set_enforce b = Atomic.set enforce b
let enabled () = Atomic.get enforce

(* Per-domain stack of currently held locks, innermost first. Only the
   owning domain reads or writes its own stack, so no synchronization
   is needed beyond DLS itself. *)
let held_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let create ~rank ~name =
  if rank < 0 then invalid_arg "Ordered_mutex.create: negative rank";
  { m = Mutex.create (); rank; name }

let rank t = t.rank
let name t = t.name

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

(* Runs before [Mutex.lock], so a raise leaves nothing held. *)
let check_acquire t held =
  if List.exists (fun h -> h == t) !held then
    violation "lockdep: re-entrant acquisition of %s (rank %d)" t.name t.rank;
  match !held with
  | [] -> ()
  | top :: _ ->
    if t.rank <= top.rank then
      violation "lockdep: acquired %s (rank %d) while holding %s (rank %d); ranks must increase"
        t.name t.rank top.name top.rank

let lock t =
  if Atomic.get enforce then begin
    let held = Domain.DLS.get held_key in
    check_acquire t held;
    Mutex.lock t.m;
    held := t :: !held
  end
  else Mutex.lock t.m

(* Tolerates out-of-LIFO and untracked unlocks (enforcement may have
   been toggled mid-hold by a test): drop the first matching entry. *)
let unlock t =
  if Atomic.get enforce then begin
    let held = Domain.DLS.get held_key in
    held := List.filter (fun h -> not (h == t)) !held
  end;
  Mutex.unlock t.m

let with_lock t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f

(* [Condition.wait] atomically releases and re-acquires [t.m]. The held
   stack deliberately keeps [t] on it for the duration: the domain is
   blocked and acquires nothing else, and on return the mutex is held
   again, so the stack is accurate at every point the domain runs. *)
let wait cond t = Condition.wait cond t.m

let held_names () =
  List.rev_map (fun t -> t.name) !(Domain.DLS.get held_key)
