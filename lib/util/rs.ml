(* Reed–Solomon erasure coding over GF(256), used for the SST parity
   section (DESIGN.md §14). This is a *systematic* code built by
   polynomial interpolation: the [k] data shards are the values of a
   degree-(k-1) polynomial P at x = 0..k-1, and the [m] parity shards
   are P evaluated at x = k..k+m-1. Any [k] of the [k+m] shards
   determine P (Lagrange interpolation), so up to [m] *erasures* —
   shards whose positions are known to be lost, here pages whose CRC
   failed — can be reconstructed exactly. More than [m] erasures leave
   fewer than [k] points and are reported as unrecoverable, never
   mis-decoded.

   Byte-wise: every byte offset of the shards is an independent
   codeword, so coefficients are computed once per (shape, erasure
   pattern) and applied across the whole shard length. *)

(* GF(2^8) with the AES-adjacent primitive polynomial x^8+x^4+x^3+x^2+1
   (0x11d), generator 2. [gf_exp] is doubled so products of two logs
   (each <= 254) index without a mod. Filled once at module load and
   immutable afterwards, so sharing across domains is safe. *)
let gf_exp = Array.make 512 0
let gf_log = Array.make 256 0

let () =
  let rec fill i x =
    if i <= 254 then begin
      gf_exp.(i) <- x;
      gf_log.(x) <- i;
      let x2 = x lsl 1 in
      fill (i + 1) (if x2 land 0x100 <> 0 then x2 lxor 0x11d else x2)
    end
  in
  fill 0 1;
  for i = 255 to 511 do
    gf_exp.(i) <- gf_exp.(i - 255)
  done

let gf_mul a b = if a = 0 || b = 0 then 0 else gf_exp.(gf_log.(a) + gf_log.(b))

let gf_div a b =
  if b = 0 then invalid_arg "Rs: division by zero";
  if a = 0 then 0 else gf_exp.(gf_log.(a) + 255 - gf_log.(b))

(* Lagrange basis polynomial L_i over the sample points [xs], evaluated
   at [x]: the weight of sample i when interpolating a value at x. *)
let lagrange_at xs i x =
  let n = Array.length xs in
  let num = ref 1 and den = ref 1 in
  for j = 0 to n - 1 do
    if j <> i then begin
      num := gf_mul !num (x lxor xs.(j));
      den := gf_mul !den (xs.(i) lxor xs.(j))
    end
  done;
  gf_div !num !den

type t = {
  k : int;
  m : int;
  enc : int array array;
      (** [enc.(j).(i)]: weight of data shard [i] in parity shard [j],
          i.e. L_i(k + j) over sample points 0..k-1. Precomputed — the
          encode geometry never changes for a given coder. *)
}

let create ~k ~m =
  if k < 1 || m < 1 || k + m > 255 then
    invalid_arg "Rs.create: need k >= 1, m >= 1, k + m <= 255";
  let xs = Array.init k (fun i -> i) in
  let enc = Array.init m (fun j -> Array.init k (fun i -> lagrange_at xs i (k + j))) in
  { k; m; enc }

let k t = t.k
let m t = t.m

let check_shard_len who len s =
  if String.length s <> len then invalid_arg (who ^ ": shards must have equal length")

let combine ~coeffs ~shards ~len =
  let out = Bytes.make len '\000' in
  Array.iteri
    (fun i c ->
      if c <> 0 then begin
        let s = shards.(i) in
        if c = 1 then
          for b = 0 to len - 1 do
            Bytes.unsafe_set out b
              (Char.unsafe_chr (Char.code (Bytes.unsafe_get out b) lxor Char.code (String.unsafe_get s b)))
          done
        else begin
          let lc = gf_log.(c) in
          for b = 0 to len - 1 do
            let v = Char.code (String.unsafe_get s b) in
            let p = if v = 0 then 0 else gf_exp.(lc + gf_log.(v)) in
            Bytes.unsafe_set out b (Char.unsafe_chr (Char.code (Bytes.unsafe_get out b) lxor p))
          done
        end
      end)
    coeffs;
  Bytes.unsafe_to_string out

let encode t data =
  if Array.length data <> t.k then invalid_arg "Rs.encode: expected k data shards";
  let len = if t.k = 0 then 0 else String.length data.(0) in
  Array.iter (check_shard_len "Rs.encode" len) data;
  Array.init t.m (fun j -> combine ~coeffs:t.enc.(j) ~shards:data ~len)

let decode t shards =
  if Array.length shards <> t.k + t.m then invalid_arg "Rs.decode: expected k + m shard slots";
  (* Collect up to [k] surviving sample points, preferring data shards
     (identity weight for the common all-data-present case). *)
  let pts = Array.make t.k 0 in
  let srcs = Array.make t.k "" in
  let npts = ref 0 in
  let len = ref (-1) in
  Array.iteri
    (fun x -> function
      | Some s when !npts < t.k ->
        if !len < 0 then len := String.length s else check_shard_len "Rs.decode" !len s;
        pts.(!npts) <- x;
        srcs.(!npts) <- s;
        incr npts
      | Some s -> if !len >= 0 then check_shard_len "Rs.decode" !len s
      | None -> ())
    shards;
  if !npts < t.k then None (* more than m erasures: detectably unrecoverable *)
  else begin
    let len = max !len 0 in
    let data =
      Array.init t.k (fun i ->
          match shards.(i) with
          | Some s -> s (* systematic shard survived; no arithmetic needed *)
          | None ->
            let coeffs = Array.init t.k (fun j -> lagrange_at pts j i) in
            combine ~coeffs ~shards:srcs ~len)
    in
    Some data
  end
