(** Ranked mutex with optional runtime lock-order checking ("lockdep").

    Each mutex carries an integer rank; the engine-wide discipline is
    that a domain acquires locks in strictly increasing rank order and
    never re-enters a lock it holds. When checking is enabled (the
    [LSM_LOCKDEP=1] environment variable, or {!set_enforce}) any
    acquisition violating the discipline raises {!Violation} before the
    underlying mutex is touched, turning a potential cross-domain
    deadlock into a deterministic failure at the guilty call site.
    Checking off costs one atomic load per acquisition.

    This module is the sole blessed user of raw [Mutex.lock]/[unlock]
    in [lib/] (lint rule R1); everything else uses {!with_lock}. *)

(** The engine's lock hierarchy, lowest (outermost) rank first. See
    DESIGN.md §9 for the rationale behind each edge. *)
module Rank : sig
  val db_buffers : int
  (** [Db] memtable-rotation lock — active/immutable buffer list,
      backpressure condition. Outermost: held across no other lock
      except those below it. *)

  val db_snapshots : int
  (** [Db] snapshot registry — the list of live snapshot seqnos, mutated
      by [Db.snapshot]/[Db.release] from any domain and copied by
      flush/compaction planning. *)

  val db : int  (** [Db.id_mutex] — file-id allocation *)

  val version_pins : int
  (** [Version.Pins] registry — version pin counts and deferred
      file-deletion queue. *)

  val table_cache : int  (** [Table_cache] LRU structure lock *)

  val block_cache_shard : int  (** one [Block_cache] shard *)

  val device : int  (** [Device] file-table / crash-plan lock *)

  val stats : int  (** [Io_stats] counter lock *)

  val scheduler : int
  (** [Scheduler] pending-job count / failure latch. Ranked below
      [domain_pool] so [enqueue] may submit to the shared pool while
      updating its own bookkeeping. *)

  val domain_pool : int  (** [Domain_pool] work-queue lock *)

  val future : int  (** one [Domain_pool] future's settle lock *)
end

type t

exception Violation of string
(** Raised at the acquisition site on rank inversion, same-rank double
    acquisition, or re-entrancy — only when enforcement is on, and
    always before the underlying mutex is acquired. *)

val create : rank:int -> name:string -> t
(** [name] appears in {!Violation} messages; [rank] orders this lock in
    the hierarchy. Raises [Invalid_argument] on negative rank. *)

val rank : t -> int
val name : t -> string

val with_lock : t -> (unit -> 'a) -> 'a
(** Runs [f] with the lock held; exception-safe (the lock is released
    on raise). This is the blessed combinator lint rule R1 points
    raw-mutex call sites at. *)

val lock : t -> unit
(** Low-level acquire, for code whose hold scope cannot be a closure.
    Prefer {!with_lock}. *)

val unlock : t -> unit

val wait : Condition.t -> t -> unit
(** [wait cond t] — [Condition.wait] against [t]'s underlying mutex,
    which must be held (normally: called inside [with_lock t]). The
    lock stays attributed to the calling domain for the duration of the
    wait; see the implementation comment for why that is sound. *)

val set_enforce : bool -> unit
(** Toggle checking at runtime (tests). Toggle only while the calling
    domain holds no ordered mutexes. *)

val enabled : unit -> bool

val held_names : unit -> string list
(** Names of the locks the calling domain currently holds, outermost
    first. Debugging aid; meaningful only while enforcement or graph
    recording is on. *)

(** Acquired-before graph recorder (RocksDB-style lockdep debug mode).

    When recording is on — [LSM_LOCKDEP_GRAPH=path] in the environment,
    or {!Graph.set_path} — every acquisition taken while other ordered
    mutexes are held appends (held-name → acquired-name) edges to a
    per-run table, each edge carrying one sample stack from its first
    sighting. At process exit the run's edges are merged into the
    persisted graph file (read, union, atomic tmp+rename) and any cycle
    in the {e merged} graph is reported on stderr: two acquisition
    orders that never interleave in a single run — and that rank
    enforcement therefore never sees racing — still meet across runs.
    [lsm-lint --lockdep-graph FILE] loads the same file, turns cycles
    into failing findings, and cross-checks the observed relation
    against the statically inferred one (DESIGN.md §9.4).

    Recording is independent of {!set_enforce}: with enforcement off
    nothing raises, but the held stack is still tracked and edges still
    recorded — that is what lets a deliberately inverted order from one
    run meet its mirror image from another in the merged file. *)
module Graph : sig
  type edge = { src : string; dst : string; stack : string list }
  (** One observed acquired-before pair: [dst] was acquired while [src]
      was held; [stack] is the full held-stack sample (outermost first,
      [dst] last) from the edge's first sighting. *)

  val set_path : string option -> unit
  (** [set_path (Some file)] starts recording and registers the
      exit-time merge into [file]; [set_path None] stops recording
      (already-recorded edges of this run are kept until
      {!reset_run}). *)

  val path : unit -> string option
  val recording : unit -> bool

  val edges : unit -> edge list
  (** This run's edges so far, sorted. *)

  val reset_run : unit -> unit
  (** Clear this run's edge table (tests simulate multiple runs). *)

  val merge_to_file : unit -> edge list
  (** Merge this run's edges into the configured file now and return
      the merged graph; [[]] and a no-op when no path is set. Called
      automatically at exit. *)

  val load : string -> edge list
  (** Parse a persisted graph file; [[]] if the file does not exist. *)

  val cycles : edge list -> string list list
  (** One representative cycle per knot in the given graph, each as a
      node list whose last element repeats the first. Deterministic. *)
end
