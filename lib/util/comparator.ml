type t = { name : string; compare : string -> string -> int }

let bytewise = { name = "bytewise"; compare = String.compare }

let reverse_bytewise =
  { name = "reverse-bytewise"; compare = (fun a b -> String.compare b a) }

let common_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let rec loop i = if i < n && a.[i] = b.[i] then loop (i + 1) else i in
  loop 0

let shortest_separator c a b =
  if c.name <> bytewise.name then a
  else
    let p = common_prefix_len a b in
    if p >= String.length a then a (* a is a prefix of b *)
    else
      let byte = Char.code a.[p] in
      if byte < 0xff && (p + 1 > String.length b || byte + 1 < Char.code b.[p]) then begin
        let s = Bytes.of_string (String.sub a 0 (p + 1)) in
        Bytes.set s p (Char.chr (byte + 1));
        let s = Bytes.to_string s in
        assert (c.compare a s <= 0 && c.compare s b < 0);
        s
      end
      else a

let short_successor c k =
  if c.name <> bytewise.name then k
  else
    let n = String.length k in
    let rec find i = if i >= n then None else if k.[i] <> '\xff' then Some i else find (i + 1) in
    match find 0 with
    | None -> k (* all 0xff: no short successor *)
    | Some i ->
      let s = Bytes.of_string (String.sub k 0 (i + 1)) in
      Bytes.set s i (Char.chr (Char.code k.[i] + 1));
      Bytes.to_string s

let min_key c a b = if c.compare a b <= 0 then a else b
let max_key c a b = if c.compare a b >= 0 then a else b

(* Allocation-free slice comparisons for the built-in comparators; the
   zero-copy block cursor compares prefix-reassembled keys and raw body
   spans against targets without materializing strings. Custom
   comparators fall back to materializing the slice. *)

(* The loops below are top-level recursions, not nested [let rec]s: a
   local loop capturing the operands would allocate a closure on every
   comparison, and the block cursor does several per seek. *)
let rec sub_loop s pos len b nb n i =
  if i >= n then Int.compare len nb
  else
    let c = Char.compare (String.unsafe_get s (pos + i)) (String.unsafe_get b i) in
    if c <> 0 then c else sub_loop s pos len b nb n (i + 1)

let bytewise_sub s pos len b =
  let nb = String.length b in
  sub_loop s pos len b nb (min len nb) 0

let compare_sub c s ~pos ~len b =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Comparator.compare_sub: slice out of bounds";
  if c.name = "bytewise" then bytewise_sub s pos len b
  else if c.name = "reverse-bytewise" then -bytewise_sub s pos len b
  else c.compare (String.sub s pos len) b

let rec bytes_loop s len b nb n i =
  if i >= n then Int.compare len nb
  else
    let c = Char.compare (Bytes.unsafe_get s i) (String.unsafe_get b i) in
    if c <> 0 then c else bytes_loop s len b nb n (i + 1)

let bytewise_bytes s len b =
  let nb = String.length b in
  bytes_loop s len b nb (min len nb) 0

let compare_bytes c s ~len b =
  if len < 0 || len > Bytes.length s then
    invalid_arg "Comparator.compare_bytes: length out of bounds";
  if c.name = "bytewise" then bytewise_bytes s len b
  else if c.name = "reverse-bytewise" then -bytewise_bytes s len b
  else c.compare (Bytes.sub_string s 0 len) b
