(** A fixed pool of worker domains with submit/await futures.

    OCaml 5 domains are heavyweight (each owns a minor heap and takes part
    in every stop-the-world section), so the engine spawns them once and
    reuses them for every parallel job — RocksDB's background-thread-pool
    shape, minus the priority lanes. Tasks are closures; results travel
    back through futures. A task's exception is captured and re-raised at
    {!await} in the submitting domain.

    A pool of size 0 degenerates to inline execution: {!submit} runs the
    task immediately on the calling domain. This is what
    [compaction_parallelism = 1] uses, so the serial configuration spawns
    no domains at all. *)

type t

type 'a future

val create : size:int -> t
(** Spawn [size] worker domains ([size >= 0]). *)

val size : t -> int
(** Number of worker domains (0 = inline pool). *)

val ensure_size : t -> int -> unit
(** Grow the pool to at least [n] workers by spawning the difference.
    Never shrinks; a target at or below the current size is a no-op.
    Concurrent growers are not supported.
    @raise Invalid_argument if the pool has been shut down or [n < 0]. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. On a size-0 pool the task runs before [submit]
    returns.
    @raise Invalid_argument if the pool has been shut down. *)

val await : 'a future -> 'a
(** Block until the task finishes; returns its result or re-raises its
    exception. Idempotent. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Submit one task per element and await them all, preserving order.
    Exceptions re-raise after every task has settled (no worker is left
    running a task whose input list entry was dropped). *)

val pending : t -> int
(** Tasks submitted but not yet finished (queued + running). Always 0
    on a size-0 pool. *)

val wait_idle : t -> unit
(** Block until every submitted task has finished (pending = 0). Tasks
    submitted by other domains while waiting extend the wait; the
    caller is responsible for quiescing producers first. *)

val shutdown : t -> unit
(** Finish queued tasks, then join every worker. Idempotent; further
    {!submit}s raise. *)
