type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  fm : Ordered_mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

type t = {
  m : Ordered_mutex.t;
  work_ready : Condition.t;
  idle : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable outstanding : int;
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
}

let fulfill fut v =
  Ordered_mutex.with_lock fut.fm @@ fun () ->
  fut.state <- v;
  Condition.broadcast fut.fc

(* Take the next task (or None once stopped and drained) under the
   queue lock, then run it outside: tasks acquire engine locks of every
   rank, so nothing may be held while they execute. *)
let rec worker_loop pool () =
  let task =
    Ordered_mutex.with_lock pool.m @@ fun () ->
    while Queue.is_empty pool.queue && not pool.stopped do
      Ordered_mutex.wait pool.work_ready pool.m
    done;
    Queue.take_opt pool.queue
  in
  match task with
  | Some task ->
    task ();
    worker_loop pool ()
  | None -> ()

let create ~size =
  if size < 0 then invalid_arg "Domain_pool.create: negative size";
  let pool =
    {
      m = Ordered_mutex.create ~rank:Ordered_mutex.Rank.domain_pool ~name:"domain_pool.queue";
      work_ready = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      outstanding = 0;
      stopped = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init size (fun _ -> Domain.spawn (worker_loop pool));
  pool

let size t = Array.length t.workers

let ensure_size t n =
  if n < 0 then invalid_arg "Domain_pool.ensure_size: negative size";
  let to_spawn =
    Ordered_mutex.with_lock t.m (fun () ->
        if t.stopped then invalid_arg "Domain_pool.ensure_size: pool is shut down";
        n - Array.length t.workers)
  in
  (* Spawning outside the lock is safe: only the spawner mutates
     [workers], and a concurrent [ensure_size] to a smaller target is a
     no-op. Racing growers are not supported (the engine grows the
     singleton lane from [Scheduler.create] only). *)
  if to_spawn > 0 then
    t.workers <- Array.append t.workers (Array.init to_spawn (fun _ -> Domain.spawn (worker_loop t)))

let run_into fut f =
  let v = match f () with r -> Done r | exception e -> Failed e in
  fulfill fut v

let submit t f =
  let fut =
    {
      fm = Ordered_mutex.create ~rank:Ordered_mutex.Rank.future ~name:"domain_pool.future";
      fc = Condition.create ();
      state = Pending;
    }
  in
  if Array.length t.workers = 0 then run_into fut f
  else begin
    let task () =
      run_into fut f;
      Ordered_mutex.with_lock t.m (fun () ->
          t.outstanding <- t.outstanding - 1;
          if t.outstanding = 0 then Condition.broadcast t.idle)
    in
    Ordered_mutex.with_lock t.m (fun () ->
        if t.stopped then invalid_arg "Domain_pool.submit: pool is shut down";
        t.outstanding <- t.outstanding + 1;
        Queue.add task t.queue;
        Condition.signal t.work_ready)
  end;
  fut

let await fut =
  let st =
    Ordered_mutex.with_lock fut.fm @@ fun () ->
    while (match fut.state with Pending -> true | Done _ | Failed _ -> false) do
      Ordered_mutex.wait fut.fc fut.fm
    done;
    fut.state
  in
  match st with
  | Done v -> v
  | Failed e -> raise e
  | Pending -> assert false

let map_list t f xs =
  let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
  (* Settle every future before re-raising, so an early failure does not
     leave workers racing tasks the caller has abandoned. *)
  let results =
    List.map (fun fut -> match await fut with v -> Ok v | exception e -> Error e) futs
  in
  List.map (function Ok v -> v | Error e -> raise e) results

let pending t = Ordered_mutex.with_lock t.m (fun () -> t.outstanding)

(* [run_into] never lets a task exception escape, so [outstanding] is
   decremented exactly once per submitted task and the idle broadcast
   cannot be skipped. *)
let wait_idle t =
  Ordered_mutex.with_lock t.m (fun () ->
      while t.outstanding > 0 do
        Ordered_mutex.wait t.idle t.m
      done)

let shutdown t =
  let already_stopped =
    Ordered_mutex.with_lock t.m (fun () ->
        if t.stopped then true
        else begin
          t.stopped <- true;
          Condition.broadcast t.work_ready;
          false
        end)
  in
  if not already_stopped then Array.iter Domain.join t.workers
