type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

type t = {
  m : Mutex.t;
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
}

let fulfill fut v =
  Mutex.lock fut.fm;
  fut.state <- v;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let worker_loop pool () =
  let rec loop () =
    Mutex.lock pool.m;
    while Queue.is_empty pool.queue && not pool.stopped do
      Condition.wait pool.work_ready pool.m
    done;
    match Queue.take_opt pool.queue with
    | Some task ->
      Mutex.unlock pool.m;
      task ();
      loop ()
    | None ->
      (* stopped and drained *)
      Mutex.unlock pool.m
  in
  loop ()

let create ~size =
  if size < 0 then invalid_arg "Domain_pool.create: negative size";
  let pool =
    {
      m = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      stopped = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init size (fun _ -> Domain.spawn (worker_loop pool));
  pool

let size t = Array.length t.workers

let run_into fut f =
  let v = match f () with r -> Done r | exception e -> Failed e in
  fulfill fut v

let submit t f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  if Array.length t.workers = 0 then run_into fut f
  else begin
    Mutex.lock t.m;
    if t.stopped then begin
      Mutex.unlock t.m;
      invalid_arg "Domain_pool.submit: pool is shut down"
    end;
    Queue.add (fun () -> run_into fut f) t.queue;
    Condition.signal t.work_ready;
    Mutex.unlock t.m
  end;
  fut

let await fut =
  Mutex.lock fut.fm;
  while (match fut.state with Pending -> true | Done _ | Failed _ -> false) do
    Condition.wait fut.fc fut.fm
  done;
  let st = fut.state in
  Mutex.unlock fut.fm;
  match st with
  | Done v -> v
  | Failed e -> raise e
  | Pending -> assert false

let map_list t f xs =
  let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
  (* Settle every future before re-raising, so an early failure does not
     leave workers racing tasks the caller has abandoned. *)
  let results =
    List.map (fun fut -> match await fut with v -> Ok v | exception e -> Error e) futs
  in
  List.map (function Ok v -> v | Error e -> raise e) results

let shutdown t =
  Mutex.lock t.m;
  if t.stopped then Mutex.unlock t.m
  else begin
    t.stopped <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers
  end
