(** User-key comparators and the key-manipulation helpers the SSTable
    index uses to keep fence pointers short. *)

type t = {
  name : string;
  compare : string -> string -> int;
}

val bytewise : t
(** Lexicographic comparison on bytes — the default everywhere. *)

val reverse_bytewise : t

val shortest_separator : t -> string -> string -> string
(** [shortest_separator c a b] with [compare a b < 0] is a short key [s]
    with [a <= s < b]; used as the fence key between two data blocks.
    Falls back to [a] when no shorter separator exists.
    Only meaningful for {!bytewise}; other comparators return [a]. *)

val short_successor : t -> string -> string
(** A short key [>= k]; used as the fence key after the last block. *)

val min_key : t -> string -> string -> string
val max_key : t -> string -> string -> string

val compare_sub : t -> string -> pos:int -> len:int -> string -> int
(** [compare_sub c s ~pos ~len b] compares the slice [s.[pos..pos+len)]
    against [b] under [c] — allocation-free for {!bytewise} and
    {!reverse_bytewise}; custom comparators pay one substring copy.
    @raise Invalid_argument if the slice is out of bounds. *)

val compare_bytes : t -> Bytes.t -> len:int -> string -> int
(** [compare_bytes c buf ~len b] compares [buf[0..len)] against [b]
    under [c], allocation-free for the built-in comparators. This is the
    block cursor's key comparison: the current key lives in a reusable
    arena buffer and is never materialized just to be compared. *)
