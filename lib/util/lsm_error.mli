(** Typed error taxonomy for the storage engine.

    Every failure mode that can escape the public [Db] API is a
    constructor of {!t}, carried by the single exception {!Error}.
    Internal detect-and-die exceptions ([Codec.Corrupt], [Not_found],
    [Failure]) are converted at the API boundary; callers match on the
    payload instead of string-matching exception messages. *)

type t =
  | Corruption of { file : string; offset : int option; detail : string }
      (** A checksum, framing, or structural-invariant failure pinned to a
          file (and block offset when known). The bytes on the device do
          not decode to what the engine wrote — never silently ignored. *)
  | Io_error of { retriable : bool; detail : string }
      (** A device read/write fault. [retriable = true] means a bounded
          retry with backoff may succeed (transient fault injection, or a
          real device hiccup); [false] means the operation is lost. *)
  | Read_only of string
      (** The store is in fail-safe read-only mode (background maintenance
          failed, or corruption was quarantined); writes are rejected until
          [Db.try_resume]. The payload describes the original cause. *)
  | Shutdown  (** The store handle has been closed. *)

exception Error of t

val corruption : ?offset:int -> file:string -> string -> exn
(** [corruption ~file detail] is [Error (Corruption _)] ready to raise. *)

val io_error : retriable:bool -> string -> exn
val read_only : string -> exn

val to_string : t -> string
val pp : t Fmt.t
