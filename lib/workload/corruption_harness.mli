(** Bit-rot fault-injection harness — the silent-corruption counterpart
    of {!Crash_harness}, sharing its seeded workload and logical model.

    One cycle: run the workload to completion, close cleanly, flip bits
    in the durable image via {!Lsm_storage.Device.plan_corruption}
    targeting one file class, then check the corruption contract:

    - the damaged store {b never serves wrong data} — reopening either
      fails with a typed {!Lsm_util.Lsm_error.t} or serves reads that
      are each exactly the model's value or a typed error (disclosed
      damage); fabricated values, stale values, and silently vanished
      keys are violations;
    - after {!Lsm_core.Doctor.repair} the store reopens cleanly, reads
      never raise, and the surviving state is class-specific: exact
      outside the reported lost ranges for [F_sst] (and never fabricated
      inside them), exactly the final model for [F_manifest], and a
      point-in-time op prefix no earlier than the last explicit flush
      for [F_wal]. *)

type report = {
  runs : int;  (** corruption/reopen/repair/check cycles executed *)
  hits : int;  (** total bits flipped across all cycles *)
  failures : string list;  (** human-readable contract violations *)
}

val merge_reports : report -> report -> report

val check_corruption :
  cls:Lsm_storage.Device.file_class ->
  pages:int ->
  seed:int ->
  ops:Crash_harness.op array ->
  int * string list
(** One cycle against [cls] with up to [pages] flipped pages per file.
    Returns [(hits, failures)]; zero hits (nothing of that class was on
    the device) skips the checks. *)

val sweep :
  ?classes:Lsm_storage.Device.file_class list ->
  ?pages:int list ->
  ?seeds:int list ->
  ops:Crash_harness.op array ->
  unit ->
  report
(** The full matrix: every class (default sst, manifest, wal) crossed
    with every page count (default 1, 2, 4) and every injection seed
    (default two). Deterministic in [ops] and [seeds]. *)
