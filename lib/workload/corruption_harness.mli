(** Bit-rot fault-injection harness — the silent-corruption counterpart
    of {!Crash_harness}, sharing its seeded workload and logical model.

    One cycle: run the workload to completion, close cleanly, flip bits
    in the durable image via {!Lsm_storage.Device.plan_corruption}
    targeting one file class, then check the corruption contract:

    - the damaged store {b never serves wrong data} — reopening either
      fails with a typed {!Lsm_util.Lsm_error.t} or serves reads that
      are each exactly the model's value or a typed error (disclosed
      damage); fabricated values, stale values, and silently vanished
      keys are violations;
    - after {!Lsm_core.Doctor.repair} the store reopens cleanly, reads
      never raise, and the surviving state is class-specific: exact
      outside the reported lost ranges for [F_sst] (and never fabricated
      inside them), exactly the final model for [F_manifest], and a
      point-in-time op prefix no earlier than the last explicit flush
      for [F_wal]. *)

type report = {
  runs : int;  (** corruption/reopen/repair/check cycles executed *)
  hits : int;  (** total bits flipped across all cycles *)
  failures : string list;  (** human-readable contract violations *)
}

val merge_reports : report -> report -> report

val check_corruption :
  ?config:Lsm_core.Config.t ->
  cls:Lsm_storage.Device.file_class ->
  pages:int ->
  seed:int ->
  ops:Crash_harness.op array ->
  unit ->
  int * string list
(** One cycle against [cls] with up to [pages] flipped pages per file.
    [config] (default: the crash-harness config with 256-byte blocks)
    lets callers run the same contract with ECC or other knobs on.
    Returns [(hits, failures)]; zero hits (nothing of that class was on
    the device) skips the checks. *)

val sweep :
  ?classes:Lsm_storage.Device.file_class list ->
  ?pages:int list ->
  ?seeds:int list ->
  ops:Crash_harness.op array ->
  unit ->
  report
(** The full matrix: every class (default sst, manifest, wal) crossed
    with every page count (default 1, 2, 4) and every injection seed
    (default two). Deterministic in [ops] and [seeds]. *)

val ecc_config : unit -> Lsm_core.Config.t
(** The ECC arm's config: the crash-harness defaults with 256-byte
    blocks and 4+2 Reed–Solomon stripes over 256-byte pages. *)

val check_ecc_strict :
  seed:int -> ops:Crash_harness.op array -> int * int * string list
(** One ECC-on cycle with a single flipped page per [.sst] — within the
    4+2 parity budget, so the contract is strict: every read byte-exact
    with no typed errors, zero quarantines, no fail-safe, a clean scrub,
    [ecc_repairs > 0], and a clean offline {!Lsm_core.Doctor.verify}
    afterwards (the device itself was healed, not just the session).
    Returns [(hits, pages_repaired, failures)]. *)

val sweep_ecc :
  ?pages:int list -> ?seeds:int list -> ops:Crash_harness.op array -> unit -> report * int
(** The ECC-on sweep over [F_sst]: page count 1 runs the strict
    in-place-repair cycle; higher counts (which can exceed the per-stripe
    parity budget) fall back to the generic corruption contract. Returns
    the report plus total pages repaired in place. *)
