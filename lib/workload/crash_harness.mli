(** Power-loss fault-injection harness for the recovery path.

    Drives a seeded mixed workload (puts, deletes, range deletes, atomic
    write batches, explicit flushes) against a {!Lsm_core.Db} on the
    in-memory {!Lsm_storage.Device}, crashes it at chosen instants via
    {!Lsm_storage.Device.plan_crash}, reopens, and checks the {b recovery
    invariant}: the recovered store equals the logical model after
    exactly [k] completed ops with [acked <= k <= acked+1] — no
    acknowledged write lost, at most the one in-flight op additionally
    durable, batches all-or-nothing, deleted keys never resurrected —
    and a second power loss immediately after recovery loses nothing.

    Sweeps exhaust a whole coordinate axis of crash points (every sync
    boundary, every mutating device op, sampled mid-append byte offsets,
    every device op of the recovery itself), each under several torn-tail
    modes. All runs are deterministic in the workload seed. *)

(** The workload alphabet — concrete so sibling harnesses (the
    corruption sweep) can reuse the generator, the db/model appliers,
    and recognize explicit flush points. *)
type op =
  | Put of string * string
  | Delete of string
  | Range_delete of string * string
  | Batch of (bool * string * string) list  (** (is_delete, key, value) *)
  | Flush

module SMap : Map.S with type key = string

type report = {
  runs : int;  (** crash/reopen/check cycles executed *)
  points : int;  (** distinct crash points covered *)
  failures : string list;  (** human-readable invariant violations *)
}

val merge_reports : report -> report -> report

val gen_ops : seed:int -> count:int -> op array
(** Deterministic mixed workload over a small key space; values embed the
    op index so torn batches are detectable. *)

val default_config : unit -> Lsm_core.Config.t
(** Per-write WAL syncs (every completed op is acknowledged-durable) and
    a 4 KiB write buffer (many flush/compaction boundaries). *)

val key_of : int -> string
(** The [i]-th key of the workload's (small, collision-heavy) key space. *)

val apply_db : Lsm_core.Db.t -> op -> unit

val models_of : op array -> string SMap.t array
(** [models.(i)] = logical store contents after the first [i] ops. *)

val dry_run : ops:op array -> int * int * int
(** [(syncs, mutating_ops, bytes)] one full run of the workload spans —
    the coordinate space the sweeps enumerate. *)

val check_crash :
  ?tear:Lsm_storage.Device.tear ->
  ?recovery:Lsm_storage.Device.tear * Lsm_storage.Device.crash_point ->
  ops:op array ->
  Lsm_storage.Device.crash_point ->
  (unit, string) result
(** One crash/recover/check cycle. [recovery], if given, injects a second
    crash into the recovery run itself before the final reopen. *)

val default_tears : Lsm_storage.Device.tear list
(** Clean truncation, an intact torn tail, and a scrambled torn tail. *)

val sweep_sync_points :
  ?tears:Lsm_storage.Device.tear list -> ?stride:int -> ops:op array -> unit -> report
(** Crash after every [stride]-th sync boundary of the workload. *)

val sweep_op_points :
  ?tears:Lsm_storage.Device.tear list -> ?stride:int -> ops:op array -> unit -> report
(** Crash after every [stride]-th mutating device op — reaches the
    windows between an unsynced append/delete/rename and the next sync. *)

val sweep_mid_append :
  ?tears:Lsm_storage.Device.tear list -> samples:int -> ops:op array -> unit -> report
(** Crash mid-append at [samples] byte offsets (torn frames). *)

val sweep_recovery_crashes :
  ?tears:Lsm_storage.Device.tear list -> ops:op array -> unit -> report
(** Crash mid-workload once, then crash the {e recovery} at every
    mutating device-op boundary it performs — the sweep that would catch
    manifest-rewrite and WAL-re-log windows in [open_db]. *)
