(* Closed-loop client simulator for the serving front door.

   One driver loop multiplexes hundreds of concurrent connections over
   [select] — each client is a tiny state machine with at most one
   request in flight (closed loop), so offered load self-regulates to
   the server's service rate and the latency histogram measures real
   request round trips, not queue-buildup artifacts.

   Correctness model. Every client owns a {e private} slice of the key
   space (key [c<id>-k<j>] is written only by client [id]); tenants are
   drawn zipfian across clients, keys zipfian within the slice. Single
   writer per key makes exact checking sound in the presence of server
   concurrency: once a PUT/MSET is acked, the client's reference map is
   the truth for those keys — the model is updated {e on ack}, not on
   send, so the check matches exactly the guarantee the server gives —
   and every later GET/MGET must return exactly the mapped value
   ([model_violations] counts both lost acked writes and wrong values).
   Group keys live in a separate per-client namespace ([c<id>-g<g>-k<j>])
   written {e only} by whole-group MSETs with one uniform tag, so a
   group-MGET must return a uniform result: a torn batch — some keys
   new, some old — is counted separately ([torn_mgets]) even though it
   also violates the model. (Point PUTs never touch group keys; mixing
   them would make tag uniformity trivially false for a sequential
   client.) After every [reconnect_every] acked writes
   the client drops its connection, reconnects, re-binds its tenant,
   and MGETs everything it ever wrote — the acked-write-survives-
   reconnect check.

   In-process servers (tests, bench) are driven by passing their
   [Server.step] as [pump]; the driver calls it once per select round,
   interleaving server and client work on one domain. Against an
   external server process, [pump] is [ignore]. *)

module Resp = Lsm_server.Resp
module Histogram = Lsm_util.Histogram
module Rng = Lsm_util.Rng
module Zipf = Lsm_util.Zipf

type config = {
  sock_path : string;
  connections : int;
  tenants : int;
  keys_per_client : int;
  value_size : int;
  total_ops : int;
  mget_group : int;  (** keys per MSET/MGET group (torn-batch probe width) *)
  theta : float;
  seed : int;
  reconnect_every : int;  (** acked writes between reconnect+verify cycles; 0 = never *)
  pump : unit -> unit;
}

let default =
  {
    sock_path = "";
    connections = 64;
    tenants = 8;
    keys_per_client = 64;
    value_size = 128;
    total_ops = 10_000;
    mget_group = 8;
    theta = 0.99;
    seed = 7;
    reconnect_every = 500;
    pump = ignore;
  }

type report = {
  ops_done : int;
  writes_acked : int;  (** puts + per-key mset acks *)
  reads : int;
  model_violations : int;
  torn_mgets : int;
  quota_denials : int;
  server_errors : int;
  reconnects : int;
  verified_keys : int;  (** keys re-checked across a reconnect *)
  wall_s : float;
  ops_per_sec : float;
  latency : Histogram.t;  (** request round trip, nanoseconds *)
}

(* What the in-flight request was, and how to judge its reply. *)
type expect =
  | E_bind  (** TENANT — Simple OK, nothing else to do *)
  | E_write of (string * string) list  (** PUT/MSET; apply to model on ack *)
  | E_get of string
  | E_mget of string list * [ `Group | `Verify ]

type phase =
  | Waiting of expect * int  (** request in flight since [t0] ns *)
  | Idle  (** connected, bound, ready to issue *)
  | Done

type client = {
  id : int;
  tenant : string;
  rng : Rng.t;
  zipf : Zipf.t;
  model : (string, string) Hashtbl.t;
  mutable fd : Unix.file_descr option;
  mutable phase : phase;
  mutable inbuf : Bytes.t;
  mutable in_len : int;
  mutable outbuf : string;  (** unsent request bytes *)
  mutable out_off : int;
  mutable acked_writes : int;
  mutable acked_since_reconnect : int;
  mutable tag : int;  (** monotone per-client write tag *)
}

type totals = {
  mutable ops : int;
  mutable writes : int;
  mutable reads : int;
  mutable violations : int;
  mutable torn : int;
  mutable denials : int;
  mutable errors : int;
  mutable reconnects : int;
  mutable verified : int;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let key_of c j = Printf.sprintf "c%04d-k%04d" c.id j
let group_key c g i = Printf.sprintf "c%04d-g%02d-k%04d" c.id g i
let n_groups cfg = max 1 (cfg.keys_per_client / max 1 cfg.mget_group)

(* Values carry the owning key and the write tag, padded to size: any
   returned value identifies exactly which write produced it, so torn
   groups are detectable by tag alone. *)
let value_of ~key ~tag size =
  let base = Printf.sprintf "%s:%08d:" key tag in
  if String.length base >= size then base
  else base ^ String.make (size - String.length base) 'x'

let tag_of_value v =
  match String.index_opt v ':' with
  | Some i when String.length v >= i + 9 -> Some (String.sub v (i + 1) 8)
  | _ -> None

let connect cfg c =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  (try Unix.connect fd (Unix.ADDR_UNIX cfg.sock_path)
   with Unix.Unix_error ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
  c.fd <- Some fd;
  c.in_len <- 0;
  c.outbuf <- Resp.encode_command [ "TENANT"; c.tenant ];
  c.out_off <- 0;
  c.phase <- Waiting (E_bind, now_ns ())

let disconnect c =
  (match c.fd with Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ()) | None -> ());
  c.fd <- None

let send c expect frame =
  c.outbuf <- frame;
  c.out_off <- 0;
  c.phase <- Waiting (expect, now_ns ())

(* Issue the next operation: 40% put, 25% get, 20% group mset, 15%
   group mget. Group operations address one of the client's aligned
   groups so a group MGET re-reads exactly one MSET's keys. *)
let issue cfg c =
  let j = Zipf.next_scrambled c.zipf c.rng in
  let r = Rng.int c.rng 100 in
  if r < 40 then begin
    let key = key_of c j in
    c.tag <- c.tag + 1;
    let v = value_of ~key ~tag:c.tag cfg.value_size in
    send c (E_write [ (key, v) ]) (Resp.encode_command [ "PUT"; key; v ])
  end
  else if r < 65 then begin
    let key = key_of c j in
    send c (E_get key) (Resp.encode_command [ "GET"; key ])
  end
  else begin
    let g = Rng.int c.rng (n_groups cfg) in
    let keys = List.init (max 1 cfg.mget_group) (group_key c g) in
    if r < 85 then begin
      c.tag <- c.tag + 1;
      let kvs = List.map (fun k -> (k, value_of ~key:k ~tag:c.tag cfg.value_size)) keys in
      send c (E_write kvs)
        (Resp.encode_command ("MSET" :: List.concat_map (fun (k, v) -> [ k; v ]) kvs))
    end
    else send c (E_mget (keys, `Group)) (Resp.encode_command ("MGET" :: keys))
  end

(* Reconnect verification: MGET every key this client ever acked, in
   slice order, and require exact model agreement. *)
let issue_verify c =
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) c.model [] |> List.sort compare
  in
  match keys with
  | [] -> c.phase <- Idle
  | keys -> send c (E_mget (keys, `Verify)) (Resp.encode_command ("MGET" :: keys))

(* Judge one reply. Returns [true] if it acked a write. *)
let judge (t : totals) c expect reply =
  match (expect, reply) with
  | E_bind, Resp.Simple _ -> false
  | E_write kvs, Resp.Simple _ ->
    List.iter (fun (k, v) -> Hashtbl.replace c.model k v) kvs;
    t.writes <- t.writes + List.length kvs;
    true
  | E_get key, (Resp.Bulk _ | Resp.Nil) ->
    t.reads <- t.reads + 1;
    let got = match reply with Resp.Bulk v -> Some v | _ -> None in
    if got <> Hashtbl.find_opt c.model key then t.violations <- t.violations + 1;
    false
  | E_mget (keys, kind), Resp.Array rs when List.length rs = List.length keys ->
    t.reads <- t.reads + List.length keys;
    let got = List.map (function Resp.Bulk v -> Some v | _ -> None) rs in
    List.iter2
      (fun k g -> if g <> Hashtbl.find_opt c.model k then t.violations <- t.violations + 1)
      keys got;
    (match kind with
    | `Group -> (
      match List.filter_map (fun g -> Option.bind g tag_of_value) got with
      | [] -> ()
      | t0 :: rest -> if List.exists (fun x -> x <> t0) rest then t.torn <- t.torn + 1)
    | `Verify -> t.verified <- t.verified + List.length keys);
    false
  | _, Resp.Error e ->
    (match Resp.error_code (Resp.Error e) with
    | Some "QUOTA_EXCEEDED" -> t.denials <- t.denials + 1
    | _ -> t.errors <- t.errors + 1);
    false
  | _ ->
    t.errors <- t.errors + 1;
    false

let read_chunk = 8 * 1024

let ensure_capacity c need =
  let cap = Bytes.length c.inbuf in
  if c.in_len + need > cap then begin
    let nb = Bytes.create (max (cap * 2) (c.in_len + need)) in
    Bytes.blit c.inbuf 0 nb 0 c.in_len;
    c.inbuf <- nb
  end

(* Reply arrived: time it, judge it, decide the next move. *)
let on_reply cfg t lat c reply =
  match c.phase with
  | Waiting (expect, t0) ->
    Histogram.add lat (max 0 (now_ns () - t0));
    let acked = judge t c expect reply in
    c.phase <- Idle;
    if acked then begin
      c.acked_writes <- c.acked_writes + 1;
      c.acked_since_reconnect <- c.acked_since_reconnect + 1
    end;
    (match expect with E_bind -> () | _ -> t.ops <- t.ops + 1);
    if
      cfg.reconnect_every > 0
      && c.acked_since_reconnect >= cfg.reconnect_every
      && c.phase = Idle
    then begin
      c.acked_since_reconnect <- 0;
      t.reconnects <- t.reconnects + 1;
      disconnect c;
      connect cfg c
      (* the verify MGET is issued right after the TENANT re-bind *)
    end
  | _ -> t.errors <- t.errors + 1

let handle_readable cfg t lat c fd =
  ensure_capacity c read_chunk;
  match Unix.read fd c.inbuf c.in_len read_chunk with
  | 0 ->
    (* Server closed (e.g. drain): a client mid-request counts an error
       only if it was still owed a reply. *)
    (match c.phase with Waiting _ -> t.errors <- t.errors + 1 | _ -> ());
    disconnect c;
    c.phase <- Done
  | n ->
    c.in_len <- c.in_len + n;
    let pos = ref 0 in
    let continue = ref true in
    (try
       (* A reconnect inside [on_reply] swaps the connection out under
          us (and zeroes [in_len]); stop parsing the stale buffer. *)
       while !continue && !pos < c.in_len do
         match Resp.parse_reply c.inbuf ~pos:!pos ~len:c.in_len with
         | Some (reply, pos') ->
           pos := pos';
           let was_bind = match c.phase with Waiting (E_bind, _) -> true | _ -> false in
           let was_reconnect = was_bind && Hashtbl.length c.model > 0 in
           on_reply cfg t lat c reply;
           if was_reconnect && c.phase = Idle then issue_verify c
         | None -> continue := false
       done
     with Resp.Malformed _ ->
       t.errors <- t.errors + 1;
       disconnect c;
       c.phase <- Done);
    if !pos > 0 && c.in_len >= !pos then begin
      Bytes.blit c.inbuf !pos c.inbuf 0 (c.in_len - !pos);
      c.in_len <- c.in_len - !pos
    end
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ ->
    disconnect c;
    c.phase <- Done

let handle_writable t c fd =
  let remaining = String.length c.outbuf - c.out_off in
  if remaining > 0 then
    match Unix.write_substring fd c.outbuf c.out_off remaining with
    | n -> c.out_off <- c.out_off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ ->
      t.errors <- t.errors + 1;
      disconnect c;
      c.phase <- Done

let run cfg =
  if cfg.sock_path = "" then invalid_arg "Server_harness.run: sock_path required";
  if cfg.connections < 1 then invalid_arg "Server_harness.run: connections must be >= 1";
  let rng0 = Rng.create cfg.seed in
  let tenant_zipf = Zipf.create ~theta:cfg.theta cfg.tenants in
  let clients =
    Array.init cfg.connections (fun id ->
        {
          id;
          tenant = Printf.sprintf "tenant-%03d" (Zipf.next_scrambled tenant_zipf rng0);
          rng = Rng.split rng0;
          zipf = Zipf.create ~theta:cfg.theta cfg.keys_per_client;
          model = Hashtbl.create 64;
          fd = None;
          phase = Idle;
          inbuf = Bytes.create read_chunk;
          in_len = 0;
          outbuf = "";
          out_off = 0;
          acked_writes = 0;
          acked_since_reconnect = 0;
          tag = 0;
        })
  in
  let t =
    {
      ops = 0;
      writes = 0;
      reads = 0;
      violations = 0;
      torn = 0;
      denials = 0;
      errors = 0;
      reconnects = 0;
      verified = 0;
    }
  in
  let lat = Histogram.create () in
  Array.iter (fun c -> connect cfg c) clients;
  let t0 = Unix.gettimeofday () in
  let live () =
    Array.exists (fun c -> c.phase <> Done && c.fd <> None) clients
  in
  while t.ops < cfg.total_ops && live () do
    (* Idle clients issue (or stop, once the op budget is spent). *)
    Array.iter
      (fun c ->
        if c.phase = Idle && c.fd <> None then
          if t.ops < cfg.total_ops then issue cfg c
          else begin
            disconnect c;
            c.phase <- Done
          end)
      clients;
    cfg.pump ();
    let rds =
      Array.to_list clients
      |> List.filter_map (fun c ->
             match (c.fd, c.phase) with Some fd, Waiting _ -> Some fd | _ -> None)
    in
    let wrs =
      Array.to_list clients
      |> List.filter_map (fun c ->
             match c.fd with
             | Some fd when String.length c.outbuf > c.out_off -> Some fd
             | _ -> None)
    in
    let r, w, _ =
      match Unix.select rds wrs [] 0.02 with
      | x -> x
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    Array.iter
      (fun c ->
        match c.fd with
        | Some fd ->
          if List.memq fd w then handle_writable t c fd;
          if List.memq fd r then handle_readable cfg t lat c fd
        | None -> ())
      clients
  done;
  Array.iter (fun c -> disconnect c) clients;
  let wall = Unix.gettimeofday () -. t0 in
  {
    ops_done = t.ops;
    writes_acked = t.writes;
    reads = t.reads;
    model_violations = t.violations;
    torn_mgets = t.torn;
    quota_denials = t.denials;
    server_errors = t.errors;
    reconnects = t.reconnects;
    verified_keys = t.verified;
    wall_s = wall;
    ops_per_sec = (if wall > 0.0 then float_of_int t.ops /. wall else 0.0);
    latency = lat;
  }
