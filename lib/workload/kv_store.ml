module Db = Lsm_core.Db

type t = {
  store_name : string;
  put : key:string -> string -> unit;
  get : string -> string option;
  scan : lo:string -> hi:string option -> limit:int -> (string * string) list;
  delete : string -> unit;
  rmw : key:string -> string -> unit;
  flush : unit -> unit;
  quiesce : unit -> unit;
  io_stats : unit -> Lsm_storage.Io_stats.t;
  user_bytes : unit -> int;
  space_bytes : unit -> int;
}

let of_db db =
  {
    store_name = "lsm";
    put = (fun ~key value -> Db.put db ~key value);
    get = (fun key -> Db.get db key);
    scan = (fun ~lo ~hi ~limit -> Db.scan db ~limit ~lo ~hi ());
    delete = (fun key -> Db.delete db key);
    rmw =
      (fun ~key operand ->
        match (Db.config db).Lsm_core.Config.merge_operator with
        | Some _ -> Db.merge db ~key operand
        | None ->
          let base = Option.value ~default:"" (Db.get db key) in
          Db.put db ~key (base ^ operand));
    flush = (fun () -> Db.flush db);
    quiesce = (fun () -> Db.quiesce db);
    io_stats = (fun () -> Db.io_stats db);
    user_bytes = (fun () -> (Db.stats db).Lsm_core.Stats.user_bytes_ingested);
    space_bytes = (fun () -> Lsm_storage.Device.total_bytes (Db.device db));
  }
