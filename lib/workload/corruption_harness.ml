(* Bit-rot fault-injection harness: the silent-corruption counterpart of
   [Crash_harness]. Reuses its seeded workload, model, and appliers.

   One cycle: run the workload to completion and close cleanly; flip
   bits in the durable image ({!Device.plan_corruption}) targeting one
   file class; then check the store's whole corruption contract:

   - {b never serve wrong data}: reopening the damaged store must either
     fail with a typed {!Lsm_error.t}, or serve reads where every value
     is exactly the model's — a read may raise a typed error (disclosed
     damage) but may never return a fabricated or stale value, and a key
     the model holds may not silently vanish;
   - {b doctor repairs to a disclosed state}: after {!Doctor.repair} the
     store must reopen cleanly and reads must not raise; what survives
     is class-specific:
     {ul
     {- [F_sst]: every key outside the reported lost ranges is exact;
        keys inside a lost range may be absent or stale, but a served
        value must still be one the workload actually wrote for that key
        (no fabrication even inside the blast radius);}
     {- [F_manifest]: tables and WAL are untouched, so the rebuilt
        manifest plus replayed WAL must reproduce the final model
        exactly;}
     {- [F_wal]: with tail-only damage, point-in-time truncation — the
        recovered store must equal the model after some op prefix [k],
        no earlier than the last explicit flush (everything flushed
        lives in tables); with disclosed mid-log gaps, batches on both
        sides of the rot survive, so keys untouched after the flush
        floor must be exact and differing keys must be absent or carry
        a genuinely-written value (no fabrication).}} *)

module Device = Lsm_storage.Device
module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Doctor = Lsm_core.Doctor
module Lsm_error = Lsm_util.Lsm_error
module CH = Crash_harness
module SMap = Crash_harness.SMap

type report = { runs : int; hits : int; failures : string list }

let merge_reports a b =
  { runs = a.runs + b.runs; hits = a.hits + b.hits; failures = a.failures @ b.failures }

let class_name = function
  | Device.F_sst -> "sst"
  | Device.F_manifest -> "manifest"
  | Device.F_wal -> "wal"
  | Device.F_other -> "other"

let key_space = 41 (* key_of 0 .. key_of 40, matching the generator *)

(* Every value the workload ever wrote to [k] — including versions
   overwritten within a single batch, which appear in no model state but
   do land in the store with their own seqno. This is the universe of
   non-fabricated answers for a key inside a lost range. *)
let history_of ops k =
  Array.fold_left
    (fun acc op ->
      match op with
      | CH.Put (k', v) when k' = k -> v :: acc
      | CH.Batch l ->
        List.fold_left
          (fun acc (is_del, k', v) -> if (not is_del) && k' = k then v :: acc else acc)
          acc l
      | _ -> acc)
    [] ops

let last_flush_index ops =
  let r = ref 0 in
  Array.iteri (fun i op -> if op = CH.Flush then r := i + 1) ops;
  !r

(* Pre-repair: reads against the damaged store. Failing typed is always
   acceptable; serving anything that differs from the final model is
   not. *)
let check_no_wrong_data ~fail db model =
  for i = 0 to key_space - 1 do
    let k = CH.key_of i in
    match Db.get db k with
    | Some v ->
      if SMap.find_opt k model <> Some v then
        fail (Printf.sprintf "pre-repair read of %s served wrong data" k)
    | None ->
      if SMap.mem k model then
        fail (Printf.sprintf "pre-repair read of %s silently lost an acknowledged value" k)
    | exception Lsm_error.Error _ -> () (* disclosed damage *)
    | exception e ->
      fail (Printf.sprintf "pre-repair read of %s raised untyped %s" k (Printexc.to_string e))
  done

let bindings db = Db.scan db ~lo:"" ~hi:None ()

(* Post-repair, [F_sst]: exact outside the disclosed lost ranges, never
   fabricated inside them. *)
let check_sst_salvage ~fail db ops model (rep : Doctor.report) =
  let lost k =
    List.exists
      (fun (tr : Doctor.table_report) ->
        List.exists
          (fun (lo, hi) -> (lo = "" && hi = "") || (lo <= k && k <= hi))
          tr.Doctor.tr_lost_ranges)
      rep.Doctor.tables
  in
  for i = 0 to key_space - 1 do
    let k = CH.key_of i in
    match Db.get db k with
    | exception e ->
      fail (Printf.sprintf "post-repair read of %s raised %s" k (Printexc.to_string e))
    | got ->
      if lost k then (
        match got with
        | None -> ()
        | Some v ->
          if not (List.mem v (history_of ops k)) then
            fail (Printf.sprintf "post-repair %s (in lost range) served a value never written" k))
      else if got <> SMap.find_opt k model then
        fail (Printf.sprintf "post-repair %s outside every lost range is not exact" k)
  done

(* Post-repair, [F_manifest]: data files were untouched, so the rebuild
   must reproduce the final state bit for bit. *)
let check_manifest_rebuild ~fail db model =
  match bindings db with
  | exception e -> fail (Printf.sprintf "post-repair scan raised %s" (Printexc.to_string e))
  | got ->
    if got <> SMap.bindings model then
      fail
        (Printf.sprintf "manifest rebuild did not reproduce the final state (%d keys vs %d)"
           (List.length got) (SMap.cardinal model))

(* Post-repair, [F_wal]. Two shapes of loss:
   - tail-only damage (no disclosed gaps): point-in-time truncation to
     some op prefix no earlier than the last explicit flush;
   - mid-log rot (disclosed gaps): salvage keeps the batches on {e both}
     sides of each gap, so the state is the final model minus the lost
     batches — not a prefix. Then the contract is: keys untouched after
     the flush floor must still be exact (their data lives in tables or
     surviving frames), and a differing key must have been touched after
     the floor and may only be absent or carry a value the workload
     actually wrote (no fabrication). *)
let check_wal_salvage ~fail db ops models ~floor (rep : Doctor.report) =
  let has_gaps =
    List.exists (fun (w : Doctor.wal_report) -> w.Doctor.wr_gaps <> []) rep.Doctor.wals
  in
  if not has_gaps then begin
    match bindings db with
    | exception e -> fail (Printf.sprintf "post-repair scan raised %s" (Printexc.to_string e))
    | got ->
      let n = Array.length models - 1 in
      let rec matches k = k <= n && (SMap.bindings models.(k) = got || matches (k + 1)) in
      if not (matches floor) then
        fail
          (Printf.sprintf "WAL salvage state matches no op prefix >= %d (got %d keys)" floor
             (List.length got))
  end
  else begin
    let model = models.(Array.length models - 1) in
    let touched_after k =
      let hit = ref false in
      Array.iteri
        (fun i op ->
          if i >= floor then
            match op with
            | CH.Put (k', _) | CH.Delete k' -> if k' = k then hit := true
            | CH.Batch l -> if List.exists (fun (_, k', _) -> k' = k) l then hit := true
            | _ -> ())
        ops;
      !hit
    in
    for i = 0 to key_space - 1 do
      let k = CH.key_of i in
      match Db.get db k with
      | exception e ->
        fail (Printf.sprintf "post-repair read of %s raised %s" k (Printexc.to_string e))
      | got ->
        if got <> SMap.find_opt k model then
          if not (touched_after k) then
            fail
              (Printf.sprintf
                 "post-repair %s untouched after the flush floor is not exact" k)
          else (
            match got with
            | None -> () (* its batch fell in a disclosed gap *)
            | Some v ->
              if not (List.mem v (history_of ops k)) then
                fail
                  (Printf.sprintf
                     "post-repair %s (batch lost to a WAL gap) served a value never written"
                     k))
    done
  end

let check_corruption ?config ~cls ~pages ~seed ~ops () =
  (* Small blocks and small device pages: every file spans many pages,
     so multi-page injection hits genuinely distinct blocks instead of
     collapsing onto the single page a tiny store would occupy. *)
  let config =
    match config with
    | Some c -> c
    | None -> { (CH.default_config ()) with Config.block_size = 256 }
  in
  let models = CH.models_of ops in
  let n = Array.length ops in
  let model = models.(n) in
  let failures = ref [] in
  let fail s =
    failures :=
      Printf.sprintf "[%s pages:%d seed:%d] %s" (class_name cls) pages seed s
      :: !failures
  in
  let dev = Device.in_memory ~page_size:256 () in
  let hits =
    try
      let db = Db.open_db ~config ~dev () in
      Array.iter (CH.apply_db db) ops;
      Db.close db;
      Device.plan_corruption dev ~seed ~classes:[ cls ] ~pages ()
    with e ->
      fail (Printf.sprintf "workload/injection raised %s" (Printexc.to_string e));
      []
  in
  if !failures = [] && hits <> [] then begin
    (* Never serve wrong data from the damaged store. A typed open
       failure is a legitimate outcome; any other exception is not. *)
    (match Db.open_db ~config ~dev () with
    | exception Lsm_error.Error _ -> ()
    | exception e -> fail (Printf.sprintf "damaged open raised untyped %s" (Printexc.to_string e))
    | db ->
      check_no_wrong_data ~fail db model;
      (try Db.close db with Lsm_error.Error _ -> ()));
    (* Doctor must bring the store back to a disclosed point-in-time. *)
    match Doctor.repair dev with
    | exception e -> fail (Printf.sprintf "doctor repair raised %s" (Printexc.to_string e))
    | rep -> (
      match Db.open_db ~config ~dev () with
      | exception e -> fail (Printf.sprintf "post-repair open raised %s" (Printexc.to_string e))
      | db ->
        (match cls with
        | Device.F_sst -> check_sst_salvage ~fail db ops model rep
        | Device.F_manifest -> check_manifest_rebuild ~fail db model
        | Device.F_wal | Device.F_other ->
          check_wal_salvage ~fail db ops models ~floor:(last_flush_index ops) rep);
        (match Db.close db with
        | () -> ()
        | exception e -> fail (Printf.sprintf "post-repair close raised %s" (Printexc.to_string e))))
  end;
  (List.length hits, List.rev !failures)

let default_classes = [ Device.F_sst; Device.F_manifest; Device.F_wal ]

let sweep ?(classes = default_classes) ?(pages = [ 1; 2; 4 ]) ?(seeds = [ 11; 23 ]) ~ops
    () =
  let acc = ref { runs = 0; hits = 0; failures = [] } in
  List.iter
    (fun cls ->
      List.iter
        (fun p ->
          List.iter
            (fun seed ->
              let hits, failures = check_corruption ~cls ~pages:p ~seed ~ops () in
              acc :=
                merge_reports !acc { runs = 1; hits; failures })
            seeds)
        pages)
    classes;
  !acc

(* ------------------------------------------------------------------ *)
(* ECC arm                                                             *)
(* ------------------------------------------------------------------ *)

module Stats = Lsm_core.Stats

(* 4+2 stripes over 256-byte pages: any single rotted page per stripe is
   reconstructible, so the single-page-per-file rot model must heal
   entirely in place. *)
let ecc_config () =
  {
    (CH.default_config ()) with
    Config.block_size = 256;
    ecc = Some { Config.ecc_data_pages = 4; ecc_parity_pages = 2 };
  }

(* The strict ECC cycle (one flipped page per [.sst]): stronger than the
   generic contract — the damaged store must serve {e every} read
   byte-exact with no typed errors, quarantine nothing, never trip
   fail-safe, scrub itself clean, and leave the device image sound for
   an offline doctor. Returns (hits, pages repaired, failures). *)
let check_ecc_strict ~seed ~ops =
  let config = ecc_config () in
  let models = CH.models_of ops in
  let model = models.(Array.length ops) in
  let failures = ref [] in
  let fail s = failures := Printf.sprintf "[ecc pages:1 seed:%d] %s" seed s :: !failures in
  let dev = Device.in_memory ~page_size:256 () in
  let hits =
    try
      let db = Db.open_db ~config ~dev () in
      Array.iter (CH.apply_db db) ops;
      Db.close db;
      Device.plan_corruption dev ~seed ~classes:[ Device.F_sst ] ~pages:1 ()
    with e ->
      fail (Printf.sprintf "workload/injection raised %s" (Printexc.to_string e));
      []
  in
  let repairs = ref 0 in
  if !failures = [] && hits <> [] then begin
    match Db.open_db ~config ~dev () with
    | exception e -> fail (Printf.sprintf "ecc open raised %s" (Printexc.to_string e))
    | db ->
      for i = 0 to key_space - 1 do
        let k = CH.key_of i in
        match Db.get db k with
        | got -> if got <> SMap.find_opt k model then fail (Printf.sprintf "read of %s not exact under single-page rot" k)
        | exception e ->
          fail (Printf.sprintf "read of %s raised %s under single-page rot" k (Printexc.to_string e))
      done;
      (* The scrub sweeps the blocks reads never touched — and the parity
         pages themselves — so the whole image is healed, not just the
         read-hot prefix. *)
      (match Db.verify_integrity db with
      | [] -> ()
      | fs -> fail (Printf.sprintf "scrub still found %d defects" (List.length fs)));
      if Db.quarantined_tables db <> [] then fail "quarantined a table under single-page rot";
      let st = Db.stats db in
      if st.Stats.failsafe_entries > 0 then fail "tripped fail-safe under single-page rot";
      if st.Stats.ecc_repairs = 0 then fail "rot was hit but nothing was repaired";
      repairs := st.Stats.ecc_repairs;
      (match Db.close db with
      | () -> ()
      | exception e -> fail (Printf.sprintf "close raised %s" (Printexc.to_string e)));
      (* In-place repair means the device itself is sound again. *)
      match Doctor.verify dev with
      | [] -> ()
      | fs -> fail (Printf.sprintf "offline doctor still finds %d defects" (List.length fs))
  end;
  (List.length hits, !repairs, List.rev !failures)

let sweep_ecc ?(pages = [ 1; 2; 4 ]) ?(seeds = [ 11; 23 ]) ~ops () =
  let acc = ref { runs = 0; hits = 0; failures = [] } in
  let repairs = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun seed ->
          if p = 1 then begin
            let hits, reps, failures = check_ecc_strict ~seed ~ops in
            repairs := !repairs + reps;
            acc := merge_reports !acc { runs = 1; hits; failures }
          end
          else begin
            (* Multi-page rot can exceed the per-stripe parity budget, so
               only the generic never-wrong-data/repair contract applies. *)
            let hits, failures =
              check_corruption ~config:(ecc_config ()) ~cls:Device.F_sst ~pages:p ~seed
                ~ops ()
            in
            acc := merge_reports !acc { runs = 1; hits; failures }
          end)
        seeds)
    pages;
  (!acc, !repairs)
