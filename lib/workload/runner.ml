module Rng = Lsm_util.Rng
module Zipf = Lsm_util.Zipf
module Io_stats = Lsm_storage.Io_stats

type result = {
  spec_name : string;
  store_name : string;
  preload_ops : int;
  measured_ops : int;
  elapsed_cpu_s : float;
  ops_per_sec : float;
  user_bytes : int;
  device_bytes_written : int;
  device_bytes_read : int;
  write_amplification : float;
  space_bytes : int;
  reads_performed : int;
  reads_found : int;
}

let keyspace_key encoding i =
  match encoding with
  | Spec.Ycsb_style -> Printf.sprintf "user%012d" i
  | Spec.Binary8 ->
    let b = Bytes.create 8 in
    Bytes.set_int64_be b 0 (Int64.of_int i);
    Bytes.unsafe_to_string b

(* Stateful key chooser over a growing keyspace. *)
type chooser = {
  mutable inserted : int;  (** keys 0 .. inserted-1 exist *)
  pick_existing : unit -> int;
  rng : Rng.t;
}

let make_chooser (spec : Spec.t) rng =
  let upper = max 1 (spec.preload + spec.operations) in
  let zipf =
    match spec.distribution with
    | Spec.Zipfian { theta } | Spec.Latest { theta } -> Some (Zipf.create ~theta upper)
    | Spec.Uniform | Spec.Sequential -> None
  in
  let seq_cursor = ref 0 in
  let rec chooser =
    {
      inserted = max 1 spec.preload;
      pick_existing =
        (fun () ->
          let n = max 1 chooser.inserted in
          match (spec.distribution, zipf) with
          | Spec.Uniform, _ -> Rng.int rng n
          | Spec.Sequential, _ ->
            let k = !seq_cursor mod n in
            incr seq_cursor;
            k
          | Spec.Zipfian _, Some z -> Zipf.next_scrambled z rng mod n
          | Spec.Latest _, Some z -> n - 1 - (Zipf.next z rng mod n)
          | (Spec.Zipfian _ | Spec.Latest _), None -> assert false);
      rng;
    }
  in
  chooser

let value_of rng size = Rng.bytes rng size

let preload (store : Kv_store.t) (spec : Spec.t) =
  Spec.validate spec;
  let rng = Rng.create spec.seed in
  (* Shuffled load order: sequential loads would make every flush file
     disjoint and hide compaction costs. *)
  let order = Array.init spec.preload Fun.id in
  Rng.shuffle rng order;
  Array.iter
    (fun i ->
      store.Kv_store.put ~key:(keyspace_key spec.encoding i) (value_of rng spec.value_size))
    order;
  store.Kv_store.flush ()

let sample_op (spec : Spec.t) rng =
  let m = spec.mix in
  let x = Rng.float rng (Spec.mix_sum m) in
  if x < m.insert then Spec.Op_insert
  else if x < m.insert +. m.update then Spec.Op_update
  else if x < m.insert +. m.update +. m.read then Spec.Op_read
  else if x < m.insert +. m.update +. m.read +. m.scan then
    Spec.Op_scan { length = m.scan_length }
  else if x < m.insert +. m.update +. m.read +. m.scan +. m.delete then Spec.Op_delete
  else Spec.Op_rmw

let run_measured_only (store : Kv_store.t) (spec : Spec.t) =
  Spec.validate spec;
  let rng = Rng.create (spec.seed lxor 0x5117) in
  let chooser = make_chooser spec rng in
  (* Settle background maintenance so the I/O snapshots bound a
     deterministic window: with a Background backend, in-flight lane work
     would otherwise land on either side of the snapshot at random. *)
  store.Kv_store.quiesce ();
  let io_before = Io_stats.copy (store.Kv_store.io_stats ()) in
  let user_before = store.Kv_store.user_bytes () in
  let reads = ref 0 and found = ref 0 in
  let t0 = Sys.time () in
  for _ = 1 to spec.operations do
    match sample_op spec rng with
    | Spec.Op_insert ->
      let i = chooser.inserted in
      chooser.inserted <- i + 1;
      store.put ~key:(keyspace_key spec.encoding i) (value_of rng spec.value_size)
    | Spec.Op_update ->
      store.put
        ~key:(keyspace_key spec.encoding (chooser.pick_existing ()))
        (value_of rng spec.value_size)
    | Spec.Op_read ->
      incr reads;
      let k = keyspace_key spec.encoding (chooser.pick_existing ()) in
      if store.get k <> None then incr found
    | Spec.Op_scan { length } ->
      let lo = keyspace_key spec.encoding (chooser.pick_existing ()) in
      ignore (store.scan ~lo ~hi:None ~limit:length)
    | Spec.Op_delete -> store.delete (keyspace_key spec.encoding (chooser.pick_existing ()))
    | Spec.Op_rmw ->
      store.rmw ~key:(keyspace_key spec.encoding (chooser.pick_existing ())) "+1"
  done;
  let elapsed = Sys.time () -. t0 in
  store.quiesce ();
  let io = Io_stats.diff (store.io_stats ()) io_before in
  let user_bytes = store.user_bytes () - user_before in
  {
    spec_name = spec.name;
    store_name = store.store_name;
    preload_ops = spec.preload;
    measured_ops = spec.operations;
    elapsed_cpu_s = elapsed;
    ops_per_sec = (if elapsed > 0.0 then float_of_int spec.operations /. elapsed else 0.0);
    user_bytes;
    device_bytes_written = Io_stats.bytes_written io;
    device_bytes_read = Io_stats.bytes_read io;
    write_amplification =
      (if user_bytes > 0 then float_of_int (Io_stats.bytes_written io) /. float_of_int user_bytes
       else 0.0);
    space_bytes = store.space_bytes ();
    reads_performed = !reads;
    reads_found = !found;
  }

let run store spec =
  preload store spec;
  run_measured_only store spec

let header =
  Printf.sprintf "%-14s %-12s %9s %9s %8s %6s %12s %12s %10s" "workload" "store" "ops"
    "ops/s" "cpu(s)" "WA" "devW(B)" "devR(B)" "space(B)"

let row r =
  Printf.sprintf "%-14s %-12s %9d %9.0f %8.2f %6.2f %12d %12d %10d" r.spec_name r.store_name
    r.measured_ops r.ops_per_sec r.elapsed_cpu_s r.write_amplification r.device_bytes_written
    r.device_bytes_read r.space_bytes

let pp_result ppf r = Format.pp_print_string ppf (row r)
