module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats
module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Write_batch = Lsm_core.Write_batch
module Rng = Lsm_util.Rng
module SMap = Map.Make (String)

type op =
  | Put of string * string
  | Delete of string
  | Range_delete of string * string
  | Batch of (bool * string * string) list  (** (is_delete, key, value) *)
  | Flush

type report = { runs : int; points : int; failures : string list }

let merge_reports a b =
  { runs = a.runs + b.runs; points = a.points + b.points; failures = a.failures @ b.failures }

(* Per-write syncs so every completed op is acknowledged-durable (the
   precondition for the exact-prefix invariant); a tiny buffer so the
   workload crosses many flush and compaction boundaries. *)
let default_config () =
  {
    Config.default with
    Config.write_buffer_size = 4096;
    wal_sync_every_write = true;
  }

let key_of i = Printf.sprintf "key-%02d" i

(* Values embed the op index: a torn batch that half-applied would match
   no per-op model state, so prefix checking doubles as an atomicity
   check. *)
let gen_ops ~seed ~count =
  let rng = Rng.create seed in
  let value idx = Printf.sprintf "v%04d-%s" idx (String.make (8 + Rng.int rng 40) 'x') in
  Array.init count (fun idx ->
      let r = Rng.int rng 100 in
      if r < 55 then Put (key_of (Rng.int rng 40), value idx)
      else if r < 70 then Delete (key_of (Rng.int rng 40))
      else if r < 84 then begin
        let n = 2 + Rng.int rng 4 in
        Batch
          (List.init n (fun j ->
               let k = key_of (Rng.int rng 40) in
               if Rng.bernoulli rng 0.25 then (true, k, "")
               else (false, k, value ((idx * 8) + j))))
      end
      else if r < 92 then begin
        let a = Rng.int rng 39 in
        let b = a + 1 + Rng.int rng (40 - a - 1 + 1) in
        Range_delete (key_of a, key_of (min 40 b))
      end
      else Flush)

let apply_model m = function
  | Put (k, v) -> SMap.add k v m
  | Delete k -> SMap.remove k m
  | Range_delete (lo, hi) -> SMap.filter (fun k _ -> not (lo <= k && k < hi)) m
  | Batch ops ->
    List.fold_left
      (fun m (is_del, k, v) -> if is_del then SMap.remove k m else SMap.add k v m)
      m ops
  | Flush -> m

let apply_db db = function
  | Put (k, v) -> Db.put db ~key:k v
  | Delete k -> Db.delete db k
  | Range_delete (lo, hi) -> Db.range_delete db ~lo ~hi
  | Batch ops ->
    let b = Write_batch.create () in
    List.iter
      (fun (is_del, k, v) ->
        if is_del then Write_batch.delete b k else Write_batch.put b ~key:k v)
      ops;
    Db.apply_batch db b
  | Flush -> Db.flush db

(* models.(i) = logical store contents after the first [i] ops. *)
let models_of ops =
  let n = Array.length ops in
  let models = Array.make (n + 1) SMap.empty in
  for i = 0 to n - 1 do
    models.(i + 1) <- apply_model models.(i) ops.(i)
  done;
  models

let tear_name = function
  | Device.Tear_none -> "none"
  | Device.Tear_keep n -> Printf.sprintf "keep:%d" n
  | Device.Tear_corrupt n -> Printf.sprintf "corrupt:%d" n

let point_name = function
  | Device.After_syncs n -> Printf.sprintf "sync#%d" n
  | Device.After_ops n -> Printf.sprintf "op#%d" n
  | Device.After_bytes n -> Printf.sprintf "byte#%d" n

(* Run the workload once with no crash armed; returns the sync / mutating
   op / byte extents of the run — the coordinate space of crash points. *)
let dry_run ~ops =
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(default_config ()) ~dev () in
  let s0 = Device.sync_count dev in
  let m0 = Device.mutation_count dev in
  let b0 = Io_stats.bytes_written (Device.stats dev) in
  Array.iter (apply_db db) ops;
  ( Device.sync_count dev - s0,
    Device.mutation_count dev - m0,
    Io_stats.bytes_written (Device.stats dev) - b0 )

let bindings db = Db.scan db ~lo:"" ~hi:None ()

(* The recovery invariant, checked after one injected crash (and an
   optional second crash injected into recovery itself):

   - the recovered store equals the model after exactly [k] ops, where
     [acked] <= [k] <= [acked]+1: no acknowledged write may be lost, and
     only the single in-flight op may additionally survive;
   - batches are all-or-nothing (a half-applied batch matches no model);
   - a second power loss immediately after recovery loses nothing (the
     re-logged WAL must already be durable). *)
let check_crash ?(tear = Device.Tear_none) ?recovery ~ops point =
  let config = default_config () in
  let models = models_of ops in
  let dev = Device.in_memory () in
  let fail fmt =
    Printf.ksprintf
      (fun s -> Error (Printf.sprintf "[%s %s] %s" (point_name point) (tear_name tear) s))
      fmt
  in
  match
    let db = Db.open_db ~config ~dev () in
    let acked = ref 0 in
    Device.plan_crash dev ~tear point;
    (try
       Array.iter
         (fun op ->
           apply_db db op;
           incr acked)
         ops;
       (* The armed point lies past the workload: power off at the end. *)
       Device.cancel_crash_plan dev;
       Device.crash ~tear dev
     with Device.Crashed -> ());
    Device.revive dev;
    (* Optionally kill the recovery itself partway through. *)
    (match recovery with
    | Some (rtear, rpoint) ->
      Device.plan_crash dev ~tear:rtear rpoint;
      (try
         ignore (Db.open_db ~config ~dev ());
         Device.cancel_crash_plan dev
       with Device.Crashed -> ());
      Device.revive dev
    | None -> ());
    let db2 = Db.open_db ~config ~dev () in
    let got = bindings db2 in
    Ok (!acked, got)
  with
  | exception e -> fail "exception during crash cycle: %s" (Printexc.to_string e)
  | Error e -> Error e
  | Ok (acked, got) ->
    let n = Array.length ops in
    let matches k = SMap.bindings models.(k) = got in
    if not (matches acked || (acked < n && matches (acked + 1))) then
      fail "recovered state matches no acknowledged prefix (acked=%d/%d, got %d keys)"
        acked n (List.length got)
    else begin
      (* Second power loss, immediately: recovery must already be durable. *)
      match
        Device.crash dev;
        let db3 = Db.open_db ~config ~dev () in
        bindings db3
      with
      | exception e -> fail "exception reopening after second crash: %s" (Printexc.to_string e)
      | got2 ->
        if got2 <> got then
          fail "second crash right after recovery lost data (%d keys -> %d)"
            (List.length got) (List.length got2)
        else Ok ()
    end

let run_points ~ops ~tears points =
  let runs = ref 0 and failures = ref [] in
  List.iter
    (fun point ->
      List.iter
        (fun tear ->
          incr runs;
          match check_crash ~tear ~ops point with
          | Ok () -> ()
          | Error e -> failures := e :: !failures)
        tears)
    points;
  { runs = !runs; points = List.length points; failures = List.rev !failures }

let stride_range ~stride n = List.init ((n + stride - 1) / stride) (fun i -> 1 + (i * stride))

let default_tears = [ Device.Tear_none; Device.Tear_keep 7; Device.Tear_corrupt 23 ]

(* Crash at every sync boundary of the workload (strided if asked). *)
let sweep_sync_points ?(tears = default_tears) ?(stride = 1) ~ops () =
  let syncs, _, _ = dry_run ~ops in
  run_points ~ops ~tears
    (List.map (fun n -> Device.After_syncs n) (stride_range ~stride syncs))

(* Crash at every mutating device-op boundary — finer than syncs: windows
   between an unsynced append/delete/rename and the next sync are only
   reachable here. *)
let sweep_op_points ?(tears = default_tears) ?(stride = 1) ~ops () =
  let _, muts, _ = dry_run ~ops in
  run_points ~ops ~tears
    (List.map (fun n -> Device.After_ops n) (stride_range ~stride muts))

(* Crash mid-append at [samples] byte offsets, with torn tails retained
   or scrambled: partial frames must be rejected by the CRC framing. *)
let sweep_mid_append ?(tears = default_tears) ~samples ~ops () =
  let _, _, bytes = dry_run ~ops in
  let points =
    List.init samples (fun i ->
        Device.After_bytes (max 1 ((i + 1) * bytes / (samples + 1))))
  in
  run_points ~ops ~tears points

(* Crash the workload once mid-way, then crash the *recovery* at every
   mutating device-op boundary it performs — the sweep that catches
   open-path bugs (manifest rewrite windows, WAL re-log windows). *)
let sweep_recovery_crashes ?(tears = default_tears) ~ops () =
  let config = default_config () in
  let syncs, _, _ = dry_run ~ops in
  let first_point = Device.After_syncs (max 1 (syncs / 2)) in
  (* How many mutating ops does one recovery perform? *)
  let recovery_extent tear =
    let dev = Device.in_memory () in
    let db = Db.open_db ~config ~dev () in
    Device.plan_crash dev ~tear first_point;
    (try
       Array.iter (apply_db db) ops;
       Device.cancel_crash_plan dev;
       Device.crash ~tear dev
     with Device.Crashed -> ());
    Device.revive dev;
    let m0 = Device.mutation_count dev in
    ignore (Db.open_db ~config ~dev ());
    Device.mutation_count dev - m0
  in
  let runs = ref 0 and failures = ref [] and points = ref 0 in
  List.iter
    (fun tear ->
      let extent = recovery_extent tear in
      points := !points + extent;
      for j = 1 to extent do
        incr runs;
        match check_crash ~tear ~recovery:(tear, Device.After_ops j) ~ops first_point with
        | Ok () -> ()
        | Error e ->
          failures :=
            Printf.sprintf "recovery-crash op#%d %s: %s" j (tear_name tear) e :: !failures
      done)
    tears;
  { runs = !runs; points = !points; failures = List.rev !failures }
