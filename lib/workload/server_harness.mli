(** Closed-loop client simulator for the {!Lsm_server.Server} front
    door, with exact acked-write model checking.

    Drives [connections] concurrent RESP clients from one [select]
    loop, each with at most one request in flight (closed loop).
    Tenants are drawn zipfian across clients and keys zipfian within
    each client's {e private} key slice — single writer per key, which
    is what makes exact checking sound under server-side concurrency:
    every GET/MGET must return precisely the last {e acked} write of
    that key (the reference model updates on ack, not on send).

    Three failure classes are counted separately:
    - [model_violations] — a read disagreed with the model (lost acked
      write, stale or wrong value);
    - [torn_mgets] — a group MGET over keys always written together by
      one MSET returned a mix of write tags (a torn batch read);
    - [server_errors] — unexpected error replies or protocol failures
      ([QUOTA_EXCEEDED] is counted as [quota_denials], not an error).

    Every [reconnect_every] acked writes a client tears its connection
    down, reconnects, re-binds its tenant, and MGETs its entire written
    key set against the model ([verified_keys] counts these). *)

type config = {
  sock_path : string;
  connections : int;
  tenants : int;
  keys_per_client : int;
  value_size : int;
  total_ops : int;
  mget_group : int;  (** keys per MSET/MGET group (torn-batch probe width) *)
  theta : float;  (** zipf skew for both tenant and key choice *)
  seed : int;
  reconnect_every : int;  (** acked writes between reconnect+verify; 0 = never *)
  pump : unit -> unit;
      (** called once per driver round; pass the in-process server's
          [fun () -> ignore (Server.step s ~timeout:0.0)] or [ignore]
          for an external server *)
}

val default : config
(** 64 connections, 8 tenants, 10k ops, zipf 0.99; [sock_path] must be
    overridden. *)

type report = {
  ops_done : int;
  writes_acked : int;
  reads : int;
  model_violations : int;
  torn_mgets : int;
  quota_denials : int;
  server_errors : int;
  reconnects : int;
  verified_keys : int;
  wall_s : float;
  ops_per_sec : float;
  latency : Lsm_util.Histogram.t;  (** request round trips, ns *)
}

val run : config -> report
(** Blocks until [total_ops] requests completed (or every client died).
    Deterministic request stream for a given seed; timing is not. *)
