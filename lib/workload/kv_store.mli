(** The store interface the workload runner drives.

    Each engine variant (the core LSM, the kv-separated WiscKey build, the
    fragmented/guarded build) adapts itself to this record, so every
    experiment runs the exact same operation stream against each. *)

type t = {
  store_name : string;
  put : key:string -> string -> unit;
  get : string -> string option;
  scan : lo:string -> hi:string option -> limit:int -> (string * string) list;
  delete : string -> unit;
  rmw : key:string -> string -> unit;
      (** read-modify-write; engines with a merge operator use it,
          others emulate with get+put *)
  flush : unit -> unit;
  quiesce : unit -> unit;
      (** wait for any background maintenance to drain without forcing a
          flush; a no-op for engines that do all maintenance inline *)
  io_stats : unit -> Lsm_storage.Io_stats.t;
  user_bytes : unit -> int;  (** logical bytes ingested so far *)
  space_bytes : unit -> int;  (** physical bytes on the device *)
}

val of_db : Lsm_core.Db.t -> t
