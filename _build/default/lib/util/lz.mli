(** A small LZ77 byte compressor (LZ4-style greedy matching, 64 KiB
    window) for SSTable block compression.

    Not a rival to real LZ4/zstd — the point is a self-contained,
    dependency-free codec so the engine's compression knob is a real knob:
    it reduces on-device bytes (space amplification, write amplification)
    at a measurable CPU cost, which is the tradeoff the experiments weigh. *)

val compress : string -> string
(** Never fails; output may be larger than the input for incompressible
    data (the SSTable layer falls back to storing raw in that case). *)

val decompress : string -> expected_len:int -> string
(** @raise Lsm_util__Codec.Corrupt (as [Codec.Corrupt]) on malformed input
    or a length mismatch. *)
