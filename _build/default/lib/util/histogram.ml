(* Buckets: values 0..63 map to their own bucket; above that, each power of
   two is split into 16 sub-buckets, giving geometric resolution. *)

let sub_bits = 4
let linear_limit = 1 lsl (sub_bits + 2)

let rec high_bit n acc = if n <= 1 then acc else high_bit (n lsr 1) (acc + 1)

let bucket_of_value v =
  if v < linear_limit then v
  else
    let exp = high_bit v 0 in
    let sub = (v lsr (exp - sub_bits)) land ((1 lsl sub_bits) - 1) in
    linear_limit + (((exp - (sub_bits + 2)) lsl sub_bits) lor sub)

let value_of_bucket b =
  if b < linear_limit then b
  else
    let rel = b - linear_limit in
    let exp = (rel lsr sub_bits) + sub_bits + 2 in
    let sub = rel land ((1 lsl sub_bits) - 1) in
    (* Upper bound of the bucket. *)
    (1 lsl exp) lor ((sub + 1) lsl (exp - sub_bits)) - 1

let num_buckets = bucket_of_value max_int + 1

type t = {
  mutable counts : int array;
  mutable count : int;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { counts = Array.make num_buckets 0; count = 0; total = 0; min_v = max_int; max_v = 0 }

let clear t =
  Array.fill t.counts 0 num_buckets 0;
  t.count <- 0;
  t.total <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

let copy t = { t with counts = Array.copy t.counts }

let add t v =
  if v < 0 then invalid_arg "Histogram.add: negative value";
  let b = bucket_of_value v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.count <- t.count + 1;
  t.total <- t.total + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let total t = t.total
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of range";
  if t.count = 0 then 0
  else begin
    let threshold = p /. 100.0 *. float_of_int t.count in
    let seen = ref 0 in
    let result = ref t.max_v in
    (try
       for b = 0 to num_buckets - 1 do
         seen := !seen + t.counts.(b);
         if float_of_int !seen >= threshold && t.counts.(b) > 0 then begin
           result := min (value_of_bucket b) t.max_v;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let merge ~into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.count <- into.count + src.count;
  into.total <- into.total + src.total;
  if src.count > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end

let pp_summary ppf t =
  Format.fprintf ppf "n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d" t.count (mean t)
    (percentile t 50.0) (percentile t 95.0) (percentile t 99.0) (max_value t)
