lib/util/hashing.mli:
