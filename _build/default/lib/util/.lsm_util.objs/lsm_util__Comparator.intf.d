lib/util/comparator.mli:
