lib/util/codec.ml: Buffer Char Format String
