lib/util/lz.ml: Array Buffer Char Codec String
