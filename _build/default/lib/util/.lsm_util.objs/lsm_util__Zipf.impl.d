lib/util/zipf.ml: Float Hashing Int64 Rng
