lib/util/comparator.ml: Bytes Char String
