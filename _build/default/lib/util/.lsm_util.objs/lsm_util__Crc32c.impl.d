lib/util/crc32c.ml: Array Char Int32 Lazy String
