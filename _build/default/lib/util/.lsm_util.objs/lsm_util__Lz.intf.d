lib/util/lz.mli:
