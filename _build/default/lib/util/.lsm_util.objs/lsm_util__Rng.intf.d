lib/util/rng.mli:
