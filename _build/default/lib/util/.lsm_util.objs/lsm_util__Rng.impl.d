lib/util/rng.ml: Array Char Hashing Int64 String
