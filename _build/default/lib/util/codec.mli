(** Binary encoding primitives shared by the on-disk formats.

    All multi-byte fixed-width integers are little-endian. Variable-length
    integers use the LEB128 encoding (7 bits per byte, high bit = "more"). *)

(** {1 Writers}

    Writers append to a [Buffer.t]; the SSTable and WAL builders assemble
    whole blocks in buffers before handing them to the storage layer. *)

val put_u8 : Buffer.t -> int -> unit
(** [put_u8 b v] appends the low 8 bits of [v]. *)

val put_u16 : Buffer.t -> int -> unit
(** [put_u16 b v] appends the low 16 bits of [v], little-endian. *)

val put_u32 : Buffer.t -> int -> unit
(** [put_u32 b v] appends the low 32 bits of [v], little-endian.
    [v] must fit in 32 unsigned bits. *)

val put_u64 : Buffer.t -> int64 -> unit
(** [put_u64 b v] appends [v] little-endian. *)

val put_varint : Buffer.t -> int -> unit
(** [put_varint b v] appends [v >= 0] as LEB128 (1–9 bytes). *)

val put_lp_string : Buffer.t -> string -> unit
(** [put_lp_string b s] appends [s] prefixed with its varint length. *)

(** {1 Readers}

    A reader is a cursor over an immutable string. All read functions
    advance the cursor and raise [Corrupt] on malformed input. *)

exception Corrupt of string
(** Raised when decoding runs past the end of input or meets an
    invalid encoding. *)

type reader = { src : string; mutable pos : int }

val reader : ?pos:int -> string -> reader
val remaining : reader -> int
val at_end : reader -> bool

val get_u8 : reader -> int
val get_u16 : reader -> int
val get_u32 : reader -> int
val get_u64 : reader -> int64
val get_varint : reader -> int
val get_lp_string : reader -> string
val get_raw : reader -> int -> string
(** [get_raw r n] reads exactly [n] bytes. *)

(** {1 Sizes} *)

val varint_size : int -> int
(** Number of bytes [put_varint] will use for a value. *)
