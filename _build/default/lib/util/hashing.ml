let splitmix64 z =
  let z = Int64.add z 0x9e3779b97f4a7c15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime) s;
  !h

let string64 ?(seed = 0L) s = splitmix64 (Int64.logxor (fnv1a64 s) seed)

let mask62 = (1 lsl 62) - 1

let double_hash s =
  let h = string64 s in
  let h1 = Int64.to_int h land mask62 in
  let h2 = Int64.to_int (splitmix64 h) land mask62 lor 1 in
  (h1, h2)

let fingerprint s ~bits =
  if bits < 1 || bits > 30 then invalid_arg "Hashing.fingerprint: bits out of range";
  let h = Int64.to_int (string64 ~seed:0x5bd1e995L s) in
  let fp = (h lsr 7) land ((1 lsl bits) - 1) in
  if fp = 0 then 1 else fp
