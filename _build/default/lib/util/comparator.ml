type t = { name : string; compare : string -> string -> int }

let bytewise = { name = "bytewise"; compare = String.compare }

let reverse_bytewise =
  { name = "reverse-bytewise"; compare = (fun a b -> String.compare b a) }

let common_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let rec loop i = if i < n && a.[i] = b.[i] then loop (i + 1) else i in
  loop 0

let shortest_separator c a b =
  if c.name <> bytewise.name then a
  else
    let p = common_prefix_len a b in
    if p >= String.length a then a (* a is a prefix of b *)
    else
      let byte = Char.code a.[p] in
      if byte < 0xff && (p + 1 > String.length b || byte + 1 < Char.code b.[p]) then begin
        let s = Bytes.of_string (String.sub a 0 (p + 1)) in
        Bytes.set s p (Char.chr (byte + 1));
        let s = Bytes.to_string s in
        assert (c.compare a s <= 0 && c.compare s b < 0);
        s
      end
      else a

let short_successor c k =
  if c.name <> bytewise.name then k
  else
    let n = String.length k in
    let rec find i = if i >= n then None else if k.[i] <> '\xff' then Some i else find (i + 1) in
    match find 0 with
    | None -> k (* all 0xff: no short successor *)
    | Some i ->
      let s = Bytes.of_string (String.sub k 0 (i + 1)) in
      Bytes.set s i (Char.chr (Char.code k.[i] + 1));
      Bytes.to_string s

let min_key c a b = if c.compare a b <= 0 then a else b
let max_key c a b = if c.compare a b >= 0 then a else b
