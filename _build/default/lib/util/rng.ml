type t = { mutable state : int64 }

let create seed = { state = Hashing.splitmix64 (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
  Hashing.splitmix64 t.state

let split t = { state = int64 t }

let mask62 = (1 lsl 62) - 1

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let limit = mask62 - (mask62 mod bound) in
  let rec loop () =
    let v = Int64.to_int (int64 t) land mask62 in
    if v >= limit then loop () else v mod bound
  in
  loop ()

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let bytes t n =
  String.init n (fun _ -> Char.chr (int t 256))
