exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  put_u8 b v;
  put_u8 b (v lsr 8)

let put_u32 b v =
  put_u16 b v;
  put_u16 b (v lsr 16)

let put_u64 b v = Buffer.add_int64_le b v

let rec put_varint b v =
  if v < 0 then invalid_arg "Codec.put_varint: negative"
  else if v < 0x80 then put_u8 b v
  else begin
    put_u8 b (0x80 lor (v land 0x7f));
    put_varint b (v lsr 7)
  end

let put_lp_string b s =
  put_varint b (String.length s);
  Buffer.add_string b s

type reader = { src : string; mutable pos : int }

let reader ?(pos = 0) src = { src; pos }
let remaining r = String.length r.src - r.pos
let at_end r = remaining r <= 0

let check r n = if remaining r < n then corrupt "truncated input at %d (need %d)" r.pos n

let get_u8 r =
  check r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  let lo = get_u8 r in
  let hi = get_u8 r in
  lo lor (hi lsl 8)

let get_u32 r =
  let lo = get_u16 r in
  let hi = get_u16 r in
  lo lor (hi lsl 16)

let get_u64 r =
  check r 8;
  let v = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  v

let get_varint r =
  let rec loop shift acc =
    if shift > 63 then corrupt "varint too long at %d" r.pos;
    let byte = get_u8 r in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let get_raw r n =
  check r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_lp_string r =
  let n = get_varint r in
  get_raw r n

let varint_size v =
  let rec loop v n = if v < 0x80 then n else loop (v lsr 7) (n + 1) in
  if v < 0 then invalid_arg "Codec.varint_size: negative" else loop v 1
