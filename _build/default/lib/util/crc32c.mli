(** CRC-32C (Castagnoli) checksums, as used by the block and WAL formats. *)

val string : ?init:int32 -> string -> int32
(** [string s] is the CRC-32C of [s]. [init] continues a running checksum. *)

val sub : ?init:int32 -> string -> pos:int -> len:int -> int32
(** Checksum of a substring. *)

val mask : int32 -> int32
(** Rotate-and-offset masking (à la LevelDB) so that checksums of data that
    itself embeds checksums remain well-distributed. *)

val unmask : int32 -> int32
(** Inverse of {!mask}. *)
