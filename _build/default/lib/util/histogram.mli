(** Log-bucketed histograms for latencies, burst sizes, and I/O counts.

    Buckets grow geometrically (each bucket covers values up to ~4% above
    the previous bound), so percentile error is bounded at ~4% across the
    full [0, 2^62] range with a few hundred buckets. *)

type t

val create : unit -> t
val clear : t -> unit
val copy : t -> t

val add : t -> int -> unit
(** Record a non-negative observation. *)

val count : t -> int
val total : t -> int
val min_value : t -> int
(** Smallest recorded value; 0 if empty. *)

val max_value : t -> int
val mean : t -> float
val percentile : t -> float -> int
(** [percentile t p] with [p] in [0, 100]; upper bound of the bucket holding
    the p-th percentile observation. 0 if empty. *)

val merge : into:t -> t -> unit

val pp_summary : Format.formatter -> t -> unit
(** One-line [count/mean/p50/p95/p99/max] rendering. *)
