(** Zipfian item selection (YCSB-compatible).

    Items are ranks [0 .. n-1]; rank 0 is the hottest. The scrambled
    variant spreads the hot ranks across the whole keyspace, as YCSB does,
    so skew does not correlate with key order. *)

type t

val create : ?theta:float -> int -> t
(** [create ~theta n] prepares a generator over [n] items.
    [theta] (default [0.99], YCSB's constant) controls skew; must be in
    (0, 1). Preprocessing is O(n) (computes the zeta normalizer). *)

val n : t -> int
val theta : t -> float

val next : t -> Rng.t -> int
(** Draw a rank in [0, n). *)

val next_scrambled : t -> Rng.t -> int
(** Draw a rank and scramble it with a fixed hash into [0, n). *)
