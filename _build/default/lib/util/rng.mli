(** Deterministic pseudo-random number generation (splitmix64 stream).

    Every workload generator and randomized test takes an explicit [Rng.t]
    so experiments are reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] starts a stream. Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent stream (also advances [t]). *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte uniformly random string. *)
