let polynomial = 0x82f63b78l

let table =
  lazy
    (let t = Array.make 256 0l in
     for i = 0 to 255 do
       let c = ref (Int32.of_int i) in
       for _ = 0 to 7 do
         let lsb = Int32.logand !c 1l in
         c := Int32.shift_right_logical !c 1;
         if lsb = 1l then c := Int32.logxor !c polynomial
       done;
       t.(i) <- !c
     done;
     t)

let sub ?(init = 0l) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32c.sub: out of bounds";
  let t = Lazy.force table in
  let c = ref (Int32.lognot init) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xffl)
    in
    c := Int32.logxor (Int32.shift_right_logical !c 8) t.(idx)
  done;
  Int32.lognot !c

let string ?init s = sub ?init s ~pos:0 ~len:(String.length s)

let mask_delta = 0xa282ead8l

let mask crc =
  let rotated =
    Int32.logor (Int32.shift_right_logical crc 15) (Int32.shift_left crc 17)
  in
  Int32.add rotated mask_delta

let unmask masked =
  let rotated = Int32.sub masked mask_delta in
  Int32.logor (Int32.shift_right_logical rotated 17) (Int32.shift_left rotated 15)
