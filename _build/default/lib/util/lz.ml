(* Token stream: [u8 token | (ext lit len varint) | literals
                  | u16 offset | (ext match len varint)]...
   token = lit_len(4 bits) << 4 | (match_len - 4)(4 bits); nibble 15 means
   "15 plus a varint continues". The final token carries literals only
   (no offset follows because the input ends). Offsets are 1..65535 back
   references; matches are >= 4 bytes. *)

let hash_bits = 14
let table_size = 1 lsl hash_bits

let hash4 s i =
  let v =
    Char.code s.[i]
    lor (Char.code s.[i + 1] lsl 8)
    lor (Char.code s.[i + 2] lsl 16)
    lor (Char.code s.[i + 3] lsl 24)
  in
  (v * 2654435761) lsr (32 - hash_bits) land (table_size - 1)

let compress s =
  let n = String.length s in
  let out = Buffer.create (n / 2) in
  let table = Array.make table_size (-1) in
  let anchor = ref 0 in
  let i = ref 0 in
  let emit_token lit_len match_len_opt =
    let lit_nib = min 15 lit_len in
    let m_nib = match match_len_opt with None -> 0 | Some m -> min 15 (m - 4) in
    Codec.put_u8 out ((lit_nib lsl 4) lor m_nib);
    if lit_nib = 15 then Codec.put_varint out (lit_len - 15);
    Buffer.add_substring out s !anchor lit_len
  in
  while !i + 4 <= n do
    let h = hash4 s !i in
    let cand = table.(h) in
    table.(h) <- !i;
    let ok =
      cand >= 0
      && !i - cand <= 0xffff
      && s.[cand] = s.[!i]
      && s.[cand + 1] = s.[!i + 1]
      && s.[cand + 2] = s.[!i + 2]
      && s.[cand + 3] = s.[!i + 3]
    in
    if ok then begin
      (* extend the match *)
      let m = ref 4 in
      while !i + !m < n && s.[cand + !m] = s.[!i + !m] do
        incr m
      done;
      emit_token (!i - !anchor) (Some !m);
      Codec.put_u16 out (!i - cand);
      if min 15 (!m - 4) = 15 then Codec.put_varint out (!m - 4 - 15);
      i := !i + !m;
      anchor := !i
    end
    else incr i
  done;
  (* trailing literals *)
  emit_token (n - !anchor) None;
  Buffer.contents out

let corrupt () = raise (Codec.Corrupt "lz: malformed stream")

let decompress s ~expected_len =
  let out = Buffer.create expected_len in
  let r = Codec.reader s in
  (try
     while not (Codec.at_end r) do
       let token = Codec.get_u8 r in
       let lit_nib = token lsr 4 in
       let lit_len = if lit_nib = 15 then 15 + Codec.get_varint r else lit_nib in
       Buffer.add_string out (Codec.get_raw r lit_len);
       if not (Codec.at_end r) then begin
         let m_nib = token land 0xf in
         let offset = Codec.get_u16 r in
         let mlen = (if m_nib = 15 then 15 + Codec.get_varint r else m_nib) + 4 in
         let start = Buffer.length out - offset in
         if offset = 0 || start < 0 then corrupt ();
         (* overlapping copies must go byte by byte *)
         for k = 0 to mlen - 1 do
           Buffer.add_char out (Buffer.nth out (start + k))
         done
       end
     done
   with Invalid_argument _ -> corrupt ());
  if Buffer.length out <> expected_len then corrupt ();
  Buffer.contents out
