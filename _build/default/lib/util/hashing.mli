(** 64-bit hash functions for filters, hash-based memtables, and sharding.

    All hashes are deterministic across runs (no per-process salt) so that
    on-disk filter blocks remain valid when re-read. *)

val splitmix64 : int64 -> int64
(** One step of the splitmix64 finalizer; a strong bijective mixer. *)

val fnv1a64 : string -> int64
(** FNV-1a over the bytes of the string. *)

val string64 : ?seed:int64 -> string -> int64
(** Default string hash: FNV-1a followed by a splitmix finalizer, optionally
    keyed by [seed]. *)

val double_hash : string -> int * int
(** [double_hash s] derives two positive 62-bit ints [(h1, h2)] from one hash
    of [s], for Kirsch–Mitzenmacher double hashing ([g_i = h1 + i*h2]).
    [h2] is forced odd so successive probes cycle through power-of-two
    table sizes. *)

val fingerprint : string -> bits:int -> int
(** [fingerprint s ~bits] is a non-zero fingerprint of [s] in [1, 2^bits - 1]
    (Cuckoo filters reserve 0 for "empty slot"). *)
