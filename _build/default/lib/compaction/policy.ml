type data_layout =
  | Leveling
  | Tiering of { runs : int }
  | Lazy_leveling of { runs : int }
  | Hybrid of { tiered_levels : int; runs : int }
  | Run_caps of int array

type granularity = Whole_level | Single_file

type movement =
  | Round_robin
  | Least_overlap
  | Oldest_file
  | Most_tombstones
  | Expired_ttl of { ttl : int }

type t = {
  layout : data_layout;
  granularity : granularity;
  movement : movement;
  size_ratio : int;
  level0_limit : int;
}

let default =
  {
    layout = Leveling;
    granularity = Single_file;
    movement = Least_overlap;
    size_ratio = 10;
    level0_limit = 4;
  }

let leveled ?(size_ratio = 10) () = { default with layout = Leveling; size_ratio }

let tiered ?(size_ratio = 10) () =
  {
    default with
    layout = Tiering { runs = size_ratio };
    granularity = Whole_level;
    size_ratio;
  }

let lazy_leveled ?(size_ratio = 10) () =
  { default with layout = Lazy_leveling { runs = size_ratio }; size_ratio }

let run_cap t ~level ~last_level =
  if level <= 0 then t.level0_limit
  else
    match t.layout with
    | Leveling -> 1
    | Tiering { runs } -> max 1 runs
    | Lazy_leveling { runs } -> if level >= last_level then 1 else max 1 runs
    | Hybrid { tiered_levels; runs } -> if level <= tiered_levels then max 1 runs else 1
    | Run_caps caps ->
      if Array.length caps = 0 then 1
      else if level - 1 < Array.length caps then max 1 caps.(level - 1)
      else max 1 caps.(Array.length caps - 1)

let layout_name = function
  | Leveling -> "leveling"
  | Tiering { runs } -> Printf.sprintf "tiering(%d)" runs
  | Lazy_leveling { runs } -> Printf.sprintf "lazy-leveling(%d)" runs
  | Hybrid { tiered_levels; runs } -> Printf.sprintf "hybrid(%d tiered,%d)" tiered_levels runs
  | Run_caps caps ->
    Printf.sprintf "run-caps[%s]"
      (String.concat "," (Array.to_list (Array.map string_of_int caps)))

let movement_name = function
  | Round_robin -> "round-robin"
  | Least_overlap -> "least-overlap"
  | Oldest_file -> "oldest"
  | Most_tombstones -> "most-tombstones"
  | Expired_ttl { ttl } -> Printf.sprintf "expired-ttl(%d)" ttl

let granularity_name = function Whole_level -> "whole-level" | Single_file -> "single-file"

let describe t =
  Printf.sprintf "%s/%s/%s T=%d L0=%d" (layout_name t.layout)
    (granularity_name t.granularity) (movement_name t.movement) t.size_ratio t.level0_limit

let pp ppf t = Format.pp_print_string ppf (describe t)
