let all =
  [
    ( "leveldb",
      "LevelDB: leveled, one file at a time, round-robin cursor over the level",
      {
        (Policy.leveled ~size_ratio:10 ()) with
        Policy.granularity = Policy.Single_file;
        movement = Policy.Round_robin;
      } );
    ( "rocksdb-leveled",
      "RocksDB leveled default: partial compaction picking least next-level overlap",
      {
        (Policy.leveled ~size_ratio:10 ()) with
        Policy.granularity = Policy.Single_file;
        movement = Policy.Least_overlap;
      } );
    ( "rocksdb-universal",
      "RocksDB universal: tiered, whole sorted runs merged on run-count pressure",
      Policy.tiered ~size_ratio:4 () );
    ( "cassandra-stcs",
      "Cassandra size-tiered: merge similar-sized runs once four accumulate",
      Policy.tiered ~size_ratio:4 () );
    ( "hbase-exploring",
      "HBase exploring: tiered selection bounded by run count",
      Policy.tiered ~size_ratio:3 () );
    ( "asterixdb",
      "AsterixDB prefix policy lineage: full-level merges (no partial compaction)",
      {
        (Policy.leveled ~size_ratio:10 ()) with
        Policy.granularity = Policy.Whole_level;
      } );
    ( "dostoevsky",
      "Dostoevsky lazy leveling: tiered intermediates, leveled last level",
      Policy.lazy_leveled ~size_ratio:10 () );
    ( "rocksdb-hybrid",
      "RocksDB-style burst absorption: tiered level 1, leveled below",
      {
        (Policy.leveled ~size_ratio:10 ()) with
        Policy.layout = Policy.Hybrid { tiered_levels = 1; runs = 10 };
      } );
    ( "lethe-fade",
      "Lethe FADE: leveled with tombstone-TTL-driven file picking",
      {
        (Policy.leveled ~size_ratio:10 ()) with
        Policy.granularity = Policy.Single_file;
        movement = Policy.Expired_ttl { ttl = 10_000 };
      } );
    ( "coldest-first",
      "Age-based movement: always push the coldest (oldest) file down",
      {
        (Policy.leveled ~size_ratio:10 ()) with
        Policy.granularity = Policy.Single_file;
        movement = Policy.Oldest_file;
      } );
  ]

let find name =
  let name = String.lowercase_ascii name in
  List.find_map (fun (n, _, p) -> if String.equal n name then Some p else None) all

let names = List.map (fun (n, _, _) -> n) all

let describe_all () =
  all
  |> List.map (fun (n, what, p) -> Printf.sprintf "%-18s %s\n%-18s -> %s" n what "" (Policy.describe p))
  |> String.concat "\n"
