module Table_meta = Lsm_sstable.Table_meta
module Comparator = Lsm_util.Comparator

type candidate = {
  meta : Table_meta.t;
  overlap_bytes : int;
  expired_tombstones : bool;
}

let overlapping ~cmp ~lo ~hi files =
  List.filter (fun f -> Table_meta.overlaps cmp f ~lo ~hi) files

let annotate ~cmp ~now ~ttl ~next_level files =
  List.map
    (fun (f : Table_meta.t) ->
      let overlap_bytes =
        overlapping ~cmp ~lo:f.min_key ~hi:f.max_key next_level
        |> List.fold_left (fun acc (g : Table_meta.t) -> acc + g.size) 0
      in
      let expired_tombstones =
        match ttl with
        | Some ttl -> f.point_tombstones + f.range_tombstones > 0 && now - f.created_at > ttl
        | None -> false
      in
      { meta = f; overlap_bytes; expired_tombstones })
    files

let min_by f = function
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun best c -> if f c < f best then c else best) first rest)

let pick movement ~cursor candidates =
  match candidates with
  | [] -> None
  | _ ->
    let chosen =
      match movement with
      | Policy.Round_robin ->
        (* First file (in key order) past the cursor; wrap to the smallest. *)
        let sorted =
          List.sort (fun a b -> String.compare a.meta.Table_meta.min_key b.meta.min_key) candidates
        in
        let past =
          match cursor with
          | None -> sorted
          | Some c ->
            List.filter (fun x -> String.compare x.meta.Table_meta.max_key c > 0) sorted
        in
        Some (match past with x :: _ -> x | [] -> List.hd sorted)
      | Policy.Least_overlap -> min_by (fun c -> c.overlap_bytes) candidates
      | Policy.Oldest_file -> min_by (fun c -> c.meta.Table_meta.created_at) candidates
      | Policy.Most_tombstones ->
        min_by (fun c -> -. Table_meta.tombstone_density c.meta) candidates
      | Policy.Expired_ttl _ ->
        (* Lethe: an expired file wins outright (break ties toward denser
           tombstones); otherwise behave like least-overlap. *)
        let expired = List.filter (fun c -> c.expired_tombstones) candidates in
        (match expired with
        | [] -> min_by (fun c -> c.overlap_bytes) candidates
        | _ -> min_by (fun c -> -. Table_meta.tombstone_density c.meta) expired)
    in
    Option.map (fun c -> c.meta) chosen
