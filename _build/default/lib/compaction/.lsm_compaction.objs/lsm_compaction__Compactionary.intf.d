lib/compaction/compactionary.mli: Policy
