lib/compaction/picker.mli: Lsm_sstable Lsm_util Policy
