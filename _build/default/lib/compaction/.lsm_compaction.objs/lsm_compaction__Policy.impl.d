lib/compaction/policy.ml: Array Format Printf String
