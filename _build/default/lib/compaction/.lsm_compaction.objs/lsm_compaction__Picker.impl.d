lib/compaction/picker.ml: List Lsm_sstable Lsm_util Option Policy String
