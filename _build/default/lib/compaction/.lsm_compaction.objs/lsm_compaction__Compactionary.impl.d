lib/compaction/compactionary.ml: List Policy Printf String
