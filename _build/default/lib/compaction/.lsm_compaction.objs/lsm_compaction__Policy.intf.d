lib/compaction/policy.mli: Format
