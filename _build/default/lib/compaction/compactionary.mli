(** A dictionary of production compaction strategies expressed as points
    in the four-primitive design space — after "Compactionary: A Dictionary
    for LSM Compactions" (Sarkar et al., SIGMOD 2022 [111]), the companion
    of the tutorial's §2.2.4.

    Each entry names a real engine's default strategy and its encoding in
    {!Policy.t}; the point of the exercise is that every one of them is
    reachable by turning the same four knobs. *)

val all : (string * string * Policy.t) list
(** (name, what it models, policy). *)

val find : string -> Policy.t option
(** Case-insensitive lookup by name. *)

val names : string list
val describe_all : unit -> string
(** Multi-line rendering for CLIs. *)
