(** Data-movement policies: which file of a level moves next (§2.2.3).

    All pickers operate on {!Lsm_sstable.Table_meta.t} only — no I/O — so
    the choice is as cheap as in production engines, which keep the same
    metadata in their manifests. *)

type candidate = {
  meta : Lsm_sstable.Table_meta.t;
  overlap_bytes : int;  (** total size of overlapping next-level files *)
  expired_tombstones : bool;  (** has tombstones older than the policy TTL *)
}

val annotate :
  cmp:Lsm_util.Comparator.t ->
  now:int ->
  ttl:int option ->
  next_level:Lsm_sstable.Table_meta.t list ->
  Lsm_sstable.Table_meta.t list ->
  candidate list
(** Compute overlap and TTL expiry for each file of a level against the
    (key-ordered, non-overlapping) next-level run. [now] is the logical
    clock; a file "has expired tombstones" when it contains tombstones and
    [now - created_at > ttl]. *)

val pick :
  Policy.movement ->
  cursor:string option ->
  candidate list ->
  Lsm_sstable.Table_meta.t option
(** Choose the file to compact. [cursor] is the round-robin position (the
    largest key compacted last time at this level); files whose max_key is
    <= cursor are passed over until wrap-around. Returns [None] only for an
    empty candidate list. *)

val overlapping :
  cmp:Lsm_util.Comparator.t ->
  lo:string ->
  hi:string ->
  Lsm_sstable.Table_meta.t list ->
  Lsm_sstable.Table_meta.t list
(** Files of a run intersecting the closed key interval. *)
