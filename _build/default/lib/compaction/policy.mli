(** The compaction design space as four first-order primitives (§2.2.4,
    after Sarkar et al., "Constructing and Analyzing the LSM Compaction
    Design Space", VLDB 2021):

    1. the {e data layout} (how many sorted runs a level may hold),
    2. the {e trigger} (when a level must compact),
    3. the {e granularity} (how much data moves per compaction), and
    4. the {e data-movement policy} (which files move).

    Any classical or hybrid strategy is a point in this space: RocksDB
    leveled = (Leveling, Level_size, File, Least_overlap); Cassandra
    STCS ≈ (Tiering T, Run_count, Whole_level, —); Dostoevsky =
    (Lazy_leveling, …); Lethe = (…, movement = Expired_ttl). *)

type data_layout =
  | Leveling  (** at most one run per level (§2.1.2) *)
  | Tiering of { runs : int }  (** up to [runs] runs per level *)
  | Lazy_leveling of { runs : int }
      (** Dostoevsky: tiered intermediate levels, leveled last level *)
  | Hybrid of { tiered_levels : int; runs : int }
      (** the first [tiered_levels] levels tiered (RocksDB-style L0 burst
          absorption), deeper levels leveled *)
  | Run_caps of int array
      (** the continuum (E14): explicit per-level run caps; levels beyond
          the array reuse its last element *)

type granularity =
  | Whole_level  (** AsterixDB-style full-level merges (§2.2.3) *)
  | Single_file  (** partial compaction: one file at a time *)

type movement =
  | Round_robin  (** next file after the last compacted key *)
  | Least_overlap  (** file with the least next-level overlap [38, 71] *)
  | Oldest_file  (** cold-first: the file written longest ago *)
  | Most_tombstones  (** highest tombstone density, purges deletes early *)
  | Expired_ttl of { ttl : int }
      (** Lethe's FADE: prefer files holding tombstones older than [ttl]
          logical ticks; fall back to least overlap *)

type t = {
  layout : data_layout;
  granularity : granularity;
  movement : movement;
  size_ratio : int;  (** T: capacity growth factor between levels *)
  level0_limit : int;  (** runs in level 0 that trigger a flush-out *)
}

val default : t
(** RocksDB-ish: leveled, single-file granularity, least-overlap movement,
    T=10, level0_limit=4. *)

val leveled : ?size_ratio:int -> unit -> t
val tiered : ?size_ratio:int -> unit -> t
(** Tiering with [runs = size_ratio], the classical coupling. *)

val lazy_leveled : ?size_ratio:int -> unit -> t

val run_cap : t -> level:int -> last_level:int -> int
(** Maximum sorted runs the layout allows in [level] (1-based; level 0 is
    governed by [level0_limit] separately). *)

val layout_name : data_layout -> string
val movement_name : movement -> string
val granularity_name : granularity -> string
val describe : t -> string
val pp : Format.formatter -> t -> unit
