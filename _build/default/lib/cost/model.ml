module Monkey = Lsm_filter.Monkey

type design = {
  layout : [ `Leveling | `Tiering | `Lazy_leveling ];
  size_ratio : int;
  buffer_bytes : int;
  filter_bits_per_key : float;
}

type workload = {
  entries : int;
  entry_bytes : int;
  page_bytes : int;
  f_insert : float;
  f_point_lookup_hit : float;
  f_point_lookup_miss : float;
  f_short_scan : float;
  f_long_scan : float;
  long_scan_pages : float;
}

let mix_total w =
  w.f_insert +. w.f_point_lookup_hit +. w.f_point_lookup_miss +. w.f_short_scan +. w.f_long_scan

let entries_per_page w = max 1 (w.page_bytes / max 1 w.entry_bytes)

let levels d w =
  let data_bytes = float_of_int w.entries *. float_of_int w.entry_bytes in
  let buffer = float_of_int (max 1 d.buffer_bytes) in
  let t = float_of_int (max 2 d.size_ratio) in
  if data_bytes <= buffer then 1
  else max 1 (int_of_float (ceil (Float.log (data_bytes /. buffer) /. Float.log t)))

let runs_per_level d w =
  let l = levels d w in
  let t = max 2 d.size_ratio in
  Array.init l (fun i ->
      match d.layout with
      | `Leveling -> 1
      | `Tiering -> t - 1
      | `Lazy_leveling -> if i = l - 1 then 1 else t - 1)

(* Entries resident per level: level l holds ~ buffer * T^l entries-worth
   of data (l from 1); expressed in entries for filter allocation. *)
let level_entries d w =
  let l = levels d w in
  let buffer_entries = max 1 (d.buffer_bytes / max 1 w.entry_bytes) in
  let t = max 2 d.size_ratio in
  Array.init l (fun i ->
      let cap = float_of_int buffer_entries *. Float.pow (float_of_int t) (float_of_int (i + 1)) in
      int_of_float (Float.min cap (float_of_int w.entries)))

(* Per-run false-positive rates under a Monkey allocation of the design's
   total filter budget across levels. *)
let run_fprs d w =
  let le = level_entries d w in
  let total_bits = d.filter_bits_per_key *. float_of_int w.entries in
  let bits = Monkey.allocate ~total_bits ~level_entries:le in
  let caps = runs_per_level d w in
  Array.mapi (fun i b -> (caps.(i), Monkey.fpr_of_bits b)) bits

let write_cost d w =
  let l = float_of_int (levels d w) in
  let t = float_of_int (max 2 d.size_ratio) in
  let b = float_of_int (entries_per_page w) in
  match d.layout with
  | `Leveling -> l *. t /. (2.0 *. b)
  | `Tiering -> l /. b
  | `Lazy_leveling -> ((l -. 1.0) /. b) +. (t /. (2.0 *. b))

let point_lookup_miss_cost d w =
  Array.fold_left (fun acc (runs, fpr) -> acc +. (float_of_int runs *. fpr)) 0.0 (run_fprs d w)

let point_lookup_hit_cost d w =
  (* The hit itself costs one page; runs probed before reaching it cost
     their false-positive rate. Model the hit in the last level (worst
     case): all shallower runs contribute. *)
  let fprs = run_fprs d w in
  let above =
    Array.to_list fprs |> List.rev
    |> function
    | [] -> 0.0
    | _last :: shallower ->
      List.fold_left (fun acc (runs, fpr) -> acc +. (float_of_int runs *. fpr)) 0.0 shallower
  in
  1.0 +. above

let total_runs d w = Array.fold_left ( + ) 0 (runs_per_level d w)

let short_scan_cost d w = float_of_int (total_runs d w)

let long_scan_cost d w =
  let t = float_of_int (max 2 d.size_ratio) in
  match d.layout with
  | `Leveling -> w.long_scan_pages *. (1.0 +. (1.0 /. t))
  | `Tiering -> w.long_scan_pages *. t
  | `Lazy_leveling -> w.long_scan_pages *. (1.0 +. (1.0 /. t)) (* last level dominates *)

let space_amp d _w =
  let t = float_of_int (max 2 d.size_ratio) in
  match d.layout with
  | `Leveling -> 1.0 /. t
  | `Tiering -> t -. 1.0
  | `Lazy_leveling -> 1.0 /. t (* dominated by the leveled last level *)

let mixed_cost d w =
  (w.f_insert *. write_cost d w)
  +. (w.f_point_lookup_hit *. point_lookup_hit_cost d w)
  +. (w.f_point_lookup_miss *. point_lookup_miss_cost d w)
  +. (w.f_short_scan *. short_scan_cost d w)
  +. (w.f_long_scan *. long_scan_cost d w)

let describe_design d =
  Printf.sprintf "%s T=%d buf=%dKiB bloom=%.1fb/key"
    (match d.layout with
    | `Leveling -> "leveling"
    | `Tiering -> "tiering"
    | `Lazy_leveling -> "lazy-leveling")
    d.size_ratio (d.buffer_bytes / 1024) d.filter_bits_per_key

let run_caps_cost ~caps ~size_ratio ~buffer_bytes ~filter_bits_per_key w =
  let t = float_of_int (max 2 size_ratio) in
  let b = float_of_int (entries_per_page w) in
  let l = Array.length caps in
  let buffer_entries = max 1 (buffer_bytes / max 1 w.entry_bytes) in
  (* Write: entering level i, an entry is rewritten ~T/K_i times before
     the level spills (merging K_i runs costs one pass; a leveled level
     (K=1) re-merges arriving data ~T/2 times). *)
  let write =
    Array.fold_left
      (fun acc k ->
        let k = float_of_int (max 1 k) in
        acc +. (Float.max 1.0 (t /. (2.0 *. k)) /. b))
      0.0 caps
  in
  (* Lookup: Monkey allocation over levels, K_i runs each. *)
  let level_entries =
    Array.init l (fun i ->
        let cap =
          float_of_int buffer_entries *. Float.pow t (float_of_int (i + 1))
        in
        int_of_float (Float.min cap (float_of_int w.entries)))
  in
  let bits =
    Monkey.allocate
      ~total_bits:(filter_bits_per_key *. float_of_int w.entries)
      ~level_entries
  in
  let lookup = ref 0.0 in
  Array.iteri
    (fun i b -> lookup := !lookup +. (float_of_int (max 1 caps.(i)) *. Monkey.fpr_of_bits b))
    bits;
  (write, !lookup)
