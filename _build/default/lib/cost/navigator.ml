type candidate = { design : Model.design; cost : float }

let default_size_ratios = [ 2; 4; 6; 8; 10; 12; 16 ]
let default_layouts = [ `Leveling; `Tiering; `Lazy_leveling ]
let default_splits = [ 0.05; 0.1; 0.25; 0.5; 0.75; 0.9 ]

let enumerate ?(size_ratios = default_size_ratios) ?(layouts = default_layouts)
    ?(memory_splits = default_splits) ~total_memory_bits (w : Model.workload) =
  let candidates = ref [] in
  List.iter
    (fun layout ->
      List.iter
        (fun t ->
          List.iter
            (fun split ->
              let buffer_bits = total_memory_bits *. split in
              let filter_bits = total_memory_bits -. buffer_bits in
              let design =
                {
                  Model.layout;
                  size_ratio = t;
                  buffer_bytes = max 4096 (int_of_float (buffer_bits /. 8.0));
                  filter_bits_per_key = filter_bits /. float_of_int (max 1 w.Model.entries);
                }
              in
              candidates := { design; cost = Model.mixed_cost design w } :: !candidates)
            memory_splits)
        size_ratios)
    layouts;
  List.sort (fun a b -> Float.compare a.cost b.cost) !candidates

let best ?size_ratios ?layouts ?memory_splits ~total_memory_bits w =
  match enumerate ?size_ratios ?layouts ?memory_splits ~total_memory_bits w with
  | [] -> invalid_arg "Navigator.best: empty grid"
  | c :: _ -> c

let pareto_frontier candidates ~write_cost ~read_cost =
  let dominated a b =
    (* b dominates a *)
    write_cost b.design <= write_cost a.design
    && read_cost b.design <= read_cost a.design
    && (write_cost b.design < write_cost a.design || read_cost b.design < read_cost a.design)
  in
  List.filter (fun c -> not (List.exists (fun o -> dominated c o) candidates)) candidates
