(** Navigating the design space (§2.3.1): given a workload, search the
    (layout × size ratio × memory split) grid for the minimum-cost
    design — the mechanical version of "how to tune an LSM-tree". *)

type candidate = { design : Model.design; cost : float }

val default_size_ratios : int list
(** [2; 4; 6; 8; 10; 12; 16]. *)

val enumerate :
  ?size_ratios:int list ->
  ?layouts:[ `Leveling | `Tiering | `Lazy_leveling ] list ->
  ?memory_splits:float list ->
  total_memory_bits:float ->
  Model.workload ->
  candidate list
(** All candidates, cheapest first. [memory_splits] are the fractions of
    [total_memory_bits] given to the buffer (the rest goes to filters) —
    the buffer/filter co-tuning of §2.1.3/§2.3.1. *)

val best :
  ?size_ratios:int list ->
  ?layouts:[ `Leveling | `Tiering | `Lazy_leveling ] list ->
  ?memory_splits:float list ->
  total_memory_bits:float ->
  Model.workload ->
  candidate

val pareto_frontier : candidate list -> write_cost:(Model.design -> float) ->
  read_cost:(Model.design -> float) -> candidate list
(** Subset not dominated on (write, read) — the tradeoff curve the
    tutorial draws (E9/E14 render it). *)
