lib/cost/robust.ml: Array Float List Model Navigator
