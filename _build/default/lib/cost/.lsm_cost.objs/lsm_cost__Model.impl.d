lib/cost/model.ml: Array Float List Lsm_filter Printf
