lib/cost/model.mli:
