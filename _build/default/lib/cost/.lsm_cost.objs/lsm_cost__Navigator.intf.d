lib/cost/navigator.mli: Model
