lib/cost/robust.mli: Model Navigator
