lib/cost/navigator.ml: Float List Model
