(** Robust tuning under workload uncertainty (§2.3.2, after Endure,
    Huynh et al.).

    Instead of tuning for the single expected workload ŵ, solve the
    min-max problem: pick the design minimizing the {e worst} cost over a
    neighborhood of workloads within L1 distance ρ of ŵ on the
    operation-mix simplex. For small ρ the robust choice coincides with
    the nominal one; as ρ grows, it backs away from designs whose
    advantage is brittle (e.g. extreme tiering when reads might appear). *)

val neighborhood : rho:float -> Model.workload -> Model.workload list
(** Deterministic sample of mix perturbations with ‖Δ‖₁ ≤ ρ (corner
    shifts between every pair of mix components, plus ŵ itself).
    Fractions stay non-negative and renormalized. *)

val worst_case_cost : rho:float -> Model.design -> Model.workload -> float
(** Max cost over the neighborhood. *)

val robust_best :
  ?size_ratios:int list ->
  ?memory_splits:float list ->
  rho:float ->
  total_memory_bits:float ->
  Model.workload ->
  Navigator.candidate
(** Argmin over the same grid as {!Navigator.best}, but of the worst-case
    cost; the reported [cost] is the worst-case one. *)
