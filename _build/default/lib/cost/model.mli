(** The analytical I/O cost model of the LSM design space (§2.3).

    Follows the worst-case models of Monkey (Dayan et al., SIGMOD '17) and
    Dostoevsky (Dayan & Idreos, SIGMOD '18), generalized to per-level run
    caps so that leveling, tiering, lazy leveling, and the whole
    continuum between them (§2.3.1, LSM-Bush direction) are all points of
    one function.

    Units: costs are expected {e device page I/Os per operation};
    memory in bits; sizes in bytes. *)

type design = {
  layout : [ `Leveling | `Tiering | `Lazy_leveling ];
  size_ratio : int;  (** T >= 2 *)
  buffer_bytes : int;
  filter_bits_per_key : float;  (** 0 = no filters *)
}

type workload = {
  entries : int;  (** N: live entries in the tree *)
  entry_bytes : int;  (** average key+value size *)
  page_bytes : int;
  (* Operation mix — fractions of the total, should sum to 1: *)
  f_insert : float;
  f_point_lookup_hit : float;  (** lookups that find their key *)
  f_point_lookup_miss : float;  (** zero-result lookups *)
  f_short_scan : float;  (** selectivity ≲ 1 page per run *)
  f_long_scan : float;
  long_scan_pages : float;  (** pages of result data for a long scan *)
}

val mix_total : workload -> float

val levels : design -> workload -> int
(** L = ceil(log_T (N·E / buffer)); at least 1. *)

val runs_per_level : design -> workload -> int array
(** Run cap per level 1..L under the layout: all 1 (leveling), all T-1
    (tiering), or T-1 with a leveled last level (lazy leveling). *)

(** {1 Per-operation costs} *)

val write_cost : design -> workload -> float
(** Amortized I/Os per insert: each entry is rewritten once per level
    (tiered) or up to T times per level (leveled), divided by entries per
    page: [Σ_l merges(l) / (B)] with [B = page/entry]. *)

val point_lookup_miss_cost : design -> workload -> float
(** Expected I/Os for a zero-result lookup: [Σ_runs fpr(run)] with
    Monkey-style per-level filter allocation of the same total budget. *)

val point_lookup_hit_cost : design -> workload -> float
(** [1 + point_lookup_miss_cost] minus the last level's saved probe —
    modeled as 1 + Σ fprs of the runs above the hit. *)

val short_scan_cost : design -> workload -> float
(** One page per sorted run (fence pointers make each run one seek). *)

val long_scan_cost : design -> workload -> float
(** [long_scan_pages] dominated by the last level; shallower levels add
    a [1/T] fraction each (leveling) or [T] runs each (tiering). *)

val space_amp : design -> workload -> float
(** Worst-case space amplification: ~1/T redundant fraction for
    leveling, ~T-1 duplicated runs for tiering (§2.2.2). *)

val mixed_cost : design -> workload -> float
(** Expected I/Os per operation for the workload mix. *)

val describe_design : design -> string

(** {1 Generalized continuum} *)

val run_caps_cost :
  caps:int array -> size_ratio:int -> buffer_bytes:int -> filter_bits_per_key:float ->
  workload -> float * float
(** [(write_cost, zero-result lookup cost)] for an arbitrary per-level
    run-cap vector (E14's x-axis). A cap of [k] at level [l] means the
    level accumulates [k] runs before merging into [l+1]. *)
