let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

(* Move [delta] of mix mass from component [i] to component [j]. *)
let shift (w : Model.workload) i j delta =
  let arr =
    [|
      w.Model.f_insert;
      w.f_point_lookup_hit;
      w.f_point_lookup_miss;
      w.f_short_scan;
      w.f_long_scan;
    |]
  in
  let d = Float.min delta arr.(i) in
  arr.(i) <- clamp01 (arr.(i) -. d);
  arr.(j) <- clamp01 (arr.(j) +. d);
  {
    w with
    Model.f_insert = arr.(0);
    f_point_lookup_hit = arr.(1);
    f_point_lookup_miss = arr.(2);
    f_short_scan = arr.(3);
    f_long_scan = arr.(4);
  }

let neighborhood ~rho w =
  if rho <= 0.0 then [ w ]
  else begin
    let out = ref [ w ] in
    for i = 0 to 4 do
      for j = 0 to 4 do
        if i <> j then begin
          out := shift w i j (rho /. 2.0) :: !out;
          out := shift w i j (rho /. 4.0) :: !out
        end
      done
    done;
    !out
  end

let worst_case_cost ~rho design w =
  List.fold_left
    (fun acc w' -> Float.max acc (Model.mixed_cost design w'))
    0.0 (neighborhood ~rho w)

let robust_best ?size_ratios ?memory_splits ~rho ~total_memory_bits w =
  let candidates = Navigator.enumerate ?size_ratios ?memory_splits ~total_memory_bits w in
  match candidates with
  | [] -> invalid_arg "Robust.robust_best: empty grid"
  | first :: rest ->
    let score c = worst_case_cost ~rho c.Navigator.design w in
    let best, best_score =
      List.fold_left
        (fun (bc, bs) c ->
          let s = score c in
          if s < bs then (c, s) else (bc, bs))
        (first, score first) rest
    in
    { best with Navigator.cost = best_score }
