lib/memtable/vector_buffer.ml: Array Lsm_record Lsm_util
