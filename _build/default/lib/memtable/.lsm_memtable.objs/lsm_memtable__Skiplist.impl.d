lib/memtable/skiplist.ml: Array Lsm_record Lsm_util
