lib/memtable/hash_linkedlist.ml: Array Int64 List Lsm_record Lsm_util String
