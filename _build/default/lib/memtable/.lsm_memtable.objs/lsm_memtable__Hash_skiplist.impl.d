lib/memtable/hash_skiplist.ml: Array Int64 Lsm_record Lsm_util Skiplist String
