lib/memtable/memtable.ml: Hash_linkedlist Hash_skiplist Lsm_record Lsm_util Skiplist Vector_buffer
