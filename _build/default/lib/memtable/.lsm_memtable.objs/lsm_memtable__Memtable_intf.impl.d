lib/memtable/memtable_intf.ml: Lsm_record Lsm_util
