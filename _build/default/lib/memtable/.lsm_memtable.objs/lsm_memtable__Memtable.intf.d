lib/memtable/memtable.mli: Lsm_record Lsm_util
