(** Unified front-end over the four buffer implementations of §2.2.1.

    The engine is configured with a {!kind}; everything downstream goes
    through this module, so switching the buffer implementation is a
    one-knob change, as in RocksDB. *)

type kind =
  | Skiplist  (** the default: balanced insert/lookup/scan *)
  | Vector  (** fastest write-only ingestion; sorts on read/flush *)
  | Hash_skiplist of { buckets : int; prefix_len : int }
  | Hash_linkedlist of { buckets : int; prefix_len : int }

val default_hash_skiplist : kind
val default_hash_linkedlist : kind

val kind_name : kind -> string
val all_kinds : kind list
(** One representative of each implementation, for tests and benchmarks. *)

type t

val create : ?kind:kind -> cmp:Lsm_util.Comparator.t -> unit -> t
(** [kind] defaults to {!Skiplist}. *)

val kind : t -> kind
val add : t -> Lsm_record.Entry.t -> unit
val find : t -> ?max_seqno:int -> string -> Lsm_record.Entry.t option
val count : t -> int
val footprint : t -> int
val iterator : t -> Lsm_record.Iter.t

val range_tombstones : t -> Lsm_record.Entry.t list
(** Range-delete entries buffered here, newest first. [add] routes
    [Range_delete] entries into this side list {e and} the main structure
    (so they flush with everything else); [find] never returns them. *)
