module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Comparator = Lsm_util.Comparator

type kind =
  | Skiplist
  | Vector
  | Hash_skiplist of { buckets : int; prefix_len : int }
  | Hash_linkedlist of { buckets : int; prefix_len : int }

let default_hash_skiplist =
  Hash_skiplist { buckets = Hash_skiplist.default_buckets; prefix_len = Hash_skiplist.default_prefix }

let default_hash_linkedlist =
  Hash_linkedlist
    { buckets = Hash_linkedlist.default_buckets; prefix_len = Hash_linkedlist.default_prefix }

let kind_name = function
  | Skiplist -> Skiplist.implementation_name
  | Vector -> Vector_buffer.implementation_name
  | Hash_skiplist _ -> Hash_skiplist.implementation_name
  | Hash_linkedlist _ -> Hash_linkedlist.implementation_name

let all_kinds = [ Skiplist; Vector; default_hash_skiplist; default_hash_linkedlist ]

type impl =
  | I_skiplist of Skiplist.t
  | I_vector of Vector_buffer.t
  | I_hash_skiplist of Hash_skiplist.t
  | I_hash_linkedlist of Hash_linkedlist.t

type t = { k : kind; impl : impl; mutable range_dels : Entry.t list }

let create ?(kind = Skiplist) ~cmp () =
  let impl =
    match kind with
    | Skiplist -> I_skiplist (Skiplist.create ~cmp ())
    | Vector -> I_vector (Vector_buffer.create ~cmp ())
    | Hash_skiplist { buckets; prefix_len } ->
      I_hash_skiplist (Hash_skiplist.create_sized ~cmp ~buckets ~prefix_len ())
    | Hash_linkedlist { buckets; prefix_len } ->
      I_hash_linkedlist (Hash_linkedlist.create_sized ~cmp ~buckets ~prefix_len ())
  in
  { k = kind; impl; range_dels = [] }

let kind t = t.k

let add t e =
  if e.Entry.kind = Entry.Range_delete then t.range_dels <- e :: t.range_dels;
  match t.impl with
  | I_skiplist m -> Skiplist.add m e
  | I_vector m -> Vector_buffer.add m e
  | I_hash_skiplist m -> Hash_skiplist.add m e
  | I_hash_linkedlist m -> Hash_linkedlist.add m e

let find t ?max_seqno key =
  match t.impl with
  | I_skiplist m -> Skiplist.find m ?max_seqno key
  | I_vector m -> Vector_buffer.find m ?max_seqno key
  | I_hash_skiplist m -> Hash_skiplist.find m ?max_seqno key
  | I_hash_linkedlist m -> Hash_linkedlist.find m ?max_seqno key

let count t =
  match t.impl with
  | I_skiplist m -> Skiplist.count m
  | I_vector m -> Vector_buffer.count m
  | I_hash_skiplist m -> Hash_skiplist.count m
  | I_hash_linkedlist m -> Hash_linkedlist.count m

let footprint t =
  match t.impl with
  | I_skiplist m -> Skiplist.footprint m
  | I_vector m -> Vector_buffer.footprint m
  | I_hash_skiplist m -> Hash_skiplist.footprint m
  | I_hash_linkedlist m -> Hash_linkedlist.footprint m

let iterator t =
  match t.impl with
  | I_skiplist m -> Skiplist.iterator m
  | I_vector m -> Vector_buffer.iterator m
  | I_hash_skiplist m -> Hash_skiplist.iterator m
  | I_hash_linkedlist m -> Hash_linkedlist.iterator m

let range_tombstones t = t.range_dels
