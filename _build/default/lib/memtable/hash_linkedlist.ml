(** Hash-linkedlist memtable — RocksDB's cheapest hash buffer (§2.2.1).

    Buckets hold unsorted singly-linked lists with the newest entry at the
    head. Insert is O(1); a point lookup scans one bucket front-to-back
    (the first version with a visible seqno is the newest visible one,
    because insertion order follows seqno order); sorted iteration pays a
    full collect-and-sort like the hash-skiplist. Best for tiny buffers
    with strong key locality. *)

module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Comparator = Lsm_util.Comparator
module Hashing = Lsm_util.Hashing

let implementation_name = "hash-linkedlist"
let default_buckets = 4096
let default_prefix = 8

type t = {
  cmp : Comparator.t;
  buckets : Entry.t list array;
  prefix_len : int;
  mutable count : int;
  mutable footprint : int;
}

let create_sized ~cmp ~buckets ~prefix_len () =
  { cmp; buckets = Array.make buckets []; prefix_len; count = 0; footprint = 0 }

let create ~cmp () =
  create_sized ~cmp ~buckets:default_buckets ~prefix_len:default_prefix ()

let prefix t key =
  if String.length key <= t.prefix_len then key else String.sub key 0 t.prefix_len

let index_of t key =
  let h = Hashing.string64 (prefix t key) in
  Int64.to_int h land max_int mod Array.length t.buckets

let add t e =
  let i = index_of t e.Entry.key in
  t.buckets.(i) <- e :: t.buckets.(i);
  t.count <- t.count + 1;
  t.footprint <- t.footprint + Entry.footprint e

let find t ?(max_seqno = max_int) key =
  (* Buckets are unsorted (writers may batch out of seqno order), so take
     the visible version with the highest seqno among all matches. *)
  let best = ref None in
  List.iter
    (fun e ->
      if
        t.cmp.compare e.Entry.key key = 0
        && e.Entry.seqno <= max_seqno
        && e.Entry.kind <> Entry.Range_delete
        && match !best with Some b -> e.Entry.seqno > b.Entry.seqno | None -> true
      then best := Some e)
    t.buckets.(index_of t key);
  !best

let count t = t.count
let footprint t = t.footprint

let iterator t =
  let all = Array.make t.count (Entry.put ~key:"" ~seqno:0 "") in
  let i = ref 0 in
  Array.iter
    (fun bucket ->
      List.iter
        (fun e ->
          all.(!i) <- e;
          incr i)
        bucket)
    t.buckets;
  Array.sort (Entry.compare t.cmp) all;
  Iter.of_sorted_array t.cmp all
