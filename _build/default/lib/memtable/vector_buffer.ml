(** Unsorted append vector memtable — RocksDB's "vector" buffer (§2.2.1).

    O(1) amortized insert: the fastest possible ingestion path for
    write-only phases (bulk loading), at the price of sorting on the first
    read or at flush. Interleaved reads each pay the (amortized) sort,
    which is why the paper notes its performance "degrades in presence of
    interleaved reads". *)

module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Comparator = Lsm_util.Comparator

let implementation_name = "vector"

type t = {
  cmp : Comparator.t;
  mutable data : Entry.t array;
  mutable len : int;
  mutable sorted : bool;
  mutable footprint : int;
}

let dummy = Entry.put ~key:"" ~seqno:0 ""

let create ~cmp () =
  { cmp; data = Array.make 64 dummy; len = 0; sorted = true; footprint = 0 }

let add t e =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- e;
  t.len <- t.len + 1;
  t.sorted <- false;
  t.footprint <- t.footprint + Entry.footprint e

let ensure_sorted t =
  if not t.sorted then begin
    let sub = Array.sub t.data 0 t.len in
    Array.sort (Entry.compare t.cmp) sub;
    Array.blit sub 0 t.data 0 t.len;
    t.sorted <- true
  end

(* First index with user key >= target. *)
let lower_bound t target =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cmp.compare t.data.(mid).Entry.key target < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let find t ?(max_seqno = max_int) key =
  ensure_sorted t;
  let rec walk i =
    if i >= t.len then None
    else
      let e = t.data.(i) in
      if t.cmp.compare e.Entry.key key <> 0 then None
      else if e.Entry.seqno <= max_seqno && e.Entry.kind <> Entry.Range_delete then Some e
      else walk (i + 1)
  in
  walk (lower_bound t key)

let count t = t.len
let footprint t = t.footprint

let iterator t =
  ensure_sorted t;
  let pos = ref t.len in
  {
    Iter.valid = (fun () -> !pos < t.len);
    entry = (fun () -> t.data.(!pos));
    next = (fun () -> if !pos < t.len then incr pos);
    seek =
      (fun target ->
        ensure_sorted t;
        pos := lower_bound t target);
    seek_to_first =
      (fun () ->
        ensure_sorted t;
        pos := 0);
  }
