(** Hash-skiplist memtable — RocksDB's prefix-bucketed buffer (§2.2.1).

    Keys are bucketed by a hash of their fixed-length prefix; each bucket
    is a small skiplist. Point lookups touch one bucket (near O(1) for
    short buckets); a full sorted iteration must merge all buckets, so
    flushes and scans pay an O(n log n) collect-and-sort. *)

module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Comparator = Lsm_util.Comparator
module Hashing = Lsm_util.Hashing

let implementation_name = "hash-skiplist"
let default_buckets = 1024
let default_prefix = 8

type t = {
  cmp : Comparator.t;
  buckets : Skiplist.t array;
  prefix_len : int;
  mutable count : int;
  mutable footprint : int;
}

let create_sized ~cmp ~buckets ~prefix_len () =
  {
    cmp;
    buckets = Array.init buckets (fun _ -> Skiplist.create ~cmp ());
    prefix_len;
    count = 0;
    footprint = 0;
  }

let create ~cmp () =
  create_sized ~cmp ~buckets:default_buckets ~prefix_len:default_prefix ()

let prefix t key =
  if String.length key <= t.prefix_len then key else String.sub key 0 t.prefix_len

let bucket_of t key =
  let h = Hashing.string64 (prefix t key) in
  t.buckets.(Int64.to_int h land max_int mod Array.length t.buckets)

let add t e =
  Skiplist.add (bucket_of t e.Entry.key) e;
  t.count <- t.count + 1;
  t.footprint <- t.footprint + Entry.footprint e

let find t ?max_seqno key = Skiplist.find (bucket_of t key) ?max_seqno key

let count t = t.count
let footprint t = t.footprint

let iterator t =
  let all = Array.make t.count (Entry.put ~key:"" ~seqno:0 "") in
  let i = ref 0 in
  Array.iter
    (fun b ->
      let it = Skiplist.iterator b in
      it.Iter.seek_to_first ();
      while it.Iter.valid () do
        all.(!i) <- it.Iter.entry ();
        incr i;
        it.Iter.next ()
      done)
    t.buckets;
  Array.sort (Entry.compare t.cmp) all;
  Iter.of_sorted_array t.cmp all
