(** Drives a {!Spec.t} against a {!Kv_store.t} and reports the metrics the
    experiments tabulate: throughput, write amplification, per-phase I/O,
    and space use. Deterministic for a given (spec, store) pair. *)

type result = {
  spec_name : string;
  store_name : string;
  preload_ops : int;
  measured_ops : int;
  elapsed_cpu_s : float;  (** CPU seconds of the measured phase *)
  ops_per_sec : float;
  user_bytes : int;
  device_bytes_written : int;
  device_bytes_read : int;
  write_amplification : float;
  space_bytes : int;
  reads_performed : int;
  reads_found : int;
}

val keyspace_key : Spec.key_encoding -> int -> string
(** The canonical key for index [i] under an encoding (exposed so
    experiments can issue targeted lookups). *)

val preload : Kv_store.t -> Spec.t -> unit
(** Load phase only: inserts keys [0 .. preload-1] (shuffled), then
    flushes. *)

val run : Kv_store.t -> Spec.t -> result
(** Preload, then execute the measured operation phase. *)

val run_measured_only : Kv_store.t -> Spec.t -> result
(** Execute only the measured phase (caller already preloaded). *)

val pp_result : Format.formatter -> result -> unit
val header : string
val row : result -> string
(** Fixed-width table rendering used by the bench harness. *)
