type key_distribution =
  | Uniform
  | Zipfian of { theta : float }
  | Latest of { theta : float }
  | Sequential

type key_encoding = Ycsb_style | Binary8

type op =
  | Op_insert
  | Op_update
  | Op_read
  | Op_scan of { length : int }
  | Op_delete
  | Op_rmw

type mix = {
  insert : float;
  update : float;
  read : float;
  scan : float;
  scan_length : int;
  delete : float;
  rmw : float;
}

type t = {
  name : string;
  preload : int;
  operations : int;
  mix : mix;
  distribution : key_distribution;
  encoding : key_encoding;
  value_size : int;
  seed : int;
}

let mix_sum m = m.insert +. m.update +. m.read +. m.scan +. m.delete +. m.rmw

let validate t =
  if abs_float (mix_sum t.mix -. 1.0) > 0.01 then
    invalid_arg (Printf.sprintf "Spec %s: mix sums to %.3f" t.name (mix_sum t.mix));
  if t.preload < 0 || t.operations < 0 then invalid_arg "Spec: negative counts";
  if t.value_size < 0 then invalid_arg "Spec: negative value size"

let no_ops =
  { insert = 0.; update = 0.; read = 0.; scan = 0.; scan_length = 100; delete = 0.; rmw = 0. }

let base name =
  {
    name;
    preload = 10_000;
    operations = 10_000;
    mix = no_ops;
    distribution = Zipfian { theta = 0.99 };
    encoding = Ycsb_style;
    value_size = 100;
    seed = 0x9c5b;
  }

let ycsb_a ?(records = 10_000) ?(operations = 10_000) () =
  {
    (base "ycsb-a") with
    preload = records;
    operations;
    mix = { no_ops with read = 0.5; update = 0.5 };
  }

let ycsb_b ?(records = 10_000) ?(operations = 10_000) () =
  {
    (base "ycsb-b") with
    preload = records;
    operations;
    mix = { no_ops with read = 0.95; update = 0.05 };
  }

let ycsb_c ?(records = 10_000) ?(operations = 10_000) () =
  { (base "ycsb-c") with preload = records; operations; mix = { no_ops with read = 1.0 } }

let ycsb_d ?(records = 10_000) ?(operations = 10_000) () =
  {
    (base "ycsb-d") with
    preload = records;
    operations;
    mix = { no_ops with read = 0.95; insert = 0.05 };
    distribution = Latest { theta = 0.99 };
  }

let ycsb_e ?(records = 10_000) ?(operations = 2_000) () =
  {
    (base "ycsb-e") with
    preload = records;
    operations;
    mix = { no_ops with scan = 0.95; insert = 0.05; scan_length = 50 };
  }

let ycsb_f ?(records = 10_000) ?(operations = 10_000) () =
  {
    (base "ycsb-f") with
    preload = records;
    operations;
    mix = { no_ops with read = 0.5; rmw = 0.5 };
  }

let all_ycsb =
  [
    ("A", ycsb_a ());
    ("B", ycsb_b ());
    ("C", ycsb_c ());
    ("D", ycsb_d ());
    ("E", ycsb_e ());
    ("F", ycsb_f ());
  ]

let write_only ?(records = 50_000) () =
  {
    (base "write-only") with
    preload = 0;
    operations = records;
    mix = { no_ops with insert = 1.0 };
    distribution = Uniform;
  }

let read_heavy ?(records = 10_000) ?(operations = 20_000) () =
  {
    (base "read-heavy") with
    preload = records;
    operations;
    mix = { no_ops with read = 0.9; update = 0.1 };
  }

let delete_heavy ?(records = 10_000) ?(operations = 20_000) () =
  {
    (base "delete-heavy") with
    preload = records;
    operations;
    mix = { no_ops with update = 0.5; delete = 0.25; read = 0.25 };
  }

let mixed ?(records = 10_000) ?(operations = 20_000) () =
  {
    (base "mixed") with
    preload = records;
    operations;
    mix = { no_ops with insert = 0.25; update = 0.25; read = 0.4; scan = 0.1; scan_length = 20 };
  }

let dist_name = function
  | Uniform -> "uniform"
  | Zipfian { theta } -> Printf.sprintf "zipf(%.2f)" theta
  | Latest { theta } -> Printf.sprintf "latest(%.2f)" theta
  | Sequential -> "sequential"

let describe t =
  Printf.sprintf "%s: preload=%d ops=%d dist=%s vsize=%d" t.name t.preload t.operations
    (dist_name t.distribution) t.value_size
