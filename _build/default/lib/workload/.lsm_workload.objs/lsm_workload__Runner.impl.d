lib/workload/runner.ml: Array Bytes Format Fun Int64 Kv_store Lsm_storage Lsm_util Printf Spec Sys
