lib/workload/runner.mli: Format Kv_store Spec
