lib/workload/kv_store.mli: Lsm_core Lsm_storage
