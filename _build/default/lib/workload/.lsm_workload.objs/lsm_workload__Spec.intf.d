lib/workload/spec.mli:
