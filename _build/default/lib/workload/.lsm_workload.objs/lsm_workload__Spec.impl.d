lib/workload/spec.ml: Printf
