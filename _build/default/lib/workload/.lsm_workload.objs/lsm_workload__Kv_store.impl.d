lib/workload/kv_store.ml: Lsm_core Lsm_storage Option
