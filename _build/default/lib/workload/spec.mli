(** Workload specifications: key distributions, operation mixes, and the
    YCSB presets the evaluation uses. All generation is deterministic
    from a seed. *)

type key_distribution =
  | Uniform
  | Zipfian of { theta : float }  (** scrambled, YCSB-style *)
  | Latest of { theta : float }
      (** skewed toward recently inserted keys (YCSB workload D) *)
  | Sequential

type key_encoding =
  | Ycsb_style  (** ["user" ^ zero-padded decimal] *)
  | Binary8  (** 8-byte big-endian integers — what Rosetta's projection
                 preserves order on; used by the range-filter experiment *)

type op =
  | Op_insert  (** put of a not-yet-used key *)
  | Op_update  (** put of an existing key *)
  | Op_read
  | Op_scan of { length : int }
  | Op_delete
  | Op_rmw  (** read-modify-write via the merge operator *)

type mix = {
  insert : float;
  update : float;
  read : float;
  scan : float;
  scan_length : int;
  delete : float;
  rmw : float;
}
(** Fractions must sum to ~1. *)

type t = {
  name : string;
  preload : int;  (** keys loaded before the measured phase *)
  operations : int;
  mix : mix;
  distribution : key_distribution;
  encoding : key_encoding;
  value_size : int;
  seed : int;
}

val mix_sum : mix -> float
val validate : t -> unit

(** {1 YCSB core workloads} *)

val ycsb_a : ?records:int -> ?operations:int -> unit -> t
(** 50% reads / 50% updates, zipfian. *)

val ycsb_b : ?records:int -> ?operations:int -> unit -> t
(** 95% reads / 5% updates, zipfian. *)

val ycsb_c : ?records:int -> ?operations:int -> unit -> t
(** 100% reads, zipfian. *)

val ycsb_d : ?records:int -> ?operations:int -> unit -> t
(** 95% reads / 5% inserts, latest distribution. *)

val ycsb_e : ?records:int -> ?operations:int -> unit -> t
(** 95% short scans / 5% inserts. *)

val ycsb_f : ?records:int -> ?operations:int -> unit -> t
(** 50% reads / 50% read-modify-writes. *)

val all_ycsb : (string * t) list

(** {1 Study workloads} *)

val write_only : ?records:int -> unit -> t
val read_heavy : ?records:int -> ?operations:int -> unit -> t
val delete_heavy : ?records:int -> ?operations:int -> unit -> t
(** 25% deletes — the delete-intensive profile of [23]/Lethe. *)

val mixed : ?records:int -> ?operations:int -> unit -> t

val describe : t -> string
