module Codec = Lsm_util.Codec

type t = { prefixes : string array (* sorted, distinct *) }

let common_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let rec loop i = if i < n && a.[i] = b.[i] then loop (i + 1) else i in
  loop 0

let build ?(max_prefix = max_int) ?(suffix_len = 2) ~keys () =
  let sorted = List.sort_uniq String.compare keys in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let trunc i =
    let k = arr.(i) in
    let lcp_prev = if i = 0 then 0 else common_prefix_len arr.(i - 1) k in
    let lcp_next = if i = n - 1 then 0 else common_prefix_len k arr.(i + 1) in
    let keep =
      min (String.length k) (min max_prefix (1 + max lcp_prev lcp_next + suffix_len))
    in
    String.sub k 0 keep
  in
  let truncated = Array.init n trunc in
  (* Truncation can merge adjacent keys (same minimal prefix under
     max_prefix capping); dedupe while preserving order. *)
  let out = ref [] in
  Array.iter
    (fun p -> match !out with q :: _ when String.equal q p -> () | _ -> out := p :: !out)
    truncated;
  { prefixes = Array.of_list (List.rev !out) }

(* A stored prefix [p] denotes the key interval [p, p·0xff∞]. The interval
   reaches at-or-above [lo] iff [p >= lo] or [p] is a proper prefix of
   [lo]. Those two cases split cleanly: the first is a contiguous tail of
   the sorted array (binary search), the second is checked by membership
   of each proper prefix of [lo] (at most |lo| probes). *)

let lower_bound t target =
  let n = Array.length t.prefixes in
  let l = ref 0 and r = ref n in
  while !l < !r do
    let mid = (!l + !r) / 2 in
    if String.compare t.prefixes.(mid) target < 0 then l := mid + 1 else r := mid
  done;
  !l

let contains_exact t p =
  let i = lower_bound t p in
  i < Array.length t.prefixes && String.equal t.prefixes.(i) p

let has_proper_prefix_of t s =
  let rec loop len =
    len < String.length s && (contains_exact t (String.sub s 0 len) || loop (len + 1))
  in
  loop 1

let may_overlap t ~lo ~hi =
  if has_proper_prefix_of t lo then true
    (* that prefix's interval contains lo itself, and lo < hi *)
  else
    let i = lower_bound t lo in
    if i >= Array.length t.prefixes then false
    else
      match hi with
      | None -> true
      | Some hi -> String.compare t.prefixes.(i) hi < 0

let may_contain t key = contains_exact t key || has_proper_prefix_of t key

let stored_count t = Array.length t.prefixes

let bit_count t =
  8 * Array.fold_left (fun acc p -> acc + String.length p + 1) 0 t.prefixes

let encode t =
  let b = Buffer.create 1024 in
  Codec.put_varint b (Array.length t.prefixes);
  Array.iter (Codec.put_lp_string b) t.prefixes;
  Buffer.contents b

let decode s =
  let r = Codec.reader s in
  let n = Codec.get_varint r in
  { prefixes = Array.init n (fun _ -> Codec.get_lp_string r) }
