(** Xor filter (Graf & Lemire): a static approximate-membership structure
    with ~9.84 bits/key at a 0.39% false-positive rate — denser than a
    Bloom filter at comparable FPR, at the price of being build-once
    (§2.1.3 cites such structures as Bloom-filter replacements [18,27,45]).

    Ideal for LSM runs: files are immutable, so the key set is known at
    build time and never changes. *)

type t

val build : string list -> t
(** Peels the 3-hypergraph; retries with fresh seeds on the (rare)
    unpeelable graph. Duplicate keys are fine. *)

val mem : t -> string -> bool
(** No false negatives; ~0.4% false positives (8-bit fingerprints). *)

val bit_count : t -> int
val encode : t -> string
val decode : string -> t
