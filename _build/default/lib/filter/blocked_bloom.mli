(** Cache-line-blocked Bloom filter.

    All [k] probes for a key land in one 64-byte block, trading a slightly
    higher false-positive rate for a single cache miss per query — the
    CPU-cost-conscious filter design direction the paper cites (Ribbon,
    hash sharing [137]) responds to. Same interface as {!Bloom}. *)

type t

val create : bits_per_key:float -> expected:int -> t
val add : t -> string -> unit
val mem : t -> string -> bool
val bit_count : t -> int
val encode : t -> string
val decode : string -> t
