(** Monkey's optimal filter-memory allocation (Dayan et al., §2.1.3).

    Given the number of entries per level and a total memory budget for
    filters, Monkey chooses per-level false-positive rates that minimize
    the {e expected number of superfluous probes} for a point lookup,
    instead of giving every level the same bits-per-key.

    The optimum equalizes marginal benefit: the Lagrange condition gives
    [p_i ∝ n_i] (false-positive rate proportional to level entry count),
    clamped at [p_i = 1] for levels whose filter is not worth any memory —
    deep, huge levels get no filter at all, shallow levels get more bits
    than uniform. We solve for the multiplier numerically. *)

val allocate : total_bits:float -> level_entries:int array -> float array
(** [allocate ~total_bits ~level_entries] returns the bits-per-key for each
    level (0 where the level should carry no filter). The sum of
    [bits.(i) *. entries.(i)] is ≤ [total_bits] (within solver tolerance).
    Levels with zero entries get 0. *)

val uniform : total_bits:float -> level_entries:int array -> float array
(** The baseline: same bits-per-key everywhere (what E3 compares against). *)

val expected_probes : fprs:float array -> float
(** Expected superfluous run probes of a zero-result lookup: [Σ p_i]
    (one term per run; for leveling, one run per level). *)

val fpr_of_bits : float -> float
(** [0.6185 ^ bits_per_key], 1.0 at zero bits. *)

val bits_of_fpr : float -> float
(** Inverse of {!fpr_of_bits}: [ln p / ln 0.6185], 0 for p >= 1. *)
