(** Fixed-length prefix Bloom filter (RocksDB's prefix seek, §2.1.3).

    Stores the distinct [prefix_len]-byte prefixes of all keys in a Bloom
    filter. A range query whose endpoints share a full prefix is answered
    with one probe; ranges spanning prefix boundaries fall back to "maybe"
    — the behaviour that makes prefix filters suit {e long} range queries
    scoped to a common prefix, per §2.1.3. *)

type t

val build : prefix_len:int -> bits_per_key:float -> keys:string list -> t
val may_contain_prefix : t -> string -> bool
(** Probe one prefix (the argument is truncated/padded to [prefix_len]). *)

val may_overlap : t -> lo:string -> hi:string option -> bool
(** Conservative range-overlap test for [\[lo, hi)]; [None] = unbounded. *)

val prefix_len : t -> int
val bit_count : t -> int
val encode : t -> string
val decode : string -> t
