lib/filter/rosetta.ml: Array Bloom Buffer Bytes Char Int64 List Lsm_util String
