lib/filter/xor_filter.ml: Array Buffer Bytes Char Int64 List Lsm_util Queue String
