lib/filter/range_filter.mli:
