lib/filter/bloom.mli:
