lib/filter/cuckoo.ml: Array Buffer Int64 Lsm_util
