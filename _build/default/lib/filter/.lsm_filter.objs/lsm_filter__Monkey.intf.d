lib/filter/monkey.mli:
