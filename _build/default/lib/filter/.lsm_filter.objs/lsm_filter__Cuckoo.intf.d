lib/filter/cuckoo.mli:
