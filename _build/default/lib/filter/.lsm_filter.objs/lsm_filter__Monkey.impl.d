lib/filter/monkey.ml: Array Float
