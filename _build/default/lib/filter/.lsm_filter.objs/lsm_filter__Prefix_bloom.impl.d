lib/filter/prefix_bloom.ml: Bloom Buffer Bytes Char Hashtbl List Lsm_util String
