lib/filter/blocked_bloom.ml: Buffer Bytes Char Float Lsm_util
