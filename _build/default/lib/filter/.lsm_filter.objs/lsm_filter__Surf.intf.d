lib/filter/surf.mli:
