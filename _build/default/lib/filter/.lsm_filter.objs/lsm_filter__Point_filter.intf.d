lib/filter/point_filter.mli:
