lib/filter/xor_filter.mli:
