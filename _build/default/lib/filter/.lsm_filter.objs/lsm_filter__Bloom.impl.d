lib/filter/bloom.ml: Buffer Bytes Char Float Lsm_util
