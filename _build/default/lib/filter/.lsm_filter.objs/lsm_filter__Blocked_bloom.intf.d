lib/filter/blocked_bloom.mli:
