lib/filter/point_filter.ml: Blocked_bloom Bloom Buffer Cuckoo Lsm_util Printf String Xor_filter
