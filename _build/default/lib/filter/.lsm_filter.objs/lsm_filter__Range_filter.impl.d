lib/filter/range_filter.ml: Buffer Lsm_util Prefix_bloom Printf Rosetta String Surf
