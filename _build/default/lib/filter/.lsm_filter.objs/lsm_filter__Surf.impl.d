lib/filter/surf.ml: Array Buffer List Lsm_util String
