lib/filter/rosetta.mli:
