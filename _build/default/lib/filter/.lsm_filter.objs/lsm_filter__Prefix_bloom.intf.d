lib/filter/prefix_bloom.mli:
