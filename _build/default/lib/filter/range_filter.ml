module Codec = Lsm_util.Codec

type policy =
  | No_range_filter
  | Prefix of { prefix_len : int; bits_per_key : float }
  | Surf of { max_prefix : int; suffix_len : int }
  | Rosetta of { levels : int; bits_per_key : float }

let policy_name = function
  | No_range_filter -> "none"
  | Prefix _ -> "prefix-bloom"
  | Surf _ -> "surf"
  | Rosetta _ -> "rosetta"

type impl =
  | I_none
  | I_prefix of Prefix_bloom.t
  | I_surf of Surf.t
  | I_rosetta of Rosetta.t

type t = impl

let build policy ~keys =
  match policy with
  | No_range_filter -> I_none
  | Prefix { prefix_len; bits_per_key } ->
    I_prefix (Prefix_bloom.build ~prefix_len ~bits_per_key ~keys)
  | Surf { max_prefix; suffix_len } -> I_surf (Surf.build ~max_prefix ~suffix_len ~keys ())
  | Rosetta { levels; bits_per_key } -> I_rosetta (Rosetta.build ~levels ~bits_per_key ~keys ())

let may_overlap t ~lo ~hi =
  match t with
  | I_none -> true
  | I_prefix f -> Prefix_bloom.may_overlap f ~lo ~hi
  | I_surf f -> Surf.may_overlap f ~lo ~hi
  | I_rosetta f -> Rosetta.may_overlap f ~lo ~hi

let bit_count = function
  | I_none -> 0
  | I_prefix f -> Prefix_bloom.bit_count f
  | I_surf f -> Surf.bit_count f
  | I_rosetta f -> Rosetta.bit_count f

let encode t =
  let tag, body =
    match t with
    | I_none -> (0, "")
    | I_prefix f -> (1, Prefix_bloom.encode f)
    | I_surf f -> (2, Surf.encode f)
    | I_rosetta f -> (3, Rosetta.encode f)
  in
  let b = Buffer.create (String.length body + 2) in
  Codec.put_u8 b tag;
  Buffer.add_string b body;
  Buffer.contents b

let decode s =
  let r = Codec.reader s in
  let tag = Codec.get_u8 r in
  let body = Codec.get_raw r (Codec.remaining r) in
  match tag with
  | 0 -> I_none
  | 1 -> I_prefix (Prefix_bloom.decode body)
  | 2 -> I_surf (Surf.decode body)
  | 3 -> I_rosetta (Rosetta.decode body)
  | n -> raise (Codec.Corrupt (Printf.sprintf "unknown range-filter tag %d" n))
