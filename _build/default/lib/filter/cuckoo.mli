(** Cuckoo filter — the updatable filter behind Chucky (§2.1.3).

    Unlike a Bloom filter, fingerprints can be {e deleted}, which is what
    lets Chucky maintain one filter across compactions instead of
    rebuilding per run. Four slots per bucket, partial-key cuckoo
    relocation with a bounded kick chain. *)

type t

val create : ?fingerprint_bits:int -> expected:int -> unit -> t
(** [fingerprint_bits] defaults to 12 (≈0.1% FPR at 95% load). The table is
    sized to hold [expected] keys at ≤95% load. *)

val add : t -> string -> bool
(** [false] when the kick chain overflows (table effectively full); the
    caller should rebuild larger. No-op duplicates are still inserted
    (multiset semantics), as deletions require. *)

val mem : t -> string -> bool

val remove : t -> string -> bool
(** Deletes one matching fingerprint; [false] if none found. Only call for
    keys that were actually inserted (standard cuckoo-filter caveat). *)

val count : t -> int
val bit_count : t -> int
val encode : t -> string
val decode : string -> t
