module Codec = Lsm_util.Codec
module Hashing = Lsm_util.Hashing

let slots_per_bucket = 4
let max_kicks = 500

type t = {
  table : int array;  (** nbuckets * slots_per_bucket fingerprints; 0 = empty *)
  nbuckets : int;  (** power of two *)
  fp_bits : int;
  mutable count : int;
  kick_rng : Lsm_util.Rng.t;
}

let next_pow2 n =
  let rec loop p = if p >= n then p else loop (p * 2) in
  loop 1

let create ?(fingerprint_bits = 12) ~expected () =
  if fingerprint_bits < 4 || fingerprint_bits > 30 then
    invalid_arg "Cuckoo.create: fingerprint_bits out of range";
  let buckets_needed = (max 1 expected * 100 / 95 / slots_per_bucket) + 1 in
  let nbuckets = next_pow2 buckets_needed in
  {
    table = Array.make (nbuckets * slots_per_bucket) 0;
    nbuckets;
    fp_bits = fingerprint_bits;
    count = 0;
    kick_rng = Lsm_util.Rng.create 0xcafe;
  }

let index_of t key =
  let h = Hashing.string64 key in
  Int64.to_int h land (t.nbuckets - 1)

let alt_index t i fp =
  (* Partial-key cuckoo: alternate bucket derived from fingerprint only. *)
  let h = Hashing.splitmix64 (Int64.of_int fp) in
  (i lxor (Int64.to_int h land max_int)) land (t.nbuckets - 1)

let slot t bucket s = t.table.((bucket * slots_per_bucket) + s)
let set_slot t bucket s v = t.table.((bucket * slots_per_bucket) + s) <- v

let try_insert_at t bucket fp =
  let rec loop s =
    if s >= slots_per_bucket then false
    else if slot t bucket s = 0 then begin
      set_slot t bucket s fp;
      true
    end
    else loop (s + 1)
  in
  loop 0

let add t key =
  let fp = Hashing.fingerprint key ~bits:t.fp_bits in
  let i1 = index_of t key in
  let i2 = alt_index t i1 fp in
  if try_insert_at t i1 fp || try_insert_at t i2 fp then begin
    t.count <- t.count + 1;
    true
  end
  else begin
    (* Relocate: evict a random slot and push its fingerprint onward. *)
    let bucket = ref (if Lsm_util.Rng.bool t.kick_rng then i1 else i2) in
    let fp = ref fp in
    let rec kick n =
      if n >= max_kicks then false
      else begin
        let s = Lsm_util.Rng.int t.kick_rng slots_per_bucket in
        let evicted = slot t !bucket s in
        set_slot t !bucket s !fp;
        fp := evicted;
        bucket := alt_index t !bucket !fp;
        if try_insert_at t !bucket !fp then true else kick (n + 1)
      end
    in
    if kick 0 then begin
      t.count <- t.count + 1;
      true
    end
    else false
  end

let bucket_has t bucket fp =
  let rec loop s = s < slots_per_bucket && (slot t bucket s = fp || loop (s + 1)) in
  loop 0

let mem t key =
  let fp = Hashing.fingerprint key ~bits:t.fp_bits in
  let i1 = index_of t key in
  bucket_has t i1 fp || bucket_has t (alt_index t i1 fp) fp

let remove_from t bucket fp =
  let rec loop s =
    if s >= slots_per_bucket then false
    else if slot t bucket s = fp then begin
      set_slot t bucket s 0;
      true
    end
    else loop (s + 1)
  in
  loop 0

let remove t key =
  let fp = Hashing.fingerprint key ~bits:t.fp_bits in
  let i1 = index_of t key in
  let removed = remove_from t i1 fp || remove_from t (alt_index t i1 fp) fp in
  if removed then t.count <- t.count - 1;
  removed

let count t = t.count
let bit_count t = Array.length t.table * t.fp_bits

let encode t =
  let b = Buffer.create (Array.length t.table * 2 + 16) in
  Codec.put_varint b t.nbuckets;
  Codec.put_varint b t.fp_bits;
  Codec.put_varint b t.count;
  Array.iter (fun fp -> Codec.put_varint b fp) t.table;
  Buffer.contents b

let decode s =
  let r = Codec.reader s in
  let nbuckets = Codec.get_varint r in
  let fp_bits = Codec.get_varint r in
  let count = Codec.get_varint r in
  let table = Array.init (nbuckets * slots_per_bucket) (fun _ -> Codec.get_varint r) in
  { table; nbuckets; fp_bits; count; kick_rng = Lsm_util.Rng.create 0xcafe }
