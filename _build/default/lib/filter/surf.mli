(** SuRF-style succinct range filter (§2.1.3).

    Stores each key truncated to its {e minimal distinguishing prefix}
    (the shortest prefix that separates it from both sorted neighbours) —
    semantically the leaves of SuRF-Base's truncated trie, kept here as a
    sorted prefix array. Because variable-length prefixes follow key
    density, false positives stay low even for long range queries, the
    property §2.1.3 credits SuRF with. No false negatives. *)

type t

val build : ?max_prefix:int -> ?suffix_len:int -> keys:string list -> unit -> t
(** [keys] need not be sorted or distinct. [max_prefix] (default: no limit)
    caps stored prefix length, trading memory for false positives.
    [suffix_len] (default 2) stores that many bytes beyond the minimal
    distinguishing prefix — SuRF-Real's real-suffix refinement, which is
    what lets the filter reject short ranges that fall inside a stored
    prefix's shadow. [suffix_len = 0] is SuRF-Base. *)

val may_contain : t -> string -> bool
val may_overlap : t -> lo:string -> hi:string option -> bool
(** Overlap with [\[lo, hi)]; [None] = unbounded above. *)

val stored_count : t -> int
val bit_count : t -> int
(** Memory: total stored prefix bytes * 8 (plus negligible structure). *)

val encode : t -> string
val decode : string -> t
