module Codec = Lsm_util.Codec

type policy =
  | No_filter
  | Bloom of { bits_per_key : float }
  | Blocked_bloom of { bits_per_key : float }
  | Cuckoo of { fingerprint_bits : int }
  | Xor

let policy_name = function
  | No_filter -> "none"
  | Bloom _ -> "bloom"
  | Blocked_bloom _ -> "blocked-bloom"
  | Cuckoo _ -> "cuckoo"
  | Xor -> "xor"

let default = Bloom { bits_per_key = 10.0 }

type xor_state = Collecting of string list ref | Built of Xor_filter.t

type impl =
  | I_none
  | I_bloom of Bloom.t
  | I_blocked of Blocked_bloom.t
  | I_cuckoo of Cuckoo.t
  | I_xor of xor_state ref

type t = { pol : policy; impl : impl }

let create pol ~expected =
  let impl =
    match pol with
    | No_filter -> I_none
    | Bloom { bits_per_key } -> I_bloom (Bloom.create ~bits_per_key ~expected)
    | Blocked_bloom { bits_per_key } -> I_blocked (Blocked_bloom.create ~bits_per_key ~expected)
    | Cuckoo { fingerprint_bits } ->
      I_cuckoo (Cuckoo.create ~fingerprint_bits ~expected ())
    | Xor -> I_xor (ref (Collecting (ref [])))
  in
  { pol; impl }

let add t key =
  match t.impl with
  | I_none -> ()
  | I_bloom f -> Bloom.add f key
  | I_blocked f -> Blocked_bloom.add f key
  | I_cuckoo f ->
    (* A full cuckoo table degrades to "maybe" for new keys: acceptable,
       since [mem] never reports a false negative for inserted keys. *)
    ignore (Cuckoo.add f key)
  | I_xor st -> (
    match !st with
    | Collecting keys -> keys := key :: !keys
    | Built _ -> invalid_arg "Point_filter.add: xor filter already built")

let force_xor st =
  match !st with
  | Built f -> f
  | Collecting keys ->
    let f = Xor_filter.build !keys in
    st := Built f;
    f

let mem t key =
  match t.impl with
  | I_none -> true
  | I_bloom f -> Bloom.mem f key
  | I_blocked f -> Blocked_bloom.mem f key
  | I_cuckoo f -> Cuckoo.mem f key
  | I_xor st -> Xor_filter.mem (force_xor st) key

let bit_count t =
  match t.impl with
  | I_none -> 0
  | I_bloom f -> Bloom.bit_count f
  | I_blocked f -> Blocked_bloom.bit_count f
  | I_cuckoo f -> Cuckoo.bit_count f
  | I_xor st -> Xor_filter.bit_count (force_xor st)

let policy t = t.pol

let tag = function
  | I_none -> 0
  | I_bloom _ -> 1
  | I_blocked _ -> 2
  | I_cuckoo _ -> 3
  | I_xor _ -> 4

let encode t =
  let body =
    match t.impl with
    | I_none -> ""
    | I_bloom f -> Bloom.encode f
    | I_blocked f -> Blocked_bloom.encode f
    | I_cuckoo f -> Cuckoo.encode f
    | I_xor st -> Xor_filter.encode (force_xor st)
  in
  let b = Buffer.create (String.length body + 8) in
  Codec.put_u8 b (tag t.impl);
  (match t.pol with
  | No_filter -> Codec.put_u32 b 0
  | Bloom { bits_per_key } | Blocked_bloom { bits_per_key } ->
    Codec.put_u32 b (int_of_float (bits_per_key *. 1000.0))
  | Cuckoo { fingerprint_bits } -> Codec.put_u32 b fingerprint_bits
  | Xor -> Codec.put_u32 b 0);
  Buffer.add_string b body;
  Buffer.contents b

let decode s =
  let r = Codec.reader s in
  let tag = Codec.get_u8 r in
  let param = Codec.get_u32 r in
  let body = Codec.get_raw r (Codec.remaining r) in
  match tag with
  | 0 -> { pol = No_filter; impl = I_none }
  | 1 ->
    {
      pol = Bloom { bits_per_key = float_of_int param /. 1000.0 };
      impl = I_bloom (Bloom.decode body);
    }
  | 2 ->
    {
      pol = Blocked_bloom { bits_per_key = float_of_int param /. 1000.0 };
      impl = I_blocked (Blocked_bloom.decode body);
    }
  | 3 ->
    { pol = Cuckoo { fingerprint_bits = param }; impl = I_cuckoo (Cuckoo.decode body) }
  | 4 -> { pol = Xor; impl = I_xor (ref (Built (Xor_filter.decode body))) }
  | n -> raise (Codec.Corrupt (Printf.sprintf "unknown filter tag %d" n))
