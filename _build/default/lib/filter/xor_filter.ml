module Codec = Lsm_util.Codec
module Hashing = Lsm_util.Hashing

type t = {
  seed : int64;
  seg_len : int;  (** slots per segment; table = 3 segments *)
  table : Bytes.t;  (** 8-bit fingerprints *)
}

let fingerprint8 h =
  let fp = Int64.to_int (Int64.shift_right_logical h 48) land 0xff in
  fp

(* Three slot positions, one per segment, derived from one keyed hash. *)
let slots ~seed ~seg_len key =
  let h = Hashing.string64 ~seed key in
  let h2 = Hashing.splitmix64 h in
  let mask = max_int in
  let s0 = Int64.to_int h land mask mod seg_len in
  let s1 = seg_len + (Int64.to_int h2 land mask mod seg_len) in
  let s2 = (2 * seg_len) + (Int64.to_int (Hashing.splitmix64 h2) land mask mod seg_len) in
  (h, s0, s1, s2)

let try_build ~seed keys =
  let n = List.length keys in
  let seg_len = max 2 (((n * 123 / 100) + 32) / 3) in
  let size = 3 * seg_len in
  (* count and xor-of-key-index per slot *)
  let count = Array.make size 0 in
  let khash = Array.make n 0L in
  let kslots = Array.make n (0, 0, 0) in
  List.iteri
    (fun i key ->
      let h, s0, s1, s2 = slots ~seed ~seg_len key in
      khash.(i) <- h;
      kslots.(i) <- (s0, s1, s2);
      count.(s0) <- count.(s0) + 1;
      count.(s1) <- count.(s1) + 1;
      count.(s2) <- count.(s2) + 1)
    keys;
  let slot_xor = Array.make size 0 in
  (* xor of key indices (+1 to distinguish empty) per slot *)
  List.iteri
    (fun i _ ->
      let s0, s1, s2 = kslots.(i) in
      slot_xor.(s0) <- slot_xor.(s0) lxor (i + 1);
      slot_xor.(s1) <- slot_xor.(s1) lxor (i + 1);
      slot_xor.(s2) <- slot_xor.(s2) lxor (i + 1))
    keys;
  (* Peel: repeatedly remove slots containing exactly one key. *)
  let stack = Array.make n (0, 0) in
  let top = ref 0 in
  let queue = Queue.create () in
  Array.iteri (fun s c -> if c = 1 then Queue.add s queue) count;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    if count.(s) = 1 then begin
      let i = slot_xor.(s) - 1 in
      stack.(!top) <- (i, s);
      incr top;
      let s0, s1, s2 = kslots.(i) in
      List.iter
        (fun sj ->
          count.(sj) <- count.(sj) - 1;
          slot_xor.(sj) <- slot_xor.(sj) lxor (i + 1);
          if count.(sj) = 1 then Queue.add sj queue)
        [ s0; s1; s2 ]
    end
  done;
  if !top < n then None
  else begin
    (* Assign fingerprints in reverse peel order. *)
    let table = Bytes.make size '\000' in
    for idx = !top - 1 downto 0 do
      let i, s = stack.(idx) in
      let s0, s1, s2 = kslots.(i) in
      let fp = fingerprint8 khash.(i) in
      let get x = Char.code (Bytes.get table x) in
      let v = fp lxor (if s = s0 then get s1 lxor get s2
                       else if s = s1 then get s0 lxor get s2
                       else get s0 lxor get s1) in
      Bytes.set table s (Char.chr (v land 0xff))
    done;
    Some { seed; seg_len; table }
  end

let build keys =
  let keys = List.sort_uniq String.compare keys in
  if keys = [] then { seed = 0L; seg_len = 2; table = Bytes.make 6 '\000' }
  else begin
    let rec attempt k =
      if k > 100 then failwith "Xor_filter.build: peeling failed repeatedly"
      else
        let seed = Hashing.splitmix64 (Int64.of_int (0x9e37 + k)) in
        match try_build ~seed keys with Some t -> t | None -> attempt (k + 1)
    in
    attempt 0
  end

let mem t key =
  let h, s0, s1, s2 = slots ~seed:t.seed ~seg_len:t.seg_len key in
  let get x = Char.code (Bytes.get t.table x) in
  fingerprint8 h = get s0 lxor get s1 lxor get s2

let bit_count t = 8 * Bytes.length t.table

let encode t =
  let b = Buffer.create (Bytes.length t.table + 16) in
  Codec.put_u64 b t.seed;
  Codec.put_varint b t.seg_len;
  Buffer.add_bytes b t.table;
  Buffer.contents b

let decode s =
  let r = Codec.reader s in
  let seed = Codec.get_u64 r in
  let seg_len = Codec.get_varint r in
  let table = Bytes.of_string (Codec.get_raw r (3 * seg_len)) in
  { seed; seg_len; table }
