module Codec = Lsm_util.Codec

type t = {
  min_level : int;  (** shallowest bit-prefix length with a Bloom filter *)
  blooms : Bloom.t array;  (** index i = level (min_level + i) *)
}

let key_to_int key =
  let v = ref 0L in
  for i = 0 to 7 do
    let byte = if i < String.length key then Char.code key.[i] else 0 in
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int byte)
  done;
  !v

(* Node at [level] (1..64) with canonical base [b]: probe key tags the
   level so the same Bloom array position never aliases across levels. *)
let probe_key level base =
  let b = Bytes.create 9 in
  Bytes.set b 0 (Char.chr level);
  Bytes.set_int64_be b 1 base;
  Bytes.unsafe_to_string b

let mask_to_level level v =
  if level >= 64 then v
  else Int64.logand v (Int64.shift_left (-1L) (64 - level))

let build ?(levels = 64) ?(bits_per_key = 10.0) ~keys () =
  let levels = max 1 (min 64 levels) in
  let min_level = 64 - levels + 1 in
  let values = List.map key_to_int keys in
  let n = List.length keys in
  let blooms =
    Array.init levels (fun _ -> Bloom.create ~bits_per_key ~expected:(max 1 n))
  in
  List.iter
    (fun v ->
      for level = min_level to 64 do
        Bloom.add blooms.(level - min_level) (probe_key level (mask_to_level level v))
      done)
    values;
  { min_level; blooms }

let ( <=^ ) a b = Int64.unsigned_compare a b <= 0
let ( <^ ) a b = Int64.unsigned_compare a b < 0

(* Is any key present in the node [base, base + 2^(64-level))? Probe this
   level, then doubt positives by recursing into both children until a
   leaf (level 64) confirms. *)
let rec doubt t base level =
  if level < t.min_level then true
  else if not (Bloom.mem t.blooms.(level - t.min_level) (probe_key level base)) then false
  else if level = 64 then true
  else
    let child_off = Int64.shift_left 1L (63 - level) in
    doubt t base (level + 1) || doubt t (Int64.add base child_off) (level + 1)

(* Dyadic decomposition of the inclusive value range [lo, hi]. *)
let range_query t lo hi =
  let rec go base level =
    (* node covers [base, node_hi] inclusive *)
    let node_hi =
      if level = 0 then -1L (* all ones: whole domain *)
      else Int64.add base (Int64.sub (Int64.shift_left 1L (64 - level)) 1L)
    in
    if hi <^ base || node_hi <^ lo then false
    else if level > 0 && lo <=^ base && node_hi <=^ hi then doubt t base level
    else begin
      (* level = 64 nodes are single values: always disjoint or inside *)
      assert (level < 64);
      let child_off = Int64.shift_left 1L (63 - level) in
      go base (level + 1) || go (Int64.add base child_off) (level + 1)
    end
  in
  go 0L 0

let may_contain t key =
  let v = key_to_int key in
  doubt t v 64

let may_overlap t ~lo ~hi =
  let lo_v = key_to_int lo in
  match hi with
  | None -> range_query t lo_v (-1L)
  | Some hi ->
    (* [lo, hi) on keys maps to values [lo_v, hi_v']; the 8-byte projection
       is coarse, so include hi's own value unless hi projects strictly
       above lo (conservative on ties and truncation). *)
    let hi_v = key_to_int hi in
    if Int64.unsigned_compare hi_v lo_v < 0 then false
    else
      let hi_inclusive =
        (* keys strictly below hi can still share hi's 8-byte projection
           when hi is longer than 8 bytes *)
        if String.length hi > 8 then hi_v
        else if Int64.unsigned_compare hi_v 0L = 0 then 0L
        else Int64.sub hi_v 1L
      in
      if Int64.unsigned_compare hi_inclusive lo_v < 0 then false
      else range_query t lo_v hi_inclusive

let bit_count t = Array.fold_left (fun acc b -> acc + Bloom.bit_count b) 0 t.blooms

let encode t =
  let b = Buffer.create 1024 in
  Codec.put_varint b t.min_level;
  Codec.put_varint b (Array.length t.blooms);
  Array.iter (fun bl -> Codec.put_lp_string b (Bloom.encode bl)) t.blooms;
  Buffer.contents b

let decode s =
  let r = Codec.reader s in
  let min_level = Codec.get_varint r in
  let n = Codec.get_varint r in
  { min_level; blooms = Array.init n (fun _ -> Bloom.decode (Codec.get_lp_string r)) }
