module Codec = Lsm_util.Codec
module Hashing = Lsm_util.Hashing

type t = { bits : Bytes.t; nbits : int; k : int }

let probes_for bits_per_key =
  let k = int_of_float (Float.round (bits_per_key *. Float.log 2.0)) in
  max 1 (min 30 k)

let create ~bits_per_key ~expected =
  if bits_per_key <= 0.0 then { bits = Bytes.empty; nbits = 0; k = 0 }
  else begin
    let nbits = max 64 (int_of_float (ceil (bits_per_key *. float_of_int (max 1 expected)))) in
    { bits = Bytes.make ((nbits + 7) / 8) '\000'; nbits; k = probes_for bits_per_key }
  end

let set_bit b i =
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl bit)))

let get_bit b i =
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.get b byte) land (1 lsl bit) <> 0

let add t key =
  if t.nbits > 0 then begin
    let h1, h2 = Hashing.double_hash key in
    let pos = ref (h1 mod t.nbits) in
    let step = h2 mod t.nbits in
    for _ = 1 to t.k do
      set_bit t.bits !pos;
      pos := !pos + step;
      if !pos >= t.nbits then pos := !pos - t.nbits
    done
  end

let mem t key =
  if t.nbits = 0 then true
  else begin
    let h1, h2 = Hashing.double_hash key in
    let pos = ref (h1 mod t.nbits) in
    let step = h2 mod t.nbits in
    let rec loop i =
      if i > t.k then true
      else if not (get_bit t.bits !pos) then false
      else begin
        pos := !pos + step;
        if !pos >= t.nbits then pos := !pos - t.nbits;
        loop (i + 1)
      end
    in
    loop 1
  end

let bit_count t = t.nbits
let num_probes t = t.k

let encode t =
  let b = Buffer.create (Bytes.length t.bits + 16) in
  Codec.put_varint b t.nbits;
  Codec.put_varint b t.k;
  Buffer.add_bytes b t.bits;
  Buffer.contents b

let decode s =
  let r = Codec.reader s in
  let nbits = Codec.get_varint r in
  let k = Codec.get_varint r in
  let bytes_needed = (nbits + 7) / 8 in
  let bits = Bytes.of_string (Codec.get_raw r bytes_needed) in
  { bits; nbits; k }

let theoretical_fpr ~bits_per_key =
  if bits_per_key <= 0.0 then 1.0 else Float.pow 0.6185 bits_per_key
