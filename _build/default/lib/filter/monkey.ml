let ln_base = Float.log 0.6185

let fpr_of_bits bits = if bits <= 0.0 then 1.0 else Float.pow 0.6185 bits
let bits_of_fpr p = if p >= 1.0 then 0.0 else Float.log p /. ln_base

(* Memory (bits) needed to give level i false-positive rate p:
   n_i * bits_of_fpr p. Total memory is monotonically decreasing in the
   Lagrange multiplier lambda (p_i = min(1, lambda * n_i)), so binary
   search on lambda finds the budget-saturating allocation. *)
let memory_for_lambda lambda level_entries =
  Array.fold_left
    (fun acc n ->
      if n = 0 then acc
      else
        let p = Float.min 1.0 (lambda *. float_of_int n) in
        acc +. (float_of_int n *. bits_of_fpr p))
    0.0 level_entries

let allocate ~total_bits ~level_entries =
  let nlevels = Array.length level_entries in
  let result = Array.make nlevels 0.0 in
  let total_entries = Array.fold_left ( + ) 0 level_entries in
  if total_bits <= 0.0 || total_entries = 0 then result
  else begin
    (* lambda range: tiny lambda = tiny FPRs = huge memory. *)
    let lo = ref 1e-30 and hi = ref 1.0 in
    (* Ensure hi really yields memory <= budget: at lambda >= 1/min_n all
       p_i = 1 and memory = 0, so hi = 1.0 always works (p_i = min(1, n_i) = 1
       for n_i >= 1). *)
    for _ = 1 to 100 do
      let mid = sqrt (!lo *. !hi) in
      if memory_for_lambda mid level_entries > total_bits then lo := mid else hi := mid
    done;
    let lambda = !hi in
    Array.iteri
      (fun i n ->
        if n > 0 then begin
          let p = Float.min 1.0 (lambda *. float_of_int n) in
          result.(i) <- bits_of_fpr p
        end)
      level_entries;
    result
  end

let uniform ~total_bits ~level_entries =
  let total_entries = Array.fold_left ( + ) 0 level_entries in
  let per_key = if total_entries = 0 then 0.0 else total_bits /. float_of_int total_entries in
  Array.map (fun n -> if n = 0 then 0.0 else per_key) level_entries

let expected_probes ~fprs = Array.fold_left ( +. ) 0.0 fprs
