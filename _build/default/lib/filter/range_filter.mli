(** Unified range-filter front-end: the "which range filter?" knob of
    §2.1.3. Built once per sorted run from its full key set; probed by
    scans before the run's iterator is opened. *)

type policy =
  | No_range_filter
  | Prefix of { prefix_len : int; bits_per_key : float }
  | Surf of { max_prefix : int; suffix_len : int }
  | Rosetta of { levels : int; bits_per_key : float }

val policy_name : policy -> string

type t

val build : policy -> keys:string list -> t
val may_overlap : t -> lo:string -> hi:string option -> bool
(** Overlap with [\[lo, hi)]. No false negatives for any policy. *)

val bit_count : t -> int
val encode : t -> string
val decode : string -> t
