(** Unified point-filter front-end: the "which filter?" knob of §2.1.3.

    Every sorted run carries one of these; the engine probes it before
    touching the run's fence pointers. The serialized form is
    self-describing, so the SSTable reader reconstructs whichever filter
    the writer was configured with. *)

type policy =
  | No_filter
  | Bloom of { bits_per_key : float }
  | Blocked_bloom of { bits_per_key : float }
  | Cuckoo of { fingerprint_bits : int }
  | Xor  (** static 8-bit xor filter, ~9.84 bits/key; built lazily at
             {!encode} from the keys added so far *)

val policy_name : policy -> string

val default : policy
(** [Bloom { bits_per_key = 10.0 }] — the industry default. *)

type t

val create : policy -> expected:int -> t
val add : t -> string -> unit
val mem : t -> string -> bool
(** No false negatives for any policy. For [Xor], querying a builder-side
    instance triggers the (cached) static construction. *)

val bit_count : t -> int
val policy : t -> policy

val encode : t -> string
val decode : string -> t
(** @raise Lsm_util.Codec.Corrupt on malformed input. *)
