(** Standard Bloom filter (§2.1.3), one per sorted run.

    Uses Kirsch–Mitzenmacher double hashing: [k] probe positions derived
    from one 64-bit hash, which is what RocksDB does and what keeps filter
    probes cheap. *)

type t

val create : bits_per_key:float -> expected:int -> t
(** Sizes the bit array for [expected] keys at [bits_per_key] (may be
    fractional, as Monkey's allocation produces). The number of probes is
    [round(ln 2 * bits_per_key)], clamped to [1, 30].
    [bits_per_key <= 0] yields an always-true filter of zero bits. *)

val add : t -> string -> unit

val mem : t -> string -> bool
(** No false negatives; false-positive probability ~[0.6185 ^ bits_per_key]
    when filled to [expected]. *)

val bit_count : t -> int
(** Total bits of the array (0 for the always-true filter). *)

val num_probes : t -> int

val encode : t -> string
val decode : string -> t
(** @raise Lsm_util.Codec.Corrupt on malformed input. *)

val theoretical_fpr : bits_per_key:float -> float
(** [0.6185 ^ bits_per_key] — the textbook optimum used by the cost models. *)
