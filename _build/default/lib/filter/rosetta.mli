(** Rosetta-style range filter (§2.1.3): a hierarchy of Bloom filters over
    dyadic bit-prefix ranges, best for {e short} range queries.

    Keys are mapped to 64-bit integers (their first 8 bytes, big-endian,
    zero-padded — order-preserving for fixed-length keys, which is what
    the range-filter experiment uses). Level [l] holds a Bloom filter of
    all [l]-bit prefixes. A range query is decomposed into dyadic
    intervals; each positive probe is "doubted" by recursing into its
    children until a leaf-level probe confirms — Rosetta's segment-tree
    construction. Short ranges decompose into few deep dyadic intervals,
    so their false-positive rate approaches the leaf Bloom filter's. *)

type t

val build :
  ?levels:int -> ?bits_per_key:float -> keys:string list -> unit -> t
(** [levels] (default 64, i.e. down to exact keys) is how many of the
    deepest prefix levels carry Bloom filters; queries needing shallower
    levels conservatively return "maybe". [bits_per_key] (default 10.0) is
    the per-level budget. *)

val key_to_int : string -> int64
(** The (exposed for tests) key mapping. *)

val may_contain : t -> string -> bool
val may_overlap : t -> lo:string -> hi:string option -> bool
(** Overlap with the key range [\[lo, hi)]. *)

val bit_count : t -> int
val encode : t -> string
val decode : string -> t
