module Codec = Lsm_util.Codec
module Hashing = Lsm_util.Hashing

let block_bytes = 64
let block_bits = block_bytes * 8

type t = { bits : Bytes.t; nblocks : int; k : int }

let create ~bits_per_key ~expected =
  if bits_per_key <= 0.0 then { bits = Bytes.empty; nblocks = 0; k = 0 }
  else begin
    let nbits = max block_bits (int_of_float (ceil (bits_per_key *. float_of_int (max 1 expected)))) in
    let nblocks = (nbits + block_bits - 1) / block_bits in
    let k = max 1 (min 30 (int_of_float (Float.round (bits_per_key *. Float.log 2.0)))) in
    { bits = Bytes.make (nblocks * block_bytes) '\000'; nblocks; k }
  end

let set_bit b i =
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl bit)))

let get_bit b i =
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.get b byte) land (1 lsl bit) <> 0

let probe_base t key =
  let h1, h2 = Hashing.double_hash key in
  let block = h1 mod t.nblocks in
  (block * block_bits, h2)

let add t key =
  if t.nblocks > 0 then begin
    let base, h2 = probe_base t key in
    let pos = ref (h2 land (block_bits - 1)) in
    let step = ((h2 lsr 9) lor 1) land (block_bits - 1) in
    for _ = 1 to t.k do
      set_bit t.bits (base + !pos);
      pos := (!pos + step) land (block_bits - 1)
    done
  end

let mem t key =
  if t.nblocks = 0 then true
  else begin
    let base, h2 = probe_base t key in
    let pos = ref (h2 land (block_bits - 1)) in
    let step = ((h2 lsr 9) lor 1) land (block_bits - 1) in
    let rec loop i =
      if i > t.k then true
      else if not (get_bit t.bits (base + !pos)) then false
      else begin
        pos := (!pos + step) land (block_bits - 1);
        loop (i + 1)
      end
    in
    loop 1
  end

let bit_count t = t.nblocks * block_bits

let encode t =
  let b = Buffer.create (Bytes.length t.bits + 16) in
  Codec.put_varint b t.nblocks;
  Codec.put_varint b t.k;
  Buffer.add_bytes b t.bits;
  Buffer.contents b

let decode s =
  let r = Codec.reader s in
  let nblocks = Codec.get_varint r in
  let k = Codec.get_varint r in
  let bits = Bytes.of_string (Codec.get_raw r (nblocks * block_bytes)) in
  { bits; nblocks; k }
