module Codec = Lsm_util.Codec

type t = { plen : int; bloom : Bloom.t }

let cut plen key =
  if String.length key >= plen then String.sub key 0 plen
  else key ^ String.make (plen - String.length key) '\000'

let build ~prefix_len ~bits_per_key ~keys =
  if prefix_len <= 0 then invalid_arg "Prefix_bloom.build: prefix_len must be positive";
  let distinct = Hashtbl.create 256 in
  List.iter (fun k -> Hashtbl.replace distinct (cut prefix_len k) ()) keys;
  let bloom = Bloom.create ~bits_per_key ~expected:(Hashtbl.length distinct) in
  Hashtbl.iter (fun p () -> Bloom.add bloom p) distinct;
  { plen = prefix_len; bloom }

let may_contain_prefix t p = Bloom.mem t.bloom (cut t.plen p)

let common_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let rec loop i = if i < n && a.[i] = b.[i] then loop (i + 1) else i in
  loop 0

let may_overlap t ~lo ~hi =
  match hi with
  | None -> true (* unbounded ranges span arbitrarily many prefixes *)
  | Some hi ->
    if common_prefix_len lo hi >= t.plen then may_contain_prefix t lo
    else begin
      (* Range spans prefix blocks. If hi's block is the immediate successor
         of lo's block we can answer with two probes: the range is the tail
         of lo's block plus (when hi > phi) the head of hi's block. Any wider
         span contains whole blocks we cannot enumerate — answer "maybe". *)
      let plo = cut t.plen lo and phi = cut t.plen hi in
      let succ_plo =
        let b = Bytes.of_string plo in
        let rec inc i =
          if i < 0 then None
          else if Bytes.get b i = '\xff' then begin
            Bytes.set b i '\000';
            inc (i - 1)
          end
          else begin
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) + 1));
            Some (Bytes.to_string b)
          end
        in
        inc (t.plen - 1)
      in
      match succ_plo with
      | Some s when s = phi ->
        may_contain_prefix t plo || (hi > phi && may_contain_prefix t phi)
      | Some _ | None -> true
    end

let prefix_len t = t.plen
let bit_count t = Bloom.bit_count t.bloom

let encode t =
  let b = Buffer.create 64 in
  Codec.put_varint b t.plen;
  Codec.put_lp_string b (Bloom.encode t.bloom);
  Buffer.contents b

let decode s =
  let r = Codec.reader s in
  let plen = Codec.get_varint r in
  let bloom = Bloom.decode (Codec.get_lp_string r) in
  { plen; bloom }
