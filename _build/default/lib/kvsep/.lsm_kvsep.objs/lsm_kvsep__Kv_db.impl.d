lib/kvsep/kv_db.ml: List Lsm_core Lsm_storage Lsm_workload Option Printf String Value_log
