lib/kvsep/value_log.mli: Lsm_storage
