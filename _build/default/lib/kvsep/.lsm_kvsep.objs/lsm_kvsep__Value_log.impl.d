lib/kvsep/value_log.ml: Buffer List Lsm_storage Lsm_util Printf String
