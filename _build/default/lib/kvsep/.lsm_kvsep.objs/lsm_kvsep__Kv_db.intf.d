lib/kvsep/kv_db.mli: Lsm_core Lsm_storage Lsm_workload Value_log
