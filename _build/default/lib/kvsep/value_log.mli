(** The WiscKey value log (§2.2.2): large values live in append-only
    segments; the LSM-tree stores only pointers. Compactions then move
    pointer-sized entries, which is where the ~4× write-amplification
    reduction for large values comes from.

    Records: [varint key_len | key | varint value_len | value]. A pointer
    is (segment number, record offset, record length); the key is stored
    alongside the value so garbage collection can check liveness. *)

type t

type pointer = { segment : int; offset : int; length : int }

val open_log : ?segment_bytes:int -> Lsm_storage.Device.t -> t
(** [segment_bytes] (default 1 MiB) is the rotation threshold. Recovers
    existing segments from the device. *)

val append : t -> key:string -> value:string -> pointer
(** Durable once returned (the segment is synced). *)

val read : t -> cls:Lsm_storage.Io_stats.op_class -> pointer -> string * string
(** (key, value) at the pointer.
    @raise Lsm_util.Codec.Corrupt on a dangling or damaged pointer. *)

val segments : t -> int list
(** Sealed, GC-eligible segment numbers, oldest first (excludes the
    active head segment). *)

val fold_segment :
  t -> cls:Lsm_storage.Io_stats.op_class -> int ->
  init:'a -> f:('a -> pointer -> string -> string -> 'a) -> 'a
(** Iterate every record of a segment (for garbage collection). *)

val drop_segment : t -> int -> unit
val active_segment : t -> int
val total_bytes : t -> int
val close : t -> unit

val encode_pointer : pointer -> string
val decode_pointer : string -> pointer
