(** WiscKey-style engine: an {!Lsm_core.Db} of keys and pointers over a
    {!Value_log} of large values (§2.2.2).

    Values at or above [value_threshold] go to the value log; the tree
    stores a pointer. Small values stay inline — the hybrid most
    production adopters of the idea (Titan, BlobDB) use. Reads follow the
    pointer (one extra random read); range scans pay one log read per
    large value, WiscKey's documented cost. {!gc} reclaims dead log space
    by re-appending live values and dropping the segment. *)

type t

val open_db :
  ?config:Lsm_core.Config.t ->
  ?value_threshold:int ->
  ?segment_bytes:int ->
  dev:Lsm_storage.Device.t ->
  unit ->
  t
(** [value_threshold] defaults to 128 bytes. *)

val put : t -> key:string -> string -> unit
val get : t -> string -> string option
val delete : t -> string -> unit

val scan :
  t -> ?limit:int -> lo:string -> hi:string option -> unit -> (string * string) list

val flush : t -> unit
val close : t -> unit

type gc_result = { segments_dropped : int; live_moved : int; dead_dropped : int }

val gc : t -> ?max_segments:int -> unit -> gc_result
(** Process the oldest sealed segments: live values (pointer in the tree
    still points into the segment) are re-appended and re-pointed; dead
    ones are dropped with the segment. *)

val db : t -> Lsm_core.Db.t
val value_log : t -> Value_log.t
val to_kv_store : t -> Lsm_workload.Kv_store.t

val logical_bytes : t -> int
(** Key+value bytes as written by the user (the write-amp denominator). *)
