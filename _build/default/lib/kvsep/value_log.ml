module Codec = Lsm_util.Codec
module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats

type pointer = { segment : int; offset : int; length : int }

type t = {
  dev : Device.t;
  segment_bytes : int;
  mutable head : int;  (** active segment number *)
  mutable writer : Device.writer;
  mutable sealed : int list;  (** oldest first *)
  mutable closed : bool;
}

let seg_name n = Printf.sprintf "vlog-%06d" n

let open_log ?(segment_bytes = 1 lsl 20) dev =
  let existing =
    Device.list_files dev
    |> List.filter_map (fun name ->
           if String.length name = 11 && String.sub name 0 5 = "vlog-" then
             int_of_string_opt (String.sub name 5 6)
           else None)
    |> List.sort compare
  in
  let head = (match List.rev existing with n :: _ -> n + 1 | [] -> 0) in
  {
    dev;
    segment_bytes;
    head;
    writer = Device.open_writer dev ~cls:Io_stats.C_user_write (seg_name head);
    sealed = existing;
    closed = false;
  }

let rotate t =
  Device.close t.writer;
  t.sealed <- t.sealed @ [ t.head ];
  t.head <- t.head + 1;
  t.writer <- Device.open_writer t.dev ~cls:Io_stats.C_user_write (seg_name t.head)

let append t ~key ~value =
  if t.closed then invalid_arg "Value_log.append: closed";
  let b = Buffer.create (String.length key + String.length value + 10) in
  Codec.put_lp_string b key;
  Codec.put_lp_string b value;
  let record = Buffer.contents b in
  if Device.written t.writer + String.length record > t.segment_bytes
     && Device.written t.writer > 0
  then rotate t;
  let offset = Device.written t.writer in
  Device.append t.writer record;
  Device.sync t.writer;
  { segment = t.head; offset; length = String.length record }

let read t ~cls p =
  let raw = Device.read t.dev ~cls (seg_name p.segment) ~off:p.offset ~len:p.length in
  let r = Codec.reader raw in
  let key = Codec.get_lp_string r in
  let value = Codec.get_lp_string r in
  (key, value)

let segments t = t.sealed

let fold_segment t ~cls seg ~init ~f =
  let name = seg_name seg in
  let len = Device.size t.dev name in
  let data = Device.read t.dev ~cls name ~off:0 ~len in
  let r = Codec.reader data in
  let acc = ref init in
  while not (Codec.at_end r) do
    let offset = r.Codec.pos in
    let key = Codec.get_lp_string r in
    let value = Codec.get_lp_string r in
    let p = { segment = seg; offset; length = r.Codec.pos - offset } in
    acc := f !acc p key value
  done;
  !acc

let drop_segment t seg =
  Device.delete t.dev (seg_name seg);
  t.sealed <- List.filter (fun s -> s <> seg) t.sealed

let active_segment t = t.head

let total_bytes t =
  List.fold_left
    (fun acc seg -> acc + Device.size t.dev (seg_name seg))
    (Device.written t.writer) t.sealed

let close t =
  if not t.closed then begin
    Device.close t.writer;
    t.closed <- true
  end

let encode_pointer p =
  let b = Buffer.create 12 in
  Codec.put_varint b p.segment;
  Codec.put_varint b p.offset;
  Codec.put_varint b p.length;
  Buffer.contents b

let decode_pointer s =
  let r = Codec.reader s in
  let segment = Codec.get_varint r in
  let offset = Codec.get_varint r in
  let length = Codec.get_varint r in
  { segment; offset; length }
