lib/frag/frag_db.ml: Array Int64 List Lsm_core Lsm_filter Lsm_memtable Lsm_record Lsm_sstable Lsm_storage Lsm_util Lsm_workload Option Printf String
