lib/frag/frag_db.mli: Lsm_filter Lsm_storage Lsm_util Lsm_workload
