(** Fragmented LSM-tree (FLSM) with guards, after PebblesDB (§2.2.2).

    Each level is partitioned by {e guard} keys; a guard holds a set of
    possibly-overlapping SSTable fragments. Compacting a guard merges its
    fragments and {e partitions} the output by the next level's guards,
    appending each piece there without rewriting the next level's data —
    the mechanism that cuts compaction data movement (and so write
    amplification) relative to leveled compaction, at the cost of more
    fragments to probe per read.

    Guards are chosen deterministically from key hashes with a per-level
    stride: a guard of level [l] is also a guard of all deeper levels, so
    partitions only refine.

    This engine is an experimental substrate (no WAL/manifest — the
    durability machinery is demonstrated in [lsm_core]); it shares the
    device, SSTable format, and I/O accounting with the main engine so
    measurements are directly comparable. *)

type config = {
  comparator : Lsm_util.Comparator.t;
  write_buffer_size : int;
  level0_limit : int;
  size_ratio : int;  (** level capacity growth, and guard-density growth *)
  level1_capacity : int;
  max_fragments_per_guard : int;  (** compaction trigger within a guard *)
  target_file_size : int;
  block_size : int;
  filter : Lsm_filter.Point_filter.policy;
  guard_stride_base : int;
      (** ~1 in [guard_stride_base] keys becomes a level-1 guard; deeper
          levels divide the stride by [size_ratio] *)
}

val default_config : config

type t

val create : ?config:config -> dev:Lsm_storage.Device.t -> unit -> t
val put : t -> key:string -> string -> unit
val delete : t -> string -> unit
val get : t -> string -> string option

val scan :
  t -> ?limit:int -> lo:string -> hi:string option -> unit -> (string * string) list

val flush : t -> unit
val close : t -> unit

(** {1 Introspection} *)

val guard_count : t -> int -> int
val fragment_count : t -> int
val level_bytes : t -> int -> int
val compactions : t -> int
val compaction_bytes_written : t -> int
val user_bytes : t -> int
val write_amplification : t -> float
val to_kv_store : t -> Lsm_workload.Kv_store.t
