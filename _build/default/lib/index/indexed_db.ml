module Db = Lsm_core.Db
module Write_batch = Lsm_core.Write_batch
module Codec = Lsm_util.Codec

type index_spec = {
  index_name : string;
  extract : key:string -> value:string -> string list;
}

type t = { store : Db.t; indexes : index_spec list }

(* Namespace: records under 'd', composite index entries under 'i'.
   Composite key: 'i' | lp(name) | lp(term) | primary-key — all entries of
   one (index, term) share an exact byte prefix, so term lookup is one
   prefix scan; the primary key is recovered by decoding the prefix off. *)

let record_key k = "d" ^ k

let composite ~name ~term pkey =
  let b = Buffer.create (String.length name + String.length term + String.length pkey + 6) in
  Buffer.add_char b 'i';
  Codec.put_lp_string b name;
  Codec.put_lp_string b term;
  Buffer.add_string b pkey;
  Buffer.contents b

let term_prefix ~name ~term = composite ~name ~term ""

let pkey_of_composite composite_key =
  let r = Codec.reader composite_key in
  let tag = Codec.get_u8 r in
  if tag <> Char.code 'i' then raise (Codec.Corrupt "not an index entry");
  let (_ : string) = Codec.get_lp_string r in
  let (_ : string) = Codec.get_lp_string r in
  Codec.get_raw r (Codec.remaining r)

(* Smallest string strictly greater than every string with this prefix,
   if one exists. *)
let prefix_successor p =
  let b = Bytes.of_string p in
  let rec bump i =
    if i < 0 then None
    else if Bytes.get b i = '\xff' then bump (i - 1)
    else begin
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) + 1));
      Some (Bytes.sub_string b 0 (i + 1))
    end
  in
  bump (Bytes.length b - 1)

let create ~db ~indexes =
  let names = List.map (fun s -> s.index_name) indexes in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Indexed_db.create: duplicate index names";
  { store = db; indexes }

let db t = t.store

let get t key = Db.get t.store (record_key key)

let sorted_terms spec ~key ~value =
  List.sort_uniq String.compare (spec.extract ~key ~value)

(* Record write = record op + index deltas, in one atomic batch. *)
let write_record t ~key new_value =
  let old_value = get t key in
  let batch = Write_batch.create () in
  (match new_value with
  | Some v -> Write_batch.put batch ~key:(record_key key) v
  | None -> Write_batch.delete batch (record_key key));
  List.iter
    (fun spec ->
      let old_terms =
        match old_value with
        | Some v -> sorted_terms spec ~key ~value:v
        | None -> []
      in
      let new_terms =
        match new_value with
        | Some v -> sorted_terms spec ~key ~value:v
        | None -> []
      in
      List.iter
        (fun term ->
          if not (List.mem term new_terms) then
            Write_batch.delete batch (composite ~name:spec.index_name ~term key))
        old_terms;
      List.iter
        (fun term ->
          if not (List.mem term old_terms) then
            Write_batch.put batch ~key:(composite ~name:spec.index_name ~term key) "")
        new_terms)
    t.indexes;
  Db.apply_batch t.store batch

let put t ~key value = write_record t ~key (Some value)
let delete t key = write_record t ~key None

let scan t ?limit ~lo ~hi () =
  let hi =
    match hi with
    | Some h -> Some (record_key h)
    | None -> Some "e" (* first byte after 'd': end of the record space *)
  in
  Db.scan t.store ?limit ~lo:(record_key lo) ~hi ()
  |> List.map (fun (k, v) -> (String.sub k 1 (String.length k - 1), v))

let find_spec t name =
  match List.find_opt (fun s -> String.equal s.index_name name) t.indexes with
  | Some s -> s
  | None -> raise Not_found

let lookup_keys t ~index ~term =
  let (_ : index_spec) = find_spec t index in
  let prefix = term_prefix ~name:index ~term in
  let hi = prefix_successor prefix in
  Db.fold t.store ~lo:prefix ~hi ~init:[]
    ~f:(fun acc k _ ->
      if String.length k >= String.length prefix && String.sub k 0 (String.length prefix) = prefix
      then pkey_of_composite k :: acc
      else acc)
    ()
  |> List.rev

let lookup t ~index ~term =
  lookup_keys t ~index ~term
  |> List.filter_map (fun pkey -> Option.map (fun v -> (pkey, v)) (get t pkey))

let index_entry_count t ~index =
  let (_ : index_spec) = find_spec t index in
  let prefix =
    let b = Buffer.create 16 in
    Buffer.add_char b 'i';
    Codec.put_lp_string b index;
    Buffer.contents b
  in
  let hi = prefix_successor prefix in
  Db.fold t.store ~lo:prefix ~hi ~init:0 ~f:(fun acc _ _ -> acc + 1) ()
