(** Eager secondary indexing over the LSM engine (§2.1.3, after the
    composite-key designs surveyed in [97, 117]).

    The wrapper owns the whole key namespace of one {!Lsm_core.Db}:
    records live under a data prefix, and each secondary index [name]
    maintains composite entries [<index prefix>/name/term/primary-key]
    with empty values. Index maintenance is {e eager}: every record write
    reads the record's previous version, computes the old and new term
    sets, and applies record + index deltas in one atomic
    {!Lsm_core.Write_batch} — so a crash can never separate a record from
    its index entries.

    Term lookup is a prefix scan of the composite entries followed by
    primary-key point gets — the read path of an unclustered secondary
    index on an LSM store (each index probe costs one scan plus one get
    per match). *)

type t

type index_spec = {
  index_name : string;
  extract : key:string -> value:string -> string list;
      (** terms of a record; duplicates are ignored. Terms and keys may be
          arbitrary bytes. *)
}

val create : db:Lsm_core.Db.t -> indexes:index_spec list -> t
(** The [db] must be dedicated to this wrapper (it owns the namespace).
    Reopening over a recovered [db] with the same specs resumes cleanly —
    index entries are durable data. *)

val db : t -> Lsm_core.Db.t

val put : t -> key:string -> string -> unit
val get : t -> string -> string option
val delete : t -> string -> unit

val scan :
  t -> ?limit:int -> lo:string -> hi:string option -> unit -> (string * string) list
(** Over record keys only (index entries are invisible). *)

val lookup : t -> index:string -> term:string -> (string * string) list
(** All (key, value) records whose extractor produced [term], in key
    order. @raise Not_found for an unknown index name. *)

val lookup_keys : t -> index:string -> term:string -> string list
(** Primary keys only: one scan, no per-record gets. *)

val index_entry_count : t -> index:string -> int
(** Live composite entries (for tests/metrics). *)
