lib/index/indexed_db.ml: Buffer Bytes Char List Lsm_core Lsm_util Option String
