lib/index/indexed_db.mli: Lsm_core
