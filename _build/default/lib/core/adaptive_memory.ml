module Io_stats = Lsm_storage.Io_stats

type t = {
  db : Db.t;
  total : int;
  step : int;
  floor : int;
  mutable buffer : int;
  mutable last_io : Io_stats.t;
  mutable n_epochs : int;
  mutable to_buffer : int;
  mutable to_cache : int;
}

let apply t =
  Db.set_write_buffer_size t.db t.buffer;
  Db.set_block_cache_bytes t.db (t.total - t.buffer)

let create ?(step_fraction = 0.10) ?(min_fraction = 0.10) ~db ~total_bytes () =
  if total_bytes < 8192 then invalid_arg "Adaptive_memory.create: budget too small";
  if step_fraction <= 0.0 || step_fraction >= 1.0 then
    invalid_arg "Adaptive_memory.create: bad step_fraction";
  let t =
    {
      db;
      total = total_bytes;
      step = max 1024 (int_of_float (float_of_int total_bytes *. step_fraction));
      floor = max 1024 (int_of_float (float_of_int total_bytes *. min_fraction));
      buffer = total_bytes / 2;
      last_io = Io_stats.copy (Db.io_stats db);
      n_epochs = 0;
      to_buffer = 0;
      to_cache = 0;
    }
  in
  apply t;
  t

let epoch t =
  let now = Db.io_stats t.db in
  let d = Io_stats.diff now t.last_io in
  t.last_io <- Io_stats.copy now;
  t.n_epochs <- t.n_epochs + 1;
  (* Write pain: device bytes the write path generated (a bigger buffer
     would have flushed less and compacted less). Read pain: data-block
     bytes fetched for reads (a bigger cache would have absorbed them). *)
  let write_pain =
    Io_stats.bytes_written ~cls:Io_stats.C_flush d
    + Io_stats.bytes_written ~cls:Io_stats.C_compaction_write d
    + Io_stats.bytes_read ~cls:Io_stats.C_compaction_read d
  in
  let read_pain = Io_stats.bytes_read ~cls:Io_stats.C_user_read d in
  if write_pain > read_pain && t.buffer + t.step <= t.total - t.floor then begin
    t.buffer <- t.buffer + t.step;
    t.to_buffer <- t.to_buffer + 1;
    apply t
  end
  else if read_pain > write_pain && t.buffer - t.step >= t.floor then begin
    t.buffer <- t.buffer - t.step;
    t.to_cache <- t.to_cache + 1;
    apply t
  end

let buffer_bytes t = t.buffer
let cache_bytes t = t.total - t.buffer
let epochs t = t.n_epochs
let moves_to_buffer t = t.to_buffer
let moves_to_cache t = t.to_cache
