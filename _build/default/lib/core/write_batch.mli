(** Atomic multi-operation writes.

    A batch is applied with one sequence-number range, one WAL record, and
    one durability point ({!Db.apply_batch}): after a crash, either every
    operation in the batch is recovered or none is — the unit of atomicity
    production engines expose (RocksDB's WriteBatch). *)

type t

val create : unit -> t
val put : t -> key:string -> string -> unit
val delete : t -> string -> unit
val single_delete : t -> string -> unit
val range_delete : t -> lo:string -> hi:string -> unit
val merge : t -> key:string -> string -> unit

val length : t -> int
val is_empty : t -> bool
val clear : t -> unit

val operations : t -> (Lsm_record.Entry.kind * string * string) list
(** In insertion order; consumed by [Db.apply_batch]. *)
