lib/core/config.ml: Lsm_compaction Lsm_filter Lsm_memtable Lsm_sstable Lsm_util Printf
