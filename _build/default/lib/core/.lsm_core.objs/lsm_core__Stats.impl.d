lib/core/stats.ml: Format Lsm_util
