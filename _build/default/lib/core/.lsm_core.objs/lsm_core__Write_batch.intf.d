lib/core/write_batch.mli: Lsm_record
