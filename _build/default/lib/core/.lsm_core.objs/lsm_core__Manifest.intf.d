lib/core/manifest.mli: Lsm_storage Version
