lib/core/manifest.ml: Buffer Int32 Lsm_storage Lsm_util String Version
