lib/core/adaptive_memory.ml: Db Lsm_storage
