lib/core/snapshot.ml:
