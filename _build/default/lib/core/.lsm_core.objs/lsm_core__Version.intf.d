lib/core/version.mli: Buffer Format Lsm_sstable Lsm_util
