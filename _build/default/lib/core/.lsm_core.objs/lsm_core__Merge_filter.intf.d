lib/core/merge_filter.mli: Lsm_record Lsm_util
