lib/core/stats.mli: Format Lsm_util
