lib/core/snapshot.mli:
