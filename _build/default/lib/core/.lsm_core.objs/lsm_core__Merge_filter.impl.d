lib/core/merge_filter.ml: Array List Lsm_record Lsm_util String
