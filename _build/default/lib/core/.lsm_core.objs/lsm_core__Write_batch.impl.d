lib/core/write_batch.ml: List Lsm_record String
