lib/core/version.ml: Array Format Hashtbl List Lsm_sstable Lsm_util Printf String
