lib/core/adaptive_memory.mli: Db
