lib/core/db.mli: Config Format Lsm_storage Snapshot Stats Version Write_batch
