(** The merge-time garbage-collection logic of compaction (§2.1.2):
    "participating entries are merged, retaining only the latest version
    of each key" — refined by snapshots, tombstone rules, and range
    tombstones.

    Given the k-way-merged input stream (key asc, seqno desc), the
    filtered iterator drops:
    - versions shadowed by a newer version of the same key in the same
      {e snapshot stripe} (no active snapshot separates them),
    - point/single-delete tombstones at the bottom level once no snapshot
      older than them exists (this is when deletes become {e persistent} —
      Lethe's clock, §2.3.3),
    - entries covered by a same-stripe newer range tombstone,
    - a [Single_delete] together with the put it cancels (same stripe),
      mirroring RocksDB's single-delete contract [101],
    - range-delete entries themselves at the bottom level / oldest stripe.

    [Merge] operands are never dropped by shadowing (read-time resolution
    needs the chain down to its base); a newer same-stripe [Put] or
    tombstone still shadows them. *)

val filtered :
  cmp:Lsm_util.Comparator.t ->
  snapshots:int list ->
  bottom:bool ->
  range_tombstones:Lsm_record.Entry.t list ->
  Lsm_record.Iter.t ->
  Lsm_record.Iter.t
(** [snapshots] are the active snapshot seqnos (any order). The result
    supports [seek_to_first]/[next]/[valid]/[entry] (what the SSTable
    builder consumes); [seek] degrades to a full rescan and is not meant
    for use. *)

val stripe_of : snapshots:int array -> int -> int
(** Exposed for tests: [stripe_of ~snapshots seqno] with [snapshots]
    sorted ascending; equal results = no snapshot separates the seqnos. *)
