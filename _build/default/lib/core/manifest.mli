(** Append-only log of version edits (the MANIFEST).

    Same checksummed framing as the WAL; recovery folds the intact prefix
    of edits over {!Version.empty} to rebuild the tree shape, then the WAL
    replays on top. *)

type t

val file_name : string

val create : Lsm_storage.Device.t -> t
(** Opens a fresh manifest (truncating any previous one — call only after
    {!recover} has been consumed). *)

val log_edit : t -> Version.edit -> unit
(** Appends and syncs one edit. *)

val close : t -> unit

val recover : Lsm_storage.Device.t -> Version.t
(** Rebuild the version from the manifest; an absent manifest yields
    {!Version.empty}. Torn tails are ignored. *)
