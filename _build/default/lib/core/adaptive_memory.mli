(** Adaptive memory management between the write buffer and the block
    cache (Luo & Carey, "Breaking Down Memory Walls", §2.3.1).

    A fixed total budget is split between the write path (buffer: a larger
    one means fewer flushes and less compaction churn) and the read path
    (cache: a larger one means fewer data-block reads). The right split
    depends on the workload — and shifts when the workload shifts (E10
    shows no static split wins both phases).

    The controller runs an epoch loop: each {!epoch} call compares the
    I/O pain accrued on each side since the last call — write pain =
    flush + compaction bytes written, read pain = user-read bytes fetched
    from the device (i.e. cache misses) — and moves a step of budget
    toward the side that hurt more, within configured bounds. Both pains
    are device bytes, so the comparison needs no tuning constants. *)

type t

val create :
  ?step_fraction:float ->
  ?min_fraction:float ->
  db:Db.t ->
  total_bytes:int ->
  unit ->
  t
(** [step_fraction] (default 0.10) of the total moves per epoch;
    [min_fraction] (default 0.10) of the total is the floor for each side.
    The initial split is 50/50 (applied immediately). *)

val epoch : t -> unit
(** Observe the interval since the last call and rebalance. Call it every
    N operations or on a timer — the controller is indifferent. *)

val buffer_bytes : t -> int
val cache_bytes : t -> int
val epochs : t -> int
val moves_to_buffer : t -> int
val moves_to_cache : t -> int
