(** A consistent read point: entries with a sequence number above the
    snapshot's are invisible to reads made through it, and compactions
    retain whatever versions snapshots may still need. *)

type t

val seqno : t -> int
val make : int -> t
(** Package-internal constructor (used by {!Db.snapshot}). *)
