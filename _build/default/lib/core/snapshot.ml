type t = { seqno : int }

let seqno t = t.seqno
let make seqno = { seqno }
