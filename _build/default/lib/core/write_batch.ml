module Entry = Lsm_record.Entry

type t = { mutable ops : (Entry.kind * string * string) list (* newest first *) }

let create () = { ops = [] }
let put t ~key value = t.ops <- (Entry.Put, key, value) :: t.ops
let delete t key = t.ops <- (Entry.Delete, key, "") :: t.ops
let single_delete t key = t.ops <- (Entry.Single_delete, key, "") :: t.ops

let range_delete t ~lo ~hi =
  if String.compare lo hi >= 0 then invalid_arg "Write_batch.range_delete: lo must be < hi";
  t.ops <- (Entry.Range_delete, lo, hi) :: t.ops

let merge t ~key operand = t.ops <- (Entry.Merge, key, operand) :: t.ops
let length t = List.length t.ops
let is_empty t = t.ops = []
let clear t = t.ops <- []
let operations t = List.rev t.ops
