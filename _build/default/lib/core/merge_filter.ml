module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Comparator = Lsm_util.Comparator

let stripe_of ~snapshots seqno =
  (* Index of the first snapshot >= seqno; snapshots sorted ascending. *)
  let n = Array.length snapshots in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if snapshots.(mid) < seqno then lo := mid + 1 else hi := mid
  done;
  !lo

let filtered ~cmp ~snapshots ~bottom ~range_tombstones (src : Iter.t) =
  let snapshots = Array.of_list (List.sort_uniq compare snapshots) in
  let stripe s = stripe_of ~snapshots s in
  (* Range tombstones as (start, end-exclusive, seqno, stripe). *)
  let rds =
    List.filter_map
      (fun (e : Entry.t) ->
        if e.kind = Entry.Range_delete then Some (e.key, e.value, e.seqno, stripe e.seqno)
        else None)
      range_tombstones
  in
  let covered key seqno st =
    List.exists
      (fun (lo, hi, rseq, rstripe) ->
        rseq > seqno && rstripe = st
        && cmp.Comparator.compare lo key <= 0
        && cmp.Comparator.compare key hi < 0)
      rds
  in
  (* Streaming state. *)
  let current = ref None in
  let cur_key = ref None in
  let kept_stripe = ref (-1) in
  let same_key k = match !cur_key with Some k' -> String.equal k' k | None -> false in
  let note_key k =
    if not (same_key k) then begin
      cur_key := Some k;
      kept_stripe := -1
    end
  in
  (* Pull the next input entry, consuming it. *)
  let pull () =
    if src.Iter.valid () then begin
      let e = src.Iter.entry () in
      src.Iter.next ();
      Some e
    end
    else None
  in
  let peek () = if src.Iter.valid () then Some (src.Iter.entry ()) else None in
  let rec advance () =
    match pull () with
    | None -> current := None
    | Some e -> (
      note_key e.Entry.key;
      match e.Entry.kind with
      | Entry.Range_delete ->
        (* Oldest stripe at the bottom: every entry it could cover is in
           the inputs and already dropped; retire the tombstone. *)
        if bottom && stripe e.Entry.seqno = 0 then advance ()
        else begin
          current := Some e
        end
      | Entry.Put | Entry.Merge | Entry.Delete | Entry.Single_delete -> (
        let st = stripe e.Entry.seqno in
        if st = !kept_stripe then advance () (* shadowed within stripe *)
        else if covered e.Entry.key e.Entry.seqno st then advance ()
        else
          match e.Entry.kind with
          | Entry.Put ->
            kept_stripe := st;
            current := Some e
          | Entry.Merge ->
            (* keep, but do not shadow: the chain's base must survive *)
            current := Some e
          | Entry.Single_delete -> (
            match peek () with
            | Some nxt
              when String.equal nxt.Entry.key e.Entry.key
                   && nxt.Entry.kind = Entry.Put
                   && stripe nxt.Entry.seqno = st ->
              (* Annihilate the pair; older versions resurface, which is
                 the documented single-delete contract. *)
              ignore (pull ());
              advance ()
            | _ ->
              if bottom && st = 0 then begin
                (* Drop the tombstone but keep shadowing its stripe. *)
                kept_stripe := st;
                advance ()
              end
              else begin
                kept_stripe := st;
                current := Some e
              end)
          | Entry.Delete ->
            if bottom && st = 0 then begin
              kept_stripe := st;
              advance ()
            end
            else begin
              kept_stripe := st;
              current := Some e
            end
          | Entry.Range_delete -> assert false))
  in
  let started = ref false in
  let ensure_started () =
    if not !started then begin
      started := true;
      src.Iter.seek_to_first ();
      cur_key := None;
      kept_stripe := -1;
      advance ()
    end
  in
  {
    Iter.valid =
      (fun () ->
        ensure_started ();
        !current <> None);
    entry =
      (fun () ->
        ensure_started ();
        match !current with
        | Some e -> e
        | None -> invalid_arg "Merge_filter: not valid");
    next =
      (fun () ->
        ensure_started ();
        if !current <> None then advance ());
    seek =
      (fun _ -> invalid_arg "Merge_filter: seek not supported");
    seek_to_first =
      (fun () ->
        started := false;
        ensure_started ());
  }
