module Comparator = Lsm_util.Comparator

type t = {
  valid : unit -> bool;
  entry : unit -> Entry.t;
  next : unit -> unit;
  seek : string -> unit;
  seek_to_first : unit -> unit;
}

let of_sorted_array (c : Comparator.t) arr =
  let n = Array.length arr in
  let pos = ref n in
  (* First index whose user key is >= target. *)
  let lower_bound target =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if c.compare arr.(mid).Entry.key target < 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  {
    valid = (fun () -> !pos < n);
    entry = (fun () -> arr.(!pos));
    next = (fun () -> if !pos < n then incr pos);
    seek = (fun target -> pos := lower_bound target);
    seek_to_first = (fun () -> pos := 0);
  }

let of_sorted_list c l = of_sorted_array c (Array.of_list l)

let empty =
  {
    valid = (fun () -> false);
    entry = (fun () -> invalid_arg "Iter.empty: no entry");
    next = ignore;
    seek = ignore;
    seek_to_first = ignore;
  }

let to_list it =
  it.seek_to_first ();
  let rec loop acc = if it.valid () then (let e = it.entry () in it.next (); loop (e :: acc)) else List.rev acc in
  loop []

let concat parts =
  let parts = Array.of_list parts in
  let n = Array.length parts in
  let cur = ref n in
  let advance_from i =
    let rec loop i =
      if i >= n then cur := n
      else begin
        parts.(i).seek_to_first ();
        if parts.(i).valid () then cur := i else loop (i + 1)
      end
    in
    loop i
  in
  let skip_exhausted () =
    while !cur < n && not (parts.(!cur).valid ()) do
      let nxt = !cur + 1 in
      if nxt < n then parts.(nxt).seek_to_first ();
      cur := nxt
    done
  in
  {
    valid = (fun () -> !cur < n && parts.(!cur).valid ());
    entry = (fun () -> parts.(!cur).entry ());
    next =
      (fun () ->
        if !cur < n then begin
          parts.(!cur).next ();
          skip_exhausted ()
        end);
    seek =
      (fun target ->
        (* Parts are globally ordered: find the first part that still has
           entries at/after the target. *)
        let rec loop i =
          if i >= n then cur := n
          else begin
            parts.(i).seek target;
            if parts.(i).valid () then begin
              cur := i;
              (* Prime the following part so [next] can fall through. *)
              ()
            end
            else loop (i + 1)
          end
        in
        loop 0;
        if !cur < n then skip_exhausted ());
    seek_to_first = (fun () -> advance_from 0);
  }

let merge (c : Comparator.t) sources =
  let srcs = Array.of_list sources in
  let n = Array.length srcs in
  (* Binary min-heap of source indices, ordered by current entry. *)
  let heap = Array.make n 0 in
  let heap_size = ref 0 in
  let less i j =
    let cmp = Entry.compare c (srcs.(i).entry ()) (srcs.(j).entry ()) in
    if cmp <> 0 then cmp < 0 else i < j
  in
  let swap a b =
    let tmp = heap.(a) in
    heap.(a) <- heap.(b);
    heap.(b) <- tmp
  in
  let rec sift_up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less heap.(i) heap.(parent) then begin
        swap i parent;
        sift_up parent
      end
    end
  in
  let rec sift_down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < !heap_size && less heap.(l) heap.(!smallest) then smallest := l;
    if r < !heap_size && less heap.(r) heap.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap i !smallest;
      sift_down !smallest
    end
  in
  let push i =
    heap.(!heap_size) <- i;
    incr heap_size;
    sift_up (!heap_size - 1)
  in
  let pop () =
    let top = heap.(0) in
    decr heap_size;
    heap.(0) <- heap.(!heap_size);
    if !heap_size > 0 then sift_down 0;
    top
  in
  let rebuild () =
    heap_size := 0;
    Array.iteri (fun i s -> if s.valid () then push i) srcs
  in
  {
    valid = (fun () -> !heap_size > 0);
    entry = (fun () -> srcs.(heap.(0)).entry ());
    next =
      (fun () ->
        if !heap_size > 0 then begin
          let i = pop () in
          srcs.(i).next ();
          if srcs.(i).valid () then push i
        end);
    seek =
      (fun target ->
        Array.iter (fun s -> s.seek target) srcs;
        rebuild ());
    seek_to_first =
      (fun () ->
        Array.iter (fun s -> s.seek_to_first ()) srcs;
        rebuild ());
  }
