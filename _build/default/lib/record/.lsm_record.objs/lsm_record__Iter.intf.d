lib/record/iter.mli: Entry Lsm_util
