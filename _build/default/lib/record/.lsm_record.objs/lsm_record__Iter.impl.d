lib/record/iter.ml: Array Entry List Lsm_util
