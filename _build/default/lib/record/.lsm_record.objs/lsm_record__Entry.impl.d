lib/record/entry.ml: Format Int Lsm_util Printf String
