lib/record/entry.mli: Buffer Format Lsm_util
