(** The cursor interface shared by memtables, SSTables, and merge logic.

    An iterator yields entries in [Entry.compare] order (user key ascending,
    sequence number descending within a key). A freshly created iterator is
    positioned before the first entry; call {!seek_to_first} or {!seek}
    before reading. *)

type t = {
  valid : unit -> bool;  (** positioned on an entry? *)
  entry : unit -> Entry.t;  (** current entry; undefined when not valid *)
  next : unit -> unit;  (** advance; no-op when already exhausted *)
  seek : string -> unit;
      (** position on the first entry with user key >= target *)
  seek_to_first : unit -> unit;
}

val of_sorted_array : Lsm_util.Comparator.t -> Entry.t array -> t
(** The array must already be sorted by [Entry.compare]. *)

val of_sorted_list : Lsm_util.Comparator.t -> Entry.t list -> t

val empty : t

val to_list : t -> Entry.t list
(** Rewinds, then drains the iterator. *)

val concat : t list -> t
(** Concatenation of already-globally-ordered, disjoint iterators (e.g. the
    files of one sorted run, in key order). *)

val merge : Lsm_util.Comparator.t -> t list -> t
(** Heap-based k-way merge of arbitrarily overlapping iterators. Ties on
    (key, seqno, kind) are broken by list position, so pass newer sources
    first for deterministic behaviour on exact duplicates. *)
