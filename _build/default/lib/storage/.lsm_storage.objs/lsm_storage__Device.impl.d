lib/storage/device.ml: Array Buffer Filename Fun Hashtbl Io_stats List String Sys
