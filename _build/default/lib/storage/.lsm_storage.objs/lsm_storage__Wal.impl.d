lib/storage/wal.ml: Buffer Device Int32 Io_stats List Lsm_record Lsm_util String
