lib/storage/io_stats.ml: Array Format List
