lib/storage/device.mli: Buffer Io_stats
