lib/storage/wal.mli: Device Lsm_record
