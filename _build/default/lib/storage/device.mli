(** The block-device / file-system abstraction underneath the engine.

    Files are append-only while being written and immutable once closed —
    exactly the discipline LSM components need (§2.1.1.C). The device
    charges every read and write to an {!Io_stats.op_class} at page
    granularity, which is what the experiments measure.

    Two backends:
    - {!in_memory} — the default substrate for tests and benchmarks. It can
      also simulate a crash ({!crash}): all bytes not covered by an explicit
      {!sync} are lost, which is how WAL recovery is exercised.
    - {!on_disk} — real files under a directory, for running the engine
      against an actual file system. *)

type t
type writer

val in_memory : ?page_size:int -> unit -> t
(** [page_size] defaults to 4096 bytes. *)

val on_disk : ?page_size:int -> dir:string -> unit -> t
(** Stores files under [dir] (created if missing). *)

val page_size : t -> int
val stats : t -> Io_stats.t
val sync_count : t -> int

(** {1 Writing} *)

val open_writer : t -> cls:Io_stats.op_class -> string -> writer
(** Creates (or truncates) the named file for appending.
    @raise Invalid_argument if a writer is already open on that name. *)

val append : writer -> string -> unit
val append_buffer : writer -> Buffer.t -> unit
val written : writer -> int
(** Bytes appended so far (= current file size). *)

val sync : writer -> unit
(** Make all appended bytes crash-durable. *)

val close : writer -> unit
(** Seal the file (implies {!sync}); it becomes immutable and readable. *)

(** {1 Reading} *)

val read : t -> cls:Io_stats.op_class -> string -> off:int -> len:int -> string
(** @raise Not_found if the file does not exist.
    @raise Invalid_argument if the range is out of bounds. *)

val size : t -> string -> int
val exists : t -> string -> bool
val delete : t -> string -> unit
(** Removing a missing file is a no-op. *)

val list_files : t -> string list
(** Sorted file names. *)

val total_bytes : t -> int
(** Sum of all file sizes: the space-amplification numerator. *)

(** {1 Fault injection} *)

val crash : t -> unit
(** In-memory backend only: discard all unsynced bytes and seal every file,
    as a power failure would. Open writers become unusable.
    @raise Invalid_argument on the on-disk backend. *)
