type key = string * int

type node = {
  nkey : key;
  data : string;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  mutable cap : int;
  table : (key, node) Hashtbl.t;
  mutable head : node option;  (** most recently used *)
  mutable tail : node option;  (** least recently used *)
  mutable used : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Block_cache.create: negative capacity";
  {
    cap = capacity;
    table = Hashtbl.create 1024;
    head = None;
    tail = None;
    used = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap

let used_bytes t = t.used
let block_count t = Hashtbl.length t.table

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let remove_node t n =
  unlink t n;
  Hashtbl.remove t.table n.nkey;
  t.used <- t.used - String.length n.data

let find t ~file ~off =
  match Hashtbl.find_opt t.table (file, off) with
  | Some n ->
    t.hits <- t.hits + 1;
    unlink t n;
    push_front t n;
    Some n.data
  | None ->
    t.misses <- t.misses + 1;
    None

let evict_until_fits t =
  while t.used > t.cap do
    match t.tail with
    | Some n ->
      remove_node t n;
      t.evictions <- t.evictions + 1
    | None -> assert false
  done

let set_capacity t capacity =
  if capacity < 0 then invalid_arg "Block_cache.set_capacity: negative capacity";
  t.cap <- capacity;
  evict_until_fits t

let insert t ~file ~off data =
  if String.length data <= t.cap && t.cap > 0 then begin
    (match Hashtbl.find_opt t.table (file, off) with
    | Some old -> remove_node t old
    | None -> ());
    let n = { nkey = (file, off); data; prev = None; next = None } in
    Hashtbl.replace t.table n.nkey n;
    push_front t n;
    t.used <- t.used + String.length data;
    evict_until_fits t
  end

let get_or_load t ~file ~off load =
  match find t ~file ~off with
  | Some data -> data
  | None ->
    let data = load () in
    insert t ~file ~off data;
    data

let evict_file t file =
  let victims =
    Hashtbl.fold (fun (f, _) n acc -> if String.equal f file then n :: acc else acc) t.table []
  in
  List.iter (remove_node t) victims;
  List.length victims

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.used <- 0

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let hit_rate t =
  let lookups = t.hits + t.misses in
  if lookups = 0 then 0.0 else float_of_int t.hits /. float_of_int lookups

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
