(** Cache of opened {!Sstable.reader}s, so each file's footer, index, and
    filter blocks are parsed once and their in-memory form is shared by
    every get/scan/compaction touching the file. *)

type t

val create :
  cmp:Lsm_util.Comparator.t ->
  dev:Lsm_storage.Device.t ->
  cache:Lsm_storage.Block_cache.t ->
  unit ->
  t

val get : t -> string -> Sstable.reader
(** Open (or return the cached) reader for a file name. *)

val evict : t -> string -> unit
(** Drop the reader (call when the file is deleted); also drops the
    file's data blocks from the block cache. *)

val open_count : t -> int
val block_cache : t -> Lsm_storage.Block_cache.t
