(** Data blocks: the unit of disk I/O and caching inside an SSTable.

    Entries are stored in [Entry.compare] order with prefix-compressed
    keys and periodic {e restart points} (full keys) that support binary
    search, exactly as in LevelDB/RocksDB. Each block carries a trailing
    CRC-32C so corruption is detected at read time.

    Record layout (relative to the previous key in the block):
    [varint shared | varint unshared | unshared-bytes | varint seqno |
     u8 kind | lp value]. Trailer: restart offsets (u32 each), restart
    count (u32), masked CRC-32C (u32). *)

module Builder : sig
  type t

  val create : ?restart_interval:int -> unit -> t
  (** [restart_interval] defaults to 16. *)

  val add : t -> Lsm_record.Entry.t -> unit
  (** Entries must arrive in [Entry.compare] order (not checked here; the
      SSTable builder enforces it). *)

  val size_estimate : t -> int
  (** Current encoded size including the trailer. *)

  val count : t -> int
  val is_empty : t -> bool

  val finish : t -> string
  (** Encodes, seals, and resets the builder for the next block. *)
end

val decode_check : string -> string
(** Verify and strip the CRC trailer, returning the body for iteration.
    @raise Lsm_util.Codec.Corrupt on checksum mismatch. *)

val iterator : Lsm_util.Comparator.t -> string -> Lsm_record.Iter.t
(** Iterator over a verified block body (output of {!decode_check}).
    [seek] binary-searches the restart points then scans forward. *)
