type t = {
  cmp : Lsm_util.Comparator.t;
  dev : Lsm_storage.Device.t;
  cache : Lsm_storage.Block_cache.t;
  readers : (string, Sstable.reader) Hashtbl.t;
}

let create ~cmp ~dev ~cache () = { cmp; dev; cache; readers = Hashtbl.create 64 }

let get t name =
  match Hashtbl.find_opt t.readers name with
  | Some r -> r
  | None ->
    let r = Sstable.open_reader ~cmp:t.cmp ~dev:t.dev ~cache:t.cache ~name in
    Hashtbl.replace t.readers name r;
    r

let evict t name =
  Hashtbl.remove t.readers name;
  ignore (Lsm_storage.Block_cache.evict_file t.cache name)

let open_count t = Hashtbl.length t.readers
let block_cache t = t.cache
