lib/sstable/table_cache.ml: Hashtbl Lsm_storage Lsm_util Sstable
