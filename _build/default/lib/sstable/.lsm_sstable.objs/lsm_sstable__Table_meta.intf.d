lib/sstable/table_meta.mli: Buffer Format Lsm_util Sstable
