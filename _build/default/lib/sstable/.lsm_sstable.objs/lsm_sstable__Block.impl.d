lib/sstable/block.ml: Array Buffer Int32 List Lsm_record Lsm_util String
