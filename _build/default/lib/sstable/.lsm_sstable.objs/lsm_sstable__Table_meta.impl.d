lib/sstable/table_meta.ml: Format List Lsm_util Printf Sstable
