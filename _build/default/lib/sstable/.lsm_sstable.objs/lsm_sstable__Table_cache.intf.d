lib/sstable/table_cache.mli: Lsm_storage Lsm_util Sstable
