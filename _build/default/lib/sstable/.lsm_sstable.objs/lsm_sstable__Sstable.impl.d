lib/sstable/sstable.ml: Array Block Buffer Format List Lsm_filter Lsm_record Lsm_storage Lsm_util Printf String
