lib/sstable/sstable.mli: Format Lsm_filter Lsm_record Lsm_storage Lsm_util
