lib/sstable/block.mli: Lsm_record Lsm_util
