examples/quickstart.mli:
