examples/secondary_index.ml: Array List Lsm_core Lsm_index Lsm_storage Printf String
