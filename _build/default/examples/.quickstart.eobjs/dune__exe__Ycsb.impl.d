examples/ycsb.ml: Kv_store List Lsm_compaction Lsm_core Lsm_frag Lsm_kvsep Lsm_storage Lsm_workload Printf Runner Spec
