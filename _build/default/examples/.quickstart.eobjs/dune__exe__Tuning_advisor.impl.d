examples/tuning_advisor.ml: Kv_store List Lsm_compaction Lsm_core Lsm_cost Lsm_storage Lsm_workload Printf Runner Spec
