examples/delete_compliance.mli:
