examples/delete_compliance.ml: Filename List Lsm_compaction Lsm_core Lsm_storage Printf String
