examples/ycsb.mli:
