examples/quickstart.ml: Format List Lsm_core Lsm_storage Option Printf String
