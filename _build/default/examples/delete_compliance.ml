(* Privacy through timely persistent deletion (Module III, Lethe).

   A logical delete only hides data; the bytes stay on disk until a
   compaction physically rewrites the files. Regulations (GDPR "right to
   be forgotten") demand an upper bound on that latency. This example
   shows:
     1. with default compaction, deleted data lingers on the device;
     2. with Lethe-style TTL-driven compaction (Expired_ttl movement),
        tombstones are forced through the tree and the data is purged
        within the configured window.

   Run with: dune exec examples/delete_compliance.exe *)

module Db = Lsm_core.Db
module Policy = Lsm_compaction.Policy
module Device = Lsm_storage.Device

let secret = "SSN=123-45-6789"

let config compaction =
  {
    Lsm_core.Config.default with
    write_buffer_size = 16 * 1024;
    level1_capacity = 64 * 1024;
    target_file_size = 32 * 1024;
    block_size = 1024;
    compaction;
  }

(* Does any live file on the device still physically contain the secret? *)
let secret_on_device dev =
  List.exists
    (fun name ->
      Filename.check_suffix name ".sst"
      &&
      let len = Device.size dev name in
      let data = Device.read dev ~cls:Lsm_storage.Io_stats.C_misc name ~off:0 ~len in
      (* values are stored uncompressed; search raw bytes *)
      let needle = secret in
      let n = String.length data and m = String.length needle in
      let rec search i = i + m <= n && (String.sub data i m = needle || search (i + 1)) in
      search 0)
    (Device.list_files dev)

let background_churn db rounds =
  (* Unrelated traffic that gives compactions a reason to run. *)
  for r = 1 to rounds do
    for i = 0 to 299 do
      Db.put db ~key:(Printf.sprintf "other%06d" ((r * 300) + i)) (String.make 64 'x')
    done
  done

let scenario label compaction =
  Printf.printf "=== %s ===\n" label;
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(config compaction) ~dev () in
  (* The user's record, pushed to a deep level by surrounding churn. *)
  Db.put db ~key:"user:42:ssn" secret;
  background_churn db 20;
  (* Settle everything to the deepest level: from here on, capacity
     triggers are quiet and the secret sits at the bottom of the tree. *)
  Db.major_compact db;
  Printf.printf "  secret physically on device after ingest: %b\n" (secret_on_device dev);
  (* GDPR request arrives: *)
  Db.delete db "user:42:ssn";
  Printf.printf "  logically deleted; visible to reads: %b\n" (Db.get db "user:42:ssn" <> None);
  (* Life goes on — but only lightly: traffic too small to overflow any
     level, so capacity-based compaction has no reason to ever touch the
     deep file holding the secret. Only a delete-aware trigger will. *)
  let purged_at = ref None in
  for tick = 1 to 30 do
    for i = 0 to 19 do
      Db.put db ~key:(Printf.sprintf "churn%03d-%02d" tick i) (String.make 64 'y')
    done;
    Db.flush db;
    ignore (Db.wake db);
    if !purged_at = None && not (secret_on_device dev) then purged_at := Some tick
  done;
  (match (!purged_at, secret_on_device dev) with
  | Some t, _ -> Printf.printf "  PURGED from the device after %d churn rounds\n" t
  | None, false -> Printf.printf "  PURGED from the device by the final flush\n"
  | None, true ->
    Printf.printf "  STILL ON DEVICE after all churn (logical-only deletion!)\n");
  Printf.printf "  write amplification paid: %.2f\n\n" (Db.write_amplification db);
  Db.close db

let () =
  scenario "default leveled compaction (no deletion deadline)"
    (Policy.leveled ~size_ratio:4 ());
  scenario "Lethe-style FADE: tombstone TTL forces timely persistence"
    { (Policy.leveled ~size_ratio:4 ()) with
      Policy.movement = Policy.Expired_ttl { ttl = 60 } };
  print_endline
    "Takeaway: the TTL policy bounds how long deleted data can survive on\n\
     disk, at a modest write-amplification premium (SIGMOD'20 Lethe, as\n\
     surveyed in the tutorial's Module III)."
