(* Tuning advisor: navigate the LSM design space analytically (Module III).

   Describe a workload, get back the cost-model-optimal design, the
   read-write Pareto frontier, and a robust (min-max) recommendation that
   hedges against workload drift - then validate the top pick empirically
   against a deliberately mistuned design.

   Run with: dune exec examples/tuning_advisor.exe *)

module Model = Lsm_cost.Model
module Navigator = Lsm_cost.Navigator
module Robust = Lsm_cost.Robust
module Policy = Lsm_compaction.Policy
module Device = Lsm_storage.Device
open Lsm_workload

let describe_and_tune name w =
  Printf.printf "--- %s ---\n" name;
  let mem_bits = 8.0 *. float_of_int (64 * 1024 * 1024) in
  let best = Navigator.best ~total_memory_bits:mem_bits w in
  Printf.printf "  nominal optimum: %-40s cost %.4f I/O/op\n"
    (Model.describe_design best.Navigator.design)
    best.Navigator.cost;
  let robust = Robust.robust_best ~rho:0.3 ~total_memory_bits:mem_bits w in
  Printf.printf "  robust (rho=0.3): %-39s worst-case %.4f I/O/op\n"
    (Model.describe_design robust.Navigator.design)
    robust.Navigator.cost;
  let frontier =
    Navigator.pareto_frontier
      (Navigator.enumerate ~total_memory_bits:mem_bits w)
      ~write_cost:(fun d -> Model.write_cost d w)
      ~read_cost:(fun d -> Model.point_lookup_miss_cost d w)
  in
  Printf.printf "  read-write frontier (%d designs):\n" (List.length frontier);
  List.iteri
    (fun i c ->
      if i < 5 then
        Printf.printf "    write %.4f  zero-result read %.4f  <- %s\n"
          (Model.write_cost c.Navigator.design w)
          (Model.point_lookup_miss_cost c.Navigator.design w)
          (Model.describe_design c.Navigator.design))
    frontier;
  print_newline ();
  best.Navigator.design

let empirical_check design =
  print_endline "--- empirical validation (write-heavy workload) ---";
  let to_policy (d : Model.design) =
    match d.Model.layout with
    | `Leveling -> Policy.leveled ~size_ratio:d.size_ratio ()
    | `Tiering -> Policy.tiered ~size_ratio:d.size_ratio ()
    | `Lazy_leveling -> Policy.lazy_leveled ~size_ratio:d.size_ratio ()
  in
  let run_with label compaction =
    let dev = Device.in_memory () in
    let config =
      {
        Lsm_core.Config.default with
        write_buffer_size = 64 * 1024;
        level1_capacity = 256 * 1024;
        target_file_size = 128 * 1024;
        compaction;
      }
    in
    let store =
      { (Kv_store.of_db (Lsm_core.Db.open_db ~config ~dev ())) with Kv_store.store_name = label }
    in
    let spec =
      { (Spec.mixed ~records:10_000 ~operations:30_000 ()) with
        Spec.mix =
          { insert = 0.4; update = 0.4; read = 0.15; scan = 0.05; scan_length = 10;
            delete = 0.0; rmw = 0.0 } }
    in
    Runner.run store spec
  in
  print_endline Runner.header;
  print_endline (Runner.row (run_with "advised" (to_policy design)));
  print_endline
    (Runner.row (run_with "mistuned" (Policy.leveled ~size_ratio:2 ())));
  print_endline "\n(The advised design should show lower WA / higher ops/s.)"

let () =
  let base =
    {
      Model.entries = 50_000_000;
      entry_bytes = 128;
      page_bytes = 4096;
      f_insert = 0.0;
      f_point_lookup_hit = 0.0;
      f_point_lookup_miss = 0.0;
      f_short_scan = 0.0;
      f_long_scan = 0.0;
      long_scan_pages = 64.0;
    }
  in
  ignore
    (describe_and_tune "read-mostly service (95% point reads)"
       { base with f_insert = 0.05; f_point_lookup_hit = 0.75; f_point_lookup_miss = 0.2 });
  ignore
    (describe_and_tune "analytics scans (70% range scans)"
       { base with f_insert = 0.2; f_point_lookup_hit = 0.1; f_short_scan = 0.5; f_long_scan = 0.2 });
  let write_design =
    describe_and_tune "ingest pipeline (90% writes)"
      { base with f_insert = 0.9; f_point_lookup_hit = 0.05; f_point_lookup_miss = 0.05 }
  in
  empirical_check write_design
