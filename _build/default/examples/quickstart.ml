(* Quickstart: open an LSM engine, write, read, scan, delete, snapshot,
   and look inside the tree.

   Run with: dune exec examples/quickstart.exe *)

module Db = Lsm_core.Db
module Config = Lsm_core.Config
module Device = Lsm_storage.Device

let () =
  (* An in-memory device gives a fully functional store with exact I/O
     accounting; swap for [Device.on_disk ~dir:"/tmp/lsm" ()] to use real
     files. *)
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:Config.default ~dev () in

  (* --- basic puts and gets ------------------------------------------ *)
  Db.put db ~key:"user:1001:name" "ada";
  Db.put db ~key:"user:1001:email" "ada@example.org";
  Db.put db ~key:"user:1002:name" "grace";

  (match Db.get db "user:1001:name" with
  | Some name -> Printf.printf "user 1001 is %s\n" name
  | None -> print_endline "user 1001 missing?!");

  (* --- updates are out-of-place; reads see the newest version ------- *)
  Db.put db ~key:"user:1001:name" "ada lovelace";
  Printf.printf "after update: %s\n" (Option.get (Db.get db "user:1001:name"));

  (* --- range scans --------------------------------------------------- *)
  let user_1001 = Db.scan db ~lo:"user:1001:" ~hi:(Some "user:1001:\xff") () in
  Printf.printf "user 1001 has %d attributes:\n" (List.length user_1001);
  List.iter (fun (k, v) -> Printf.printf "  %s = %s\n" k v) user_1001;

  (* --- snapshots ----------------------------------------------------- *)
  let snap = Db.snapshot db in
  Db.delete db "user:1002:name";
  Printf.printf "live view: user 1002 name = %s\n"
    (Option.value ~default:"<deleted>" (Db.get db "user:1002:name"));
  Printf.printf "snapshot view: user 1002 name = %s\n"
    (Option.value ~default:"<deleted>" (Db.get db ~snapshot:snap "user:1002:name"));
  Db.release db snap;

  (* --- bulk load to grow a real tree -------------------------------- *)
  for i = 0 to 49_999 do
    Db.put db ~key:(Printf.sprintf "bulk%08d" i) (String.make 64 'x')
  done;
  Db.flush db;

  print_endline "\ntree shape after bulk load:";
  Format.printf "%a@." Db.pp_tree db;

  Printf.printf "write amplification so far: %.2f\n" (Db.write_amplification db);
  Printf.printf "space amplification: %.2f\n" (Db.space_amplification db);

  (* --- durability: reopen from the same device ----------------------- *)
  Db.close db;
  let db2 = Db.open_db ~config:Config.default ~dev () in
  Printf.printf "\nafter reopen, user 1001 is still %s\n"
    (Option.get (Db.get db2 "user:1001:name"));
  Db.close db2;
  print_endline "quickstart done."
