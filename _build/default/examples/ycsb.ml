(* YCSB core workloads A-F against three data layouts (leveled, tiered,
   lazy-leveled) and the two alternative engines (WiscKey-style
   key-value separation, PebblesDB-style fragmented guards).

   This is the "which design for which workload" exercise of the
   tutorial's Module III, run end to end.

   Run with: dune exec examples/ycsb.exe *)

module Policy = Lsm_compaction.Policy
module Device = Lsm_storage.Device
open Lsm_workload

let small_config compaction =
  {
    Lsm_core.Config.default with
    write_buffer_size = 64 * 1024;
    level1_capacity = 256 * 1024;
    target_file_size = 128 * 1024;
    compaction;
    wal_sync_every_write = false;
  }

let engines =
  [
    ( "leveled",
      fun dev -> Kv_store.of_db (Lsm_core.Db.open_db ~config:(small_config (Policy.leveled ~size_ratio:4 ())) ~dev ()) );
    ( "tiered",
      fun dev -> Kv_store.of_db (Lsm_core.Db.open_db ~config:(small_config (Policy.tiered ~size_ratio:4 ())) ~dev ()) );
    ( "lazy-leveled",
      fun dev ->
        Kv_store.of_db
          (Lsm_core.Db.open_db ~config:(small_config (Policy.lazy_leveled ~size_ratio:4 ())) ~dev ()) );
    ( "wisckey",
      fun dev ->
        Lsm_kvsep.Kv_db.to_kv_store
          (Lsm_kvsep.Kv_db.open_db
             ~config:(small_config (Policy.leveled ~size_ratio:4 ()))
             ~value_threshold:64 ~dev ()) );
    ( "pebbles",
      fun dev ->
        Lsm_frag.Frag_db.to_kv_store
          (Lsm_frag.Frag_db.create
             ~config:
               {
                 Lsm_frag.Frag_db.default_config with
                 write_buffer_size = 64 * 1024;
                 level1_capacity = 256 * 1024;
                 target_file_size = 128 * 1024;
               }
             ~dev ()) );
  ]

let () =
  let records = 20_000 and operations = 20_000 in
  Printf.printf "YCSB core workloads: %d records, %d ops, zipfian skew\n\n" records operations;
  print_endline Runner.header;
  List.iter
    (fun (wname, mk_spec) ->
      List.iter
        (fun (ename, mk_engine) ->
          let dev = Device.in_memory () in
          let store = { (mk_engine dev) with Kv_store.store_name = ename } in
          let spec = { (mk_spec ()) with Spec.name = "ycsb-" ^ wname } in
          let result = Runner.run store spec in
          print_endline (Runner.row result))
        engines;
      print_newline ())
    [
      ("A", fun () -> Spec.ycsb_a ~records ~operations ());
      ("B", fun () -> Spec.ycsb_b ~records ~operations ());
      ("C", fun () -> Spec.ycsb_c ~records ~operations ());
      ("D", fun () -> Spec.ycsb_d ~records ~operations ());
      ("E", fun () -> Spec.ycsb_e ~records ~operations:(operations / 5) ());
      ("F", fun () -> Spec.ycsb_f ~records ~operations ());
    ];
  print_endline "done. Lower WA favors write paths; ops/s is the headline.";
  print_endline
    "Expected shape: tiered wins WA on update-heavy (A), leveled wins scans (E),\n\
     wisckey wins WA at this value size, pebbles sits between tiered and leveled."
