(* Secondary indexing over the LSM engine (S2.1.3: "optimizing reads on
   secondary (non-key) attributes").

   A small product catalog keyed by SKU, with eagerly-maintained secondary
   indexes on category and on tags. Index maintenance is atomic with the
   record write (one write batch), so the index can never drift from the
   data - which the final consistency check demonstrates across updates,
   deletes, flushes, and a full reopen.

   Run with: dune exec examples/secondary_index.exe *)

module Db = Lsm_core.Db
module Device = Lsm_storage.Device
module Idx = Lsm_index.Indexed_db

(* record format: "category|tag,tag,..." *)
let category ~key:_ ~value =
  match String.index_opt value '|' with
  | Some i -> [ String.sub value 0 i ]
  | None -> []

let tags ~key:_ ~value =
  match String.index_opt value '|' with
  | Some i ->
    String.sub value (i + 1) (String.length value - i - 1)
    |> String.split_on_char ','
    |> List.filter (fun t -> t <> "")
  | None -> []

let () =
  let dev = Device.in_memory () in
  let db = Db.open_db ~dev () in
  let idx =
    Idx.create ~db
      ~indexes:
        [
          { Idx.index_name = "category"; extract = category };
          { Idx.index_name = "tag"; extract = tags };
        ]
  in
  (* Load a catalog. *)
  Idx.put idx ~key:"sku-1001" "audio|wireless,noise-cancelling";
  Idx.put idx ~key:"sku-1002" "audio|wired";
  Idx.put idx ~key:"sku-2001" "kitchen|stainless";
  Idx.put idx ~key:"sku-2002" "kitchen|wireless";
  Idx.put idx ~key:"sku-3001" "outdoor|waterproof,wireless";

  let show title items =
    Printf.printf "%s: %s\n" title (String.concat ", " items)
  in
  show "audio products" (Idx.lookup_keys idx ~index:"category" ~term:"audio");
  show "wireless products" (Idx.lookup_keys idx ~index:"tag" ~term:"wireless");

  (* Update: sku-1002 goes wireless; the index follows atomically. *)
  Idx.put idx ~key:"sku-1002" "audio|wireless";
  show "wireless after update" (Idx.lookup_keys idx ~index:"tag" ~term:"wireless");
  show "wired after update" (Idx.lookup_keys idx ~index:"tag" ~term:"wired");

  (* Delete: the record and its postings vanish together. *)
  Idx.delete idx "sku-3001";
  show "wireless after delete" (Idx.lookup_keys idx ~index:"tag" ~term:"wireless");

  (* Bulk churn + flush to push everything through compactions. *)
  for i = 0 to 4_999 do
    let cat = [| "audio"; "kitchen"; "outdoor" |].(i mod 3) in
    Idx.put idx ~key:(Printf.sprintf "sku-%05d" i) (cat ^ "|bulk")
  done;
  Db.flush db;
  Printf.printf "bulk 'audio' count: %d\n"
    (List.length (Idx.lookup_keys idx ~index:"category" ~term:"audio"));

  (* Reopen: the index is ordinary durable data. *)
  Db.close db;
  let db2 = Db.open_db ~dev () in
  let idx2 =
    Idx.create ~db:db2
      ~indexes:
        [
          { Idx.index_name = "category"; extract = category };
          { Idx.index_name = "tag"; extract = tags };
        ]
  in
  Printf.printf "after reopen, 'audio' count: %d\n"
    (List.length (Idx.lookup_keys idx2 ~index:"category" ~term:"audio"));
  (* Full consistency audit: every record's terms appear in the index and
     nothing else does. *)
  let records = Idx.scan idx2 ~lo:"" ~hi:None () in
  let expected_wireless =
    List.filter_map
      (fun (k, v) -> if List.mem "wireless" (tags ~key:k ~value:v) then Some k else None)
      records
  in
  let got_wireless = Idx.lookup_keys idx2 ~index:"tag" ~term:"wireless" in
  Printf.printf "consistency audit (wireless): %s\n"
    (if List.sort compare expected_wireless = List.sort compare got_wireless then "OK"
     else "DRIFT!");
  Db.close db2
