(* Tests for lsm_filter: no false negatives anywhere, bounded false
   positives, Monkey allocation shape, range-filter soundness. *)

open Lsm_filter
module Rng = Lsm_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let keys_of n prefix = List.init n (fun i -> Printf.sprintf "%s%06d" prefix i)

(* ---------- Bloom ---------- *)

let test_bloom_no_false_negatives () =
  let keys = keys_of 2000 "key" in
  let f = Bloom.create ~bits_per_key:10.0 ~expected:2000 in
  List.iter (Bloom.add f) keys;
  List.iter (fun k -> check ("present " ^ k) true (Bloom.mem f k)) keys

let test_bloom_fpr_close_to_theory () =
  let n = 5000 in
  let f = Bloom.create ~bits_per_key:10.0 ~expected:n in
  List.iter (Bloom.add f) (keys_of n "in");
  let trials = 20000 in
  let fp = ref 0 in
  for i = 0 to trials - 1 do
    if Bloom.mem f (Printf.sprintf "out%06d" i) then incr fp
  done;
  let fpr = float_of_int !fp /. float_of_int trials in
  let theory = Bloom.theoretical_fpr ~bits_per_key:10.0 in
  check
    (Printf.sprintf "fpr %.4f within 3x of theory %.4f" fpr theory)
    true
    (fpr < 3.0 *. theory +. 0.001)

let test_bloom_zero_bits_always_true () =
  let f = Bloom.create ~bits_per_key:0.0 ~expected:100 in
  check "always true" true (Bloom.mem f "anything");
  check_int "zero bits" 0 (Bloom.bit_count f)

let test_bloom_encode_decode () =
  let f = Bloom.create ~bits_per_key:8.0 ~expected:100 in
  List.iter (Bloom.add f) (keys_of 100 "k");
  let g = Bloom.decode (Bloom.encode f) in
  List.iter (fun k -> check "decoded retains members" true (Bloom.mem g k)) (keys_of 100 "k");
  check_int "same size" (Bloom.bit_count f) (Bloom.bit_count g)

let test_bloom_more_bits_fewer_fps () =
  let count_fps bits =
    let f = Bloom.create ~bits_per_key:bits ~expected:2000 in
    List.iter (Bloom.add f) (keys_of 2000 "in");
    let fp = ref 0 in
    for i = 0 to 9999 do
      if Bloom.mem f (Printf.sprintf "no%06d" i) then incr fp
    done;
    !fp
  in
  let fp4 = count_fps 4.0 and fp12 = count_fps 12.0 in
  check (Printf.sprintf "12 bits (%d fps) beats 4 bits (%d fps)" fp12 fp4) true (fp12 < fp4)

(* ---------- Blocked bloom ---------- *)

let test_blocked_bloom_no_false_negatives () =
  let keys = keys_of 3000 "bk" in
  let f = Blocked_bloom.create ~bits_per_key:10.0 ~expected:3000 in
  List.iter (Blocked_bloom.add f) keys;
  List.iter (fun k -> check "present" true (Blocked_bloom.mem f k)) keys

let test_blocked_bloom_roundtrip () =
  let f = Blocked_bloom.create ~bits_per_key:10.0 ~expected:500 in
  List.iter (Blocked_bloom.add f) (keys_of 500 "k");
  let g = Blocked_bloom.decode (Blocked_bloom.encode f) in
  List.iter (fun k -> check "decoded member" true (Blocked_bloom.mem g k)) (keys_of 500 "k")

let test_blocked_bloom_fpr_reasonable () =
  let f = Blocked_bloom.create ~bits_per_key:10.0 ~expected:5000 in
  List.iter (Blocked_bloom.add f) (keys_of 5000 "in");
  let fp = ref 0 in
  for i = 0 to 9999 do
    if Blocked_bloom.mem f (Printf.sprintf "no%d" i) then incr fp
  done;
  (* Blocked filters trade FPR for locality; accept up to ~5%. *)
  check (Printf.sprintf "fpr %d/10000 below 5%%" !fp) true (!fp < 500)

(* ---------- Cuckoo ---------- *)

let test_cuckoo_membership_and_delete () =
  let f = Cuckoo.create ~expected:1000 () in
  let keys = keys_of 1000 "ck" in
  List.iter (fun k -> check "inserted" true (Cuckoo.add f k)) keys;
  List.iter (fun k -> check "member" true (Cuckoo.mem f k)) keys;
  check_int "count" 1000 (Cuckoo.count f);
  (* The updatable property Chucky relies on: *)
  check "remove" true (Cuckoo.remove f "ck000007");
  check "gone (w.h.p.)" true (Cuckoo.count f = 999);
  check "others kept" true (Cuckoo.mem f "ck000008")

let test_cuckoo_fpr () =
  let f = Cuckoo.create ~fingerprint_bits:12 ~expected:4000 () in
  List.iter (fun k -> ignore (Cuckoo.add f k)) (keys_of 4000 "in");
  let fp = ref 0 in
  for i = 0 to 19999 do
    if Cuckoo.mem f (Printf.sprintf "no%06d" i) then incr fp
  done;
  (* 12-bit fingerprints, 4-way buckets: ~2*4/2^12 ≈ 0.2%; allow 1%. *)
  check (Printf.sprintf "fpr %d/20000 below 1%%" !fp) true (!fp < 200)

let test_cuckoo_roundtrip () =
  let f = Cuckoo.create ~expected:200 () in
  List.iter (fun k -> ignore (Cuckoo.add f k)) (keys_of 200 "k");
  let g = Cuckoo.decode (Cuckoo.encode f) in
  List.iter (fun k -> check "decoded member" true (Cuckoo.mem g k)) (keys_of 200 "k");
  check_int "count preserved" 200 (Cuckoo.count g)

(* ---------- Point_filter wrapper ---------- *)

let test_point_filter_policies () =
  List.iter
    (fun policy ->
      let f = Point_filter.create policy ~expected:300 in
      List.iter (Point_filter.add f) (keys_of 300 "pk");
      List.iter
        (fun k ->
          check (Point_filter.policy_name policy ^ " no false negative") true
            (Point_filter.mem f k))
        (keys_of 300 "pk");
      let g = Point_filter.decode (Point_filter.encode f) in
      List.iter
        (fun k ->
          check (Point_filter.policy_name policy ^ " decode keeps members") true
            (Point_filter.mem g k))
        (keys_of 300 "pk"))
    [
      Point_filter.No_filter;
      Point_filter.Bloom { bits_per_key = 10.0 };
      Point_filter.Blocked_bloom { bits_per_key = 10.0 };
      Point_filter.Cuckoo { fingerprint_bits = 12 };
    ]

(* ---------- Monkey ---------- *)

let test_monkey_respects_budget () =
  let entries = [| 1000; 10_000; 100_000; 1_000_000 |] in
  let budget = 5_000_000.0 in
  let bits = Monkey.allocate ~total_bits:budget ~level_entries:entries in
  let used =
    Array.to_list (Array.mapi (fun i b -> b *. float_of_int entries.(i)) bits)
    |> List.fold_left ( +. ) 0.0
  in
  check (Printf.sprintf "uses %.0f <= budget" used) true (used <= budget *. 1.01)

let test_monkey_shallow_levels_get_more_bits () =
  let entries = [| 1000; 10_000; 100_000; 1_000_000 |] in
  let bits = Monkey.allocate ~total_bits:2_000_000.0 ~level_entries:entries in
  check "L0 >= L1" true (bits.(0) >= bits.(1));
  check "L1 >= L2" true (bits.(1) >= bits.(2));
  check "L2 >= L3" true (bits.(2) >= bits.(3))

let test_monkey_beats_uniform_on_expected_probes () =
  let entries = [| 1000; 10_000; 100_000; 1_000_000 |] in
  let budget = 2_000_000.0 in
  let probes alloc =
    Monkey.expected_probes ~fprs:(Array.map Monkey.fpr_of_bits alloc)
  in
  let monkey = probes (Monkey.allocate ~total_bits:budget ~level_entries:entries) in
  let uniform = probes (Monkey.uniform ~total_bits:budget ~level_entries:entries) in
  check (Printf.sprintf "monkey %.4f <= uniform %.4f" monkey uniform) true (monkey <= uniform)

let test_monkey_zero_budget () =
  let bits = Monkey.allocate ~total_bits:0.0 ~level_entries:[| 10; 20 |] in
  Array.iter (fun b -> check "no bits" true (b = 0.0)) bits

let test_monkey_skips_empty_levels () =
  let bits = Monkey.allocate ~total_bits:1000.0 ~level_entries:[| 0; 50; 0 |] in
  check "empty levels get zero" true (bits.(0) = 0.0 && bits.(2) = 0.0);
  check "non-empty level gets bits" true (bits.(1) > 0.0)

(* ---------- Range filters ---------- *)

let int_key i = Printf.sprintf "%08d" i
let sparse_keys = List.init 500 (fun i -> int_key (i * 100))

let range_policies =
  [
    ("prefix", Range_filter.Prefix { prefix_len = 5; bits_per_key = 12.0 });
    ("surf", Range_filter.Surf { max_prefix = 16; suffix_len = 2 });
    ("rosetta", Range_filter.Rosetta { levels = 64; bits_per_key = 12.0 });
  ]

let test_range_filters_no_false_negatives () =
  List.iter
    (fun (nm, policy) ->
      let f = Range_filter.build policy ~keys:sparse_keys in
      (* Every window around an existing key must report overlap. *)
      List.iter
        (fun i ->
          let lo = int_key ((i * 100) - 5) and hi = int_key ((i * 100) + 5) in
          check
            (Printf.sprintf "%s: window over key %d" nm (i * 100))
            true
            (Range_filter.may_overlap f ~lo ~hi:(Some hi)))
        [ 0; 1; 7; 100; 499 ])
    range_policies

let test_range_filters_point_windows () =
  List.iter
    (fun (nm, policy) ->
      let f = Range_filter.build policy ~keys:sparse_keys in
      (* exact singleton range [k, k+1) on a present key *)
      let k = int_key 300 in
      check (nm ^ ": singleton present") true
        (Range_filter.may_overlap f ~lo:k ~hi:(Some (k ^ "\x00"))))
    range_policies

let test_surf_rejects_empty_gaps () =
  let f = Range_filter.build (Range_filter.Surf { max_prefix = 16; suffix_len = 2 }) ~keys:sparse_keys in
  (* A short window in the middle of a gap: SuRF with full-ish prefixes
     should reject most of these. *)
  let rejected = ref 0 in
  for i = 0 to 99 do
    let base = (i * 100) + 40 in
    if not (Range_filter.may_overlap f ~lo:(int_key base) ~hi:(Some (int_key (base + 5)))) then
      incr rejected
  done;
  check (Printf.sprintf "rejects %d/100 short gap windows" !rejected) true (!rejected > 50)

let test_rosetta_rejects_short_gaps () =
  let f =
    Range_filter.build (Range_filter.Rosetta { levels = 64; bits_per_key = 14.0 })
      ~keys:sparse_keys
  in
  let rejected = ref 0 in
  for i = 0 to 99 do
    let base = (i * 100) + 40 in
    if not (Range_filter.may_overlap f ~lo:(int_key base) ~hi:(Some (int_key (base + 3)))) then
      incr rejected
  done;
  check (Printf.sprintf "rejects %d/100 short gap windows" !rejected) true (!rejected > 50)

let test_range_filter_roundtrip () =
  List.iter
    (fun (nm, policy) ->
      let f = Range_filter.build policy ~keys:sparse_keys in
      let g = Range_filter.decode (Range_filter.encode f) in
      let lo = int_key 995 and hi = int_key 1005 in
      Alcotest.(check bool)
        (nm ^ ": decode preserves answer")
        (Range_filter.may_overlap f ~lo ~hi:(Some hi))
        (Range_filter.may_overlap g ~lo ~hi:(Some hi)))
    range_policies

let prop_surf_sound =
  QCheck.Test.make ~name:"surf never false-negative" ~count:200
    QCheck.(pair (list (int_bound 5000)) (pair (int_bound 5000) (int_bound 200)))
    (fun (ks, (lo, width)) ->
      let keys = List.map int_key ks in
      let f = Surf.build ~keys () in
      let hi = lo + 1 + width in
      let answer = Surf.may_overlap f ~lo:(int_key lo) ~hi:(Some (int_key hi)) in
      let truth = List.exists (fun k -> k >= lo && k < hi) ks in
      (not truth) || answer)

let prop_rosetta_sound =
  QCheck.Test.make ~name:"rosetta never false-negative" ~count:100
    QCheck.(pair (list (int_bound 5000)) (pair (int_bound 5000) (int_bound 50)))
    (fun (ks, (lo, width)) ->
      let keys = List.map int_key ks in
      let f = Rosetta.build ~keys () in
      let hi = lo + 1 + width in
      let answer = Rosetta.may_overlap f ~lo:(int_key lo) ~hi:(Some (int_key hi)) in
      let truth = List.exists (fun k -> k >= lo && k < hi) ks in
      (not truth) || answer)

let prop_prefix_bloom_sound =
  QCheck.Test.make ~name:"prefix bloom never false-negative" ~count:200
    QCheck.(pair (list (int_bound 5000)) (pair (int_bound 5000) (int_bound 200)))
    (fun (ks, (lo, width)) ->
      let keys = List.map int_key ks in
      let f = Prefix_bloom.build ~prefix_len:6 ~bits_per_key:12.0 ~keys in
      let hi = lo + 1 + width in
      let answer = Prefix_bloom.may_overlap f ~lo:(int_key lo) ~hi:(Some (int_key hi)) in
      let truth = List.exists (fun k -> k >= lo && k < hi) ks in
      (not truth) || answer)

let qt t =
  let name, _speed, fn = QCheck_alcotest.to_alcotest t in
  (name, `Quick, fn)

let suite =
  [
    ("bloom no false negatives", `Quick, test_bloom_no_false_negatives);
    ("bloom fpr near theory", `Quick, test_bloom_fpr_close_to_theory);
    ("bloom zero bits", `Quick, test_bloom_zero_bits_always_true);
    ("bloom encode/decode", `Quick, test_bloom_encode_decode);
    ("bloom monotone in bits", `Quick, test_bloom_more_bits_fewer_fps);
    ("blocked bloom no false negatives", `Quick, test_blocked_bloom_no_false_negatives);
    ("blocked bloom roundtrip", `Quick, test_blocked_bloom_roundtrip);
    ("blocked bloom fpr", `Quick, test_blocked_bloom_fpr_reasonable);
    ("cuckoo membership & delete", `Quick, test_cuckoo_membership_and_delete);
    ("cuckoo fpr", `Quick, test_cuckoo_fpr);
    ("cuckoo roundtrip", `Quick, test_cuckoo_roundtrip);
    ("point filter policies", `Quick, test_point_filter_policies);
    ("monkey respects budget", `Quick, test_monkey_respects_budget);
    ("monkey favors shallow levels", `Quick, test_monkey_shallow_levels_get_more_bits);
    ("monkey beats uniform", `Quick, test_monkey_beats_uniform_on_expected_probes);
    ("monkey zero budget", `Quick, test_monkey_zero_budget);
    ("monkey skips empty levels", `Quick, test_monkey_skips_empty_levels);
    ("range filters no false negatives", `Quick, test_range_filters_no_false_negatives);
    ("range filters point windows", `Quick, test_range_filters_point_windows);
    ("surf rejects gaps", `Quick, test_surf_rejects_empty_gaps);
    ("rosetta rejects short gaps", `Quick, test_rosetta_rejects_short_gaps);
    ("range filter roundtrip", `Quick, test_range_filter_roundtrip);
    qt prop_surf_sound;
    qt prop_rosetta_sound;
    qt prop_prefix_bloom_sound;
  ]
