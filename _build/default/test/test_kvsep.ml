(* Tests for lsm_kvsep: pointer roundtrips, inline threshold, GC, and the
   WiscKey write-amp claim on this substrate. *)

module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats
open Lsm_kvsep

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_opt = Alcotest.(check (option string))

let small_config =
  {
    Lsm_core.Config.default with
    write_buffer_size = 8 * 1024;
    level1_capacity = 32 * 1024;
    target_file_size = 16 * 1024;
    block_size = 1024;
  }

let fresh ?(value_threshold = 64) () =
  let dev = Device.in_memory () in
  (dev, Kv_db.open_db ~config:small_config ~value_threshold ~segment_bytes:(32 * 1024) ~dev ())

let key i = Printf.sprintf "key%06d" i
let big i = Printf.sprintf "%06d%s" i (String.make 200 'V')
let small i = Printf.sprintf "s%d" i

(* ---------- value log ---------- *)

let test_vlog_roundtrip () =
  let dev = Device.in_memory () in
  let log = Value_log.open_log ~segment_bytes:1024 dev in
  let p1 = Value_log.append log ~key:"a" ~value:"hello" in
  let p2 = Value_log.append log ~key:"b" ~value:(String.make 100 'x') in
  Alcotest.(check (pair string string)) "p1" ("a", "hello")
    (Value_log.read log ~cls:Io_stats.C_user_read p1);
  Alcotest.(check (pair string string)) "p2" ("b", String.make 100 'x')
    (Value_log.read log ~cls:Io_stats.C_user_read p2);
  Value_log.close log

let test_vlog_rotation () =
  let dev = Device.in_memory () in
  let log = Value_log.open_log ~segment_bytes:256 dev in
  for i = 0 to 19 do
    ignore (Value_log.append log ~key:(key i) ~value:(String.make 100 'v'))
  done;
  check "rotated into sealed segments" true (List.length (Value_log.segments log) > 2);
  Value_log.close log

let test_vlog_pointer_codec () =
  let p = { Value_log.segment = 42; offset = 12345; length = 678 } in
  check "pointer roundtrip" true (Value_log.decode_pointer (Value_log.encode_pointer p) = p)

let test_vlog_fold_segment () =
  let dev = Device.in_memory () in
  let log = Value_log.open_log ~segment_bytes:128 dev in
  for i = 0 to 9 do
    ignore (Value_log.append log ~key:(key i) ~value:(String.make 50 'v'))
  done;
  match Value_log.segments log with
  | seg :: _ ->
    let n =
      Value_log.fold_segment log ~cls:Io_stats.C_gc seg ~init:0 ~f:(fun acc _ _ _ -> acc + 1)
    in
    check "fold sees records" true (n >= 1)
  | [] -> Alcotest.fail "expected sealed segments"

(* ---------- kv db ---------- *)

let test_kvdb_large_values_roundtrip () =
  let _, db = fresh () in
  for i = 0 to 199 do
    Kv_db.put db ~key:(key i) (big i)
  done;
  Kv_db.flush db;
  for i = 0 to 199 do
    if Kv_db.get db (key i) <> Some (big i) then Alcotest.failf "value %d wrong" i
  done;
  Kv_db.close db

let test_kvdb_small_values_inline () =
  let dev, db = fresh ~value_threshold:64 () in
  for i = 0 to 399 do
    Kv_db.put db ~key:(key i) (small i)
  done;
  check_opt "inline value" (Some (small 7)) (Kv_db.get db (key 7));
  (* No value-log segments should have been created beyond the empty head. *)
  let vlog_bytes = Value_log.total_bytes (Kv_db.value_log db) in
  check_int "nothing in the value log" 0 vlog_bytes;
  ignore dev;
  Kv_db.close db

let test_kvdb_update_and_delete () =
  let _, db = fresh () in
  Kv_db.put db ~key:"k" (String.make 100 'a');
  Kv_db.put db ~key:"k" (String.make 100 'b');
  check_opt "update wins" (Some (String.make 100 'b')) (Kv_db.get db "k");
  Kv_db.delete db "k";
  check_opt "deleted" None (Kv_db.get db "k");
  Kv_db.close db

let test_kvdb_scan_resolves_pointers () =
  let _, db = fresh () in
  for i = 0 to 49 do
    Kv_db.put db ~key:(key i) (big i)
  done;
  Kv_db.flush db;
  let got = Kv_db.scan db ~lo:(key 10) ~hi:(Some (key 13)) () in
  Alcotest.(check (list (pair string string)))
    "resolved scan"
    [ (key 10, big 10); (key 11, big 11); (key 12, big 12) ]
    got;
  Kv_db.close db

let test_gc_reclaims_dead_space () =
  let _, db = fresh () in
  (* Write, then overwrite everything: first-generation segments become
     all-dead. *)
  for i = 0 to 199 do
    Kv_db.put db ~key:(key i) (big i)
  done;
  for i = 0 to 199 do
    Kv_db.put db ~key:(key i) (big (i + 1000))
  done;
  Kv_db.flush db;
  let before = Value_log.total_bytes (Kv_db.value_log db) in
  let r = Kv_db.gc db ~max_segments:4 () in
  let after = Value_log.total_bytes (Kv_db.value_log db) in
  check "gc dropped segments" true (r.Kv_db.segments_dropped > 0);
  check "dead records dropped" true (r.Kv_db.dead_dropped > 0);
  check (Printf.sprintf "space reclaimed %d -> %d" before after) true (after < before);
  (* Correctness preserved. *)
  for i = 0 to 199 do
    if Kv_db.get db (key i) <> Some (big (i + 1000)) then Alcotest.failf "key %d lost by gc" i
  done;
  Kv_db.close db

let test_gc_preserves_live_values () =
  let _, db = fresh () in
  (* Enough data to rotate past the 32 KiB segment threshold, so sealed
     (GC-eligible) segments exist. *)
  for i = 0 to 399 do
    Kv_db.put db ~key:(key i) (big i)
  done;
  Kv_db.flush db;
  check "sealed segments exist" true (Value_log.segments (Kv_db.value_log db) <> []);
  let r = Kv_db.gc db ~max_segments:2 () in
  check "live values moved, not lost" true (r.Kv_db.live_moved > 0);
  for i = 0 to 399 do
    if Kv_db.get db (key i) <> Some (big i) then Alcotest.failf "key %d lost" i
  done;
  Kv_db.close db

let test_wisckey_wa_beats_standard_for_big_values () =
  let ingest_wa mk_store =
    let dev = Device.in_memory () in
    let store = mk_store dev in
    for i = 0 to 1999 do
      store.Lsm_workload.Kv_store.put ~key:(key (i mod 500)) (String.make 512 'v')
    done;
    store.Lsm_workload.Kv_store.flush ();
    let io = store.Lsm_workload.Kv_store.io_stats () in
    let flushc = Io_stats.bytes_written ~cls:Io_stats.C_flush io in
    let compc = Io_stats.bytes_written ~cls:Io_stats.C_compaction_write io in
    let user = store.Lsm_workload.Kv_store.user_bytes () in
    float_of_int (flushc + compc) /. float_of_int user
  in
  let standard =
    ingest_wa (fun dev ->
        Lsm_workload.Kv_store.of_db (Lsm_core.Db.open_db ~config:small_config ~dev ()))
  in
  let wisckey =
    ingest_wa (fun dev ->
        Kv_db.to_kv_store
          (Kv_db.open_db ~config:small_config ~value_threshold:64
             ~segment_bytes:(64 * 1024) ~dev ()))
  in
  check
    (Printf.sprintf "wisckey tree WA %.2f < standard %.2f" wisckey standard)
    true (wisckey < standard /. 2.0)

let suite =
  [
    ("value log roundtrip", `Quick, test_vlog_roundtrip);
    ("value log rotation", `Quick, test_vlog_rotation);
    ("pointer codec", `Quick, test_vlog_pointer_codec);
    ("value log fold", `Quick, test_vlog_fold_segment);
    ("large values roundtrip", `Quick, test_kvdb_large_values_roundtrip);
    ("small values stay inline", `Quick, test_kvdb_small_values_inline);
    ("update and delete", `Quick, test_kvdb_update_and_delete);
    ("scan resolves pointers", `Quick, test_kvdb_scan_resolves_pointers);
    ("gc reclaims dead space", `Quick, test_gc_reclaims_dead_space);
    ("gc preserves live values", `Quick, test_gc_preserves_live_values);
    ("wisckey cuts tree WA for big values", `Quick, test_wisckey_wa_beats_standard_for_big_values);
  ]
