test/test_frag.ml: Alcotest Frag_db Hashtbl List Lsm_compaction Lsm_core Lsm_frag Lsm_storage Lsm_util Option Printf String
