test/test_util.ml: Alcotest Array Buffer Bytes Char Codec Comparator Crc32c Fun Gen Hashing Hashtbl Histogram Int64 List Lsm_util Option Printf QCheck QCheck_alcotest Rng String Zipf
