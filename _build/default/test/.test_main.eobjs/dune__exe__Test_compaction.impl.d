test/test_compaction.ml: Alcotest Lsm_compaction Lsm_sstable Lsm_util Printf String
