test/test_workload.ml: Alcotest Kv_store List Lsm_core Lsm_storage Lsm_workload Printf Runner Spec String
