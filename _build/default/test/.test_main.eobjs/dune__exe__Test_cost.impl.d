test/test_cost.ml: Alcotest List Lsm_cost Model Navigator Printf Robust
