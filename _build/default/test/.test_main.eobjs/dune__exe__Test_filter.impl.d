test/test_filter.ml: Alcotest Array Blocked_bloom Bloom Cuckoo List Lsm_filter Lsm_util Monkey Point_filter Prefix_bloom Printf QCheck QCheck_alcotest Range_filter Rosetta Surf
