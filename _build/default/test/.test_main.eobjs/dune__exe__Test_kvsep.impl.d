test/test_kvsep.ml: Alcotest Kv_db List Lsm_core Lsm_kvsep Lsm_storage Lsm_workload Printf String Value_log
