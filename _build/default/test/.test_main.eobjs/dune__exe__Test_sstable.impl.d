test/test_sstable.ml: Alcotest Block Buffer Bytes Char Gen List Lsm_record Lsm_sstable Lsm_storage Lsm_util Printf QCheck QCheck_alcotest Sstable String Table_cache Table_meta
