test/test_internals.ml: Alcotest Buffer Gen List Lsm_core Lsm_record Lsm_sstable Lsm_storage Lsm_util Manifest Merge_filter Option Printf QCheck QCheck_alcotest Version
