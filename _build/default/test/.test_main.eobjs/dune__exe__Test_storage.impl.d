test/test_storage.ml: Alcotest Block_cache Bytes Device Filename Gen Io_stats List Lsm_record Lsm_storage QCheck QCheck_alcotest String Wal
