test/test_memtable.ml: Alcotest Gen Hashtbl List Lsm_memtable Lsm_record Lsm_util Memtable Option Printf QCheck QCheck_alcotest String
