test/test_record.ml: Alcotest Buffer Entry Iter List Lsm_record Lsm_util QCheck QCheck_alcotest String
