(* Engine tests: end-to-end behaviour of the LSM tree across layouts,
   model-based agreement, snapshots, deletes, recovery, invariants. *)

module Entry = Lsm_record.Entry
module Device = Lsm_storage.Device
module Io_stats = Lsm_storage.Io_stats
module Memtable = Lsm_memtable.Memtable
module Policy = Lsm_compaction.Policy
open Lsm_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_opt = Alcotest.(check (option string))

(* Small-capacity config so flushes/compactions actually trigger in tests. *)
let small_config ?(compaction = Policy.default) () =
  {
    Config.default with
    write_buffer_size = 8 * 1024;
    level1_capacity = 32 * 1024;
    target_file_size = 16 * 1024;
    block_size = 1024;
    block_cache_bytes = 256 * 1024;
    compaction = { compaction with Policy.size_ratio = 4; level0_limit = 2 };
    paranoid_checks = true;
  }

let fresh ?config () =
  let dev = Device.in_memory () in
  let config = Option.value ~default:(small_config ()) config in
  (dev, Db.open_db ~config ~dev ())

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%06d-%s" i (String.make 20 'x')

(* ---------- basic operations ---------- *)

let test_put_get_small () =
  let _, db = fresh () in
  Db.put db ~key:"alpha" "1";
  Db.put db ~key:"beta" "2";
  check_opt "alpha" (Some "1") (Db.get db "alpha");
  check_opt "beta" (Some "2") (Db.get db "beta");
  check_opt "missing" None (Db.get db "gamma");
  Db.close db

let test_update_overwrites () =
  let _, db = fresh () in
  Db.put db ~key:"k" "old";
  Db.put db ~key:"k" "new";
  check_opt "newest wins" (Some "new") (Db.get db "k");
  Db.close db

let test_delete_hides () =
  let _, db = fresh () in
  Db.put db ~key:"k" "v";
  Db.delete db "k";
  check_opt "deleted" None (Db.get db "k");
  Db.put db ~key:"k" "back";
  check_opt "reinserted" (Some "back") (Db.get db "k");
  Db.close db

let test_get_across_flush () =
  let _, db = fresh () in
  for i = 0 to 999 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  check "flushed to disk" true (Version.file_count (Db.version db) > 0);
  for i = 0 to 999 do
    if Db.get db (key i) <> Some (value i) then
      Alcotest.failf "key %d wrong after flush" i
  done;
  check_opt "missing still missing" None (Db.get db "nope");
  Db.close db

let test_updates_across_levels () =
  let _, db = fresh () in
  (* Three generations of the same keys, flushed in between: reads must
     see the newest (LSM invariant §2.1.1.E). *)
  for gen = 1 to 3 do
    for i = 0 to 299 do
      Db.put db ~key:(key i) (Printf.sprintf "gen%d-%d" gen i)
    done;
    Db.flush db
  done;
  for i = 0 to 299 do
    if Db.get db (key i) <> Some (Printf.sprintf "gen3-%d" i) then
      Alcotest.failf "key %d resurrected an old version" i
  done;
  Db.close db

let test_scan_basic () =
  let _, db = fresh () in
  List.iter (fun k -> Db.put db ~key:k k) [ "a"; "b"; "c"; "d"; "e" ];
  Db.delete db "c";
  let got = Db.scan db ~lo:"b" ~hi:(Some "e") () in
  Alcotest.(check (list (pair string string)))
    "range excludes deleted and hi"
    [ ("b", "b"); ("d", "d") ]
    got;
  Db.close db

let test_scan_across_flush_and_memtable () =
  let _, db = fresh () in
  for i = 0 to 499 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  (* overwrite a few in the memtable *)
  Db.put db ~key:(key 100) "fresh100";
  Db.delete db (key 101);
  let got = Db.scan db ~lo:(key 99) ~hi:(Some (key 103)) () in
  Alcotest.(check (list (pair string string)))
    "merged view"
    [ (key 99, value 99); (key 100, "fresh100"); (key 102, value 102) ]
    got;
  Db.close db

let test_scan_limit () =
  let _, db = fresh () in
  for i = 0 to 99 do
    Db.put db ~key:(key i) "v"
  done;
  check_int "limit" 7 (List.length (Db.scan db ~limit:7 ~lo:"" ~hi:None ()));
  Db.close db

let test_empty_db () =
  let _, db = fresh () in
  check_opt "get on empty" None (Db.get db "k");
  check_int "scan on empty" 0 (List.length (Db.scan db ~lo:"" ~hi:None ()));
  Db.flush db (* flush of nothing is fine *);
  Db.close db

(* ---------- model-based agreement across layouts ---------- *)

let layouts =
  [
    ("leveled", Policy.leveled ~size_ratio:4 ());
    ("tiered", Policy.tiered ~size_ratio:4 ());
    ("lazy-leveled", Policy.lazy_leveled ~size_ratio:4 ());
    ( "hybrid",
      { (Policy.leveled ~size_ratio:4 ()) with
        Policy.layout = Policy.Hybrid { tiered_levels = 2; runs = 4 } } );
    ( "whole-level",
      { (Policy.leveled ~size_ratio:4 ()) with Policy.granularity = Policy.Whole_level } );
    ( "run-caps",
      { (Policy.leveled ~size_ratio:4 ()) with
        Policy.layout = Policy.Run_caps [| 3; 2; 1 |] } );
  ]

let run_model_workload db n seed =
  (* Interleaved puts/updates/deletes over a small key space, then verify
     every key against a Map model, via both get and scan. *)
  let rng = Lsm_util.Rng.create seed in
  let model = Hashtbl.create 256 in
  let keyspace = 400 in
  for _ = 1 to n do
    let k = key (Lsm_util.Rng.int rng keyspace) in
    if Lsm_util.Rng.bernoulli rng 0.25 then begin
      Db.delete db k;
      Hashtbl.replace model k None
    end
    else begin
      let v = Printf.sprintf "v%d" (Lsm_util.Rng.int rng 1000000) in
      Db.put db ~key:k v;
      Hashtbl.replace model k (Some v)
    end
  done;
  (* point gets *)
  for i = 0 to keyspace - 1 do
    let k = key i in
    let expected = Option.join (Hashtbl.find_opt model k) in
    let got = Db.get db k in
    if got <> expected then
      Alcotest.failf "get %s: got %s, expected %s" k
        (Option.value ~default:"<none>" got)
        (Option.value ~default:"<none>" expected)
  done;
  (* full scan *)
  let expected_pairs =
    Hashtbl.fold (fun k v acc -> match v with Some v -> (k, v) :: acc | None -> acc) model []
    |> List.sort compare
  in
  let got_pairs = Db.scan db ~lo:"" ~hi:None () in
  if got_pairs <> expected_pairs then begin
    Alcotest.failf "scan mismatch: got %d pairs, expected %d"
      (List.length got_pairs) (List.length expected_pairs)
  end

let test_model_layout (name, compaction) =
  ( Printf.sprintf "model agreement (%s)" name,
    `Quick,
    fun () ->
      let _, db = fresh ~config:(small_config ~compaction ()) () in
      run_model_workload db 3000 42;
      (match Db.check_invariants db with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invariant: %s" e);
      check (name ^ ": compactions happened") true ((Db.stats db).Stats.compactions > 0);
      Db.close db )

let test_model_memtables kind =
  ( Printf.sprintf "model agreement (%s buffer)" (Memtable.kind_name kind),
    `Quick,
    fun () ->
      let config = { (small_config ()) with Config.memtable = kind } in
      let _, db = fresh ~config () in
      run_model_workload db 1500 7;
      Db.close db )

(* ---------- layout shape assertions ---------- *)

let test_leveling_single_run_per_level () =
  let _, db = fresh ~config:(small_config ~compaction:(Policy.leveled ~size_ratio:4 ()) ()) () in
  for i = 0 to 4999 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  let v = Db.version db in
  for l = 1 to Version.max_levels - 1 do
    check (Printf.sprintf "level %d has <= 1 run" l) true (Version.run_count v l <= 1)
  done;
  Db.close db

let test_tiering_accumulates_runs () =
  let _, db = fresh ~config:(small_config ~compaction:(Policy.tiered ~size_ratio:4 ()) ()) () in
  for i = 0 to 4999 do
    Db.put db ~key:(key (i mod 1000)) (value i)
  done;
  Db.flush db;
  let v = Db.version db in
  let max_runs = ref 0 in
  for l = 1 to Version.max_levels - 1 do
    max_runs := max !max_runs (Version.run_count v l);
    check (Printf.sprintf "level %d under cap" l) true (Version.run_count v l <= 4)
  done;
  check "some level holds multiple runs" true (!max_runs > 1);
  Db.close db

let test_lazy_leveling_last_level_single_run () =
  let _, db =
    fresh ~config:(small_config ~compaction:(Policy.lazy_leveled ~size_ratio:4 ()) ()) ()
  in
  for i = 0 to 7999 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  let v = Db.version db in
  let last = Version.last_level v in
  check "tree has depth" true (last >= 2);
  check_int "last level is leveled" 1 (Version.run_count v last);
  Db.close db

(* ---------- write amplification ordering (the core tradeoff) ---------- *)

let ingest_wa compaction =
  let dev = Device.in_memory () in
  let db = Db.open_db ~config:(small_config ~compaction ()) ~dev () in
  for i = 0 to 14999 do
    Db.put db ~key:(key (i mod 3000)) (value i)
  done;
  Db.flush db;
  let wa = Db.write_amplification db in
  Db.close db;
  wa

let test_tiering_writes_less_than_leveling () =
  let wa_level = ingest_wa (Policy.leveled ~size_ratio:4 ()) in
  let wa_tier = ingest_wa (Policy.tiered ~size_ratio:4 ()) in
  check
    (Printf.sprintf "tiering WA %.2f < leveling WA %.2f" wa_tier wa_level)
    true (wa_tier < wa_level)

let test_leveling_reads_fewer_runs_than_tiering () =
  let probes compaction =
    let dev = Device.in_memory () in
    let db = Db.open_db ~config:(small_config ~compaction ()) ~dev () in
    for i = 0 to 9999 do
      Db.put db ~key:(key (i mod 2000)) (value i)
    done;
    Db.flush db;
    let v = Db.version db in
    let runs = ref 0 in
    for l = 0 to Version.max_levels - 1 do
      runs := !runs + Version.run_count v l
    done;
    Db.close db;
    !runs
  in
  let r_level = probes (Policy.leveled ~size_ratio:4 ()) in
  let r_tier = probes (Policy.tiered ~size_ratio:4 ()) in
  check
    (Printf.sprintf "leveling %d runs <= tiering %d runs" r_level r_tier)
    true (r_level <= r_tier)

(* ---------- snapshots ---------- *)

let test_snapshot_isolation () =
  let _, db = fresh () in
  Db.put db ~key:"k" "v1";
  let snap = Db.snapshot db in
  Db.put db ~key:"k" "v2";
  Db.delete db "other";
  check_opt "snapshot sees v1" (Some "v1") (Db.get db ~snapshot:snap "k");
  check_opt "latest sees v2" (Some "v2") (Db.get db "k");
  Db.release db snap;
  Db.close db

let test_snapshot_survives_flush_and_compaction () =
  let _, db = fresh () in
  Db.put db ~key:"stable" "original";
  let snap = Db.snapshot db in
  for i = 0 to 4999 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.put db ~key:"stable" "changed";
  Db.major_compact db;
  check_opt "snapshot pierces compaction" (Some "original") (Db.get db ~snapshot:snap "stable");
  check_opt "latest" (Some "changed") (Db.get db "stable");
  Db.release db snap;
  (* After release, another major compaction may GC the old version. *)
  Db.major_compact db;
  check_opt "still latest" (Some "changed") (Db.get db "stable");
  Db.close db

let test_snapshot_scan () =
  let _, db = fresh () in
  Db.put db ~key:"a" "1";
  Db.put db ~key:"b" "2";
  let snap = Db.snapshot db in
  Db.delete db "a";
  Db.put db ~key:"c" "3";
  let got = Db.scan db ~snapshot:snap ~lo:"" ~hi:None () in
  Alcotest.(check (list (pair string string))) "snapshot view" [ ("a", "1"); ("b", "2") ] got;
  Db.release db snap;
  Db.close db

(* ---------- tombstone GC ---------- *)

let test_tombstones_purged_at_bottom () =
  let _, db = fresh () in
  for i = 0 to 999 do
    Db.put db ~key:(key i) (value i)
  done;
  for i = 0 to 999 do
    Db.delete db (key i)
  done;
  Db.major_compact db;
  Db.major_compact db;
  let v = Db.version db in
  let files = Version.all_files v in
  let tombs =
    List.fold_left (fun a (f : Lsm_sstable.Table_meta.t) -> a + f.point_tombstones) 0 files
  in
  check_int "all tombstones persisted away" 0 tombs;
  check_int "no visible keys" 0 (List.length (Db.scan db ~lo:"" ~hi:None ()));
  Db.close db

let test_single_delete_cancels () =
  let _, db = fresh () in
  Db.put db ~key:"once" "v";
  Db.single_delete db "once";
  check_opt "hidden" None (Db.get db "once");
  Db.major_compact db;
  check_opt "still hidden after compaction" None (Db.get db "once");
  Db.close db

(* ---------- range deletes ---------- *)

let test_range_delete_memtable () =
  let _, db = fresh () in
  List.iter (fun k -> Db.put db ~key:k "v") [ "a"; "b"; "c"; "d"; "e" ];
  Db.range_delete db ~lo:"b" ~hi:"d";
  check_opt "a survives" (Some "v") (Db.get db "a");
  check_opt "b dead" None (Db.get db "b");
  check_opt "c dead" None (Db.get db "c");
  check_opt "d survives (exclusive)" (Some "v") (Db.get db "d");
  let got = List.map fst (Db.scan db ~lo:"" ~hi:None ()) in
  Alcotest.(check (list string)) "scan skips range" [ "a"; "d"; "e" ] got;
  Db.close db

let test_range_delete_across_flush () =
  let _, db = fresh () in
  for i = 0 to 299 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  Db.range_delete db ~lo:(key 100) ~hi:(key 200);
  Db.flush db;
  check_opt "inside dead" None (Db.get db (key 150));
  check_opt "below live" (Some (value 99)) (Db.get db (key 99));
  check_opt "above live" (Some (value 200)) (Db.get db (key 200));
  check_int "scan count" 200 (List.length (Db.scan db ~lo:"" ~hi:None ()));
  (* compaction applies the range tombstone physically *)
  Db.major_compact db;
  check_opt "still dead after compaction" None (Db.get db (key 150));
  check_int "scan count after compaction" 200 (List.length (Db.scan db ~lo:"" ~hi:None ()));
  Db.close db

let test_range_delete_then_reinsert () =
  let _, db = fresh () in
  Db.put db ~key:"m" "old";
  Db.range_delete db ~lo:"a" ~hi:"z";
  Db.put db ~key:"m" "new";
  check_opt "reinsert after range delete" (Some "new") (Db.get db "m");
  Db.major_compact db;
  check_opt "survives compaction" (Some "new") (Db.get db "m");
  Db.close db

(* ---------- merge operator ---------- *)

let test_merge_operator_counter () =
  let plus key base operands =
    ignore key;
    let start = match base with Some b -> int_of_string b | None -> 0 in
    string_of_int (List.fold_left (fun a op -> a + int_of_string op) start operands)
  in
  let config = { (small_config ()) with Config.merge_operator = Some plus } in
  let _, db = fresh ~config () in
  Db.put db ~key:"ctr" "10";
  Db.merge db ~key:"ctr" "5";
  Db.merge db ~key:"ctr" "7";
  check_opt "10+5+7" (Some "22") (Db.get db "ctr");
  Db.flush db;
  check_opt "after flush" (Some "22") (Db.get db "ctr");
  Db.merge db ~key:"fresh" "3";
  check_opt "merge without base" (Some "3") (Db.get db "fresh");
  (* merges visible through scan too *)
  let got = Db.scan db ~lo:"ctr" ~hi:(Some "ctr\x00") () in
  Alcotest.(check (list (pair string string))) "scan resolves merge" [ ("ctr", "22") ] got;
  Db.close db

let test_merge_without_operator_acts_as_put () =
  let _, db = fresh () in
  Db.put db ~key:"k" "base";
  Db.merge db ~key:"k" "operand";
  check_opt "newest operand wins" (Some "operand") (Db.get db "k");
  Db.close db

(* ---------- recovery ---------- *)

let test_recovery_from_wal () =
  let dev = Device.in_memory () in
  let config = small_config () in
  let db = Db.open_db ~config ~dev () in
  Db.put db ~key:"a" "1";
  Db.put db ~key:"b" "2";
  Db.delete db "a";
  Db.close db;
  let db2 = Db.open_db ~config ~dev () in
  check_opt "deleted stays deleted" None (Db.get db2 "a");
  check_opt "put recovered" (Some "2") (Db.get db2 "b");
  Db.close db2

let test_recovery_after_crash () =
  let dev = Device.in_memory () in
  let config = { (small_config ()) with Config.wal_sync_every_write = true } in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to 2999 do
    Db.put db ~key:(key i) (value i)
  done;
  (* No clean close: power failure. *)
  Device.crash dev;
  let db2 = Db.open_db ~config ~dev () in
  for i = 0 to 2999 do
    if Db.get db2 (key i) <> Some (value i) then Alcotest.failf "lost key %d after crash" i
  done;
  Db.close db2

let test_recovery_preserves_levels () =
  let dev = Device.in_memory () in
  let config = small_config () in
  let db = Db.open_db ~config ~dev () in
  for i = 0 to 4999 do
    Db.put db ~key:(key i) (value i)
  done;
  Db.flush db;
  let files_before = Version.file_count (Db.version db) in
  check "built a tree" true (files_before > 1);
  Db.close db;
  let db2 = Db.open_db ~config ~dev () in
  check_int "same files after recovery" files_before (Version.file_count (Db.version db2));
  for i = 0 to 4999 do
    if Db.get db2 (key i) <> Some (value i) then Alcotest.failf "lost key %d" i
  done;
  Db.close db2

let test_unsynced_tail_lost_but_prefix_kept () =
  let dev = Device.in_memory () in
  (* No per-write sync: batches become durable only via explicit syncs. *)
  let config = { (small_config ()) with Config.wal_sync_every_write = false } in
  let db = Db.open_db ~config ~dev () in
  Db.put db ~key:"durable" "yes";
  (* Force the WAL to sync by flushing — flush closes (and syncs) the wal. *)
  Db.flush db;
  Db.put db ~key:"volatile" "gone";
  Device.crash dev;
  let db2 = Db.open_db ~config ~dev () in
  check_opt "synced data survives" (Some "yes") (Db.get db2 "durable");
  check_opt "unsynced tail lost" None (Db.get db2 "volatile");
  Db.close db2

(* ---------- stats & accounting ---------- *)

let test_stats_accounting () =
  let _, db = fresh () in
  for i = 0 to 999 do
    Db.put db ~key:(key i) (value i)
  done;
  ignore (Db.get db (key 0));
  ignore (Db.scan db ~lo:"" ~hi:(Some (key 10)) ());
  let s = Db.stats db in
  check_int "puts" 1000 s.Stats.user_puts;
  check_int "gets" 1 s.Stats.user_gets;
  check_int "scans" 1 s.Stats.user_scans;
  check "ingested bytes counted" true (s.Stats.user_bytes_ingested > 1000 * 30);
  Db.close db

let test_write_amp_reported () =
  let _, db = fresh () in
  for i = 0 to 9999 do
    Db.put db ~key:(key (i mod 1000)) (value i)
  done;
  Db.flush db;
  let wa = Db.write_amplification db in
  check (Printf.sprintf "WA %.2f sensible" wa) true (wa >= 1.0 && wa < 100.0);
  Db.close db

let test_filters_cut_probes () =
  let probes filter =
    let config = { (small_config ()) with Config.filter } in
    let dev = Device.in_memory () in
    let db = Db.open_db ~config ~dev () in
    for i = 0 to 4999 do
      Db.put db ~key:(key i) (value i)
    done;
    Db.flush db;
    (* Zero-result lookups: filters should avoid nearly all probes. *)
    for i = 0 to 999 do
      ignore (Db.get db (Printf.sprintf "absent%06d" i))
    done;
    let p = (Db.stats db).Stats.runs_probed in
    Db.close db;
    p
  in
  let with_bloom = probes (Lsm_filter.Point_filter.Bloom { bits_per_key = 10.0 }) in
  let without = probes Lsm_filter.Point_filter.No_filter in
  check
    (Printf.sprintf "bloom probes %d << no-filter probes %d" with_bloom without)
    true
    (with_bloom * 5 < without || without = 0)

let test_paranoid_invariants_hold () =
  let _, db = fresh () in
  (* paranoid_checks is on in small_config: any violation would raise. *)
  run_model_workload db 2000 99;
  Db.major_compact db;
  (match Db.check_invariants db with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant: %s" e);
  Db.close db

let test_space_amp_shrinks_with_compaction () =
  let _, db = fresh ~config:(small_config ~compaction:(Policy.tiered ~size_ratio:4 ()) ()) () in
  for i = 0 to 9999 do
    Db.put db ~key:(key (i mod 500)) (value i)
  done;
  Db.flush db;
  let before = Db.space_amplification db in
  (* Force full consolidation by switching to a major compact loop. *)
  Db.major_compact db;
  let after = Db.space_amplification db in
  check (Printf.sprintf "space amp %.2f -> %.2f" before after) true (after <= before);
  Db.close db

(* ---------- model-based property across random op streams ---------- *)

let prop_db_matches_map =
  QCheck.Test.make ~name:"db = Map model (random ops incl. range deletes)" ~count:15
    QCheck.(
      list_of_size
        Gen.(50 -- 400)
        (triple (int_bound 60) (int_bound 99) (option (string_gen_of_size Gen.(0 -- 10) Gen.printable))))
    (fun ops ->
      let dev = Device.in_memory () in
      let db = Db.open_db ~config:(small_config ()) ~dev () in
      let model = ref [] in
      (* model: assoc list key -> value *)
      let set k v = model := (k, v) :: List.remove_assoc k !model in
      let unset k = model := List.remove_assoc k !model in
      List.iter
        (fun (k, action, vopt) ->
          let k = key k in
          match (action mod 10, vopt) with
          | (0 | 1 | 2 | 3 | 4 | 5), Some v ->
            Db.put db ~key:k v;
            set k v
          | (0 | 1 | 2 | 3 | 4 | 5), None ->
            Db.put db ~key:k "";
            set k ""
          | (6 | 7), _ ->
            Db.delete db k;
            unset k
          | 8, _ ->
            let hi = k ^ "\xff" in
            Db.range_delete db ~lo:k ~hi;
            List.iter
              (fun (mk, _) -> if mk >= k && mk < hi then unset mk)
              (List.of_seq (List.to_seq !model))
          | _, _ -> Db.flush db)
        ops;
      let ok = ref true in
      for i = 0 to 60 do
        let k = key i in
        let expected = List.assoc_opt k !model in
        if Db.get db k <> expected then ok := false
      done;
      let scan_got = Db.scan db ~lo:"" ~hi:None () in
      let scan_expected = List.sort compare !model in
      if scan_got <> scan_expected then ok := false;
      Db.close db;
      !ok)

(* Reopen-equivalence: recover after every burst, state must match. *)
let prop_recovery_preserves_state =
  QCheck.Test.make ~name:"close/reopen preserves state" ~count:10
    QCheck.(list_of_size Gen.(10 -- 150) (pair (int_bound 50) (int_bound 1000)))
    (fun ops ->
      let dev = Device.in_memory () in
      let config = small_config () in
      let db = ref (Db.open_db ~config ~dev ()) in
      let model = Hashtbl.create 64 in
      List.iteri
        (fun i (k, v) ->
          let k = key k in
          Db.put !db ~key:k (string_of_int v);
          Hashtbl.replace model k (string_of_int v);
          if i mod 40 = 39 then begin
            Db.close !db;
            db := Db.open_db ~config ~dev ()
          end)
        ops;
      let ok =
        Hashtbl.fold (fun k v acc -> acc && Db.get !db k = Some v) model true
      in
      Db.close !db;
      ok)

let qt t =
  let name, _speed, fn = QCheck_alcotest.to_alcotest t in
  (name, `Quick, fn)

let suite =
  [
    ("put/get", `Quick, test_put_get_small);
    ("update overwrites", `Quick, test_update_overwrites);
    ("delete hides", `Quick, test_delete_hides);
    ("get across flush", `Quick, test_get_across_flush);
    ("updates across levels", `Quick, test_updates_across_levels);
    ("scan basic", `Quick, test_scan_basic);
    ("scan across flush+memtable", `Quick, test_scan_across_flush_and_memtable);
    ("scan limit", `Quick, test_scan_limit);
    ("empty db", `Quick, test_empty_db);
    ("leveling keeps single run per level", `Quick, test_leveling_single_run_per_level);
    ("tiering accumulates runs", `Quick, test_tiering_accumulates_runs);
    ("lazy leveling: last level single run", `Quick, test_lazy_leveling_last_level_single_run);
    ("tiering WA < leveling WA", `Quick, test_tiering_writes_less_than_leveling);
    ("leveling runs <= tiering runs", `Quick, test_leveling_reads_fewer_runs_than_tiering);
    ("snapshot isolation", `Quick, test_snapshot_isolation);
    ("snapshot survives compaction", `Quick, test_snapshot_survives_flush_and_compaction);
    ("snapshot scan", `Quick, test_snapshot_scan);
    ("tombstones purged at bottom", `Quick, test_tombstones_purged_at_bottom);
    ("single delete cancels", `Quick, test_single_delete_cancels);
    ("range delete in memtable", `Quick, test_range_delete_memtable);
    ("range delete across flush", `Quick, test_range_delete_across_flush);
    ("range delete then reinsert", `Quick, test_range_delete_then_reinsert);
    ("merge operator (counter)", `Quick, test_merge_operator_counter);
    ("merge without operator", `Quick, test_merge_without_operator_acts_as_put);
    ("recovery from wal", `Quick, test_recovery_from_wal);
    ("recovery after crash", `Quick, test_recovery_after_crash);
    ("recovery preserves levels", `Quick, test_recovery_preserves_levels);
    ("unsynced tail lost, prefix kept", `Quick, test_unsynced_tail_lost_but_prefix_kept);
    ("stats accounting", `Quick, test_stats_accounting);
    ("write amp reported", `Quick, test_write_amp_reported);
    ("filters cut probes", `Quick, test_filters_cut_probes);
    ("paranoid invariants hold", `Quick, test_paranoid_invariants_hold);
    ("space amp shrinks with compaction", `Quick, test_space_amp_shrinks_with_compaction);
  ]
  @ List.map test_model_layout layouts
  @ List.map test_model_memtables Memtable.all_kinds
  @ [ qt prop_db_matches_map; qt prop_recovery_preserves_state ]
