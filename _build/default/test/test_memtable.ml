(* Tests for lsm_memtable: each implementation against a Map-based model,
   visibility under max_seqno, iterator ordering, range tombstones. *)

open Lsm_memtable
module Entry = Lsm_record.Entry
module Iter = Lsm_record.Iter
module Comparator = Lsm_util.Comparator
module Rng = Lsm_util.Rng

let cmp = Comparator.bytewise
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_each_kind f =
  List.iter (fun kind -> f kind (Memtable.create ~kind ~cmp ())) Memtable.all_kinds

let name k = Memtable.kind_name k

let test_add_find () =
  with_each_kind (fun k m ->
      Memtable.add m (Entry.put ~key:"apple" ~seqno:1 "red");
      Memtable.add m (Entry.put ~key:"banana" ~seqno:2 "yellow");
      (match Memtable.find m "apple" with
      | Some e -> Alcotest.(check string) (name k ^ ": value") "red" e.Entry.value
      | None -> Alcotest.failf "%s: apple not found" (name k));
      check (name k ^ ": missing key") true (Memtable.find m "cherry" = None);
      check_int (name k ^ ": count") 2 (Memtable.count m))

let test_versions_newest_wins () =
  with_each_kind (fun k m ->
      Memtable.add m (Entry.put ~key:"k" ~seqno:1 "v1");
      Memtable.add m (Entry.put ~key:"k" ~seqno:5 "v5");
      Memtable.add m (Entry.put ~key:"k" ~seqno:3 "v3");
      (match Memtable.find m "k" with
      | Some e -> Alcotest.(check string) (name k ^ ": newest") "v5" e.Entry.value
      | None -> Alcotest.failf "%s: missing" (name k)))

let test_snapshot_visibility () =
  with_each_kind (fun k m ->
      Memtable.add m (Entry.put ~key:"k" ~seqno:10 "new");
      Memtable.add m (Entry.put ~key:"k" ~seqno:2 "old");
      (match Memtable.find m ~max_seqno:5 "k" with
      | Some e -> Alcotest.(check string) (name k ^ ": snapshot sees old") "old" e.Entry.value
      | None -> Alcotest.failf "%s: snapshot miss" (name k));
      check (name k ^ ": before any write") true (Memtable.find m ~max_seqno:1 "k" = None))

let test_tombstone_returned () =
  with_each_kind (fun k m ->
      Memtable.add m (Entry.put ~key:"k" ~seqno:1 "v");
      Memtable.add m (Entry.delete ~key:"k" ~seqno:2);
      match Memtable.find m "k" with
      | Some e -> check (name k ^ ": tombstone wins") true (e.Entry.kind = Entry.Delete)
      | None -> Alcotest.failf "%s: tombstone not surfaced" (name k))

let test_iterator_sorted_all_kinds () =
  with_each_kind (fun k m ->
      let rng = Rng.create 11 in
      for i = 1 to 500 do
        let key = Printf.sprintf "key%04d" (Rng.int rng 200) in
        Memtable.add m (Entry.put ~key ~seqno:i (string_of_int i))
      done;
      let out = Iter.to_list (Memtable.iterator m) in
      check_int (name k ^ ": iterator yields all") 500 (List.length out);
      let rec sorted = function
        | a :: (b :: _ as rest) -> Entry.compare cmp a b < 0 && sorted rest
        | _ -> true
      in
      check (name k ^ ": strictly sorted (unique seqnos)") true (sorted out))

let test_iterator_seek () =
  with_each_kind (fun k m ->
      List.iter (fun key -> Memtable.add m (Entry.put ~key ~seqno:1 "v"))
        [ "a"; "c"; "e"; "g" ];
      let it = Memtable.iterator m in
      it.Iter.seek "d";
      check (name k ^ ": seek valid") true (it.Iter.valid ());
      Alcotest.(check string) (name k ^ ": seek lands on e") "e" (it.Iter.entry ()).Entry.key)

let test_range_tombstones_tracked () =
  with_each_kind (fun k m ->
      Memtable.add m (Entry.put ~key:"a" ~seqno:1 "v");
      Memtable.add m (Entry.range_delete ~start_key:"b" ~end_key:"f" ~seqno:2);
      check_int (name k ^ ": one range tombstone") 1 (List.length (Memtable.range_tombstones m));
      (* find must not surface range tombstones for the start key. *)
      check (name k ^ ": find skips range tombstone") true (Memtable.find m "b" = None);
      (* but the iterator must include it (flush needs it). *)
      let kinds = List.map (fun e -> e.Entry.kind) (Iter.to_list (Memtable.iterator m)) in
      check (name k ^ ": iterator carries range delete") true (List.mem Entry.Range_delete kinds))

let test_footprint_grows () =
  with_each_kind (fun k m ->
      let before = Memtable.footprint m in
      Memtable.add m (Entry.put ~key:"key" ~seqno:1 (String.make 100 'v'));
      check (name k ^ ": footprint grows by >= payload") true
        (Memtable.footprint m - before >= 103))

(* Model-based test: every implementation must agree with a reference
   model on find across random operations and snapshots. *)
let prop_model_agreement kind =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s = model" (Memtable.kind_name kind))
    ~count:60
    QCheck.(
      list (pair (string_gen_of_size Gen.(1 -- 3) (Gen.char_range 'a' 'f')) (option string)))
    (fun ops ->
      let m = Memtable.create ~kind ~cmp () in
      (* model: key -> (seqno, value option) list, newest first *)
      let model : (string, (int * string option) list) Hashtbl.t = Hashtbl.create 16 in
      List.iteri
        (fun i (key, vopt) ->
          let seqno = i + 1 in
          (match vopt with
          | Some v -> Memtable.add m (Entry.put ~key ~seqno v)
          | None -> Memtable.add m (Entry.delete ~key ~seqno));
          let prev = Option.value ~default:[] (Hashtbl.find_opt model key) in
          Hashtbl.replace model key ((seqno, vopt) :: prev))
        ops;
      let n = List.length ops in
      (* Check at several snapshot points including "latest". *)
      List.for_all
        (fun snap ->
          Hashtbl.fold
            (fun key versions ok ->
              ok
              &&
              let expected =
                List.find_opt (fun (s, _) -> s <= snap) versions
                |> Option.map (fun (_, v) -> v)
              in
              let got =
                match Memtable.find m ~max_seqno:snap key with
                | None -> None
                | Some e ->
                  Some (match e.Entry.kind with Entry.Delete -> None | _ -> Some e.Entry.value)
              in
              got = expected)
            model true)
        [ n; n / 2; 1 ])

let qt t =
  let name, _speed, fn = QCheck_alcotest.to_alcotest t in
  (name, `Quick, fn)

let suite =
  [
    ("add/find on all kinds", `Quick, test_add_find);
    ("newest version wins", `Quick, test_versions_newest_wins);
    ("snapshot visibility", `Quick, test_snapshot_visibility);
    ("tombstones surfaced", `Quick, test_tombstone_returned);
    ("iterator sorted", `Quick, test_iterator_sorted_all_kinds);
    ("iterator seek", `Quick, test_iterator_seek);
    ("range tombstones tracked", `Quick, test_range_tombstones_tracked);
    ("footprint grows", `Quick, test_footprint_grows);
  ]
  @ List.map (fun k -> qt (prop_model_agreement k)) Memtable.all_kinds
