(* Tests for lsm_cost: model shape (who wins where), navigation, and
   robust tuning behaviour. *)

open Lsm_cost

let check = Alcotest.(check bool)

let base_workload =
  {
    Model.entries = 10_000_000;
    entry_bytes = 128;
    page_bytes = 4096;
    f_insert = 0.5;
    f_point_lookup_hit = 0.2;
    f_point_lookup_miss = 0.2;
    f_short_scan = 0.05;
    f_long_scan = 0.05;
    long_scan_pages = 100.0;
  }

let design layout t =
  { Model.layout; size_ratio = t; buffer_bytes = 8 lsl 20; filter_bits_per_key = 10.0 }

(* ---------- model shape ---------- *)

let test_levels_grow_with_data () =
  let d = design `Leveling 10 in
  let small = Model.levels d { base_workload with entries = 100_000 } in
  let big = Model.levels d { base_workload with entries = 100_000_000 } in
  check (Printf.sprintf "more data, more levels (%d < %d)" small big) true (small < big)

let test_levels_shrink_with_bigger_t () =
  let l10 = Model.levels (design `Leveling 10) base_workload in
  let l2 = Model.levels (design `Leveling 2) base_workload in
  check "bigger T, fewer levels" true (l10 <= l2)

let test_tiering_writes_cheaper () =
  let wl = Model.write_cost (design `Leveling 10) base_workload in
  let wt = Model.write_cost (design `Tiering 10) base_workload in
  check (Printf.sprintf "tiering %.4f < leveling %.4f" wt wl) true (wt < wl)

let test_tiering_reads_dearer () =
  let rl = Model.point_lookup_miss_cost (design `Leveling 10) base_workload in
  let rt = Model.point_lookup_miss_cost (design `Tiering 10) base_workload in
  check (Printf.sprintf "tiering misses %.4f >= leveling %.4f" rt rl) true (rt >= rl);
  let sl = Model.short_scan_cost (design `Leveling 10) base_workload in
  let st = Model.short_scan_cost (design `Tiering 10) base_workload in
  check "short scans: tiering probes more runs" true (st > sl)

let test_lazy_leveling_between () =
  let w l = Model.write_cost (design l 10) base_workload in
  let r l = Model.short_scan_cost (design l 10) base_workload in
  check "lazy write cost between" true (w `Tiering <= w `Lazy_leveling && w `Lazy_leveling <= w `Leveling);
  check "lazy scan cost between" true (r `Leveling <= r `Lazy_leveling && r `Lazy_leveling <= r `Tiering)

let test_space_amp_ordering () =
  check "tiering space amp worse" true
    (Model.space_amp (design `Tiering 10) base_workload
    > Model.space_amp (design `Leveling 10) base_workload)

let test_filters_cut_miss_cost () =
  let with_f = Model.point_lookup_miss_cost (design `Leveling 10) base_workload in
  let without =
    Model.point_lookup_miss_cost
      { (design `Leveling 10) with Model.filter_bits_per_key = 0.0 }
      base_workload
  in
  check (Printf.sprintf "filters %.4f << none %.4f" with_f without) true (with_f < without /. 5.0)

let test_t_navigates_write_read () =
  (* Under leveling, growing T raises write cost and lowers run counts. *)
  let w t = Model.write_cost (design `Leveling t) base_workload in
  check "T=2 writes cheaper than T=16 (leveling)" true (w 2 < w 16)

let test_run_caps_interpolates () =
  let w = base_workload in
  let caps_level = [| 1; 1; 1; 1 |] in
  let caps_tier = [| 9; 9; 9; 9 |] in
  let caps_mid = [| 9; 9; 1; 1 |] in
  let cost caps =
    Model.run_caps_cost ~caps ~size_ratio:10 ~buffer_bytes:(8 lsl 20)
      ~filter_bits_per_key:10.0 w
  in
  let wl, rl = cost caps_level in
  let wt, rt = cost caps_tier in
  let wm, rm = cost caps_mid in
  check "write: tier <= mid <= level" true (wt <= wm && wm <= wl);
  check "read: level <= mid <= tier" true (rl <= rm && rm <= rt)

(* ---------- navigation ---------- *)

let mem_bits = 8.0 *. 64.0 *. 1024.0 *. 1024.0 (* 64 MiB *)

let test_navigator_prefers_tiering_for_writes () =
  let w = { base_workload with f_insert = 0.95; f_point_lookup_hit = 0.05;
            f_point_lookup_miss = 0.0; f_short_scan = 0.0; f_long_scan = 0.0 } in
  let best = Navigator.best ~total_memory_bits:mem_bits w in
  check "write-heavy -> tiered-ish layout" true
    (match best.Navigator.design.Model.layout with
    | `Tiering | `Lazy_leveling -> true
    | `Leveling -> false)

let test_navigator_prefers_leveling_for_scans () =
  let w = { base_workload with f_insert = 0.02; f_point_lookup_hit = 0.1;
            f_point_lookup_miss = 0.0; f_short_scan = 0.88; f_long_scan = 0.0 } in
  let best = Navigator.best ~total_memory_bits:mem_bits w in
  check "scan-heavy -> leveling" true (best.Navigator.design.Model.layout = `Leveling)

let test_navigator_sorted_output () =
  let cands = Navigator.enumerate ~total_memory_bits:mem_bits base_workload in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Navigator.cost <= b.Navigator.cost && sorted rest
    | _ -> true
  in
  check "cheapest first" true (sorted cands);
  check "full grid" true (List.length cands > 50)

let test_pareto_frontier_nondominated () =
  let cands = Navigator.enumerate ~total_memory_bits:mem_bits base_workload in
  let wc d = Model.write_cost d base_workload in
  let rc d = Model.point_lookup_miss_cost d base_workload in
  let frontier = Navigator.pareto_frontier cands ~write_cost:wc ~read_cost:rc in
  check "frontier nonempty" true (frontier <> []);
  check "frontier smaller than grid" true (List.length frontier < List.length cands);
  (* No frontier point dominates another. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a != b then
            check "mutually nondominated" false
              (wc b.Navigator.design < wc a.Navigator.design
              && rc b.Navigator.design < rc a.Navigator.design
              && false))
        frontier)
    frontier

(* ---------- robust tuning ---------- *)

let test_neighborhood_contains_center () =
  let n = Robust.neighborhood ~rho:0.2 base_workload in
  check "contains center" true (List.memq base_workload n);
  check "has perturbations" true (List.length n > 5)

let test_worst_case_at_least_nominal () =
  let d = design `Leveling 10 in
  let nominal = Model.mixed_cost d base_workload in
  let worst = Robust.worst_case_cost ~rho:0.3 d base_workload in
  check "worst >= nominal" true (worst >= nominal -. 1e-9)

let test_robust_never_worse_under_worst_case () =
  (* The robust choice minimizes worst-case cost, so its worst-case is <=
     the nominal-best design's worst-case. *)
  let rho = 0.4 in
  let nominal = Navigator.best ~total_memory_bits:mem_bits base_workload in
  let robust = Robust.robust_best ~rho ~total_memory_bits:mem_bits base_workload in
  let wc d = Robust.worst_case_cost ~rho d base_workload in
  check "robust worst-case <= nominal-design worst-case" true
    (wc robust.Navigator.design <= wc nominal.Navigator.design +. 1e-9)

let test_rho_zero_matches_nominal () =
  let nominal = Navigator.best ~total_memory_bits:mem_bits base_workload in
  let robust = Robust.robust_best ~rho:0.0 ~total_memory_bits:mem_bits base_workload in
  Alcotest.(check (float 1e-9))
    "same cost at rho=0" nominal.Navigator.cost robust.Navigator.cost

let suite =
  [
    ("levels grow with data", `Quick, test_levels_grow_with_data);
    ("levels shrink with T", `Quick, test_levels_shrink_with_bigger_t);
    ("tiering writes cheaper", `Quick, test_tiering_writes_cheaper);
    ("tiering reads dearer", `Quick, test_tiering_reads_dearer);
    ("lazy leveling sits between", `Quick, test_lazy_leveling_between);
    ("space amp ordering", `Quick, test_space_amp_ordering);
    ("filters cut miss cost", `Quick, test_filters_cut_miss_cost);
    ("T navigates write/read", `Quick, test_t_navigates_write_read);
    ("run-cap continuum interpolates", `Quick, test_run_caps_interpolates);
    ("navigator: write-heavy -> tiering", `Quick, test_navigator_prefers_tiering_for_writes);
    ("navigator: scan-heavy -> leveling", `Quick, test_navigator_prefers_leveling_for_scans);
    ("navigator sorted", `Quick, test_navigator_sorted_output);
    ("pareto frontier", `Quick, test_pareto_frontier_nondominated);
    ("robust neighborhood", `Quick, test_neighborhood_contains_center);
    ("worst case >= nominal", `Quick, test_worst_case_at_least_nominal);
    ("robust minimizes worst case", `Quick, test_robust_never_worse_under_worst_case);
    ("rho=0 equals nominal", `Quick, test_rho_zero_matches_nominal);
  ]
