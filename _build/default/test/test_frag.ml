(* Tests for lsm_frag: guarded fragmented LSM correctness and its
   write-amplification advantage over leveled compaction. *)

module Device = Lsm_storage.Device
open Lsm_frag

let check = Alcotest.(check bool)
let check_opt = Alcotest.(check (option string))

let small_config =
  {
    Frag_db.default_config with
    write_buffer_size = 8 * 1024;
    level0_limit = 2;
    level1_capacity = 16 * 1024;
    target_file_size = 8 * 1024;
    block_size = 1024;
    guard_stride_base = 512;
    size_ratio = 4;
  }

let fresh () =
  let dev = Device.in_memory () in
  (dev, Frag_db.create ~config:small_config ~dev ())

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "val-%06d-%s" i (String.make 24 'x')

let test_put_get () =
  let _, db = fresh () in
  Frag_db.put db ~key:"a" "1";
  Frag_db.put db ~key:"b" "2";
  check_opt "a" (Some "1") (Frag_db.get db "a");
  check_opt "missing" None (Frag_db.get db "zzz")

let test_roundtrip_through_compactions () =
  let _, db = fresh () in
  for i = 0 to 4999 do
    Frag_db.put db ~key:(key i) (value i)
  done;
  Frag_db.flush db;
  check "compactions ran" true (Frag_db.compactions db > 0);
  check "guards were created" true (Frag_db.guard_count db 1 > 1);
  for i = 0 to 4999 do
    if Frag_db.get db (key i) <> Some (value i) then Alcotest.failf "key %d wrong" i
  done

let test_updates_newest_wins () =
  let _, db = fresh () in
  for gen = 1 to 3 do
    for i = 0 to 999 do
      Frag_db.put db ~key:(key i) (Printf.sprintf "g%d-%d" gen i)
    done;
    Frag_db.flush db
  done;
  for i = 0 to 999 do
    if Frag_db.get db (key i) <> Some (Printf.sprintf "g3-%d" i) then
      Alcotest.failf "key %d resurrected" i
  done

let test_delete () =
  let _, db = fresh () in
  for i = 0 to 499 do
    Frag_db.put db ~key:(key i) (value i)
  done;
  Frag_db.flush db;
  Frag_db.delete db (key 100);
  check_opt "deleted" None (Frag_db.get db (key 100));
  Frag_db.flush db;
  check_opt "deleted after flush" None (Frag_db.get db (key 100))

let test_scan_ordered_and_correct () =
  let _, db = fresh () in
  for i = 0 to 1999 do
    Frag_db.put db ~key:(key i) (value i)
  done;
  Frag_db.flush db;
  let got = Frag_db.scan db ~lo:(key 500) ~hi:(Some (key 505)) () in
  Alcotest.(check (list (pair string string)))
    "scan window"
    (List.init 5 (fun j -> (key (500 + j), value (500 + j))))
    got

let test_model_agreement () =
  let _, db = fresh () in
  let rng = Lsm_util.Rng.create 77 in
  let model = Hashtbl.create 128 in
  for _ = 1 to 4000 do
    let k = key (Lsm_util.Rng.int rng 300) in
    if Lsm_util.Rng.bernoulli rng 0.2 then begin
      Frag_db.delete db k;
      Hashtbl.replace model k None
    end
    else begin
      let v = Printf.sprintf "v%d" (Lsm_util.Rng.int rng 100000) in
      Frag_db.put db ~key:k v;
      Hashtbl.replace model k (Some v)
    end
  done;
  for i = 0 to 299 do
    let k = key i in
    let expected = Option.join (Hashtbl.find_opt model k) in
    if Frag_db.get db k <> expected then Alcotest.failf "mismatch at %s" k
  done;
  (* scan agreement *)
  let expected =
    Hashtbl.fold (fun k v acc -> match v with Some v -> (k, v) :: acc | None -> acc) model []
    |> List.sort compare
  in
  let got = Frag_db.scan db ~lo:"" ~hi:None () in
  check "scan matches model" true (got = expected)

let test_guard_density_grows_with_depth () =
  let _, db = fresh () in
  for i = 0 to 9999 do
    Frag_db.put db ~key:(key i) (value i)
  done;
  Frag_db.flush db;
  let g1 = Frag_db.guard_count db 1 in
  let g3 = Frag_db.guard_count db 3 in
  check (Printf.sprintf "deeper levels have >= guards (%d <= %d)" g1 g3) true (g1 <= g3)

let test_flsm_wa_beats_leveled () =
  (* The PebblesDB claim: fragmented (append-to-guard) compaction moves
     less data than leveled (rewrite next level) compaction. *)
  let n = 12000 in
  let frag_wa =
    let dev = Device.in_memory () in
    let db = Frag_db.create ~config:small_config ~dev () in
    for i = 0 to n - 1 do
      Frag_db.put db ~key:(key (i mod 3000)) (value i)
    done;
    Frag_db.flush db;
    Frag_db.write_amplification db
  in
  let leveled_wa =
    let dev = Device.in_memory () in
    let config =
      {
        Lsm_core.Config.default with
        write_buffer_size = 8 * 1024;
        level1_capacity = 16 * 1024;
        target_file_size = 8 * 1024;
        block_size = 1024;
        wal_enabled = false;
        compaction =
          { (Lsm_compaction.Policy.leveled ~size_ratio:4 ()) with
            Lsm_compaction.Policy.level0_limit = 2 };
      }
    in
    let db = Lsm_core.Db.open_db ~config ~dev () in
    for i = 0 to n - 1 do
      Lsm_core.Db.put db ~key:(key (i mod 3000)) (value i)
    done;
    Lsm_core.Db.flush db;
    Lsm_core.Db.write_amplification db
  in
  check
    (Printf.sprintf "fragmented WA %.2f < leveled WA %.2f" frag_wa leveled_wa)
    true (frag_wa < leveled_wa)

let suite =
  [
    ("put/get", `Quick, test_put_get);
    ("roundtrip through compactions", `Quick, test_roundtrip_through_compactions);
    ("updates: newest wins", `Quick, test_updates_newest_wins);
    ("delete", `Quick, test_delete);
    ("scan ordered", `Quick, test_scan_ordered_and_correct);
    ("model agreement", `Quick, test_model_agreement);
    ("guard density grows with depth", `Quick, test_guard_density_grows_with_depth);
    ("fragmented WA < leveled WA", `Quick, test_flsm_wa_beats_leveled);
  ]
