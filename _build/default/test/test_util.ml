(* Unit and property tests for lsm_util: codecs, checksums, hashing, rng,
   zipf, histograms, comparators. *)

open Lsm_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------- Codec ---------- *)

let test_codec_fixed () =
  let b = Buffer.create 16 in
  Codec.put_u8 b 0xab;
  Codec.put_u16 b 0xbeef;
  Codec.put_u32 b 0xdeadbeef;
  Codec.put_u64 b 0x1122334455667788L;
  let r = Codec.reader (Buffer.contents b) in
  check_int "u8" 0xab (Codec.get_u8 r);
  check_int "u16" 0xbeef (Codec.get_u16 r);
  check_int "u32" 0xdeadbeef (Codec.get_u32 r);
  Alcotest.(check int64) "u64" 0x1122334455667788L (Codec.get_u64 r);
  check "at end" true (Codec.at_end r)

let test_codec_varint_known () =
  let enc v =
    let b = Buffer.create 8 in
    Codec.put_varint b v;
    Buffer.contents b
  in
  check_str "0" "\x00" (enc 0);
  check_str "127" "\x7f" (enc 127);
  check_str "128" "\x80\x01" (enc 128);
  check_str "300" "\xac\x02" (enc 300)

let test_codec_truncated () =
  let r = Codec.reader "\x80" in
  Alcotest.check_raises "truncated varint" (Codec.Corrupt "truncated input at 1 (need 1)")
    (fun () -> ignore (Codec.get_varint r))

let test_codec_negative_rejected () =
  let b = Buffer.create 4 in
  Alcotest.check_raises "negative" (Invalid_argument "Codec.put_varint: negative") (fun () ->
      Codec.put_varint b (-1))

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:1000
    QCheck.(map abs small_int)
    (fun v ->
      let b = Buffer.create 8 in
      Codec.put_varint b v;
      let s = Buffer.contents b in
      String.length s = Codec.varint_size v && Codec.get_varint (Codec.reader s) = v)

let prop_varint_roundtrip_large =
  QCheck.Test.make ~name:"varint roundtrip (64-bit)" ~count:1000
    QCheck.(map Int64.abs int64)
    (fun v64 ->
      let v = Int64.to_int v64 |> abs in
      let b = Buffer.create 10 in
      Codec.put_varint b v;
      Codec.get_varint (Codec.reader (Buffer.contents b)) = v)

let prop_lp_string_roundtrip =
  QCheck.Test.make ~name:"lp_string roundtrip" ~count:500 QCheck.string (fun s ->
      let b = Buffer.create 16 in
      Codec.put_lp_string b s;
      Codec.get_lp_string (Codec.reader (Buffer.contents b)) = s)

let prop_mixed_stream =
  QCheck.Test.make ~name:"mixed codec stream" ~count:300
    QCheck.(
      list_of_size
        Gen.(0 -- 20)
        (pair (map abs small_int) (string_gen_of_size Gen.(0 -- 40) Gen.printable)))
    (fun items ->
      let b = Buffer.create 64 in
      List.iter
        (fun (n, s) ->
          Codec.put_varint b n;
          Codec.put_lp_string b s)
        items;
      let r = Codec.reader (Buffer.contents b) in
      List.for_all (fun (n, s) -> Codec.get_varint r = n && Codec.get_lp_string r = s) items
      && Codec.at_end r)

(* ---------- Crc32c ---------- *)

let test_crc_known_vectors () =
  (* Standard CRC-32C test vector: "123456789" -> 0xE3069283. *)
  Alcotest.(check int32) "check value" 0xE3069283l (Crc32c.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32c.string "")

let test_crc_mask_roundtrip () =
  let crc = Crc32c.string "hello world" in
  Alcotest.(check int32) "unmask . mask = id" crc (Crc32c.unmask (Crc32c.mask crc));
  check "mask changes value" true (Crc32c.mask crc <> crc)

let prop_crc_detects_flip =
  QCheck.Test.make ~name:"crc detects single-byte flip" ~count:300
    QCheck.(pair (string_of_size Gen.(1 -- 64)) (int_bound 1000))
    (fun (s, r) ->
      String.length s = 0
      ||
      let i = r mod String.length s in
      let flipped = Bytes.of_string s in
      Bytes.set flipped i (Char.chr (Char.code s.[i] lxor 0x01));
      Crc32c.string s <> Crc32c.string (Bytes.to_string flipped))

let test_crc_sub () =
  let s = "abcdefgh" in
  Alcotest.(check int32) "sub = sub string" (Crc32c.string "cdef")
    (Crc32c.sub s ~pos:2 ~len:4)

(* ---------- Hashing ---------- *)

let test_hash_deterministic () =
  Alcotest.(check int64) "stable across calls" (Hashing.string64 "key1") (Hashing.string64 "key1");
  check "different keys differ" true (Hashing.string64 "key1" <> Hashing.string64 "key2");
  check "seed changes hash" true
    (Hashing.string64 ~seed:1L "key1" <> Hashing.string64 ~seed:2L "key1")

let test_double_hash_properties () =
  let h1, h2 = Hashing.double_hash "some key" in
  check "h1 non-negative" true (h1 >= 0);
  check "h2 positive odd" true (h2 > 0 && h2 land 1 = 1)

let test_fingerprint_range () =
  for i = 0 to 199 do
    let fp = Hashing.fingerprint (string_of_int i) ~bits:8 in
    check "in range" true (fp >= 1 && fp < 256)
  done

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 50 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check "bound" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r 2.5 in
    check "float bound" true (f >= 0.0 && f < 2.5)
  done

let test_rng_split_independent () =
  let r = Rng.create 1 in
  let s = Rng.split r in
  let xs = List.init 20 (fun _ -> Rng.int r 1000000) in
  let ys = List.init 20 (fun _ -> Rng.int s 1000000) in
  check "streams differ" true (xs <> ys)

let test_rng_shuffle_permutation () =
  let r = Rng.create 3 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 100 Fun.id) sorted

let test_rng_uniformity_rough () =
  let r = Rng.create 99 in
  let buckets = Array.make 10 0 in
  let n = 20000 in
  for _ = 1 to n do
    let i = Rng.int r 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      check "each bucket within 20% of expected" true
        (abs (c - (n / 10)) < n / 10 / 5))
    buckets

(* ---------- Zipf ---------- *)

let test_zipf_skew () =
  let z = Zipf.create 1000 in
  let r = Rng.create 5 in
  let counts = Array.make 1000 0 in
  let n = 50000 in
  for _ = 1 to n do
    let i = Zipf.next z r in
    counts.(i) <- counts.(i) + 1
  done;
  (* Rank 0 must dominate: with theta=0.99 it draws >5% of mass. *)
  check "rank 0 hot" true (counts.(0) > n / 20);
  check "rank 0 > rank 10" true (counts.(0) > counts.(10));
  check "rank 1 > rank 100" true (counts.(1) > counts.(100))

let test_zipf_bounds () =
  let z = Zipf.create ~theta:0.5 37 in
  let r = Rng.create 6 in
  for _ = 1 to 5000 do
    let i = Zipf.next z r in
    check "in range" true (i >= 0 && i < 37);
    let j = Zipf.next_scrambled z r in
    check "scrambled in range" true (j >= 0 && j < 37)
  done

let test_zipf_scrambled_spreads () =
  let z = Zipf.create 1000 in
  let r = Rng.create 8 in
  let hot = Hashtbl.create 16 in
  for _ = 1 to 10000 do
    let i = Zipf.next_scrambled z r in
    Hashtbl.replace hot i (1 + Option.value ~default:0 (Hashtbl.find_opt hot i))
  done;
  (* The hottest scrambled key should not be rank 0 of the key space in
     general; at minimum, heat must exist away from the low ranks. *)
  let heavy_high = Hashtbl.fold (fun k c acc -> acc || (k > 100 && c > 100)) hot false in
  check "some hot key above rank 100" true heavy_high

(* ---------- Histogram ---------- *)

let test_histogram_basic () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  check_int "count" 10 (Histogram.count h);
  check_int "total" 55 (Histogram.total h);
  check_int "min" 1 (Histogram.min_value h);
  check_int "max" 10 (Histogram.max_value h);
  Alcotest.(check (float 0.001)) "mean" 5.5 (Histogram.mean h)

let test_histogram_percentiles_small () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.add h i
  done;
  (* Values below 64 are exact buckets. *)
  check_int "p50" 50 (Histogram.percentile h 50.0);
  check_int "p1" 1 (Histogram.percentile h 1.0);
  check_int "p100" 100 (Histogram.percentile h 100.0)

let test_histogram_percentile_error_bounded () =
  let h = Histogram.create () in
  let values = List.init 500 (fun i -> (i * 7919) mod 100000) in
  List.iter (Histogram.add h) values;
  let sorted = List.sort compare values |> Array.of_list in
  List.iter
    (fun p ->
      let exact = sorted.(int_of_float (p /. 100.0 *. 499.0)) in
      let est = Histogram.percentile h p in
      (* Geometric buckets with 16 sub-buckets: <= ~7% relative error. *)
      check
        (Printf.sprintf "p%.0f within 8%%" p)
        true
        (abs (est - exact) <= max 2 (exact / 12)))
    [ 50.0; 90.0; 99.0 ]

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1; 2; 3 ];
  List.iter (Histogram.add b) [ 100; 200 ];
  Histogram.merge ~into:a b;
  check_int "count" 5 (Histogram.count a);
  check_int "max" 200 (Histogram.max_value a);
  check_int "min" 1 (Histogram.min_value a)

let test_histogram_empty () =
  let h = Histogram.create () in
  check_int "p50 empty" 0 (Histogram.percentile h 50.0);
  check_int "min empty" 0 (Histogram.min_value h);
  Alcotest.(check (float 0.0)) "mean empty" 0.0 (Histogram.mean h)

(* ---------- Comparator ---------- *)

let test_comparator_orders () =
  check "bytewise" true (Comparator.bytewise.compare "a" "b" < 0);
  check "reverse" true (Comparator.reverse_bytewise.compare "a" "b" > 0)

let test_shortest_separator () =
  let c = Comparator.bytewise in
  let s = Comparator.shortest_separator c "abcdef" "abzz" in
  check "a <= s" true (c.compare "abcdef" s <= 0);
  check "s < b" true (c.compare s "abzz" < 0);
  check "short" true (String.length s <= 3);
  (* Prefix case: no shorter separator exists. *)
  check_str "prefix falls back" "ab" (Comparator.shortest_separator c "ab" "abc")

let test_short_successor () =
  let c = Comparator.bytewise in
  check "successor >= key" true (c.compare (Comparator.short_successor c "abc") "abc" >= 0);
  check_str "plain" "b" (Comparator.short_successor c "abc");
  check_str "all-ff unchanged" "\xff\xff" (Comparator.short_successor c "\xff\xff")

let prop_separator_sound =
  QCheck.Test.make ~name:"shortest_separator sound" ~count:500
    QCheck.(pair (string_of_size Gen.(1 -- 12)) (string_of_size Gen.(1 -- 12)))
    (fun (a, b) ->
      let c = Comparator.bytewise in
      if c.compare a b >= 0 then true
      else
        let s = Comparator.shortest_separator c a b in
        c.compare a s <= 0 && c.compare s b < 0)

let qt t =
  let name, _speed, fn = QCheck_alcotest.to_alcotest t in
  (name, `Quick, fn)

let suite =
  [
    ("codec fixed-width roundtrip", `Quick, test_codec_fixed);
    ("codec varint known encodings", `Quick, test_codec_varint_known);
    ("codec truncated input raises", `Quick, test_codec_truncated);
    ("codec rejects negative varint", `Quick, test_codec_negative_rejected);
    ("crc32c known vectors", `Quick, test_crc_known_vectors);
    ("crc32c mask roundtrip", `Quick, test_crc_mask_roundtrip);
    ("crc32c substring", `Quick, test_crc_sub);
    ("hashing deterministic", `Quick, test_hash_deterministic);
    ("double hash shape", `Quick, test_double_hash_properties);
    ("fingerprint range", `Quick, test_fingerprint_range);
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng bounds", `Quick, test_rng_bounds);
    ("rng split independence", `Quick, test_rng_split_independent);
    ("rng shuffle is permutation", `Quick, test_rng_shuffle_permutation);
    ("rng rough uniformity", `Quick, test_rng_uniformity_rough);
    ("zipf skew", `Quick, test_zipf_skew);
    ("zipf bounds", `Quick, test_zipf_bounds);
    ("zipf scrambled spreads heat", `Quick, test_zipf_scrambled_spreads);
    ("histogram basics", `Quick, test_histogram_basic);
    ("histogram small percentiles exact", `Quick, test_histogram_percentiles_small);
    ("histogram percentile error bounded", `Quick, test_histogram_percentile_error_bounded);
    ("histogram merge", `Quick, test_histogram_merge);
    ("histogram empty", `Quick, test_histogram_empty);
    ("comparator orders", `Quick, test_comparator_orders);
    ("shortest separator", `Quick, test_shortest_separator);
    ("short successor", `Quick, test_short_successor);
    qt prop_varint_roundtrip;
    qt prop_varint_roundtrip_large;
    qt prop_lp_string_roundtrip;
    qt prop_mixed_stream;
    qt prop_crc_detects_flip;
    qt prop_separator_sound;
  ]
