(* Tests for lsm_workload: spec validity, determinism, runner metrics. *)

module Device = Lsm_storage.Device
open Lsm_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny spec = { spec with Spec.preload = 200; operations = 300 }

let store () =
  let dev = Device.in_memory () in
  let config =
    {
      Lsm_core.Config.default with
      write_buffer_size = 4 * 1024;
      level1_capacity = 16 * 1024;
      target_file_size = 8 * 1024;
      block_size = 1024;
    }
  in
  Kv_store.of_db (Lsm_core.Db.open_db ~config ~dev ())

let test_specs_validate () =
  List.iter (fun (_, s) -> Spec.validate s) Spec.all_ycsb;
  List.iter Spec.validate
    [ Spec.write_only (); Spec.read_heavy (); Spec.delete_heavy (); Spec.mixed () ]

let test_mix_sums () =
  List.iter
    (fun (nm, s) ->
      check (nm ^ " mix sums to 1") true (abs_float (Spec.mix_sum s.Spec.mix -. 1.0) < 0.01))
    Spec.all_ycsb

let test_keys_deterministic_and_ordered () =
  Alcotest.(check string) "ycsb key" "user000000000042" (Runner.keyspace_key Spec.Ycsb_style 42);
  check "binary keys ordered" true
    (Runner.keyspace_key Spec.Binary8 5 < Runner.keyspace_key Spec.Binary8 6);
  check_int "binary key width" 8 (String.length (Runner.keyspace_key Spec.Binary8 123))

let test_runner_basic () =
  let r = Runner.run (store ()) (tiny (Spec.ycsb_a ())) in
  check_int "ops recorded" 300 r.Runner.measured_ops;
  check "reads happened" true (r.Runner.reads_performed > 0);
  check "reads mostly found (preloaded keyspace)" true
    (r.Runner.reads_found * 10 >= r.Runner.reads_performed * 9);
  check "io recorded" true (r.Runner.device_bytes_written > 0)

let test_runner_deterministic () =
  let run () = Runner.run (store ()) (tiny (Spec.ycsb_a ())) in
  let a = run () and b = run () in
  check_int "same reads" a.Runner.reads_performed b.Runner.reads_performed;
  check_int "same found" a.Runner.reads_found b.Runner.reads_found;
  check_int "same device writes" a.Runner.device_bytes_written b.Runner.device_bytes_written

let test_write_only_no_reads () =
  let r = Runner.run (store ()) (tiny (Spec.write_only ())) in
  check_int "no reads" 0 r.Runner.reads_performed;
  check "wa >= 1" true (r.Runner.write_amplification >= 1.0)

let test_inserts_grow_keyspace () =
  let st = store () in
  let spec = { (tiny (Spec.ycsb_d ())) with Spec.operations = 400 } in
  let r = Runner.run st spec in
  check "inserted keys readable" true (st.Kv_store.get (Runner.keyspace_key Spec.Ycsb_style 0) <> None);
  check_int "ops" 400 r.Runner.measured_ops

let test_all_ycsb_run () =
  List.iter
    (fun (nm, spec) ->
      let r = Runner.run (store ()) (tiny spec) in
      check (nm ^ " produced output") true (r.Runner.measured_ops = 300))
    Spec.all_ycsb

let test_delete_heavy_removes_keys () =
  let st = store () in
  ignore (Runner.run st (tiny (Spec.delete_heavy ())));
  (* After 25% deletes over a zipfian keyspace, some preloaded keys die. *)
  let gone = ref 0 in
  for i = 0 to 199 do
    if st.Kv_store.get (Runner.keyspace_key Spec.Ycsb_style i) = None then incr gone
  done;
  check (Printf.sprintf "%d keys deleted" !gone) true (!gone > 0)

let test_row_renders () =
  let r = Runner.run (store ()) (tiny (Spec.ycsb_c ())) in
  check "header and row align-ish" true
    (String.length Runner.header > 0 && String.length (Runner.row r) > 0)

let suite =
  [
    ("specs validate", `Quick, test_specs_validate);
    ("mixes sum to one", `Quick, test_mix_sums);
    ("key encodings", `Quick, test_keys_deterministic_and_ordered);
    ("runner basic", `Quick, test_runner_basic);
    ("runner deterministic", `Quick, test_runner_deterministic);
    ("write-only has no reads", `Quick, test_write_only_no_reads);
    ("inserts grow keyspace", `Quick, test_inserts_grow_keyspace);
    ("all ycsb presets run", `Quick, test_all_ycsb_run);
    ("delete-heavy removes keys", `Quick, test_delete_heavy_removes_keys);
    ("table rendering", `Quick, test_row_renders);
  ]
