(* Tests for lsm_record: entry model, orderings, iterators, k-way merge. *)

open Lsm_record
module Codec = Lsm_util.Codec
module Comparator = Lsm_util.Comparator

let cmp = Comparator.bytewise
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let e ?(kind = Entry.Put) ?(value = "") key seqno = { Entry.key; seqno; kind; value }

(* ---------- Entry ---------- *)

let test_entry_roundtrip_kinds () =
  List.iter
    (fun kind ->
      let entry = { Entry.key = "k"; seqno = 42; kind; value = "v" } in
      let b = Buffer.create 32 in
      Entry.encode b entry;
      let s = Buffer.contents b in
      check_int "encoded_size exact" (String.length s) (Entry.encoded_size entry);
      let got = Entry.decode (Codec.reader s) in
      check "roundtrip" true (got = entry))
    [ Entry.Put; Entry.Delete; Entry.Single_delete; Entry.Range_delete; Entry.Merge ]

let test_entry_ordering () =
  (* Key ascending. *)
  check "key order" true (Entry.compare cmp (e "a" 1) (e "b" 1) < 0);
  (* Same key: seqno descending (newest first). *)
  check "seqno desc" true (Entry.compare cmp (e "a" 5) (e "a" 3) < 0);
  check "equal" true (Entry.compare cmp (e "a" 5) (e "a" 5) = 0)

let test_entry_constructors () =
  let d = Entry.delete ~key:"k" ~seqno:9 in
  check "delete is tombstone" true (Entry.is_tombstone d);
  check "put is not" false (Entry.is_tombstone (Entry.put ~key:"k" ~seqno:1 "v"));
  let rd = Entry.range_delete ~start_key:"a" ~end_key:"m" ~seqno:2 in
  check "range delete carries end key" true (rd.Entry.value = "m");
  check "range delete is tombstone" true (Entry.is_tombstone rd);
  check "merge not tombstone" false (Entry.is_tombstone (Entry.merge ~key:"k" ~seqno:3 "+1"))

let test_entry_bad_kind () =
  Alcotest.check_raises "bad kind tag" (Codec.Corrupt "unknown entry kind 9") (fun () ->
      ignore (Entry.kind_of_int 9))

let prop_entry_roundtrip =
  QCheck.Test.make ~name:"entry encode/decode roundtrip" ~count:500
    QCheck.(triple string (map abs small_int) string)
    (fun (key, seqno, value) ->
      let entry = { Entry.key; seqno; kind = Entry.Put; value } in
      let b = Buffer.create 32 in
      Entry.encode b entry;
      Entry.decode (Codec.reader (Buffer.contents b)) = entry)

(* ---------- Iter over sorted arrays ---------- *)

let sorted_entries = [ e "a" 3; e "a" 1; e "c" 2; e "e" 9; e "e" 4; e "g" 7 ]

let test_iter_drain () =
  let it = Iter.of_sorted_list cmp sorted_entries in
  Alcotest.(check int) "drains all" 6 (List.length (Iter.to_list it))

let test_iter_seek () =
  let it = Iter.of_sorted_list cmp sorted_entries in
  it.Iter.seek "c";
  check "valid" true (it.Iter.valid ());
  Alcotest.(check string) "lands on c" "c" (it.Iter.entry ()).Entry.key;
  it.Iter.seek "d";
  Alcotest.(check string) "d -> e" "e" (it.Iter.entry ()).Entry.key;
  check_int "newest version first" 9 (it.Iter.entry ()).Entry.seqno;
  it.Iter.seek "z";
  check "past end" false (it.Iter.valid ())

let test_iter_empty () =
  let it = Iter.empty in
  it.Iter.seek_to_first ();
  check "empty invalid" false (it.Iter.valid ());
  check_int "to_list empty" 0 (List.length (Iter.to_list Iter.empty))

(* ---------- concat ---------- *)

let test_concat_spans_parts () =
  let part1 = Iter.of_sorted_list cmp [ e "a" 1; e "b" 1 ] in
  let part2 = Iter.of_sorted_list cmp [ e "c" 1 ] in
  let part3 = Iter.of_sorted_list cmp [ e "d" 1; e "e" 1 ] in
  let it = Iter.concat [ part1; part2; part3 ] in
  let keys = List.map (fun x -> x.Entry.key) (Iter.to_list it) in
  Alcotest.(check (list string)) "all keys in order" [ "a"; "b"; "c"; "d"; "e" ] keys

let test_concat_seek_across () =
  let it =
    Iter.concat
      [
        Iter.of_sorted_list cmp [ e "a" 1; e "b" 1 ];
        Iter.of_sorted_list cmp [ e "m" 1 ];
        Iter.of_sorted_list cmp [ e "x" 1 ];
      ]
  in
  it.Iter.seek "c";
  Alcotest.(check string) "seek into middle part" "m" (it.Iter.entry ()).Entry.key;
  it.Iter.next ();
  Alcotest.(check string) "crosses into last part" "x" (it.Iter.entry ()).Entry.key;
  it.Iter.next ();
  check "exhausted" false (it.Iter.valid ())

let test_concat_with_empty_parts () =
  let it =
    Iter.concat [ Iter.empty; Iter.of_sorted_list cmp [ e "k" 1 ]; Iter.empty ]
  in
  it.Iter.seek_to_first ();
  check "skips leading empty" true (it.Iter.valid ());
  Alcotest.(check string) "k" "k" (it.Iter.entry ()).Entry.key;
  it.Iter.next ();
  check "skips trailing empty" false (it.Iter.valid ())

(* ---------- merge ---------- *)

let test_merge_interleaves () =
  let a = Iter.of_sorted_list cmp [ e "a" 1; e "d" 1; e "g" 1 ] in
  let b = Iter.of_sorted_list cmp [ e "b" 1; e "e" 1 ] in
  let c = Iter.of_sorted_list cmp [ e "c" 1; e "f" 1 ] in
  let keys = List.map (fun x -> x.Entry.key) (Iter.to_list (Iter.merge cmp [ a; b; c ])) in
  Alcotest.(check (list string)) "merged order" [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ] keys

let test_merge_version_order () =
  (* Same key in two sources: newest (highest seqno) must come first. *)
  let newer = Iter.of_sorted_list cmp [ e "k" 10 ~value:"new" ] in
  let older = Iter.of_sorted_list cmp [ e "k" 2 ~value:"old" ] in
  let out = Iter.to_list (Iter.merge cmp [ older; newer ]) in
  check_int "two versions" 2 (List.length out);
  Alcotest.(check string) "newest first" "new" (List.hd out).Entry.value

let test_merge_seek () =
  let a = Iter.of_sorted_list cmp [ e "a" 1; e "m" 1 ] in
  let b = Iter.of_sorted_list cmp [ e "c" 1; e "z" 1 ] in
  let it = Iter.merge cmp [ a; b ] in
  it.Iter.seek "m";
  Alcotest.(check string) "seek m" "m" (it.Iter.entry ()).Entry.key;
  it.Iter.next ();
  Alcotest.(check string) "then z" "z" (it.Iter.entry ()).Entry.key

let prop_merge_equals_sort =
  (* Merging k sorted runs = sorting their concatenation (stable w.r.t.
     entries, which are unique by construction here). *)
  let gen =
    QCheck.Gen.(
      list_size (1 -- 4)
        (list_size (0 -- 20) (pair (string_size ~gen:(char_range 'a' 'e') (1 -- 2)) (0 -- 1000))))
  in
  QCheck.Test.make ~name:"merge = sort of concat" ~count:200 (QCheck.make gen) (fun runs ->
      (* Make entries globally unique via seqno tagging per (run, idx). *)
      let runs =
        List.mapi
          (fun ri run ->
            List.mapi (fun i (k, s) -> e k ((s * 100) + (ri * 10) + i)) run
            |> List.sort (Entry.compare cmp))
          runs
      in
      let iters = List.map (Iter.of_sorted_list cmp) runs in
      let merged = Iter.to_list (Iter.merge cmp iters) in
      let expected = List.sort (Entry.compare cmp) (List.concat runs) in
      merged = expected)

let qt t =
  let name, _speed, fn = QCheck_alcotest.to_alcotest t in
  (name, `Quick, fn)

let suite =
  [
    ("entry roundtrip all kinds", `Quick, test_entry_roundtrip_kinds);
    ("entry ordering", `Quick, test_entry_ordering);
    ("entry constructors", `Quick, test_entry_constructors);
    ("entry bad kind rejected", `Quick, test_entry_bad_kind);
    ("iter drain", `Quick, test_iter_drain);
    ("iter seek", `Quick, test_iter_seek);
    ("iter empty", `Quick, test_iter_empty);
    ("concat spans parts", `Quick, test_concat_spans_parts);
    ("concat seek across parts", `Quick, test_concat_seek_across);
    ("concat with empty parts", `Quick, test_concat_with_empty_parts);
    ("merge interleaves", `Quick, test_merge_interleaves);
    ("merge newest-first within key", `Quick, test_merge_version_order);
    ("merge seek", `Quick, test_merge_seek);
    qt prop_entry_roundtrip;
    qt prop_merge_equals_sort;
  ]
